package sim

import (
	"testing"
	"testing/quick"

	"hardsnap/internal/rtl"
	"hardsnap/internal/verilog"
)

func build(t *testing.T, src, top string) *Simulator {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := rtl.Elaborate(f, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatalf("new simulator: %v", err)
	}
	return s
}

const counterSrc = `
module counter (
  input wire clk,
  input wire rst,
  input wire en,
  output reg [7:0] count,
  output wire [7:0] next
);
  assign next = count + 1;
  always @(posedge clk) begin
    if (rst)
      count <= 0;
    else if (en)
      count <= next;
  end
endmodule
`

func TestCounterCounts(t *testing.T) {
	s := build(t, counterSrc, "counter")
	mustSet := func(name string, v uint64) {
		if err := s.SetInput(name, v); err != nil {
			t.Fatal(err)
		}
	}
	mustSet("rst", 1)
	if err := s.StepCycle(); err != nil {
		t.Fatal(err)
	}
	mustSet("rst", 0)
	mustSet("en", 1)
	for i := 0; i < 10; i++ {
		if err := s.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := s.Peek("count"); v != 10 {
		t.Fatalf("count = %d, want 10", v)
	}
	// Comb output reflects count+1.
	if v, _ := s.Peek("next"); v != 11 {
		t.Fatalf("next = %d, want 11", v)
	}
	// Disable: no more counting.
	mustSet("en", 0)
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("count"); v != 10 {
		t.Fatalf("count after disable = %d", v)
	}
	if s.Cycles() != 16 {
		t.Fatalf("cycles = %d", s.Cycles())
	}
}

func TestCounterWraps(t *testing.T) {
	s := build(t, counterSrc, "counter")
	s.SetInput("en", 1)
	if err := s.Run(256); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("count"); v != 0 {
		t.Fatalf("count after 256 = %d, want wrap to 0", v)
	}
}

const fifoSrc = `
module fifo (
  input wire clk,
  input wire rst,
  input wire push,
  input wire pop,
  input wire [7:0] din,
  output wire [7:0] dout,
  output wire empty,
  output wire full,
  output wire [4:0] fill
);
  reg [7:0] mem [0:15];
  reg [3:0] rptr;
  reg [3:0] wptr;
  reg [4:0] count;
  assign dout = mem[rptr];
  assign empty = (count == 0);
  assign full = (count == 16);
  assign fill = count;
  always @(posedge clk) begin
    if (rst) begin
      rptr <= 0;
      wptr <= 0;
      count <= 0;
    end else begin
      if (push && !full) begin
        mem[wptr] <= din;
        wptr <= wptr + 1;
      end
      if (pop && !empty) begin
        rptr <= rptr + 1;
      end
      if (push && !full && !(pop && !empty))
        count <= count + 1;
      else if (pop && !empty && !(push && !full))
        count <= count - 1;
    end
  end
endmodule
`

func TestFIFO(t *testing.T) {
	s := build(t, fifoSrc, "fifo")
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)

	// Push 3 values.
	for i, v := range []uint64{0xAA, 0xBB, 0xCC} {
		s.SetInput("push", 1)
		s.SetInput("din", v)
		if err := s.StepCycle(); err != nil {
			t.Fatal(err)
		}
		if fill, _ := s.Peek("fill"); fill != uint64(i+1) {
			t.Fatalf("fill = %d after %d pushes", fill, i+1)
		}
	}
	s.SetInput("push", 0)

	// Pop them back in order.
	for _, want := range []uint64{0xAA, 0xBB, 0xCC} {
		if v, _ := s.Peek("dout"); v != want {
			t.Fatalf("dout = %#x, want %#x", v, want)
		}
		s.SetInput("pop", 1)
		if err := s.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	s.SetInput("pop", 0)
	if v, _ := s.Peek("empty"); v != 1 {
		t.Fatal("fifo should be empty")
	}
}

func TestFIFOFullBackpressure(t *testing.T) {
	s := build(t, fifoSrc, "fifo")
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)
	s.SetInput("push", 1)
	s.SetInput("din", 7)
	for i := 0; i < 20; i++ {
		s.StepCycle()
	}
	if v, _ := s.Peek("full"); v != 1 {
		t.Fatal("fifo should be full")
	}
	if v, _ := s.Peek("fill"); v != 16 {
		t.Fatalf("fill = %d, want 16", v)
	}
}

func TestSnapshotRestoreIdentity(t *testing.T) {
	s := build(t, fifoSrc, "fifo")
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)
	s.SetInput("push", 1)
	for i := 0; i < 5; i++ {
		s.SetInput("din", uint64(i*17))
		s.StepCycle()
	}
	s.SetInput("push", 0)

	snap := s.Snapshot()

	// Diverge: pop everything.
	s.SetInput("pop", 1)
	for i := 0; i < 10; i++ {
		s.StepCycle()
	}
	if v, _ := s.Peek("empty"); v != 1 {
		t.Fatal("should be empty after pops")
	}

	// Restore and verify we are back.
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("fill"); v != 5 {
		t.Fatalf("fill after restore = %d, want 5", v)
	}
	if v, _ := s.Peek("dout"); v != 0 {
		t.Fatalf("dout after restore = %#x, want 0 (first pushed value)", v)
	}
	// Continue execution: pop all five in order.
	s.SetInput("pop", 1)
	for _, want := range []uint64{0, 17, 34, 51, 68} {
		if v, _ := s.Peek("dout"); v != want {
			t.Fatalf("dout = %d, want %d", v, want)
		}
		s.StepCycle()
	}
}

// TestSnapshotRoundTripProperty: restoring a snapshot and re-snapshotting
// yields the identical snapshot, from arbitrary reachable states.
func TestSnapshotRoundTripProperty(t *testing.T) {
	s := build(t, fifoSrc, "fifo")
	f := func(ops []byte) bool {
		s.SetInput("rst", 1)
		s.StepCycle()
		s.SetInput("rst", 0)
		for _, op := range ops {
			s.SetInput("push", uint64(op)&1)
			s.SetInput("pop", uint64(op)>>1&1)
			s.SetInput("din", uint64(op))
			s.StepCycle()
		}
		snap1 := s.Snapshot()
		if err := s.Restore(snap1); err != nil {
			return false
		}
		snap2 := s.Snapshot()
		if len(snap1.Regs) != len(snap2.Regs) {
			return false
		}
		for k, v := range snap1.Regs {
			if snap2.Regs[k] != v {
				return false
			}
		}
		for k, v := range snap1.Mems {
			for i := range v {
				if snap2.Mems[k][i] != v[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsForeignState(t *testing.T) {
	s := build(t, counterSrc, "counter")
	snap := s.Snapshot()
	snap.Regs["ghost.reg"] = 1
	if err := s.Restore(snap); err == nil {
		t.Fatal("restore with unknown register must fail")
	}
}

func TestPokeRegister(t *testing.T) {
	s := build(t, counterSrc, "counter")
	if err := s.Poke("count", 200); err != nil {
		t.Fatal(err)
	}
	if err := s.EvalComb(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("next"); v != 201 {
		t.Fatalf("next = %d after poke", v)
	}
}

func TestHierarchicalSim(t *testing.T) {
	src := counterSrc + `
module pair (
  input wire clk,
  input wire rst,
  output wire [7:0] a,
  output wire [7:0] b
);
  wire [7:0] na;
  wire [7:0] nb;
  counter c0 (.clk(clk), .rst(rst), .en(1'b1), .count(a), .next(na));
  counter c1 (.clk(clk), .rst(rst), .en(1'b0), .count(b), .next(nb));
endmodule
`
	s := build(t, src, "pair")
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)
	s.Run(7)
	if v, _ := s.Peek("a"); v != 7 {
		t.Fatalf("a = %d", v)
	}
	if v, _ := s.Peek("b"); v != 0 {
		t.Fatalf("b = %d (en=0)", v)
	}
	if v, _ := s.Peek("c0.count"); v != 7 {
		t.Fatalf("c0.count = %d", v)
	}
}

func TestAlwaysCombBlock(t *testing.T) {
	src := `
module alu (
  input wire clk,
  input wire [1:0] op,
  input wire [7:0] a,
  input wire [7:0] b,
  output reg [7:0] y
);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd2: y = a & b;
      default: y = a ^ b;
    endcase
  end
endmodule
`
	s := build(t, src, "alu")
	s.SetInput("a", 0xF0)
	s.SetInput("b", 0x0F)
	cases := []struct {
		op   uint64
		want uint64
	}{{0, 0xFF}, {1, 0xE1}, {2, 0x00}, {3, 0xFF}}
	for _, tc := range cases {
		s.SetInput("op", tc.op)
		if err := s.EvalComb(); err != nil {
			t.Fatal(err)
		}
		if v, _ := s.Peek("y"); v != tc.want {
			t.Fatalf("op %d: y = %#x, want %#x", tc.op, v, tc.want)
		}
	}
}

func TestPartSelectWrite(t *testing.T) {
	src := `
module ps (
  input wire clk,
  input wire sel,
  input wire [3:0] nib,
  output reg [7:0] out
);
  always @(posedge clk) begin
    if (sel)
      out[7:4] <= nib;
    else
      out[3:0] <= nib;
  end
endmodule
`
	s := build(t, src, "ps")
	s.SetInput("sel", 0)
	s.SetInput("nib", 0xA)
	s.StepCycle()
	s.SetInput("sel", 1)
	s.SetInput("nib", 0x5)
	s.StepCycle()
	if v, _ := s.Peek("out"); v != 0x5A {
		t.Fatalf("out = %#x, want 0x5A", v)
	}
}

func TestConcatAssignment(t *testing.T) {
	src := `
module cc (
  input wire clk,
  input wire [7:0] in,
  output reg [3:0] hi,
  output reg [3:0] lo
);
  always @(posedge clk)
    {hi, lo} <= in;
endmodule
`
	s := build(t, src, "cc")
	s.SetInput("in", 0xC3)
	s.StepCycle()
	h, _ := s.Peek("hi")
	l, _ := s.Peek("lo")
	if h != 0xC || l != 0x3 {
		t.Fatalf("hi=%x lo=%x", h, l)
	}
}

func TestOnCycleHook(t *testing.T) {
	s := build(t, counterSrc, "counter")
	var seen []uint64
	s.OnCycle = func(c uint64) { seen = append(seen, c) }
	s.Run(3)
	if len(seen) != 3 || seen[2] != 3 {
		t.Fatalf("hook calls: %v", seen)
	}
}

func TestPeekPokeMem(t *testing.T) {
	s := build(t, fifoSrc, "fifo")
	if err := s.PokeMem("mem", 3, 0x7E); err != nil {
		t.Fatal(err)
	}
	v, err := s.PeekMem("mem", 3)
	if err != nil || v != 0x7E {
		t.Fatalf("peekmem: %v %v", v, err)
	}
	if _, err := s.PeekMem("mem", 999); err == nil {
		t.Fatal("oob peek must fail")
	}
	if err := s.PokeMem("mem", 999, 0); err == nil {
		t.Fatal("oob poke must fail")
	}
	if _, err := s.PeekMem("ghost", 0); err == nil {
		t.Fatal("unknown memory must fail")
	}
	if err := s.PokeMem("ghost", 0, 0); err == nil {
		t.Fatal("unknown memory must fail")
	}
}

func TestInputValidation(t *testing.T) {
	s := build(t, counterSrc, "counter")
	if err := s.SetInput("count", 1); err == nil {
		t.Fatal("SetInput on non-input must fail")
	}
	if err := s.SetInput("ghost", 1); err == nil {
		t.Fatal("SetInput on unknown signal must fail")
	}
	if _, err := s.Peek("ghost"); err == nil {
		t.Fatal("Peek unknown must fail")
	}
	if err := s.Poke("ghost", 1); err == nil {
		t.Fatal("Poke unknown must fail")
	}
}
