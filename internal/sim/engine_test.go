package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hardsnap/internal/periph"
	"hardsnap/internal/rtl"
	"hardsnap/internal/verilog"
)

// buildEngines elaborates one source and returns an interpreter and a
// compiled simulator over it. The compiled engine must not silently
// fall back: every construct these tests generate is meant to compile.
func buildEngines(t *testing.T, src, top string) (*Simulator, *Simulator) {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	d1, err := rtl.Elaborate(f, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, src)
	}
	// Elaborate twice so the two simulators share nothing.
	d2, err := rtl.Elaborate(f, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	si, err := NewEngine(d1, EngineInterp)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	sc, err := NewEngine(d2, EngineCompiled)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return si, sc
}

// sameState asserts bit-identical observable state between the two
// engines: every signal value, every memory element, the mutation
// generation and the dirty footprint.
func sameState(t *testing.T, si, sc *Simulator, ctx string) {
	t.Helper()
	for id, v := range si.state.Vals {
		if sc.state.Vals[id] != v {
			t.Fatalf("%s: signal %s: interp=%#x compiled=%#x",
				ctx, si.design.Signals[id].Name, v, sc.state.Vals[id])
		}
	}
	for id, m := range si.state.Mems {
		for i, v := range m {
			if sc.state.Mems[id][i] != v {
				t.Fatalf("%s: mem %s[%d]: interp=%#x compiled=%#x",
					ctx, si.design.Memories[id].Name, i, v, sc.state.Mems[id][i])
			}
		}
	}
	if si.Gen() != sc.Gen() {
		t.Fatalf("%s: gen: interp=%d compiled=%d", ctx, si.Gen(), sc.Gen())
	}
	if si.DirtyBits() != sc.DirtyBits() {
		t.Fatalf("%s: dirty bits: interp=%d compiled=%d", ctx, si.DirtyBits(), sc.DirtyBits())
	}
}

// TestCorpusPeripheralsCompile pins that every peripheral in the
// registry runs on the compiled engine — no silent interpreter
// fallback for the designs the repo actually benchmarks.
func TestCorpusPeripheralsCompile(t *testing.T) {
	for _, spec := range periph.All() {
		d, _, err := periph.Build(spec.Name, nil, false)
		if err != nil {
			t.Fatalf("%s: build: %v", spec.Name, err)
		}
		s, err := NewEngine(d, EngineCompiled)
		if err != nil {
			t.Fatalf("%s: does not compile: %v", spec.Name, err)
		}
		if s.Engine() != EngineCompiled {
			t.Fatalf("%s: engine = %s", spec.Name, s.Engine())
		}
		// And Auto must pick the compiled engine for them.
		a, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		if a.Engine() != EngineCompiled {
			t.Fatalf("%s: auto engine = %s", spec.Name, a.Engine())
		}
	}
}

// ---- random netlist generator for the differential fuzzer ----

type gsig struct {
	name  string
	width uint
}

type netlistGen struct {
	r       *rand.Rand
	inputs  []gsig
	regs    []gsig
	wires   []gsig
	memName string
	memW    uint
	memD    uint
}

func (g *netlistGen) width() uint { return uint(1 + g.r.Intn(64)) }

// readable returns signals an expression may reference: all inputs
// and registers, plus the first nwires wires (strict declaration
// order prevents combinational loops).
func (g *netlistGen) readable(nwires int) []gsig {
	out := append([]gsig{}, g.inputs...)
	out = append(out, g.regs...)
	out = append(out, g.wires[:nwires]...)
	return out
}

// expr emits a random expression over the given signals, depth-bounded.
func (g *netlistGen) expr(sigs []gsig, depth int) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		// Leaf: signal, literal, or constrained select.
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d'h%x", 1+g.r.Intn(64), g.r.Uint64())
		case 1:
			return fmt.Sprintf("%d", g.r.Uint32()>>uint(g.r.Intn(16)))
		default:
			s := sigs[g.r.Intn(len(sigs))]
			switch g.r.Intn(4) {
			case 0: // constant part select within width
				lo := g.r.Intn(int(s.width))
				hi := lo + g.r.Intn(int(s.width)-lo)
				return fmt.Sprintf("%s[%d:%d]", s.name, hi, lo)
			case 1: // dynamic bit select
				return fmt.Sprintf("%s[%s]", s.name, sigs[g.r.Intn(len(sigs))].name)
			default:
				return s.name
			}
		}
	}
	switch g.r.Intn(8) {
	case 0:
		op := []string{"~", "-", "!", "&", "|", "^"}[g.r.Intn(6)]
		return fmt.Sprintf("(%s %s)", op, g.expr(sigs, depth-1))
	case 1, 2, 3:
		op := []string{"+", "-", "*", "/", "%", "&", "|", "^", "&&", "||",
			"==", "!=", "<", "<=", ">", ">=", "<<", ">>"}[g.r.Intn(18)]
		return fmt.Sprintf("(%s %s %s)", g.expr(sigs, depth-1), op, g.expr(sigs, depth-1))
	case 4:
		return fmt.Sprintf("(%s ? %s : %s)",
			g.expr(sigs, depth-1), g.expr(sigs, depth-1), g.expr(sigs, depth-1))
	case 5: // concat of narrow signals, total <= 64
		var parts []string
		var total uint
		for i := 0; i < 3; i++ {
			s := sigs[g.r.Intn(len(sigs))]
			if total+s.width > 64 {
				continue
			}
			total += s.width
			parts = append(parts, s.name)
		}
		if parts == nil {
			return sigs[g.r.Intn(len(sigs))].name
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case 6: // repeat, n*w <= 64
		s := sigs[g.r.Intn(len(sigs))]
		n := 1 + g.r.Intn(int(64/s.width))
		return fmt.Sprintf("{%d{%s}}", n, s.name)
	default: // memory read
		if g.memName == "" {
			return sigs[g.r.Intn(len(sigs))].name
		}
		return fmt.Sprintf("%s[%s]", g.memName, g.expr(sigs, 0))
	}
}

// seqStmt emits one statement of a sequential block that may write
// only the given registers (single-writer discipline) and optionally
// the memory.
func (g *netlistGen) seqStmt(owned []gsig, mem bool, depth int) string {
	sigs := g.readable(len(g.wires))
	tgt := owned[g.r.Intn(len(owned))]
	switch g.r.Intn(7) {
	case 0:
		if depth > 0 {
			return fmt.Sprintf("if (%s) begin\n%s\n%s\nend else begin\n%s\nend",
				g.expr(sigs, 1), g.seqStmt(owned, mem, depth-1),
				g.seqStmt(owned, mem, depth-1), g.seqStmt(owned, mem, depth-1))
		}
		return fmt.Sprintf("%s <= %s;", tgt.name, g.expr(sigs, 2))
	case 1:
		if depth > 0 {
			var b strings.Builder
			fmt.Fprintf(&b, "case (%s)\n", g.expr(sigs, 1))
			for i := 0; i < 2; i++ {
				fmt.Fprintf(&b, "%d: %s\n", g.r.Intn(8), g.seqStmt(owned, mem, 0))
			}
			fmt.Fprintf(&b, "default: %s\n", g.seqStmt(owned, mem, 0))
			b.WriteString("endcase")
			return b.String()
		}
		return fmt.Sprintf("%s <= %s;", tgt.name, g.expr(sigs, 2))
	case 2: // bit write
		return fmt.Sprintf("%s[%s] <= %s;", tgt.name, g.expr(sigs, 0), g.expr(sigs, 1))
	case 3: // part-select write
		lo := g.r.Intn(int(tgt.width))
		hi := lo + g.r.Intn(int(tgt.width)-lo)
		return fmt.Sprintf("%s[%d:%d] <= %s;", tgt.name, hi, lo, g.expr(sigs, 1))
	case 4:
		if mem && g.memName != "" {
			return fmt.Sprintf("%s[%s] <= %s;", g.memName, g.expr(sigs, 1), g.expr(sigs, 2))
		}
		return fmt.Sprintf("%s <= %s;", tgt.name, g.expr(sigs, 2))
	case 5:
		if len(owned) >= 2 && owned[0].width+owned[1].width <= 64 {
			return fmt.Sprintf("{%s, %s} <= %s;", owned[0].name, owned[1].name, g.expr(sigs, 2))
		}
		return fmt.Sprintf("%s <= %s;", tgt.name, g.expr(sigs, 2))
	default:
		return fmt.Sprintf("%s <= %s;", tgt.name, g.expr(sigs, 2))
	}
}

// generate builds one random module. Layout: a few inputs, registers
// split across two always @(posedge) blocks (one of which may also
// own the memory), levelized assigns, and one always @(*) block.
func (g *netlistGen) generate() string {
	var b strings.Builder
	b.WriteString("module fz (\n  input wire clk")
	nin := 2 + g.r.Intn(3)
	for i := 0; i < nin; i++ {
		w := g.width()
		g.inputs = append(g.inputs, gsig{fmt.Sprintf("in%d", i), w})
		fmt.Fprintf(&b, ",\n  input wire [%d:0] in%d", w-1, i)
	}
	b.WriteString("\n);\n")
	nreg := 2 + g.r.Intn(4)
	for i := 0; i < nreg; i++ {
		w := g.width()
		g.regs = append(g.regs, gsig{fmt.Sprintf("r%d", i), w})
		fmt.Fprintf(&b, "  reg [%d:0] r%d;\n", w-1, i)
	}
	if g.r.Intn(4) != 0 {
		g.memW = g.width()
		g.memD = uint(2 + g.r.Intn(15))
		g.memName = "m0"
		fmt.Fprintf(&b, "  reg [%d:0] m0 [0:%d];\n", g.memW-1, g.memD-1)
	}

	// Levelized wires: each may read inputs, regs and earlier wires.
	nwire := 2 + g.r.Intn(4)
	for i := 0; i < nwire; i++ {
		w := g.width()
		fmt.Fprintf(&b, "  wire [%d:0] w%d;\n", w-1, i)
		g.wires = append(g.wires, gsig{fmt.Sprintf("w%d", i), w})
	}
	for i := 0; i < nwire; i++ {
		fmt.Fprintf(&b, "  assign w%d = %s;\n", i, g.expr(g.readable(i), 3))
	}

	// One comb always block driving a dedicated comb reg.
	cw := g.width()
	fmt.Fprintf(&b, "  reg [%d:0] c0;\n", cw-1)
	sigs := g.readable(nwire)
	fmt.Fprintf(&b, "  always @(*) begin\n    if (%s) c0 = %s;\n    else c0 = %s;\n  end\n",
		g.expr(sigs, 1), g.expr(sigs, 2), g.expr(sigs, 2))

	// Two seq blocks, registers split between them; the second owns
	// the memory when present.
	split := 1 + g.r.Intn(nreg-1)
	blockA, blockB := g.regs[:split], g.regs[split:]
	fmt.Fprintf(&b, "  always @(posedge clk) begin\n    %s\n    %s\n  end\n",
		g.seqStmt(blockA, false, 1), g.seqStmt(blockA, false, 1))
	if len(blockB) > 0 {
		fmt.Fprintf(&b, "  always @(posedge clk) begin\n    %s\n    %s\n  end\n",
			g.seqStmt(blockB, true, 1), g.seqStmt(blockB, true, 1))
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// TestDifferentialFuzz generates random small netlists and asserts
// the compiled engine is cycle-exact against the interpreter —
// identical signal values, memory contents, mutation generation and
// dirty footprint — across stepped cycles, input drives, over-wide
// pokes and anchor-guarded delta restores.
func TestDifferentialFuzz(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		g := &netlistGen{r: r}
		src := g.generate()
		si, sc := buildEngines(t, src, "fz")
		ctx := func(c int, what string) string {
			return fmt.Sprintf("seed %d cycle %d after %s\n%s", seed, c, what, src)
		}
		sameState(t, si, sc, ctx(0, "init"))

		si.ClearDirty()
		sc.ClearDirty()
		anchor := si.Snapshot()
		if !reflect.DeepEqual(anchor, sc.Snapshot()) {
			t.Fatalf("seed %d: anchor snapshots differ\n%s", seed, src)
		}

		for cycle := 0; cycle < 50; cycle++ {
			// Drive inputs with occasionally over-wide values.
			for _, in := range g.inputs {
				v := r.Uint64()
				if err := si.SetInput(in.name, v); err != nil {
					t.Fatal(err)
				}
				if err := sc.SetInput(in.name, v); err != nil {
					t.Fatal(err)
				}
			}
			// Interleave pokes: registers, wires and memory elements.
			if cycle%7 == 3 {
				tg := g.regs[r.Intn(len(g.regs))]
				v := r.Uint64()
				if err := si.Poke(tg.name, v); err != nil {
					t.Fatal(err)
				}
				if err := sc.Poke(tg.name, v); err != nil {
					t.Fatal(err)
				}
			}
			if cycle%11 == 5 {
				tg := g.wires[r.Intn(len(g.wires))]
				v := r.Uint64()
				si.Poke(tg.name, v)
				sc.Poke(tg.name, v)
			}
			if g.memName != "" && cycle%5 == 2 {
				idx := uint(r.Intn(int(g.memD)))
				v := r.Uint64()
				if err := si.PokeMem(g.memName, idx, v); err != nil {
					t.Fatal(err)
				}
				if err := sc.PokeMem(g.memName, idx, v); err != nil {
					t.Fatal(err)
				}
			}
			if err := si.StepCycle(); err != nil {
				t.Fatalf("seed %d: interp step: %v\n%s", seed, err, src)
			}
			if err := sc.StepCycle(); err != nil {
				t.Fatalf("seed %d: compiled step: %v\n%s", seed, err, src)
			}
			sameState(t, si, sc, ctx(cycle, "step"))
			if !reflect.DeepEqual(si.Snapshot(), sc.Snapshot()) {
				t.Fatalf("seed %d cycle %d: snapshots differ\n%s", seed, cycle, src)
			}

			// Periodically rewind both engines to the anchor.
			if cycle%17 == 13 {
				bi, err := si.RestoreDirty(anchor)
				if err != nil {
					t.Fatal(err)
				}
				bc2, err := sc.RestoreDirty(anchor)
				if err != nil {
					t.Fatal(err)
				}
				if bi != bc2 {
					t.Fatalf("seed %d cycle %d: restore bits interp=%d compiled=%d", seed, cycle, bi, bc2)
				}
				sameState(t, si, sc, ctx(cycle, "restore-dirty"))
			}
		}

		// Full restore back to the anchor must converge both engines.
		if err := si.Restore(anchor); err != nil {
			t.Fatal(err)
		}
		if err := sc.Restore(anchor); err != nil {
			t.Fatal(err)
		}
		sameState(t, si, sc, ctx(99, "restore"))
	}
}

// TestQuickExprEquivalence is the testing/quick property: for random
// expression trees, compile-then-run equals interpretation.
func TestQuickExprEquivalence(t *testing.T) {
	prop := func(seed int64, a, bv, c uint64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &netlistGen{r: r}
		wa, wb, wc := g.width(), g.width(), g.width()
		g.inputs = []gsig{{"a", wa}, {"b", wb}, {"c", wc}}
		src := fmt.Sprintf(`
module ex (
  input wire clk,
  input wire [%d:0] a,
  input wire [%d:0] b,
  input wire [%d:0] c,
  output wire [63:0] y
);
  assign y = %s;
endmodule
`, wa-1, wb-1, wc-1, g.expr(g.inputs, 4))
		si, sc := buildEngines(t, src, "ex")
		for _, vals := range [][3]uint64{{a, bv, c}, {c, a, bv}, {0, ^uint64(0), a}} {
			for i, name := range []string{"a", "b", "c"} {
				si.SetInput(name, vals[i])
				sc.SetInput(name, vals[i])
			}
			if err := si.EvalComb(); err != nil {
				t.Fatalf("interp eval: %v\n%s", err, src)
			}
			if err := sc.EvalComb(); err != nil {
				t.Fatal(err)
			}
			yi, _ := si.Peek("y")
			yc, _ := sc.Peek("y")
			if yi != yc {
				t.Logf("mismatch: interp=%#x compiled=%#x\n%s", yi, yc, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPokeMasksOnWrite is the regression for over-wide pokes leaving
// junk above the signal width in State.Vals: two semantically
// identical states must produce byte-identical snapshots.
func TestPokeMasksOnWrite(t *testing.T) {
	s1 := build(t, counterSrc, "counter")
	s2 := build(t, counterSrc, "counter")
	if err := s1.Poke("count", 0x42); err != nil {
		t.Fatal(err)
	}
	if err := s2.Poke("count", 0xdeadbeef_00000042); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.Peek("count"); v != 0x42 {
		t.Fatalf("over-wide poke not truncated: %#x", v)
	}
	if !reflect.DeepEqual(s1.Snapshot(), s2.Snapshot()) {
		t.Fatal("snapshots of semantically identical states differ")
	}
	if err := s1.SetInput("en", 0xfe); err != nil { // bit 0 is 0
		t.Fatal(err)
	}
	if v, _ := s1.Peek("en"); v != 0 {
		t.Fatalf("over-wide input drive not truncated: %#x", v)
	}
	if err := s2.PokeMem("nope", 0, 1); err == nil {
		t.Fatal("expected error for unknown memory")
	}
}

// TestSelfTogglingComb pins the trickiest activation case: a comb
// block reading its own output toggles exactly once per settle in
// both engines.
func TestSelfTogglingComb(t *testing.T) {
	const src = `
module tog (
  input wire clk,
  input wire en
);
  reg t;
  always @(*) begin
    if (en) t = ~t;
    else t = 0;
  end
endmodule
`
	si, sc := buildEngines(t, src, "tog")
	for _, s := range []*Simulator{si, sc} {
		if err := s.SetInput("en", 1); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 5; cycle++ {
		if err := si.StepCycle(); err != nil {
			t.Fatal(err)
		}
		if err := sc.StepCycle(); err != nil {
			t.Fatal(err)
		}
		vi, _ := si.Peek("t")
		vc, _ := sc.Peek("t")
		if vi != vc {
			t.Fatalf("cycle %d: interp=%d compiled=%d", cycle, vi, vc)
		}
	}
}

// TestQuiescentActivation verifies the activation win mechanically: a
// design whose logic is gated off runs ~zero comb nodes per cycle on
// the compiled engine once settled.
func TestQuiescentActivation(t *testing.T) {
	s := build(t, counterSrc, "counter")
	if s.Engine() != EngineCompiled {
		t.Fatalf("engine = %s, want compiled", s.Engine())
	}
	if err := s.Run(100); err != nil { // en=0: counter holds
		t.Fatal(err)
	}
	st, ok := s.EngineStats()
	if !ok {
		t.Fatal("no engine stats")
	}
	// 100 cycles x 2 settles; a full sweep would run >=200 nodes.
	// Quiescent logic must run a handful at most (initial settle).
	if st.CombRuns > 10 {
		t.Fatalf("quiescent design ran %d comb nodes over 100 cycles", st.CombRuns)
	}
	if st.SeqRuns > 10 {
		t.Fatalf("quiescent design ran %d seq blocks over 100 cycles", st.SeqRuns)
	}
	// Sanity: it still counts when enabled.
	if err := s.SetInput("en", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("count"); v != 3 {
		t.Fatalf("count = %d after enable", v)
	}
}

// ---- benchmarks (bench-smoke keeps these from rotting) ----

// busyBenchSrc keeps every node active every cycle: a free-running
// LFSR fans out through arithmetic, a case FSM and memory traffic.
const busyBenchSrc = `
module busy (
  input wire clk
);
  reg [31:0] lfsr;
  reg [31:0] acc;
  reg [1:0] st;
  reg [15:0] m [0:63];
  wire feedback = lfsr[31] ^ lfsr[21] ^ lfsr[1] ^ lfsr[0];
  wire [31:0] nxt = {lfsr[30:0], feedback};
  wire [31:0] mix = (nxt * 2654435761) ^ (acc >> 3);
  wire [15:0] folded = mix[31:16] ^ mix[15:0];
  always @(posedge clk) begin
    lfsr <= nxt;
    m[nxt[5:0]] <= folded;
    case (st)
      0: begin acc <= acc + mix; st <= 1; end
      1: begin acc <= acc ^ {2{folded}}; st <= 2; end
      2: begin acc <= acc - nxt; st <= 3; end
      default: begin acc <= m[acc[5:0]] + acc; st <= 0; end
    endcase
  end
endmodule
`

func benchSim(b *testing.B, src, top string, kind EngineKind) {
	b.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	d, err := rtl.Elaborate(f, top, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewEngine(d, kind)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.StepCycle(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBusyInterp(b *testing.B)    { benchSim(b, busyBenchSrc, "busy", EngineInterp) }
func BenchmarkBusyCompiled(b *testing.B)  { benchSim(b, busyBenchSrc, "busy", EngineCompiled) }
func BenchmarkQuietInterp(b *testing.B)   { benchSim(b, counterSrc, "counter", EngineInterp) }
func BenchmarkQuietCompiled(b *testing.B) { benchSim(b, counterSrc, "counter", EngineCompiled) }
func BenchmarkQuietCompiledFull(b *testing.B) {
	benchSim(b, counterSrc, "counter", EngineCompiledFull)
}
