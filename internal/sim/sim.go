// Package sim is the cycle-accurate simulator for elaborated RTL
// designs — HardSnap's equivalent of a Verilator-generated model. Each
// StepCycle evaluates combinational logic, executes every sequential
// block with nonblocking semantics, commits register/memory updates at
// the clock edge and re-settles combinational logic.
//
// Because simulated state is ordinary process memory, the simulator
// offers the full-visibility/full-controllability interface the paper
// attributes to the simulator target: any register or memory can be
// read and written between cycles, and complete hardware snapshots are
// cheap deep copies.
package sim

import (
	"fmt"

	"hardsnap/internal/rtl"
	"hardsnap/internal/verilog"
)

// Simulator drives one elaborated design instance.
type Simulator struct {
	design *rtl.Design
	state  *rtl.State
	cycles uint64

	// OnCycle, when set, is invoked after each completed cycle with
	// the cycle number; used by the tracer.
	OnCycle func(cycle uint64)

	writeBuf []rtl.Write
}

// New creates a simulator with zero-initialized state (the FPGA-like
// power-on state of the two-state model), with combinational logic
// settled.
func New(d *rtl.Design) (*Simulator, error) {
	s := &Simulator{design: d, state: rtl.NewState(d)}
	if err := s.EvalComb(); err != nil {
		return nil, err
	}
	return s, nil
}

// Design returns the simulated design.
func (s *Simulator) Design() *rtl.Design { return s.design }

// Cycles returns the number of clock cycles executed.
func (s *Simulator) Cycles() uint64 { return s.cycles }

// SetInput drives a top-level input.
func (s *Simulator) SetInput(name string, v uint64) error {
	sig, ok := s.design.SignalByName(name)
	if !ok || !sig.IsInput {
		return fmt.Errorf("sim: no input named %q", name)
	}
	s.state.Vals[sig.ID] = v
	return nil
}

// Peek reads any signal by hierarchical name.
func (s *Simulator) Peek(name string) (uint64, error) {
	sig, ok := s.design.SignalByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no signal named %q", name)
	}
	return s.state.Vals[sig.ID], nil
}

// Poke writes any signal by hierarchical name (full controllability).
// Poking a non-register is transient: the next comb settle overwrites
// it.
func (s *Simulator) Poke(name string, v uint64) error {
	sig, ok := s.design.SignalByName(name)
	if !ok {
		return fmt.Errorf("sim: no signal named %q", name)
	}
	s.state.Vals[sig.ID] = v
	return nil
}

// PeekMem reads one memory element.
func (s *Simulator) PeekMem(name string, idx uint) (uint64, error) {
	m, ok := s.design.MemoryByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no memory named %q", name)
	}
	if idx >= m.Depth {
		return 0, fmt.Errorf("sim: index %d out of range of %s", idx, name)
	}
	return s.state.Mems[m.ID][idx], nil
}

// PokeMem writes one memory element.
func (s *Simulator) PokeMem(name string, idx uint, v uint64) error {
	m, ok := s.design.MemoryByName(name)
	if !ok {
		return fmt.Errorf("sim: no memory named %q", name)
	}
	if idx >= m.Depth {
		return fmt.Errorf("sim: index %d out of range of %s", idx, name)
	}
	s.state.Mems[m.ID][idx] = v
	return nil
}

// EvalAssertion evaluates a property expression against the current
// state under the given scope, returning whether it holds (non-zero).
func (s *Simulator) EvalAssertion(e verilog.Expr, scope *rtl.Scope) (bool, error) {
	v, err := rtl.EvalExpr(e, scope, s.state)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// EvalComb settles combinational logic (nodes run in topological
// order, once).
func (s *Simulator) EvalComb() error {
	for _, c := range s.design.Combs {
		if err := c.ExecComb(s.state); err != nil {
			return err
		}
	}
	return nil
}

// StepCycle advances the design by one clock cycle.
func (s *Simulator) StepCycle() error {
	if err := s.EvalComb(); err != nil {
		return err
	}
	s.writeBuf = s.writeBuf[:0]
	for _, b := range s.design.Seqs {
		if err := b.ExecSeq(s.state, &s.writeBuf); err != nil {
			return err
		}
	}
	for i := range s.writeBuf {
		s.writeBuf[i].Apply(s.state)
	}
	if err := s.EvalComb(); err != nil {
		return err
	}
	s.cycles++
	if s.OnCycle != nil {
		s.OnCycle(s.cycles)
	}
	return nil
}

// Run executes n cycles.
func (s *Simulator) Run(n uint64) error {
	for i := uint64(0); i < n; i++ {
		if err := s.StepCycle(); err != nil {
			return err
		}
	}
	return nil
}

// HWState is a complete, portable hardware snapshot: every register
// and memory element by hierarchical name, plus top-level input pins.
// Name-keyed state transfers between different executions of the same
// peripheral (e.g. simulator target and FPGA target).
type HWState struct {
	Regs   map[string]uint64   `json:"regs"`
	Mems   map[string][]uint64 `json:"mems"`
	Inputs map[string]uint64   `json:"inputs"`
}

// Snapshot captures the full hardware state.
func (s *Simulator) Snapshot() *HWState {
	hw := &HWState{
		Regs:   make(map[string]uint64),
		Mems:   make(map[string][]uint64, len(s.design.Memories)),
		Inputs: make(map[string]uint64, len(s.design.Inputs)),
	}
	for _, sig := range s.design.Signals {
		if sig.IsReg {
			hw.Regs[sig.Name] = s.state.Vals[sig.ID]
		}
	}
	for _, m := range s.design.Memories {
		vals := make([]uint64, m.Depth)
		copy(vals, s.state.Mems[m.ID])
		hw.Mems[m.Name] = vals
	}
	for _, in := range s.design.Inputs {
		hw.Inputs[in.Name] = s.state.Vals[in.ID]
	}
	return hw
}

// Restore overwrites the hardware state from a snapshot and re-settles
// combinational logic. Snapshot entries that do not exist in this
// design are reported as an error (they indicate a design mismatch);
// registers of this design missing from the snapshot are reset to 0.
func (s *Simulator) Restore(hw *HWState) error {
	for _, sig := range s.design.Signals {
		if sig.IsReg {
			s.state.Vals[sig.ID] = hw.Regs[sig.Name]
		}
	}
	for name := range hw.Regs {
		if sig, ok := s.design.SignalByName(name); !ok || !sig.IsReg {
			return fmt.Errorf("sim: snapshot register %q does not exist in design", name)
		}
	}
	for _, m := range s.design.Memories {
		src := hw.Mems[m.Name]
		dst := s.state.Mems[m.ID]
		for i := range dst {
			if i < len(src) {
				dst[i] = src[i]
			} else {
				dst[i] = 0
			}
		}
	}
	for name := range hw.Mems {
		if _, ok := s.design.MemoryByName(name); !ok {
			return fmt.Errorf("sim: snapshot memory %q does not exist in design", name)
		}
	}
	for _, in := range s.design.Inputs {
		if v, ok := hw.Inputs[in.Name]; ok {
			s.state.Vals[in.ID] = v
		}
	}
	return s.EvalComb()
}

// StateBits returns the number of snapshot-relevant state bits.
func (s *Simulator) StateBits() uint { return s.design.StateBits() }
