// Package sim is the cycle-accurate simulator for elaborated RTL
// designs — HardSnap's equivalent of a Verilator-generated model. Each
// StepCycle evaluates combinational logic, executes every sequential
// block with nonblocking semantics, commits register/memory updates at
// the clock edge and re-settles combinational logic.
//
// Because simulated state is ordinary process memory, the simulator
// offers the full-visibility/full-controllability interface the paper
// attributes to the simulator target: any register or memory can be
// read and written between cycles, and complete hardware snapshots are
// cheap deep copies.
package sim

import (
	"fmt"
	"sync/atomic"

	"hardsnap/internal/rtl"
	"hardsnap/internal/rtl/bc"
	"hardsnap/internal/verilog"
)

// EngineKind selects how a Simulator evaluates the netlist.
type EngineKind int

const (
	// EngineAuto compiles the design to bytecode and silently falls
	// back to the interpreter if compilation is rejected. This is the
	// default: compiled designs run the bc engine with event-driven
	// activation, everything else behaves exactly as before.
	EngineAuto EngineKind = iota
	// EngineCompiled requires bytecode; construction fails if the
	// design cannot be compiled.
	EngineCompiled
	// EngineCompiledFull is bytecode with activation disabled (every
	// node runs every cycle) — the ablation baseline E16 measures.
	EngineCompiledFull
	// EngineInterp forces the AST interpreter.
	EngineInterp
)

// String names the engine for reports and flags.
func (k EngineKind) String() string {
	switch k {
	case EngineAuto:
		return "auto"
	case EngineCompiled:
		return "compiled"
	case EngineCompiledFull:
		return "compiled-full"
	case EngineInterp:
		return "interp"
	}
	return "?"
}

// defaultEngine is the process-wide engine used by New; hsbench's
// -interp flag flips it for A/B runs.
var defaultEngine atomic.Int32

// SetDefaultEngine changes the engine New uses.
func SetDefaultEngine(k EngineKind) { defaultEngine.Store(int32(k)) }

// DefaultEngine returns the engine New uses.
func DefaultEngine() EngineKind { return EngineKind(defaultEngine.Load()) }

// Simulator drives one elaborated design instance.
type Simulator struct {
	design *rtl.Design
	state  *rtl.State
	cycles uint64

	// eng is the compiled bytecode engine, nil when interpreting. It
	// shares s.state, so Peek/Poke/Snapshot/EvalAssertion observe the
	// same values either way; external state changes must be reported
	// to it so event-driven activation re-runs affected nodes.
	eng  *bc.Engine
	kind EngineKind

	// OnCycle, when set, is invoked after each completed cycle with
	// the cycle number; used by the tracer.
	OnCycle func(cycle uint64)

	writeBuf []rtl.Write

	// gen counts observed mutations of snapshot-relevant state
	// (registers, memories, input pins). It only moves when a value
	// actually changes, so idle designs clocking away do not look
	// dirty to the snapshotting layer.
	gen uint64
	// dirtySigs/dirtyMems record which registers/inputs (by signal
	// ID) and memories (by memory ID, whole-array granularity) have
	// changed since the last ClearDirty — the basis for delta
	// restores.
	dirtySigs map[int]struct{}
	dirtyMems map[int]struct{}
}

// New creates a simulator with zero-initialized state (the FPGA-like
// power-on state of the two-state model), with combinational logic
// settled, using the process default engine.
func New(d *rtl.Design) (*Simulator, error) {
	return NewEngine(d, DefaultEngine())
}

// NewEngine creates a simulator with an explicit engine choice.
func NewEngine(d *rtl.Design, kind EngineKind) (*Simulator, error) {
	s := &Simulator{
		design:    d,
		state:     rtl.NewState(d),
		kind:      EngineInterp,
		dirtySigs: make(map[int]struct{}),
		dirtyMems: make(map[int]struct{}),
	}
	switch kind {
	case EngineAuto:
		if prog, err := bc.Compile(d); err == nil {
			s.eng = bc.NewEngine(prog, s.state, true)
			s.kind = EngineCompiled
		}
	case EngineCompiled, EngineCompiledFull:
		prog, err := bc.Compile(d)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.eng = bc.NewEngine(prog, s.state, kind == EngineCompiled)
		s.kind = kind
	case EngineInterp:
	default:
		return nil, fmt.Errorf("sim: unknown engine kind %d", kind)
	}
	if err := s.EvalComb(); err != nil {
		return nil, err
	}
	return s, nil
}

// Engine reports which engine this simulator actually runs
// (EngineAuto resolves to EngineCompiled or EngineInterp).
func (s *Simulator) Engine() EngineKind { return s.kind }

// EngineStats returns the compiled engine's work counters; ok is
// false when interpreting.
func (s *Simulator) EngineStats() (bc.Stats, bool) {
	if s.eng == nil {
		return bc.Stats{}, false
	}
	return s.eng.Stats(), true
}

// Gen returns the mutation generation: a counter that advances only
// when snapshot-relevant state (a register, memory element or input
// pin) actually changes value. Two equal generations prove the
// hardware state is bit-identical.
func (s *Simulator) Gen() uint64 { return s.gen }

// ClearDirty re-anchors dirty tracking: the current state becomes the
// reference against which DirtyBits and RestoreDirty operate.
func (s *Simulator) ClearDirty() {
	clear(s.dirtySigs)
	clear(s.dirtyMems)
}

// DirtyBits returns the number of state bits touched since the last
// ClearDirty (memories count whole-array when any element changed).
func (s *Simulator) DirtyBits() uint {
	var n uint
	for id := range s.dirtySigs {
		n += s.design.Signals[id].Width
	}
	for id := range s.dirtyMems {
		m := s.design.Memories[id]
		n += m.Depth * m.Width
	}
	return n
}

// widthMask is the value mask of a w-bit element (mirrors the
// truncation rtl.Write.Apply performs on memory writes).
func widthMask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// markSig records a value change of a snapshot-relevant signal.
func (s *Simulator) markSig(id int) {
	s.gen++
	s.dirtySigs[id] = struct{}{}
}

// markMem records a value change inside a memory.
func (s *Simulator) markMem(id int) {
	s.gen++
	s.dirtyMems[id] = struct{}{}
}

// Design returns the simulated design.
func (s *Simulator) Design() *rtl.Design { return s.design }

// Cycles returns the number of clock cycles executed.
func (s *Simulator) Cycles() uint64 { return s.cycles }

// SetInput drives a top-level input. The value is truncated to the
// input's width — the same truncation rtl.Write.Apply performs — so
// over-wide drives cannot leave junk above the width in State.Vals
// (which Snapshot captures, making semantically identical states hash
// differently).
func (s *Simulator) SetInput(name string, v uint64) error {
	sig, ok := s.design.SignalByName(name)
	if !ok || !sig.IsInput {
		return fmt.Errorf("sim: no input named %q", name)
	}
	v &= widthMask(sig.Width)
	if s.state.Vals[sig.ID] != v {
		s.markSig(sig.ID)
		s.state.Vals[sig.ID] = v
		if s.eng != nil {
			s.eng.MarkSignal(sig.ID)
		}
	}
	return nil
}

// Peek reads any signal by hierarchical name.
func (s *Simulator) Peek(name string) (uint64, error) {
	sig, ok := s.design.SignalByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no signal named %q", name)
	}
	return s.state.Vals[sig.ID], nil
}

// Poke writes any signal by hierarchical name (full controllability).
// Poking a non-register is transient: the next comb settle overwrites
// it. The value is truncated to the signal's width (see SetInput).
func (s *Simulator) Poke(name string, v uint64) error {
	sig, ok := s.design.SignalByName(name)
	if !ok {
		return fmt.Errorf("sim: no signal named %q", name)
	}
	v &= widthMask(sig.Width)
	if s.state.Vals[sig.ID] != v {
		if sig.IsReg || sig.IsInput {
			s.markSig(sig.ID)
		}
		s.state.Vals[sig.ID] = v
		if s.eng != nil {
			s.eng.MarkSignal(sig.ID)
		}
	}
	return nil
}

// PeekMem reads one memory element.
func (s *Simulator) PeekMem(name string, idx uint) (uint64, error) {
	m, ok := s.design.MemoryByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no memory named %q", name)
	}
	if idx >= m.Depth {
		return 0, fmt.Errorf("sim: index %d out of range of %s", idx, name)
	}
	return s.state.Mems[m.ID][idx], nil
}

// PokeMem writes one memory element.
func (s *Simulator) PokeMem(name string, idx uint, v uint64) error {
	m, ok := s.design.MemoryByName(name)
	if !ok {
		return fmt.Errorf("sim: no memory named %q", name)
	}
	if idx >= m.Depth {
		return fmt.Errorf("sim: index %d out of range of %s", idx, name)
	}
	v &= widthMask(m.Width)
	if s.state.Mems[m.ID][idx] != v {
		s.markMem(m.ID)
		s.state.Mems[m.ID][idx] = v
		if s.eng != nil {
			s.eng.MarkMemory(m.ID)
		}
	}
	return nil
}

// EvalAssertion evaluates a property expression against the current
// state under the given scope, returning whether it holds (non-zero).
func (s *Simulator) EvalAssertion(e verilog.Expr, scope *rtl.Scope) (bool, error) {
	v, err := rtl.EvalExpr(e, scope, s.state)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// EvalComb settles combinational logic (nodes run in topological
// order, once). The compiled engine runs only nodes whose inputs
// changed since their last run; the interpreter runs all of them.
func (s *Simulator) EvalComb() error {
	if s.eng != nil {
		s.eng.Settle()
		return nil
	}
	for _, c := range s.design.Combs {
		if err := c.ExecComb(s.state); err != nil {
			return err
		}
	}
	return nil
}

// StepCycle advances the design by one clock cycle.
func (s *Simulator) StepCycle() error {
	if err := s.EvalComb(); err != nil {
		return err
	}
	s.writeBuf = s.writeBuf[:0]
	if s.eng != nil {
		s.eng.RunSeq(&s.writeBuf)
	} else {
		for _, b := range s.design.Seqs {
			if err := b.ExecSeq(s.state, &s.writeBuf); err != nil {
				return err
			}
		}
	}
	s.commitWrites()
	if err := s.EvalComb(); err != nil {
		return err
	}
	s.cycles++
	if s.OnCycle != nil {
		s.OnCycle(s.cycles)
	}
	return nil
}

// commitWrites applies buffered nonblocking writes with change
// detection: a write that alters a register or memory element bumps
// the mutation generation, dirties the element for delta restores,
// and (under the compiled engine) wakes every node sensitive to it.
func (s *Simulator) commitWrites() {
	for i := range s.writeBuf {
		w := &s.writeBuf[i]
		if w.Mem != nil {
			if w.Idx < uint64(w.Mem.Depth) && s.state.Mems[w.Mem.ID][w.Idx] != w.Val&widthMask(w.Mem.Width) {
				s.markMem(w.Mem.ID)
				if s.eng != nil {
					s.eng.MarkMemory(w.Mem.ID)
				}
			}
		} else {
			old := s.state.Vals[w.Sig.ID]
			if (old&^w.Mask)|(w.Val&w.Mask) != old {
				s.markSig(w.Sig.ID)
				if s.eng != nil {
					s.eng.MarkSignal(w.Sig.ID)
				}
			}
		}
		w.Apply(s.state)
	}
}

// Run executes n cycles.
func (s *Simulator) Run(n uint64) error {
	for i := uint64(0); i < n; i++ {
		if err := s.StepCycle(); err != nil {
			return err
		}
	}
	return nil
}

// HWState is a complete, portable hardware snapshot: every register
// and memory element by hierarchical name, plus top-level input pins.
// Name-keyed state transfers between different executions of the same
// peripheral (e.g. simulator target and FPGA target).
type HWState struct {
	Regs   map[string]uint64   `json:"regs"`
	Mems   map[string][]uint64 `json:"mems"`
	Inputs map[string]uint64   `json:"inputs"`
}

// Snapshot captures the full hardware state.
func (s *Simulator) Snapshot() *HWState {
	hw := &HWState{
		Regs:   make(map[string]uint64),
		Mems:   make(map[string][]uint64, len(s.design.Memories)),
		Inputs: make(map[string]uint64, len(s.design.Inputs)),
	}
	for _, sig := range s.design.Signals {
		if sig.IsReg {
			hw.Regs[sig.Name] = s.state.Vals[sig.ID]
		}
	}
	for _, m := range s.design.Memories {
		vals := make([]uint64, m.Depth)
		copy(vals, s.state.Mems[m.ID])
		hw.Mems[m.Name] = vals
	}
	for _, in := range s.design.Inputs {
		hw.Inputs[in.Name] = s.state.Vals[in.ID]
	}
	return hw
}

// Restore overwrites the hardware state from a snapshot and re-settles
// combinational logic. Snapshot entries that do not exist in this
// design are reported as an error (they indicate a design mismatch);
// registers of this design missing from the snapshot are reset to 0.
func (s *Simulator) Restore(hw *HWState) error {
	for _, sig := range s.design.Signals {
		if sig.IsReg {
			if v := hw.Regs[sig.Name] & widthMask(sig.Width); s.state.Vals[sig.ID] != v {
				s.markSig(sig.ID)
				s.state.Vals[sig.ID] = v
				if s.eng != nil {
					s.eng.MarkSignal(sig.ID)
				}
			}
		}
	}
	for name := range hw.Regs {
		if sig, ok := s.design.SignalByName(name); !ok || !sig.IsReg {
			return fmt.Errorf("sim: snapshot register %q does not exist in design", name)
		}
	}
	for _, m := range s.design.Memories {
		src := hw.Mems[m.Name]
		dst := s.state.Mems[m.ID]
		for i := range dst {
			v := uint64(0)
			if i < len(src) {
				v = src[i] & widthMask(m.Width)
			}
			if dst[i] != v {
				s.markMem(m.ID)
				dst[i] = v
				if s.eng != nil {
					s.eng.MarkMemory(m.ID)
				}
			}
		}
	}
	for name := range hw.Mems {
		if _, ok := s.design.MemoryByName(name); !ok {
			return fmt.Errorf("sim: snapshot memory %q does not exist in design", name)
		}
	}
	for _, in := range s.design.Inputs {
		if v, ok := hw.Inputs[in.Name]; ok {
			v &= widthMask(in.Width)
			if s.state.Vals[in.ID] != v {
				s.markSig(in.ID)
				s.state.Vals[in.ID] = v
				if s.eng != nil {
					s.eng.MarkSignal(in.ID)
				}
			}
		}
	}
	return s.EvalComb()
}

// RestoreDirty overwrites only the registers, memories and inputs
// marked dirty since the last ClearDirty, reading their reference
// values from hw. It is equivalent to Restore(hw) — and returns the
// number of state bits written back — ONLY under the caller-guaranteed
// precondition that hw equals the state that was live at the last
// ClearDirty (the anchor): every clean element already holds its
// anchor value, so rewriting it would be a no-op. Dirty tracking is
// re-anchored on success.
func (s *Simulator) RestoreDirty(hw *HWState) (uint, error) {
	var bits uint
	for id := range s.dirtySigs {
		sig := s.design.Signals[id]
		switch {
		case sig.IsReg:
			// Same missing-entry semantics as Restore: absent
			// registers reset to 0.
			s.state.Vals[id] = hw.Regs[sig.Name] & widthMask(sig.Width)
		case sig.IsInput:
			// Absent inputs keep their current value, as in Restore.
			if v, ok := hw.Inputs[sig.Name]; ok {
				s.state.Vals[id] = v & widthMask(sig.Width)
			}
		}
		// Written blind (no old-value compare), so conservatively
		// wake everything sensitive to the signal.
		if s.eng != nil {
			s.eng.MarkSignal(id)
		}
		bits += sig.Width
	}
	for id := range s.dirtyMems {
		m := s.design.Memories[id]
		src := hw.Mems[m.Name]
		dst := s.state.Mems[id]
		for i := range dst {
			if i < len(src) {
				dst[i] = src[i] & widthMask(m.Width)
			} else {
				dst[i] = 0
			}
		}
		if s.eng != nil {
			s.eng.MarkMemory(id)
		}
		bits += m.Depth * m.Width
	}
	if bits > 0 {
		// Preserve the invariant "gen unchanged ⟹ state unchanged"
		// for observers that sampled Gen before this restore.
		s.gen++
	}
	s.ClearDirty()
	if err := s.EvalComb(); err != nil {
		return bits, err
	}
	return bits, nil
}

// StateBits returns the number of snapshot-relevant state bits.
func (s *Simulator) StateBits() uint { return s.design.StateBits() }
