package bus

import (
	"errors"
	"testing"
)

// stubPort records accesses and plays back scripted IRQ levels.
type stubPort struct {
	regs   map[uint32]uint32
	irq    []bool
	irqIdx int
	fail   bool
}

func (s *stubPort) ReadReg(offset uint32) (uint32, error) {
	if s.fail {
		return 0, errors.New("boom")
	}
	return s.regs[offset], nil
}

func (s *stubPort) WriteReg(offset uint32, v uint32) error {
	if s.fail {
		return errors.New("boom")
	}
	if s.regs == nil {
		s.regs = map[uint32]uint32{}
	}
	s.regs[offset] = v
	return nil
}

func (s *stubPort) IRQLevel() (bool, error) {
	if s.fail {
		return false, errors.New("boom")
	}
	if s.irqIdx < len(s.irq) {
		v := s.irq[s.irqIdx]
		s.irqIdx++
		return v, nil
	}
	return false, nil
}

func mkRouter(t *testing.T, regions []Region) *Router {
	t.Helper()
	r, err := NewRouter(regions)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouting(t *testing.T) {
	a, b := &stubPort{}, &stubPort{}
	r := mkRouter(t, []Region{
		{Name: "a", Base: 0x40000000, Size: 0x100, IRQ: 0, Port: a},
		{Name: "b", Base: 0x40000100, Size: 0x100, IRQ: 1, Port: b},
	})
	if err := r.WriteMMIO(0x40000004, 4, 11); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMMIO(0x40000104, 4, 22); err != nil {
		t.Fatal(err)
	}
	if a.regs[4] != 11 || b.regs[4] != 22 {
		t.Fatalf("routing wrong: %v %v", a.regs, b.regs)
	}
	v, err := r.ReadMMIO(0x40000104, 4)
	if err != nil || v != 22 {
		t.Fatalf("read: %v %v", v, err)
	}
}

func TestUnmappedAndAlignment(t *testing.T) {
	r := mkRouter(t, []Region{{Name: "a", Base: 0x40000000, Size: 0x100, IRQ: -1, Port: &stubPort{}}})
	if _, err := r.ReadMMIO(0x40001000, 4); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("want ErrUnmapped, got %v", err)
	}
	if _, err := r.ReadMMIO(0x40000002, 4); !errors.Is(err, ErrAlignment) {
		t.Fatalf("want ErrAlignment, got %v", err)
	}
	if _, err := r.ReadMMIO(0x40000000, 2); !errors.Is(err, ErrAlignment) {
		t.Fatalf("want ErrAlignment for size 2, got %v", err)
	}
	if err := r.WriteMMIO(0x40000001, 4, 0); !errors.Is(err, ErrAlignment) {
		t.Fatalf("write alignment: %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	_, err := NewRouter([]Region{
		{Name: "a", Base: 0x1000, Size: 0x200, Port: &stubPort{}},
		{Name: "b", Base: 0x1100, Size: 0x100, Port: &stubPort{}},
	})
	if err == nil {
		t.Fatal("overlap must be rejected")
	}
}

func TestInvalidRegions(t *testing.T) {
	if _, err := NewRouter([]Region{{Name: "a", Base: 0, Size: 0x100}}); err == nil {
		t.Fatal("nil port must be rejected")
	}
	if _, err := NewRouter([]Region{{Name: "a", Base: 0, Size: 0, Port: &stubPort{}}}); err == nil {
		t.Fatal("zero size must be rejected")
	}
}

func TestIRQEdgeDetection(t *testing.T) {
	p := &stubPort{irq: []bool{false, true, true, false, true}}
	r := mkRouter(t, []Region{{Name: "a", Base: 0, Size: 0x100, IRQ: 3, Port: p}})

	seq := [][]int{nil, {3}, nil, nil, {3}}
	for i, want := range seq {
		got, err := r.RisingIRQs()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("sample %d: got %v want %v", i, got, want)
		}
	}
}

func TestIRQEdgeStateRoundTrip(t *testing.T) {
	p := &stubPort{irq: []bool{true, true}}
	r := mkRouter(t, []Region{{Name: "a", Base: 0, Size: 0x100, IRQ: 0, Port: p}})
	if got, _ := r.RisingIRQs(); len(got) != 1 {
		t.Fatal("first rising edge missed")
	}
	saved := r.IRQEdgeState()
	// Reset to empty: same level reads as a new edge.
	r.ResetIRQEdges(nil)
	if got, _ := r.RisingIRQs(); len(got) != 1 {
		t.Fatal("edge state reset not effective")
	}
	// Restore remembered level: no spurious edge.
	p.irq = []bool{true}
	p.irqIdx = 0
	r.ResetIRQEdges(saved)
	if got, _ := r.RisingIRQs(); len(got) != 0 {
		t.Fatal("restored edge state should suppress the edge")
	}
}

func TestIRQSampleErrorPropagates(t *testing.T) {
	p := &stubPort{fail: true}
	r := mkRouter(t, []Region{{Name: "a", Base: 0, Size: 0x100, IRQ: 0, Port: p}})
	if _, err := r.RisingIRQs(); err == nil {
		t.Fatal("port error must propagate")
	}
}

func TestRegionsAccessor(t *testing.T) {
	r := mkRouter(t, []Region{
		{Name: "b", Base: 0x200, Size: 0x100, IRQ: -1, Port: &stubPort{}},
		{Name: "a", Base: 0x100, Size: 0x100, IRQ: -1, Port: &stubPort{}},
	})
	regs := r.Regions()
	if len(regs) != 2 || regs[0].Name != "a" || regs[1].Name != "b" {
		t.Fatalf("regions not sorted: %+v", regs)
	}
}
