// Package bus implements the memory bus layer between the symbolic
// virtual machine and hardware peripherals: an address map, a router
// that adapts the VM's MMIO window onto per-peripheral register ports,
// and interrupt line aggregation.
//
// Peripherals follow the HardSnap register-port convention, a
// single-cycle synchronous subset of AXI4-Lite (word transactions,
// no bursts, separate ready/valid handshakes collapsed into `sel`):
//
//	input  wire        clk
//	input  wire        rst
//	input  wire        sel    // transaction this cycle
//	input  wire        wen    // 1 = write, 0 = read
//	input  wire [7:0]  addr   // byte offset, word aligned
//	input  wire [31:0] wdata
//	output wire [31:0] rdata
//	output wire        irq
//
// The interconnect itself (address decode, routing, IRQ aggregation)
// is modeled in Go rather than RTL; see DESIGN.md.
package bus

import (
	"errors"
	"fmt"
	"sort"
)

// Standard port signal names of the register-port convention.
const (
	SigClk   = "clk"
	SigRst   = "rst"
	SigSel   = "sel"
	SigWen   = "wen"
	SigAddr  = "addr"
	SigWData = "wdata"
	SigRData = "rdata"
	SigIRQ   = "irq"
)

// ErrUnmapped is returned for accesses outside every region.
var ErrUnmapped = errors.New("bus: address not mapped")

// ErrAlignment is returned for non-word-sized or unaligned accesses.
var ErrAlignment = errors.New("bus: MMIO requires aligned 32-bit access")

// Port is one peripheral's register interface as exposed by a hardware
// target (simulator or FPGA).
type Port interface {
	// ReadReg performs one read transaction at a byte offset.
	ReadReg(offset uint32) (uint32, error)
	// WriteReg performs one write transaction.
	WriteReg(offset uint32, v uint32) error
	// IRQLevel samples the peripheral's interrupt output.
	IRQLevel() (bool, error)
}

// Flusher is the optional coalescing surface of a Port: ports backed
// by a batching transport (the remote protocol's vectored frames)
// queue writes and clock advances, and Flush forces everything queued
// onto the hardware. Ports without buffering simply don't implement
// it.
type Flusher interface {
	Flush() error
}

// Region maps an address range onto a peripheral port.
type Region struct {
	Name string
	Base uint32
	Size uint32
	IRQ  int // CPU interrupt line; -1 if none
	Port Port
}

// Router routes MMIO accesses by address and tracks interrupt edges.
// It implements the vm.MMIO contract.
type Router struct {
	regions []Region
	// lastIRQ remembers the previous level per region for edge
	// detection.
	lastIRQ []bool
}

// NewRouter builds a router; regions must not overlap.
func NewRouter(regions []Region) (*Router, error) {
	sorted := make([]Region, len(regions))
	copy(sorted, regions)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		if prev.Base+prev.Size > cur.Base {
			return nil, fmt.Errorf("bus: regions %s and %s overlap", prev.Name, cur.Name)
		}
	}
	for _, r := range sorted {
		if r.Port == nil {
			return nil, fmt.Errorf("bus: region %s has no port", r.Name)
		}
		if r.Size == 0 {
			return nil, fmt.Errorf("bus: region %s has zero size", r.Name)
		}
	}
	return &Router{regions: sorted, lastIRQ: make([]bool, len(sorted))}, nil
}

// Regions returns the address map in base order.
func (r *Router) Regions() []Region {
	out := make([]Region, len(r.regions))
	copy(out, r.regions)
	return out
}

func (r *Router) find(addr uint32) (int, *Region) {
	for i := range r.regions {
		reg := &r.regions[i]
		if addr >= reg.Base && addr < reg.Base+reg.Size {
			return i, reg
		}
	}
	return -1, nil
}

// ReadMMIO implements the CPU-side MMIO read.
func (r *Router) ReadMMIO(addr uint32, size int) (uint32, error) {
	if size != 4 || addr%4 != 0 {
		return 0, fmt.Errorf("%w (addr %#x size %d)", ErrAlignment, addr, size)
	}
	_, reg := r.find(addr)
	if reg == nil {
		return 0, fmt.Errorf("%w (%#x)", ErrUnmapped, addr)
	}
	return reg.Port.ReadReg(addr - reg.Base)
}

// WriteMMIO implements the CPU-side MMIO write.
func (r *Router) WriteMMIO(addr uint32, size int, val uint32) error {
	if size != 4 || addr%4 != 0 {
		return fmt.Errorf("%w (addr %#x size %d)", ErrAlignment, addr, size)
	}
	_, reg := r.find(addr)
	if reg == nil {
		return fmt.Errorf("%w (%#x)", ErrUnmapped, addr)
	}
	return reg.Port.WriteReg(addr-reg.Base, val)
}

// Flush drains every region port that buffers operations (see
// Flusher). Buffering ports flush themselves before answering reads,
// so callers rarely need this; the engine uses it as an explicit
// barrier before reading final clocks and statistics.
func (r *Router) Flush() error {
	for i := range r.regions {
		if f, ok := r.regions[i].Port.(Flusher); ok {
			if err := f.Flush(); err != nil {
				return fmt.Errorf("bus: flush of %s: %w", r.regions[i].Name, err)
			}
		}
	}
	return nil
}

// RisingIRQs samples every region's interrupt line and returns the CPU
// IRQ numbers that transitioned low -> high since the previous call.
func (r *Router) RisingIRQs() ([]int, error) {
	return r.RisingIRQsInto(nil)
}

// RisingIRQsInto is RisingIRQs appending into a caller-provided buffer
// (usually buf[:0] over a fixed array), so per-instruction IRQ
// sampling in a fuzzing hot loop allocates nothing.
func (r *Router) RisingIRQsInto(buf []int) ([]int, error) {
	fired := buf
	for i := range r.regions {
		reg := &r.regions[i]
		if reg.IRQ < 0 {
			continue
		}
		level, err := reg.Port.IRQLevel()
		if err != nil {
			return nil, fmt.Errorf("bus: IRQ sample of %s: %w", reg.Name, err)
		}
		if level && !r.lastIRQ[i] {
			fired = append(fired, reg.IRQ)
		}
		r.lastIRQ[i] = level
	}
	return fired, nil
}

// ResetIRQEdges clears edge-detection state (used after restoring a
// snapshot, where the previous levels belong to another execution).
func (r *Router) ResetIRQEdges(levels []bool) {
	for i := range r.lastIRQ {
		if i < len(levels) {
			r.lastIRQ[i] = levels[i]
		} else {
			r.lastIRQ[i] = false
		}
	}
}

// IRQEdgeState exposes the current edge-detection levels for
// snapshotting.
func (r *Router) IRQEdgeState() []bool {
	out := make([]bool, len(r.lastIRQ))
	copy(out, r.lastIRQ)
	return out
}
