package fuzz

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"hardsnap/internal/vm"
)

func TestCorpusDedupBySignature(t *testing.T) {
	c := NewCorpus()
	if !c.Add([]byte{1, 2}, 0xAB, nil, false) {
		t.Fatal("first add rejected")
	}
	if c.Add([]byte{3, 4}, 0xAB, nil, false) {
		t.Fatal("duplicate signature admitted")
	}
	if !c.Add([]byte{3, 4}, 0xCD, nil, false) {
		t.Fatal("new signature rejected")
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestCorpusPickIntoNoAlloc(t *testing.T) {
	c := NewCorpus()
	c.Add([]byte{1, 2, 3, 4}, 1, nil, false)
	rng := rand.New(rand.NewSource(1))
	dst := make([]byte, 4)
	allocs := testing.AllocsPerRun(100, func() {
		c.PickInto(rng, dst)
	})
	if allocs != 0 {
		t.Fatalf("PickInto allocates %.1f/op", allocs)
	}
}

func TestCorpusPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	entries := []*Entry{
		{Data: []byte{0xDE, 0xAD}, Sig: 0x1111, Pairs: []CovPair{{Idx: 5, Cls: 1}}},
		{Data: []byte{0xBE, 0xEF}, Sig: 0x2222, Pairs: []CovPair{{Idx: 9, Cls: 2}}},
	}
	crashes := []Crash{
		{Input: []byte{0xA5, 0x00}, Stop: vm.StopAbort, PC: 0x140, Exec: 3, Count: 2},
	}
	if err := SaveCorpusDir(dir, entries, crashes); err != nil {
		t.Fatal(err)
	}

	seeds, suppress, err := LoadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 {
		t.Fatalf("loaded %d seeds, want 2", len(seeds))
	}
	// Queue files are named by signature, so load order is sig order.
	if string(seeds[0]) != "\xde\xad" || string(seeds[1]) != "\xbe\xef" {
		t.Fatalf("seeds %x", seeds)
	}
	if len(suppress) != 0 {
		t.Fatalf("unexpected suppressions %v", suppress)
	}

	// Crasher file exists with the representative input.
	data, err := os.ReadFile(filepath.Join(dir, crashersDir, "00000140_2.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "\xa5\x00" {
		t.Fatalf("crasher bytes %x", data)
	}
}

func TestSuppressionsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	content := "# known-bad bucket\n0x140 2\n00000208 4\n"
	if err := os.WriteFile(filepath.Join(dir, suppressFile), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, suppress, err := LoadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !suppress[CrashKey{PC: 0x140, Stop: vm.StopAbort}] {
		t.Fatal("0x140 abort not suppressed")
	}
	if !suppress[CrashKey{PC: 0x208, Stop: vm.StopFault}] {
		t.Fatal("0x208 fault not suppressed")
	}

	cb := newCrashBook(suppress)
	if cb.record([]byte{1}, vm.StopAbort, 0x140, 0) {
		t.Fatal("suppressed crash reported as first sighting")
	}
	if cb.suppressedCount() != 1 {
		t.Fatalf("suppressed=%d", cb.suppressedCount())
	}
	if cb.bucketCount() != 0 {
		t.Fatalf("buckets=%d", cb.bucketCount())
	}
	if !cb.record([]byte{1}, vm.StopAbort, 0x144, 1) {
		t.Fatal("unsuppressed crash not reported")
	}
}

func TestCrashBookDedup(t *testing.T) {
	cb := newCrashBook(nil)
	if !cb.record([]byte{1}, vm.StopAbort, 0x100, 0) {
		t.Fatal("first crash not first")
	}
	if cb.record([]byte{2}, vm.StopAbort, 0x100, 1) {
		t.Fatal("same bucket reported twice")
	}
	if !cb.record([]byte{3}, vm.StopFault, 0x100, 2) {
		t.Fatal("different stop reason is a different bucket")
	}
	crashes := cb.crashes()
	if len(crashes) != 2 {
		t.Fatalf("%d buckets", len(crashes))
	}
	if crashes[0].Count != 2 || crashes[0].Input[0] != 1 {
		t.Fatalf("first bucket %+v", crashes[0])
	}
}

// randomEntries derives a corpus from a quick-check seed: a handful
// of entries with random coverage pairs drawn from a small index
// space so entries overlap (the interesting minimization case).
func randomEntries(seed int64) []*Entry {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(20)
	entries := make([]*Entry, n)
	for i := range entries {
		np := 1 + rng.Intn(12)
		pairs := make([]CovPair, 0, np)
		for j := 0; j < np; j++ {
			pairs = append(pairs, CovPair{
				Idx: uint32(rng.Intn(64)),
				Cls: 1 << uint(rng.Intn(8)),
			})
		}
		entries[i] = &Entry{Data: []byte{byte(i)}, Sig: uint64(i), Pairs: pairs}
	}
	return entries
}

// TestMinimizePreservesUnionSignature is the satellite property: at
// any seed, the greedily minimized corpus covers exactly the same
// (edge, bucket-bit) union as the full corpus.
func TestMinimizePreservesUnionSignature(t *testing.T) {
	prop := func(seed int64) bool {
		entries := randomEntries(seed)
		min := Minimize(entries)
		if len(min) > len(entries) {
			return false
		}
		return UnionSignature(min) == UnionSignature(entries)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeDropsRedundantEntries(t *testing.T) {
	entries := []*Entry{
		{Data: []byte{0}, Pairs: []CovPair{{Idx: 1, Cls: 1}}},
		{Data: []byte{1}, Pairs: []CovPair{{Idx: 1, Cls: 1}}}, // redundant
		{Data: []byte{2}, Pairs: []CovPair{{Idx: 1, Cls: 1}, {Idx: 2, Cls: 1}}},
	}
	min := Minimize(entries)
	if len(min) != 1 {
		t.Fatalf("minimized to %d entries, want 1", len(min))
	}
	if min[0].Data[0] != 2 {
		t.Fatal("greedy pick should take the superset entry")
	}
}

// TestCampaignCorpusPersistence drives the full Run path through a
// corpus directory twice: the second campaign must load the first's
// queue as seeds and start from its coverage.
func TestCampaignCorpusPersistence(t *testing.T) {
	dir := t.TempDir()
	prog := assemble(t, crashFirmware)
	cfg := Config{
		Program:   prog,
		Reset:     ResetSnapshot,
		MaxExecs:  300,
		InputLen:  4,
		Seeds:     [][]byte{[]byte("Hx__")},
		Seed:      7,
		CorpusDir: dir,
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Corpus < 2 {
		t.Fatalf("first campaign corpus=%d", first.Corpus)
	}
	files, err := os.ReadDir(filepath.Join(dir, queueDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != first.Corpus {
		t.Fatalf("persisted %d queue files for corpus of %d", len(files), first.Corpus)
	}

	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Corpus < first.Corpus {
		t.Fatalf("reloaded campaign lost corpus: %d < %d", second.Corpus, first.Corpus)
	}
}
