package fuzz

import (
	"math/rand"
	"testing"
)

func TestBitmapEdgeAndReset(t *testing.T) {
	var b Bitmap
	b.Edge(0x100)
	b.Edge(0x104)
	b.Edge(0x100) // different edge: 0x104 -> 0x100
	if b.n == 0 {
		t.Fatal("no edges recorded")
	}
	sig := b.Signature()
	if sig == fnvOffset {
		t.Fatal("signature of non-empty bitmap is the empty hash")
	}
	b.Reset()
	for i := range b.hits {
		if b.hits[i] != 0 {
			t.Fatalf("hits[%d]=%d after Reset", i, b.hits[i])
		}
	}
	if got := b.Signature(); got != fnvOffset {
		t.Fatalf("signature after reset: %#x", got)
	}
}

func TestBitmapSignatureDeterministic(t *testing.T) {
	run := func() uint64 {
		var b Bitmap
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 5000; i++ {
			b.Edge(uint32(rng.Intn(2048)) * 4)
		}
		return b.Signature()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("signatures differ: %#x vs %#x", a, b)
	}
}

func TestBitmapOrderIndependentSignature(t *testing.T) {
	// Same set of transitions visited in a different interleaving of
	// independent chains must reduce to the same (idx, class) set.
	var a, b Bitmap
	a.Edge(0x100)
	a.Edge(0x104)
	a.Reset()
	// Rebuild identically; signature must match what a just produced.
	a.Edge(0x100)
	a.Edge(0x104)
	b.Edge(0x100)
	b.Edge(0x104)
	if a.Signature() != b.Signature() {
		t.Fatal("identical paths produced different signatures")
	}
}

func TestBitmapSaturation(t *testing.T) {
	var b Bitmap
	for i := 0; i < 1000; i++ {
		b.prev = 0 // pin the chain so the same slot is hit
		b.Edge(0x100)
	}
	// The slot must have saturated at 255, not wrapped to 0.
	found := false
	for _, h := range b.hits {
		if h == 255 {
			found = true
		}
		if h != 0 && h != 255 {
			t.Fatalf("unexpected count %d", h)
		}
	}
	if !found {
		t.Fatal("hot edge lost to counter wraparound")
	}
}

func TestBitmapOverflowFallback(t *testing.T) {
	var b Bitmap
	// Touch more distinct slots than the touched list holds.
	for i := 0; i < touchedCap+500; i++ {
		b.Edge(uint32(i) * 4)
	}
	if !b.overflow {
		t.Skip("synthetic walk did not overflow (hash collisions)")
	}
	sig := b.Signature()
	var g Global
	_, newBits := g.Merge(&b)
	if !newBits {
		t.Fatal("merge of fresh bitmap found nothing new")
	}
	if g.Edges() == 0 {
		t.Fatal("no edges counted through overflow path")
	}
	b.Reset()
	if b.Signature() != fnvOffset {
		t.Fatal("reset after overflow left residue")
	}
	_ = sig
}

func TestGlobalMergeBuckets(t *testing.T) {
	var g Global
	var b Bitmap

	b.Edge(0x200)
	newEdge, newBits := g.Merge(&b)
	if !newEdge || !newBits {
		t.Fatalf("first merge: newEdge=%v newBits=%v", newEdge, newBits)
	}

	// Same single hit again: nothing new.
	b.Reset()
	b.Edge(0x200)
	newEdge, newBits = g.Merge(&b)
	if newEdge || newBits {
		t.Fatalf("identical merge: newEdge=%v newBits=%v", newEdge, newBits)
	}

	// Same edge executed twice: same slot, new hit-count bucket.
	var d Bitmap
	d.Edge(0x200)
	d.hits[d.touched[0]] = 2 // bucket class 2 instead of 1
	newEdge, newBits = g.Merge(&d)
	if newEdge {
		t.Fatal("bucket change misreported as new edge")
	}
	if !newBits {
		t.Fatal("new hit-count bucket not detected")
	}
	if g.Edges() != 1 {
		t.Fatalf("edges=%d, want 1", g.Edges())
	}
}

func TestClassLUT(t *testing.T) {
	cases := map[int]uint8{
		0: 0, 1: 1, 2: 2, 3: 4, 4: 8, 7: 8, 8: 16, 15: 16,
		16: 32, 31: 32, 32: 64, 127: 64, 128: 128, 255: 128,
	}
	for in, want := range cases {
		if got := classLUT[in]; got != want {
			t.Fatalf("classLUT[%d] = %d, want %d", in, got, want)
		}
	}
}

// synthetic PC walk shared by the coverage benchmarks: a loop-heavy
// path over 512 blocks, the shape a firmware exec produces.
func walkPCs(n int) []uint32 {
	rng := rand.New(rand.NewSource(1))
	pcs := make([]uint32, n)
	pc := uint32(0x100)
	for i := range pcs {
		switch rng.Intn(8) {
		case 0:
			pc = uint32(rng.Intn(512)) * 4 // jump
		default:
			pc += 4
			if pc >= 512*4 {
				pc = 0x100
			}
		}
		pcs[i] = pc
	}
	return pcs
}

// BenchmarkMapCoverage measures the seed fuzzer's per-edge cost: a
// map[uint64]bool keyed on (prevPC, PC), rebuilt per exec the way the
// old hot loop paid for it.
func BenchmarkMapCoverage(b *testing.B) {
	pcs := walkPCs(2000)
	edges := make(map[uint64]bool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := uint32(0)
		for _, pc := range pcs {
			edge := uint64(prev)<<32 | uint64(pc)
			if !edges[edge] {
				edges[edge] = true
			}
			prev = pc
		}
	}
}

// BenchmarkBitmapCoverage measures the rebuilt per-edge cost: the
// AFL-style bitmap with per-exec classify/merge/clear, the complete
// steady-state coverage cycle. Run with -benchmem: the loop is
// allocation-free.
func BenchmarkBitmapCoverage(b *testing.B) {
	pcs := walkPCs(2000)
	var bm Bitmap
	var g Global
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pc := range pcs {
			bm.Edge(pc)
		}
		g.Merge(&bm)
		bm.Reset()
	}
}
