package fuzz

import (
	"fmt"
	"math/rand"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/core"
	"hardsnap/internal/isa"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vm"
	"hardsnap/internal/vtime"
)

// interestingBytes are the classic boundary-ish mutation values
// (package-level so the mutator allocates nothing per exec).
var interestingBytes = [...]byte{0x00, 0xFF, 0x7F, 0x80, 0x41, 0x0A}

// branchSite is one statically-decoded conditional branch, tracked
// per worker for frontier detection: a site whose far side stays
// uncovered after FrontierK executions that reach it becomes a
// concolic candidate.
type branchSite struct {
	pc      uint32
	takenPC uint32
	fallPC  uint32

	seenTaken bool
	seenFall  bool
	// hits counts executions that reached the site while it was
	// one-sided; lastHit dedups multiple hits within one execution.
	hits    int
	lastHit int
	// repr is a preallocated copy of an input that reached the site.
	repr    []byte
	hasRepr bool
	// attempted marks sites the concolic loop already escalated (one
	// shot per side combination; reset when a new side is covered).
	attempted bool
}

// hitListCap bounds the per-exec distinct-branch-site list; execs
// touching more sites simply don't frontier-track the excess that
// exec (a heuristic, not a correctness surface).
const hitListCap = 256

// worker is one parallel fuzzing loop over a private target and CPU.
// All fields reachable from the per-instruction path are plain data:
// the hot loop performs no allocations and no dynamic dispatch beyond
// the unavoidable peripheral port calls at the hardware boundary.
type worker struct {
	id  int
	c   *campaign
	cfg *Config
	rng *rand.Rand

	cpu    *vm.CPU
	tgt    *target.Target
	router *bus.Router
	clock  *vtime.Clock

	snapman *core.SnapshotManager

	// cov is the per-exec coverage bitmap (64 KiB, allocated once
	// with the worker).
	cov Bitmap

	// input is the current test case; scratch is reused by corpus
	// picks. Both are preallocated at InputLen.
	input   []byte
	scratch []byte
	// irqBuf backs per-instruction IRQ sampling.
	irqBuf [8]int
	// sampleIRQs is false when no peripheral can drive its line, so
	// the loop skips sampling entirely.
	sampleIRQs bool

	// execSeq numbers this worker's executions (for lastHit dedup).
	execSeq int
	// irqsThisExec counts interrupts delivered in the current exec
	// (concolic replay can't model async IRQs, so recordings with
	// interrupts are skipped).
	irqsThisExec int

	// Snapshot-based reset state.
	cpuSnap *vm.Snapshot
	hwSnap  snapshot.ID
	powerOn snapshot.ID

	// Frontier tracking (hybrid mode only; nil otherwise).
	sites     []branchSite
	branchIdx []int32
	hitList   [hitListCap]int32
	nHit      int

	// pendingSeeds holds solver-produced inputs awaiting execution.
	pendingSeeds [][]byte
	curSolved    bool // current input came from the solver
	symex        *symexec.Executor

	start     time.Duration
	elapsed   time.Duration
	resetTime time.Duration
}

func newWorker(id int, c *campaign) (*worker, error) {
	cfg := &c.cfg
	clock := &vtime.Clock{}
	var tgt *target.Target
	var router *bus.Router
	var err error
	if len(cfg.Peripherals) > 0 {
		name := fmt.Sprintf("fuzz%d", id)
		if cfg.FPGA {
			tgt, err = target.NewFPGA(name, clock, cfg.Peripherals, false)
		} else {
			tgt, err = target.NewSimulator(name, clock, cfg.Peripherals)
		}
		if err != nil {
			return nil, err
		}
	}

	cpu := vm.New(vm.Config{}, nil)
	sampleIRQs := false
	if tgt != nil {
		regions := make([]bus.Region, 0, len(cfg.Peripherals))
		for i, pc := range cfg.Peripherals {
			p, err := tgt.Port(pc.Name)
			if err != nil {
				return nil, err
			}
			regions = append(regions, bus.Region{
				Name: pc.Name,
				Base: cpu.Config().MMIOBase + uint32(i)*0x100,
				Size: 0x100,
				IRQ:  i,
				Port: p,
			})
			if tgt.IRQWired(pc.Name) {
				sampleIRQs = true
			}
		}
		router, err = bus.NewRouter(regions)
		if err != nil {
			return nil, err
		}
		cpu = vm.New(vm.Config{}, router)
	}
	if err := cpu.Load(cfg.Program); err != nil {
		return nil, err
	}

	w := &worker{
		id:         id,
		c:          c,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed + int64(id)*0x9E3779B9)),
		cpu:        cpu,
		tgt:        tgt,
		router:     router,
		clock:      clock,
		input:      make([]byte, cfg.InputLen),
		scratch:    make([]byte, cfg.InputLen),
		sampleIRQs: sampleIRQs,
	}
	if tgt != nil {
		w.snapman = core.NewSnapshotManager(c.store, tgt, router)
	}
	if cfg.Hybrid {
		w.decodeBranchSites()
	}

	// The ecall hook feeds inputs and captures the snapshot point.
	cpu.OnEcall = func(cp *vm.CPU, service int32) bool {
		switch service {
		case isa.EcallMakeSymbolic:
			addr, length := cp.Regs[1], cp.Regs[2]
			for i := uint32(0); i < length; i++ {
				var b byte
				if int(i) < len(w.input) {
					b = w.input[i]
				}
				if err := cp.WriteMem(addr+i, 1, uint32(b)); err != nil {
					cp.Stop = vm.StopFault
					cp.Fault = err
					return true
				}
			}
			return true
		case isa.EcallSnapshotHint:
			if cfg.Reset == ResetSnapshot && w.cpuSnap == nil {
				w.captureSnapshot()
			}
			return true
		}
		return false
	}
	return w, nil
}

// decodeBranchSites statically scans the program image for
// conditional branches, building the pc-indexed side table the hot
// loop consults without hashing or allocation.
func (w *worker) decodeBranchSites() {
	code := w.cfg.Program.Code
	base := w.cfg.Program.Base
	w.branchIdx = make([]int32, len(code)/4)
	for i := range w.branchIdx {
		w.branchIdx[i] = -1
	}
	for off := 0; off+4 <= len(code); off += 4 {
		word := uint32(code[off]) | uint32(code[off+1])<<8 |
			uint32(code[off+2])<<16 | uint32(code[off+3])<<24
		in, err := isa.Decode(word)
		if err != nil {
			continue // data word
		}
		switch in.Op {
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
			pc := base + uint32(off)
			w.branchIdx[off/4] = int32(len(w.sites))
			w.sites = append(w.sites, branchSite{
				pc:      pc,
				takenPC: pc + uint32(in.Imm),
				fallPC:  pc + 4,
				lastHit: -1,
				repr:    make([]byte, w.cfg.InputLen),
			})
		}
	}
}

// run executes this worker's share of the campaign.
func (w *worker) run(quota int) error {
	if w.tgt != nil {
		var err error
		w.powerOn, err = w.snapman.Capture()
		if err != nil {
			return err
		}
	}

	// Seed corpus (workers race to admit the same seeds; signature
	// dedup keeps exactly one copy of each behavior).
	if err := w.runSeeds(); err != nil {
		return err
	}

	w.start = w.clock.Now()
	for i := 0; i < quota && !w.c.stopped(); i++ {
		if err := w.fuzzOne(); err != nil {
			return err
		}
	}
	w.elapsed = w.clock.Now() - w.start
	return nil
}

// runSeeds executes the zero input plus configured seeds so their
// coverage primes the corpus (the reference fuzzer admits seeds
// blindly; executing them keeps admission uniform and records their
// coverage pairs for minimization).
func (w *worker) runSeeds() error {
	seeds := make([][]byte, 0, 1+len(w.cfg.Seeds))
	seeds = append(seeds, make([]byte, w.cfg.InputLen))
	seeds = append(seeds, w.cfg.Seeds...)
	for _, s := range seeds {
		if err := w.reset(); err != nil {
			return err
		}
		w.setInput(s)
		stop, pc, err := w.execOne()
		if err != nil {
			return err
		}
		w.afterExec(stop, pc, true)
	}
	return nil
}

func (w *worker) setInput(src []byte) {
	n := copy(w.input, src)
	for i := n; i < len(w.input); i++ {
		w.input[i] = 0
	}
}

// fuzzOne runs one fuzzing iteration: reset, pick+mutate (or take a
// solver seed), execute, process coverage/crash/frontier.
func (w *worker) fuzzOne() error {
	if err := w.reset(); err != nil {
		return err
	}

	w.curSolved = false
	if n := len(w.pendingSeeds); n > 0 {
		w.setInput(w.pendingSeeds[n-1])
		w.pendingSeeds = w.pendingSeeds[:n-1]
		w.curSolved = true
	} else {
		for i := range w.scratch {
			w.scratch[i] = 0
		}
		w.c.corpus.PickInto(w.rng, w.scratch)
		w.setInput(w.scratch)
		w.mutate()
	}

	stop, pc, err := w.execOne()
	if err != nil {
		return err
	}
	execIdx := int(w.c.execs.Add(1)) - 1
	w.afterExec(stop, pc, false)

	if w.cfg.Stats != nil && (execIdx+1)%w.cfg.StatsEvery == 0 {
		w.c.emitStats(w)
	}
	return nil
}

// afterExec merges coverage, admits the input, records crashes, and
// (in hybrid mode) updates frontier state. seeding suppresses exec
// accounting for the corpus-priming pass.
func (w *worker) afterExec(stop vm.StopReason, pc uint32, seeding bool) {
	switch stop {
	case vm.StopAbort, vm.StopAssertFail, vm.StopFault:
		exec := int(w.c.execs.Load())
		if w.c.crashes.record(w.input, stop, pc, exec) {
			w.c.noteFirstCrash(w.clock.Now() - w.start)
			if w.cfg.StopAtFirstCrash {
				w.c.stopFlag.Store(true)
			}
		}
	}

	sig := w.cov.Signature()
	_, newBits := w.c.global.Merge(&w.cov)
	if newBits || seeding {
		// Admission is rare; allocating the coverage pairs and the
		// corpus copy here is off the hot path by construction.
		w.c.corpus.Add(w.input, sig, w.cov.Pairs(nil), w.curSolved)
	}

	if w.cfg.Hybrid && !seeding {
		w.updateFrontier()
	}
	w.cov.Reset()
	w.nHit = 0
}

// reset restores the inter-execution state per the strategy.
func (w *worker) reset() error {
	before := w.clock.Now()
	defer func() { w.resetTime += w.clock.Now() - before }()

	switch w.cfg.Reset {
	case ResetNone:
		// Even "no reset" must get the CPU running again; memory and
		// hardware keep their polluted state.
		w.cpu.Stop = vm.StopNone
		w.cpu.Fault = nil
		w.cpu.PC = w.cfg.Program.Entry
		return nil

	case ResetReboot:
		w.cpu.Reset()
		if err := w.cpu.Load(w.cfg.Program); err != nil {
			return err
		}
		if w.tgt != nil {
			if err := w.snapman.Restore(w.powerOn); err != nil {
				return err
			}
		}
		w.clock.Advance(vtime.RebootTime)
		return nil

	case ResetSnapshot:
		if w.cpuSnap == nil {
			// First execution: run until the snapshot hint (or entry).
			w.cpu.Reset()
			if err := w.cpu.Load(w.cfg.Program); err != nil {
				return err
			}
			return nil
		}
		w.cpu.RestoreSnapshot(w.cpuSnap)
		if w.tgt != nil && w.hwSnap != 0 {
			if err := w.snapman.Restore(w.hwSnap); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("fuzz: unknown reset strategy %d", w.cfg.Reset)
}

func (w *worker) captureSnapshot() {
	w.cpuSnap = w.cpu.Snapshot()
	if w.tgt != nil {
		if id, err := w.snapman.Capture(); err == nil {
			w.hwSnap = id
		}
	}
}

// execOne runs one test case to completion. This is the hot loop: no
// allocations, no interface calls except the hardware-boundary port
// operations, per-exec bookkeeping deferred to afterExec.
func (w *worker) execOne() (stop vm.StopReason, crashPC uint32, err error) {
	w.execSeq++
	w.irqsThisExec = 0
	cpu := w.cpu
	trackBranches := w.branchIdx != nil
	base := w.cfg.Program.Base
	progWords := uint32(len(w.branchIdx))
	var steps uint64
	for cpu.Stop == vm.StopNone && steps < w.cfg.MaxStepsPerExec {
		pcBefore := cpu.PC
		if !cpu.Step() {
			break
		}
		steps++
		w.clock.Advance(vtime.VMInstruction)
		w.cov.Edge(cpu.PC)
		if trackBranches {
			if off := (pcBefore - base) >> 2; off < progWords {
				if si := w.branchIdx[off]; si >= 0 {
					w.noteBranch(si)
				}
			}
		}
		if w.tgt != nil {
			if err := w.tgt.Advance(1); err != nil {
				return 0, 0, err
			}
			if w.sampleIRQs {
				irqs, err := w.router.RisingIRQsInto(w.irqBuf[:0])
				if err != nil {
					return 0, 0, err
				}
				for _, n := range irqs {
					cpu.RaiseIRQ(n)
					w.irqsThisExec++
				}
			}
		}
	}
	if steps >= w.cfg.MaxStepsPerExec && cpu.Stop == vm.StopNone {
		cpu.Stop = vm.StopBudget
	}
	return cpu.Stop, cpu.PC, nil
}

// noteBranch updates a branch site after the instruction at its PC
// executed; cpu.PC now holds the successor.
func (w *worker) noteBranch(si int32) {
	s := &w.sites[si]
	switch w.cpu.PC {
	case s.takenPC:
		if !s.seenTaken {
			s.seenTaken = true
			s.hits = 0
			s.attempted = false
		}
	case s.fallPC:
		if !s.seenFall {
			s.seenFall = true
			s.hits = 0
			s.attempted = false
		}
	default:
		return // interrupted mid-branch; attribute nothing
	}
	if s.lastHit != w.execSeq && w.nHit < hitListCap {
		s.lastHit = w.execSeq
		w.hitList[w.nHit] = si
		w.nHit++
	}
}

// mutate applies 1-3 of the classic mutation arms to w.input in
// place, allocation-free.
func (w *worker) mutate() {
	out := w.input
	n := 1 + w.rng.Intn(3)
	for i := 0; i < n; i++ {
		switch w.rng.Intn(4) {
		case 0: // bit flip
			if len(out) > 0 {
				idx := w.rng.Intn(len(out))
				out[idx] ^= 1 << uint(w.rng.Intn(8))
			}
		case 1: // random byte
			if len(out) > 0 {
				out[w.rng.Intn(len(out))] = byte(w.rng.Intn(256))
			}
		case 2: // interesting values
			if len(out) > 0 {
				out[w.rng.Intn(len(out))] = interestingBytes[w.rng.Intn(len(interestingBytes))]
			}
		case 3: // byte copy within input
			if len(out) > 1 {
				out[w.rng.Intn(len(out))] = out[w.rng.Intn(len(out))]
			}
		}
	}
}
