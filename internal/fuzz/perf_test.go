package fuzz

import (
	"testing"

	"hardsnap/internal/asm"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
)

func mustAssembleFuzz(tb testing.TB, src string) *asm.Program {
	tb.Helper()
	p, err := asm.Assemble(src, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// benchWorker builds a warmed-up single worker over the given
// firmware: snapshot captured, corpus primed, a few hundred
// iterations executed so admissions have tapered off and the loop is
// in its steady state.
func benchWorker(tb testing.TB, src string, periphs []target.PeriphConfig, inputLen int) *worker {
	tb.Helper()
	var prog = mustAssembleFuzz(tb, src)
	cfg := Config{
		Program:     prog,
		Peripherals: periphs,
		Reset:       ResetSnapshot,
		MaxExecs:    1 << 30, // workers pull from quota; irrelevant here
		InputLen:    inputLen,
		Seed:        1,
	}
	cfg = cfg.withDefaults()
	c := &campaign{
		cfg:     cfg,
		store:   snapshot.NewStore(),
		global:  &Global{},
		corpus:  NewCorpus(),
		crashes: newCrashBook(nil),
	}
	w, err := newWorker(0, c)
	if err != nil {
		tb.Fatal(err)
	}
	if w.tgt != nil {
		if w.powerOn, err = w.snapman.Capture(); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.runSeeds(); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := w.fuzzOne(); err != nil {
			tb.Fatal(err)
		}
	}
	return w
}

// steadyFirmware exercises the coverage loop without crashing: an
// input-dependent loop plus a few branches, always halting.
const steadyFirmware = `
_start:
		addi r10, r0, 50
init:
		addi r10, r10, -1
		bne r10, r0, init
		ecall 6
		li r1, 0x800
		addi r2, r0, 8
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 15
loop:
		addi r4, r4, -1
		bge r4, r0, loop
		lbu r5, 1(r1)
		addi r6, r0, 100
		blt r5, r6, low
		addi r7, r0, 1
low:
		halt
`

// TestFuzzExecZeroAlloc is the hard satellite gate: one steady-state
// fuzzing iteration (reset, pick, mutate, execute, classify, merge,
// clear) performs zero heap allocations — on a software-only target
// and with a simulated peripheral plus snapshot restore in the loop.
func TestFuzzExecZeroAlloc(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		periphs  []target.PeriphConfig
		inputLen int
	}{
		{"software", steadyFirmware, nil, 8},
		{"hardware", hwFirmware, []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := benchWorker(t, tc.src, tc.periphs, tc.inputLen)
			allocs := testing.AllocsPerRun(200, func() {
				if err := w.fuzzOne(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state fuzz iteration allocates %.2f/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkFuzzExec measures one complete steady-state fuzzing
// iteration on a software-only target. Run with -benchmem: the
// headline number is 0 allocs/op.
func BenchmarkFuzzExec(b *testing.B) {
	w := benchWorker(b, steadyFirmware, nil, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.fuzzOne(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuzzExecHardware is the same loop with a CRC peripheral on
// a simulator target in the loop — the E18 configuration.
func BenchmarkFuzzExecHardware(b *testing.B) {
	w := benchWorker(b, hwFirmware, []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.fuzzOne(); err != nil {
			b.Fatal(err)
		}
	}
}
