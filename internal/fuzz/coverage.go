package fuzz

import (
	"slices"
	"sync"
)

// MapSize is the edge-coverage bitmap size (AFL's classic 64 KiB: big
// enough that firmware-scale programs see few hash collisions, small
// enough to clear and merge in microseconds).
const MapSize = 1 << 16

const mapMask = MapSize - 1

// touchedCap bounds the per-exec touched-index list. An execution
// that touches more distinct edges than this falls back to a full
// bitmap scan; firmware test cases are typically a few hundred edges,
// so the overflow path exists for correctness, not speed.
const touchedCap = 4096

// classLUT maps a raw hit counter to its AFL bucket bit: 1, 2, 3,
// 4-7, 8-15, 16-31, 32-127, 128+ hits become bits 0..7. Bucketing
// turns "loop ran 100 times instead of 99" into "same behavior" while
// keeping "ran once" vs "ran many times" distinct.
var classLUT [256]uint8

func init() {
	for i := range classLUT {
		switch {
		case i == 0:
			classLUT[i] = 0
		case i == 1:
			classLUT[i] = 1 << 0
		case i == 2:
			classLUT[i] = 1 << 1
		case i == 3:
			classLUT[i] = 1 << 2
		case i <= 7:
			classLUT[i] = 1 << 3
		case i <= 15:
			classLUT[i] = 1 << 4
		case i <= 31:
			classLUT[i] = 1 << 5
		case i <= 127:
			classLUT[i] = 1 << 6
		default:
			classLUT[i] = 1 << 7
		}
	}
}

// Bitmap is one worker's per-execution edge-coverage map. Edge is the
// only method on the hot path: everything else runs once per exec.
// The struct embeds its arrays so a worker's bitmap is a single
// allocation at setup and zero allocations afterward.
type Bitmap struct {
	hits     [MapSize]uint8
	touched  [touchedCap]uint32
	n        int
	overflow bool
	prev     uint32
	sorted   bool
}

// hashPC spreads a (word-aligned) PC over the map, mimicking AFL's
// random per-block location with a multiplicative hash.
func hashPC(pc uint32) uint32 {
	return (pc >> 2) * 0x9E3779B1
}

// Edge records the transition into pc. The index is the XOR of this
// block's hash with the shifted previous one, so A->B and B->A count
// as different edges (AFL's classic trick).
func (b *Bitmap) Edge(pc uint32) {
	cur := hashPC(pc) & mapMask
	idx := cur ^ b.prev
	b.prev = cur >> 1
	h := b.hits[idx]
	if h == 0 {
		if b.n < touchedCap {
			b.touched[b.n] = idx
			b.n++
		} else {
			b.overflow = true
		}
	}
	if h != 255 { // saturate: 255 wrapping to 0 would lose the edge
		b.hits[idx]++
	}
}

// Reset clears the bitmap for the next execution, touching only the
// entries the last execution set (O(edges), not O(64 KiB)) unless the
// touched list overflowed.
func (b *Bitmap) Reset() {
	if b.overflow {
		clear(b.hits[:])
	} else {
		for i := 0; i < b.n; i++ {
			b.hits[b.touched[i]] = 0
		}
	}
	b.n = 0
	b.overflow = false
	b.prev = 0
	b.sorted = false
}

// forEach visits every set entry as (index, bucket-class) in
// ascending index order. It sorts the touched list in place on first
// use after an execution (allocation-free), or scans the whole map on
// overflow.
func (b *Bitmap) forEach(fn func(idx uint32, cls uint8)) {
	if b.overflow {
		for i := range b.hits {
			if h := b.hits[i]; h != 0 {
				fn(uint32(i), classLUT[h])
			}
		}
		return
	}
	if !b.sorted {
		slices.Sort(b.touched[:b.n])
		b.sorted = true
	}
	for i := 0; i < b.n; i++ {
		idx := b.touched[i]
		fn(idx, classLUT[b.hits[idx]])
	}
}

// fnv accumulates one (idx, cls) pair into an FNV-1a hash.
func fnvPair(h uint64, idx uint32, cls uint8) uint64 {
	const prime = 1099511628211
	h ^= uint64(idx)
	h *= prime
	h ^= uint64(cls)
	h *= prime
	return h
}

const fnvOffset = 14695981039346656037

// Signature digests the execution's coverage as an FNV-1a hash over
// the sorted (edge index, bucket class) pairs: two executions with
// identical bucketed coverage produce identical signatures, which is
// the corpus dedup key.
func (b *Bitmap) Signature() uint64 {
	h := uint64(fnvOffset)
	b.forEach(func(idx uint32, cls uint8) {
		h = fnvPair(h, idx, cls)
	})
	return h
}

// Pairs appends the execution's (index, class) pairs to buf in
// ascending index order. Called only on corpus admission (rare), so
// it may allocate.
func (b *Bitmap) Pairs(buf []CovPair) []CovPair {
	b.forEach(func(idx uint32, cls uint8) {
		buf = append(buf, CovPair{Idx: idx, Cls: cls})
	})
	return buf
}

// covStripes is the global-map lock striping factor: 64 stripes of
// 1 KiB each keep cross-worker merge contention negligible while the
// per-merge lock count stays tiny (touched lists are sorted, so each
// stripe is locked at most once per merge).
const covStripes = 64

const stripeShift = 10 // MapSize / covStripes = 1024 entries per stripe

// Global is the campaign-wide virgin map shared by all workers: each
// entry accumulates the bucket-class bits ever observed for that
// edge. Merging a worker's per-exec bitmap reports whether the
// execution lit any new bit (the corpus admission signal) and whether
// it lit a whole new edge.
type Global struct {
	mu     [covStripes]sync.Mutex
	virgin [MapSize]uint8
	edges  int
	edgeMu sync.Mutex
}

// Merge folds one execution's bitmap into the global map. newEdge
// reports a previously-unseen edge slot; newBits reports any new
// (edge, bucket) bit including newEdge cases.
func (g *Global) Merge(b *Bitmap) (newEdge, newBits bool) {
	locked := -1
	newEdges := 0
	b.forEach(func(idx uint32, cls uint8) {
		stripe := int(idx >> stripeShift)
		if stripe != locked {
			if locked >= 0 {
				g.mu[locked].Unlock()
			}
			g.mu[stripe].Lock()
			locked = stripe
		}
		old := g.virgin[idx]
		if old|cls != old {
			newBits = true
			if old == 0 {
				newEdge = true
				newEdges++
			}
			g.virgin[idx] = old | cls
		}
	})
	if locked >= 0 {
		g.mu[locked].Unlock()
	}
	if newEdges > 0 {
		g.edgeMu.Lock()
		g.edges += newEdges
		g.edgeMu.Unlock()
	}
	return newEdge, newBits
}

// Edges returns the number of distinct edge slots observed so far.
func (g *Global) Edges() int {
	g.edgeMu.Lock()
	defer g.edgeMu.Unlock()
	return g.edges
}
