// Package fuzz implements a coverage-guided mutational fuzzer for HS32
// firmware with hardware peripherals in the loop. Its purpose in the
// reproduction is experiment E8: quantifying how much snapshot-based
// state reset (HardSnap) accelerates fuzzing compared to the full
// reboot that embedded fuzzing otherwise requires between test cases
// (Muench et al., cited in the paper's motivation).
//
// The firmware under test requests input via `ecall 1`
// (make-symbolic): the fuzzer intercepts the call and copies the
// current test case into the requested buffer. Coverage is AFL-style
// edge coverage over (prevPC, PC) pairs.
package fuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hardsnap/internal/asm"
	"hardsnap/internal/bus"
	"hardsnap/internal/core"
	"hardsnap/internal/isa"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
	"hardsnap/internal/vm"
	"hardsnap/internal/vtime"
)

// ResetStrategy selects how state is reset between executions.
type ResetStrategy int

// Reset strategies.
const (
	// ResetReboot fully reboots CPU and hardware (the naive baseline;
	// charged vtime.RebootTime plus firmware re-initialization).
	ResetReboot ResetStrategy = iota + 1
	// ResetSnapshot restores a HardSnap HW/SW snapshot taken at the
	// first `ecall 6` (snapshot hint) or at the entry point.
	ResetSnapshot
	// ResetNone never resets (fast and wrong: state pollution).
	ResetNone
)

// String names the strategy.
func (r ResetStrategy) String() string {
	switch r {
	case ResetReboot:
		return "reboot"
	case ResetSnapshot:
		return "snapshot"
	case ResetNone:
		return "none"
	}
	return "?"
}

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Program is the assembled firmware.
	Program *asm.Program
	// Peripherals populate the hardware target.
	Peripherals []target.PeriphConfig
	// FPGA hosts the peripherals on the FPGA target.
	FPGA bool
	// Reset selects the inter-execution reset strategy.
	Reset ResetStrategy
	// MaxExecs bounds the number of test cases (default 256).
	MaxExecs int
	// MaxStepsPerExec bounds each execution (default 50k).
	MaxStepsPerExec uint64
	// InputLen is the test case size (default 8).
	InputLen int
	// Seeds optionally prime the corpus.
	Seeds [][]byte
	// Seed makes the campaign deterministic.
	Seed int64
	// StopAtFirstCrash ends the campaign at the first crash.
	StopAtFirstCrash bool
}

// Crash describes one crashing input.
type Crash struct {
	Input []byte
	Stop  vm.StopReason
	PC    uint32
	Exec  int
}

// Result summarizes a campaign.
type Result struct {
	Execs     int
	Crashes   []Crash
	Edges     int
	Corpus    int
	VirtTime  time.Duration
	ResetTime time.Duration
	// ExecsPerVirtSecond is the headline fuzzing throughput.
	ExecsPerVirtSecond float64

	// Snapshot-traffic breakdown (hardware targets only).
	//
	// HWSnapshotBytes is the state bytes that crossed the target
	// link; HWRestores counts restores that reached the hardware, of
	// which DeltaRestores went through the incremental dirty-only
	// path; RestoresSkipped/SavesSkipped were proven redundant by the
	// mutation generation and cost nothing.
	HWSnapshotBytes uint64
	HWRestores      uint64
	DeltaRestores   uint64
	RestoresSkipped uint64
	SavesSkipped    uint64
}

// Run executes a fuzzing campaign.
func Run(cfg Config) (*Result, error) {
	if cfg.Program == nil {
		return nil, errors.New("fuzz: no program")
	}
	if cfg.MaxExecs <= 0 {
		cfg.MaxExecs = 256
	}
	if cfg.MaxStepsPerExec == 0 {
		cfg.MaxStepsPerExec = 50_000
	}
	if cfg.InputLen <= 0 {
		cfg.InputLen = 8
	}
	if cfg.Reset == 0 {
		cfg.Reset = ResetSnapshot
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	clock := &vtime.Clock{}
	var tgt *target.Target
	var router *bus.Router
	var err error
	if len(cfg.Peripherals) > 0 {
		if cfg.FPGA {
			tgt, err = target.NewFPGA("fpga0", clock, cfg.Peripherals, false)
		} else {
			tgt, err = target.NewSimulator("sim0", clock, cfg.Peripherals)
		}
		if err != nil {
			return nil, err
		}
	}

	cpu := vm.New(vm.Config{}, nil)
	if tgt != nil {
		regions := make([]bus.Region, 0, len(cfg.Peripherals))
		for i, pc := range cfg.Peripherals {
			p, err := tgt.Port(pc.Name)
			if err != nil {
				return nil, err
			}
			regions = append(regions, bus.Region{
				Name: pc.Name,
				Base: cpu.Config().MMIOBase + uint32(i)*0x100,
				Size: 0x100,
				IRQ:  i,
				Port: p,
			})
		}
		router, err = bus.NewRouter(regions)
		if err != nil {
			return nil, err
		}
		cpu = vm.New(vm.Config{}, router)
	}
	if err := cpu.Load(cfg.Program); err != nil {
		return nil, err
	}

	f := &fuzzer{
		cfg:    cfg,
		rng:    rng,
		cpu:    cpu,
		tgt:    tgt,
		router: router,
		clock:  clock,
		edges:  make(map[uint64]bool),
	}
	if tgt != nil {
		f.snapman = core.NewSnapshotManager(snapshot.NewStore(), tgt, router)
	}
	return f.run()
}

type fuzzer struct {
	cfg    Config
	rng    *rand.Rand
	cpu    *vm.CPU
	tgt    *target.Target
	router *bus.Router
	clock  *vtime.Clock

	input []byte

	// snapman is the copy-on-write snapshot pipeline shared with the
	// engine: resets skip hardware traffic the generation proves
	// redundant and use delta restores on the simulator target.
	snapman *core.SnapshotManager

	// Snapshot-based reset state.
	cpuSnap *vm.Snapshot
	hwSnap  snapshot.ID

	// Power-on hardware snapshot for reboots.
	powerOn snapshot.ID

	edges     map[uint64]bool
	corpus    [][]byte
	resetTime time.Duration
}

func (f *fuzzer) run() (*Result, error) {
	cfg := f.cfg
	// The ecall hook feeds inputs and captures the snapshot point.
	f.cpu.OnEcall = func(c *vm.CPU, service int32) bool {
		switch service {
		case isa.EcallMakeSymbolic:
			addr, length := c.Regs[1], c.Regs[2]
			for i := uint32(0); i < length; i++ {
				var b byte
				if int(i) < len(f.input) {
					b = f.input[i]
				}
				if err := c.WriteMem(addr+i, 1, uint32(b)); err != nil {
					c.Stop = vm.StopFault
					c.Fault = err
					return true
				}
			}
			return true
		case isa.EcallSnapshotHint:
			if cfg.Reset == ResetSnapshot && f.cpuSnap == nil {
				f.captureSnapshot()
			}
			return true
		}
		return false
	}

	if f.tgt != nil {
		var err error
		f.powerOn, err = f.snapman.Capture()
		if err != nil {
			return nil, err
		}
	}

	// Seed corpus.
	f.corpus = append(f.corpus, make([]byte, cfg.InputLen))
	for _, s := range cfg.Seeds {
		f.corpus = append(f.corpus, append([]byte(nil), s...))
	}

	res := &Result{}
	start := f.clock.Now()
	for exec := 0; exec < cfg.MaxExecs; exec++ {
		if err := f.reset(); err != nil {
			return nil, err
		}
		f.input = f.mutate(f.corpus[f.rng.Intn(len(f.corpus))])
		newCov, stop, pc, err := f.execOne()
		if err != nil {
			return nil, err
		}
		res.Execs++
		switch stop {
		case vm.StopAbort, vm.StopAssertFail, vm.StopFault:
			res.Crashes = append(res.Crashes, Crash{
				Input: append([]byte(nil), f.input...),
				Stop:  stop,
				PC:    pc,
				Exec:  exec,
			})
			if cfg.StopAtFirstCrash {
				exec = cfg.MaxExecs
			}
		}
		if newCov {
			f.corpus = append(f.corpus, append([]byte(nil), f.input...))
		}
		if cfg.StopAtFirstCrash && len(res.Crashes) > 0 {
			break
		}
	}
	res.Edges = len(f.edges)
	res.Corpus = len(f.corpus)
	res.VirtTime = f.clock.Now() - start
	res.ResetTime = f.resetTime
	if f.tgt != nil {
		ts := f.tgt.Stats()
		ms := f.snapman.Stats()
		res.HWSnapshotBytes = ts.SnapshotBytes
		res.HWRestores = ts.Restores
		res.DeltaRestores = ts.DeltaRestores
		res.RestoresSkipped = ms.RestoresSkipped
		res.SavesSkipped = ms.SavesSkipped
	}
	if secs := res.VirtTime.Seconds(); secs > 0 {
		res.ExecsPerVirtSecond = float64(res.Execs) / secs
	}
	return res, nil
}

func (f *fuzzer) captureSnapshot() {
	f.cpuSnap = f.cpu.Snapshot()
	if f.tgt != nil {
		if id, err := f.snapman.Capture(); err == nil {
			f.hwSnap = id
		}
	}
}

func (f *fuzzer) reset() error {
	before := f.clock.Now()
	defer func() { f.resetTime += f.clock.Now() - before }()

	switch f.cfg.Reset {
	case ResetNone:
		// Even "no reset" must get the CPU running again; memory and
		// hardware keep their polluted state.
		f.cpu.Stop = vm.StopNone
		f.cpu.Fault = nil
		f.cpu.PC = f.cfg.Program.Entry
		return nil

	case ResetReboot:
		f.cpu.Reset()
		if err := f.cpu.Load(f.cfg.Program); err != nil {
			return err
		}
		if f.tgt != nil {
			if err := f.snapman.Restore(f.powerOn); err != nil {
				return err
			}
		}
		f.clock.Advance(vtime.RebootTime)
		return nil

	case ResetSnapshot:
		if f.cpuSnap == nil {
			// First execution: run until the snapshot hint (or entry).
			f.cpu.Reset()
			if err := f.cpu.Load(f.cfg.Program); err != nil {
				return err
			}
			return nil
		}
		f.cpu.RestoreSnapshot(f.cpuSnap)
		if f.tgt != nil && f.hwSnap != 0 {
			if err := f.snapman.Restore(f.hwSnap); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("fuzz: unknown reset strategy %d", f.cfg.Reset)
}

// execOne runs one test case to completion, collecting edge coverage.
func (f *fuzzer) execOne() (newCov bool, stop vm.StopReason, crashPC uint32, err error) {
	var steps uint64
	for f.cpu.Stop == vm.StopNone && steps < f.cfg.MaxStepsPerExec {
		pcBefore := f.cpu.PC
		if !f.cpu.Step() {
			break
		}
		steps++
		f.clock.Advance(vtime.VMInstruction)
		edge := uint64(pcBefore)<<32 | uint64(f.cpu.PC)
		if !f.edges[edge] {
			f.edges[edge] = true
			newCov = true
		}
		if f.tgt != nil {
			if err := f.tgt.Advance(1); err != nil {
				return false, 0, 0, err
			}
			irqs, err := f.router.RisingIRQs()
			if err != nil {
				return false, 0, 0, err
			}
			for _, n := range irqs {
				f.cpu.RaiseIRQ(n)
			}
		}
	}
	if steps >= f.cfg.MaxStepsPerExec && f.cpu.Stop == vm.StopNone {
		f.cpu.Stop = vm.StopBudget
	}
	return newCov, f.cpu.Stop, f.cpu.PC, nil
}

// mutate produces a variant of a corpus entry.
func (f *fuzzer) mutate(base []byte) []byte {
	out := make([]byte, f.cfg.InputLen)
	copy(out, base)
	n := 1 + f.rng.Intn(3)
	for i := 0; i < n; i++ {
		switch f.rng.Intn(4) {
		case 0: // bit flip
			if len(out) > 0 {
				idx := f.rng.Intn(len(out))
				out[idx] ^= 1 << uint(f.rng.Intn(8))
			}
		case 1: // random byte
			if len(out) > 0 {
				out[f.rng.Intn(len(out))] = byte(f.rng.Intn(256))
			}
		case 2: // interesting values
			if len(out) > 0 {
				vals := []byte{0x00, 0xFF, 0x7F, 0x80, 0x41, 0x0A}
				out[f.rng.Intn(len(out))] = vals[f.rng.Intn(len(vals))]
			}
		case 3: // byte copy within input
			if len(out) > 1 {
				out[f.rng.Intn(len(out))] = out[f.rng.Intn(len(out))]
			}
		}
	}
	return out
}
