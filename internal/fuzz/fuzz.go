// Package fuzz implements a coverage-guided mutational fuzzer for
// HS32 firmware with hardware peripherals in the loop, rebuilt around
// the throughput the paper's snapshot-based reset makes possible:
//
//   - The hot loop is allocation-free in the steady state: edge
//     coverage lands in a fixed 64 KiB AFL-style bitmap (prevPC-hash
//     XOR PC, bucketed hit counts), inputs mutate in preallocated
//     scratch buffers, and the per-instruction path does no interface
//     calls and no allocations (BenchmarkFuzzExec proves 0 allocs/exec).
//   - N parallel workers fuzz privately spawned targets sharing a
//     lock-striped global coverage map, a deduplicated corpus, and a
//     content-addressed snapshot store.
//   - A hybrid concolic mode closes the fuzz<->symexec loop: frontier
//     branches whose far side stays uncovered after K executions are
//     replayed concolically (internal/symexec), the uncovered side is
//     solved for (internal/solver), and the model is injected back as
//     a corpus seed.
//
// The firmware under test requests input via `ecall 1`
// (make-symbolic): the fuzzer intercepts the call and copies the
// current test case into the requested buffer.
package fuzz

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hardsnap/internal/asm"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
	"hardsnap/internal/vm"
)

// ResetStrategy selects how state is reset between executions.
type ResetStrategy int

// Reset strategies.
const (
	// ResetReboot fully reboots CPU and hardware (the naive baseline;
	// charged vtime.RebootTime plus firmware re-initialization).
	ResetReboot ResetStrategy = iota + 1
	// ResetSnapshot restores a HardSnap HW/SW snapshot taken at the
	// first `ecall 6` (snapshot hint) or at the entry point.
	ResetSnapshot
	// ResetNone never resets (fast and wrong: state pollution).
	ResetNone
)

// String names the strategy.
func (r ResetStrategy) String() string {
	switch r {
	case ResetReboot:
		return "reboot"
	case ResetSnapshot:
		return "snapshot"
	case ResetNone:
		return "none"
	}
	return "?"
}

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Program is the assembled firmware.
	Program *asm.Program
	// Peripherals populate the hardware target.
	Peripherals []target.PeriphConfig
	// FPGA hosts the peripherals on the FPGA target.
	FPGA bool
	// Reset selects the inter-execution reset strategy.
	Reset ResetStrategy
	// MaxExecs bounds the number of test cases (default 256), split
	// across workers.
	MaxExecs int
	// MaxStepsPerExec bounds each execution (default 50k).
	MaxStepsPerExec uint64
	// InputLen is the test case size (default 8).
	InputLen int
	// Seeds optionally prime the corpus.
	Seeds [][]byte
	// Seed makes the campaign deterministic (per worker; runs with
	// Workers <= 1 are byte-for-byte reproducible).
	Seed int64
	// StopAtFirstCrash ends the campaign at the first crash.
	StopAtFirstCrash bool

	// Workers is the number of parallel fuzz workers, each with a
	// privately spawned target sharing the global coverage map,
	// corpus, and snapshot store (default 1).
	Workers int

	// Hybrid enables the concolic feedback loop: frontier branches
	// whose far side stays uncovered after FrontierK executions are
	// replayed concolically and the uncovered side is solved for.
	Hybrid bool
	// FrontierK is the per-branch execution count before a one-sided
	// branch is escalated to the solver (default 8).
	FrontierK int
	// ConcolicMaxSteps bounds each concolic replay (default
	// MaxStepsPerExec).
	ConcolicMaxSteps int
	// SolverConflicts bounds each flip query (0 = unlimited).
	SolverConflicts int64

	// CorpusDir, when set, persists the corpus across campaigns:
	// queue inputs are loaded as seeds at startup and the
	// deduplicated queue plus crash buckets are written back at the
	// end. A suppressions.txt file in the directory mutes known crash
	// buckets.
	CorpusDir string

	// Stats, when set, receives a live one-line status every
	// StatsEvery executions (default 100).
	Stats io.Writer
	// StatsEvery is the stats-line period in executions.
	StatsEvery int
}

func (cfg *Config) withDefaults() Config {
	c := *cfg
	if c.MaxExecs <= 0 {
		c.MaxExecs = 256
	}
	if c.MaxStepsPerExec == 0 {
		c.MaxStepsPerExec = 50_000
	}
	if c.InputLen <= 0 {
		c.InputLen = 8
	}
	if c.Reset == 0 {
		c.Reset = ResetSnapshot
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.FrontierK <= 0 {
		c.FrontierK = 8
	}
	if c.ConcolicMaxSteps <= 0 {
		c.ConcolicMaxSteps = int(c.MaxStepsPerExec)
	}
	if c.StatsEvery <= 0 {
		c.StatsEvery = 100
	}
	return c
}

// Crash describes one crash bucket: the first input observed to crash
// at (PC, Stop) plus how often the bucket was hit.
type Crash struct {
	Input []byte
	Stop  vm.StopReason
	PC    uint32
	Exec  int
	// Count is the number of executions that landed in this bucket
	// (zero when produced by RunReference, which predates bucketing).
	Count int
}

// Key returns the crash's dedup bucket.
func (c *Crash) Key() CrashKey { return CrashKey{PC: c.PC, Stop: c.Stop} }

// Result summarizes a campaign.
type Result struct {
	Execs int
	// Crashes holds one entry per (PC, StopReason) bucket, ordered by
	// first sighting.
	Crashes []Crash
	Edges   int
	Corpus  int
	// VirtTime is the campaign makespan: the largest per-worker
	// virtual-time elapsed (workers run concurrently, so wall-clock
	// analogies apply).
	VirtTime time.Duration
	// ResetTime is the total virtual time spent in inter-execution
	// resets, summed across workers.
	ResetTime time.Duration
	// ExecsPerVirtSecond is the headline fuzzing throughput
	// (Execs / VirtTime, so N workers scale it ~N times).
	ExecsPerVirtSecond float64

	// Workers is the worker count the campaign ran with.
	Workers int
	// TimeToFirstCrash is the earliest per-worker virtual time at
	// which any crash bucket was first hit (0 if none).
	TimeToFirstCrash time.Duration
	// Suppressed counts crash occurrences muted by the suppression
	// list.
	Suppressed int

	// Hybrid-mode counters.
	//
	// ConcolicRuns counts concolic replays; SolvedSeeds counts solver
	// models injected back into the corpus.
	ConcolicRuns int
	SolvedSeeds  int

	// Snapshot-traffic breakdown (hardware targets only).
	//
	// HWSnapshotBytes is the state bytes that crossed the target
	// link; HWRestores counts restores that reached the hardware, of
	// which DeltaRestores went through the incremental dirty-only
	// path; RestoresSkipped/SavesSkipped were proven redundant by the
	// mutation generation and cost nothing.
	HWSnapshotBytes uint64
	HWRestores      uint64
	DeltaRestores   uint64
	RestoresSkipped uint64
	SavesSkipped    uint64
}

// campaign is the cross-worker shared state.
type campaign struct {
	cfg     Config
	store   *snapshot.Store
	global  *Global
	corpus  *Corpus
	crashes *crashBook

	stopFlag     atomic.Bool
	execs        atomic.Int64
	firstCrashNS atomic.Int64 // earliest worker vtime of first crash; 0 = none

	concolicRuns atomic.Int64
	solvedSeeds  atomic.Int64

	statsMu sync.Mutex
}

func (c *campaign) stopped() bool { return c.stopFlag.Load() }

// noteFirstCrash records the finding worker's virtual time, keeping
// the minimum across workers.
func (c *campaign) noteFirstCrash(elapsed time.Duration) {
	ns := int64(elapsed)
	if ns == 0 {
		ns = 1 // distinguish "crash at t=0" from "no crash"
	}
	for {
		cur := c.firstCrashNS.Load()
		if cur != 0 && cur <= ns {
			return
		}
		if c.firstCrashNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Run executes a fuzzing campaign.
func Run(cfg Config) (*Result, error) {
	if cfg.Program == nil {
		return nil, errors.New("fuzz: no program")
	}
	cfg = cfg.withDefaults()

	var suppress map[CrashKey]bool
	if cfg.CorpusDir != "" {
		seeds, sup, err := LoadCorpusDir(cfg.CorpusDir)
		if err != nil {
			return nil, err
		}
		cfg.Seeds = append(append([][]byte(nil), cfg.Seeds...), seeds...)
		suppress = sup
	}

	c := &campaign{
		cfg:     cfg,
		store:   snapshot.NewStore(),
		global:  &Global{},
		corpus:  NewCorpus(),
		crashes: newCrashBook(suppress),
	}

	// Workers pull exec quotas statically (round-robin remainder) so
	// single-worker runs consume exactly MaxExecs and multi-worker
	// runs stay balanced.
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		w, err := newWorker(i, c)
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}

	quota := cfg.MaxExecs / cfg.Workers
	extra := cfg.MaxExecs % cfg.Workers
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for i, w := range workers {
		q := quota
		if i < extra {
			q++
		}
		wg.Add(1)
		go func(i int, w *worker, q int) {
			defer wg.Done()
			errs[i] = w.run(q)
		}(i, w, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Execs:        int(c.execs.Load()),
		Crashes:      c.crashes.crashes(),
		Edges:        c.global.Edges(),
		Corpus:       c.corpus.Len(),
		Workers:      cfg.Workers,
		Suppressed:   c.crashes.suppressedCount(),
		ConcolicRuns: int(c.concolicRuns.Load()),
		SolvedSeeds:  int(c.solvedSeeds.Load()),
	}
	if ns := c.firstCrashNS.Load(); ns > 0 {
		res.TimeToFirstCrash = time.Duration(ns)
	}
	for _, w := range workers {
		if w.elapsed > res.VirtTime {
			res.VirtTime = w.elapsed
		}
		res.ResetTime += w.resetTime
		if w.tgt != nil {
			ts := w.tgt.Stats()
			res.HWSnapshotBytes += ts.SnapshotBytes
			res.HWRestores += ts.Restores
			res.DeltaRestores += ts.DeltaRestores
			ms := w.snapman.Stats()
			res.RestoresSkipped += ms.RestoresSkipped
			res.SavesSkipped += ms.SavesSkipped
		}
	}
	if secs := res.VirtTime.Seconds(); secs > 0 {
		res.ExecsPerVirtSecond = float64(res.Execs) / secs
	}

	if cfg.CorpusDir != "" {
		if err := SaveCorpusDir(cfg.CorpusDir, c.corpus.Entries(), res.Crashes); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// emitStats writes the live status line (rate-limited by StatsEvery
// at the call sites).
func (c *campaign) emitStats(w *worker) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	execs := c.execs.Load()
	var eps float64
	if secs := (w.clock.Now() - w.start).Seconds(); secs > 0 {
		eps = float64(execs) / secs
	}
	fmt.Fprintf(c.cfg.Stats, "fuzz: execs=%d edges=%d corpus=%d crashes=%d solved=%d execs/vsec=%.0f\n",
		execs, c.global.Edges(), c.corpus.Len(), c.crashes.bucketCount(), c.solvedSeeds.Load(), eps)
}
