package fuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/core"
	"hardsnap/internal/isa"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
	"hardsnap/internal/vm"
	"hardsnap/internal/vtime"
)

// RunReference executes a fuzzing campaign with the original
// map-based single-worker fuzzer, frozen here verbatim when the
// package was rebuilt around the bitmap hot loop. It is the
// differential oracle for the rewrite (the same role the reference
// interpreter plays for the compiled RTL engine): E18's identity gate
// runs both fuzzers over the same firmware and requires the same
// deduplicated crash-bucket set, and the throughput gate measures the
// new loop against this one. Do not optimize or otherwise modify it.
func RunReference(cfg Config) (*Result, error) {
	if cfg.Program == nil {
		return nil, errors.New("fuzz: no program")
	}
	if cfg.MaxExecs <= 0 {
		cfg.MaxExecs = 256
	}
	if cfg.MaxStepsPerExec == 0 {
		cfg.MaxStepsPerExec = 50_000
	}
	if cfg.InputLen <= 0 {
		cfg.InputLen = 8
	}
	if cfg.Reset == 0 {
		cfg.Reset = ResetSnapshot
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	clock := &vtime.Clock{}
	var tgt *target.Target
	var router *bus.Router
	var err error
	if len(cfg.Peripherals) > 0 {
		if cfg.FPGA {
			tgt, err = target.NewFPGA("fpga0", clock, cfg.Peripherals, false)
		} else {
			tgt, err = target.NewSimulator("sim0", clock, cfg.Peripherals)
		}
		if err != nil {
			return nil, err
		}
	}

	cpu := vm.New(vm.Config{}, nil)
	if tgt != nil {
		regions := make([]bus.Region, 0, len(cfg.Peripherals))
		for i, pc := range cfg.Peripherals {
			p, err := tgt.Port(pc.Name)
			if err != nil {
				return nil, err
			}
			regions = append(regions, bus.Region{
				Name: pc.Name,
				Base: cpu.Config().MMIOBase + uint32(i)*0x100,
				Size: 0x100,
				IRQ:  i,
				Port: p,
			})
		}
		router, err = bus.NewRouter(regions)
		if err != nil {
			return nil, err
		}
		cpu = vm.New(vm.Config{}, router)
	}
	if err := cpu.Load(cfg.Program); err != nil {
		return nil, err
	}

	f := &refFuzzer{
		cfg:    cfg,
		rng:    rng,
		cpu:    cpu,
		tgt:    tgt,
		router: router,
		clock:  clock,
		edges:  make(map[uint64]bool),
	}
	if tgt != nil {
		f.snapman = core.NewSnapshotManager(snapshot.NewStore(), tgt, router)
	}
	return f.run()
}

type refFuzzer struct {
	cfg    Config
	rng    *rand.Rand
	cpu    *vm.CPU
	tgt    *target.Target
	router *bus.Router
	clock  *vtime.Clock

	input []byte

	snapman *core.SnapshotManager

	cpuSnap *vm.Snapshot
	hwSnap  snapshot.ID

	powerOn snapshot.ID

	edges     map[uint64]bool
	corpus    [][]byte
	resetTime time.Duration
}

func (f *refFuzzer) run() (*Result, error) {
	cfg := f.cfg
	f.cpu.OnEcall = func(c *vm.CPU, service int32) bool {
		switch service {
		case isa.EcallMakeSymbolic:
			addr, length := c.Regs[1], c.Regs[2]
			for i := uint32(0); i < length; i++ {
				var b byte
				if int(i) < len(f.input) {
					b = f.input[i]
				}
				if err := c.WriteMem(addr+i, 1, uint32(b)); err != nil {
					c.Stop = vm.StopFault
					c.Fault = err
					return true
				}
			}
			return true
		case isa.EcallSnapshotHint:
			if cfg.Reset == ResetSnapshot && f.cpuSnap == nil {
				f.captureSnapshot()
			}
			return true
		}
		return false
	}

	if f.tgt != nil {
		var err error
		f.powerOn, err = f.snapman.Capture()
		if err != nil {
			return nil, err
		}
	}

	f.corpus = append(f.corpus, make([]byte, cfg.InputLen))
	for _, s := range cfg.Seeds {
		f.corpus = append(f.corpus, append([]byte(nil), s...))
	}

	res := &Result{}
	start := f.clock.Now()
	for exec := 0; exec < cfg.MaxExecs; exec++ {
		if err := f.reset(); err != nil {
			return nil, err
		}
		f.input = f.mutate(f.corpus[f.rng.Intn(len(f.corpus))])
		newCov, stop, pc, err := f.execOne()
		if err != nil {
			return nil, err
		}
		res.Execs++
		switch stop {
		case vm.StopAbort, vm.StopAssertFail, vm.StopFault:
			res.Crashes = append(res.Crashes, Crash{
				Input: append([]byte(nil), f.input...),
				Stop:  stop,
				PC:    pc,
				Exec:  exec,
			})
		}
		if newCov {
			f.corpus = append(f.corpus, append([]byte(nil), f.input...))
		}
		if cfg.StopAtFirstCrash && len(res.Crashes) > 0 {
			break
		}
	}
	res.Edges = len(f.edges)
	res.Corpus = len(f.corpus)
	res.VirtTime = f.clock.Now() - start
	res.ResetTime = f.resetTime
	if f.tgt != nil {
		ts := f.tgt.Stats()
		ms := f.snapman.Stats()
		res.HWSnapshotBytes = ts.SnapshotBytes
		res.HWRestores = ts.Restores
		res.DeltaRestores = ts.DeltaRestores
		res.RestoresSkipped = ms.RestoresSkipped
		res.SavesSkipped = ms.SavesSkipped
	}
	if secs := res.VirtTime.Seconds(); secs > 0 {
		res.ExecsPerVirtSecond = float64(res.Execs) / secs
	}
	return res, nil
}

func (f *refFuzzer) captureSnapshot() {
	f.cpuSnap = f.cpu.Snapshot()
	if f.tgt != nil {
		if id, err := f.snapman.Capture(); err == nil {
			f.hwSnap = id
		}
	}
}

func (f *refFuzzer) reset() error {
	before := f.clock.Now()
	defer func() { f.resetTime += f.clock.Now() - before }()

	switch f.cfg.Reset {
	case ResetNone:
		f.cpu.Stop = vm.StopNone
		f.cpu.Fault = nil
		f.cpu.PC = f.cfg.Program.Entry
		return nil

	case ResetReboot:
		f.cpu.Reset()
		if err := f.cpu.Load(f.cfg.Program); err != nil {
			return err
		}
		if f.tgt != nil {
			if err := f.snapman.Restore(f.powerOn); err != nil {
				return err
			}
		}
		f.clock.Advance(vtime.RebootTime)
		return nil

	case ResetSnapshot:
		if f.cpuSnap == nil {
			f.cpu.Reset()
			if err := f.cpu.Load(f.cfg.Program); err != nil {
				return err
			}
			return nil
		}
		f.cpu.RestoreSnapshot(f.cpuSnap)
		if f.tgt != nil && f.hwSnap != 0 {
			if err := f.snapman.Restore(f.hwSnap); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("fuzz: unknown reset strategy %d", f.cfg.Reset)
}

func (f *refFuzzer) execOne() (newCov bool, stop vm.StopReason, crashPC uint32, err error) {
	var steps uint64
	for f.cpu.Stop == vm.StopNone && steps < f.cfg.MaxStepsPerExec {
		pcBefore := f.cpu.PC
		if !f.cpu.Step() {
			break
		}
		steps++
		f.clock.Advance(vtime.VMInstruction)
		edge := uint64(pcBefore)<<32 | uint64(f.cpu.PC)
		if !f.edges[edge] {
			f.edges[edge] = true
			newCov = true
		}
		if f.tgt != nil {
			if err := f.tgt.Advance(1); err != nil {
				return false, 0, 0, err
			}
			irqs, err := f.router.RisingIRQs()
			if err != nil {
				return false, 0, 0, err
			}
			for _, n := range irqs {
				f.cpu.RaiseIRQ(n)
			}
		}
	}
	if steps >= f.cfg.MaxStepsPerExec && f.cpu.Stop == vm.StopNone {
		f.cpu.Stop = vm.StopBudget
	}
	return newCov, f.cpu.Stop, f.cpu.PC, nil
}

func (f *refFuzzer) mutate(base []byte) []byte {
	out := make([]byte, f.cfg.InputLen)
	copy(out, base)
	n := 1 + f.rng.Intn(3)
	for i := 0; i < n; i++ {
		switch f.rng.Intn(4) {
		case 0: // bit flip
			if len(out) > 0 {
				idx := f.rng.Intn(len(out))
				out[idx] ^= 1 << uint(f.rng.Intn(8))
			}
		case 1: // random byte
			if len(out) > 0 {
				out[f.rng.Intn(len(out))] = byte(f.rng.Intn(256))
			}
		case 2: // interesting values
			if len(out) > 0 {
				vals := []byte{0x00, 0xFF, 0x7F, 0x80, 0x41, 0x0A}
				out[f.rng.Intn(len(out))] = vals[f.rng.Intn(len(vals))]
			}
		case 3: // byte copy within input
			if len(out) > 1 {
				out[f.rng.Intn(len(out))] = out[f.rng.Intn(len(out))]
			}
		}
	}
	return out
}
