package fuzz

import (
	"testing"

	"hardsnap/internal/asm"
	"hardsnap/internal/target"
	"hardsnap/internal/vm"
)

// crashFirmware aborts on the 2-byte magic "HS" at the start of the
// input. A short init loop plus snapshot hint models device bring-up.
const crashFirmware = `
_start:
		; expensive init: pretend to configure things
		addi r10, r0, 200
init:
		addi r10, r10, -1
		bne r10, r0, init
		ecall 6            ; snapshot hint: clean post-init state
		; request input
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 72    ; 'H'
		bne r4, r5, ok
		lbu r4, 1(r1)
		addi r5, r0, 83    ; 'S'
		bne r4, r5, ok
		abort              ; crash on "HS.."
ok:
		halt
`

func assemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFuzzFindsMagicCrash(t *testing.T) {
	prog := assemble(t, crashFirmware)
	res, err := Run(Config{
		Program:  prog,
		Reset:    ResetSnapshot,
		MaxExecs: 4000,
		InputLen: 4,
		Seeds:    [][]byte{[]byte("Hx__")}, // one byte away
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashes) == 0 {
		t.Fatalf("no crash found in %d execs (edges %d)", res.Execs, res.Edges)
	}
	c := res.Crashes[0]
	if c.Stop != vm.StopAbort {
		t.Fatalf("crash kind %v", c.Stop)
	}
	if c.Input[0] != 'H' || c.Input[1] != 'S' {
		t.Fatalf("crashing input %q", c.Input)
	}
}

func TestSnapshotResetFasterThanReboot(t *testing.T) {
	prog := assemble(t, crashFirmware)
	run := func(reset ResetStrategy) *Result {
		res, err := Run(Config{
			Program:  prog,
			Reset:    reset,
			MaxExecs: 50,
			InputLen: 4,
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	snap := run(ResetSnapshot)
	reboot := run(ResetReboot)
	if snap.VirtTime >= reboot.VirtTime {
		t.Fatalf("snapshot reset (%v) must beat reboot (%v)", snap.VirtTime, reboot.VirtTime)
	}
	if snap.ExecsPerVirtSecond <= reboot.ExecsPerVirtSecond {
		t.Fatalf("execs/s: snapshot %.1f vs reboot %.1f", snap.ExecsPerVirtSecond, reboot.ExecsPerVirtSecond)
	}
	// The speedup should be substantial (reboot costs half a second).
	if snap.ExecsPerVirtSecond < 5*reboot.ExecsPerVirtSecond {
		t.Fatalf("speedup too small: %.1fx", snap.ExecsPerVirtSecond/reboot.ExecsPerVirtSecond)
	}
}

// hwFirmware feeds input through the CRC peripheral and crashes on a
// specific checksum-relevant property (first byte 0xA5).
const hwFirmware = `
_start:
		li r8, 0x40000000  ; crc32 base
		addi r4, r0, 1
		sw r4, 8(r8)       ; init
		ecall 6
		li r1, 0x800
		addi r2, r0, 2
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		sw r4, 0(r8)       ; feed byte
wait:
		lw r5, 12(r8)
		bne r5, r0, wait   ; poll busy
		lw r6, 4(r8)       ; read crc
		lbu r4, 0(r1)
		addi r5, r0, 0xA5
		bne r4, r5, ok
		abort
ok:
		halt
`

func TestFuzzWithHardware(t *testing.T) {
	prog := assemble(t, hwFirmware)
	res, err := Run(Config{
		Program:          prog,
		Peripherals:      []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}},
		Reset:            ResetSnapshot,
		MaxExecs:         2000,
		InputLen:         2,
		Seeds:            [][]byte{{0xA4, 0x00}},
		Seed:             3,
		StopAtFirstCrash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashes) == 0 {
		t.Fatalf("no crash in %d execs", res.Execs)
	}
	if res.Crashes[0].Input[0] != 0xA5 {
		t.Fatalf("input %x", res.Crashes[0].Input)
	}
}

func TestHardwareStateResetBetweenExecs(t *testing.T) {
	// Without reset, the timer keeps running across execs and the
	// firmware (which asserts the timer's value right after "boot")
	// reports false positives; with snapshot reset it never does.
	src := `
_start:
		li r8, 0x40000000
		ecall 6
		lw r4, 4(r8)       ; timer VALUE register
		sltiu r1, r4, 1    ; assert VALUE == 0 at boot
		ecall 2
		li r5, 5000
		sw r5, 0(r8)       ; LOAD
		addi r5, r0, 1
		sw r5, 8(r8)       ; enable
		addi r6, r0, 50
spin:
		addi r6, r6, -1
		bne r6, r0, spin
		halt
	`
	prog := assemble(t, src)
	run := func(reset ResetStrategy) *Result {
		res, err := Run(Config{
			Program:     prog,
			Peripherals: []target.PeriphConfig{{Name: "timer0", Periph: "timer"}},
			Reset:       reset,
			MaxExecs:    5,
			InputLen:    1,
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(ResetSnapshot)
	if len(clean.Crashes) != 0 {
		t.Fatalf("snapshot reset: %d false positives", len(clean.Crashes))
	}
	dirty := run(ResetNone)
	if len(dirty.Crashes) == 0 {
		t.Fatal("no-reset mode should produce state-pollution false positives")
	}
}

func TestDeterministicCampaigns(t *testing.T) {
	prog := assemble(t, crashFirmware)
	cfg := Config{Program: prog, Reset: ResetSnapshot, MaxExecs: 100, InputLen: 4, Seed: 99}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges != b.Edges || a.Execs != b.Execs || len(a.Crashes) != len(b.Crashes) ||
		a.VirtTime != b.VirtTime {
		t.Fatalf("campaigns not deterministic: %+v vs %+v", a, b)
	}
}

func TestCoverageGrows(t *testing.T) {
	prog := assemble(t, crashFirmware)
	res, err := Run(Config{Program: prog, Reset: ResetSnapshot, MaxExecs: 200, InputLen: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges < 10 {
		t.Fatalf("implausibly low edge count %d", res.Edges)
	}
	if res.Corpus < 2 {
		t.Fatalf("corpus did not grow: %d", res.Corpus)
	}
}

func TestSnapshotResetUsesDeltaRestores(t *testing.T) {
	// Every exec after the first restores the same power-on snapshot
	// the previous restore anchored, so the dirty-tracked delta path
	// must carry (nearly) all of the reset traffic on a plain
	// simulator target.
	prog := assemble(t, hwFirmware)
	res, err := Run(Config{
		Program:     prog,
		Peripherals: []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}},
		Reset:       ResetSnapshot,
		MaxExecs:    50,
		InputLen:    2,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaRestores == 0 {
		t.Fatalf("snapshot reset never used the delta path: %+v", res)
	}
	if res.DeltaRestores > res.HWRestores {
		t.Fatalf("delta restores %d exceed hardware restores %d",
			res.DeltaRestores, res.HWRestores)
	}
	full := res.HWRestores - res.DeltaRestores
	if full > res.DeltaRestores {
		t.Fatalf("full restores (%d) dominate delta restores (%d)",
			full, res.DeltaRestores)
	}
}
