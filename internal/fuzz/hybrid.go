package fuzz

import (
	"fmt"
	"time"

	"hardsnap/internal/solver"
	"hardsnap/internal/symexec"
	"hardsnap/internal/vm"
	"hardsnap/internal/vtime"
)

// updateFrontier runs after each execution in hybrid mode: every
// branch site this exec reached that is still one-sided accumulates a
// hit, remembers the reaching input, and — once FrontierK mutations
// failed to flip it — is escalated to the concolic loop.
func (w *worker) updateFrontier() {
	for i := 0; i < w.nHit; i++ {
		s := &w.sites[w.hitList[i]]
		if s.seenTaken && s.seenFall {
			continue
		}
		if !s.hasRepr || s.hits == 0 {
			copy(s.repr, w.input)
			s.hasRepr = true
		}
		s.hits++
		if s.hits >= w.cfg.FrontierK && !s.attempted {
			s.attempted = true
			if err := w.concolicAttempt(s); err != nil {
				// Concolic failures (replay divergence, solver give-up)
				// cost a wasted attempt, never the campaign.
				continue
			}
		}
	}
}

// mmioRecorder interposes on the CPU's bus to capture the value
// sequence a concrete execution reads from hardware, so the concolic
// replay can reproduce the exact same machine behavior without the
// hardware in the loop.
type mmioRecorder struct {
	inner vm.MMIO
	reads []uint32
}

func (r *mmioRecorder) ReadMMIO(addr uint32, size int) (uint32, error) {
	v, err := r.inner.ReadMMIO(addr, size)
	if err == nil {
		r.reads = append(r.reads, v)
	}
	return v, err
}

func (r *mmioRecorder) WriteMMIO(addr uint32, size int, val uint32) error {
	return r.inner.WriteMMIO(addr, size, val)
}

// mmioReplay feeds a recorded read sequence back to the symbolic
// executor as constants. Writes are discarded: their hardware effects
// are only visible through subsequent reads, which the recording
// already captured.
type mmioReplay struct {
	reads []uint32
	i     int
}

func (r *mmioReplay) Read(st *symexec.State, addr uint32) (uint32, error) {
	if r.i >= len(r.reads) {
		return 0, fmt.Errorf("fuzz: concolic replay diverged (read past recorded MMIO trace)")
	}
	v := r.reads[r.i]
	r.i++
	return v, nil
}

func (r *mmioReplay) Write(st *symexec.State, addr uint32, val uint32) error {
	return nil
}

// concolicAttempt tries to solve an input that covers the unseen side
// of frontier site s:
//
//  1. Re-execute the representative input with an MMIO recorder in
//     the loop, capturing the exact hardware read sequence (charged
//     real virtual time, like any execution).
//  2. Concolically replay the same input in internal/symexec with
//     the recorded reads standing in for the hardware, collecting
//     the path condition and every input-dependent branch.
//  3. Ask the solver for an input that preserves the path prefix up
//     to the frontier branch but takes the other side.
//  4. Queue the model as this worker's next input; execution then
//     validates it and the shared corpus admits it on merit.
func (w *worker) concolicAttempt(s *branchSite) error {
	w.c.concolicRuns.Add(1)

	// Step 1: recording run.
	if err := w.reset(); err != nil {
		return err
	}
	w.setInput(s.repr)
	var rec *mmioRecorder
	if w.router != nil {
		rec = &mmioRecorder{inner: w.router}
		w.cpu.SetMMIO(rec)
		defer w.cpu.SetMMIO(w.router)
	}
	// The concolic start state mirrors the concrete machine right
	// after reset, before any input is consumed.
	pre := w.cpu.Snapshot()
	if _, _, err := w.execOne(); err != nil {
		return err
	}
	w.cov.Reset()
	w.nHit = 0
	if w.irqsThisExec > 0 {
		// Interrupts fired: the replay cannot reproduce asynchronous
		// dispatch, so this candidate is skipped (the site stays
		// attempted until a new side is seen).
		return fmt.Errorf("fuzz: %d interrupts during recording, skipping concolic replay", w.irqsThisExec)
	}

	// Step 2: concolic replay.
	if w.symex == nil {
		ex, err := symexec.New(symexec.Config{
			VM:              w.cpu.Config(),
			SolverConflicts: w.cfg.SolverConflicts,
		}, w.cfg.Program, nil)
		if err != nil {
			return err
		}
		w.symex = ex
	}
	if rec != nil {
		w.symex.SetMMIO(&mmioReplay{reads: rec.reads})
	} else {
		w.symex.SetMMIO(nil)
	}
	st, err := w.symex.StateFromConcrete(pre.PC, pre.Regs, pre.Mem, pre.EPC, pre.InHandler, pre.Pending)
	if err != nil {
		return err
	}
	res, err := w.symex.RunConcolic(st, symexec.ConcolicInput{Default: s.repr}, w.cfg.ConcolicMaxSteps)
	if err != nil {
		return err
	}
	// The replay interprets the same instructions the hardware-driven
	// engine would; charge it the same virtual-time rate.
	w.clock.Advance(time.Duration(res.Steps) * vtime.VMInstruction)

	// Step 3: find the frontier branch in the trace and flip it
	// toward the unseen side.
	wantTaken := !s.seenTaken // the side we still need covered
	for i, br := range res.Branches {
		if br.PC != s.pc || br.Taken == wantTaken {
			continue
		}
		verdict, model := w.symex.SolveFlip(res, i)
		if verdict != solver.Sat {
			return fmt.Errorf("fuzz: flip query at pc=%#x not sat", s.pc)
		}
		if len(res.State.SymInputs) == 0 {
			return fmt.Errorf("fuzz: path at pc=%#x consumed no symbolic input", s.pc)
		}
		tag := res.State.SymInputs[0].Tag
		seed := symexec.ApplyModel(model, tag, s.repr)
		// Step 4: queue for the next iteration; the concrete run
		// validates the (deliberately under-constrained) model.
		w.pendingSeeds = append(w.pendingSeeds, seed)
		w.c.solvedSeeds.Add(1)
		return nil
	}
	return fmt.Errorf("fuzz: frontier branch pc=%#x not in concolic trace", s.pc)
}
