package fuzz

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hardsnap/internal/vm"
)

// CovPair is one (edge index, bucket class) observation; a corpus
// entry carries the sorted pairs of the execution that admitted it so
// minimization can reason about coverage without re-executing.
type CovPair struct {
	Idx uint32
	Cls uint8
}

// Entry is one corpus input with the coverage that earned its place.
type Entry struct {
	Data  []byte
	Sig   uint64
	Pairs []CovPair
	// Solved marks seeds injected by the concolic feedback loop.
	Solved bool
}

// Corpus is the deduplicated shared input queue. Admission is keyed
// on the execution's coverage signature: two inputs with identical
// bucketed coverage are behaviorally the same test case and only the
// first is kept.
type Corpus struct {
	mu      sync.Mutex
	entries []*Entry
	sigs    map[uint64]bool
}

// NewCorpus builds an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{sigs: make(map[uint64]bool)}
}

// Add admits data under the given coverage signature unless an entry
// with the same signature exists. The data slice is copied.
func (c *Corpus) Add(data []byte, sig uint64, pairs []CovPair, solved bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sigs[sig] {
		return false
	}
	c.sigs[sig] = true
	c.entries = append(c.entries, &Entry{
		Data:   append([]byte(nil), data...),
		Sig:    sig,
		Pairs:  pairs,
		Solved: solved,
	})
	return true
}

// Len returns the number of entries.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// PickInto copies a random entry (chosen with rng) into dst without
// allocating, returning the number of bytes copied. An empty corpus
// returns 0, leaving dst untouched.
func (c *Corpus) PickInto(rng *rand.Rand, dst []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) == 0 {
		return 0
	}
	return copy(dst, c.entries[rng.Intn(len(c.entries))].Data)
}

// Entries returns a snapshot of the entry list.
func (c *Corpus) Entries() []*Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// UnionSignature digests the union coverage of a set of entries: the
// FNV-1a hash over ascending edge indices with their OR-ed bucket
// bits. This is the corpus-level coverage identity that minimization
// must preserve.
func UnionSignature(entries []*Entry) uint64 {
	union := make(map[uint32]uint8)
	for _, e := range entries {
		for _, p := range e.Pairs {
			union[p.Idx] |= p.Cls
		}
	}
	idxs := make([]uint32, 0, len(union))
	for idx := range union {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	h := uint64(fnvOffset)
	for _, idx := range idxs {
		h = fnvPair(h, idx, union[idx])
	}
	return h
}

// Minimize returns a greedy minimal subset of entries whose union
// coverage equals the full set's: repeatedly keep the entry covering
// the most still-uncovered (edge, bucket-bit) pairs until everything
// is covered. The loop runs until no uncovered bits remain, so the
// union signature is preserved by construction.
func Minimize(entries []*Entry) []*Entry {
	want := make(map[uint32]uint8)
	for _, e := range entries {
		for _, p := range e.Pairs {
			want[p.Idx] |= p.Cls
		}
	}
	covered := make(map[uint32]uint8)
	remaining := 0
	for _, bits := range want {
		remaining += popcount8(bits)
	}
	var kept []*Entry
	used := make([]bool, len(entries))
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, e := range entries {
			if used[i] {
				continue
			}
			gain := 0
			for _, p := range e.Pairs {
				gain += popcount8(p.Cls &^ covered[p.Idx])
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // nothing adds coverage (shouldn't happen)
		}
		used[best] = true
		kept = append(kept, entries[best])
		for _, p := range entries[best].Pairs {
			fresh := p.Cls &^ covered[p.Idx]
			covered[p.Idx] |= p.Cls
			remaining -= popcount8(fresh)
		}
	}
	return kept
}

func popcount8(b uint8) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// CrashKey buckets crashing inputs: two crashes at the same PC with
// the same stop reason are the same bug for reporting purposes.
type CrashKey struct {
	PC   uint32
	Stop vm.StopReason
}

// crashBook collects deduplicated crashes and applies suppressions.
type crashBook struct {
	mu         sync.Mutex
	buckets    map[CrashKey]*Crash
	suppress   map[CrashKey]bool
	suppressed int
}

func newCrashBook(suppress map[CrashKey]bool) *crashBook {
	if suppress == nil {
		suppress = make(map[CrashKey]bool)
	}
	return &crashBook{buckets: make(map[CrashKey]*Crash), suppress: suppress}
}

// record notes one crash occurrence; first reports whether this is
// the first (non-suppressed) sighting of its bucket.
func (cb *crashBook) record(input []byte, stop vm.StopReason, pc uint32, exec int) (first bool) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	key := CrashKey{PC: pc, Stop: stop}
	if cb.suppress[key] {
		cb.suppressed++
		return false
	}
	if c, ok := cb.buckets[key]; ok {
		c.Count++
		return false
	}
	cb.buckets[key] = &Crash{
		Input: append([]byte(nil), input...),
		Stop:  stop,
		PC:    pc,
		Exec:  exec,
		Count: 1,
	}
	return true
}

// suppressedCount returns how many crash occurrences were muted.
func (cb *crashBook) suppressedCount() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.suppressed
}

// bucketCount returns the number of distinct crash buckets.
func (cb *crashBook) bucketCount() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return len(cb.buckets)
}

// crashes returns the buckets ordered by first-sighting exec index
// (ties broken by PC for determinism across map iteration).
func (cb *crashBook) crashes() []Crash {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	out := make([]Crash, 0, len(cb.buckets))
	for _, c := range cb.buckets {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exec != out[j].Exec {
			return out[i].Exec < out[j].Exec
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Persistent corpus layout under Config.CorpusDir:
//
//	queue/<sig>.bin          corpus inputs, named by coverage signature
//	crashers/<pc>_<stop>.bin representative input per crash bucket
//	suppressions.txt         one "pc stop" pair per line; crash buckets
//	                         listed here are counted but not reported
const (
	queueDir      = "queue"
	crashersDir   = "crashers"
	suppressFile  = "suppressions.txt"
	corpusFileExt = ".bin"
)

// SaveCorpusDir persists the corpus queue and crash buckets.
func SaveCorpusDir(dir string, entries []*Entry, crashes []Crash) error {
	if err := os.MkdirAll(filepath.Join(dir, queueDir), 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(dir, crashersDir), 0o755); err != nil {
		return err
	}
	for _, e := range entries {
		name := fmt.Sprintf("%016x%s", e.Sig, corpusFileExt)
		if err := os.WriteFile(filepath.Join(dir, queueDir, name), e.Data, 0o644); err != nil {
			return err
		}
	}
	for _, c := range crashes {
		name := fmt.Sprintf("%08x_%d%s", c.PC, int(c.Stop), corpusFileExt)
		if err := os.WriteFile(filepath.Join(dir, crashersDir, name), c.Input, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadCorpusDir reads persisted queue inputs (returned as seeds) and
// the suppression list. A missing directory is an empty corpus, not
// an error, so first runs need no setup.
func LoadCorpusDir(dir string) (seeds [][]byte, suppress map[CrashKey]bool, err error) {
	suppress = make(map[CrashKey]bool)
	files, err := os.ReadDir(filepath.Join(dir, queueDir))
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	// Sort for a deterministic seed order independent of readdir order.
	sort.Slice(files, func(i, j int) bool { return files[i].Name() < files[j].Name() })
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), corpusFileExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, queueDir, f.Name()))
		if err != nil {
			return nil, nil, err
		}
		seeds = append(seeds, data)
	}
	raw, err := os.ReadFile(filepath.Join(dir, suppressFile))
	if err != nil {
		if os.IsNotExist(err) {
			return seeds, suppress, nil
		}
		return nil, nil, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("fuzz: bad suppression line %q", line)
		}
		pc, err := strconv.ParseUint(strings.TrimPrefix(fields[0], "0x"), 16, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("fuzz: bad suppression pc %q: %v", fields[0], err)
		}
		stop, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("fuzz: bad suppression stop %q: %v", fields[1], err)
		}
		suppress[CrashKey{PC: uint32(pc), Stop: vm.StopReason(stop)}] = true
	}
	return seeds, suppress, nil
}
