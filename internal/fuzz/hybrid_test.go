package fuzz

import (
	"testing"

	"hardsnap/internal/target"
	"hardsnap/internal/vm"
)

// magicFirmware guards the bug behind a 32-bit magic word — a 2^32
// search space that mutation alone cannot realistically cross, but
// one flip query solves exactly.
const magicFirmware = `
_start:
		addi r10, r0, 20
init:
		addi r10, r10, -1
		bne r10, r0, init
		ecall 6
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lw r4, 0(r1)
		li r5, 0x4D416743      ; magic word
		bne r4, r5, ok
		abort
ok:
		halt
`

func TestHybridSolvesMagicGuard(t *testing.T) {
	prog := assemble(t, magicFirmware)
	res, err := Run(Config{
		Program:          prog,
		Reset:            ResetSnapshot,
		MaxExecs:         500,
		InputLen:         4,
		Seed:             11,
		Hybrid:           true,
		FrontierK:        4,
		StopAtFirstCrash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConcolicRuns == 0 {
		t.Fatal("hybrid mode never escalated a frontier branch")
	}
	if res.SolvedSeeds == 0 {
		t.Fatal("no solver model injected")
	}
	if len(res.Crashes) == 0 {
		t.Fatalf("magic guard not crossed in %d execs (%d concolic runs, %d solved)",
			res.Execs, res.ConcolicRuns, res.SolvedSeeds)
	}
	c := res.Crashes[0]
	if c.Stop != vm.StopAbort {
		t.Fatalf("crash kind %v", c.Stop)
	}
	word := uint32(c.Input[0]) | uint32(c.Input[1])<<8 | uint32(c.Input[2])<<16 | uint32(c.Input[3])<<24
	if word != 0x4D416743 {
		t.Fatalf("crashing input %x is not the magic word", c.Input)
	}
}

// magicHWFirmware routes the magic word through the CRC peripheral
// before the compare, so the hybrid loop must record and replay MMIO
// traffic to keep the concolic path faithful.
const magicHWFirmware = `
_start:
		li r8, 0x40000000
		addi r4, r0, 1
		sw r4, 8(r8)       ; crc init
		ecall 6
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		sw r4, 0(r8)       ; feed a byte through the peripheral
wait:
		lw r5, 12(r8)
		bne r5, r0, wait
		lw r4, 0(r1)
		li r5, 0x00C0FFEE
		bne r4, r5, ok
		abort
ok:
		halt
`

func TestHybridWithHardwareMMIOReplay(t *testing.T) {
	prog := assemble(t, magicHWFirmware)
	res, err := Run(Config{
		Program:          prog,
		Peripherals:      []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}},
		Reset:            ResetSnapshot,
		MaxExecs:         500,
		InputLen:         4,
		Seed:             3,
		Hybrid:           true,
		FrontierK:        4,
		StopAtFirstCrash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashes) == 0 {
		t.Fatalf("magic guard behind MMIO not crossed (%d concolic runs, %d solved)",
			res.ConcolicRuns, res.SolvedSeeds)
	}
	word := uint32(res.Crashes[0].Input[0]) | uint32(res.Crashes[0].Input[1])<<8 |
		uint32(res.Crashes[0].Input[2])<<16 | uint32(res.Crashes[0].Input[3])<<24
	if word != 0x00C0FFEE {
		t.Fatalf("crashing input %x", res.Crashes[0].Input)
	}
}

func TestFuzzOnlyCannotSolveMagic(t *testing.T) {
	// Control: the same budget without hybrid mode does not cross the
	// 32-bit guard (confirming the hybrid test exercises the solver,
	// not mutation luck).
	prog := assemble(t, magicFirmware)
	res, err := Run(Config{
		Program:  prog,
		Reset:    ResetSnapshot,
		MaxExecs: 500,
		InputLen: 4,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashes) != 0 {
		t.Fatal("mutation crossed a 32-bit magic guard; weaken the control or buy a lottery ticket")
	}
}

func TestParallelWorkersShareCorpusAndCoverage(t *testing.T) {
	prog := assemble(t, crashFirmware)
	res, err := Run(Config{
		Program:  prog,
		Reset:    ResetSnapshot,
		MaxExecs: 2000,
		InputLen: 4,
		Seeds:    [][]byte{[]byte("Hx__")},
		Seed:     7,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 {
		t.Fatalf("workers=%d", res.Workers)
	}
	if res.Execs != 2000 {
		t.Fatalf("execs=%d, want 2000 across workers", res.Execs)
	}
	if len(res.Crashes) == 0 {
		t.Fatal("no crash found with 4 workers")
	}
	if res.Edges < 10 {
		t.Fatalf("edges=%d", res.Edges)
	}
	// Makespan throughput: 4 workers splitting the execs should beat a
	// single worker's virtual time substantially.
	single, err := Run(Config{
		Program:  prog,
		Reset:    ResetSnapshot,
		MaxExecs: 2000,
		InputLen: 4,
		Seeds:    [][]byte{[]byte("Hx__")},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtTime >= single.VirtTime {
		t.Fatalf("4 workers (%v) not faster than 1 (%v)", res.VirtTime, single.VirtTime)
	}
	if res.ExecsPerVirtSecond < 2*single.ExecsPerVirtSecond {
		t.Fatalf("parallel speedup too small: %.0f vs %.0f execs/vsec",
			res.ExecsPerVirtSecond, single.ExecsPerVirtSecond)
	}
}

func TestParallelWorkersWithHardware(t *testing.T) {
	prog := assemble(t, hwFirmware)
	res, err := Run(Config{
		Program:     prog,
		Peripherals: []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}},
		Reset:       ResetSnapshot,
		MaxExecs:    400,
		InputLen:    2,
		Seeds:       [][]byte{{0xA4, 0x00}},
		Seed:        3,
		Workers:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Execs != 400 {
		t.Fatalf("execs=%d", res.Execs)
	}
	if len(res.Crashes) == 0 {
		t.Fatal("no crash with parallel hardware workers")
	}
	if res.DeltaRestores == 0 {
		t.Fatal("parallel workers never used the delta-restore path")
	}
}

// TestSingleWorkerMatchesReferenceCrashSet is the identity gate: on
// firmware whose reachable crash set both fuzzers find within budget,
// the rewritten single-worker fixed-seed fuzzer reports exactly the
// reference fuzzer's deduplicated crash buckets.
func TestSingleWorkerMatchesReferenceCrashSet(t *testing.T) {
	prog := assemble(t, crashFirmware)
	cfg := Config{
		Program:  prog,
		Reset:    ResetSnapshot,
		MaxExecs: 4000,
		InputLen: 4,
		Seeds:    [][]byte{[]byte("Hx__")},
		Seed:     7,
	}
	ref, err := RunReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refBuckets := make(map[CrashKey]bool)
	for _, c := range ref.Crashes {
		refBuckets[c.Key()] = true
	}
	newBuckets := make(map[CrashKey]bool)
	for _, c := range res.Crashes {
		newBuckets[c.Key()] = true
	}
	if len(refBuckets) == 0 {
		t.Fatal("reference found no crashes; gate is vacuous")
	}
	if len(refBuckets) != len(newBuckets) {
		t.Fatalf("crash buckets differ: ref %v vs new %v", refBuckets, newBuckets)
	}
	for k := range refBuckets {
		if !newBuckets[k] {
			t.Fatalf("bucket %+v found by reference but not by rewrite", k)
		}
	}
}

// TestSingleWorkerDeterministic: two identical fixed-seed
// single-worker runs are byte-identical in every reported dimension,
// including the crashing inputs.
func TestSingleWorkerDeterministic(t *testing.T) {
	prog := assemble(t, crashFirmware)
	cfg := Config{
		Program:  prog,
		Reset:    ResetSnapshot,
		MaxExecs: 500,
		InputLen: 4,
		Seeds:    [][]byte{[]byte("Hx__")},
		Seed:     21,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Execs != b.Execs || a.Edges != b.Edges || a.Corpus != b.Corpus ||
		a.VirtTime != b.VirtTime || len(a.Crashes) != len(b.Crashes) {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Crashes {
		if string(a.Crashes[i].Input) != string(b.Crashes[i].Input) ||
			a.Crashes[i].PC != b.Crashes[i].PC || a.Crashes[i].Count != b.Crashes[i].Count {
			t.Fatalf("crash %d differs: %+v vs %+v", i, a.Crashes[i], b.Crashes[i])
		}
	}
}
