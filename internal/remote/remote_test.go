package remote

import (
	"net"
	"sync"
	"testing"

	"hardsnap/internal/bus"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// targetPort adapts a target peripheral port plus Advance for the
// protocol server.
type targetPort struct {
	bus.Port
	tg *target.Target
}

func (p *targetPort) Advance(n uint64) error { return p.tg.Advance(n) }

func pipePair(t *testing.T, port bus.Port) *Client {
	t.Helper()
	cConn, sConn := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = Serve(sConn, port)
	}()
	t.Cleanup(func() {
		cConn.Close()
		sConn.Close()
		wg.Wait()
	})
	return NewClient(cConn)
}

func newGPIOTarget(t *testing.T) (*target.Target, bus.Port) {
	t.Helper()
	tg, err := target.NewSimulator("sim", &vtime.Clock{}, []target.PeriphConfig{
		{Name: "gpio0", Periph: "gpio"},
		{Name: "timer0", Periph: "timer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tg.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	return tg, p
}

func TestRemoteReadWrite(t *testing.T) {
	tg, p := newGPIOTarget(t)
	client := pipePair(t, &targetPort{Port: p, tg: tg})

	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := client.WriteReg(0x00, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := client.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xBEEF {
		t.Fatalf("remote readback %#x", v)
	}
}

func TestRemoteIRQAndAdvance(t *testing.T) {
	tg, err := target.NewSimulator("sim", &vtime.Clock{}, []target.PeriphConfig{
		{Name: "timer0", Periph: "timer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := tg.Port("timer0")
	client := pipePair(t, &targetPort{Port: p, tg: tg})

	client.WriteReg(0x00, 5)
	client.WriteReg(0x08, 3)
	level, err := client.IRQLevel()
	if err != nil {
		t.Fatal(err)
	}
	if level {
		t.Fatal("irq too early")
	}
	if err := client.Advance(10); err != nil {
		t.Fatal(err)
	}
	level, err = client.IRQLevel()
	if err != nil {
		t.Fatal(err)
	}
	if !level {
		t.Fatal("irq not raised after remote advance")
	}
}

func TestRemoteErrorPropagation(t *testing.T) {
	_, p := newGPIOTarget(t)
	// Plain port: Advance unsupported -> server returns an error
	// response instead of dying.
	client := pipePair(t, p)
	if err := client.Advance(1); err == nil {
		t.Fatal("advance on non-advancer must fail")
	}
	// The link must still be usable afterwards.
	if err := client.Ping(); err != nil {
		t.Fatalf("link dead after error: %v", err)
	}
}

func TestRemoteOverTCP(t *testing.T) {
	tg, p := newGPIOTarget(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ListenAndServe(ln, &targetPort{Port: p, tg: tg})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn)
	if err := client.WriteReg(0x08, 0xFF); err != nil {
		t.Fatal(err)
	}
	v, err := client.ReadReg(0x08)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFF {
		t.Fatalf("tcp readback %#x", v)
	}
	conn.Close()
	ln.Close()
	<-done
}

func TestClientBrokenLink(t *testing.T) {
	cConn, sConn := net.Pipe()
	sConn.Close()
	cConn.Close()
	client := NewClient(cConn)
	if _, err := client.ReadReg(0); err == nil {
		t.Fatal("read on closed link must fail")
	}
}
