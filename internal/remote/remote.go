// Package remote implements the remote interface through which the
// symbolic virtual machine reaches out-of-process hardware targets: a
// compact length-free binary request/response protocol carrying
// register reads/writes, IRQ sampling and clock advancement. In the
// paper this role is played by a shared-memory channel (simulator
// target) and a USB 3.0 low-latency debugger (FPGA target); here any
// net.Conn works, including net.Pipe for in-process use and TCP
// sockets for genuine out-of-process targets.
//
// Wire format (all integers little-endian):
//
//	request:  opcode(1) offset(4) value(4)
//	response: status(1) value(4)
//
// The client is not safe for concurrent use; the VM serializes
// hardware access, matching the single memory bus of the modeled SoC.
package remote

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"hardsnap/internal/bus"
)

// Protocol opcodes.
const (
	opRead    = 1
	opWrite   = 2
	opIRQ     = 3
	opAdvance = 4
	opPing    = 5
)

// Response status codes.
const (
	statusOK  = 0
	statusErr = 1
)

// Client speaks the protocol over a connection and exposes the remote
// peripheral as a bus.Port.
type Client struct {
	conn io.ReadWriter
	buf  [9]byte
}

var _ bus.Port = (*Client)(nil)

// NewClient wraps a connection.
func NewClient(conn io.ReadWriter) *Client {
	return &Client{conn: conn}
}

func (c *Client) roundTrip(op byte, offset, value uint32) (uint32, error) {
	c.buf[0] = op
	binary.LittleEndian.PutUint32(c.buf[1:5], offset)
	binary.LittleEndian.PutUint32(c.buf[5:9], value)
	if _, err := c.conn.Write(c.buf[:9]); err != nil {
		return 0, fmt.Errorf("remote: send: %w", err)
	}
	var resp [5]byte
	if _, err := io.ReadFull(c.conn, resp[:]); err != nil {
		return 0, fmt.Errorf("remote: receive: %w", err)
	}
	v := binary.LittleEndian.Uint32(resp[1:5])
	if resp[0] != statusOK {
		return 0, fmt.Errorf("remote: target error (code %d)", v)
	}
	return v, nil
}

// ReadReg reads a peripheral register.
func (c *Client) ReadReg(offset uint32) (uint32, error) {
	return c.roundTrip(opRead, offset, 0)
}

// WriteReg writes a peripheral register.
func (c *Client) WriteReg(offset uint32, v uint32) error {
	_, err := c.roundTrip(opWrite, offset, v)
	return err
}

// IRQLevel samples the remote interrupt line.
func (c *Client) IRQLevel() (bool, error) {
	v, err := c.roundTrip(opIRQ, 0, 0)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// Advance runs n hardware clock cycles remotely.
func (c *Client) Advance(n uint32) error {
	_, err := c.roundTrip(opAdvance, 0, n)
	return err
}

// Ping verifies the link.
func (c *Client) Ping() error {
	v, err := c.roundTrip(opPing, 0, 0x48535250) // "HSRP"
	if err != nil {
		return err
	}
	if v != 0x48535250 {
		return fmt.Errorf("remote: bad ping echo %#x", v)
	}
	return nil
}

// Advancer optionally extends bus.Port with clock advancement; the
// server uses it when the backing port supports it.
type Advancer interface {
	Advance(n uint64) error
}

// Serve answers protocol requests against the given port until the
// connection closes. It returns nil on clean EOF.
func Serve(conn io.ReadWriter, port bus.Port) error {
	var req [9]byte
	var resp [5]byte
	for {
		if _, err := io.ReadFull(conn, req[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			if ne, ok := err.(net.Error); ok && !ne.Timeout() {
				return nil
			}
			return fmt.Errorf("remote: read request: %w", err)
		}
		offset := binary.LittleEndian.Uint32(req[1:5])
		value := binary.LittleEndian.Uint32(req[5:9])
		var out uint32
		var opErr error
		switch req[0] {
		case opRead:
			out, opErr = port.ReadReg(offset)
		case opWrite:
			opErr = port.WriteReg(offset, value)
		case opIRQ:
			level, err := port.IRQLevel()
			if level {
				out = 1
			}
			opErr = err
		case opAdvance:
			if adv, ok := port.(Advancer); ok {
				opErr = adv.Advance(uint64(value))
			} else {
				opErr = fmt.Errorf("target does not support advance")
			}
		case opPing:
			out = value
		default:
			opErr = fmt.Errorf("unknown opcode %d", req[0])
		}
		resp[0] = statusOK
		if opErr != nil {
			resp[0] = statusErr
			out = 0
		}
		binary.LittleEndian.PutUint32(resp[1:5], out)
		if _, err := conn.Write(resp[:]); err != nil {
			return fmt.Errorf("remote: write response: %w", err)
		}
	}
}

// ListenAndServe accepts one connection at a time on the listener and
// serves the port. It returns when the listener closes.
func ListenAndServe(ln net.Listener, port bus.Port) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil //nolint:nilerr // closed listener ends service
		}
		_ = Serve(conn, port)
		_ = conn.Close()
	}
}
