// Package remote implements the remote interface through which the
// symbolic virtual machine reaches out-of-process hardware targets: a
// compact length-free binary request/response protocol carrying
// register reads/writes, IRQ sampling and clock advancement. In the
// paper this role is played by a shared-memory channel (simulator
// target) and a USB 3.0 low-latency debugger (FPGA target); here any
// net.Conn works, including net.Pipe for in-process use and TCP
// sockets for genuine out-of-process targets.
//
// Wire format (all integers little-endian, one CRC-8 per frame so
// corrupted frames are detected and retransmitted instead of applied):
//
//	request:  opcode(1) offset(4) value(4) crc(1)
//	response: status(1) value(4) crc(1)
//
// Error responses carry the target error class (transient, fatal,
// integrity) in the value field, so the client can decide whether to
// retry. The client absorbs transient link faults with per-transaction
// deadlines, bounded exponential-backoff retries and optional
// reconnection; only fatal and integrity errors surface to the caller.
//
// The client is not safe for concurrent use; the VM serializes
// hardware access, matching the single memory bus of the modeled SoC.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/target"
)

// Protocol opcodes.
const (
	opRead    = 1
	opWrite   = 2
	opIRQ     = 3
	opAdvance = 4
	opPing    = 5
)

// Response status codes.
const (
	statusOK = 0
	// statusErr carries a target-side operation error; the value
	// field holds its target.ErrorClass.
	statusErr = 1
	// statusBadFrame rejects a request whose CRC did not verify; the
	// client retransmits.
	statusBadFrame = 2
)

const (
	reqLen  = 10
	respLen = 6
)

// crc8 folds an IEEE CRC-32 into one byte: enough to catch the
// single-bit and burst corruption a flaky link produces.
func crc8(b []byte) byte {
	s := crc32.ChecksumIEEE(b)
	return byte(s) ^ byte(s>>8) ^ byte(s>>16) ^ byte(s>>24)
}

// deadliner is the deadline surface of net.Conn; the client uses it
// when the transport provides it.
type deadliner interface {
	SetDeadline(t time.Time) error
}

// Client speaks the protocol over a connection and exposes the remote
// peripheral as a bus.Port.
type Client struct {
	conn io.ReadWriter

	// Timeout is the per-transaction deadline, applied when the
	// connection supports deadlines (any net.Conn). Zero disables.
	Timeout time.Duration
	// MaxRetries bounds transient-fault retransmissions per
	// transaction; 0 fails on the first error (the historical
	// behavior).
	MaxRetries int
	// Backoff is the initial delay between retries, doubled each
	// time up to BackoffMax. Zero values take 200µs / 50ms.
	Backoff    time.Duration
	BackoffMax time.Duration
	// Redial, when set, re-establishes the link before a retry that
	// follows a transport (not protocol) error.
	Redial func() (io.ReadWriter, error)

	retries uint64
	buf     [reqLen]byte
}

var _ bus.Port = (*Client)(nil)

// NewClient wraps a connection.
func NewClient(conn io.ReadWriter) *Client {
	return &Client{conn: conn}
}

// Retries reports how many transient-fault retransmissions the client
// has performed.
func (c *Client) Retries() uint64 { return c.retries }

// transportError marks errors from the conn itself (as opposed to
// protocol-level transient errors), so the retry loop knows when a
// redial is worthwhile.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

func (c *Client) once(op byte, offset, value uint32) (uint32, error) {
	if d, ok := c.conn.(deadliner); ok && c.Timeout > 0 {
		_ = d.SetDeadline(time.Now().Add(c.Timeout))
		defer func() { _ = d.SetDeadline(time.Time{}) }()
	}
	c.buf[0] = op
	binary.LittleEndian.PutUint32(c.buf[1:5], offset)
	binary.LittleEndian.PutUint32(c.buf[5:9], value)
	c.buf[9] = crc8(c.buf[:9])
	if _, err := c.conn.Write(c.buf[:reqLen]); err != nil {
		return 0, &transportError{fmt.Errorf("remote: send: %w", err)}
	}
	var resp [respLen]byte
	if _, err := io.ReadFull(c.conn, resp[:]); err != nil {
		return 0, &transportError{fmt.Errorf("remote: receive: %w", err)}
	}
	if crc8(resp[:respLen-1]) != resp[respLen-1] {
		return 0, &target.Error{Class: target.Transient, Op: "remote",
			Err: errors.New("corrupted response frame (bad CRC)")}
	}
	v := binary.LittleEndian.Uint32(resp[1:5])
	switch resp[0] {
	case statusOK:
		return v, nil
	case statusBadFrame:
		return 0, &target.Error{Class: target.Transient, Op: "remote",
			Err: errors.New("server rejected corrupted request frame")}
	case statusErr:
		class := target.ErrorClass(v)
		switch class {
		case target.Transient, target.Fatal, target.Integrity:
		default:
			class = target.Fatal
		}
		return 0, &target.Error{Class: class, Op: "remote",
			Err: fmt.Errorf("target error (op %d)", op)}
	default:
		return 0, &target.Error{Class: target.Transient, Op: "remote",
			Err: fmt.Errorf("bad response status %d", resp[0])}
	}
}

// retryable reports whether a transaction failure is worth
// retransmitting: transport errors (timeouts, drops, broken links)
// and protocol-transient errors are; target-side fatal/integrity
// errors are not.
func retryable(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	return target.IsTransient(err)
}

func (c *Client) roundTrip(op byte, offset, value uint32) (uint32, error) {
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Microsecond
	}
	backoffMax := c.BackoffMax
	if backoffMax <= 0 {
		backoffMax = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries++
			time.Sleep(backoff)
			if backoff < backoffMax {
				backoff *= 2
				if backoff > backoffMax {
					backoff = backoffMax
				}
			}
			var te *transportError
			if c.Redial != nil && errors.As(lastErr, &te) {
				if conn, err := c.Redial(); err == nil {
					c.conn = conn
				}
			}
		}
		v, err := c.once(op, offset, value)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !retryable(err) {
			return 0, err
		}
		if attempt >= c.MaxRetries {
			break
		}
	}
	var te *transportError
	if errors.As(lastErr, &te) {
		// Keep the transient classification so upper layers can
		// still tell retry-worthy failures apart.
		return 0, &target.Error{Class: target.Transient, Op: "remote", Err: te.err}
	}
	return 0, lastErr
}

// ReadReg reads a peripheral register.
func (c *Client) ReadReg(offset uint32) (uint32, error) {
	return c.roundTrip(opRead, offset, 0)
}

// WriteReg writes a peripheral register.
func (c *Client) WriteReg(offset uint32, v uint32) error {
	_, err := c.roundTrip(opWrite, offset, v)
	return err
}

// IRQLevel samples the remote interrupt line.
func (c *Client) IRQLevel() (bool, error) {
	v, err := c.roundTrip(opIRQ, 0, 0)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// Advance runs n hardware clock cycles remotely.
func (c *Client) Advance(n uint32) error {
	_, err := c.roundTrip(opAdvance, 0, n)
	return err
}

// pingMagic is the echo payload of opPing ("HSRP").
const pingMagic = 0x48535250

// Ping verifies the link end to end.
func (c *Client) Ping() error {
	v, err := c.roundTrip(opPing, 0, pingMagic)
	if err != nil {
		return err
	}
	if v != pingMagic {
		return &target.Error{Class: target.Transient, Op: "remote",
			Err: fmt.Errorf("bad ping echo %#x", v)}
	}
	return nil
}

// Advancer optionally extends bus.Port with clock advancement; the
// server uses it when the backing port supports it.
type Advancer interface {
	Advance(n uint64) error
}

// errorClass maps a target-side operation error onto the wire.
func errorClass(err error) target.ErrorClass {
	var te *target.Error
	if errors.As(err, &te) {
		return te.Class
	}
	return target.Fatal
}

// handleV2 executes one v2 request frame against a port and builds
// the response frame. Shared between the classic single-port Serve
// loop and the v3 Server's legacy-compatibility path.
func handleV2(req [reqLen]byte, port bus.Port) [respLen]byte {
	var resp [respLen]byte
	var out uint32
	var status byte = statusOK
	if crc8(req[:reqLen-1]) != req[reqLen-1] {
		status = statusBadFrame
	} else {
		offset := binary.LittleEndian.Uint32(req[1:5])
		value := binary.LittleEndian.Uint32(req[5:9])
		var opErr error
		switch req[0] {
		case opRead:
			out, opErr = port.ReadReg(offset)
		case opWrite:
			opErr = port.WriteReg(offset, value)
		case opIRQ:
			level, err := port.IRQLevel()
			if level {
				out = 1
			}
			opErr = err
		case opAdvance:
			if adv, ok := port.(Advancer); ok {
				opErr = adv.Advance(uint64(value))
			} else {
				opErr = fmt.Errorf("target does not support advance")
			}
		case opPing:
			out = value
		default:
			opErr = fmt.Errorf("unknown opcode %d", req[0])
		}
		if opErr != nil {
			status = statusErr
			out = uint32(errorClass(opErr))
		}
	}
	resp[0] = status
	binary.LittleEndian.PutUint32(resp[1:5], out)
	resp[respLen-1] = crc8(resp[:respLen-1])
	return resp
}

// Serve answers protocol requests against the given port until the
// connection closes. A clean close (EOF between frames, or a closed
// connection) returns nil; a genuine link failure — including a
// request truncated mid-frame — is returned to the caller instead of
// being masked as a clean shutdown.
func Serve(conn io.ReadWriter, port bus.Port) error {
	var req [reqLen]byte
	for {
		if _, err := io.ReadFull(conn, req[:]); err != nil {
			switch {
			case err == io.EOF:
				return nil
			case errors.Is(err, net.ErrClosed), errors.Is(err, io.ErrClosedPipe):
				return nil
			case err == io.ErrUnexpectedEOF:
				return fmt.Errorf("remote: truncated request: %w", err)
			default:
				return fmt.Errorf("remote: read request: %w", err)
			}
		}
		resp := handleV2(req, port)
		if _, err := conn.Write(resp[:]); err != nil {
			return fmt.Errorf("remote: write response: %w", err)
		}
	}
}

// ListenAndServe accepts one connection at a time on the listener and
// serves the port. It returns when the listener closes; per-connection
// Serve failures are collected and returned (nil when every
// connection ended cleanly).
func ListenAndServe(ln net.Listener, port bus.Port) error {
	return ListenAndServeWith(ln, port, nil)
}

// ListenAndServeWith is ListenAndServe with a connection wrapper
// applied to every accepted connection — e.g. target.NewFaultConn to
// reproduce the paper's injectable-latency link from the CLI.
func ListenAndServeWith(ln net.Listener, port bus.Port, wrap func(net.Conn) net.Conn) error {
	var errs []error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				errs = append(errs, fmt.Errorf("remote: accept: %w", err))
			}
			return errors.Join(errs...)
		}
		served := net.Conn(conn)
		if wrap != nil {
			served = wrap(conn)
		}
		if err := Serve(served, port); err != nil {
			errs = append(errs, fmt.Errorf("remote: conn %s: %w", conn.RemoteAddr(), err))
		}
		_ = conn.Close()
	}
}
