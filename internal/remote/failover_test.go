package remote

// Mid-run link failover: the exploration chaos harness severs worker
// connections while a parallel campaign runs over the v3 protocol,
// and the client's redial + re-attach + window-retransmit machinery
// must recover with byte-identical results — the remote leg of the
// crash-safety identity gates in internal/core.

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// failoverFirmware branches on four symbolic bits (16 paths, so the
// two-worker fan-out really distributes subtrees) and does per-path
// MMIO work against the remote gpio. The software assertion fails on
// exactly one path (all four bits set).
const failoverFirmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1           ; make [0x100] symbolic
		lbu r4, 0(r1)
		li r8, 0x40000000
		andi r5, r4, 1
		beq r5, r0, b1
		nop
b1:
		andi r5, r4, 2
		beq r5, r0, b2
		nop
b2:
		andi r5, r4, 4
		beq r5, r0, b3
		nop
b3:
		andi r5, r4, 8
		beq r5, r0, work
		nop
work:
		sw r4, 0(r8)      ; per-path MMIO traffic
		lw r6, 0(r8)
		addi r7, r0, 4
loop:
		sw r6, 0(r8)
		addi r7, r7, -1
		bne r7, r0, loop
		andi r5, r4, 15
		sltiu r1, r5, 15
		ecall 2           ; fails iff all four bits are set
		halt
`

// remoteRun drives a two-worker parallel campaign against a fresh v3
// server over real TCP (no latency model: retransmitted frames must
// not change virtual time, and the identity assertions include vt).
func remoteRun(t *testing.T, chaos *core.ChaosSchedule) (*core.Report, ClientStats) {
	t.Helper()
	tg, err := target.NewSimulator("remote-sim", &vtime.Clock{}, []target.PeriphConfig{
		{Name: "gpio0", Periph: "gpio"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := v3TCP(t, tg)
	c.MaxRetries = 8
	c.Backoff = 200 * time.Microsecond
	a, err := core.Setup(core.SetupConfig{
		Firmware:    failoverFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Target:      c,
		Engine: core.Config{
			Mode:              core.ModeHardSnap,
			Searcher:          symexec.BFS{},
			MaxInstructions:   1_000_000,
			Workers:           2,
			Chaos:             chaos,
			MaxWorkerRestarts: 50,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep, c.WireStats()
}

// TestParallelRemoteFailoverIdentity severs every subtree's link
// mid-run; the campaign must finish with exactly the undisturbed
// run's bugs, paths and virtual time, having actually reconnected.
func TestParallelRemoteFailoverIdentity(t *testing.T) {
	clean, _ := remoteRun(t, nil)
	if len(clean.Bugs()) != 1 {
		t.Fatalf("clean remote bugs: %d, want 1", len(clean.Bugs()))
	}

	rep, ws := remoteRun(t, &core.ChaosSchedule{Seed: 3, SeverRate: 1})
	if got, want := core.Fingerprint(rep), core.Fingerprint(clean); got != want {
		t.Errorf("severed run diverged from clean run:\nclean:   %s\nsevered: %s\npaths %d vs %d, vt %v vs %v",
			want, got, len(clean.Finished), len(rep.Finished),
			clean.VirtualTime, rep.VirtualTime)
	}
	if rep.Recovery.FailoverEvents == 0 {
		t.Errorf("no failover events recorded: %+v", rep.Recovery)
	}
	if ws.Reconnects == 0 {
		t.Errorf("links severed but no reconnects counted: %+v", ws)
	}
}

// TestSeverLinkRecovers: a severed client transparently redials,
// re-attaches its session and finishes the operation in flight.
func TestSeverLinkRecovers(t *testing.T) {
	tg := newV3Target(t)
	c, _ := v3TCP(t, tg)
	c.MaxRetries = 8
	c.Backoff = 200 * time.Microsecond
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0, 0xAB); err != nil {
		t.Fatal(err)
	}
	if err := c.SeverLink(); err != nil {
		t.Fatal(err)
	}
	v, err := gpio.ReadReg(0)
	if err != nil {
		t.Fatalf("read across severed link: %v", err)
	}
	if v != 0xAB {
		t.Fatalf("read %#x after reconnect, want 0xAB", v)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if ws := c.WireStats(); ws.Reconnects == 0 {
		t.Fatalf("recovered without counting a reconnect: %+v", ws)
	}
}

// TestRecoverRetryFatalShortCircuit: when the redialed server rejects
// the session with a fatal error, the client surfaces it immediately
// — one dial, no retry-budget burn on an incurable failure.
func TestRecoverRetryFatalShortCircuit(t *testing.T) {
	tg := newV3Target(t)
	c, _ := v3TCP(t, tg)
	c.MaxRetries = 8
	c.Backoff = 200 * time.Microsecond

	// A stand-in server that answers every attach with a fatal,
	// typed rejection (as a real server does for a design mismatch).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				kind, seq, _, err := readFrame(conn)
				if err != nil || kind != kAttach {
					return
				}
				m := respMeta{status: vstatusErr}
				body := append([]byte{byte(target.Fatal)}, "design mismatch"...)
				_ = writeFrame(conn, kResp, seq, m.encode(body))
			}(conn)
		}
	}()

	var dials atomic.Int32
	c.Dial = func() (net.Conn, error) {
		dials.Add(1)
		return net.Dial("tcp", ln.Addr().String())
	}
	if err := c.SeverLink(); err != nil {
		t.Fatal(err)
	}
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = gpio.ReadReg(0)
	if err == nil {
		t.Fatal("read succeeded against a fatally rejecting server")
	}
	if target.IsTransient(err) {
		t.Fatalf("fatal rejection surfaced as transient: %v", err)
	}
	if !strings.Contains(err.Error(), "design mismatch") {
		t.Fatalf("server's typed error lost: %v", err)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("fatal rejection was retried: %d dials, want 1", n)
	}
}
