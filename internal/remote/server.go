package remote

import (
	"bytes"
	"container/list"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"hardsnap/internal/bus"
	"hardsnap/internal/sim"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// respCacheCap bounds the per-session retransmission response cache.
// It only needs to cover the client's pipelining window; 64 leaves
// generous slack.
const respCacheCap = 64

// session is one client's binding to a target: the root target for
// the primary client, or a spawned worker clone. Sessions are keyed
// by token independently of connections, so a client that redials
// after a link failure re-attaches (kAttach) and keeps its duplicate
// suppression: lastApplied and the response cache guarantee a
// retransmitted frame is applied exactly once, with the original
// response replayed for frames whose response was lost in flight.
type session struct {
	mu      sync.Mutex
	tgt     *target.Target
	periphs []string
	ports   []bus.Port

	lastApplied uint32
	respCache   map[uint32][]byte
	respOrder   []uint32
}

// Server speaks protocol v3 (and, for single-port compatibility, v2)
// against a hosted target. It is safe for concurrent connections:
// each worker client spawned over the wire gets its own session and
// target clone, and the peripheral-chunk cache shared across sessions
// is what makes digest negotiation effective — a chunk any session
// has seen never crosses the wire again.
type Server struct {
	root *target.Target
	// legacy, when set, answers v2 single-op frames on the same
	// connections (hssim compatibility for old clients).
	legacy bus.Port

	mu       sync.Mutex
	sessions map[uint32]*session
	nextTok  uint32

	cmu       sync.Mutex
	chunks    map[snapshot.Digest]*chunkEnt
	chunkLRU  *list.List // front = most recently used
	chunkCap  int        // max resident chunks; <=0 means unbounded
	evictions uint64

	// testBeforePush, when set (tests only), runs in the kPush
	// dispatch path — the window where a concurrent eviction races an
	// in-flight digest negotiation.
	testBeforePush func()
}

// chunkEnt is one resident peripheral chunk plus its LRU handle.
type chunkEnt struct {
	hw   *sim.HWState
	elem *list.Element // value: snapshot.Digest
}

// DefaultChunkCap bounds the server's shared peripheral-chunk cache.
// A chunk is a few hundred bytes gob-encoded, so the default costs a
// few MiB at worst while still covering any realistic working set.
const DefaultChunkCap = 1 << 14

// NewServer hosts a target behind protocol v3.
func NewServer(root *target.Target) *Server {
	return &Server{
		root:     root,
		sessions: make(map[uint32]*session),
		chunks:   make(map[snapshot.Digest]*chunkEnt),
		chunkLRU: list.New(),
		chunkCap: DefaultChunkCap,
	}
}

// SetChunkCap bounds the shared chunk cache to n resident chunks
// (<=0 removes the bound). Shrinking evicts least-recently-used
// chunks immediately. Eviction is safe mid-negotiation: a client
// whose offered digest was evicted between kRestore and kPush sees it
// re-listed in Missing and re-uploads it as a delta (see applyRemote).
func (s *Server) SetChunkCap(n int) {
	s.cmu.Lock()
	s.chunkCap = n
	s.evictChunksLocked()
	s.cmu.Unlock()
}

// ChunkStats reports the chunk cache's residency and eviction count.
func (s *Server) ChunkStats() (entries int, evictions uint64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return len(s.chunks), s.evictions
}

func (s *Server) evictChunksLocked() {
	if s.chunkCap <= 0 {
		return
	}
	for len(s.chunks) > s.chunkCap {
		back := s.chunkLRU.Back()
		if back == nil {
			return
		}
		s.chunkLRU.Remove(back)
		delete(s.chunks, back.Value.(snapshot.Digest))
		s.evictions++
	}
}

// SetLegacyPort arms v2 compatibility: frames with a v2 opcode byte
// are answered against this port, so pre-v3 clients keep working.
func (s *Server) SetLegacyPort(p bus.Port) { s.legacy = p }

func (s *Server) newSession(tgt *target.Target) (uint32, *session) {
	sess := &session{
		tgt:       tgt,
		periphs:   tgt.Peripherals(),
		respCache: make(map[uint32][]byte),
	}
	for _, name := range sess.periphs {
		port, err := tgt.Port(name)
		if err != nil {
			// Unreachable: names come from the target itself.
			panic(fmt.Sprintf("remote: server session: %v", err))
		}
		sess.ports = append(sess.ports, port)
	}
	s.mu.Lock()
	s.nextTok++
	tok := s.nextTok
	s.sessions[tok] = sess
	s.mu.Unlock()
	return tok, sess
}

func (s *Server) cacheChunk(d snapshot.Digest, hw *sim.HWState) {
	s.cmu.Lock()
	if ent, ok := s.chunks[d]; ok {
		s.chunkLRU.MoveToFront(ent.elem)
	} else {
		s.chunks[d] = &chunkEnt{hw: hw, elem: s.chunkLRU.PushFront(d)}
		s.evictChunksLocked()
	}
	s.cmu.Unlock()
}

func (s *Server) chunk(d snapshot.Digest) (*sim.HWState, bool) {
	s.cmu.Lock()
	ent, ok := s.chunks[d]
	if ok {
		s.chunkLRU.MoveToFront(ent.elem)
	}
	s.cmu.Unlock()
	if !ok {
		return nil, false
	}
	return ent.hw, true
}

// gobEncode serializes a control-frame body.
func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(p []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(p)).Decode(v)
}

// meta snapshots the session target's piggyback telemetry. sampleIRQ
// additionally re-samples every interrupt line (batch responses only;
// control responses leave the client's IRQ mirror invalidated).
func (sess *session) meta(status byte, sampleIRQ bool) (respMeta, error) {
	m := respMeta{
		status:    status,
		gen:       sess.tgt.Generation(),
		anchorSeq: sess.tgt.AnchorSeq(),
		serverNow: int64(sess.tgt.Clock().Now()),
		cycles:    sess.tgt.Stats().Cycles,
		pending:   uint32(sess.tgt.PendingViolations()),
	}
	if sampleIRQ {
		for i, port := range sess.ports {
			level, err := port.IRQLevel()
			if err != nil {
				return m, err
			}
			if level {
				m.irqBits |= 1 << uint(i)
			}
		}
		m.flags |= 1
	}
	return m, nil
}

// errPayload builds a vstatusErr response: meta + class(1) + message.
func (sess *session) errPayload(err error) []byte {
	class := errorClass(err)
	m, _ := sess.meta(vstatusErr, false)
	m.status = vstatusErr // meta() may have been rebuilt without it
	body := append([]byte{byte(class)}, []byte(err.Error())...)
	return m.encode(body)
}

func (sess *session) okPayload(body []byte, sampleIRQ bool) []byte {
	m, err := sess.meta(vstatusOK, sampleIRQ)
	if err != nil {
		return sess.errPayload(err)
	}
	return m.encode(body)
}

// helloPayload answers kHello/kAttach/kSpawn with session info.
func (s *Server) helloPayload(tok uint32, sess *session) []byte {
	var irqMask uint64
	for i, name := range sess.periphs {
		if i < 64 && sess.tgt.IRQWired(name) {
			irqMask |= 1 << uint(i)
		}
	}
	body, err := gobEncode(helloInfo{
		Token:         tok,
		Kind:          sess.tgt.Kind(),
		Name:          sess.tgt.Name(),
		StateBits:     sess.tgt.StateBits(),
		Periphs:       sess.periphs,
		LastApplied:   sess.lastApplied,
		IRQMask:       irqMask,
		HasAssertions: sess.tgt.HasAssertions(),
	})
	if err != nil {
		return sess.errPayload(err)
	}
	return sess.okPayload(body, false)
}

// apply executes one sequenced v3 frame against the session and
// returns the full response payload. The caller holds sess.mu and has
// already done duplicate suppression.
func (s *Server) apply(sess *session, kind byte, payload []byte) []byte {
	switch kind {
	case kBatch:
		return s.applyBatch(sess, payload)
	case kSave:
		return s.applySave(sess)
	case kFetch:
		return s.applyFetch(sess, payload)
	case kRestore:
		var req restoreReq
		if err := gobDecode(payload, &req); err != nil {
			return sess.errPayload(fatalErr(err))
		}
		return s.applyRestore(sess, req.Mode, req.Entries, nil)
	case kPush:
		var req pushReq
		if err := gobDecode(payload, &req); err != nil {
			return sess.errPayload(fatalErr(err))
		}
		if s.testBeforePush != nil {
			s.testBeforePush()
		}
		return s.applyRestore(sess, req.Mode, req.Entries, req.Chunks)
	case kSpawn:
		return s.applySpawn(sess, payload)
	case kStats:
		body, err := gobEncode(sess.tgt.Stats())
		if err != nil {
			return sess.errPayload(err)
		}
		return sess.okPayload(body, false)
	case kViolations:
		body, err := gobEncode(sess.tgt.TakeViolations())
		if err != nil {
			return sess.errPayload(err)
		}
		return sess.okPayload(body, false)
	default:
		return sess.errPayload(fatalErr(fmt.Errorf("unknown v3 frame kind %#x", kind)))
	}
}

func fatalErr(err error) error {
	return &target.Error{Class: target.Fatal, Op: "remote", Err: err}
}

func (s *Server) applyBatch(sess *session, payload []byte) []byte {
	ops, err := decodeBatch(payload)
	if err != nil {
		return sess.errPayload(fatalErr(err))
	}
	status := make([]byte, len(ops))
	values := make([]uint64, len(ops))
	failed := false
	for i, op := range ops {
		if failed {
			status[i] = opSkipped
			continue
		}
		var opErr error
		switch op.op {
		case bRead, bWrite, bIRQ:
			if int(op.periph) >= len(sess.ports) {
				opErr = fatalErr(fmt.Errorf("no peripheral index %d", op.periph))
				break
			}
			port := sess.ports[op.periph]
			switch op.op {
			case bRead:
				var v uint32
				v, opErr = port.ReadReg(op.offset)
				values[i] = uint64(v)
			case bWrite:
				opErr = port.WriteReg(op.offset, uint32(op.value))
			case bIRQ:
				var level bool
				level, opErr = port.IRQLevel()
				if level {
					values[i] = 1
				}
			}
		case bAdvance:
			opErr = sess.tgt.Advance(op.value)
		case bPing:
			values[i] = op.value
		case bReset:
			opErr = sess.tgt.Reset()
		default:
			opErr = fatalErr(fmt.Errorf("unknown batch op %d", op.op))
		}
		if opErr != nil {
			status[i] = byte(errorClass(opErr))
			failed = true
		}
	}
	return sess.okPayload(encodeBatchResults(status, values), true)
}

// applySave saves the session target's state and answers with the
// per-peripheral content digests; the state itself stays server-side
// until the client fetches the chunks it does not already hold.
func (s *Server) applySave(sess *session) []byte {
	st, err := sess.tgt.Save()
	if err != nil {
		return sess.errPayload(err)
	}
	offer := saveOffer{Entries: make([]chunkRef, 0, len(sess.periphs))}
	for _, name := range sess.periphs {
		hw := st[name]
		d := snapshot.HWDigest(hw)
		if hw != nil {
			s.cacheChunk(d, hw)
		}
		offer.Entries = append(offer.Entries, chunkRef{Name: name, Digest: d})
	}
	body, err := gobEncode(offer)
	if err != nil {
		return sess.errPayload(err)
	}
	return sess.okPayload(body, false)
}

func (s *Server) applyFetch(sess *session, payload []byte) []byte {
	var req fetchReq
	if err := gobDecode(payload, &req); err != nil {
		return sess.errPayload(fatalErr(err))
	}
	resp := fetchResp{}
	for _, d := range req.Digests {
		hw, ok := s.chunk(d)
		if !ok {
			return sess.errPayload(&target.Error{Class: target.Integrity, Op: "remote",
				Err: fmt.Errorf("fetch of unknown chunk %x", d[:8])})
		}
		data, err := gobEncode(hw)
		if err != nil {
			return sess.errPayload(err)
		}
		resp.Chunks = append(resp.Chunks, wireChunk{Digest: d, Data: data})
	}
	body, err := gobEncode(resp)
	if err != nil {
		return sess.errPayload(err)
	}
	return sess.okPayload(body, false)
}

// applyRestore handles kRestore (chunks nil) and kPush: it banks any
// uploaded chunks, then either reports the digests still missing or —
// when every named chunk is resident — assembles the state and
// applies it in the requested mode. A push without Entries only
// populates the cache (the stop-and-wait v2-emulation path).
func (s *Server) applyRestore(sess *session, mode byte, entries []chunkRef, chunks []wireChunk) []byte {
	// pinned holds this frame's uploads for the assembly below, so a
	// concurrent eviction (another session pushing past the cap)
	// cannot unbank a chunk between its arrival and its use. Chunks
	// the server merely *claimed* to hold at kRestore time can still
	// be evicted mid-negotiation; those come back in Missing and the
	// client re-uploads them next round.
	pinned := make(map[snapshot.Digest]*sim.HWState, len(chunks))
	for _, c := range chunks {
		hw := &sim.HWState{}
		if err := gobDecode(c.Data, hw); err != nil {
			return sess.errPayload(&target.Error{Class: target.Integrity, Op: "remote",
				Err: fmt.Errorf("pushed chunk %x: %v", c.Digest[:8], err)})
		}
		if got := snapshot.HWDigest(hw); got != snapshot.Digest(c.Digest) {
			return sess.errPayload(&target.Error{Class: target.Integrity, Op: "remote",
				Err: fmt.Errorf("pushed chunk digest mismatch (%x != %x)", got[:8], c.Digest[:8])})
		}
		pinned[c.Digest] = hw
		s.cacheChunk(c.Digest, hw)
	}
	if entries == nil {
		// Cache-only push.
		body, err := gobEncode(restoreResp{})
		if err != nil {
			return sess.errPayload(err)
		}
		return sess.okPayload(body, false)
	}
	st := make(target.State, len(entries))
	var missing [][32]byte
	for _, e := range entries {
		hw, ok := pinned[snapshot.Digest(e.Digest)]
		if !ok {
			hw, ok = s.chunk(e.Digest)
		}
		if !ok {
			missing = append(missing, e.Digest)
			continue
		}
		st[e.Name] = hw
	}
	if len(missing) > 0 {
		body, err := gobEncode(restoreResp{Missing: missing})
		if err != nil {
			return sess.errPayload(err)
		}
		return sess.okPayload(body, false)
	}
	resp := restoreResp{Applied: true}
	var err error
	switch mode {
	case modeRestore:
		err = sess.tgt.Restore(st)
	case modeDelta:
		resp.DidDelta, err = sess.tgt.RestoreDelta(st)
		resp.Applied = resp.DidDelta
	case modeAdopt:
		err = sess.tgt.AdoptState(st)
	default:
		err = fatalErr(fmt.Errorf("unknown restore mode %d", mode))
	}
	if err != nil {
		return sess.errPayload(err)
	}
	body, gerr := gobEncode(resp)
	if gerr != nil {
		return sess.errPayload(gerr)
	}
	return sess.okPayload(body, false)
}

func (s *Server) applySpawn(sess *session, payload []byte) []byte {
	var req spawnReq
	if err := gobDecode(payload, &req); err != nil {
		return sess.errPayload(fatalErr(err))
	}
	nt, err := sess.tgt.Spawn(req.Name, &vtime.Clock{}, req.Stream)
	if err != nil {
		return sess.errPayload(err)
	}
	tok, nsess := s.newSession(nt)
	return s.helloPayload(tok, nsess)
}

// ServeConn answers protocol frames on one connection until it
// closes. v2 single-op frames are dispatched against the legacy port;
// v3 frames must open with kHello (new session on the root target) or
// kAttach (resume after redial). A clean close between frames returns
// nil; truncation mid-frame or header corruption is a real error.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	var sess *session
	var first [1]byte
	for {
		if _, err := io.ReadFull(conn, first[:]); err != nil {
			switch {
			case err == io.EOF:
				return nil
			case errors.Is(err, net.ErrClosed), errors.Is(err, io.ErrClosedPipe):
				return nil
			default:
				return fmt.Errorf("remote: read frame: %w", err)
			}
		}
		if first[0] < v3Min {
			if err := s.serveV2Frame(conn, first[0]); err != nil {
				return err
			}
			continue
		}
		var hdr [v3HdrLen]byte
		hdr[0] = first[0]
		kind, seq, payload, err := readFrameRest(conn, &hdr, 1)
		switch {
		case err == nil:
		case errors.Is(err, errPayloadCRC):
			// Framing survived: stay in sync, reject the frame as a
			// unit so the client retransmits it as a unit.
			m := respMeta{status: vstatusBadFrame}
			if sess != nil {
				if sm, merr := sess.meta(vstatusBadFrame, false); merr == nil {
					m = sm
					m.status = vstatusBadFrame
				}
			}
			if werr := writeFrame(conn, kResp, seq, m.encode(nil)); werr != nil {
				return fmt.Errorf("remote: write response: %w", werr)
			}
			continue
		case errors.Is(err, errHdrCRC):
			if sess == nil {
				// No v3 session on this conn yet, so this may equally
				// well be a corrupted v2 request (both are 10 bytes):
				// answer it as one — handleV2's own CRC check turns
				// it into statusBadFrame and the v2 client
				// retransmits. After a v3 hello, header corruption
				// means desync and the connection must die.
				port := s.legacy
				if port == nil {
					port = unsupportedPort{}
				}
				resp := handleV2(hdr, port)
				if _, werr := conn.Write(resp[:]); werr != nil {
					return fmt.Errorf("remote: write response: %w", werr)
				}
				continue
			}
			return err
		case err == io.ErrUnexpectedEOF:
			return fmt.Errorf("remote: truncated v3 frame: %w", err)
		case errors.Is(err, net.ErrClosed), errors.Is(err, io.ErrClosedPipe):
			return nil
		default:
			return fmt.Errorf("remote: read frame: %w", err)
		}

		var resp []byte
		switch kind {
		case kHello, kAttach:
			var req helloReq
			if derr := gobDecode(payload, &req); derr != nil || req.Magic != helloMagic {
				return fmt.Errorf("remote: bad hello frame")
			}
			if kind == kHello {
				tok, ns := s.newSession(s.root)
				sess = ns
				resp = s.helloPayload(tok, sess)
			} else {
				s.mu.Lock()
				ns, ok := s.sessions[req.Token]
				s.mu.Unlock()
				if !ok {
					return fmt.Errorf("remote: attach to unknown session %d", req.Token)
				}
				sess = ns
				sess.mu.Lock()
				resp = s.helloPayload(req.Token, sess)
				sess.mu.Unlock()
			}
		default:
			if sess == nil {
				return fmt.Errorf("remote: v3 frame %#x before hello", kind)
			}
			sess.mu.Lock()
			switch {
			case seq <= sess.lastApplied:
				// Duplicate of an applied frame (the client never saw
				// the response): replay the cached response so the
				// frame is applied exactly once.
				if cached, ok := sess.respCache[seq]; ok {
					resp = cached
				} else {
					m, _ := sess.meta(vstatusOutOfOrder, false)
					m.status = vstatusOutOfOrder
					resp = m.encode(nil)
				}
			case seq != sess.lastApplied+1:
				// A predecessor was lost: refuse, client goes back.
				m, _ := sess.meta(vstatusOutOfOrder, false)
				m.status = vstatusOutOfOrder
				resp = m.encode(nil)
			default:
				resp = s.apply(sess, kind, payload)
				sess.lastApplied = seq
				sess.respCache[seq] = resp
				sess.respOrder = append(sess.respOrder, seq)
				if len(sess.respOrder) > respCacheCap {
					delete(sess.respCache, sess.respOrder[0])
					sess.respOrder = sess.respOrder[1:]
				}
			}
			sess.mu.Unlock()
		}
		if err := writeFrame(conn, kResp, seq, resp); err != nil {
			return fmt.Errorf("remote: write response: %w", err)
		}
	}
}

// serveV2Frame answers one v2 request whose opcode byte is already
// consumed.
func (s *Server) serveV2Frame(conn io.ReadWriter, opcode byte) error {
	var req [reqLen]byte
	req[0] = opcode
	if _, err := io.ReadFull(conn, req[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("remote: truncated request: %w", err)
	}
	port := s.legacy
	if port == nil {
		port = unsupportedPort{}
	}
	resp := handleV2(req, port)
	if _, err := conn.Write(resp[:]); err != nil {
		return fmt.Errorf("remote: write response: %w", err)
	}
	return nil
}

// unsupportedPort rejects v2 traffic on servers without a legacy
// port.
type unsupportedPort struct{}

func (unsupportedPort) ReadReg(uint32) (uint32, error) { return 0, errNoLegacy }
func (unsupportedPort) WriteReg(uint32, uint32) error  { return errNoLegacy }
func (unsupportedPort) IRQLevel() (bool, error)        { return false, errNoLegacy }

var errNoLegacy = &target.Error{Class: target.Fatal, Op: "remote",
	Err: errors.New("server has no v2 legacy port")}

// ListenAndServe accepts connections and serves each in its own
// goroutine (spawned worker clients need concurrent sessions). It
// returns when the listener closes, with per-connection failures
// joined.
func (s *Server) ListenAndServe(ln net.Listener) error {
	return s.ListenAndServeWith(ln, nil)
}

// ListenAndServeWith is ListenAndServe with a connection wrapper
// (fault injection, latency injection) applied to every accepted
// connection.
func (s *Server) ListenAndServeWith(ln net.Listener, wrap func(net.Conn) net.Conn) error {
	var mu sync.Mutex
	var errs []error
	var wg sync.WaitGroup
	open := make(map[net.Conn]struct{})
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener is gone: shut down the live connections so the
			// per-connection goroutines drain instead of blocking on
			// reads forever.
			mu.Lock()
			for c := range open {
				_ = c.Close()
			}
			mu.Unlock()
			wg.Wait()
			mu.Lock()
			defer mu.Unlock()
			if !errors.Is(err, net.ErrClosed) {
				errs = append(errs, fmt.Errorf("remote: accept: %w", err))
			}
			return errors.Join(errs...)
		}
		served := net.Conn(conn)
		if wrap != nil {
			served = wrap(conn)
		}
		mu.Lock()
		open[served] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func(conn, served net.Conn) {
			defer wg.Done()
			if err := s.ServeConn(served); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("remote: conn %s: %w", conn.RemoteAddr(), err))
				mu.Unlock()
			}
			_ = served.Close()
			mu.Lock()
			delete(open, served)
			mu.Unlock()
		}(conn, served)
	}
}
