// Protocol v3: batched, pipelined frames with wire-level snapshot
// transfer.
//
// Where v2 pays one blocking 10-byte-request / 6-byte-response round
// trip per register operation, v3 moves *frames*: one CRC-framed
// request carries a whole vector of register ops plus the clock
// advance of an engine step, and one response frame carries every
// result plus piggybacked target telemetry (mutation generation,
// anchor sequence, virtual clock, IRQ levels, pending violation
// count), so the common scheduling loop costs one round trip instead
// of five. Sequence numbers let the client keep several frames in
// flight over a high-latency link (go-back-N retransmission, server-
// side duplicate suppression with a response cache), and snapshot
// opcodes move Save/Restore/RestoreDelta state as digest-negotiated,
// length-prefixed, checksummed peripheral chunks: the sender offers
// sha256 content addresses first and only the chunks the receiver
// does not already hold cross the wire.
//
// Frame layout (all integers little-endian):
//
//	frame:    kind(1) seq(4) len(4) hcrc(1) payload[len] pcrc(4)
//
// hcrc is a CRC-8 over the first 9 header bytes; a header that fails
// it desynchronizes the stream and closes the connection (the client
// recovers by redialing and re-attaching its session). pcrc is a
// CRC-32 (IEEE) over the payload; a payload that fails it is answered
// with vstatusBadFrame and the frame — never partially applied — is
// retransmitted as a unit.
//
// v3 kinds start at 0x10; bytes below that are v2 opcodes, so one
// server port can speak both protocols (see Server).
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// v3 frame kinds.
const (
	v3Min = 0x10 // first v3 kind; lower bytes are v2 opcodes

	kHello      = 0x10 // establish a new session on the root target
	kAttach     = 0x11 // re-attach an existing session after a redial
	kBatch      = 0x12 // vectored register ops + advance
	kSave       = 0x13 // snapshot save: returns per-peripheral digests
	kFetch      = 0x14 // fetch peripheral chunks by digest
	kRestore    = 0x15 // snapshot restore/delta/adopt offer by digest
	kPush       = 0x16 // push peripheral chunks (and optionally apply)
	kSpawn      = 0x17 // spawn a worker target, returns a new session
	kStats      = 0x18 // fetch cumulative target counters
	kViolations = 0x19 // drain accumulated hardware violations
	kResp       = 0x1F // server -> client response frame
)

// Batched register operations (kBatch payload entries).
const (
	bRead    = 1
	bWrite   = 2
	bIRQ     = 3
	bAdvance = 4
	bPing    = 5
	bReset   = 6
)

// v3 response statuses (respMeta.status).
const (
	vstatusOK = iota
	// vstatusErr carries a target-side error: body is class(1) msg.
	vstatusErr
	// vstatusBadFrame rejects a request whose payload CRC failed; the
	// frame was not applied and must be retransmitted as a unit.
	vstatusBadFrame
	// vstatusOutOfOrder rejects a sequence number beyond
	// lastApplied+1 (a predecessor frame was lost); the client goes
	// back and retransmits from the first unacknowledged frame.
	vstatusOutOfOrder
)

const (
	v3HdrLen     = 10
	v3TrailerLen = 4
	// v3MaxPayload bounds a frame so a corrupted length field cannot
	// make the peer allocate unbounded memory.
	v3MaxPayload = 1 << 24
	// batchOpLen is the wire size of one kBatch entry:
	// op(1) periph(1) offset(4) value(8).
	batchOpLen = 14
)

// helloMagic identifies a v3 hello payload ("HSR3").
const helloMagic = 0x48535233

// errHdrCRC marks an unrecoverable header corruption: the stream is
// desynchronized and the connection must be abandoned.
var errHdrCRC = errors.New("remote: corrupted v3 frame header (bad CRC)")

// errPayloadCRC marks a recoverable payload corruption: framing
// survived, so the server stays in sync and rejects just this frame.
var errPayloadCRC = errors.New("remote: corrupted v3 frame payload (bad CRC)")

// writeFrame emits one v3 frame.
func writeFrame(w io.Writer, kind byte, seq uint32, payload []byte) error {
	buf := make([]byte, v3HdrLen+len(payload)+v3TrailerLen)
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:5], seq)
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(payload)))
	buf[9] = crc8(buf[:9])
	copy(buf[v3HdrLen:], payload)
	binary.LittleEndian.PutUint32(buf[v3HdrLen+len(payload):], crc32.ChecksumIEEE(payload))
	_, err := w.Write(buf)
	return err
}

// readFrameRest completes a v3 frame whose header is partially read
// (hdr[:have] already hold bytes from the stream). It returns the
// kind, sequence number and payload; errPayloadCRC means the frame
// was framed correctly but its payload is corrupt (seq is valid and
// the stream is still in sync), errHdrCRC means the stream is lost.
func readFrameRest(r io.Reader, hdr *[v3HdrLen]byte, have int) (kind byte, seq uint32, payload []byte, err error) {
	if _, err = io.ReadFull(r, hdr[have:]); err != nil {
		if err == io.EOF && have > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	if crc8(hdr[:9]) != hdr[9] {
		return 0, 0, nil, errHdrCRC
	}
	kind = hdr[0]
	seq = binary.LittleEndian.Uint32(hdr[1:5])
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if n > v3MaxPayload {
		return 0, 0, nil, fmt.Errorf("remote: oversized v3 frame (%d bytes)", n)
	}
	body := make([]byte, int(n)+v3TrailerLen)
	if _, err = io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	payload = body[:n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[n:]) {
		return kind, seq, nil, errPayloadCRC
	}
	return kind, seq, payload, nil
}

// readFrame reads one whole v3 frame.
func readFrame(r io.Reader) (kind byte, seq uint32, payload []byte, err error) {
	var hdr [v3HdrLen]byte
	return readFrameRest(r, &hdr, 0)
}

// respMeta is the telemetry header piggybacked on every response
// frame. It is what eliminates most of v2's round trips: after any
// flush the client answers Generation, AnchorSeq, IRQ sampling,
// violation checks and virtual-clock reads from this mirror instead
// of issuing dedicated requests.
type respMeta struct {
	status byte
	// flags bit 0: irqBits below are valid (set on batch responses,
	// where the server re-sampled every interrupt line).
	flags     byte
	gen       uint64
	anchorSeq uint64
	// serverNow is the session target's virtual clock, nanoseconds.
	serverNow int64
	cycles    uint64
	// irqBits holds one interrupt level per peripheral index.
	irqBits uint64
	// pending is the count of accumulated, undrained violations.
	pending uint32
}

const respMetaLen = 1 + 1 + 8 + 8 + 8 + 8 + 8 + 4

func (m *respMeta) encode(body []byte) []byte {
	out := make([]byte, respMetaLen+len(body))
	out[0] = m.status
	out[1] = m.flags
	binary.LittleEndian.PutUint64(out[2:10], m.gen)
	binary.LittleEndian.PutUint64(out[10:18], m.anchorSeq)
	binary.LittleEndian.PutUint64(out[18:26], uint64(m.serverNow))
	binary.LittleEndian.PutUint64(out[26:34], m.cycles)
	binary.LittleEndian.PutUint64(out[34:42], m.irqBits)
	binary.LittleEndian.PutUint32(out[42:46], m.pending)
	copy(out[respMetaLen:], body)
	return out
}

func decodeMeta(p []byte) (respMeta, []byte, error) {
	if len(p) < respMetaLen {
		return respMeta{}, nil, fmt.Errorf("remote: short v3 response (%d bytes)", len(p))
	}
	return respMeta{
		status:    p[0],
		flags:     p[1],
		gen:       binary.LittleEndian.Uint64(p[2:10]),
		anchorSeq: binary.LittleEndian.Uint64(p[10:18]),
		serverNow: int64(binary.LittleEndian.Uint64(p[18:26])),
		cycles:    binary.LittleEndian.Uint64(p[26:34]),
		irqBits:   binary.LittleEndian.Uint64(p[34:42]),
		pending:   binary.LittleEndian.Uint32(p[42:46]),
	}, p[respMetaLen:], nil
}

// batchOp is one vectored register operation.
type batchOp struct {
	op     byte
	periph byte
	offset uint32
	value  uint64
}

// encodeBatch packs ops into a kBatch payload:
// count(2) then per op: op(1) periph(1) offset(4) value(8).
func encodeBatch(ops []batchOp) []byte {
	out := make([]byte, 2+len(ops)*batchOpLen)
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(ops)))
	off := 2
	for _, op := range ops {
		out[off] = op.op
		out[off+1] = op.periph
		binary.LittleEndian.PutUint32(out[off+2:off+6], op.offset)
		binary.LittleEndian.PutUint64(out[off+6:off+14], op.value)
		off += batchOpLen
	}
	return out
}

func decodeBatch(p []byte) ([]batchOp, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("remote: short batch payload")
	}
	n := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) != 2+n*batchOpLen {
		return nil, fmt.Errorf("remote: batch payload length %d does not match %d ops", len(p), n)
	}
	ops := make([]batchOp, n)
	off := 2
	for i := range ops {
		ops[i] = batchOp{
			op:     p[off],
			periph: p[off+1],
			offset: binary.LittleEndian.Uint32(p[off+2 : off+6]),
			value:  binary.LittleEndian.Uint64(p[off+6 : off+14]),
		}
		off += batchOpLen
	}
	return ops, nil
}

// Per-op result statuses in a batch response body. Values 1..3 carry
// a target.ErrorClass; opSkipped marks ops after the first failure.
const (
	opStatusOK = 0
	opSkipped  = 0xFF
)

// encodeBatchResults packs per-op results: count(2) then per op:
// status(1) value(8).
func encodeBatchResults(status []byte, values []uint64) []byte {
	out := make([]byte, 2+len(status)*9)
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(status)))
	off := 2
	for i := range status {
		out[off] = status[i]
		binary.LittleEndian.PutUint64(out[off+1:off+9], values[i])
		off += 9
	}
	return out
}

func decodeBatchResults(p []byte) (status []byte, values []uint64, err error) {
	if len(p) < 2 {
		return nil, nil, fmt.Errorf("remote: short batch result")
	}
	n := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) != 2+n*9 {
		return nil, nil, fmt.Errorf("remote: batch result length %d does not match %d ops", len(p), n)
	}
	status = make([]byte, n)
	values = make([]uint64, n)
	off := 2
	for i := 0; i < n; i++ {
		status[i] = p[off]
		values[i] = binary.LittleEndian.Uint64(p[off+1 : off+9])
		off += 9
	}
	return status, values, nil
}

// --- gob-framed control payloads -----------------------------------
//
// Control frames (session setup, snapshot negotiation, stats,
// violations) are rare relative to batch frames; their payloads are
// gob-encoded structs under the same CRC framing.

// helloReq opens (kHello) or resumes (kAttach) a session.
type helloReq struct {
	Magic uint32
	Token uint32 // kAttach: the session to resume
}

// helloInfo describes the session's target.
type helloInfo struct {
	Token       uint32
	Kind        string
	Name        string
	StateBits   uint
	Periphs     []string
	LastApplied uint32
	// IRQMask has bit i set iff peripheral i can ever drive its
	// interrupt line. Clients answer IRQ polls for cleared bits
	// locally (the line is statically constant-low), with no wire
	// traffic.
	IRQMask uint64
	// HasAssertions reports whether the target carries hardware
	// assertions; without them it can never produce violations, so
	// clients answer TakeViolations locally.
	HasAssertions bool
}

// chunkRef names one peripheral's state by content address.
type chunkRef struct {
	Name   string
	Digest [32]byte
}

// wireChunk carries one peripheral state chunk. Data is the gob
// encoding of the *sim.HWState (length-prefixed by the gob slice
// encoding, checksummed by the frame CRC).
type wireChunk struct {
	Digest [32]byte
	Data   []byte
}

// saveOffer is the kSave response: the digests of the freshly saved
// state, for the client to fetch only what it lacks.
type saveOffer struct {
	Entries []chunkRef
}

// fetchReq asks for chunks by digest; fetchResp returns them.
type fetchReq struct {
	Digests [][32]byte
}
type fetchResp struct {
	Chunks []wireChunk
}

// Restore modes.
const (
	modeRestore = 0
	modeDelta   = 1
	modeAdopt   = 2
)

// restoreReq offers a state to restore by digest; the server lists
// the chunks it lacks, or applies directly when it holds everything.
type restoreReq struct {
	Mode    byte
	Entries []chunkRef
}

// pushReq uploads chunks. With Entries set it also applies the
// restore; with Entries nil it only populates the receiver's cache
// (the v2-emulation stop-and-wait path).
type pushReq struct {
	Mode    byte
	Entries []chunkRef
	Chunks  []wireChunk
}

// restoreResp answers kRestore and kPush.
type restoreResp struct {
	// Missing lists digests the server lacks; the client must push
	// them. Empty when Applied.
	Missing [][32]byte
	// Applied reports the state reached the hardware.
	Applied bool
	// DidDelta reports the incremental dirty-only path served it.
	DidDelta bool
}

// spawnReq asks the session's target for a worker clone; the response
// is a helloInfo for the new session.
type spawnReq struct {
	Name   string
	Stream int
}

// --- latency injection ---------------------------------------------

// latencyConn delays every Write by a fixed one-way latency without
// blocking the writer: writes are timestamped into a queue and a pump
// goroutine delivers them in order when due. This models link
// *latency* (the quantity pipelining hides), not throughput; wrapping
// both endpoints of a connection with delay d gives a round-trip time
// of 2d.
type latencyConn struct {
	net.Conn
	delay time.Duration
	ch    chan delayed
	wg    sync.WaitGroup
	mu    sync.Mutex
	werr  error
	open  bool
}

type delayed struct {
	data []byte
	due  time.Time
}

// NewLatencyConn wraps a connection so each Write is delivered after
// the given one-way delay. The bench harness uses it to reproduce the
// paper's USB-debugger link latency on an in-process socket.
func NewLatencyConn(c net.Conn, delay time.Duration) net.Conn {
	if delay <= 0 {
		return c
	}
	l := &latencyConn{Conn: c, delay: delay, ch: make(chan delayed, 1024), open: true}
	l.wg.Add(1)
	go l.pump()
	return l
}

func (l *latencyConn) pump() {
	defer l.wg.Done()
	for d := range l.ch {
		if wait := time.Until(d.due); wait > 0 {
			time.Sleep(wait)
		}
		if _, err := l.Conn.Write(d.data); err != nil {
			l.mu.Lock()
			if l.werr == nil {
				l.werr = err
			}
			l.mu.Unlock()
		}
	}
}

func (l *latencyConn) Write(p []byte) (int, error) {
	l.mu.Lock()
	if !l.open {
		l.mu.Unlock()
		return 0, net.ErrClosed
	}
	if err := l.werr; err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.mu.Unlock()
	buf := append([]byte(nil), p...)
	l.ch <- delayed{data: buf, due: time.Now().Add(l.delay)}
	return len(p), nil
}

func (l *latencyConn) Close() error {
	l.mu.Lock()
	if !l.open {
		l.mu.Unlock()
		return nil
	}
	l.open = false
	l.mu.Unlock()
	close(l.ch)
	l.wg.Wait() // deliver queued writes before closing the stream
	return l.Conn.Close()
}
