package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/sim"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// ClientStats is a snapshot of a client's wire-level counters. Frames
// counts transmitted request frames — each is one wire round trip —
// which is the quantity v3's batching attacks; Retransmits counts
// go-back-N window replays after faults; ChunksSkipped counts
// peripheral state chunks digest negotiation kept off the wire.
type ClientStats struct {
	Frames             uint64
	Retransmits        uint64
	Ops                uint64
	StateBytesSent     uint64
	StateBytesReceived uint64
	ChunksSkipped      uint64
	// Reconnects counts successful redial + re-attach recoveries after
	// the link was lost mid-session.
	Reconnects uint64
}

// wireStats is the atomic backing store, shared between a root client
// and the workers it spawns so a benchmark reads one total.
type wireStats struct {
	frames        atomic.Uint64
	retransmits   atomic.Uint64
	ops           atomic.Uint64
	bytesSent     atomic.Uint64
	bytesReceived atomic.Uint64
	chunksSkipped atomic.Uint64
	reconnects    atomic.Uint64
}

func (w *wireStats) snapshot() ClientStats {
	return ClientStats{
		Frames:             w.frames.Load(),
		Retransmits:        w.retransmits.Load(),
		Ops:                w.ops.Load(),
		StateBytesSent:     w.bytesSent.Load(),
		StateBytesReceived: w.bytesReceived.Load(),
		ChunksSkipped:      w.chunksSkipped.Load(),
		Reconnects:         w.reconnects.Load(),
	}
}

// chunkCache maps content digests to peripheral states the client has
// already seen, shared across spawned workers.
type chunkCache struct {
	mu sync.Mutex
	m  map[snapshot.Digest]*sim.HWState
}

func newChunkCache() *chunkCache {
	return &chunkCache{m: make(map[snapshot.Digest]*sim.HWState)}
}

func (cc *chunkCache) get(d snapshot.Digest) (*sim.HWState, bool) {
	cc.mu.Lock()
	hw, ok := cc.m[d]
	cc.mu.Unlock()
	return hw, ok
}

func (cc *chunkCache) put(d snapshot.Digest, hw *sim.HWState) {
	cc.mu.Lock()
	if _, ok := cc.m[d]; !ok {
		cc.m[d] = hw
	}
	cc.mu.Unlock()
}

// sentFrame is one unacknowledged v3 request. background marks the
// batch frames flushed from the op queue, whose per-op errors are
// deferred to the flush result rather than any single caller.
type sentFrame struct {
	kind       byte
	seq        uint32
	payload    []byte
	background bool

	done bool
	body []byte
	err  error
}

// TargetClient speaks protocol v3 and exposes the remote target
// behind the full target.Interface, so the engine — scheduler,
// snapshot manager, parallel worker fan-out — runs against remote
// hardware unchanged.
//
// The client is the batching layer: register writes, clock advances
// and resets queue locally and cross the wire as one vectored frame
// when something forces a flush (a read, an IRQ sample with a dirty
// queue, a snapshot boundary). Errors of queued ops surface at that
// flush. Response telemetry (generation, anchor sequence, virtual
// clock, IRQ levels, pending violation count) is mirrored client-side
// so the engine's bookkeeping reads cost no round trips.
//
// Like the v2 client it is not safe for concurrent use; the VM
// serializes hardware access. Workers spawned via SpawnWorker get
// their own connection and session and may run concurrently with the
// parent.
type TargetClient struct {
	conn  io.ReadWriter
	clock *vtime.Clock

	// Timeout, MaxRetries, Backoff, BackoffMax, Dial mirror the v2
	// client's per-transaction reliability knobs; Dial (when set)
	// re-establishes the link and re-attaches the session after a
	// transport error.
	Timeout    time.Duration
	MaxRetries int
	Backoff    time.Duration
	BackoffMax time.Duration
	Dial       func() (net.Conn, error)
	// Legacy degrades the client to protocol-v2 behavior over v3
	// frames — one op per frame, no mirrors, no digest negotiation,
	// full state transfers — as the baseline leg of latency
	// experiments.
	Legacy bool
	// MaxBatch caps ops per frame; MaxInflight caps pipelined frames.
	MaxBatch    int
	MaxInflight int

	token     uint32
	name      string
	kind      string
	stateBits uint
	periphs   []string
	pidx      map[string]int

	nextSeq     uint32
	inflight    []*sentFrame
	queue       []batchOp
	deferredErr error

	// irqMask has bit i set iff peripheral i can ever drive its IRQ
	// line (from the hello handshake); cleared bits answer IRQ polls
	// locally as constant-low. hasAssertions gates TakeViolations the
	// same way: an assertion-free target can never produce one.
	irqMask       uint64
	hasAssertions bool

	// Mirrors of the piggybacked response telemetry.
	gen        uint64
	genPoison  uint64
	anchorSeq  uint64
	lastNow    time.Duration
	irqBits    uint64
	irqValid   bool
	pending    uint32
	statsCache target.Stats

	store  *snapshot.Store
	chunks *chunkCache
	wire   *wireStats

	// jitterState is the backoff-jitter LCG state (lazily seeded).
	jitterState uint64
}

var _ target.Interface = (*TargetClient)(nil)

// Connect performs the v3 hello handshake over conn and returns a
// client whose virtual clock mirror is clock (a fresh clock is used
// when nil).
func Connect(conn io.ReadWriter, clock *vtime.Clock) (*TargetClient, error) {
	if clock == nil {
		clock = &vtime.Clock{}
	}
	c := &TargetClient{
		conn:        conn,
		clock:       clock,
		MaxBatch:    64,
		MaxInflight: 8,
		chunks:      newChunkCache(),
		wire:        &wireStats{},
	}
	info, err := c.handshake(kHello, 0)
	if err != nil {
		return nil, err
	}
	c.applyInfo(info)
	return c, nil
}

func (c *TargetClient) applyInfo(info helloInfo) {
	c.token = info.Token
	c.name = info.Name
	c.kind = info.Kind
	c.stateBits = info.StateBits
	c.periphs = info.Periphs
	c.irqMask = info.IRQMask
	c.hasAssertions = info.HasAssertions
	c.pidx = make(map[string]int, len(info.Periphs))
	for i, name := range info.Periphs {
		c.pidx[name] = i
	}
	c.nextSeq = info.LastApplied
}

// BindStore lets digest negotiation satisfy snapshot transfers from a
// content-addressed store the client side already holds (the engine's
// snapshot store), in addition to the client's own chunk cache.
func (c *TargetClient) BindStore(s *snapshot.Store) { c.store = s }

// WireStats snapshots the wire-level counters (shared with spawned
// workers).
func (c *TargetClient) WireStats() ClientStats { return c.wire.snapshot() }

// Close closes the underlying connection when it supports it.
func (c *TargetClient) Close() error {
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// SeverLink forcibly closes the underlying connection without
// detaching the server session — the injection point for mid-run link
// loss (the exploration chaos harness severs through this seam). The
// next operation observes a transport error and recovers through the
// ordinary redial + re-attach + window-retransmit path; the server's
// duplicate suppression keeps already-applied frames from replaying.
func (c *TargetClient) SeverLink() error {
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return errors.New("remote: connection does not support severing")
}

// --- wire engine ---------------------------------------------------

func (c *TargetClient) setDeadline() func() {
	if d, ok := c.conn.(deadliner); ok && c.Timeout > 0 {
		_ = d.SetDeadline(time.Now().Add(c.Timeout))
		return func() { _ = d.SetDeadline(time.Time{}) }
	}
	return func() {}
}

func (c *TargetClient) xmit(f *sentFrame) error {
	restore := c.setDeadline()
	defer restore()
	if err := writeFrame(c.conn, f.kind, f.seq, f.payload); err != nil {
		return &transportError{fmt.Errorf("remote: send frame %d: %w", f.seq, err)}
	}
	c.wire.frames.Add(1)
	return nil
}

// handshake sends an unsequenced kHello/kAttach and reads its
// response.
func (c *TargetClient) handshake(kind byte, token uint32) (helloInfo, error) {
	restore := c.setDeadline()
	defer restore()
	payload, err := gobEncode(helloReq{Magic: helloMagic, Token: token})
	if err != nil {
		return helloInfo{}, err
	}
	if err := writeFrame(c.conn, kind, 0, payload); err != nil {
		return helloInfo{}, &transportError{fmt.Errorf("remote: hello: %w", err)}
	}
	c.wire.frames.Add(1)
	rkind, _, rp, err := readFrame(c.conn)
	if err != nil {
		return helloInfo{}, &transportError{fmt.Errorf("remote: hello response: %w", err)}
	}
	if rkind != kResp {
		return helloInfo{}, &transportError{fmt.Errorf("remote: hello answered by frame kind %#x", rkind)}
	}
	m, body, err := decodeMeta(rp)
	if err != nil {
		return helloInfo{}, &transportError{err}
	}
	if m.status != vstatusOK {
		if m.status == vstatusErr {
			return helloInfo{}, decodeWireErr(body)
		}
		return helloInfo{}, &transportError{fmt.Errorf("remote: hello rejected (status %d)", m.status)}
	}
	var info helloInfo
	if err := gobDecode(body, &info); err != nil {
		return helloInfo{}, &transportError{fmt.Errorf("remote: hello info: %w", err)}
	}
	c.consume(m)
	return info, nil
}

// consume folds a response's piggybacked telemetry into the client
// mirrors. The virtual clock advances by the server-side delta, so
// locally charged time (symbolic execution costs) stacks on top
// exactly as it does against an in-process target.
func (c *TargetClient) consume(m respMeta) {
	c.gen = m.gen
	c.anchorSeq = m.anchorSeq
	c.pending = m.pending
	c.statsCache.Cycles = m.cycles
	if m.flags&1 != 0 {
		c.irqBits = m.irqBits
		c.irqValid = true
	} else {
		c.irqValid = false
	}
	now := time.Duration(m.serverNow)
	if d := now - c.lastNow; d > 0 {
		c.clock.Advance(d)
	}
	c.lastNow = now
}

func decodeWireErr(body []byte) error {
	if len(body) < 1 {
		return &target.Error{Class: target.Fatal, Op: "remote",
			Err: errors.New("malformed error response")}
	}
	class := target.ErrorClass(body[0])
	switch class {
	case target.Transient, target.Fatal, target.Integrity:
	default:
		class = target.Fatal
	}
	return &target.Error{Class: class, Op: "remote", Err: errors.New(string(body[1:]))}
}

// errProtoRetry marks a server rejection (vstatusBadFrame /
// vstatusOutOfOrder) that is cured by retransmitting the go-back-N
// window as a unit.
var errProtoRetry = &target.Error{Class: target.Transient, Op: "remote",
	Err: errors.New("server rejected frame; window retransmit needed")}

// recoverLink redials, re-attaches the session and retransmits every
// in-flight frame. The server's duplicate suppression guarantees
// frames that were already applied are not applied again; their
// cached responses replay instead.
func (c *TargetClient) recoverLink() error {
	if c.Dial == nil {
		return &transportError{errors.New("remote: link lost and no Dial configured")}
	}
	conn, err := c.Dial()
	if err != nil {
		return &transportError{fmt.Errorf("remote: redial: %w", err)}
	}
	if old, ok := c.conn.(io.Closer); ok {
		_ = old.Close()
	}
	c.conn = conn
	if _, err := c.handshake(kAttach, c.token); err != nil {
		return err
	}
	c.wire.reconnects.Add(1)
	return c.retransmitAll()
}

func (c *TargetClient) retransmitAll() error {
	for _, f := range c.inflight {
		if err := c.xmit(f); err != nil {
			return err
		}
		c.wire.retransmits.Add(1)
	}
	return nil
}

func (c *TargetClient) backoffs() (time.Duration, time.Duration) {
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Microsecond
	}
	backoffMax := c.BackoffMax
	if backoffMax <= 0 {
		backoffMax = 50 * time.Millisecond
	}
	return backoff, backoffMax
}

// jittered spreads a backoff delay over [d/2, d): clients that lost
// the same server redial desynchronized instead of hammering it in
// lockstep. The PRNG is a client-local LCG — jitter shapes host-side
// sleeps only and never touches virtual time or results.
func (c *TargetClient) jittered(d time.Duration) time.Duration {
	span := uint64(d) / 2
	if span == 0 {
		return d
	}
	if c.jitterState == 0 {
		c.jitterState = uint64(c.token)<<32 | 0x9e3779b9
	}
	c.jitterState = c.jitterState*6364136223846793005 + 1442695040888963407
	return time.Duration(span + (c.jitterState>>33)%span)
}

// recoverRetry drives recoverLink under the retry budget after a
// send-side transport failure. Fatal and integrity errors from the
// server (a rejected session token, a mismatched design) short-
// circuit the loop: no amount of redialing cures them.
func (c *TargetClient) recoverRetry(lastErr error) error {
	backoff, backoffMax := c.backoffs()
	for attempt := 1; attempt <= c.MaxRetries; attempt++ {
		time.Sleep(c.jittered(backoff))
		if backoff < backoffMax {
			backoff = min(backoff*2, backoffMax)
		}
		if err := c.recoverLink(); err == nil {
			return nil
		} else {
			lastErr = err
			if !retryable(err) {
				return err
			}
		}
	}
	var te *transportError
	if errors.As(lastErr, &te) {
		return &target.Error{Class: target.Transient, Op: "remote", Err: te.err}
	}
	return lastErr
}

// sendSeq transmits a sequenced frame, draining the pipeline when the
// window is full.
func (c *TargetClient) sendSeq(kind byte, payload []byte, background bool) (*sentFrame, error) {
	maxInflight := c.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 1
	}
	for len(c.inflight) >= maxInflight {
		if err := c.drainOne(); err != nil {
			return nil, err
		}
	}
	c.nextSeq++
	f := &sentFrame{kind: kind, seq: c.nextSeq, payload: payload, background: background}
	c.inflight = append(c.inflight, f)
	if err := c.xmit(f); err != nil {
		if rerr := c.recoverRetry(err); rerr != nil {
			return nil, rerr
		}
	}
	return f, nil
}

// drainOne consumes one response from the pipeline, absorbing
// transient faults with backoff, redial and go-back-N window
// retransmission.
func (c *TargetClient) drainOne() error {
	backoff, backoffMax := c.backoffs()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			time.Sleep(c.jittered(backoff))
			if backoff < backoffMax {
				backoff = min(backoff*2, backoffMax)
			}
			var te *transportError
			if errors.As(lastErr, &te) && c.Dial != nil {
				if err := c.recoverLink(); err != nil {
					lastErr = err
					if !retryable(err) {
						// The server refused the session outright;
						// retrying cannot cure a fatal rejection.
						return err
					}
					if attempt >= c.MaxRetries {
						break
					}
					continue
				}
			} else if err := c.retransmitAll(); err != nil {
				lastErr = err
				if attempt >= c.MaxRetries {
					break
				}
				continue
			}
		}
		err := c.readOne()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if attempt >= c.MaxRetries {
			break
		}
	}
	var te *transportError
	if errors.As(lastErr, &te) {
		return &target.Error{Class: target.Transient, Op: "remote", Err: te.err}
	}
	return lastErr
}

// readOne reads responses until the head-of-window frame is resolved.
// Responses for sequence numbers other than the head are either stale
// artifacts of a superseded transmission (ignored) or evidence of
// desynchronization (transport error).
func (c *TargetClient) readOne() error {
	if len(c.inflight) == 0 {
		return nil
	}
	head := c.inflight[0]
	for {
		restore := c.setDeadline()
		kind, seq, payload, err := readFrame(c.conn)
		restore()
		switch {
		case err == nil:
		case errors.Is(err, errPayloadCRC):
			// The response was corrupted in flight; retransmitting the
			// window makes the server replay it from the cache.
			return errProtoRetry
		default:
			return &transportError{fmt.Errorf("remote: receive: %w", err)}
		}
		if kind != kResp {
			return &transportError{fmt.Errorf("remote: unexpected frame kind %#x", kind)}
		}
		m, body, err := decodeMeta(payload)
		if err != nil {
			return &transportError{err}
		}
		if seq != head.seq {
			if seq < head.seq || m.status == vstatusBadFrame || m.status == vstatusOutOfOrder {
				// Stale: a response to a transmission this window
				// already superseded.
				continue
			}
			return &transportError{fmt.Errorf("remote: response for frame %d while %d heads the window", seq, head.seq)}
		}
		if m.status == vstatusBadFrame || m.status == vstatusOutOfOrder {
			return errProtoRetry
		}
		c.consume(m)
		c.inflight = c.inflight[1:]
		head.done = true
		head.body = body
		switch {
		case m.status == vstatusErr:
			head.err = decodeWireErr(body)
		case head.kind == kBatch:
			head.err = checkBatchErr(body)
		}
		if head.background && head.err != nil && c.deferredErr == nil {
			c.deferredErr = head.err
		}
		return nil
	}
}

// checkBatchErr surfaces the first failed op of a batch response.
func checkBatchErr(body []byte) error {
	status, _, err := decodeBatchResults(body)
	if err != nil {
		return &target.Error{Class: target.Transient, Op: "remote", Err: err}
	}
	for _, st := range status {
		if st == opStatusOK || st == opSkipped {
			continue
		}
		class := target.ErrorClass(st)
		switch class {
		case target.Transient, target.Fatal, target.Integrity:
		default:
			class = target.Fatal
		}
		return &target.Error{Class: class, Op: "remote",
			Err: errors.New("batched operation failed on target")}
	}
	return nil
}

func (c *TargetClient) enqueue(op batchOp) {
	c.queue = append(c.queue, op)
}

func (c *TargetClient) maxBatch() int {
	if c.MaxBatch <= 0 || c.MaxBatch > 0xFFFF {
		return 64
	}
	return c.MaxBatch
}

// sendQueued packs the op queue into pipelined batch frames. When
// capture is set the last frame is marked foreground and returned
// (with the index of its last op) so the caller can decode a result
// from it.
func (c *TargetClient) sendQueued(capture bool) (*sentFrame, int, error) {
	var capFrame *sentFrame
	capIdx := 0
	for len(c.queue) > 0 {
		n := min(len(c.queue), c.maxBatch())
		ops := c.queue[:n:n]
		c.queue = c.queue[n:]
		last := len(c.queue) == 0
		f, err := c.sendSeq(kBatch, encodeBatch(ops), !(capture && last))
		if err != nil {
			c.queue = nil
			return nil, 0, err
		}
		c.wire.ops.Add(uint64(n))
		if capture && last {
			capFrame = f
			capIdx = n - 1
		}
	}
	return capFrame, capIdx, nil
}

// asyncFlush ships the op queue without waiting for responses: frames
// pipeline up to MaxInflight deep (sendSeq blocks on a full window),
// which is what hides link latency under bursts of queued writes and
// advances. Response errors are deferred to the next synchronous
// flush, exactly like the queued ops' own errors.
func (c *TargetClient) asyncFlush() error {
	_, _, err := c.sendQueued(false)
	if err != nil {
		c.deferredErr = nil
	}
	return err
}

// flush drains the op queue and the pipeline, surfacing any deferred
// error from queued ops.
func (c *TargetClient) flush() error {
	_, err := c.flushCapture(false)
	return err
}

// flushCapture is flush, optionally returning the result value of the
// last queued op (reads and IRQ samples coalesce into the flush frame
// instead of paying their own round trip).
func (c *TargetClient) flushCapture(capture bool) (uint64, error) {
	capFrame, capIdx, err := c.sendQueued(capture)
	if err != nil {
		c.deferredErr = nil
		return 0, err
	}
	for len(c.inflight) > 0 {
		if err := c.drainOne(); err != nil {
			c.deferredErr = nil
			return 0, err
		}
	}
	err = c.deferredErr
	c.deferredErr = nil
	if capFrame != nil {
		if capFrame.err != nil {
			return 0, capFrame.err
		}
		_, values, derr := decodeBatchResults(capFrame.body)
		if derr != nil {
			return 0, &target.Error{Class: target.Transient, Op: "remote", Err: derr}
		}
		return values[capIdx], err
	}
	return 0, err
}

// mirrorsFresh reports whether the telemetry mirrors reflect every
// operation issued so far.
func (c *TargetClient) mirrorsFresh() bool {
	return len(c.queue) == 0 && len(c.inflight) == 0
}

// stashErr preserves an error produced on a path that cannot return
// one; the next flush surfaces it.
func (c *TargetClient) stashErr(err error) {
	if c.deferredErr == nil {
		c.deferredErr = err
	}
}

// roundTrip flushes pending work, sends one control frame and waits
// for its response body.
func (c *TargetClient) roundTrip(kind byte, payload []byte) ([]byte, error) {
	if err := c.flush(); err != nil {
		return nil, err
	}
	f, err := c.sendSeq(kind, payload, false)
	if err != nil {
		return nil, err
	}
	for !f.done {
		if err := c.drainOne(); err != nil {
			return nil, err
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return f.body, nil
}

// --- register port ---------------------------------------------------

// clientPort projects one remote peripheral as a bus.Port. Writes are
// deferred into the batch queue (their errors surface at the next
// flush); reads coalesce into the flushed frame so a step's worth of
// bus traffic costs one round trip.
type clientPort struct {
	c   *TargetClient
	idx byte
}

var (
	_ bus.Port    = (*clientPort)(nil)
	_ bus.Flusher = (*clientPort)(nil)
)

func (p *clientPort) ReadReg(offset uint32) (uint32, error) {
	p.c.enqueue(batchOp{op: bRead, periph: p.idx, offset: offset})
	v, err := p.c.flushCapture(true)
	return uint32(v), err
}

func (p *clientPort) WriteReg(offset uint32, v uint32) error {
	p.c.enqueue(batchOp{op: bWrite, periph: p.idx, offset: offset, value: uint64(v)})
	if p.c.Legacy {
		return p.c.flush()
	}
	if len(p.c.queue) >= p.c.maxBatch() {
		// Ship the full batch without waiting: frames pipeline up to
		// MaxInflight deep, so write bursts overlap link latency.
		return p.c.asyncFlush()
	}
	return nil
}

func (p *clientPort) IRQLevel() (bool, error) {
	c := p.c
	if !c.Legacy {
		// A statically constant-low line needs no wire traffic at
		// all — not even a flush of queued work.
		if c.irqMask&(1<<uint(p.idx)) == 0 {
			return false, nil
		}
		if !c.mirrorsFresh() {
			if err := c.flush(); err != nil {
				return false, err
			}
		}
		if c.irqValid {
			return c.irqBits&(1<<uint(p.idx)) != 0, nil
		}
	}
	c.enqueue(batchOp{op: bIRQ, periph: p.idx})
	v, err := c.flushCapture(true)
	return v != 0, err
}

// Flush implements bus.Flusher: the router's explicit barrier before
// final clock and statistics reads.
func (p *clientPort) Flush() error { return p.c.flush() }

// Port returns the bus.Port for a peripheral by name.
func (c *TargetClient) Port(name string) (bus.Port, error) {
	i, ok := c.pidx[name]
	if !ok {
		return nil, fmt.Errorf("remote: no peripheral %q on target %s", name, c.name)
	}
	return &clientPort{c: c, idx: byte(i)}, nil
}

// --- target.Interface ------------------------------------------------

// Name reports the remote target's name.
func (c *TargetClient) Name() string { return c.name }

// Kind reports the remote target's kind ("sim" or "fpga").
func (c *TargetClient) Kind() string { return c.kind }

// Clock returns the client-side mirror of the target's virtual clock.
func (c *TargetClient) Clock() *vtime.Clock { return c.clock }

// StateBits reports the architectural state size of the design.
func (c *TargetClient) StateBits() uint { return c.stateBits }

// Peripherals lists the remote peripheral names in index order.
func (c *TargetClient) Peripherals() []string {
	return append([]string(nil), c.periphs...)
}

// Stats fetches the remote counters; on a link failure the last
// mirrored values are returned (statistics are advisory).
func (c *TargetClient) Stats() target.Stats {
	body, err := c.roundTrip(kStats, nil)
	if err != nil {
		c.stashErr(err)
		return c.statsCache
	}
	var st target.Stats
	if err := gobDecode(body, &st); err == nil {
		c.statsCache = st
	}
	return c.statsCache
}

// Advance queues n hardware clock cycles; the advance crosses the
// wire inside the next flushed batch frame.
func (c *TargetClient) Advance(n uint64) error {
	// Adjacent advances coalesce into one op: with nothing queued
	// between them, no observer can distinguish Advance(a);Advance(b)
	// from Advance(a+b), so per-instruction clocking collapses into
	// one wire op per burst.
	if last := len(c.queue) - 1; !c.Legacy && last >= 0 && c.queue[last].op == bAdvance {
		c.queue[last].value += n
		return nil
	}
	c.enqueue(batchOp{op: bAdvance, value: n})
	if c.Legacy {
		return c.flush()
	}
	if len(c.queue) >= c.maxBatch() {
		return c.asyncFlush()
	}
	return nil
}

// Reset returns the remote design to its power-on state.
func (c *TargetClient) Reset() error {
	c.enqueue(batchOp{op: bReset})
	return c.flush()
}

// Ping verifies the link end to end through a batched echo.
func (c *TargetClient) Ping() error {
	c.enqueue(batchOp{op: bPing, value: pingMagic})
	v, err := c.flushCapture(true)
	if err != nil {
		return err
	}
	if v != pingMagic {
		return &target.Error{Class: target.Transient, Op: "remote",
			Err: fmt.Errorf("bad ping echo %#x", v)}
	}
	return nil
}

// Generation mirrors the remote mutation generation. In legacy mode
// the counter moves on every call, which disables all generation-
// proven snapshot skips — the honest protocol-v2 cost model.
func (c *TargetClient) Generation() uint64 {
	if c.Legacy {
		c.genPoison++
		return c.gen + c.genPoison
	}
	if !c.mirrorsFresh() {
		if err := c.flush(); err != nil {
			// Poisoning the generation makes every skip proof fail
			// until the link recovers, which is the safe direction.
			c.stashErr(err)
			c.genPoison++
		}
	}
	return c.gen + c.genPoison
}

// AnchorSeq mirrors the remote dirty-tracking anchor sequence.
func (c *TargetClient) AnchorSeq() uint64 {
	if !c.mirrorsFresh() {
		if err := c.flush(); err != nil {
			c.stashErr(err)
			return ^uint64(0)
		}
	}
	return c.anchorSeq
}

// TakeViolations drains accumulated hardware property violations.
// When the piggybacked pending count is zero — the overwhelmingly
// common case — no round trip happens.
func (c *TargetClient) TakeViolations() []target.Violation {
	// Without registered hardware assertions the target can never
	// produce a violation: answer locally, without even flushing.
	if !c.Legacy && !c.hasAssertions {
		return nil
	}
	if !c.mirrorsFresh() {
		if err := c.flush(); err != nil {
			c.stashErr(err)
			return nil
		}
	}
	if !c.Legacy && c.pending == 0 {
		return nil
	}
	body, err := c.roundTrip(kViolations, nil)
	if err != nil {
		c.stashErr(err)
		return nil
	}
	var vs []target.Violation
	if err := gobDecode(body, &vs); err != nil {
		c.stashErr(&target.Error{Class: target.Transient, Op: "remote", Err: err})
		return nil
	}
	return vs
}

// InjectFaults is a no-op on a remote target: link faults are the
// transport's domain (wrap the connection, e.g. target.NewFaultConn).
func (c *TargetClient) InjectFaults(target.FaultSchedule) {}

// FaultSchedule reports that no client-side schedule is active.
func (c *TargetClient) FaultSchedule() (target.FaultSchedule, bool) {
	return target.FaultSchedule{}, false
}

// SetRetryPolicy maps the target-layer retry policy onto the wire
// client's knobs.
func (c *TargetClient) SetRetryPolicy(p target.RetryPolicy) {
	if p.MaxRetries > 0 {
		c.MaxRetries = p.MaxRetries
	}
	if p.Backoff > 0 {
		c.Backoff = p.Backoff
	}
	if p.MaxBackoff > 0 {
		c.BackoffMax = p.MaxBackoff
	}
}

// --- snapshot transfer ----------------------------------------------

// lookupChunk finds a peripheral state by content digest in the
// client cache or the bound snapshot store.
func (c *TargetClient) lookupChunk(d snapshot.Digest) (*sim.HWState, bool) {
	if hw, ok := c.chunks.get(d); ok {
		return hw, true
	}
	if c.store != nil {
		if hw, ok := c.store.PeriphByDigest(d); ok {
			return hw, true
		}
	}
	return nil, false
}

// Save captures the remote state. The server answers with content
// digests; only chunks neither the client cache nor the bound store
// already holds are fetched, so a save of previously seen content
// moves zero state bytes.
func (c *TargetClient) Save() (target.State, error) {
	body, err := c.roundTrip(kSave, nil)
	if err != nil {
		return nil, err
	}
	var offer saveOffer
	if err := gobDecode(body, &offer); err != nil {
		return nil, &target.Error{Class: target.Transient, Op: "remote", Err: err}
	}
	if c.Legacy {
		return c.fetchAll(offer.Entries)
	}
	st := make(target.State, len(offer.Entries))
	var missing [][32]byte
	seen := make(map[snapshot.Digest]bool)
	for _, e := range offer.Entries {
		d := snapshot.Digest(e.Digest)
		if hw, ok := c.lookupChunk(d); ok {
			st[e.Name] = hw
			c.wire.chunksSkipped.Add(1)
			continue
		}
		if !seen[d] {
			seen[d] = true
			missing = append(missing, e.Digest)
		}
	}
	if len(missing) > 0 {
		if err := c.fetchInto(missing); err != nil {
			return nil, err
		}
		for _, e := range offer.Entries {
			if st[e.Name] != nil {
				continue
			}
			hw, ok := c.lookupChunk(snapshot.Digest(e.Digest))
			if !ok {
				return nil, &target.Error{Class: target.Integrity, Op: "remote",
					Err: fmt.Errorf("server did not return chunk for %s", e.Name)}
			}
			st[e.Name] = hw
		}
	}
	return st, nil
}

// fetchInto transfers the named chunks into the client cache,
// verifying each against its content digest.
func (c *TargetClient) fetchInto(digests [][32]byte) error {
	payload, err := gobEncode(fetchReq{Digests: digests})
	if err != nil {
		return err
	}
	body, err := c.roundTrip(kFetch, payload)
	if err != nil {
		return err
	}
	var resp fetchResp
	if err := gobDecode(body, &resp); err != nil {
		return &target.Error{Class: target.Transient, Op: "remote", Err: err}
	}
	for _, ch := range resp.Chunks {
		hw := &sim.HWState{}
		if err := gobDecode(ch.Data, hw); err != nil {
			return &target.Error{Class: target.Integrity, Op: "remote",
				Err: fmt.Errorf("fetched chunk %x: %v", ch.Digest[:8], err)}
		}
		if got := snapshot.HWDigest(hw); got != snapshot.Digest(ch.Digest) {
			return &target.Error{Class: target.Integrity, Op: "remote",
				Err: fmt.Errorf("fetched chunk digest mismatch (%x != %x)", got[:8], ch.Digest[:8])}
		}
		c.wire.bytesReceived.Add(uint64(len(ch.Data)))
		c.chunks.put(ch.Digest, hw)
	}
	return nil
}

// fetchAll is the legacy save path: every chunk crosses the wire in
// its own stop-and-wait frame, cache or no cache.
func (c *TargetClient) fetchAll(entries []chunkRef) (target.State, error) {
	st := make(target.State, len(entries))
	for _, e := range entries {
		payload, err := gobEncode(fetchReq{Digests: [][32]byte{e.Digest}})
		if err != nil {
			return nil, err
		}
		body, err := c.roundTrip(kFetch, payload)
		if err != nil {
			return nil, err
		}
		var resp fetchResp
		if err := gobDecode(body, &resp); err != nil {
			return nil, &target.Error{Class: target.Transient, Op: "remote", Err: err}
		}
		if len(resp.Chunks) != 1 {
			return nil, &target.Error{Class: target.Integrity, Op: "remote",
				Err: fmt.Errorf("expected 1 chunk, got %d", len(resp.Chunks))}
		}
		hw := &sim.HWState{}
		if err := gobDecode(resp.Chunks[0].Data, hw); err != nil {
			return nil, &target.Error{Class: target.Integrity, Op: "remote", Err: err}
		}
		c.wire.bytesReceived.Add(uint64(len(resp.Chunks[0].Data)))
		c.chunks.put(e.Digest, hw)
		st[e.Name] = hw
	}
	return st, nil
}

// stateEntries names a state's chunks by content digest in a
// deterministic order, caching the chunks locally (the state is about
// to be live on both ends).
func (c *TargetClient) stateEntries(s target.State) ([]chunkRef, map[snapshot.Digest]*sim.HWState) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]chunkRef, 0, len(names))
	byDigest := make(map[snapshot.Digest]*sim.HWState, len(names))
	for _, name := range names {
		hw := s[name]
		if hw == nil {
			hw = &sim.HWState{}
		}
		d := snapshot.HWDigest(hw)
		c.chunks.put(d, hw)
		byDigest[d] = hw
		entries = append(entries, chunkRef{Name: name, Digest: d})
	}
	return entries, byDigest
}

// applyRemote drives the digest-negotiated restore conversation: the
// client offers the state by content address, the server lists the
// chunks it lacks, and only those cross the wire (none, when the
// server has seen the content before).
func (c *TargetClient) applyRemote(s target.State, mode byte) (restoreResp, error) {
	if err := c.flush(); err != nil {
		return restoreResp{}, err
	}
	entries, byDigest := c.stateEntries(s)
	if c.Legacy {
		return c.applyLegacy(entries, byDigest, mode)
	}
	payload, err := gobEncode(restoreReq{Mode: mode, Entries: entries})
	if err != nil {
		return restoreResp{}, err
	}
	body, err := c.roundTrip(kRestore, payload)
	if err != nil {
		return restoreResp{}, err
	}
	var resp restoreResp
	if err := gobDecode(body, &resp); err != nil {
		return restoreResp{}, &target.Error{Class: target.Transient, Op: "remote", Err: err}
	}
	c.wire.chunksSkipped.Add(uint64(len(entries) - len(resp.Missing)))
	// Delta-upload loop: push what the server reported missing, then
	// re-check. One round suffices in the steady state, but a chunk
	// the server *claimed* to hold at kRestore time may be evicted
	// from its capped, session-shared cache before the push applies;
	// the next response re-lists it and we re-upload. The pushed set
	// is cumulative across rounds: chunks uploaded in one frame are
	// pinned server-side only for that frame, so under eviction
	// pressure the restore lands once a single frame carries every
	// chunk the cache cannot be trusted to keep — the cumulative set
	// grows monotonically toward that, bounded by the state itself.
	need := make(map[[32]byte]bool)
	for round := 0; len(resp.Missing) > 0; round++ {
		if round == maxPushRounds {
			return restoreResp{}, &target.Error{Class: target.Integrity, Op: "remote",
				Err: fmt.Errorf("restore did not converge after %d push rounds (%d chunks still missing)",
					maxPushRounds, len(resp.Missing))}
		}
		for _, d := range resp.Missing {
			need[d] = true
		}
		push := pushReq{Mode: mode, Entries: entries}
		var sent uint64
		added := make(map[[32]byte]bool, len(need))
		for _, e := range entries {
			if !need[e.Digest] || added[e.Digest] {
				continue
			}
			added[e.Digest] = true
			d := e.Digest
			hw, ok := byDigest[d]
			if !ok {
				return restoreResp{}, &target.Error{Class: target.Integrity, Op: "remote",
					Err: fmt.Errorf("server asked for unknown chunk %x", d[:8])}
			}
			data, err := gobEncode(hw)
			if err != nil {
				return restoreResp{}, err
			}
			sent += uint64(len(data))
			push.Chunks = append(push.Chunks, wireChunk{Digest: d, Data: data})
		}
		payload, err = gobEncode(push)
		if err != nil {
			return restoreResp{}, err
		}
		body, err = c.roundTrip(kPush, payload)
		if err != nil {
			return restoreResp{}, err
		}
		c.wire.bytesSent.Add(sent)
		resp = restoreResp{}
		if err := gobDecode(body, &resp); err != nil {
			return restoreResp{}, &target.Error{Class: target.Transient, Op: "remote", Err: err}
		}
	}
	return resp, nil
}

// maxPushRounds bounds applyRemote's delta-upload loop against a
// pathological cache so small that uploads are evicted faster than
// the client can re-send them.
const maxPushRounds = 4

// applyLegacy pushes every chunk in its own frame, then applies — the
// v2-era full-transfer cost.
func (c *TargetClient) applyLegacy(entries []chunkRef, byDigest map[snapshot.Digest]*sim.HWState, mode byte) (restoreResp, error) {
	for _, e := range entries {
		data, err := gobEncode(byDigest[e.Digest])
		if err != nil {
			return restoreResp{}, err
		}
		payload, err := gobEncode(pushReq{Mode: mode, Chunks: []wireChunk{{Digest: e.Digest, Data: data}}})
		if err != nil {
			return restoreResp{}, err
		}
		if _, err := c.roundTrip(kPush, payload); err != nil {
			return restoreResp{}, err
		}
		c.wire.bytesSent.Add(uint64(len(data)))
	}
	payload, err := gobEncode(restoreReq{Mode: mode, Entries: entries})
	if err != nil {
		return restoreResp{}, err
	}
	body, err := c.roundTrip(kRestore, payload)
	if err != nil {
		return restoreResp{}, err
	}
	var resp restoreResp
	if err := gobDecode(body, &resp); err != nil {
		return restoreResp{}, &target.Error{Class: target.Transient, Op: "remote", Err: err}
	}
	return resp, nil
}

// Restore loads a full state into the remote hardware.
func (c *TargetClient) Restore(s target.State) error {
	resp, err := c.applyRemote(s, modeRestore)
	if err != nil {
		return err
	}
	if !resp.Applied {
		return &target.Error{Class: target.Integrity, Op: "remote",
			Err: errors.New("server did not apply restore")}
	}
	return nil
}

// RestoreDelta asks the server to serve the restore from its dirty
// tracking; (false, nil) means no incremental path existed and the
// caller falls back to Restore — which then moves zero bytes, since
// the negotiation just populated both chunk caches.
func (c *TargetClient) RestoreDelta(s target.State) (bool, error) {
	if c.Legacy {
		return false, nil
	}
	resp, err := c.applyRemote(s, modeDelta)
	if err != nil {
		return false, err
	}
	return resp.DidDelta, nil
}

// AdoptState rebases the remote target's power-on state (worker
// subtree adoption).
func (c *TargetClient) AdoptState(s target.State) error {
	resp, err := c.applyRemote(s, modeAdopt)
	if err != nil {
		return err
	}
	if !resp.Applied {
		return &target.Error{Class: target.Integrity, Op: "remote",
			Err: errors.New("server did not adopt state")}
	}
	return nil
}

// SpawnWorker clones the remote target server-side and connects a new
// client (over its own connection, so workers run concurrently) to
// the clone's session. Requires Dial.
func (c *TargetClient) SpawnWorker(name string, clock *vtime.Clock, stream int) (target.Interface, error) {
	if c.Dial == nil {
		return nil, &target.Error{Class: target.Fatal, Op: "remote",
			Err: errors.New("SpawnWorker requires a Dial function")}
	}
	payload, err := gobEncode(spawnReq{Name: name, Stream: stream})
	if err != nil {
		return nil, err
	}
	body, err := c.roundTrip(kSpawn, payload)
	if err != nil {
		return nil, err
	}
	var info helloInfo
	if err := gobDecode(body, &info); err != nil {
		return nil, &target.Error{Class: target.Transient, Op: "remote", Err: err}
	}
	conn, err := c.Dial()
	if err != nil {
		return nil, &target.Error{Class: target.Transient, Op: "remote",
			Err: fmt.Errorf("spawn dial: %w", err)}
	}
	if clock == nil {
		clock = &vtime.Clock{}
	}
	w := &TargetClient{
		conn:        conn,
		clock:       clock,
		Timeout:     c.Timeout,
		MaxRetries:  c.MaxRetries,
		Backoff:     c.Backoff,
		BackoffMax:  c.BackoffMax,
		Dial:        c.Dial,
		Legacy:      c.Legacy,
		MaxBatch:    c.MaxBatch,
		MaxInflight: c.MaxInflight,
		store:       c.store,
		chunks:      c.chunks,
		wire:        c.wire,
	}
	winfo, err := w.handshake(kAttach, info.Token)
	if err != nil {
		return nil, err
	}
	w.applyInfo(winfo)
	return w, nil
}
