package remote

import (
	"net"
	"sync"
	"testing"

	"hardsnap/internal/snapshot"
	"hardsnap/internal/vtime"
)

// v3PipeSrv is v3Pipe, but also hands back the server so tests can
// reach into its chunk cache.
func v3PipeSrv(t *testing.T) (*TargetClient, *Server) {
	t.Helper()
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.ServeConn(sConn)
	}()
	t.Cleanup(func() {
		cConn.Close()
		sConn.Close()
		wg.Wait()
	})
	c, err := Connect(cConn, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func dropChunk(srv *Server, d snapshot.Digest) bool {
	srv.cmu.Lock()
	defer srv.cmu.Unlock()
	ent, ok := srv.chunks[d]
	if !ok {
		return false
	}
	srv.chunkLRU.Remove(ent.elem)
	delete(srv.chunks, d)
	srv.evictions++
	return true
}

// TestChunkCapLRU exercises the server-side cache bound: shrinking
// the cap evicts least-recently-used chunks and the eviction counter
// reports it, and a subsequent restore still succeeds by re-uploading
// the evicted content.
func TestChunkCapLRU(t *testing.T) {
	c, srv := v3PipeSrv(t)
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, 0x5A); err != nil {
		t.Fatal(err)
	}
	st, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := srv.ChunkStats(); n != len(st) {
		t.Fatalf("server holds %d chunks after save, want %d", n, len(st))
	}

	srv.SetChunkCap(1)
	n, ev := srv.ChunkStats()
	if n != 1 {
		t.Fatalf("cap 1 left %d chunks resident", n)
	}
	if ev != uint64(len(st)-1) {
		t.Fatalf("evictions = %d, want %d", ev, len(st)-1)
	}

	// Dirty the target, then restore the saved state. The server
	// evicted most of it, so the client must re-upload — and with cap
	// 1 every push round is itself under eviction pressure; the
	// pinned-frame rule is what lets this converge.
	engineStep(t, c, 7)
	if err := c.Restore(st); err != nil {
		t.Fatalf("restore against capped cache: %v", err)
	}
	v, err := gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5A {
		t.Fatalf("gpio reg after restore = %#x, want 0x5a", v)
	}
}

// TestEvictionRacesNegotiation reproduces the digest-negotiation
// race: at kRestore time the server claims to hold a chunk, then
// evicts it (cache pressure from another session) before the client's
// kPush lands. The push response must re-list the evicted digest as
// missing and the client must re-upload it as a delta instead of
// failing the restore.
func TestEvictionRacesNegotiation(t *testing.T) {
	c, srv := v3PipeSrv(t)
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, 0xC3); err != nil {
		t.Fatal(err)
	}
	st, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	gpioDigest := snapshot.HWDigest(st["gpio0"])
	timerDigest := snapshot.HWDigest(st["timer0"])

	// Pre-race state: the server has already lost timer0 (so the
	// kRestore reply will list it missing and trigger a push), but
	// still claims gpio0.
	if !dropChunk(srv, timerDigest) {
		t.Fatal("timer0 chunk not resident after save")
	}

	// The race: the moment the first push arrives — after the server
	// told the client it holds gpio0 — gpio0 is evicted. One-shot, so
	// the second round converges.
	fired := false
	srv.testBeforePush = func() {
		if fired {
			return
		}
		fired = true
		if !dropChunk(srv, gpioDigest) {
			t.Error("gpio0 chunk not resident at push time")
		}
	}

	engineStep(t, c, 9)
	if err := c.Restore(st); err != nil {
		t.Fatalf("restore across mid-negotiation eviction: %v", err)
	}
	if !fired {
		t.Fatal("race window never opened: no push round happened")
	}

	v, err := gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xC3 {
		t.Fatalf("gpio reg after restore = %#x, want 0xc3", v)
	}
}
