package remote

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/target"
)

// servePair is pipePair but it also reports Serve's return value.
func servePair(t *testing.T, port bus.Port) (net.Conn, <-chan error) {
	t.Helper()
	cConn, sConn := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(sConn, port)
	}()
	t.Cleanup(func() {
		cConn.Close()
		sConn.Close()
	})
	return cConn, errc
}

// errPort fails every operation with a typed target error.
type errPort struct{ err error }

func (p *errPort) ReadReg(uint32) (uint32, error) { return 0, p.err }
func (p *errPort) WriteReg(uint32, uint32) error  { return p.err }
func (p *errPort) IRQLevel() (bool, error)        { return false, p.err }

func rawRequest(op byte, offset, value uint32) []byte {
	req := make([]byte, reqLen)
	req[0] = op
	binary.LittleEndian.PutUint32(req[1:5], offset)
	binary.LittleEndian.PutUint32(req[5:9], value)
	req[9] = crc8(req[:9])
	return req
}

func readResponse(t *testing.T, conn io.Reader) (byte, uint32) {
	t.Helper()
	var resp [respLen]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		t.Fatalf("read response: %v", err)
	}
	if crc8(resp[:respLen-1]) != resp[respLen-1] {
		t.Fatalf("response CRC mismatch")
	}
	return resp[0], binary.LittleEndian.Uint32(resp[1:5])
}

func TestServeUnknownOpcode(t *testing.T) {
	_, p := newGPIOTarget(t)
	conn, _ := servePair(t, p)

	if _, err := conn.Write(rawRequest(99, 0, 0)); err != nil {
		t.Fatal(err)
	}
	status, class := readResponse(t, conn)
	if status != statusErr {
		t.Fatalf("unknown opcode: status %d, want statusErr", status)
	}
	if target.ErrorClass(class) != target.Fatal {
		t.Fatalf("unknown opcode class %d, want fatal", class)
	}
	// The link survives a protocol error.
	if _, err := conn.Write(rawRequest(opPing, 0, pingMagic)); err != nil {
		t.Fatal(err)
	}
	if status, echo := readResponse(t, conn); status != statusOK || echo != pingMagic {
		t.Fatalf("ping after error: status %d echo %#x", status, echo)
	}
}

func TestServeBadRequestCRC(t *testing.T) {
	_, p := newGPIOTarget(t)
	conn, _ := servePair(t, p)

	req := rawRequest(opWrite, 0, 0xBEEF)
	req[5] ^= 0x40 // corrupt the payload, keep the stale CRC
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	if status, _ := readResponse(t, conn); status != statusBadFrame {
		t.Fatalf("corrupt request: status %d, want statusBadFrame", status)
	}
	// The corrupted write must not have been applied.
	if _, err := conn.Write(rawRequest(opRead, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if status, v := readResponse(t, conn); status != statusOK || v != 0 {
		t.Fatalf("read after rejected write: status %d value %#x", status, v)
	}
}

func TestServeTruncatedRequest(t *testing.T) {
	_, p := newGPIOTarget(t)
	conn, errc := servePair(t, p)

	// Half a frame, then a clean close: the server must report the
	// truncation instead of masking it as a clean shutdown.
	if _, err := conn.Write(rawRequest(opRead, 0, 0)[:4]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	err := <-errc
	if err == nil {
		t.Fatal("Serve must fail on a truncated request")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Serve error %q, want truncation", err)
	}
}

func TestServeCleanCloseReturnsNil(t *testing.T) {
	_, p := newGPIOTarget(t)
	conn, errc := servePair(t, p)

	if _, err := conn.Write(rawRequest(opPing, 0, pingMagic)); err != nil {
		t.Fatal(err)
	}
	readResponse(t, conn)
	conn.Close()
	if err := <-errc; err != nil {
		t.Fatalf("clean close: Serve returned %v", err)
	}
}

func TestStatusErrClassPropagation(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		check func(error) bool
	}{
		{"integrity", &target.Error{Class: target.Integrity, Op: "x", Err: io.ErrShortBuffer}, target.IsIntegrity},
		{"fatal", &target.Error{Class: target.Fatal, Op: "x", Err: io.ErrShortBuffer}, target.IsFatal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, _ := servePair(t, &errPort{err: tc.err})
			client := NewClient(conn)
			// Generous retries: fatal/integrity errors must not be
			// retried, only transient ones.
			client.MaxRetries = 5
			client.Backoff = time.Microsecond
			_, err := client.ReadReg(0)
			if err == nil {
				t.Fatal("errPort read must fail")
			}
			if !tc.check(err) {
				t.Fatalf("error %v lost its %s class", err, tc.name)
			}
			if client.Retries() != 0 {
				t.Fatalf("%d retries on a non-transient error", client.Retries())
			}
		})
	}
}

func TestClientRetriesTransientStatus(t *testing.T) {
	conn, _ := servePair(t, &errPort{
		err: &target.Error{Class: target.Transient, Op: "x", Err: io.ErrShortBuffer},
	})
	client := NewClient(conn)
	client.MaxRetries = 3
	client.Backoff = time.Microsecond
	_, err := client.ReadReg(0)
	if err == nil {
		t.Fatal("read must fail when every attempt is transient")
	}
	if !target.IsTransient(err) {
		t.Fatalf("exhausted retries lost transient class: %v", err)
	}
	if client.Retries() != 3 {
		t.Fatalf("retries %d, want 3", client.Retries())
	}
}

func TestClientTruncatedResponse(t *testing.T) {
	cConn, sConn := net.Pipe()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })
	go func() {
		var req [reqLen]byte
		if _, err := io.ReadFull(sConn, req[:]); err != nil {
			return
		}
		sConn.Write([]byte{statusOK, 0x12}) // 2 of 6 bytes
		sConn.Close()
	}()
	client := NewClient(cConn)
	_, err := client.ReadReg(0)
	if err == nil {
		t.Fatal("truncated response must fail")
	}
	if !target.IsTransient(err) {
		t.Fatalf("link failure should classify transient (retry-worthy): %v", err)
	}
}

func TestPingEchoMismatch(t *testing.T) {
	cConn, sConn := net.Pipe()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })
	go func() {
		var req [reqLen]byte
		if _, err := io.ReadFull(sConn, req[:]); err != nil {
			return
		}
		var resp [respLen]byte
		resp[0] = statusOK
		binary.LittleEndian.PutUint32(resp[1:5], 0xDEAD) // wrong echo
		resp[respLen-1] = crc8(resp[:respLen-1])
		sConn.Write(resp[:])
	}()
	client := NewClient(cConn)
	err := client.Ping()
	if err == nil {
		t.Fatal("ping with a wrong echo must fail")
	}
	if !target.IsTransient(err) {
		t.Fatalf("echo mismatch should classify transient: %v", err)
	}
}

func TestClientRetryUnderFaultyLink(t *testing.T) {
	tg, p := newGPIOTarget(t)
	cConn, sConn := net.Pipe()
	go func() { _ = Serve(sConn, &targetPort{Port: p, tg: tg}) }()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })

	faulty := target.NewFaultConn(cConn, target.FaultSchedule{
		Seed:        42,
		DropRate:    0.25,
		CorruptRate: 0.15,
	})
	client := NewClient(faulty)
	client.Timeout = 50 * time.Millisecond
	client.MaxRetries = 25
	client.Backoff = 100 * time.Microsecond
	client.BackoffMax = time.Millisecond

	const ops = 20
	for i := 0; i < ops; i++ {
		if err := client.WriteReg(0x00, uint32(i)); err != nil {
			t.Fatalf("write %d under faults: %v", i, err)
		}
		v, err := client.ReadReg(0x00)
		if err != nil {
			t.Fatalf("read %d under faults: %v", i, err)
		}
		if v != uint32(i) {
			t.Fatalf("readback %d got %#x", i, v)
		}
	}
	r := client.Retries()
	if r == 0 {
		t.Fatal("fault schedule injected nothing; retries stayed 0")
	}
	if r > ops*2*25 {
		t.Fatalf("retries %d exceed the per-transaction bound", r)
	}
	t.Logf("%d transactions, %d retries", ops*2, r)
}

func TestClientRedial(t *testing.T) {
	tg, p := newGPIOTarget(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ListenAndServe(ln, &targetPort{Port: p, tg: tg})
	}()

	dial := func() (io.ReadWriter, error) {
		return net.Dial("tcp", ln.Addr().String())
	}
	first, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(first)
	client.Timeout = time.Second
	client.MaxRetries = 5
	client.Backoff = time.Millisecond
	client.Redial = dial

	if err := client.WriteReg(0x00, 0xA5); err != nil {
		t.Fatal(err)
	}
	// Sever the link under the client; the next transaction must
	// reconnect transparently.
	first.(net.Conn).Close()
	v, err := client.ReadReg(0x00)
	if err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}
	if v != 0xA5 {
		t.Fatalf("state lost across reconnect: %#x", v)
	}
	if client.Retries() == 0 {
		t.Fatal("reconnect should have counted a retry")
	}
	client.conn.(net.Conn).Close()
	ln.Close()
	<-done
}

func TestListenAndServeSurfacesConnErrors(t *testing.T) {
	_, p := newGPIOTarget(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- ListenAndServe(ln, p) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(rawRequest(opRead, 0, 0)[:3]); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Give the serve loop a moment to observe the truncation, then
	// shut the listener down.
	time.Sleep(50 * time.Millisecond)
	ln.Close()
	got := <-errc
	if got == nil {
		t.Fatal("ListenAndServe swallowed the connection error")
	}
	if !strings.Contains(got.Error(), "truncated") {
		t.Fatalf("ListenAndServe error %q, want truncation", got)
	}
}
