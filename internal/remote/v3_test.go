package remote

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

func newV3Target(t *testing.T) *target.Target {
	t.Helper()
	tg, err := target.NewSimulator("remote-sim", &vtime.Clock{}, []target.PeriphConfig{
		{Name: "gpio0", Periph: "gpio"},
		{Name: "timer0", Periph: "timer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

// v3Pipe hosts tg behind a v3 server on an in-process pipe and
// connects a client.
func v3Pipe(t *testing.T, tg *target.Target) *TargetClient {
	t.Helper()
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.ServeConn(sConn)
	}()
	t.Cleanup(func() {
		cConn.Close()
		sConn.Close()
		wg.Wait()
	})
	c, err := Connect(cConn, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// v3TCP hosts tg behind a v3 server on localhost TCP; the returned
// dial function opens extra connections (worker spawns, redials).
func v3TCP(t *testing.T, tg *target.Target) (*TargetClient, func() (net.Conn, error)) {
	t.Helper()
	srv := NewServer(tg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ListenAndServe(ln)
	}()
	dial := func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) }
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conn.Close()
		ln.Close()
		<-done
	})
	c, err := Connect(conn, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	c.Dial = dial
	return c, dial
}

// engineStep emulates one scheduling step's hardware traffic: bus
// writes, a clock advance, an IRQ sweep and a violation check.
func engineStep(t *testing.T, c *TargetClient, i uint32) {
	t.Helper()
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	timer, err := c.Port("timer0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, i); err != nil {
		t.Fatal(err)
	}
	if err := timer.WriteReg(0x00, i+1); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	if _, err := gpio.IRQLevel(); err != nil {
		t.Fatal(err)
	}
	if _, err := timer.IRQLevel(); err != nil {
		t.Fatal(err)
	}
	c.TakeViolations()
}

func TestV3BatchCoalescing(t *testing.T) {
	tg := newV3Target(t)
	c := v3Pipe(t, tg)
	base := c.WireStats().Frames // hello

	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	// Writes and the advance queue locally...
	for i := uint32(0); i < 8; i++ {
		if err := gpio.WriteReg(0x00, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Advance(5); err != nil {
		t.Fatal(err)
	}
	if got := c.WireStats().Frames - base; got != 0 {
		t.Fatalf("queued ops sent %d frames before flush", got)
	}
	// ...and the read coalesces into the single flushed frame.
	v, err := gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("readback %#x, want 7", v)
	}
	if got := c.WireStats().Frames - base; got != 1 {
		t.Fatalf("write burst + advance + read cost %d frames, want 1", got)
	}
	// Mirrored telemetry answers the engine's bookkeeping for free.
	preFrames := c.WireStats().Frames
	if _, err := gpio.IRQLevel(); err != nil {
		t.Fatal(err)
	}
	c.Generation()
	c.AnchorSeq()
	if vs := c.TakeViolations(); vs != nil {
		t.Fatalf("unexpected violations %v", vs)
	}
	if got := c.WireStats().Frames - preFrames; got != 0 {
		t.Fatalf("mirrored reads cost %d frames, want 0", got)
	}
	// The mirrors agree with the server-side truth.
	if c.Generation() != tg.Generation() {
		t.Fatalf("generation mirror %d != %d", c.Generation(), tg.Generation())
	}
	if c.Clock().Now() != tg.Clock().Now() {
		t.Fatalf("clock mirror %v != %v", c.Clock().Now(), tg.Clock().Now())
	}
	if cyc := tg.Stats().Cycles; cyc != 5 {
		t.Fatalf("advance reached target with %d cycles, want 5", cyc)
	}
}

func TestV3StepFrameBudgetVsLegacy(t *testing.T) {
	const steps = 20
	run := func(legacy bool) uint64 {
		tg := newV3Target(t)
		c := v3Pipe(t, tg)
		c.Legacy = legacy
		base := c.WireStats().Frames
		for i := 0; i < steps; i++ {
			engineStep(t, c, uint32(i))
		}
		return c.WireStats().Frames - base
	}
	v3 := run(false)
	legacy := run(true)
	if v3 > steps {
		t.Fatalf("v3 used %d frames for %d steps, want ≤ 1/step", v3, steps)
	}
	if legacy < 5*v3 {
		t.Fatalf("legacy %d frames vs v3 %d: expected ≥5x reduction", legacy, v3)
	}
	t.Logf("frames for %d steps: legacy=%d v3=%d (%.1fx)", steps, legacy, v3, float64(legacy)/float64(v3))
}

func TestV3SaveRestoreDigestNegotiation(t *testing.T) {
	tg := newV3Target(t)
	c := v3Pipe(t, tg)
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}

	// First save: every chunk is new on the client side.
	st1, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	got1 := c.WireStats()
	if got1.StateBytesReceived == 0 {
		t.Fatal("first save should transfer state bytes")
	}

	// Second save with no intervening mutation: the generation skip
	// lives in the snapshot manager, but even a forced wire save moves
	// zero bytes — every digest is already cached.
	st2, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	got2 := c.WireStats()
	if d := got2.StateBytesReceived - got1.StateBytesReceived; d != 0 {
		t.Fatalf("clean re-save transferred %d bytes, want 0", d)
	}
	if got2.ChunksSkipped <= got1.ChunksSkipped {
		t.Fatal("clean re-save should count skipped chunks")
	}
	if snapshot.DigestRecord(&snapshot.Record{HW: st1}) != snapshot.DigestRecord(&snapshot.Record{HW: st2}) {
		t.Fatal("clean re-save produced different content")
	}

	// Dirty one peripheral: only its chunk crosses the wire.
	if err := gpio.WriteReg(0x00, 0xBB); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	pre := c.WireStats()
	st3, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	post := c.WireStats()
	if post.StateBytesReceived == pre.StateBytesReceived {
		t.Fatal("dirty save should transfer the dirty chunk")
	}
	if skipped := post.ChunksSkipped - pre.ChunksSkipped; skipped != 1 {
		t.Fatalf("dirty save skipped %d chunks, want 1 (clean timer0)", skipped)
	}

	// Restore of previously saved content: the server holds every
	// chunk, so the digest offer alone settles it — zero state bytes.
	pre = c.WireStats()
	if err := c.Restore(st1); err != nil {
		t.Fatal(err)
	}
	post = c.WireStats()
	if d := post.StateBytesSent - pre.StateBytesSent; d != 0 {
		t.Fatalf("restore of server-known state sent %d bytes, want 0", d)
	}
	v, err := gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xAA {
		t.Fatalf("restored readback %#x, want 0xAA", v)
	}
	_ = st3
}

func TestV3RestoreDelta(t *testing.T) {
	tg := newV3Target(t)
	c := v3Pipe(t, tg)
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, 0x11); err != nil {
		t.Fatal(err)
	}
	st, err := c.Save() // anchors the server-side dirty tracking
	if err != nil {
		t.Fatal(err)
	}
	anchor := c.AnchorSeq()
	if err := gpio.WriteReg(0x00, 0x22); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	if c.AnchorSeq() != anchor {
		t.Fatal("plain writes must not move the anchor")
	}
	pre := c.WireStats()
	did, err := c.RestoreDelta(st)
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("delta restore against its own anchor should succeed")
	}
	if d := c.WireStats().StateBytesSent - pre.StateBytesSent; d != 0 {
		t.Fatalf("delta restore of negotiated content sent %d state bytes, want 0", d)
	}
	v, err := gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x11 {
		t.Fatalf("delta-restored readback %#x, want 0x11", v)
	}
	if tg.Stats().DeltaRestores == 0 {
		t.Fatal("server target did not use the incremental path")
	}
}

func TestV3LegacyDisablesDeltaAndDedup(t *testing.T) {
	tg := newV3Target(t)
	c := v3Pipe(t, tg)
	c.Legacy = true
	st, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.WireStats().StateBytesReceived; got == 0 {
		t.Fatal("legacy save must transfer every chunk")
	}
	if did, err := c.RestoreDelta(st); err != nil || did {
		t.Fatalf("legacy RestoreDelta = (%v, %v), want (false, nil)", did, err)
	}
	pre := c.WireStats()
	if err := c.Restore(st); err != nil {
		t.Fatal(err)
	}
	if d := c.WireStats().StateBytesSent - pre.StateBytesSent; d == 0 {
		t.Fatal("legacy restore must re-send every chunk")
	}
	g1 := c.Generation()
	if g2 := c.Generation(); g2 == g1 {
		t.Fatal("legacy generation must move every call (no skip proofs)")
	}
	_ = tg
}

func TestV3SpawnWorkerIsolation(t *testing.T) {
	tg := newV3Target(t)
	c, _ := v3TCP(t, tg)
	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, 0x5A); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	wi, err := c.SpawnWorker("remote-sim-w1", &vtime.Clock{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := wi.(*TargetClient)
	if w.Name() != "remote-sim-w1" {
		t.Fatalf("worker name %q", w.Name())
	}
	wgpio, err := w.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	// A spawned clone comes up in power-on state, exactly like a
	// local Spawn...
	v, err := wgpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("spawned worker not at power-on state: %#x", v)
	}
	// ...and is seeded with the parent's live state via AdoptState,
	// which crosses the wire as digests only (the chunks moved during
	// the parent's Save and the caches are shared).
	st, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	pre := c.WireStats()
	if err := w.AdoptState(st); err != nil {
		t.Fatal(err)
	}
	if d := c.WireStats().StateBytesSent - pre.StateBytesSent; d != 0 {
		t.Fatalf("adopt of negotiated state sent %d bytes, want 0", d)
	}
	v, err = wgpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5A {
		t.Fatalf("worker adopted %#x, want 0x5A", v)
	}
	// ...but mutates independently.
	if err := wgpio.WriteReg(0x00, 0xA5); err != nil {
		t.Fatal(err)
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	v, err = gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5A {
		t.Fatalf("worker write leaked into parent: %#x", v)
	}
}

func TestV3PipeliningHidesLatency(t *testing.T) {
	const (
		frames  = 12
		oneWay  = 2 * time.Millisecond
		perStep = 4 // ops per frame with MaxBatch pinned below
	)
	run := func(inflight int) time.Duration {
		tg := newV3Target(t)
		srv := NewServer(tg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.ListenAndServe(ln)
		}()
		defer func() { ln.Close(); <-done }()
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn := NewLatencyConn(raw, oneWay)
		defer conn.Close()
		c, err := Connect(conn, &vtime.Clock{})
		if err != nil {
			t.Fatal(err)
		}
		c.MaxBatch = perStep
		c.MaxInflight = inflight
		gpio, err := c.Port("gpio0")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < frames*perStep; i++ {
			if err := gpio.WriteReg(0x00, uint32(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.flush(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	stopAndWait := run(1)
	pipelined := run(8)
	if pipelined >= stopAndWait {
		t.Fatalf("pipelining did not help: inflight=8 took %v, inflight=1 took %v", pipelined, stopAndWait)
	}
	t.Logf("%d frames over a %v one-way link: stop-and-wait %v, pipelined %v", frames, oneWay, stopAndWait, pipelined)
}

// corruptNthConn flips a payload byte of the nth written frame.
type corruptNthConn struct {
	net.Conn
	mu sync.Mutex
	n  int
	i  int
}

func (c *corruptNthConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.i++
	hit := c.i == c.n
	c.mu.Unlock()
	if hit && len(p) > v3HdrLen {
		q := append([]byte(nil), p...)
		q[v3HdrLen] ^= 0x80 // payload byte: header framing survives
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

// dropNthConn swallows the nth written frame entirely.
type dropNthConn struct {
	net.Conn
	mu sync.Mutex
	n  int
	i  int
}

func (c *dropNthConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.i++
	hit := c.i == c.n
	c.mu.Unlock()
	if hit {
		return len(p), nil
	}
	return c.Conn.Write(p)
}

// TestV3CorruptedBatchRetransmittedOnce corrupts a multi-op batch
// frame in flight. The server must reject it as a unit (vstatusBadFrame,
// nothing applied), and the client must retransmit it exactly once as
// a unit — the advance it carries lands exactly once on the target
// clock.
func TestV3CorruptedBatchRetransmittedOnce(t *testing.T) {
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	go func() { _ = srv.ServeConn(sConn) }()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })

	// Frame 1 is the hello; frame 2 is the batch under test.
	c, err := Connect(&corruptNthConn{Conn: cConn, n: 2}, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	c.MaxRetries = 3
	c.Backoff = 100 * time.Microsecond

	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, 0xC3); err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x04, 0x3C); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(5); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatalf("flush through corrupted frame: %v", err)
	}
	if r := c.WireStats().Retransmits; r != 1 {
		t.Fatalf("retransmits = %d, want exactly 1", r)
	}
	// Applied exactly once, never partially: the advance is the
	// non-idempotent witness.
	if cyc := tg.Stats().Cycles; cyc != 5 {
		t.Fatalf("advance applied %d cycles, want exactly 5", cyc)
	}
	v, err := gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xC3 {
		t.Fatalf("readback %#x after retransmit", v)
	}
}

// TestV3DroppedBatchRetransmittedOnce drops a batch frame on the
// floor; the per-transaction deadline detects the loss and the window
// retransmits once, on the same connection.
func TestV3DroppedBatchRetransmittedOnce(t *testing.T) {
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	go func() { _ = srv.ServeConn(sConn) }()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })

	c, err := Connect(&dropNthConn{Conn: cConn, n: 2}, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 50 * time.Millisecond
	c.MaxRetries = 3
	c.Backoff = 100 * time.Microsecond

	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := gpio.WriteReg(0x00, 0x77); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(3); err != nil {
		t.Fatal(err)
	}
	if err := c.flush(); err != nil {
		t.Fatalf("flush through dropped frame: %v", err)
	}
	if r := c.WireStats().Retransmits; r != 1 {
		t.Fatalf("retransmits = %d, want exactly 1", r)
	}
	if cyc := tg.Stats().Cycles; cyc != 3 {
		t.Fatalf("advance applied %d cycles, want exactly 3", cyc)
	}
}

// TestV3UnderFaultyLink runs the full engine-step pattern through a
// FaultConn that drops and corrupts whole frames, with redial armed.
func TestV3UnderFaultyLink(t *testing.T) {
	tg := newV3Target(t)
	srv := NewServer(tg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ListenAndServe(ln)
	}()
	t.Cleanup(func() { ln.Close(); <-done })

	seed := int64(7)
	dial := func() (net.Conn, error) {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		seed++
		return target.NewFaultConn(raw, target.FaultSchedule{
			Seed:        seed,
			DropRate:    0.10,
			CorruptRate: 0.05,
		}), nil
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Connect(conn, &vtime.Clock{})
	if err != nil {
		// The very first hello can be eaten by the schedule; retry on
		// a fresh conn.
		conn, err = dial()
		if err != nil {
			t.Fatal(err)
		}
		c, err = Connect(conn, &vtime.Clock{})
		if err != nil {
			t.Fatal(err)
		}
	}
	c.Dial = dial
	c.Timeout = 100 * time.Millisecond
	c.MaxRetries = 25
	c.Backoff = 200 * time.Microsecond
	c.BackoffMax = 2 * time.Millisecond

	gpio, err := c.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	const steps = 30
	for i := 0; i < steps; i++ {
		if err := gpio.WriteReg(0x00, uint32(i)); err != nil {
			t.Fatalf("write %d under faults: %v", i, err)
		}
		if err := c.Advance(1); err != nil {
			t.Fatalf("advance %d under faults: %v", i, err)
		}
		v, err := gpio.ReadReg(0x00)
		if err != nil {
			t.Fatalf("read %d under faults: %v", i, err)
		}
		if v != uint32(i) {
			t.Fatalf("step %d readback %#x", i, v)
		}
	}
	// Exactly-once semantics survive the chaos.
	if cyc := tg.Stats().Cycles; cyc != steps {
		t.Fatalf("cycles %d, want %d (duplicated or lost advances)", cyc, steps)
	}
	t.Logf("%d steps, %d frames, %d retransmits", steps, c.WireStats().Frames, c.WireStats().Retransmits)
}

func TestServeConnV3UnknownKindBeforeHello(t *testing.T) {
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(sConn) }()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })

	if err := writeFrame(cConn, 0x1E, 1, nil); err != nil {
		t.Fatal(err)
	}
	err := <-errc
	if err == nil {
		t.Fatal("sequenced frame before hello must error")
	}
	if !strings.Contains(err.Error(), "before hello") {
		t.Fatalf("error %q, want before-hello", err)
	}
}

func TestServeConnV3UnknownKindAfterHello(t *testing.T) {
	tg := newV3Target(t)
	c := v3Pipe(t, tg)
	// An unknown sequenced kind is a typed fatal error, and the
	// session survives it.
	f, err := c.sendSeq(0x1E, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for !f.done {
		if err := c.drainOne(); err != nil {
			t.Fatal(err)
		}
	}
	if f.err == nil {
		t.Fatal("unknown kind must produce an error response")
	}
	if !target.IsFatal(f.err) {
		t.Fatalf("unknown kind error %v, want fatal class", f.err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("link dead after unknown kind: %v", err)
	}
}

func TestServeConnV3TruncatedFrame(t *testing.T) {
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(sConn) }()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })

	// A valid header announcing a payload, then a hard close.
	hdr := make([]byte, v3HdrLen)
	hdr[0] = kBatch
	hdr[5] = 64 // length
	hdr[9] = crc8(hdr[:9])
	if _, err := cConn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	cConn.Close()
	err := <-errc
	if err == nil {
		t.Fatal("truncated v3 frame must error, not masquerade as clean close")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error %q, want truncation", err)
	}
}

func TestServeConnV3EOFBetweenFramesIsClean(t *testing.T) {
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(sConn) }()

	c, err := Connect(cConn, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	cConn.Close()
	if err := <-errc; err != nil {
		t.Fatalf("clean close between frames: ServeConn returned %v", err)
	}
}

func TestServeConnV3HeaderCorruptionDesyncs(t *testing.T) {
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(sConn) }()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })

	// Establish a v3 session first: before the hello, a bad header is
	// indistinguishable from a corrupted v2 request and is answered
	// with a v2 bad-frame status instead of killing the link.
	done := make(chan error, 1)
	go func() {
		if _, err := Connect(cConn, &vtime.Clock{}); err != nil {
			done <- err
			return
		}
		hdr := make([]byte, v3HdrLen)
		hdr[0] = kBatch
		hdr[9] = crc8(hdr[:9]) ^ 0xFF // bad header CRC
		_, err := cConn.Write(hdr)
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	err := <-errc
	if err == nil {
		t.Fatal("header corruption must kill the connection")
	}
	if !strings.Contains(err.Error(), "header") {
		t.Fatalf("error %q, want header corruption", err)
	}
}

func TestServeConnV3PreHelloHeaderCorruptionAnswersV2(t *testing.T) {
	// Before any v3 traffic the 10 bytes of a corrupted header may
	// just as well be a corrupted v2 request; the server must answer
	// statusBadFrame (v2) and keep the connection alive.
	tg := newV3Target(t)
	cConn, sConn := net.Pipe()
	srv := NewServer(tg)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(sConn) }()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })

	go func() {
		hdr := make([]byte, v3HdrLen)
		hdr[0] = kBatch // >= v3Min, so it parses as a v3 header
		hdr[9] = crc8(hdr[:9]) ^ 0xFF
		if _, err := cConn.Write(hdr); err != nil {
			t.Error(err)
		}
	}()
	var resp [respLen]byte
	if _, err := io.ReadFull(cConn, resp[:]); err != nil {
		t.Fatal(err)
	}
	if resp[0] != statusBadFrame {
		t.Fatalf("status %d, want v2 statusBadFrame", resp[0])
	}
	// The link survives: a clean v3 hello must still work.
	done := make(chan error, 1)
	go func() {
		c, err := Connect(cConn, &vtime.Clock{})
		if err == nil {
			err = c.Ping()
		}
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	cConn.Close()
	if err := <-errc; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestV3LegacyV2ClientCompat(t *testing.T) {
	// A v2 client keeps working against a v3 server with a legacy
	// port armed, even interleaved with v3 sessions on other conns.
	tg := newV3Target(t)
	p, err := tg.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tg)
	srv.SetLegacyPort(&targetPort{Port: p, tg: tg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ListenAndServe(ln)
	}()
	t.Cleanup(func() { ln.Close(); <-done })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	v2 := NewClient(conn)
	if err := v2.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := v2.WriteReg(0x00, 0xEE); err != nil {
		t.Fatal(err)
	}
	v, err := v2.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xEE {
		t.Fatalf("v2-over-v3-server readback %#x", v)
	}

	conn3, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	c3, err := Connect(conn3, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	gpio, err := c3.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	v, err = gpio.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xEE {
		t.Fatalf("v3 session sees %#x, want the v2 client's write", v)
	}
}

func TestV3DeferredWriteErrorSurfacesAtFlush(t *testing.T) {
	tg := newV3Target(t)
	c := v3Pipe(t, tg)
	// A queued op that the target will reject (no such peripheral
	// index) reports no error at enqueue time...
	c.enqueue(batchOp{op: bWrite, periph: 99, offset: 0, value: 1})
	// ...and surfaces when the batch flushes, with its class intact.
	err := c.flush()
	if err == nil {
		t.Fatal("flush must surface the deferred write error")
	}
	if !target.IsFatal(err) {
		t.Fatalf("deferred error %v lost its fatal class", err)
	}
	// The failed batch never poisons later traffic.
	if err := c.Ping(); err != nil {
		t.Fatalf("link dead after deferred error: %v", err)
	}
}
