// Delta wire form: a Record serialization for the farm-wide snapshot
// fabric where peripheral chunks the receiver already holds are
// referenced by content digest instead of carried inline. A fetch of
// a bug snapshot whose UART/timer/AES states are already interned on
// the receiving side ships only the digests — the chunk-level
// generalization of the v3 remote protocol's digest negotiation.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sort"

	"hardsnap/internal/sim"
	"hardsnap/internal/target"
)

const deltaVersion = 2

// deltaWire is the gob payload of a delta frame. Periphs[i] is
// meaningful only when Inline[i]; omitted chunks are resolved on the
// receiving side through Digests[i]. (An explicit presence bitmap
// rather than nil pointers: gob refuses nil elements in a slice.)
type deltaWire struct {
	IRQEdges []bool
	Names    []string
	Digests  []Digest
	Inline   []bool
	Periphs  []sim.HWState
}

// EncodeDelta serializes rec, omitting peripheral chunks for which
// have returns true (nil have omits nothing — the result is then a
// self-contained delta frame). Framing matches Encode (magic, length,
// CRC) with a distinct version byte. It returns the frame plus the
// number of chunks inlined and omitted.
func EncodeDelta(rec *Record, have func(Digest) bool) (data []byte, inlined, omitted int, err error) {
	names := make([]string, 0, len(rec.HW))
	for name := range rec.HW {
		names = append(names, name)
	}
	sort.Strings(names)
	w := deltaWire{
		IRQEdges: rec.IRQEdges,
		Names:    names,
		Digests:  make([]Digest, len(names)),
		Inline:   make([]bool, len(names)),
		Periphs:  make([]sim.HWState, len(names)),
	}
	for i, name := range names {
		d := digestHW(rec.HW[name])
		w.Digests[i] = d
		if have != nil && have(d) {
			omitted++
			continue
		}
		w.Inline[i] = true
		w.Periphs[i] = *rec.HW[name]
		inlined++
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, 0, 0, fmt.Errorf("snapshot: encode delta: %w", err)
	}
	p := buf.Bytes()
	out := make([]byte, recHdrLen+len(p))
	binary.LittleEndian.PutUint32(out[0:4], recMagic)
	out[4] = deltaVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[9:13], crc32.ChecksumIEEE(p))
	copy(out[recHdrLen:], p)
	return out, inlined, omitted, nil
}

// DecodeDelta validates and deserializes a delta frame, resolving
// omitted chunks through resolve (typically Store.PeriphByDigest).
// Chunks that fail to resolve — the sender believed the receiver held
// them, but an eviction raced the negotiation — are returned in
// missing with a nil record, and the caller falls back to a full
// (nil-have) fetch. Inlined chunks are digest-verified before use.
func DecodeDelta(data []byte, resolve func(Digest) (*sim.HWState, bool)) (rec *Record, missing []Digest, err error) {
	if len(data) < recHdrLen {
		return nil, nil, integrityErr("truncated delta header: %d bytes", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != recMagic {
		return nil, nil, integrityErr("bad magic %#x", binary.LittleEndian.Uint32(data[0:4]))
	}
	if data[4] != deltaVersion {
		return nil, nil, integrityErr("unsupported delta version %d", data[4])
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	payload := data[recHdrLen:]
	if uint32(len(payload)) != n {
		return nil, nil, integrityErr("delta length mismatch: header says %d bytes, got %d", n, len(payload))
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[9:13]) {
		return nil, nil, integrityErr("delta checksum mismatch (%#x != %#x)",
			sum, binary.LittleEndian.Uint32(data[9:13]))
	}
	var w deltaWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return nil, nil, integrityErr("%v", err)
	}
	if len(w.Names) != len(w.Digests) || len(w.Names) != len(w.Periphs) ||
		len(w.Names) != len(w.Inline) {
		return nil, nil, integrityErr("delta frame shape mismatch")
	}
	hw := make(target.State, len(w.Names))
	for i, name := range w.Names {
		var chunk *sim.HWState
		if !w.Inline[i] {
			if resolve == nil {
				missing = append(missing, w.Digests[i])
				continue
			}
			got, ok := resolve(w.Digests[i])
			if !ok {
				missing = append(missing, w.Digests[i])
				continue
			}
			chunk = got
		} else {
			chunk = &w.Periphs[i]
			if digestHW(chunk) != w.Digests[i] {
				return nil, nil, integrityErr("delta chunk %q fails digest verification", name)
			}
		}
		hw[name] = chunk
	}
	if len(missing) > 0 {
		return nil, missing, nil
	}
	return &Record{HW: hw, IRQEdges: w.IRQEdges}, nil, nil
}
