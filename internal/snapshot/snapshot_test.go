package snapshot

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hardsnap/internal/sim"
	"hardsnap/internal/target"
)

func record(val uint64) Record {
	return Record{
		HW: target.State{
			"p0": &sim.HWState{
				Regs:   map[string]uint64{"r": val},
				Mems:   map[string][]uint64{"m": {1, 2, val}},
				Inputs: map[string]uint64{"clk": 0},
			},
		},
		IRQEdges: []bool{true, false},
	}
}

func TestPutGetRelease(t *testing.T) {
	s := NewStore()
	id := s.Put(record(42))
	if id == 0 {
		t.Fatal("id must be nonzero")
	}
	rec, ok := s.Get(id)
	if !ok || rec.HW["p0"].Regs["r"] != 42 {
		t.Fatalf("get: %v %v", rec, ok)
	}
	if s.Live() != 1 {
		t.Fatalf("live %d", s.Live())
	}
	s.Release(id)
	if s.Live() != 0 {
		t.Fatal("release failed")
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("released snapshot still readable")
	}
	s.Release(id) // idempotent
}

func TestZeroIDFastPaths(t *testing.T) {
	s := NewStore()
	// HWSnapshot == 0 is the engine's "no snapshot" sentinel: the
	// zero ID must never resolve, never error, never touch stats.
	if rec, ok := s.Get(0); ok || rec != nil {
		t.Fatalf("Get(0) = %v, %v; want nil, false", rec, ok)
	}
	s.Release(0) // must be a no-op, not a panic or a miscount
	if err := s.Update(0, record(1)); err == nil {
		t.Fatal("Update(0) must be an explicit error")
	}
	if _, ok := s.DigestOf(0); ok {
		t.Fatal("DigestOf(0) must miss")
	}
	st := s.Stats()
	if st.Gets != 0 || st.Releases != 0 || st.Puts != 0 {
		t.Fatalf("zero-id ops must not move stats: %+v", st)
	}
}

func TestUpdate(t *testing.T) {
	s := NewStore()
	id := s.Put(record(1))
	if err := s.Update(id, record(2)); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Get(id)
	if rec.HW["p0"].Regs["r"] != 2 {
		t.Fatal("update not visible")
	}
	if err := s.Update(999, record(3)); err == nil {
		t.Fatal("update of unknown id must fail")
	}
}

func TestUpdateSameContentIsDedup(t *testing.T) {
	s := NewStore()
	id := s.Put(record(7))
	if err := s.Update(id, record(7)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DedupHits == 0 {
		t.Fatal("identical update must count as a dedup hit")
	}
	if s.Entries() != 1 {
		t.Fatalf("entries %d, want 1", s.Entries())
	}
}

func TestPutIsolatesCallerMemory(t *testing.T) {
	s := NewStore()
	rec := record(5)
	id := s.Put(rec)
	// Mutating the caller's record must not affect the stored copy.
	rec.HW["p0"].Regs["r"] = 99
	rec.HW["p0"].Mems["m"][0] = 77
	rec.IRQEdges[0] = false
	got, _ := s.Get(id)
	if got.HW["p0"].Regs["r"] != 5 || got.HW["p0"].Mems["m"][0] != 1 || !got.IRQEdges[0] {
		t.Fatal("store aliases caller memory")
	}
}

func TestDedupSharesOneEntry(t *testing.T) {
	s := NewStore()
	a := s.Put(record(5))
	b := s.Put(record(5))
	if a == b {
		t.Fatal("ids must stay unique")
	}
	if s.Live() != 2 || s.Entries() != 1 {
		t.Fatalf("live %d entries %d, want 2/1", s.Live(), s.Entries())
	}
	ra, _ := s.Get(a)
	rb, _ := s.Get(b)
	if ra != rb {
		t.Fatal("identical content must share one canonical record")
	}
	if s.Stats().DedupHits == 0 {
		t.Fatal("dedup hit not counted")
	}
	// The entry must survive until the LAST reference goes.
	s.Release(a)
	if _, ok := s.Get(b); !ok {
		t.Fatal("entry died with refs outstanding")
	}
	s.Release(b)
	if s.Entries() != 0 {
		t.Fatal("entry leaked after last release")
	}
}

func TestPeripheralSharing(t *testing.T) {
	// Two records that differ in one peripheral must share the
	// unchanged peripheral's state structurally.
	mk := func(v uint64) Record {
		return Record{HW: target.State{
			"same": &sim.HWState{Regs: map[string]uint64{"r": 1}},
			"diff": &sim.HWState{Regs: map[string]uint64{"r": v}},
		}}
	}
	s := NewStore()
	a := s.Put(mk(1))
	b := s.Put(mk(2))
	ra, _ := s.Get(a)
	rb, _ := s.Get(b)
	if ra.HW["same"] != rb.HW["same"] {
		t.Fatal("unchanged peripheral state not shared")
	}
	if ra.HW["diff"] == rb.HW["diff"] {
		t.Fatal("changed peripheral state wrongly shared")
	}
	st := s.Stats()
	if st.PeriphShared == 0 {
		t.Fatalf("peripheral sharing not counted: %+v", st)
	}
}

func TestAdopt(t *testing.T) {
	s := NewStore()
	id := s.Put(record(3))
	d, ok := s.DigestOf(id)
	if !ok {
		t.Fatal("digest missing")
	}
	child, ok := s.Adopt(d)
	if !ok || child == id {
		t.Fatalf("adopt: %v %v", child, ok)
	}
	s.Release(id)
	rec, ok := s.Get(child)
	if !ok || rec.HW["p0"].Regs["r"] != 3 {
		t.Fatal("adopted reference lost content")
	}
	if _, ok := s.Adopt(Digest{}); ok {
		t.Fatal("adopt of unknown digest must fail")
	}
}

func TestUniqueIDs(t *testing.T) {
	s := NewStore()
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		id := s.Put(record(uint64(i)))
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
	if peak := s.Stats().PeakLive; peak != 100 {
		t.Fatalf("peak %d", peak)
	}
}

// genRecord builds a pseudo-random record from quick's raw values.
func genRecord(rnd *rand.Rand) Record {
	hw := target.State{}
	for p := 0; p < 1+rnd.Intn(3); p++ {
		name := string(rune('a' + p))
		st := &sim.HWState{
			Regs:   map[string]uint64{},
			Mems:   map[string][]uint64{},
			Inputs: map[string]uint64{},
		}
		for r := 0; r < rnd.Intn(4); r++ {
			st.Regs[string(rune('r'+r))] = rnd.Uint64()
		}
		for m := 0; m < rnd.Intn(2); m++ {
			words := make([]uint64, 1+rnd.Intn(4))
			for i := range words {
				words[i] = rnd.Uint64()
			}
			st.Mems[string(rune('m'+m))] = words
		}
		for i := 0; i < rnd.Intn(2); i++ {
			st.Inputs[string(rune('i'+i))] = rnd.Uint64()
		}
		hw[name] = st
	}
	edges := make([]bool, rnd.Intn(4))
	for i := range edges {
		edges[i] = rnd.Intn(2) == 1
	}
	return Record{HW: hw, IRQEdges: edges}
}

// Property: the digest is deterministic — recomputing it over a deep
// copy (different map iteration order, different allocations) always
// matches, and gob round-tripping preserves it.
func TestQuickDigestDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rec := genRecord(rand.New(rand.NewSource(seed)))
		d1 := DigestRecord(&rec)
		cp := Record{HW: rec.HW.Clone(), IRQEdges: append([]bool(nil), rec.IRQEdges...)}
		if DigestRecord(&cp) != d1 {
			return false
		}
		data, err := Encode(&rec)
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		return DigestRecord(back) == d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (dedup soundness): two records with equal digests stored
// through the store resolve to deep-equal content — adopting a digest
// can never hand back a different hardware state.
func TestQuickDedupSoundness(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := genRecord(rand.New(rand.NewSource(seedA)))
		b := genRecord(rand.New(rand.NewSource(seedB)))
		s := NewStore()
		ia, ib := s.Put(a), s.Put(b)
		da, _ := s.DigestOf(ia)
		db, _ := s.DigestOf(ib)
		ra, _ := s.Get(ia)
		rb, _ := s.Get(ib)
		if da == db {
			// Equal digests must mean bit-identical restored state.
			return reflect.DeepEqual(ra, rb)
		}
		// Distinct digests must mean distinct content.
		return !reflect.DeepEqual(ra, rb)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// And explicitly: the same seed twice MUST dedup.
	s := NewStore()
	rec := genRecord(rand.New(rand.NewSource(7)))
	ia := s.Put(rec)
	ib := s.Put(Record{HW: rec.HW.Clone(), IRQEdges: append([]bool(nil), rec.IRQEdges...)})
	ra, _ := s.Get(ia)
	rb, _ := s.Get(ib)
	if ra != rb {
		t.Fatal("equal content did not dedup to one entry")
	}
}

func TestEncodeDecode(t *testing.T) {
	rec := record(123)
	data, err := Encode(&rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.HW["p0"].Regs["r"] != 123 || back.HW["p0"].Mems["m"][2] != 123 {
		t.Fatalf("round trip: %+v", back.HW["p0"])
	}
	if len(back.IRQEdges) != 2 || !back.IRQEdges[0] {
		t.Fatalf("irq edges: %v", back.IRQEdges)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

// TestDecodeRejectsMutatedFrames flips a byte in every header class
// of the frame — magic, version, length, CRC and payload — and
// asserts each mutation yields a typed integrity error, never a
// decoded record.
func TestDecodeRejectsMutatedFrames(t *testing.T) {
	rec := record(7)
	data, err := Encode(&rec)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		off  int
	}{
		{"magic[0]", 0},
		{"magic[1]", 1},
		{"magic[2]", 2},
		{"magic[3]", 3},
		{"version", 4},
		{"length[0]", 5},
		{"length[1]", 6},
		{"length[2]", 7},
		{"length[3]", 8},
		{"crc[0]", 9},
		{"crc[1]", 10},
		{"crc[2]", 11},
		{"crc[3]", 12},
		{"payload[first]", recHdrLen},
		{"payload[mid]", recHdrLen + (len(data)-recHdrLen)/2},
		{"payload[last]", len(data) - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flip := append([]byte(nil), data...)
			flip[tc.off] ^= 0x10
			rec, err := Decode(flip)
			if rec != nil {
				t.Fatalf("mutated frame decoded: %+v", rec)
			}
			if !target.IsIntegrity(err) {
				t.Fatalf("flip at %d (%s): %v, want typed integrity error", tc.off, tc.name, err)
			}
		})
	}
	// Every possible payload byte, via quick: any single-bit payload
	// corruption is caught by the CRC.
	f := func(off uint16, bit uint8) bool {
		flip := append([]byte(nil), data...)
		i := recHdrLen + int(off)%(len(data)-recHdrLen)
		flip[i] ^= 1 << (bit % 8)
		_, err := Decode(flip)
		return target.IsIntegrity(err)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rec := record(7)
	data, err := Encode(&rec)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), data...)
	flip[len(flip)-1] ^= 0x04
	if _, err := Decode(flip); !target.IsIntegrity(err) {
		t.Fatalf("bit flip: %v, want integrity error", err)
	}

	if _, err := Decode(data[:len(data)-5]); !target.IsIntegrity(err) {
		t.Fatalf("truncation: %v, want integrity error", err)
	}

	if _, err := Decode(data[:3]); !target.IsIntegrity(err) {
		t.Fatalf("truncated header: %v, want integrity error", err)
	}

	ver := append([]byte(nil), data...)
	ver[4] = 0xEE
	if _, err := Decode(ver); !target.IsIntegrity(err) {
		t.Fatalf("bad version: %v, want integrity error", err)
	}
}
