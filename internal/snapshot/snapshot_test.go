package snapshot

import (
	"testing"

	"hardsnap/internal/sim"
	"hardsnap/internal/target"
)

func record(val uint64) Record {
	return Record{
		HW: target.State{
			"p0": &sim.HWState{
				Regs:   map[string]uint64{"r": val},
				Mems:   map[string][]uint64{"m": {1, 2, val}},
				Inputs: map[string]uint64{"clk": 0},
			},
		},
		IRQEdges: []bool{true, false},
	}
}

func TestPutGetRelease(t *testing.T) {
	s := NewStore()
	id := s.Put(record(42))
	if id == 0 {
		t.Fatal("id must be nonzero")
	}
	rec, ok := s.Get(id)
	if !ok || rec.HW["p0"].Regs["r"] != 42 {
		t.Fatalf("get: %v %v", rec, ok)
	}
	if s.Live() != 1 {
		t.Fatalf("live %d", s.Live())
	}
	s.Release(id)
	if s.Live() != 0 {
		t.Fatal("release failed")
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("released snapshot still readable")
	}
	s.Release(id) // idempotent
}

func TestUpdate(t *testing.T) {
	s := NewStore()
	id := s.Put(record(1))
	if err := s.Update(id, record(2)); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Get(id)
	if rec.HW["p0"].Regs["r"] != 2 {
		t.Fatal("update not visible")
	}
	if err := s.Update(999, record(3)); err == nil {
		t.Fatal("update of unknown id must fail")
	}
}

func TestIsolation(t *testing.T) {
	s := NewStore()
	rec := record(5)
	id := s.Put(rec)
	// Mutating the caller's record must not affect the stored copy.
	rec.HW["p0"].Regs["r"] = 99
	rec.IRQEdges[0] = false
	got, _ := s.Get(id)
	if got.HW["p0"].Regs["r"] != 5 || !got.IRQEdges[0] {
		t.Fatal("store aliases caller memory")
	}
	// Mutating a retrieved record must not affect the store.
	got.HW["p0"].Mems["m"][0] = 77
	again, _ := s.Get(id)
	if again.HW["p0"].Mems["m"][0] != 1 {
		t.Fatal("get aliases store memory")
	}
}

func TestUniqueIDs(t *testing.T) {
	s := NewStore()
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		id := s.Put(record(uint64(i)))
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
	if s.PeakLive != 100 {
		t.Fatalf("peak %d", s.PeakLive)
	}
}

func TestEncodeDecode(t *testing.T) {
	rec := record(123)
	data, err := Encode(&rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.HW["p0"].Regs["r"] != 123 || back.HW["p0"].Mems["m"][2] != 123 {
		t.Fatalf("round trip: %+v", back.HW["p0"])
	}
	if len(back.IRQEdges) != 2 || !back.IRQEdges[0] {
		t.Fatalf("irq edges: %v", back.IRQEdges)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rec := record(7)
	data, err := Encode(&rec)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), data...)
	flip[len(flip)-1] ^= 0x04
	if _, err := Decode(flip); !target.IsIntegrity(err) {
		t.Fatalf("bit flip: %v, want integrity error", err)
	}

	if _, err := Decode(data[:len(data)-5]); !target.IsIntegrity(err) {
		t.Fatalf("truncation: %v, want integrity error", err)
	}

	if _, err := Decode(data[:3]); !target.IsIntegrity(err) {
		t.Fatalf("truncated header: %v, want integrity error", err)
	}

	ver := append([]byte(nil), data...)
	ver[4] = 0xEE
	if _, err := Decode(ver); !target.IsIntegrity(err) {
		t.Fatalf("bad version: %v, want integrity error", err)
	}
}
