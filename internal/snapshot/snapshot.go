// Package snapshot implements HardSnap's snapshotting controller
// bookkeeping: a store of complete hardware states keyed by unique
// identifiers, with binary serialization for persistence (crash
// reports, offline root-cause analysis).
package snapshot

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"hardsnap/internal/target"
)

// ID names one stored snapshot; 0 is never issued.
type ID uint64

// Record is one stored hardware snapshot plus controller-side
// metadata that must travel with it.
type Record struct {
	HW target.State
	// IRQEdges preserves the bus edge-detector levels so restored
	// states do not see spurious interrupt edges.
	IRQEdges []bool
}

func (r *Record) clone() *Record {
	c := &Record{HW: r.HW.Clone()}
	c.IRQEdges = append([]bool(nil), r.IRQEdges...)
	return c
}

// Store holds snapshots. The zero value is not usable; call NewStore.
type Store struct {
	next  ID
	snaps map[ID]*Record

	// Stats
	Puts     uint64
	Gets     uint64
	Releases uint64
	PeakLive int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{snaps: make(map[ID]*Record)}
}

// Put stores a snapshot copy and returns its new ID.
func (s *Store) Put(rec Record) ID {
	s.next++
	s.snaps[s.next] = rec.clone()
	s.Puts++
	if len(s.snaps) > s.PeakLive {
		s.PeakLive = len(s.snaps)
	}
	return s.next
}

// Update overwrites an existing snapshot in place (UpdateState of
// Algorithm 1: the new snapshot overrides the one associated with the
// previous state).
func (s *Store) Update(id ID, rec Record) error {
	if _, ok := s.snaps[id]; !ok {
		return fmt.Errorf("snapshot: update of unknown id %d", id)
	}
	s.snaps[id] = rec.clone()
	s.Puts++
	return nil
}

// Get retrieves a snapshot copy.
func (s *Store) Get(id ID) (*Record, bool) {
	rec, ok := s.snaps[id]
	if !ok {
		return nil, false
	}
	s.Gets++
	return rec.clone(), true
}

// Release drops a snapshot (terminated state).
func (s *Store) Release(id ID) {
	if _, ok := s.snaps[id]; ok {
		delete(s.snaps, id)
		s.Releases++
	}
}

// Live returns the number of stored snapshots.
func (s *Store) Live() int { return len(s.snaps) }

// Encode serializes a record for persistence.
func Encode(rec *Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a record.
func Decode(data []byte) (*Record, error) {
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &rec, nil
}
