// Package snapshot implements HardSnap's snapshotting controller
// bookkeeping: a content-addressed store of complete hardware states,
// with binary serialization for persistence (crash reports, offline
// root-cause analysis).
//
// The store is copy-on-write all the way down. Each stored record is
// keyed by a digest of its serialized state: identical states — the
// common case right after a fork, and whenever the hardware was not
// touched between context switches — collapse to one immutable,
// reference-counted entry, so a fork costs a refcount increment
// instead of a second full deep copy. One level below, individual
// peripheral states are interned in a shared pool keyed by their own
// digests, so two records that differ in one peripheral share the
// others structurally (the "delta encoding" of the pipeline: only
// changed peripherals occupy new memory). Immutability is what makes
// the sharing safe and removes the defensive clone on Get: callers
// receive the canonical record and must not mutate it.
package snapshot

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"hardsnap/internal/sim"
	"hardsnap/internal/target"
)

// ID names one live reference to a stored snapshot; 0 is never issued
// (the engine uses 0 as its "no snapshot" sentinel).
type ID uint64

// Digest is the content address of a record: a SHA-256 over a
// deterministic serialization of the hardware state and IRQ edge
// levels. Equal digests imply bit-identical restored states.
type Digest [sha256.Size]byte

// Record is one stored hardware snapshot plus controller-side
// metadata that must travel with it.
type Record struct {
	HW target.State
	// IRQEdges preserves the bus edge-detector levels so restored
	// states do not see spurious interrupt edges.
	IRQEdges []bool
}

// DigestRecord computes the content address of a record. The
// serialization is deterministic (map keys visited in sorted order,
// lengths as separators), so the same state always hashes the same.
func DigestRecord(rec *Record) Digest {
	h := sha256.New()
	names := make([]string, 0, len(rec.HW))
	for name := range rec.HW {
		names = append(names, name)
	}
	sort.Strings(names)
	var scratch [8]byte
	for _, name := range names {
		writeStr(h, name, &scratch)
		d := digestHW(rec.HW[name])
		h.Write(d[:])
	}
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(rec.IRQEdges)))
	h.Write(scratch[:])
	for _, e := range rec.IRQEdges {
		if e {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// HWDigest content-addresses one peripheral's state: the per-chunk
// digest the store's intern pool is keyed by. The remote protocol's
// digest negotiation uses the same addresses, so a chunk the store
// already interned never crosses the wire again.
func HWDigest(hw *sim.HWState) Digest { return digestHW(hw) }

// digestHW content-addresses one peripheral's state.
func digestHW(hw *sim.HWState) Digest {
	h := sha256.New()
	var scratch [8]byte
	if hw == nil {
		hw = &sim.HWState{}
	}
	regs := sortedKeys(hw.Regs)
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(regs)))
	h.Write(scratch[:])
	for _, name := range regs {
		writeStr(h, name, &scratch)
		binary.LittleEndian.PutUint64(scratch[:], hw.Regs[name])
		h.Write(scratch[:])
	}
	mems := make([]string, 0, len(hw.Mems))
	for name := range hw.Mems {
		mems = append(mems, name)
	}
	sort.Strings(mems)
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(mems)))
	h.Write(scratch[:])
	for _, name := range mems {
		writeStr(h, name, &scratch)
		words := hw.Mems[name]
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(words)))
		h.Write(scratch[:])
		for _, w := range words {
			binary.LittleEndian.PutUint64(scratch[:], w)
			h.Write(scratch[:])
		}
	}
	inputs := sortedKeys(hw.Inputs)
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(inputs)))
	h.Write(scratch[:])
	for _, name := range inputs {
		writeStr(h, name, &scratch)
		binary.LittleEndian.PutUint64(scratch[:], hw.Inputs[name])
		h.Write(scratch[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

func sortedKeys(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func writeStr(h interface{ Write([]byte) (int, error) }, s string, scratch *[8]byte) {
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(s)))
	h.Write(scratch[:])
	h.Write([]byte(s))
}

// hwBytes approximates the in-memory footprint of one peripheral
// state (value words only; names are interned by Go anyway).
func hwBytes(hw *sim.HWState) uint64 {
	if hw == nil {
		return 0
	}
	n := uint64(len(hw.Regs)+len(hw.Inputs)) * 8
	for _, words := range hw.Mems {
		n += uint64(len(words)) * 8
	}
	return n
}

// poolEntry is one interned peripheral state, shared by every record
// that contains it.
type poolEntry struct {
	hw   *sim.HWState
	refs int
}

// entry is one immutable content-addressed record.
type entry struct {
	rec    *Record
	digest Digest
	// periphs are the pool keys of the record's peripheral states,
	// needed to drop pool references when the entry dies.
	periphs []Digest
	refs    int
	bytes   uint64
	// elem is the entry's position in the retained-tier LRU list while
	// refs == 0 and retention is enabled (nil when live or untracked).
	elem *list.Element
}

// Stats are cumulative store-side counters.
type Stats struct {
	// Puts counts Put/Update calls that attached content to an ID.
	Puts uint64
	// Gets counts successful Get calls.
	Gets uint64
	// Releases counts successful Release calls.
	Releases uint64
	// PeakLive is the high-water mark of live IDs.
	PeakLive int
	// DedupHits counts Put/Update/Adopt calls satisfied by an
	// existing identical record (refcount++ instead of a copy).
	DedupHits uint64
	// PeriphStored / PeriphShared count peripheral states that had to
	// be materialized vs. structurally shared from the intern pool.
	PeriphStored uint64
	PeriphShared uint64
	// BytesStored is the cumulative unique state bytes materialized;
	// BytesShared is the cumulative bytes avoided by whole-record
	// dedup and per-peripheral sharing. BytesShared/(Stored+Shared)
	// is the store's delta ratio.
	BytesStored uint64
	BytesShared uint64
	// BytesMaterialized is the cumulative bytes handed out by Get.
	BytesMaterialized uint64
	// Evictions / EvictedBytes count retained (refcount-zero) records
	// dropped by the retention tier's LRU when the byte cap binds;
	// live records are never evicted. Retained / RetainedBytes are the
	// tier's current occupancy.
	Evictions     uint64
	EvictedBytes  uint64
	Retained      int
	RetainedBytes uint64
}

// idStripeCount is the number of independently locked ID-table
// stripes. IDs are dense and monotonically allocated, so id %
// idStripeCount spreads concurrent workers evenly.
const idStripeCount = 16

type idStripe struct {
	mu  sync.RWMutex
	ids map[ID]Digest
}

// Store holds snapshots. The zero value is not usable; call NewStore.
//
// The store is safe for concurrent use by many exploration workers:
// the ID table is lock-striped, the content tables (entries + intern
// pool) sit behind one RWMutex, and all cumulative counters are
// atomics, so Put/Get/Release from sibling workers contend only when
// they touch the same stripe or mutate content. Digests are computed
// outside every lock. Ownership contract: each ID belongs to exactly
// one state (and therefore one worker at a time); concurrent
// Update/Release of the *same* ID is a caller bug, as it always was.
type Store struct {
	next    atomic.Uint64
	stripes [idStripeCount]idStripe

	// cmu guards entries, pool, and their refcounts (the two tables
	// are linked: an entry holds references into the pool).
	cmu     sync.RWMutex
	entries map[Digest]*entry
	pool    map[Digest]*poolEntry

	// Retention tier (all guarded by cmu): with retainMax > 0, records
	// whose last reference is released are kept — still
	// content-addressable by Adopt/RecordByDigest/PeriphByDigest — up
	// to retainMax bytes, evicted least-recently-retired first. This
	// is what lets a long-running farm node seed peers with any digest
	// it has *ever* held, while bounding its memory. retainMax == 0
	// (the default) deletes at refcount zero, the historical behavior.
	retainMax     uint64
	retainedBytes uint64
	lru           *list.List // of Digest, front = most recently retired
	evictions     uint64
	evictedBytes  uint64

	puts              atomic.Uint64
	gets              atomic.Uint64
	releases          atomic.Uint64
	dedupHits         atomic.Uint64
	periphStored      atomic.Uint64
	periphShared      atomic.Uint64
	bytesStored       atomic.Uint64
	bytesShared       atomic.Uint64
	bytesMaterialized atomic.Uint64
	live              atomic.Int64
	peakLive          atomic.Int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{
		entries: make(map[Digest]*entry),
		pool:    make(map[Digest]*poolEntry),
		lru:     list.New(),
	}
	for i := range s.stripes {
		s.stripes[i].ids = make(map[ID]Digest)
	}
	return s
}

// SetRetention sets the retention tier's byte cap: records whose last
// reference goes are retained (and stay addressable by digest) up to
// maxBytes total, then evicted least-recently-retired first. Live
// records never count against the cap and are never evicted. Setting
// 0 disables retention and flushes the tier. Safe to call at any
// point in a store's life.
func (s *Store) SetRetention(maxBytes uint64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.retainMax = maxBytes
	s.evictOverCap()
}

// ref takes a reference on an entry, pulling it out of the retained
// tier if its refcount was zero. Caller holds cmu for writing.
func (s *Store) ref(ent *entry) {
	if ent.refs == 0 && ent.elem != nil {
		s.lru.Remove(ent.elem)
		ent.elem = nil
		s.retainedBytes -= ent.bytes
	}
	ent.refs++
}

// retire handles an entry whose refcount reached zero: retained (LRU
// front) when retention is enabled, deleted otherwise. Caller holds
// cmu for writing.
func (s *Store) retire(ent *entry) {
	if s.retainMax == 0 {
		s.drop(ent)
		return
	}
	ent.elem = s.lru.PushFront(ent.digest)
	s.retainedBytes += ent.bytes
	s.evictOverCap()
}

// evictOverCap drops least-recently-retired entries until the tier
// fits the cap. Caller holds cmu for writing.
func (s *Store) evictOverCap() {
	for s.retainedBytes > s.retainMax {
		back := s.lru.Back()
		if back == nil {
			return
		}
		d := back.Value.(Digest)
		ent, ok := s.entries[d]
		if !ok {
			s.lru.Remove(back)
			continue
		}
		s.lru.Remove(back)
		ent.elem = nil
		s.retainedBytes -= ent.bytes
		s.drop(ent)
		s.evictions++
		s.evictedBytes += ent.bytes
	}
}

// drop removes a dead entry and its pool references for real. Caller
// holds cmu for writing.
func (s *Store) drop(ent *entry) {
	delete(s.entries, ent.digest)
	for _, pd := range ent.periphs {
		if pe, ok := s.pool[pd]; ok {
			pe.refs--
			if pe.refs <= 0 {
				delete(s.pool, pd)
			}
		}
	}
}

func (s *Store) stripe(id ID) *idStripe {
	return &s.stripes[uint64(id)%idStripeCount]
}

// bumpLive increments the live-reference count and maintains the
// high-water mark with a CAS loop.
func (s *Store) bumpLive() {
	l := s.live.Add(1)
	for {
		p := s.peakLive.Load()
		if l <= p || s.peakLive.CompareAndSwap(p, l) {
			return
		}
	}
}

// Put stores a snapshot and returns a new ID referencing it. If an
// identical record is already stored, the new ID shares it (refcount
// increment, no copy). The caller keeps ownership of rec; the store
// never aliases caller memory.
func (s *Store) Put(rec Record) ID {
	d := DigestRecord(&rec)
	s.cmu.Lock()
	s.attach(d, &rec)
	s.cmu.Unlock()
	id := ID(s.next.Add(1))
	st := s.stripe(id)
	st.mu.Lock()
	st.ids[id] = d
	st.mu.Unlock()
	s.puts.Add(1)
	s.bumpLive()
	return id
}

// Update re-points an existing ID at new content (UpdateState of
// Algorithm 1: the new snapshot overrides the one associated with the
// previous state). Updating the zero ID is an explicit error: 0 is
// the engine's "no snapshot" sentinel and never names stored content.
func (s *Store) Update(id ID, rec Record) error {
	if id == 0 {
		return fmt.Errorf("snapshot: update of the zero (no-snapshot) id")
	}
	d := DigestRecord(&rec)
	st := s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	old, ok := st.ids[id]
	if !ok {
		return fmt.Errorf("snapshot: update of unknown id %d", id)
	}
	if d == old {
		// Content unchanged: the whole update is a no-op.
		s.cmu.RLock()
		bytes := s.entries[old].bytes
		s.cmu.RUnlock()
		s.dedupHits.Add(1)
		s.bytesShared.Add(bytes)
		return nil
	}
	s.cmu.Lock()
	s.attach(d, &rec)
	s.detach(old)
	s.cmu.Unlock()
	st.ids[id] = d
	s.puts.Add(1)
	return nil
}

// UpdateToDigest re-points an existing ID at already-stored content,
// without supplying the state bytes: the caller proved (via a
// mutation generation) that the content at d is what the ID should
// hold. Returns false — caller must fall back to Update with real
// content — when id or d is unknown.
func (s *Store) UpdateToDigest(id ID, d Digest) bool {
	if id == 0 {
		return false
	}
	st := s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	old, ok := st.ids[id]
	if !ok {
		return false
	}
	s.cmu.Lock()
	ent, ok := s.entries[d]
	if !ok {
		s.cmu.Unlock()
		return false
	}
	bytes := ent.bytes
	same := old == d
	if !same {
		s.ref(ent)
		s.detach(old)
	}
	s.cmu.Unlock()
	s.dedupHits.Add(1)
	s.bytesShared.Add(bytes)
	if same {
		return true
	}
	st.ids[id] = d
	s.puts.Add(1)
	return true
}

// Get retrieves a snapshot. The returned record is the canonical
// stored entry, shared by every ID with the same content: callers
// MUST NOT mutate it. Get(0) is an explicit fast-path miss (0 is the
// "no snapshot" sentinel).
func (s *Store) Get(id ID) (*Record, bool) {
	if id == 0 {
		return nil, false
	}
	st := s.stripe(id)
	st.mu.RLock()
	d, ok := st.ids[id]
	st.mu.RUnlock()
	if !ok {
		return nil, false
	}
	// The entry cannot die between the two locks: this ID still holds
	// a reference, and the ID's owner is the only goroutine allowed to
	// Update/Release it.
	s.cmu.RLock()
	ent := s.entries[d]
	s.cmu.RUnlock()
	s.gets.Add(1)
	s.bytesMaterialized.Add(ent.bytes)
	return ent.rec, true
}

// Release drops one ID (terminated state); the underlying record dies
// when its last reference goes. Release(0) is an explicit no-op.
func (s *Store) Release(id ID) {
	if id == 0 {
		return
	}
	st := s.stripe(id)
	st.mu.Lock()
	d, ok := st.ids[id]
	if ok {
		delete(st.ids, id)
	}
	st.mu.Unlock()
	if !ok {
		return
	}
	s.cmu.Lock()
	s.detach(d)
	s.cmu.Unlock()
	s.releases.Add(1)
	s.live.Add(-1)
}

// Adopt returns a new ID referencing already-stored content, or false
// if no record with that digest is live. This is the fork fast path:
// a child state adopts the parent's snapshot for a refcount++.
func (s *Store) Adopt(d Digest) (ID, bool) {
	s.cmu.Lock()
	ent, ok := s.entries[d]
	if !ok {
		s.cmu.Unlock()
		return 0, false
	}
	s.ref(ent)
	bytes := ent.bytes
	s.cmu.Unlock()
	id := ID(s.next.Add(1))
	st := s.stripe(id)
	st.mu.Lock()
	st.ids[id] = d
	st.mu.Unlock()
	s.puts.Add(1)
	s.dedupHits.Add(1)
	s.bytesShared.Add(bytes)
	s.bumpLive()
	return id, true
}

// DigestOf returns the content address an ID currently points at.
func (s *Store) DigestOf(id ID) (Digest, bool) {
	if id == 0 {
		return Digest{}, false
	}
	st := s.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	d, ok := st.ids[id]
	return d, ok
}

// PeriphByDigest returns the interned peripheral state with the given
// content address (see HWDigest), if any record still references it.
// The state is shared: callers MUST NOT mutate it. The remote client
// uses this to satisfy digest-negotiated snapshot transfers from
// content the store already holds.
func (s *Store) PeriphByDigest(d Digest) (*sim.HWState, bool) {
	s.cmu.RLock()
	defer s.cmu.RUnlock()
	pe, ok := s.pool[d]
	if !ok {
		return nil, false
	}
	return pe.hw, true
}

// RecordByDigest returns the live record with the given content
// address, if any. The record is shared: callers MUST NOT mutate it.
func (s *Store) RecordByDigest(d Digest) (*Record, bool) {
	s.cmu.RLock()
	defer s.cmu.RUnlock()
	ent, ok := s.entries[d]
	if !ok {
		return nil, false
	}
	return ent.rec, true
}

// Live returns the number of live snapshot references.
func (s *Store) Live() int {
	return int(s.live.Load())
}

// Entries returns the number of distinct stored records (≤ Live when
// dedup collapsed references).
func (s *Store) Entries() int {
	s.cmu.RLock()
	defer s.cmu.RUnlock()
	return len(s.entries)
}

// Stats returns a copy of the cumulative counters.
func (s *Store) Stats() Stats {
	s.cmu.RLock()
	evictions := s.evictions
	evictedBytes := s.evictedBytes
	retained := s.lru.Len()
	retainedBytes := s.retainedBytes
	s.cmu.RUnlock()
	return Stats{
		Evictions:         evictions,
		EvictedBytes:      evictedBytes,
		Retained:          retained,
		RetainedBytes:     retainedBytes,
		Puts:              s.puts.Load(),
		Gets:              s.gets.Load(),
		Releases:          s.releases.Load(),
		PeakLive:          int(s.peakLive.Load()),
		DedupHits:         s.dedupHits.Load(),
		PeriphStored:      s.periphStored.Load(),
		PeriphShared:      s.periphShared.Load(),
		BytesStored:       s.bytesStored.Load(),
		BytesShared:       s.bytesShared.Load(),
		BytesMaterialized: s.bytesMaterialized.Load(),
	}
}

// attach resolves d to a live entry, creating one from rec (with
// per-peripheral interning) if needed, and takes a reference. Caller
// holds cmu for writing.
func (s *Store) attach(d Digest, rec *Record) {
	if ent, ok := s.entries[d]; ok {
		s.ref(ent)
		s.dedupHits.Add(1)
		s.bytesShared.Add(ent.bytes)
		return
	}
	names := make([]string, 0, len(rec.HW))
	for name := range rec.HW {
		names = append(names, name)
	}
	sort.Strings(names)
	hw := make(target.State, len(names))
	periphs := make([]Digest, 0, len(names))
	var total uint64
	for _, name := range names {
		pd := digestHW(rec.HW[name])
		pe, ok := s.pool[pd]
		if ok {
			pe.refs++
			s.periphShared.Add(1)
			s.bytesShared.Add(hwBytes(pe.hw))
		} else {
			pe = &poolEntry{hw: cloneHW(rec.HW[name]), refs: 1}
			s.pool[pd] = pe
			s.periphStored.Add(1)
			s.bytesStored.Add(hwBytes(pe.hw))
		}
		hw[name] = pe.hw
		periphs = append(periphs, pd)
		total += hwBytes(pe.hw)
	}
	s.entries[d] = &entry{
		rec:     &Record{HW: hw, IRQEdges: append([]bool(nil), rec.IRQEdges...)},
		digest:  d,
		periphs: periphs,
		refs:    1,
		bytes:   total,
	}
}

// detach drops one reference from the entry at d. When the last
// reference goes the entry is retained (retention tier enabled) or
// freed along with its pooled peripheral states. Caller holds cmu for
// writing.
func (s *Store) detach(d Digest) {
	ent, ok := s.entries[d]
	if !ok {
		return
	}
	ent.refs--
	if ent.refs > 0 {
		return
	}
	s.retire(ent)
}

func cloneHW(hw *sim.HWState) *sim.HWState {
	c := &sim.HWState{
		Regs:   make(map[string]uint64, len(hw.Regs)),
		Mems:   make(map[string][]uint64, len(hw.Mems)),
		Inputs: make(map[string]uint64, len(hw.Inputs)),
	}
	for k, v := range hw.Regs {
		c.Regs[k] = v
	}
	for k, v := range hw.Mems {
		c.Mems[k] = append([]uint64(nil), v...)
	}
	for k, v := range hw.Inputs {
		c.Inputs[k] = v
	}
	return c
}

// Serialized record framing: magic(4) version(1) length(4) crc32(4)
// payload. Persisted snapshots feed restores, so truncation and
// corruption must be detected before any bit reaches the hardware.
const (
	recMagic   = 0x48535352 // "HSSR"
	recVersion = 1
	recHdrLen  = 4 + 1 + 4 + 4
)

// Encode serializes a record for persistence with an integrity header
// (magic, version, payload length, CRC-32).
func Encode(rec *Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	p := buf.Bytes()
	out := make([]byte, recHdrLen+len(p))
	binary.LittleEndian.PutUint32(out[0:4], recMagic)
	out[4] = recVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[9:13], crc32.ChecksumIEEE(p))
	copy(out[recHdrLen:], p)
	return out, nil
}

func integrityErr(format string, args ...interface{}) error {
	return &target.Error{Class: target.Integrity, Op: "snapshot: decode",
		Err: fmt.Errorf(format, args...)}
}

// Decode validates and deserializes a record produced by Encode.
// Truncated or corrupted data is rejected with a typed integrity
// error rather than decoded into a wrong hardware state.
func Decode(data []byte) (*Record, error) {
	if len(data) < recHdrLen {
		return nil, integrityErr("truncated header: %d bytes", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != recMagic {
		return nil, integrityErr("bad magic %#x", binary.LittleEndian.Uint32(data[0:4]))
	}
	if data[4] != recVersion {
		return nil, integrityErr("unsupported version %d", data[4])
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	payload := data[recHdrLen:]
	if uint32(len(payload)) != n {
		return nil, integrityErr("length mismatch: header says %d bytes, got %d", n, len(payload))
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[9:13]) {
		return nil, integrityErr("checksum mismatch (%#x != %#x)",
			sum, binary.LittleEndian.Uint32(data[9:13]))
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, integrityErr("%v", err)
	}
	return &rec, nil
}
