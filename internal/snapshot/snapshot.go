// Package snapshot implements HardSnap's snapshotting controller
// bookkeeping: a store of complete hardware states keyed by unique
// identifiers, with binary serialization for persistence (crash
// reports, offline root-cause analysis).
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"hardsnap/internal/target"
)

// ID names one stored snapshot; 0 is never issued.
type ID uint64

// Record is one stored hardware snapshot plus controller-side
// metadata that must travel with it.
type Record struct {
	HW target.State
	// IRQEdges preserves the bus edge-detector levels so restored
	// states do not see spurious interrupt edges.
	IRQEdges []bool
}

func (r *Record) clone() *Record {
	c := &Record{HW: r.HW.Clone()}
	c.IRQEdges = append([]bool(nil), r.IRQEdges...)
	return c
}

// Store holds snapshots. The zero value is not usable; call NewStore.
type Store struct {
	next  ID
	snaps map[ID]*Record

	// Stats
	Puts     uint64
	Gets     uint64
	Releases uint64
	PeakLive int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{snaps: make(map[ID]*Record)}
}

// Put stores a snapshot copy and returns its new ID.
func (s *Store) Put(rec Record) ID {
	s.next++
	s.snaps[s.next] = rec.clone()
	s.Puts++
	if len(s.snaps) > s.PeakLive {
		s.PeakLive = len(s.snaps)
	}
	return s.next
}

// Update overwrites an existing snapshot in place (UpdateState of
// Algorithm 1: the new snapshot overrides the one associated with the
// previous state).
func (s *Store) Update(id ID, rec Record) error {
	if _, ok := s.snaps[id]; !ok {
		return fmt.Errorf("snapshot: update of unknown id %d", id)
	}
	s.snaps[id] = rec.clone()
	s.Puts++
	return nil
}

// Get retrieves a snapshot copy.
func (s *Store) Get(id ID) (*Record, bool) {
	rec, ok := s.snaps[id]
	if !ok {
		return nil, false
	}
	s.Gets++
	return rec.clone(), true
}

// Release drops a snapshot (terminated state).
func (s *Store) Release(id ID) {
	if _, ok := s.snaps[id]; ok {
		delete(s.snaps, id)
		s.Releases++
	}
}

// Live returns the number of stored snapshots.
func (s *Store) Live() int { return len(s.snaps) }

// Serialized record framing: magic(4) version(1) length(4) crc32(4)
// payload. Persisted snapshots feed restores, so truncation and
// corruption must be detected before any bit reaches the hardware.
const (
	recMagic   = 0x48535352 // "HSSR"
	recVersion = 1
	recHdrLen  = 4 + 1 + 4 + 4
)

// Encode serializes a record for persistence with an integrity header
// (magic, version, payload length, CRC-32).
func Encode(rec *Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	p := buf.Bytes()
	out := make([]byte, recHdrLen+len(p))
	binary.LittleEndian.PutUint32(out[0:4], recMagic)
	out[4] = recVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[9:13], crc32.ChecksumIEEE(p))
	copy(out[recHdrLen:], p)
	return out, nil
}

func integrityErr(format string, args ...interface{}) error {
	return &target.Error{Class: target.Integrity, Op: "snapshot: decode",
		Err: fmt.Errorf(format, args...)}
}

// Decode validates and deserializes a record produced by Encode.
// Truncated or corrupted data is rejected with a typed integrity
// error rather than decoded into a wrong hardware state.
func Decode(data []byte) (*Record, error) {
	if len(data) < recHdrLen {
		return nil, integrityErr("truncated header: %d bytes", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != recMagic {
		return nil, integrityErr("bad magic %#x", binary.LittleEndian.Uint32(data[0:4]))
	}
	if data[4] != recVersion {
		return nil, integrityErr("unsupported version %d", data[4])
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	payload := data[recHdrLen:]
	if uint32(len(payload)) != n {
		return nil, integrityErr("length mismatch: header says %d bytes, got %d", n, len(payload))
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[9:13]) {
		return nil, integrityErr("checksum mismatch (%#x != %#x)",
			sum, binary.LittleEndian.Uint32(data[9:13]))
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, integrityErr("%v", err)
	}
	return &rec, nil
}
