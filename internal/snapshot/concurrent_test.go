package snapshot

import (
	"sync"
	"testing"
)

// TestStoreConcurrentHammer exercises the striped-lock store from 8
// goroutines doing overlapping Put/Get/Update/Adopt/Release on a
// small digest universe (maximum dedup contention on the content
// tables). Run under -race via the Makefile race gate. Invariants
// checked at the end: every reference released, no leaked entries or
// pooled peripherals, and counters that balance.
func TestStoreConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		iterations = 300
		universe   = 7 // distinct record contents → constant digest collisions
	)
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var owned []ID
			for i := 0; i < iterations; i++ {
				v := uint64((g*31 + i) % universe)
				switch i % 5 {
				case 0, 1:
					owned = append(owned, s.Put(record(v)))
				case 2:
					if len(owned) > 0 {
						id := owned[i%len(owned)]
						rec, ok := s.Get(id)
						if !ok || rec == nil {
							t.Errorf("goroutine %d: lost snapshot %d", g, id)
							return
						}
						if err := s.Update(id, record(v)); err != nil {
							t.Errorf("goroutine %d: update: %v", g, err)
							return
						}
					}
				case 3:
					if len(owned) > 0 {
						id := owned[i%len(owned)]
						if d, ok := s.DigestOf(id); ok {
							if nid, ok := s.Adopt(d); ok {
								owned = append(owned, nid)
							}
						}
					}
				case 4:
					if len(owned) > 1 {
						id := owned[len(owned)-1]
						owned = owned[:len(owned)-1]
						s.Release(id)
					}
				}
			}
			for _, id := range owned {
				s.Release(id)
			}
		}(g)
	}
	wg.Wait()

	if live := s.Live(); live != 0 {
		t.Fatalf("leaked %d live references", live)
	}
	if n := s.Entries(); n != 0 {
		t.Fatalf("leaked %d entries", n)
	}
	if len(s.pool) != 0 {
		t.Fatalf("leaked %d pooled peripherals", len(s.pool))
	}
	st := s.Stats()
	if st.Puts == 0 || st.Gets == 0 || st.Releases == 0 || st.DedupHits == 0 {
		t.Fatalf("counters did not move: %+v", st)
	}
	if st.Releases > st.Puts {
		t.Fatalf("more releases (%d) than puts (%d)", st.Releases, st.Puts)
	}
	if st.PeakLive <= 1 || st.PeakLive > goroutines*iterations {
		t.Fatalf("implausible peak live %d", st.PeakLive)
	}
}

// TestStoreConcurrentSharedDigest adopts a single hot digest from many
// goroutines while others release their references, racing refcount
// increments against the last-reference teardown path.
func TestStoreConcurrentSharedDigest(t *testing.T) {
	s := NewStore()
	root := s.Put(record(99))
	d, ok := s.DigestOf(root)
	if !ok {
		t.Fatal("no digest for root")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if id, ok := s.Adopt(d); ok {
					if _, ok := s.Get(id); !ok {
						t.Error("adopted id must resolve")
						return
					}
					s.Release(id)
				}
			}
		}()
	}
	wg.Wait()
	// Root keeps the entry alive through it all.
	if _, ok := s.RecordByDigest(d); !ok {
		t.Fatal("root entry died while referenced")
	}
	s.Release(root)
	if s.Live() != 0 || s.Entries() != 0 {
		t.Fatalf("leak: live=%d entries=%d", s.Live(), s.Entries())
	}
}
