// Package buildinfo reports the module version and VCS revision every
// cmd/ binary prints for -version, read from the build info the Go
// toolchain embeds in the binary (no ldflags stamping required).
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// Version renders a one-line version string for the named binary:
// module version, VCS revision (short) and dirty marker when the
// binary was built from a modified tree. Binaries built without build
// info (unusual outside `go test`) report "devel".
func Version(binary string) string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return fmt.Sprintf("%s devel (no build info)", binary)
	}
	ver := info.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", binary, ver)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " (%s%s)", rev, dirty)
	}
	fmt.Fprintf(&b, " %s", info.GoVersion)
	return b.String()
}
