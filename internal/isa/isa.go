// Package isa defines HS32, the 32-bit RISC instruction set executed by
// HardSnap's virtual machine. HS32 stands in for the ARM firmware of the
// original INCEPTION-based prototype: it is a classic load/store ISA
// with memory-mapped I/O, precise interrupts and an environment-call
// instruction used by software testbenches (make-symbolic, assert,
// print, halt).
//
// Encoding (fixed 32-bit words, little-endian in memory):
//
//	[31:26] opcode
//	[25:22] rd
//	[21:18] rs1
//	[17:14] rs2
//	[13:0]  imm14 (sign-extended) — I-type, loads/stores, branches
//	[21:0]  imm22 (sign-extended) — J-type (JAL)
//
// Register r0 is hardwired to zero; writes to it are discarded.
package isa

import "fmt"

// NumRegs is the number of architectural registers.
const NumRegs = 16

// Conventional register roles used by the assembler and examples.
const (
	RegZero = 0  // always zero
	RegSP   = 14 // stack pointer
	RegRA   = 15 // return address
)

// Opcode identifies an HS32 instruction.
type Opcode uint8

// Instruction opcodes.
const (
	// R-type ALU: rd = rs1 op rs2.
	OpADD Opcode = iota + 1
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpMUL
	OpDIVU
	OpREMU
	OpSLT  // rd = (rs1 <s rs2)
	OpSLTU // rd = (rs1 <u rs2)

	// I-type ALU: rd = rs1 op simm14.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpSLTIU

	// LUI: rd = imm14 << 18 | (loads the *upper* bits). See EncodeLUI.
	OpLUI

	// Loads: rd = mem[rs1 + simm14].
	OpLW
	OpLH
	OpLHU
	OpLB
	OpLBU

	// Stores: mem[rs1 + simm14] = rs2.
	OpSW
	OpSH
	OpSB

	// Branches: if (rs1 cmp rs2) pc += simm14 (byte offset).
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL  // rd = pc+4; pc += simm22
	OpJALR // rd = pc+4; pc = (rs1 + simm14) &^ 3

	// System.
	OpECALL // environment call, imm14 selects the service
	OpMRET  // return from interrupt handler

	opMax
)

var opcodeNames = [...]string{
	OpADD: "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpMUL: "mul",
	OpDIVU: "divu", OpREMU: "remu", OpSLT: "slt", OpSLTU: "sltu",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpSLTI: "slti", OpSLTIU: "sltiu",
	OpLUI: "lui",
	OpLW:  "lw", OpLH: "lh", OpLHU: "lhu", OpLB: "lb", OpLBU: "lbu",
	OpSW: "sw", OpSH: "sh", OpSB: "sb",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
	OpECALL: "ecall", OpMRET: "mret",
}

// String returns the assembler mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool {
	return o >= OpADD && o < opMax
}

// Environment call service numbers (the imm14 field of ECALL).
const (
	EcallHalt         = 0 // terminate successfully
	EcallMakeSymbolic = 1 // r1 = addr, r2 = len, r3 = name id
	EcallAssert       = 2 // fail path if r1 == 0
	EcallPutChar      = 3 // write low byte of r1 to the console
	EcallAbort        = 4 // terminate with failure
	EcallAssume       = 5 // constrain r1 != 0 (silently kill path otherwise)
	EcallSnapshotHint = 6 // advisory marker: good snapshot point
	EcallPutInt       = 7 // write decimal r1 to the console
)

// Inst is a decoded instruction.
type Inst struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign-extended immediate (14- or 22-bit)
}

const (
	imm14Mask = (1 << 14) - 1
	imm22Mask = (1 << 22) - 1
)

func signExt(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Encode packs the instruction into its 32-bit representation.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", in)
	}
	w := uint32(in.Op) << 26
	w |= uint32(in.Rd&0xF) << 22
	w |= uint32(in.Rs1&0xF) << 18
	w |= uint32(in.Rs2&0xF) << 14
	if in.Op == OpJAL {
		if in.Imm < -(1<<21) || in.Imm >= 1<<21 {
			return 0, fmt.Errorf("isa: JAL offset %d out of 22-bit range", in.Imm)
		}
		// imm22 overlaps rs1/rs2 fields.
		w = uint32(in.Op)<<26 | uint32(in.Rd&0xF)<<22 | uint32(in.Imm)&imm22Mask
		return w, nil
	}
	if in.Op == OpLUI {
		// LUI's immediate is a raw 14-bit field (bits [31:18] of the
		// result); accept it unsigned as well as sign-extended.
		if in.Imm < -(1<<13) || in.Imm >= 1<<14 {
			return 0, fmt.Errorf("isa: LUI immediate %d out of 14-bit range", in.Imm)
		}
		w |= uint32(in.Imm) & imm14Mask
		return w, nil
	}
	if in.Imm < -(1<<13) || in.Imm >= 1<<13 {
		return 0, fmt.Errorf("isa: immediate %d out of 14-bit range for %v", in.Imm, in.Op)
	}
	w |= uint32(in.Imm) & imm14Mask
	return w, nil
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> 26)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: illegal instruction %#08x", w)
	}
	in := Inst{
		Op:  op,
		Rd:  uint8(w >> 22 & 0xF),
		Rs1: uint8(w >> 18 & 0xF),
		Rs2: uint8(w >> 14 & 0xF),
	}
	if op == OpJAL {
		in.Rs1, in.Rs2 = 0, 0
		in.Imm = signExt(w&imm22Mask, 22)
	} else {
		in.Imm = signExt(w&imm14Mask, 14)
	}
	return in, nil
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
		OpMUL, OpDIVU, OpREMU, OpSLT, OpSLTU:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpSLTI, OpSLTIU:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLUI:
		return fmt.Sprintf("lui r%d, %#x", in.Rd, in.Imm)
	case OpLW, OpLH, OpLHU, OpLB, OpLBU:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case OpSW, OpSH, OpSB:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case OpJAL:
		return fmt.Sprintf("jal r%d, %d", in.Rd, in.Imm)
	case OpJALR:
		return fmt.Sprintf("jalr r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
	case OpECALL:
		return fmt.Sprintf("ecall %d", in.Imm)
	case OpMRET:
		return "mret"
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// LUIShift is the amount LUI shifts its immediate by; together with the
// 14-bit immediate this covers bits [31:18].
const LUIShift = 18

// LUIValue computes the register value produced by LUI with the given
// raw immediate field.
func LUIValue(imm int32) uint32 {
	return uint32(imm) << LUIShift
}

// ExpandLI returns the shortest instruction sequence loading the
// 32-bit constant v into rd, using only rd as scratch:
//
//   - one ADDI for small signed constants,
//   - one LUI when the low 18 bits are zero,
//   - LUI+ORI when the low 18 bits fit ORI's positive range,
//   - otherwise a 5-instruction shift-accumulate sequence
//     (ADDI, SLLI, ORI, SLLI, ORI) that covers any 32-bit value.
func ExpandLI(rd uint8, v uint32) []Inst {
	sv := int32(v)
	if sv >= -(1<<13) && sv < 1<<13 {
		return []Inst{{Op: OpADDI, Rd: rd, Rs1: RegZero, Imm: sv}}
	}
	hi := int32(v >> LUIShift)
	low18 := v & (1<<LUIShift - 1)
	if low18 == 0 {
		return []Inst{{Op: OpLUI, Rd: rd, Imm: hi}}
	}
	if low18 < 1<<13 {
		return []Inst{
			{Op: OpLUI, Rd: rd, Imm: hi},
			{Op: OpORI, Rd: rd, Rs1: rd, Imm: int32(low18)},
		}
	}
	return []Inst{
		{Op: OpADDI, Rd: rd, Rs1: RegZero, Imm: int32(v >> 26 & 0x3F)},
		{Op: OpSLLI, Rd: rd, Rs1: rd, Imm: 13},
		{Op: OpORI, Rd: rd, Rs1: rd, Imm: int32(v >> 13 & 0x1FFF)},
		{Op: OpSLLI, Rd: rd, Rs1: rd, Imm: 13},
		{Op: OpORI, Rd: rd, Rs1: rd, Imm: int32(v & 0x1FFF)},
	}
}
