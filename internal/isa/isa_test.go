package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Inst{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpADDI, Rd: 1, Rs1: 0, Imm: -1},
		{Op: OpADDI, Rd: 1, Rs1: 0, Imm: 8191},
		{Op: OpADDI, Rd: 1, Rs1: 0, Imm: -8192},
		{Op: OpLUI, Rd: 2, Imm: 0x1000},
		{Op: OpLW, Rd: 3, Rs1: 4, Imm: 64},
		{Op: OpSW, Rs1: 4, Rs2: 5, Imm: -4},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -8},
		{Op: OpJAL, Rd: 15, Imm: 1 << 20},
		{Op: OpJAL, Rd: 0, Imm: -(1 << 21)},
		{Op: OpJALR, Rd: 0, Rs1: 15, Imm: 0},
		{Op: OpECALL, Imm: EcallMakeSymbolic},
		{Op: OpMRET},
	}
	for _, in := range tests {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		// LUI immediates may be sign-normalized by decode.
		if in.Op == OpLUI {
			if LUIValue(got.Imm) != LUIValue(in.Imm) {
				t.Fatalf("LUI round trip: %v -> %v", in, got)
			}
			continue
		}
		if got != in {
			t.Fatalf("round trip: %v -> %#08x -> %v", in, w, got)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpADDI, Rd: 1, Imm: 8192},
		{Op: OpADDI, Rd: 1, Imm: -8193},
		{Op: OpJAL, Rd: 1, Imm: 1 << 21},
		{Op: OpLUI, Rd: 1, Imm: 1 << 14},
		{Op: Opcode(0), Rd: 1},
		{Op: opMax},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("encode %v should fail", in)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("decoding zero word should fail")
	}
	if _, err := Decode(0xFFFFFFFF); err == nil {
		t.Error("decoding all-ones should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(op8, rd, rs1, rs2 uint8, imm int16) bool {
		op := Opcode(op8%uint8(opMax-1)) + 1
		if op == OpJAL || op == OpLUI {
			return true // covered separately
		}
		in := Inst{
			Op:  op,
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs,
			Imm: int32(imm) % 8192,
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLUIValue(t *testing.T) {
	// Raw field 0x1000 places bits at [31:18].
	if LUIValue(0x1000) != 0x40000000 {
		t.Fatalf("LUIValue(0x1000) = %#x", LUIValue(0x1000))
	}
	// A sign-extended negative immediate must produce the same bits as
	// its raw 14-bit pattern.
	w, err := Encode(Inst{Op: OpLUI, Rd: 1, Imm: 0x3FFF})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if LUIValue(got.Imm) != 0xFFFC0000 {
		t.Fatalf("LUIValue after decode = %#x, want 0xFFFC0000", LUIValue(got.Imm))
	}
}

func TestExpandLI(t *testing.T) {
	cases := []struct {
		v      uint32
		maxLen int
	}{
		{0, 1},
		{1, 1},
		{8191, 1},
		{0xFFFFFFFF, 1}, // -1 fits ADDI
		{0x40000000, 1}, // lui only
		{0x40000FFF, 2}, // lui + ori
		{0xDEADBEEF, 5},
		{0x12345678, 5},
		{0x0003FFFF, 5},
	}
	for _, tc := range cases {
		seq := ExpandLI(5, tc.v)
		if len(seq) > tc.maxLen {
			t.Errorf("ExpandLI(%#x): %d instructions, want <= %d", tc.v, len(seq), tc.maxLen)
		}
		// Simulate the sequence.
		var regs [NumRegs]uint32
		for _, in := range seq {
			if _, err := Encode(in); err != nil {
				t.Fatalf("ExpandLI(%#x) produced unencodable %v: %v", tc.v, in, err)
			}
			switch in.Op {
			case OpADDI:
				regs[in.Rd] = regs[in.Rs1] + uint32(in.Imm)
			case OpLUI:
				regs[in.Rd] = LUIValue(in.Imm)
			case OpORI:
				regs[in.Rd] = regs[in.Rs1] | uint32(in.Imm)
			case OpSLLI:
				regs[in.Rd] = regs[in.Rs1] << uint(in.Imm)
			default:
				t.Fatalf("unexpected op %v in ExpandLI", in.Op)
			}
		}
		if regs[5] != tc.v {
			t.Errorf("ExpandLI(%#x) loads %#x", tc.v, regs[5])
		}
	}
}

func TestExpandLIQuick(t *testing.T) {
	f := func(v uint32) bool {
		var regs [NumRegs]uint32
		for _, in := range ExpandLI(3, v) {
			if _, err := Encode(in); err != nil {
				return false
			}
			switch in.Op {
			case OpADDI:
				regs[in.Rd] = regs[in.Rs1] + uint32(in.Imm)
			case OpLUI:
				regs[in.Rd] = LUIValue(in.Imm)
			case OpORI:
				regs[in.Rd] = regs[in.Rs1] | uint32(in.Imm)
			case OpSLLI:
				regs[in.Rd] = regs[in.Rs1] << uint(in.Imm)
			}
		}
		return regs[3] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembly(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpADDI, Rd: 1, Rs1: 0, Imm: -5}, "addi r1, r0, -5"},
		{Inst{Op: OpLW, Rd: 3, Rs1: 4, Imm: 8}, "lw r3, 8(r4)"},
		{Inst{Op: OpSW, Rs1: 4, Rs2: 5, Imm: -4}, "sw r5, -4(r4)"},
		{Inst{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: 16}, "beq r1, r2, 16"},
		{Inst{Op: OpJAL, Rd: 15, Imm: 100}, "jal r15, 100"},
		{Inst{Op: OpECALL, Imm: 2}, "ecall 2"},
		{Inst{Op: OpMRET}, "mret"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
