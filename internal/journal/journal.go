// Package journal implements the crash-safe campaign log that makes
// exploration state as durable as the hardware snapshots it indexes:
// an append-only file of CRC-framed records with scan-side corruption
// recovery and atomic compaction.
//
// The framing borrows the idioms of the remote protocol (internal/
// remote): every record is length-prefixed and checksummed, so a
// reader can walk the file record by record and prove each one intact
// before trusting it. Unlike a wire stream there is no peer to ask for
// a retransmit — the recovery rule is instead *prefix truncation*: a
// scan returns the longest prefix of intact records and reports where
// (and that) it stopped. A process killed mid-append leaves a torn
// tail; a bit flip at rest leaves a failing CRC; both degrade to
// "resume from the last good record", never to silently wrong state.
//
// File layout (all integers little-endian):
//
//	file:   magic "HSJ1" record*
//	record: kind(1) len(4) payload[len] crc(4)
//
// crc is a CRC-32 (IEEE) over kind, len and payload together, so a
// corrupted length field fails the checksum rather than framing the
// reader into garbage. len is bounded (maxPayload) so a torn length
// cannot drive an unbounded allocation.
//
// Appends are written with a single Write call — the kernel makes a
// same-file write of a record-sized buffer effectively atomic with
// respect to a crash of this process (a machine-level power cut still
// degrades safely: the tail record fails its CRC and is truncated
// away). Sync flushes to stable storage at the caller's chosen
// boundaries; Compact rewrites the whole file through a temp file +
// rename, so a crash mid-compaction leaves the original intact.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// magic identifies a journal file ("HSJ1").
var magic = [4]byte{'H', 'S', 'J', '1'}

const (
	hdrLen     = 5 // kind(1) len(4)
	trailerLen = 4 // crc32
	// maxPayload bounds one record so a corrupted length field cannot
	// make a reader allocate unbounded memory.
	maxPayload = 1 << 28
)

// ErrNotJournal reports a file whose magic header is missing or wrong.
var ErrNotJournal = errors.New("journal: not a journal file (bad magic)")

// Record is one framed journal entry. Kind is caller-defined; the
// journal layer only frames and checksums.
type Record struct {
	Kind    byte
	Payload []byte
}

func (r Record) wireSize() int64 {
	return int64(hdrLen + len(r.Payload) + trailerLen)
}

func encodeRecord(r Record) []byte {
	buf := make([]byte, hdrLen+len(r.Payload)+trailerLen)
	buf[0] = r.Kind
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(r.Payload)))
	copy(buf[hdrLen:], r.Payload)
	crc := crc32.ChecksumIEEE(buf[:hdrLen+len(r.Payload)])
	binary.LittleEndian.PutUint32(buf[hdrLen+len(r.Payload):], crc)
	return buf
}

// ScanResult is what a Scan recovered from a journal file.
type ScanResult struct {
	// Records is the longest intact prefix of the file's records.
	Records []Record
	// Truncated reports that the scan stopped before the end of the
	// file — a torn tail (killed mid-append) or a corrupted record.
	// Everything before GoodBytes is proven intact.
	Truncated bool
	// GoodBytes is the file offset just past the last intact record
	// (including the magic header). AppendTo resumes writing here.
	GoodBytes int64
}

// Scan reads a journal file and returns every record up to the first
// corruption or truncation. A missing file is an error; an empty
// well-formed journal returns zero records.
func Scan(path string) (*ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scanFile(f)
}

func scanFile(f *os.File) (*ScanResult, error) {
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return nil, ErrNotJournal
	}
	if m != magic {
		return nil, ErrNotJournal
	}
	res := &ScanResult{GoodBytes: int64(len(magic))}
	var hdr [hdrLen]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return res, nil // clean end of journal
		}
		if err != nil {
			res.Truncated = true // torn header
			return res, nil
		}
		n := binary.LittleEndian.Uint32(hdr[1:5])
		if n > maxPayload {
			res.Truncated = true // corrupted length
			return res, nil
		}
		body := make([]byte, int(n)+trailerLen)
		if _, err := io.ReadFull(f, body); err != nil {
			res.Truncated = true // torn payload or trailer
			return res, nil
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:])
		crc.Write(body[:n])
		if crc.Sum32() != binary.LittleEndian.Uint32(body[n:]) {
			res.Truncated = true // bit flip anywhere in the record
			return res, nil
		}
		res.Records = append(res.Records, Record{Kind: hdr[0], Payload: body[:n]})
		res.GoodBytes += int64(hdrLen) + int64(n) + trailerLen
	}
}

// Stats counts a writer's activity.
type Stats struct {
	// Records / Bytes cover every record this writer appended plus the
	// intact records it adopted when opened with AppendTo.
	Records uint64
	Bytes   uint64
	// Compactions counts atomic rewrites; CompactedAway counts records
	// dropped by them.
	Compactions   uint64
	CompactedAway uint64
}

// Writer appends records to a journal file. It is not safe for
// concurrent use; callers serialize (the campaign layer appends under
// its supervisor lock).
type Writer struct {
	f     *os.File
	path  string
	stats Stats
}

// Create makes (or truncates) a journal file.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, path: path, stats: Stats{Bytes: uint64(len(magic))}}, nil
}

// AppendTo opens an existing journal for appending. The tail is
// scanned first: writing resumes after the last intact record, so a
// torn tail from a killed process is overwritten rather than extended
// into permanent garbage. The intact records are returned so the
// caller can rebuild its state from the same pass.
func AppendTo(path string) (*Writer, *ScanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	res, err := scanFile(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if res.Truncated {
		if err := f.Truncate(res.GoodBytes); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(res.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &Writer{f: f, path: path}
	w.stats.Records = uint64(len(res.Records))
	w.stats.Bytes = uint64(res.GoodBytes)
	return w, res, nil
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Stats returns a copy of the writer's counters.
func (w *Writer) Stats() Stats { return w.stats }

// Append frames and writes one record in a single write call.
func (w *Writer) Append(kind byte, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("journal: record payload %d exceeds limit", len(payload))
	}
	buf := encodeRecord(Record{Kind: kind, Payload: payload})
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	w.stats.Records++
	w.stats.Bytes += uint64(len(buf))
	return nil
}

// Sync flushes appended records to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close syncs and closes the journal.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// compactFailpoint, when set (tests only), is invoked between
// compaction stages: "written" after the kept records are in the temp
// file, "synced" after the temp file is synced and closed, just
// before the rename. Returning an error aborts the compaction at that
// exact point the way a crash would — the temp file stays behind and
// the original journal is untouched.
var compactFailpoint func(stage string) error

func failpoint(stage string) error {
	if compactFailpoint == nil {
		return nil
	}
	return compactFailpoint(stage)
}

// Compact atomically rewrites the journal to hold exactly the records
// keep returns, given every intact record currently in the file. The
// rewrite goes through a temp file in the same directory, is synced,
// and replaces the journal with rename — a crash at any point leaves
// either the old or the new file, never a hybrid. The writer continues
// on the compacted file.
func (w *Writer) Compact(keep func([]Record) []Record) error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	res, err := Scan(w.path)
	if err != nil {
		return err
	}
	kept := keep(res.Records)

	dir, base := filepath.Split(w.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(magic[:]); err != nil {
		return fail(err)
	}
	bytes := uint64(len(magic))
	for _, r := range kept {
		buf := encodeRecord(r)
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
		bytes += uint64(len(buf))
	}
	if err := failpoint("written"); err != nil {
		tmp.Close() // simulated crash: the temp file stays behind
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := failpoint("synced"); err != nil {
		return err // simulated crash between sync and rename
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Reopen the compacted file for further appends.
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	old := w.f
	w.f = f
	old.Close()
	w.stats.Compactions++
	w.stats.CompactedAway += uint64(len(res.Records) - len(kept))
	w.stats.Records = uint64(len(kept))
	w.stats.Bytes = bytes
	return nil
}
