package journal

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// fillJournal creates a journal holding n small records.
func fillJournal(t *testing.T, path string, n int) *Writer {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(byte(i%3+1), []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	return w
}

func scanRecords(t *testing.T, path string) *ScanResult {
	t.Helper()
	res, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCompactCrashWindows kills a compaction at each window between
// the temp-file write and the rename. In every window the original
// journal must scan clean with all its records, and an AppendTo on it
// (the resume path) must work — the crash can only cost the
// compaction, never the log.
func TestCompactCrashWindows(t *testing.T) {
	errBoom := errors.New("injected crash")
	for _, stage := range []string{"written", "synced"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "camp.hsj")
			w := fillJournal(t, path, 9)

			compactFailpoint = func(s string) error {
				if s == stage {
					return errBoom
				}
				return nil
			}
			defer func() { compactFailpoint = nil }()
			err := w.Compact(func(recs []Record) []Record {
				return recs[len(recs)-3:] // drop all but the tail
			})
			if !errors.Is(err, errBoom) {
				t.Fatalf("Compact err = %v, want injected crash", err)
			}
			w.Close() // the "crashed" process is gone
			compactFailpoint = nil

			// The original journal is fully intact: nothing compacted.
			res := scanRecords(t, path)
			if res.Truncated || len(res.Records) != 9 {
				t.Fatalf("after crashed compaction: truncated=%v records=%d, want clean 9",
					res.Truncated, len(res.Records))
			}
			// The crash left a stale temp file behind; it must not be
			// mistaken for the journal.
			stale, err := filepath.Glob(filepath.Join(dir, "camp.hsj.compact-*"))
			if err != nil {
				t.Fatal(err)
			}
			if len(stale) != 1 {
				t.Fatalf("stale temp files: %v, want exactly 1", stale)
			}

			// Resume: append to the surviving journal and land new
			// records after the old ones.
			w2, scanned, err := AppendTo(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(scanned.Records) != 9 {
				t.Fatalf("AppendTo recovered %d records, want 9", len(scanned.Records))
			}
			if err := w2.Append(7, []byte("post-crash")); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			res = scanRecords(t, path)
			if res.Truncated || len(res.Records) != 10 {
				t.Fatalf("after resume append: truncated=%v records=%d, want clean 10",
					res.Truncated, len(res.Records))
			}
			if string(res.Records[9].Payload) != "post-crash" {
				t.Fatalf("tail record: %q", res.Records[9].Payload)
			}
		})
	}
}

// TestCompactAfterCrashedCompaction: a writer that survives a failed
// compaction attempt (e.g. a transient disk error at the failpoint)
// keeps appending to the original file, and a later compaction
// succeeds and cleans the log down to the kept records.
func TestCompactAfterCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.hsj")
	w := fillJournal(t, path, 6)
	defer w.Close()

	errBoom := errors.New("injected crash")
	compactFailpoint = func(string) error { return errBoom }
	if err := w.Compact(func(r []Record) []Record { return r }); !errors.Is(err, errBoom) {
		t.Fatalf("Compact err = %v", err)
	}
	compactFailpoint = nil

	// The writer is still on the original file: appends keep working.
	if err := w.Append(9, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(func(recs []Record) []Record {
		return recs[len(recs)-2:]
	}); err != nil {
		t.Fatal(err)
	}
	res := scanRecords(t, path)
	if res.Truncated || len(res.Records) != 2 {
		t.Fatalf("after successful compaction: truncated=%v records=%d, want clean 2",
			res.Truncated, len(res.Records))
	}
	if string(res.Records[1].Payload) != "alive" {
		t.Fatalf("kept tail: %q", res.Records[1].Payload)
	}
	if st := w.Stats(); st.Compactions != 1 || st.Records != 2 {
		t.Fatalf("stats after compaction: %+v", st)
	}
}
