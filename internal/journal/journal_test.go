package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.journal")
}

func mustCreate(t *testing.T, path string) *Writer {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func appendN(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append(byte(1+i%3), []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	w := mustCreate(t, path)
	appendN(t, w, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(res.Records) != 10 {
		t.Fatalf("records: %d, want 10", len(res.Records))
	}
	for i, r := range res.Records {
		if want := byte(1 + i%3); r.Kind != want {
			t.Fatalf("record %d kind %d, want %d", i, r.Kind, want)
		}
		if want := fmt.Sprintf("record-%d", i); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
	}
}

func TestEmptyJournal(t *testing.T) {
	path := tmpJournal(t)
	w := mustCreate(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || len(res.Records) != 0 {
		t.Fatalf("empty journal: %+v", res)
	}
}

func TestNotAJournal(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(path); err != ErrNotJournal {
		t.Fatalf("err = %v, want ErrNotJournal", err)
	}
	short := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(short, []byte("HS"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(short); err != ErrNotJournal {
		t.Fatalf("short file err = %v, want ErrNotJournal", err)
	}
}

// TestCorruptionRecovery is the corruption table the issue asks for:
// a truncated tail (process killed mid-append), a bit-flipped record
// (corruption at rest) and a torn final append must all recover the
// longest intact prefix — never garbage, never an error.
func TestCorruptionRecovery(t *testing.T) {
	build := func(t *testing.T, n int) (string, []byte) {
		path := tmpJournal(t)
		w := mustCreate(t, path)
		appendN(t, w, n)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}
	// Record i occupies [off(i), off(i+1)) past the magic header.
	recOff := func(data []byte, i int) int {
		off := len(magic)
		for k := 0; k < i; k++ {
			n := int(data[off+1]) | int(data[off+2])<<8 | int(data[off+3])<<16 | int(data[off+4])<<24
			off += hdrLen + n + trailerLen
		}
		return off
	}

	cases := []struct {
		name string
		// mutate the raw file bytes of a 6-record journal.
		mutate func(data []byte) []byte
		// want is how many intact records must survive.
		want int
	}{
		{"truncated tail: torn header", func(d []byte) []byte {
			return d[:recOff(d, 5)+2]
		}, 5},
		{"truncated tail: torn payload", func(d []byte) []byte {
			return d[:recOff(d, 5)+hdrLen+3]
		}, 5},
		{"truncated tail: torn trailer", func(d []byte) []byte {
			return d[:recOff(d, 6)-1]
		}, 5},
		{"bit flip in middle record payload", func(d []byte) []byte {
			m := append([]byte(nil), d...)
			m[recOff(m, 3)+hdrLen] ^= 0x20
			return m
		}, 3},
		{"bit flip in middle record kind", func(d []byte) []byte {
			m := append([]byte(nil), d...)
			m[recOff(m, 2)] ^= 0x01
			return m
		}, 2},
		{"bit flip in length field", func(d []byte) []byte {
			m := append([]byte(nil), d...)
			m[recOff(m, 4)+1] ^= 0x02
			return m
		}, 4},
		{"length field blown past the cap", func(d []byte) []byte {
			m := append([]byte(nil), d...)
			m[recOff(m, 1)+4] = 0xFF // top length byte: > maxPayload
			return m
		}, 1},
		{"bit flip in trailer CRC", func(d []byte) []byte {
			m := append([]byte(nil), d...)
			m[recOff(m, 1)-1] ^= 0x80
			return m
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, data := build(t, 6)
			mutated := tc.mutate(data)
			path := filepath.Join(t.TempDir(), "mut.journal")
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			res, err := Scan(path)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Truncated {
				t.Fatal("corruption not reported")
			}
			if len(res.Records) != tc.want {
				t.Fatalf("recovered %d records, want %d", len(res.Records), tc.want)
			}
			for i, r := range res.Records {
				if want := fmt.Sprintf("record-%d", i); string(r.Payload) != want {
					t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
				}
			}
		})
	}

	// Property: ANY single-bit flip anywhere past the magic header
	// recovers a clean prefix of the original records.
	_, data := build(t, 6)
	f := func(off uint16, bit uint8) bool {
		m := append([]byte(nil), data...)
		i := len(magic) + int(off)%(len(m)-len(magic))
		m[i] ^= 1 << (bit % 8)
		path := filepath.Join(t.TempDir(), "q.journal")
		if err := os.WriteFile(path, m, 0o644); err != nil {
			return false
		}
		res, err := Scan(path)
		if err != nil {
			return false
		}
		for j, r := range res.Records {
			if string(r.Payload) != fmt.Sprintf("record-%d", j) {
				return false
			}
		}
		return len(res.Records) < 6 == res.Truncated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendToTruncatesTornTail: reopening after a simulated
// mid-append kill must resume right after the last good record, and
// the overwritten tail must never resurface.
func TestAppendToTruncatesTornTail(t *testing.T) {
	path := tmpJournal(t)
	w := mustCreate(t, path)
	appendN(t, w, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half (as SIGKILL mid-write would).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, res, err := AppendTo(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Records) != 3 {
		t.Fatalf("reopen recovered %d records (truncated=%v), want 3 truncated", len(res.Records), res.Truncated)
	}
	if err := w2.Append(9, []byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Truncated || len(final.Records) != 4 {
		t.Fatalf("final scan: %d records (truncated=%v), want 4 clean", len(final.Records), final.Truncated)
	}
	if final.Records[3].Kind != 9 || string(final.Records[3].Payload) != "after-crash" {
		t.Fatalf("tail record: %+v", final.Records[3])
	}
}

func TestCompact(t *testing.T) {
	path := tmpJournal(t)
	w := mustCreate(t, path)
	appendN(t, w, 9)
	// Keep only kind-1 records.
	if err := w.Compact(func(rs []Record) []Record {
		var out []Record
		for _, r := range rs {
			if r.Kind == 1 {
				out = append(out, r)
			}
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	// The writer keeps working on the compacted file.
	if err := w.Append(7, []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Compactions != 1 || st.CompactedAway != 6 {
		t.Fatalf("stats: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || len(res.Records) != 4 {
		t.Fatalf("compacted scan: %d records (truncated=%v)", len(res.Records), res.Truncated)
	}
	for _, r := range res.Records[:3] {
		if r.Kind != 1 {
			t.Fatalf("kept record kind %d, want 1", r.Kind)
		}
	}
	if !bytes.Equal(res.Records[3].Payload, []byte("post-compact")) {
		t.Fatalf("post-compact record: %+v", res.Records[3])
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the journal", len(entries))
	}
}

func TestWriterStats(t *testing.T) {
	path := tmpJournal(t)
	w := mustCreate(t, path)
	appendN(t, w, 5)
	st := w.Stats()
	if st.Records != 5 {
		t.Fatalf("records: %d", st.Records)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Bytes != uint64(fi.Size()) {
		t.Fatalf("bytes: %d, file size %d", st.Bytes, fi.Size())
	}
	// AppendTo adopts the existing counters.
	w2, _, err := AppendTo(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st2 := w2.Stats(); st2.Records != 5 || st2.Bytes != st.Bytes {
		t.Fatalf("reopened stats: %+v, want %+v", st2, st)
	}
}
