// Package vtime provides the deterministic virtual clock every
// HardSnap component charges its costs to. The original paper reports
// wall-clock measurements on a physical testbed (Verilator on a host
// CPU, a Xilinx FPGA behind a USB 3.0 debugger); this reproduction
// replaces the testbed with a calibrated cost model so that every
// experiment is exactly reproducible. The constants in cost.go are
// calibrated to the orders of magnitude reported in the paper and in
// the INCEPTION paper it builds on; EXPERIMENTS.md discusses the
// calibration.
package vtime

import (
	"fmt"
	"time"
)

// Clock accumulates virtual time. The zero value is a clock at t=0.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative advance %v", d))
	}
	c.now += d
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }

// Costs describes the per-operation virtual-time charges of one
// hardware target.
type Costs struct {
	// Cycle is charged per simulated clock cycle.
	Cycle time.Duration
	// IORoundTrip is charged per forwarded MMIO access (bus
	// transaction + transport latency).
	IORoundTrip time.Duration
	// SnapshotFixed is the fixed part of a snapshot save or restore
	// (process freeze for CRIU, command setup for the scan IP).
	SnapshotFixed time.Duration
	// SnapshotPerBit is charged per state bit saved or restored.
	SnapshotPerBit time.Duration
	// DeltaFixed is the fixed part of an incremental (dirty-only)
	// restore, when the target supports one. It replaces
	// SnapshotFixed on that path: no full freeze/dump is needed when
	// only the pages touched since the last anchor are written back.
	// Zero means the target has no delta path.
	DeltaFixed time.Duration
}

// DeltaCost returns the cost of an incremental restore writing back
// `bits` dirty state bits.
func (c Costs) DeltaCost(bits uint) time.Duration {
	return c.DeltaFixed + time.Duration(bits)*c.SnapshotPerBit
}

// SnapshotCost returns the cost of saving or restoring `bits` state
// bits on this target.
func (c Costs) SnapshotCost(bits uint) time.Duration {
	return c.SnapshotFixed + time.Duration(bits)*c.SnapshotPerBit
}
