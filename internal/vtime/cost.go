package vtime

import "time"

// Calibration constants. All targets execute the same RTL; what
// differs is how expensive each operation is in virtual time.
//
// Sources for the orders of magnitude:
//   - Verilator-class simulators retire ~0.1-1 M design cycles/s for
//     small peripherals on a desktop CPU -> ~2 µs/cycle.
//   - An FPGA emulates the design at ~100 MHz -> 10 ns/cycle.
//   - The INCEPTION USB 3.0 debugger achieves a few µs to tens of µs
//     per 32-bit transaction -> 30 µs/IO for the FPGA path; the
//     simulator is reached through shared memory -> ~1 µs/IO.
//   - CRIU checkpoint of a small process costs tens of ms fixed plus
//     copy time; the scan chain costs 1 FPGA cycle/bit at the scan
//     clock (50 MHz) plus command overhead; readback dumps the whole
//     fabric at a fixed ~8 ms regardless of design size.
const (
	SimCycle          = 2 * time.Microsecond
	SimIORoundTrip    = 1 * time.Microsecond
	SimSnapshotFixed  = 20 * time.Millisecond // CRIU freeze+dump fixed cost
	SimSnapshotPerBit = 2 * time.Nanosecond   // memory copy

	// SimDeltaFixed is the fixed cost of an incremental restore on the
	// simulator target: with the process kept resident, writing back
	// only the dirty pages of the tracked state needs no CRIU
	// freeze+dump, just a soft-dirty walk and copy (hundreds of µs,
	// CRIU pre-dump/incremental scale).
	SimDeltaFixed = 200 * time.Microsecond

	FPGACycle          = 10 * time.Nanosecond
	FPGAIORoundTrip    = 30 * time.Microsecond
	FPGAScanClock      = 20 * time.Nanosecond // 50 MHz scan clock
	FPGAScanCmdLatency = 60 * time.Microsecond

	// ReadbackFixed is the full-fabric readback/writeback time of a
	// high-end FPGA: constant in the design size because the whole
	// fabric frame set is transferred.
	ReadbackFixed = 8 * time.Millisecond

	// RebootTime is a full platform reboot (power cycle + firmware
	// boot), the reset mechanism the naive-and-consistent baseline
	// must pay between test cases (Muench et al. report seconds; we
	// use a conservative half second).
	RebootTime = 500 * time.Millisecond

	// VMInstruction is the symbolic VM's cost to retire one firmware
	// instruction (interpretation dominated).
	VMInstruction = 1 * time.Microsecond

	// NativeInstruction is the cost of one firmware instruction when
	// fast-forwarding concretely (near-native speed, ~50 MIPS) —
	// the "Fast Forwarding" capability of Table I.
	NativeInstruction = 20 * time.Nanosecond

	// LinkTimeout is the per-transaction deadline on a target link:
	// the time wasted waiting for a response that never arrives when
	// a frame is dropped (USB 3.0 bulk-transfer timeout scale).
	LinkTimeout = 2 * time.Millisecond

	// LinkRetryBackoff is the initial delay before retransmitting
	// after a transient link fault; each retry doubles it up to
	// LinkRetryBackoffMax.
	LinkRetryBackoff    = 50 * time.Microsecond
	LinkRetryBackoffMax = 5 * time.Millisecond
)

// SimCosts returns the simulator target's cost table.
func SimCosts() Costs {
	return Costs{
		Cycle:          SimCycle,
		IORoundTrip:    SimIORoundTrip,
		SnapshotFixed:  SimSnapshotFixed,
		SnapshotPerBit: SimSnapshotPerBit,
		DeltaFixed:     SimDeltaFixed,
	}
}

// FPGAScanCosts returns the FPGA target's cost table when snapshots
// use the inserted scan chain.
func FPGAScanCosts() Costs {
	return Costs{
		Cycle:          FPGACycle,
		IORoundTrip:    FPGAIORoundTrip,
		SnapshotFixed:  FPGAScanCmdLatency,
		SnapshotPerBit: FPGAScanClock,
	}
}

// FPGAReadbackCosts returns the FPGA target's cost table when
// snapshots use the vendor readback feature (fixed full-fabric cost).
func FPGAReadbackCosts() Costs {
	return Costs{
		Cycle:          FPGACycle,
		IORoundTrip:    FPGAIORoundTrip,
		SnapshotFixed:  ReadbackFixed,
		SnapshotPerBit: 0,
	}
}
