package vtime

import (
	"testing"
	"time"
)

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock must start at 0")
	}
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("now %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance must panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestSnapshotCostShapes(t *testing.T) {
	scan := FPGAScanCosts()
	rb := FPGAReadbackCosts()
	sim := SimCosts()

	// Scan scales linearly with bits; readback does not.
	small, large := uint(100), uint(100_000)
	if scan.SnapshotCost(large)-scan.SnapshotCost(small) !=
		time.Duration(large-small)*FPGAScanClock {
		t.Fatal("scan cost not linear in bits")
	}
	if rb.SnapshotCost(small) != rb.SnapshotCost(large) {
		t.Fatal("readback cost must be size-independent")
	}

	// Crossover: for small designs scan wins, for huge ones readback
	// wins — the trade-off motivating both methods in the paper.
	if scan.SnapshotCost(small) >= rb.SnapshotCost(small) {
		t.Fatal("scan should win for small designs")
	}
	crossBits := uint((ReadbackFixed - FPGAScanCmdLatency) / FPGAScanClock)
	if scan.SnapshotCost(crossBits+1000) <= rb.SnapshotCost(crossBits+1000) {
		t.Fatal("readback should win past the crossover")
	}

	// Per-cycle cost ordering: FPGA executes far faster than the
	// simulator.
	if FPGACycle*100 > SimCycle {
		t.Fatal("FPGA cycle should be orders of magnitude cheaper")
	}
	if sim.IORoundTrip >= FPGAIORoundTrip {
		t.Fatal("shared-memory I/O should be cheaper than USB3 I/O")
	}
}
