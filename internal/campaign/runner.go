package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/target"
)

// EventKind labels a progress event.
type EventKind string

const (
	// EventStarted fires once the analysis is set up, before
	// exploration begins.
	EventStarted EventKind = "started"
	// EventProgress fires periodically during exploration (serial
	// instruction samples and parallel subtree completions).
	EventProgress EventKind = "progress"
	// EventBug fires once per discovered bug, after the run ends.
	EventBug EventKind = "bug"
	// EventInterrupted fires when the run was cancelled with its
	// journal flushed (the job can be resumed).
	EventInterrupted EventKind = "interrupted"
	// EventCompleted fires when the run finished; the Result carries
	// the same numbers authoritatively.
	EventCompleted EventKind = "completed"
)

// Event is one typed progress notification. Progress events are
// lossy by design — they are dropped rather than ever blocking the
// run — so consumers must treat the returned Result, not the event
// stream, as the authoritative outcome.
type Event struct {
	Kind EventKind `json:"kind"`
	// Target kind (started events).
	Target string `json:"target,omitempty"`
	// SoC describes the peripheral bus layout, one line per region
	// (started events).
	SoC []string `json:"soc,omitempty"`
	// Serial-phase instruction count (progress events).
	Instructions uint64 `json:"instructions,omitempty"`
	// Parallel fan-out progress (progress events).
	SubtreesDone int `json:"subtrees_done,omitempty"`
	Subtrees     int `json:"subtrees,omitempty"`
	// Bug detail (bug events).
	Bug *Bug `json:"bug,omitempty"`
	// Completion summary (completed events).
	Paths       int           `json:"paths,omitempty"`
	Bugs        int           `json:"bugs,omitempty"`
	VirtualTime time.Duration `json:"virtual_time,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
}

// Bug is the wire form of one bug-terminated path.
type Bug struct {
	Status string            `json:"status"`
	PC     uint32            `json:"pc"`
	Steps  uint64            `json:"steps"`
	Model  map[string]uint64 `json:"model,omitempty"`
}

// Result is the serializable outcome of a run.
type Result struct {
	// Fingerprint is the result identity: core.Fingerprint over the
	// finished paths and virtual time. Two runs of the same Job must
	// produce equal Fingerprints regardless of where they executed.
	Fingerprint string `json:"fingerprint"`
	// JobFingerprint ties the result back to its job spec.
	JobFingerprint string `json:"job_fingerprint"`
	Paths          int    `json:"paths"`
	Bugs           []Bug  `json:"bugs,omitempty"`
	Instructions   uint64 `json:"instructions"`
	SolverQueries  int64  `json:"solver_queries"`
	// VirtualTime is the modeled testbed time (parallel runs report
	// the N-worker makespan).
	VirtualTime     time.Duration `json:"virtual_time"`
	SeedVirtualTime time.Duration `json:"seed_virtual_time,omitempty"`
	Workers         int           `json:"workers,omitempty"`
	// CrashReports is the number of per-bug reports written to
	// RunOptions.ReportDir.
	CrashReports int `json:"crash_reports,omitempty"`
	// ExploreWall is the wall-clock time of the distributed
	// exploration phase — node connection through last subtree
	// result, excluding the driver's local setup, seed phase, and
	// merge (zero for non-distributed runs). The throughput
	// denominator for node-scaling comparisons.
	ExploreWall time.Duration `json:"explore_wall,omitempty"`

	// Report is the full in-process report (not serialized).
	Report *core.Report `json:"-"`
}

// RunOptions are the run-level concerns layered onto a Job: where to
// journal, what to resume, which pre-built target to run on, and
// where to stream progress.
type RunOptions struct {
	// Journal enables crash-safe campaign journaling to this path
	// (parallel jobs only, like the CLI flag).
	Journal string
	// Resume continues a journaled campaign; the journal keeps
	// growing at its own path.
	Resume *core.Campaign
	// Target, when set, is a pre-built execution vehicle (a pooled
	// target or a remote client); the job's FPGA/Readback knobs are
	// ignored in favor of whatever the vehicle is.
	Target target.Interface
	// Events receives typed progress events. Sends never block: an
	// event the consumer is not ready for is dropped. The channel is
	// not closed by the runner.
	Events chan<- Event
	// ReportDir, when set, receives per-bug crash reports (test
	// vector, model, hardware snapshot).
	ReportDir string
}

// Runner executes Jobs. The zero value is ready to use; a Runner is
// stateless and safe for concurrent use.
type Runner struct{}

// emit sends without ever blocking the run.
func emit(ch chan<- Event, ev Event) {
	if ch == nil {
		return
	}
	select {
	case ch <- ev:
	default:
	}
}

// Run executes the job to completion (or interruption). On
// interruption it returns core.ErrInterrupted with the journal — if
// any — flushed for resume. The returned Result is the authoritative
// outcome; the event stream is best-effort.
func (Runner) Run(ctx context.Context, job Job, opts RunOptions) (*Result, error) {
	setup, err := job.SetupConfig()
	if err != nil {
		return nil, err
	}
	setup.Target = opts.Target
	setup.Engine.JournalPath = opts.Journal
	setup.Engine.Resume = opts.Resume
	if opts.Events != nil {
		events := opts.Events
		setup.Engine.Progress = func(p core.ProgressEvent) {
			emit(events, Event{
				Kind:         EventProgress,
				Instructions: p.Instructions,
				SubtreesDone: p.SubtreesDone,
				Subtrees:     p.Subtrees,
			})
		}
	}

	analysis, err := core.Setup(setup)
	if err != nil {
		return nil, err
	}
	kind := "none"
	if analysis.Target != nil {
		kind = analysis.Target.Kind()
	} else if opts.Target != nil {
		kind = opts.Target.Kind()
	}
	var soc []string
	if analysis.Router != nil {
		for i, r := range analysis.Router.Regions() {
			soc = append(soc, fmt.Sprintf("%-10s @ %#x (irq %d)", r.Name, analysis.PeriphBase(i), r.IRQ))
		}
	}
	emit(opts.Events, Event{Kind: EventStarted, Target: kind, SoC: soc})

	rep, err := analysis.Engine.RunContext(ctx)
	if errors.Is(err, core.ErrInterrupted) {
		emit(opts.Events, Event{Kind: EventInterrupted})
		return nil, err
	}
	if err != nil {
		return nil, err
	}

	res := &Result{
		Fingerprint:     core.Fingerprint(rep),
		JobFingerprint:  job.Fingerprint(),
		Paths:           len(rep.Finished),
		Instructions:    rep.Stats.Instructions,
		SolverQueries:   rep.Solver.Queries,
		VirtualTime:     rep.VirtualTime,
		SeedVirtualTime: rep.SeedVirtualTime,
		Workers:         len(rep.Workers),
		Report:          rep,
	}
	for _, st := range rep.Bugs() {
		bug := Bug{
			Status: fmt.Sprintf("%v", st.Status),
			PC:     st.PC,
			Steps:  st.Steps,
			Model:  st.Model,
		}
		res.Bugs = append(res.Bugs, bug)
		emit(opts.Events, Event{Kind: EventBug, Bug: &bug})
	}
	if opts.ReportDir != "" && len(res.Bugs) > 0 {
		n, err := analysis.WriteCrashReports(opts.ReportDir, rep)
		if err != nil {
			return nil, err
		}
		res.CrashReports = n
	}
	emit(opts.Events, Event{
		Kind:        EventCompleted,
		Paths:       res.Paths,
		Bugs:        len(res.Bugs),
		VirtualTime: res.VirtualTime,
		Fingerprint: res.Fingerprint,
	})
	return res, nil
}
