package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"hardsnap/internal/core"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// buggyFirmware crashes only on input 0x42 (two paths, one bug).
const buggyFirmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 9
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 0x42
		bne r4, r5, safe
		abort
safe:
		halt
`

// fanoutFirmware branches on six symbolic bits up front (64 paths,
// so the active set outgrows the fan-out width and parallel runs
// really distribute subtrees), does per-path gpio traffic, and
// aborts on exactly one path (all six bits set).
const fanoutFirmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		li r8, 0x40000000
		andi r5, r4, 1
		beq r5, r0, b1
		nop
b1:
		andi r5, r4, 2
		beq r5, r0, b2
		nop
b2:
		andi r5, r4, 4
		beq r5, r0, b3
		nop
b3:
		andi r5, r4, 8
		beq r5, r0, b4
		nop
b4:
		andi r5, r4, 16
		beq r5, r0, b5
		nop
b5:
		andi r5, r4, 32
		beq r5, r0, work
		nop
work:
		sw r4, 0(r8)
		lw r6, 0(r8)
		andi r5, r4, 63
		addi r7, r0, 63
		bne r5, r7, fine
		abort
fine:
		halt
`

func gpioJob(firmware string, workers int) Job {
	return Job{
		Firmware:    firmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Searcher:    "bfs",
		Workers:     workers,
	}
}

func TestJobDefaultsAndValidate(t *testing.T) {
	j := Job{Firmware: "halt"}
	if err := j.Validate(); err != nil {
		t.Fatalf("minimal job invalid: %v", err)
	}
	for _, bad := range []Job{
		{},
		{Firmware: "halt", Mode: "warp"},
		{Firmware: "halt", Searcher: "psychic"},
		{Firmware: "halt", Concretize: "some"},
		{Firmware: "halt", Workers: -1},
		{Firmware: "halt", FPGA: true,
			Assertions: []target.HWAssertion{{Periph: "g", Name: "a", Expr: "1"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("job %+v passed validation", bad)
		}
	}
}

func TestJobFingerprint(t *testing.T) {
	implicit := Job{Firmware: "halt"}
	explicit := Job{
		Firmware: "halt", Mode: "hardsnap", Searcher: "dfs",
		Concretize: "one", MaxInstructions: 2_000_000, Workers: 1,
	}
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Fatal("defaults-resolved job must fingerprint like its explicit form")
	}
	changed := implicit
	changed.Searcher = "bfs"
	if changed.Fingerprint() == implicit.Fingerprint() {
		t.Fatal("different searcher, same fingerprint")
	}
	// Chaos is a test seam, not part of the spec.
	chaotic := implicit
	chaotic.Chaos = &core.ChaosSchedule{DieAfterSubtrees: 1}
	if chaotic.Fingerprint() != implicit.Fingerprint() {
		t.Fatal("chaos schedule leaked into the job fingerprint")
	}
}

func TestRigKey(t *testing.T) {
	a := gpioJob(buggyFirmware, 1)
	b := gpioJob(fanoutFirmware, 4)
	b.Searcher = "dfs"
	if a.RigKey() != b.RigKey() {
		t.Fatal("same peripherals must share a rig key")
	}
	c := a
	c.FPGA = true
	if c.RigKey() == a.RigKey() {
		t.Fatal("FPGA job must not share the simulator rig key")
	}
}

func TestRunnerFindsBug(t *testing.T) {
	events := make(chan Event, 64)
	res, err := Runner{}.Run(context.Background(), gpioJob(buggyFirmware, 1),
		RunOptions{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 || res.Paths != 2 {
		t.Fatalf("bugs=%d paths=%d, want 1/2", len(res.Bugs), res.Paths)
	}
	if res.Bugs[0].Model["sym9_0"] != 0x42 {
		t.Fatalf("bug model: %v", res.Bugs[0].Model)
	}
	if res.Fingerprint == "" || res.JobFingerprint == "" {
		t.Fatal("missing fingerprints")
	}
	close(events)
	var kinds []EventKind
	for ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := map[EventKind]bool{EventStarted: false, EventBug: false, EventCompleted: false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("event %q not delivered (got %v)", k, kinds)
		}
	}
}

// TestRunnerMatchesDirectSetup: the Runner is a refactor, not a new
// engine — its result must fingerprint-match a hand-built core run.
func TestRunnerMatchesDirectSetup(t *testing.T) {
	res, err := Runner{}.Run(context.Background(), gpioJob(fanoutFirmware, 4), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	setup, err := gpioJob(fanoutFirmware, 4).SetupConfig()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := core.Setup(setup)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Fingerprint(rep); got != res.Fingerprint {
		t.Fatalf("runner diverged from direct setup: %s vs %s", res.Fingerprint, got)
	}
}

// TestRunnerPooledTargetIdentity: running on an injected pre-built
// target (the pool's warm path) must be result-identical to letting
// Setup build the target, including with hardware assertions armed.
func TestRunnerPooledTargetIdentity(t *testing.T) {
	job := gpioJob(fanoutFirmware, 4)
	job.Assertions = []target.HWAssertion{
		{Periph: "gpio0", Name: "sticky", Expr: "out == out"},
	}
	cold, err := Runner{}.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	pooled, err := target.NewSimulator("pool0", &vtime.Clock{},
		[]target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Runner{}.Run(context.Background(), job, RunOptions{Target: pooled})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Fingerprint != cold.Fingerprint {
		t.Fatalf("pooled run diverged: %s vs %s", warm.Fingerprint, cold.Fingerprint)
	}

	// Recycle and run again: a reused pool slot must stay identical.
	if err := pooled.Recycle(); err != nil {
		t.Fatal(err)
	}
	again, err := Runner{}.Run(context.Background(), job, RunOptions{Target: pooled})
	if err != nil {
		t.Fatal(err)
	}
	if again.Fingerprint != cold.Fingerprint {
		t.Fatalf("recycled run diverged: %s vs %s", again.Fingerprint, cold.Fingerprint)
	}
}

// TestRunnerJournalResume: kill a journaled job mid-campaign (chaos
// die gate), then resume it through the Runner and land on the clean
// fingerprint.
func TestRunnerJournalResume(t *testing.T) {
	job := gpioJob(fanoutFirmware, 4)
	clean, err := Runner{}.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "job.hsj")
	killed := job
	killed.Chaos = &core.ChaosSchedule{DieAfterSubtrees: 3}
	_, err = Runner{}.Run(context.Background(), killed, RunOptions{Journal: jpath})
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	cam, err := core.LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if cam.Complete || len(cam.Results) == 0 {
		t.Fatalf("journal state: complete=%v results=%d", cam.Complete, len(cam.Results))
	}
	resumed, err := Runner{}.Run(context.Background(), job, RunOptions{Resume: cam})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Fingerprint != clean.Fingerprint {
		t.Fatalf("resumed run diverged: %s vs %s", resumed.Fingerprint, clean.Fingerprint)
	}
	if resumed.Report.Recovery.ResumedSubtrees == 0 {
		t.Fatal("resume re-explored everything instead of replaying the journal")
	}
}
