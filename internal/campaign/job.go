// Package campaign turns one exploration run into a first-class,
// serializable object: a Job describes everything the analysis needs
// (firmware, peripherals, consistency mode, search strategy,
// budgets), a Runner executes it — locally or on a pooled target —
// streaming typed progress events, and a Result carries the
// wire-friendly outcome. The hardsnap CLI compiles its flags into a
// Job; the farm accepts Jobs over the network and schedules them
// across tenants.
package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// Job is a complete, self-contained specification of one campaign.
// The zero values of the optional fields mean "default": a Job that
// only sets Firmware is valid. Jobs serialize to JSON for submission
// to the farm; two Jobs with equal Fingerprints describe identical
// runs.
type Job struct {
	// Firmware is the full HS32 assembly source text (not a path — a
	// job must be self-contained on the wire).
	Firmware string `json:"firmware"`
	// FirmwareBase is the load address (default 0).
	FirmwareBase uint32 `json:"firmware_base,omitempty"`
	// Peripherals are placed on the bus in order (see core.Setup).
	Peripherals []target.PeriphConfig `json:"peripherals,omitempty"`
	// Assertions are hardware properties checked every cycle
	// (simulator target only).
	Assertions []target.HWAssertion `json:"assertions,omitempty"`
	// Mode is the consistency mode: hardsnap | naive-reboot |
	// naive-shared | record-replay (default hardsnap).
	Mode string `json:"mode,omitempty"`
	// Searcher is the state-selection heuristic: dfs | bfs |
	// round-robin | random | coverage (default dfs).
	Searcher string `json:"searcher,omitempty"`
	// FPGA hosts the peripherals on the FPGA target; Readback selects
	// readback snapshots over the scan chain.
	FPGA     bool `json:"fpga,omitempty"`
	Readback bool `json:"readback,omitempty"`
	// Concretize is the boundary concretization policy: one | all
	// (default one).
	Concretize string `json:"concretize,omitempty"`
	// DisableSolverOpt turns the solver query-optimization stack off.
	DisableSolverOpt bool `json:"disable_solver_opt,omitempty"`
	// MaxInstructions bounds retired instructions (default 2M, the
	// CLI's historical default).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// Workers is the exploration worker count (default 1; negative is
	// invalid — resolve "all CPUs" with core.AutoWorkers before
	// building the job, so the spec stays machine-independent).
	Workers int `json:"workers,omitempty"`
	// SeedFanout overrides the seed-phase fan-out width (0 = Workers
	// x 4; see core.Config.SeedFanout). Part of the job identity: the
	// decomposition shapes the deterministic merge schedule.
	SeedFanout int `json:"seed_fanout,omitempty"`
	// MaxVirtualTime / MaxSolverQueries bound the run (0 =
	// unlimited). The farm clamps these to the submitting tenant's
	// remaining budget.
	MaxVirtualTime   time.Duration `json:"max_virtual_time,omitempty"`
	MaxSolverQueries uint64        `json:"max_solver_queries,omitempty"`
	// KeepBugSnapshots retains per-bug hardware snapshots for crash
	// reports.
	KeepBugSnapshots bool `json:"keep_bug_snapshots,omitempty"`
	// Nodes lists remote dist workers (host:port) for distributed
	// exploration. The dist driver clears it before shipping the job
	// to a node (a node must not recursively fan out), so the job a
	// node validates is the single-machine spec.
	Nodes []string `json:"nodes,omitempty"`

	// Chaos injects deterministic failures (tests only; deliberately
	// not serialized, so a persisted job resumes undisturbed).
	Chaos *core.ChaosSchedule `json:"-"`
}

// withDefaults returns the job with every optional field resolved,
// the canonical form Fingerprint and SetupConfig operate on.
func (j Job) withDefaults() Job {
	if j.Mode == "" {
		j.Mode = "hardsnap"
	}
	if j.Searcher == "" {
		j.Searcher = "dfs"
	}
	if j.Concretize == "" {
		j.Concretize = "one"
	}
	if j.MaxInstructions == 0 {
		j.MaxInstructions = 2_000_000
	}
	if j.Workers == 0 {
		j.Workers = 1
	}
	return j
}

// Validate rejects jobs that cannot be compiled into a run.
func (j Job) Validate() error {
	j = j.withDefaults()
	if j.Firmware == "" {
		return fmt.Errorf("campaign: job has no firmware")
	}
	if _, err := ParseMode(j.Mode); err != nil {
		return err
	}
	if _, err := ParseSearcher(j.Searcher); err != nil {
		return err
	}
	if j.Concretize != "one" && j.Concretize != "all" {
		return fmt.Errorf("campaign: unknown concretization policy %q", j.Concretize)
	}
	if j.Workers < 0 {
		return fmt.Errorf("campaign: workers must be >= 0, got %d", j.Workers)
	}
	if len(j.Assertions) > 0 && j.FPGA {
		return fmt.Errorf("campaign: hardware assertions need the simulator target")
	}
	for _, p := range j.Peripherals {
		if p.Name == "" {
			return fmt.Errorf("campaign: peripheral with empty name")
		}
	}
	return nil
}

// Fingerprint content-addresses the job: the sha256 of its canonical
// (defaults-resolved) JSON encoding. Equal fingerprints mean
// identical runs — the farm uses this for job identity and result
// reuse.
func (j Job) Fingerprint() string {
	data, err := json.Marshal(j.withDefaults())
	if err != nil {
		// Job fields are all plain data; Marshal cannot fail.
		panic(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// RigKey hashes only the fields that shape the execution vehicle —
// peripherals, target kind, snapshot method. Jobs with equal RigKeys
// can run on the same pooled target.
func (j Job) RigKey() string {
	spec := struct {
		Periphs  []target.PeriphConfig
		FPGA     bool
		Readback bool
	}{j.Peripherals, j.FPGA, j.Readback}
	data, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// SetupConfig compiles the job into the core setup. Run-level
// concerns (journal path, resume state, injected target) are layered
// on by the Runner.
func (j Job) SetupConfig() (core.SetupConfig, error) {
	if err := j.Validate(); err != nil {
		return core.SetupConfig{}, err
	}
	j = j.withDefaults()
	mode, err := ParseMode(j.Mode)
	if err != nil {
		return core.SetupConfig{}, err
	}
	searcher, err := ParseSearcher(j.Searcher)
	if err != nil {
		return core.SetupConfig{}, err
	}
	pol := symexec.ConcretizeOne
	if j.Concretize == "all" {
		pol = symexec.ConcretizeAll
	}
	return core.SetupConfig{
		Firmware:     j.Firmware,
		FirmwareBase: j.FirmwareBase,
		Peripherals:  j.Peripherals,
		FPGA:         j.FPGA,
		Readback:     j.Readback,
		HWAssertions: j.Assertions,
		Exec:         symexec.Config{Policy: pol, DisableSolverOpt: j.DisableSolverOpt},
		Engine: core.Config{
			Mode:             mode,
			Searcher:         searcher,
			MaxInstructions:  j.MaxInstructions,
			Workers:          j.Workers,
			SeedFanout:       j.SeedFanout,
			MaxVirtualTime:   j.MaxVirtualTime,
			MaxSolverQueries: j.MaxSolverQueries,
			KeepBugSnapshots: j.KeepBugSnapshots,
			Nodes:            j.Nodes,
			Chaos:            j.Chaos,
		},
	}, nil
}

// ParseSearcher resolves a searcher name to its strategy.
func ParseSearcher(name string) (symexec.Searcher, error) {
	switch name {
	case "dfs":
		return symexec.DFS{}, nil
	case "bfs":
		return symexec.BFS{}, nil
	case "round-robin":
		return &symexec.RoundRobin{}, nil
	case "random":
		return symexec.NewRandom(1), nil
	case "coverage":
		return symexec.NewCoverage(), nil
	}
	return nil, fmt.Errorf("campaign: unknown searcher %q", name)
}

// ParseMode resolves a consistency-mode name.
func ParseMode(name string) (core.Mode, error) {
	switch name {
	case "hardsnap":
		return core.ModeHardSnap, nil
	case "naive-reboot":
		return core.ModeNaiveReboot, nil
	case "naive-shared":
		return core.ModeNaiveShared, nil
	case "record-replay":
		return core.ModeRecordReplay, nil
	}
	return 0, fmt.Errorf("campaign: unknown mode %q", name)
}
