// Package rtl elaborates a parsed Verilog design into a flat netlist
// suitable for cycle-accurate simulation: the module hierarchy is
// flattened (instance signals get hierarchical names), parameters are
// resolved and constant-folded, every signal receives a width, and
// combinational logic is scheduled topologically. This package is the
// Go equivalent of Verilator's elaboration stage.
package rtl

import (
	"fmt"

	"hardsnap/internal/verilog"
)

// Signal is one elaborated net or register.
type Signal struct {
	ID    int
	Name  string // hierarchical, e.g. "u_uart.state"
	Width uint
	// IsReg marks state elements (written by sequential blocks).
	IsReg bool
	// IsInput/IsOutput mark top-level ports.
	IsInput  bool
	IsOutput bool
}

// Memory is an elaborated unpacked array (reg [W-1:0] m [0:D-1]).
type Memory struct {
	ID    int
	Name  string
	Width uint
	Depth uint
}

// Scope resolves local identifiers of one elaborated module instance.
type Scope struct {
	prefix   string
	params   map[string]uint64
	signals  map[string]*Signal
	memories map[string]*Memory
}

// Param returns a parameter value and whether it exists.
func (s *Scope) Param(name string) (uint64, bool) {
	v, ok := s.params[name]
	return v, ok
}

// Signal resolves a local signal name.
func (s *Scope) Signal(name string) (*Signal, bool) {
	sig, ok := s.signals[name]
	return sig, ok
}

// Memory resolves a local memory name.
func (s *Scope) Memory(name string) (*Memory, bool) {
	m, ok := s.memories[name]
	return m, ok
}

// EvalScope builds a read-only resolution scope over the whole
// elaborated design: every signal and memory is visible under its
// hierarchical name (and, for the top level, its plain name). Used to
// evaluate user-written property expressions against a State.
func (d *Design) EvalScope() *Scope {
	s := &Scope{
		params:   map[string]uint64{},
		signals:  make(map[string]*Signal, len(d.Signals)),
		memories: make(map[string]*Memory, len(d.Memories)),
	}
	for _, sig := range d.Signals {
		s.signals[sig.Name] = sig
	}
	for _, m := range d.Memories {
		s.memories[m.Name] = m
	}
	return s
}

// CombNode is one schedulable unit of combinational logic: either a
// continuous assignment or a whole always @(*) block.
type CombNode struct {
	// Assign is set for continuous assignments (and port bindings).
	Assign *verilog.Assign
	// Block is set for always @(*) bodies.
	Block verilog.Stmt
	// Scope resolves identifiers inside the node.
	Scope *Scope

	reads  map[int]bool
	writes map[int]bool
}

// SeqBlock is an elaborated always @(posedge clk) block.
type SeqBlock struct {
	Body  verilog.Stmt
	Scope *Scope
}

// Design is a fully elaborated, flattened netlist.
type Design struct {
	Top string
	// Clock is the top-level input driving every sequential block.
	Clock *Signal

	Signals  []*Signal
	Memories []*Memory

	Inputs  []*Signal
	Outputs []*Signal

	// Combs are in topological evaluation order.
	Combs []*CombNode
	Seqs  []*SeqBlock

	byName    map[string]*Signal
	memByName map[string]*Memory
}

// SignalByName returns the signal with the given hierarchical name.
func (d *Design) SignalByName(name string) (*Signal, bool) {
	s, ok := d.byName[name]
	return s, ok
}

// MemoryByName returns the memory with the given hierarchical name.
func (d *Design) MemoryByName(name string) (*Memory, bool) {
	m, ok := d.memByName[name]
	return m, ok
}

// Regs returns all state-holding signals in declaration order.
func (d *Design) Regs() []*Signal {
	var regs []*Signal
	for _, s := range d.Signals {
		if s.IsReg {
			regs = append(regs, s)
		}
	}
	return regs
}

// StateBits counts the total number of state bits (registers plus
// memories); this is the scan-chain length of the design.
func (d *Design) StateBits() uint {
	var n uint
	for _, s := range d.Signals {
		if s.IsReg {
			n += s.Width
		}
	}
	for _, m := range d.Memories {
		n += m.Width * m.Depth
	}
	return n
}

// Error reports an elaboration failure.
type Error struct {
	Module string
	Line   int
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("rtl: module %s line %d: %s", e.Module, e.Line, e.Msg)
}
