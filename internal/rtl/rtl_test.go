package rtl

import (
	"strings"
	"testing"

	"hardsnap/internal/verilog"
)

func elab(t *testing.T, src, top string, overrides map[string]uint64) *Design {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Elaborate(f, top, overrides)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

const counterSrc = `
module counter #(parameter WIDTH = 8) (
  input wire clk,
  input wire rst,
  input wire en,
  output reg [WIDTH-1:0] count,
  output wire msb
);
  assign msb = count[WIDTH-1];
  always @(posedge clk) begin
    if (rst)
      count <= 0;
    else if (en)
      count <= count + 1;
  end
endmodule
`

func TestElaborateCounter(t *testing.T) {
	d := elab(t, counterSrc, "counter", nil)
	if d.Clock == nil || d.Clock.Name != "clk" {
		t.Fatalf("clock: %+v", d.Clock)
	}
	sig, ok := d.SignalByName("count")
	if !ok || sig.Width != 8 || !sig.IsReg || !sig.IsOutput {
		t.Fatalf("count: %+v", sig)
	}
	if got := d.StateBits(); got != 8 {
		t.Fatalf("state bits: %d", got)
	}
	if len(d.Inputs) != 3 || len(d.Outputs) != 2 {
		t.Fatalf("ports: %d in, %d out", len(d.Inputs), len(d.Outputs))
	}
}

func TestParameterOverride(t *testing.T) {
	d := elab(t, counterSrc, "counter", map[string]uint64{"WIDTH": 16})
	sig, _ := d.SignalByName("count")
	if sig.Width != 16 {
		t.Fatalf("width: %d", sig.Width)
	}
}

func TestHierarchy(t *testing.T) {
	src := counterSrc + `
module top (
  input wire clk,
  input wire rst,
  output wire [15:0] value,
  output wire flag
);
  counter #(.WIDTH(16)) u0 (.clk(clk), .rst(rst), .en(1'b1), .count(value), .msb(flag));
endmodule
`
	d := elab(t, src, "top", nil)
	if _, ok := d.SignalByName("u0.count"); !ok {
		t.Fatal("missing hierarchical signal u0.count")
	}
	if d.Clock == nil || d.Clock.Name != "clk" {
		t.Fatalf("clock: %+v", d.Clock)
	}
	if got := d.StateBits(); got != 16 {
		t.Fatalf("state bits: %d", got)
	}
}

func TestMemoryElaboration(t *testing.T) {
	src := `
module fifo (
  input wire clk,
  input wire push,
  input wire [7:0] din,
  output wire [7:0] head
);
  reg [7:0] mem [0:15];
  reg [3:0] wptr;
  assign head = mem[0];
  always @(posedge clk) begin
    if (push) begin
      mem[wptr] <= din;
      wptr <= wptr + 1;
    end
  end
endmodule
`
	d := elab(t, src, "fifo", nil)
	m, ok := d.MemoryByName("mem")
	if !ok || m.Width != 8 || m.Depth != 16 {
		t.Fatalf("mem: %+v", m)
	}
	if got := d.StateBits(); got != 8*16+4 {
		t.Fatalf("state bits: %d", got)
	}
}

func TestCombLoopRejected(t *testing.T) {
	src := `
module loopy (input wire clk, output wire a);
  wire b;
  assign a = ~b;
  assign b = ~a;
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "loopy", nil); err == nil ||
		!strings.Contains(err.Error(), "combinational loop") {
		t.Fatalf("want combinational loop error, got %v", err)
	}
}

func TestMultipleDriversRejected(t *testing.T) {
	src := `
module dd (input wire clk, input wire x, output wire y);
  assign y = x;
  assign y = ~x;
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "dd", nil); err == nil ||
		!strings.Contains(err.Error(), "multiple comb") {
		t.Fatalf("want multiple-driver error, got %v", err)
	}
}

func TestBlockingInSeqRejected(t *testing.T) {
	src := `
module bad (input wire clk, output reg q);
  always @(posedge clk) q = 1;
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "bad", nil); err == nil {
		t.Fatal("blocking assignment in seq block must be rejected")
	}
}

func TestMultiClockRejected(t *testing.T) {
	src := `
module mc (input wire clk, input wire clk2, output reg a, output reg b);
  always @(posedge clk) a <= 1;
  always @(posedge clk2) b <= 1;
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "mc", nil); err == nil ||
		!strings.Contains(err.Error(), "clock") {
		t.Fatalf("want clock-domain error, got %v", err)
	}
}

func TestUnknownModuleRejected(t *testing.T) {
	src := `
module top (input wire clk);
  ghost u0 (.clk(clk));
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "top", nil); err == nil {
		t.Fatal("unknown module must be rejected")
	}
}

func TestUnknownPortRejected(t *testing.T) {
	src := counterSrc + `
module top (input wire clk);
  counter u0 (.clk(clk), .bogus(clk));
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "top", nil); err == nil {
		t.Fatal("unknown port must be rejected")
	}
}

func TestLocalparamAndExpressionWidths(t *testing.T) {
	src := `
module w (input wire clk, input wire [7:0] a, output wire [15:0] out);
  localparam SHIFT = 8;
  assign out = {a, 8'h00} >> SHIFT << (SHIFT - 8);
endmodule
`
	d := elab(t, src, "w", nil)
	sig, _ := d.SignalByName("out")
	if sig.Width != 16 {
		t.Fatalf("out width %d", sig.Width)
	}
}
