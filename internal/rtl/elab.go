package rtl

import (
	"fmt"

	"hardsnap/internal/verilog"
)

// Elaborate flattens the design rooted at module top. Parameter
// overrides apply to the top module; instances apply their own
// overrides.
func Elaborate(file *verilog.SourceFile, top string, overrides map[string]uint64) (*Design, error) {
	mod := file.FindModule(top)
	if mod == nil {
		return nil, fmt.Errorf("rtl: top module %q not found", top)
	}
	e := &elaborator{
		file: file,
		d: &Design{
			Top:       top,
			byName:    make(map[string]*Signal),
			memByName: make(map[string]*Memory),
		},
	}
	scope, err := e.instantiate(mod, "", overrides, true)
	if err != nil {
		return nil, err
	}
	_ = scope
	if err := e.resolveClock(); err != nil {
		return nil, err
	}
	if err := e.checkDrivers(); err != nil {
		return nil, err
	}
	if err := e.schedule(); err != nil {
		return nil, err
	}
	return e.d, nil
}

type elaborator struct {
	file *verilog.SourceFile
	d    *Design
	// seqClocks records, per sequential block, the resolved clock signal.
	seqClocks []*Signal
	depth     int
}

const maxHierarchyDepth = 64

func (e *elaborator) errf(mod string, line int, format string, args ...any) error {
	return &Error{Module: mod, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (e *elaborator) newSignal(name string, width uint) *Signal {
	s := &Signal{ID: len(e.d.Signals), Name: name, Width: width}
	e.d.Signals = append(e.d.Signals, s)
	e.d.byName[name] = s
	return s
}

func (e *elaborator) newMemory(name string, width, depth uint) *Memory {
	m := &Memory{ID: len(e.d.Memories), Name: name, Width: width, Depth: depth}
	e.d.Memories = append(e.d.Memories, m)
	e.d.memByName[name] = m
	return m
}

// instantiate elaborates one module instance under the given
// hierarchical prefix ("" for top).
func (e *elaborator) instantiate(mod *verilog.Module, prefix string, overrides map[string]uint64, isTop bool) (*Scope, error) {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > maxHierarchyDepth {
		return nil, e.errf(mod.Name, mod.Line, "hierarchy deeper than %d (recursive instantiation?)", maxHierarchyDepth)
	}

	scope := &Scope{
		prefix:   prefix,
		params:   make(map[string]uint64),
		signals:  make(map[string]*Signal),
		memories: make(map[string]*Memory),
	}
	full := func(name string) string {
		if prefix == "" {
			return name
		}
		return prefix + "." + name
	}

	// Resolve parameters (header first, then body params) in order.
	resolveParam := func(p *verilog.Param) error {
		if v, ok := overrides[p.Name]; ok && !p.IsLocal {
			scope.params[p.Name] = v
			return nil
		}
		v, err := e.constEval(p.Value, scope, mod.Name)
		if err != nil {
			return err
		}
		scope.params[p.Name] = v
		return nil
	}
	for _, p := range mod.Params {
		if err := resolveParam(p); err != nil {
			return nil, err
		}
	}

	declWidth := func(msb, lsb verilog.Expr, line int) (uint, error) {
		if msb == nil {
			return 1, nil
		}
		hi, err := e.constEval(msb, scope, mod.Name)
		if err != nil {
			return 0, err
		}
		lo, err := e.constEval(lsb, scope, mod.Name)
		if err != nil {
			return 0, err
		}
		if lo != 0 {
			return 0, e.errf(mod.Name, line, "only [N:0] ranges are supported (got [%d:%d])", hi, lo)
		}
		w := uint(hi) + 1
		if w == 0 || w > 64 {
			return 0, e.errf(mod.Name, line, "width %d out of range (1..64)", w)
		}
		return w, nil
	}

	// Ports become signals.
	for _, port := range mod.Ports {
		if port.Dir == verilog.DirInout {
			return nil, e.errf(mod.Name, port.Line, "inout ports are not supported")
		}
		w, err := declWidth(port.MSB, port.LSB, port.Line)
		if err != nil {
			return nil, err
		}
		sig := e.newSignal(full(port.Name), w)
		sig.IsReg = false // even "output reg" is comb-or-seq driven; IsReg set by seq scan
		if isTop {
			if port.Dir == verilog.DirInput {
				sig.IsInput = true
				e.d.Inputs = append(e.d.Inputs, sig)
			} else {
				sig.IsOutput = true
				e.d.Outputs = append(e.d.Outputs, sig)
			}
		}
		scope.signals[port.Name] = sig
	}

	// First pass over items: declarations (so instances and always
	// blocks can reference signals declared later).
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.ParamItem:
			if err := resolveParam(it.Param); err != nil {
				return nil, err
			}
		case *verilog.NetDecl:
			w, err := declWidth(it.MSB, it.LSB, it.Line)
			if err != nil {
				return nil, err
			}
			for _, dn := range it.Names {
				if _, dup := scope.signals[dn.Name]; dup {
					return nil, e.errf(mod.Name, it.Line, "signal %q redeclared", dn.Name)
				}
				if dn.ArrMSB != nil {
					if !it.IsReg {
						return nil, e.errf(mod.Name, it.Line, "memory %q must be a reg", dn.Name)
					}
					if dn.Init != nil {
						return nil, e.errf(mod.Name, it.Line, "memory %q cannot have an initializer", dn.Name)
					}
					hi, err := e.constEval(dn.ArrMSB, scope, mod.Name)
					if err != nil {
						return nil, err
					}
					lo, err := e.constEval(dn.ArrLSB, scope, mod.Name)
					if err != nil {
						return nil, err
					}
					if hi < lo {
						hi, lo = lo, hi
					}
					if lo != 0 {
						return nil, e.errf(mod.Name, it.Line, "memory %q must use [0:N] bounds", dn.Name)
					}
					depth := uint(hi) + 1
					if depth == 0 || depth > 1<<20 {
						return nil, e.errf(mod.Name, it.Line, "memory %q depth %d out of range", dn.Name, depth)
					}
					scope.memories[dn.Name] = e.newMemory(full(dn.Name), w, depth)
					continue
				}
				scope.signals[dn.Name] = e.newSignal(full(dn.Name), w)
			}
		}
	}

	// Second pass: behaviour.
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.NetDecl:
			// Wire initializers become continuous assignments.
			for _, dn := range it.Names {
				if dn.Init == nil {
					continue
				}
				if it.IsReg {
					return nil, e.errf(mod.Name, it.Line, "reg initializers are not supported (use a reset)")
				}
				e.d.Combs = append(e.d.Combs, &CombNode{
					Assign: &verilog.Assign{
						LHS:  &verilog.Ident{Name: dn.Name},
						RHS:  dn.Init,
						Line: it.Line,
					},
					Scope: scope,
				})
			}

		case *verilog.Assign:
			e.d.Combs = append(e.d.Combs, &CombNode{Assign: it, Scope: scope})

		case *verilog.AlwaysComb:
			e.d.Combs = append(e.d.Combs, &CombNode{Block: it.Body, Scope: scope})

		case *verilog.AlwaysFF:
			clk, ok := scope.signals[it.Clock]
			if !ok {
				return nil, e.errf(mod.Name, it.Line, "unknown clock signal %q", it.Clock)
			}
			e.d.Seqs = append(e.d.Seqs, &SeqBlock{Body: it.Body, Scope: scope})
			e.seqClocks = append(e.seqClocks, clk)
			// Every nonblocking target becomes a register.
			if err := e.markRegs(it.Body, scope, mod.Name, it.Line); err != nil {
				return nil, err
			}

		case *verilog.Instance:
			child := e.file.FindModule(it.ModuleName)
			if child == nil {
				return nil, e.errf(mod.Name, it.Line, "unknown module %q", it.ModuleName)
			}
			childOverrides := make(map[string]uint64, len(it.ParamOverrides))
			for name, expr := range it.ParamOverrides {
				v, err := e.constEval(expr, scope, mod.Name)
				if err != nil {
					return nil, err
				}
				childOverrides[name] = v
			}
			childScope, err := e.instantiate(child, full(it.Name), childOverrides, false)
			if err != nil {
				return nil, err
			}
			if err := e.connectPorts(it, child, scope, childScope, mod.Name); err != nil {
				return nil, err
			}
		}
	}
	return scope, nil
}

// connectPorts binds instance ports to parent expressions via
// synthetic continuous assignments.
func (e *elaborator) connectPorts(inst *verilog.Instance, child *verilog.Module, parent, childScope *Scope, parentMod string) error {
	seen := make(map[string]bool, len(inst.Conns))
	for name := range inst.Conns {
		seen[name] = false
	}
	for _, port := range child.Ports {
		actual, connected := inst.Conns[port.Name]
		if connected {
			seen[port.Name] = true
		}
		if !connected || actual == nil {
			// Unconnected input reads as constant zero; unconnected
			// outputs simply float (nothing reads them).
			if port.Dir == verilog.DirInput {
				e.d.Combs = append(e.d.Combs, &CombNode{
					Assign: &verilog.Assign{
						LHS: &verilog.Ident{Name: port.Name},
						RHS: &verilog.Number{Value: 0, Width: 1},
					},
					Scope: childScope,
				})
			}
			continue
		}
		switch port.Dir {
		case verilog.DirInput:
			// child.port = parent actual. The LHS gets a private alias
			// so a parent signal with the same name as the port (the
			// common ".clk(clk)" case) still resolves to the parent.
			childSig, ok := childScope.signals[port.Name]
			if !ok {
				return e.errf(parentMod, inst.Line, "internal: missing child port %q", port.Name)
			}
			lhsName := "\x00in:" + port.Name
			sigMap := make(map[string]*Signal, len(parent.signals)+1)
			for k, v := range parent.signals {
				sigMap[k] = v
			}
			sigMap[lhsName] = childSig
			e.d.Combs = append(e.d.Combs, &CombNode{
				Assign: &verilog.Assign{
					LHS: &verilog.Ident{Name: lhsName},
					RHS: actual,
				},
				Scope: &Scope{
					prefix:   parent.prefix,
					params:   parent.params,
					signals:  sigMap,
					memories: parent.memories,
				},
			})
		case verilog.DirOutput:
			// parent actual = child.port. Actual must be an lvalue.
			if !isLValue(actual) {
				return e.errf(parentMod, inst.Line, "output port .%s must connect to an lvalue", port.Name)
			}
			childSig, ok := childScope.signals[port.Name]
			if !ok {
				return e.errf(parentMod, inst.Line, "internal: missing child port %q", port.Name)
			}
			rhsName := "\x00out:" + port.Name // private alias, cannot clash
			sigMap := make(map[string]*Signal, len(parent.signals)+1)
			for k, v := range parent.signals {
				sigMap[k] = v
			}
			sigMap[rhsName] = childSig
			e.d.Combs = append(e.d.Combs, &CombNode{
				Assign: &verilog.Assign{
					LHS: actual,
					RHS: &verilog.Ident{Name: rhsName},
				},
				Scope: &Scope{
					prefix:   parent.prefix,
					params:   parent.params,
					signals:  sigMap,
					memories: parent.memories,
				},
			})
		default:
			return e.errf(parentMod, inst.Line, "unsupported port direction on .%s", port.Name)
		}
	}
	for name, ok := range seen {
		if !ok {
			return e.errf(parentMod, inst.Line, "connection to unknown port .%s", name)
		}
	}
	return nil
}

func isLValue(e verilog.Expr) bool {
	switch x := e.(type) {
	case *verilog.Ident:
		return true
	case *verilog.Index:
		return isLValue(x.X)
	case *verilog.RangeSel:
		return isLValue(x.X)
	case *verilog.Concat:
		for _, p := range x.Parts {
			if !isLValue(p) {
				return false
			}
		}
		return true
	}
	return false
}

// markRegs walks a sequential body and flags every nonblocking target
// as a register (or validates memory writes).
func (e *elaborator) markRegs(s verilog.Stmt, scope *Scope, mod string, line int) error {
	switch st := s.(type) {
	case *verilog.Block:
		for _, sub := range st.Stmts {
			if err := e.markRegs(sub, scope, mod, line); err != nil {
				return err
			}
		}
	case *verilog.If:
		if err := e.markRegs(st.Then, scope, mod, line); err != nil {
			return err
		}
		if st.Else != nil {
			return e.markRegs(st.Else, scope, mod, line)
		}
	case *verilog.Case:
		for _, item := range st.Items {
			if err := e.markRegs(item.Body, scope, mod, line); err != nil {
				return err
			}
		}
	case *verilog.NonBlocking:
		return e.markRegTarget(st.LHS, scope, mod, line)
	case *verilog.Blocking:
		return e.errf(mod, line, "blocking assignment inside always @(posedge); use <=")
	}
	return nil
}

func (e *elaborator) markRegTarget(lhs verilog.Expr, scope *Scope, mod string, line int) error {
	switch x := lhs.(type) {
	case *verilog.Ident:
		sig, ok := scope.signals[x.Name]
		if !ok {
			if _, isMem := scope.memories[x.Name]; isMem {
				return e.errf(mod, line, "memory %q must be written element-wise", x.Name)
			}
			return e.errf(mod, line, "unknown signal %q", x.Name)
		}
		sig.IsReg = true
		return nil
	case *verilog.Index:
		base, ok := x.X.(*verilog.Ident)
		if !ok {
			return e.errf(mod, line, "unsupported nested index in sequential lvalue")
		}
		if _, isMem := scope.memories[base.Name]; isMem {
			return nil // memory element write
		}
		return e.markRegTarget(base, scope, mod, line)
	case *verilog.RangeSel:
		return e.markRegTarget(x.X, scope, mod, line)
	case *verilog.Concat:
		for _, p := range x.Parts {
			if err := e.markRegTarget(p, scope, mod, line); err != nil {
				return err
			}
		}
		return nil
	}
	return e.errf(mod, line, "unsupported sequential lvalue")
}

// resolveClock checks that all sequential blocks share one top-level
// clock.
func (e *elaborator) resolveClock() error {
	if len(e.seqClocks) == 0 {
		return nil
	}
	// All clock signals must ultimately be the same top input. We
	// accept clocks that are direct port connections: the comb nodes
	// introduced by connectPorts alias child clk to the parent's. For
	// simplicity we require each seq clock to resolve, through alias
	// nodes, to a top-level input.
	aliases := make(map[int]int) // child signal ID -> parent signal ID
	for _, c := range e.d.Combs {
		if c.Assign == nil {
			continue
		}
		lhs, ok := c.Assign.LHS.(*verilog.Ident)
		if !ok {
			continue
		}
		rhs, ok := c.Assign.RHS.(*verilog.Ident)
		if !ok {
			continue
		}
		l, lok := c.Scope.signals[lhs.Name]
		r, rok := c.Scope.signals[rhs.Name]
		if lok && rok {
			aliases[l.ID] = r.ID
		}
	}
	root := func(s *Signal) *Signal {
		id := s.ID
		for i := 0; i < maxHierarchyDepth; i++ {
			next, ok := aliases[id]
			if !ok {
				break
			}
			id = next
		}
		return e.d.Signals[id]
	}
	var clock *Signal
	for _, c := range e.seqClocks {
		r := root(c)
		if clock == nil {
			clock = r
			continue
		}
		if r != clock {
			return fmt.Errorf("rtl: multiple clock domains (%s vs %s); single-clock designs only", clock.Name, r.Name)
		}
	}
	if clock != nil && !clock.IsInput {
		return fmt.Errorf("rtl: clock %s must be a top-level input", clock.Name)
	}
	e.d.Clock = clock
	return nil
}
