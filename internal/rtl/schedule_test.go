package rtl

import (
	"fmt"
	"testing"
)

// TestScheduleDeterministic pins that elaborating the same source
// repeatedly yields an identical comb evaluation order. The schedule
// has many valid topological orders; Kahn tie-breaks are decided by
// edge insertion order, which used to follow map iteration — every
// process could evaluate comb logic in a different (valid) order,
// undermining the repo's fingerprint-identity gates. The workload is
// a diamond fan-out wide enough that ties are plentiful.
func TestScheduleDeterministic(t *testing.T) {
	src := `
module dia (
  input wire clk,
  input wire [7:0] a
);
  wire [7:0] s = a ^ 8'h5a;
`
	// 12 independent mid-level wires (all tie candidates), then a
	// reduction layer reading several of them.
	for i := 0; i < 12; i++ {
		src += fmt.Sprintf("  wire [7:0] m%d = s + %d;\n", i, i)
	}
	src += "  wire [7:0] z0 = m0 ^ m5 ^ m11;\n"
	src += "  wire [7:0] z1 = m3 + m7 + m9;\n"
	src += "  wire [7:0] z2 = z0 & z1 & m1;\n"
	src += "endmodule\n"

	orderOf := func() []string {
		d := elab(t, src, "dia", nil)
		names := make([]string, 0, len(d.Combs))
		for _, c := range d.Combs {
			if w := c.Writes(); len(w) > 0 {
				names = append(names, d.Signals[w[0]].Name)
			}
		}
		return names
	}

	want := orderOf()
	for i := 0; i < 20; i++ {
		got := orderOf()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d comb nodes, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: comb order diverged at %d: %v vs %v", i, j, got, want)
			}
		}
	}
}
