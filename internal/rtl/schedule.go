package rtl

import (
	"fmt"
	"sort"

	"hardsnap/internal/verilog"
)

// collectReads appends the IDs of signals read by an expression.
func collectReads(x verilog.Expr, scope *Scope, out map[int]bool) {
	switch v := x.(type) {
	case *verilog.Number:
	case *verilog.Ident:
		if s, ok := scope.signals[v.Name]; ok {
			out[s.ID] = true
		}
	case *verilog.Unary:
		collectReads(v.X, scope, out)
	case *verilog.Binary:
		collectReads(v.X, scope, out)
		collectReads(v.Y, scope, out)
	case *verilog.Ternary:
		collectReads(v.Cond, scope, out)
		collectReads(v.Then, scope, out)
		collectReads(v.Else, scope, out)
	case *verilog.Index:
		// Memory reads depend only on the index (memory contents are
		// sequential state); bit-selects depend on both.
		if base, ok := v.X.(*verilog.Ident); ok {
			if _, isMem := scope.memories[base.Name]; isMem {
				collectReads(v.Idx, scope, out)
				return
			}
		}
		collectReads(v.X, scope, out)
		collectReads(v.Idx, scope, out)
	case *verilog.RangeSel:
		collectReads(v.X, scope, out)
	case *verilog.Concat:
		for _, p := range v.Parts {
			collectReads(p, scope, out)
		}
	case *verilog.Repeat:
		collectReads(v.X, scope, out)
	}
}

// collectWrites appends the IDs of signals written by an lvalue, and
// records reads contributed by dynamic indices. Partial writes
// (bit/part select) also count as reads of the target.
func collectWrites(lhs verilog.Expr, scope *Scope, writes, reads map[int]bool) error {
	switch v := lhs.(type) {
	case *verilog.Ident:
		if s, ok := scope.signals[v.Name]; ok {
			writes[s.ID] = true
			return nil
		}
		if _, isMem := scope.memories[v.Name]; isMem {
			return fmt.Errorf("rtl: memory %q written without index", v.Name)
		}
		return fmt.Errorf("rtl: unknown lvalue %q", v.Name)
	case *verilog.Index:
		if base, ok := v.X.(*verilog.Ident); ok {
			if _, isMem := scope.memories[base.Name]; isMem {
				collectReads(v.Idx, scope, reads)
				return nil
			}
			if s, ok := scope.signals[base.Name]; ok {
				writes[s.ID] = true
				reads[s.ID] = true // read-modify-write
				collectReads(v.Idx, scope, reads)
				return nil
			}
		}
		return fmt.Errorf("rtl: unsupported indexed lvalue")
	case *verilog.RangeSel:
		base, ok := v.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("rtl: unsupported part-select lvalue")
		}
		s, ok := scope.signals[base.Name]
		if !ok {
			return fmt.Errorf("rtl: unknown lvalue %q", base.Name)
		}
		writes[s.ID] = true
		reads[s.ID] = true
		return nil
	case *verilog.Concat:
		for _, p := range v.Parts {
			if err := collectWrites(p, scope, writes, reads); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("rtl: unsupported lvalue %T", lhs)
}

// analyzeStmt collects reads/writes of a procedural statement.
func analyzeStmt(s verilog.Stmt, scope *Scope, writes, reads map[int]bool) error {
	switch st := s.(type) {
	case *verilog.Block:
		for _, sub := range st.Stmts {
			if err := analyzeStmt(sub, scope, writes, reads); err != nil {
				return err
			}
		}
	case *verilog.If:
		collectReads(st.Cond, scope, reads)
		if err := analyzeStmt(st.Then, scope, writes, reads); err != nil {
			return err
		}
		if st.Else != nil {
			return analyzeStmt(st.Else, scope, writes, reads)
		}
	case *verilog.Case:
		collectReads(st.Subject, scope, reads)
		for _, item := range st.Items {
			for _, l := range item.Labels {
				collectReads(l, scope, reads)
			}
			if err := analyzeStmt(item.Body, scope, writes, reads); err != nil {
				return err
			}
		}
	case *verilog.NonBlocking:
		collectReads(st.RHS, scope, reads)
		return collectWrites(st.LHS, scope, writes, reads)
	case *verilog.Blocking:
		collectReads(st.RHS, scope, reads)
		return collectWrites(st.LHS, scope, writes, reads)
	}
	return nil
}

func (c *CombNode) analyze() error {
	c.reads = make(map[int]bool)
	c.writes = make(map[int]bool)
	if c.Assign != nil {
		collectReads(c.Assign.RHS, c.Scope, c.reads)
		return collectWrites(c.Assign.LHS, c.Scope, c.writes, c.reads)
	}
	return analyzeStmt(c.Block, c.Scope, c.writes, c.reads)
}

// Reads returns the IDs of signals the node depends on.
func (c *CombNode) Reads() []int { return sortedIDs(c.reads) }

// Writes returns the IDs of signals the node drives.
func (c *CombNode) Writes() []int { return sortedIDs(c.writes) }

func sortedIDs(m map[int]bool) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// checkDrivers verifies single-driver rules: a signal is driven by at
// most one comb node or sequential blocks (not both), and inputs are
// never driven.
func (e *elaborator) checkDrivers() error {
	combDriver := make(map[int]int) // signal -> comb node index
	for i, c := range e.d.Combs {
		if err := c.analyze(); err != nil {
			return err
		}
		for id := range c.writes {
			if prev, dup := combDriver[id]; dup {
				// Multiple partial drivers of the same signal from the
				// same always block were already merged (same node), so
				// this is a genuine conflict.
				return fmt.Errorf("rtl: signal %s driven by multiple comb nodes (%d and %d)",
					e.d.Signals[id].Name, prev, i)
			}
			combDriver[id] = i
			if e.d.Signals[id].IsInput {
				return fmt.Errorf("rtl: top-level input %s cannot be driven", e.d.Signals[id].Name)
			}
		}
	}
	for _, s := range e.d.Signals {
		if !s.IsReg {
			continue
		}
		if i, both := combDriver[s.ID]; both {
			return fmt.Errorf("rtl: signal %s driven both sequentially and by comb node %d", s.Name, i)
		}
		if s.IsInput {
			return fmt.Errorf("rtl: input %s written by a sequential block", s.Name)
		}
	}
	return nil
}

// schedule topologically sorts comb nodes so that every node runs
// after the nodes producing its inputs. Register and input reads do
// not create edges. A cycle is a combinational loop and is rejected.
func (e *elaborator) schedule() error {
	n := len(e.d.Combs)
	producer := make(map[int]int) // signal ID -> producing node
	for i, c := range e.d.Combs {
		for id := range c.writes {
			producer[id] = i
		}
	}
	adj := make([][]int, n)
	indeg := make([]int, n)
	for i, c := range e.d.Combs {
		seen := make(map[int]bool)
		// Iterate reads in sorted ID order, not map order: edge
		// insertion order decides Kahn tie-breaks, and elaborating
		// the same source must yield the same comb evaluation order
		// in every process (the repo gates on fingerprint identity).
		for _, id := range c.Reads() {
			sig := e.d.Signals[id]
			if sig.IsReg || sig.IsInput {
				continue
			}
			p, ok := producer[id]
			if !ok || p == i || seen[p] {
				continue
			}
			seen[p] = true
			adj[p] = append(adj[p], i)
			indeg[i]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]*CombNode, 0, n)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, e.d.Combs[i])
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != n {
		// Report one signal on the cycle for diagnosis
		// (deterministically: the lowest-ID write of the first stuck
		// node).
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				var name string
				if ids := e.d.Combs[i].Writes(); len(ids) > 0 {
					name = e.d.Signals[ids[0]].Name
				}
				return fmt.Errorf("rtl: combinational loop involving %s", name)
			}
		}
		return fmt.Errorf("rtl: combinational loop detected")
	}
	e.d.Combs = order
	return nil
}
