package rtl

import (
	"fmt"

	"hardsnap/internal/verilog"
)

// mask returns a bitmask with the w low bits set.
func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// constEval evaluates a parameter/width expression that must be
// compile-time constant.
func (e *elaborator) constEval(x verilog.Expr, scope *Scope, mod string) (uint64, error) {
	switch v := x.(type) {
	case *verilog.Number:
		return v.Value, nil
	case *verilog.Ident:
		if p, ok := scope.params[v.Name]; ok {
			return p, nil
		}
		return 0, e.errf(mod, 0, "identifier %q is not a constant parameter", v.Name)
	case *verilog.Unary:
		a, err := e.constEval(v.X, scope, mod)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -a, nil
		case "~":
			return ^a, nil
		case "!":
			if a == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, e.errf(mod, 0, "operator %q not allowed in constant expression", v.Op)
	case *verilog.Binary:
		a, err := e.constEval(v.X, scope, mod)
		if err != nil {
			return 0, err
		}
		b, err := e.constEval(v.Y, scope, mod)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, e.errf(mod, 0, "division by zero in constant expression")
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, e.errf(mod, 0, "modulo by zero in constant expression")
			}
			return a % b, nil
		case "<<":
			if b >= 64 {
				return 0, nil
			}
			return a << b, nil
		case ">>":
			if b >= 64 {
				return 0, nil
			}
			return a >> b, nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		case "==":
			return b2u(a == b), nil
		case "!=":
			return b2u(a != b), nil
		case "<":
			return b2u(a < b), nil
		case "<=":
			return b2u(a <= b), nil
		case ">":
			return b2u(a > b), nil
		case ">=":
			return b2u(a >= b), nil
		}
		return 0, e.errf(mod, 0, "operator %q not allowed in constant expression", v.Op)
	case *verilog.Ternary:
		c, err := e.constEval(v.Cond, scope, mod)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return e.constEval(v.Then, scope, mod)
		}
		return e.constEval(v.Else, scope, mod)
	}
	return 0, e.errf(mod, 0, "expression is not constant")
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// WidthOf computes the bit width of an expression under the simplified
// width rules documented in package verilog.
func WidthOf(x verilog.Expr, scope *Scope) (uint, error) {
	switch v := x.(type) {
	case *verilog.Number:
		if v.Width == 0 {
			return 32, nil
		}
		return v.Width, nil
	case *verilog.Ident:
		if s, ok := scope.signals[v.Name]; ok {
			return s.Width, nil
		}
		if _, ok := scope.params[v.Name]; ok {
			return 32, nil
		}
		return 0, fmt.Errorf("rtl: unknown identifier %q", v.Name)
	case *verilog.Unary:
		switch v.Op {
		case "!", "&", "|", "^":
			return 1, nil
		}
		return WidthOf(v.X, scope)
	case *verilog.Binary:
		switch v.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return 1, nil
		case "<<", ">>":
			return WidthOf(v.X, scope)
		}
		wx, err := WidthOf(v.X, scope)
		if err != nil {
			return 0, err
		}
		wy, err := WidthOf(v.Y, scope)
		if err != nil {
			return 0, err
		}
		if wy > wx {
			wx = wy
		}
		return wx, nil
	case *verilog.Ternary:
		wt, err := WidthOf(v.Then, scope)
		if err != nil {
			return 0, err
		}
		we, err := WidthOf(v.Else, scope)
		if err != nil {
			return 0, err
		}
		if we > wt {
			wt = we
		}
		return wt, nil
	case *verilog.Index:
		if base, ok := v.X.(*verilog.Ident); ok {
			if m, isMem := scope.memories[base.Name]; isMem {
				return m.Width, nil
			}
		}
		return 1, nil
	case *verilog.RangeSel:
		hiW, err := constOnly(v.MSB, scope)
		if err != nil {
			return 0, err
		}
		loW, err := constOnly(v.LSB, scope)
		if err != nil {
			return 0, err
		}
		if hiW < loW {
			return 0, fmt.Errorf("rtl: reversed part-select [%d:%d]", hiW, loW)
		}
		w := uint(hiW-loW) + 1
		if w > 64 {
			return 0, fmt.Errorf("rtl: part-select width %d exceeds 64", w)
		}
		return w, nil
	case *verilog.Concat:
		var total uint
		for _, p := range v.Parts {
			w, err := WidthOf(p, scope)
			if err != nil {
				return 0, err
			}
			total += w
		}
		if total == 0 || total > 64 {
			return 0, fmt.Errorf("rtl: concat width %d out of range", total)
		}
		return total, nil
	case *verilog.Repeat:
		n, err := constOnly(v.Count, scope)
		if err != nil {
			return 0, err
		}
		w, err := WidthOf(v.X, scope)
		if err != nil {
			return 0, err
		}
		total := uint(n) * w
		if total == 0 || total > 64 {
			return 0, fmt.Errorf("rtl: repeat width %d out of range", total)
		}
		return total, nil
	}
	return 0, fmt.Errorf("rtl: cannot size expression %T", x)
}

// ConstEval evaluates an expression using only literals and
// parameters — the same folding EvalExpr applies to part-select
// bounds and repeat counts. The bytecode compiler (internal/rtl/bc)
// uses it to resolve those bounds at compile time, so the two engines
// agree bit-for-bit on every constant.
func ConstEval(x verilog.Expr, scope *Scope) (uint64, error) {
	return constOnly(x, scope)
}

// constOnly evaluates an expression using only literals and params.
func constOnly(x verilog.Expr, scope *Scope) (uint64, error) {
	switch v := x.(type) {
	case *verilog.Number:
		return v.Value, nil
	case *verilog.Ident:
		if p, ok := scope.params[v.Name]; ok {
			return p, nil
		}
		return 0, fmt.Errorf("rtl: %q is not constant", v.Name)
	case *verilog.Binary:
		a, err := constOnly(v.X, scope)
		if err != nil {
			return 0, err
		}
		b, err := constOnly(v.Y, scope)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "<<":
			return a << (b & 63), nil
		case ">>":
			return a >> (b & 63), nil
		}
		return 0, fmt.Errorf("rtl: operator %q not constant-foldable here", v.Op)
	}
	return 0, fmt.Errorf("rtl: expression is not constant")
}

// State is the mutable value store a Design is evaluated against.
type State struct {
	Vals []uint64   // indexed by Signal.ID
	Mems [][]uint64 // indexed by Memory.ID
}

// NewState allocates a zeroed state for the design.
func NewState(d *Design) *State {
	st := &State{
		Vals: make([]uint64, len(d.Signals)),
		Mems: make([][]uint64, len(d.Memories)),
	}
	for i, m := range d.Memories {
		st.Mems[i] = make([]uint64, m.Depth)
	}
	return st
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		Vals: make([]uint64, len(s.Vals)),
		Mems: make([][]uint64, len(s.Mems)),
	}
	copy(c.Vals, s.Vals)
	for i, m := range s.Mems {
		c.Mems[i] = make([]uint64, len(m))
		copy(c.Mems[i], m)
	}
	return c
}

// EvalExpr evaluates an expression against the state. Values are
// masked to each subexpression's width.
func EvalExpr(x verilog.Expr, scope *Scope, st *State) (uint64, error) {
	switch v := x.(type) {
	case *verilog.Number:
		if v.Width == 0 {
			return v.Value, nil
		}
		return v.Value & mask(v.Width), nil

	case *verilog.Ident:
		if s, ok := scope.signals[v.Name]; ok {
			return st.Vals[s.ID] & mask(s.Width), nil
		}
		if p, ok := scope.params[v.Name]; ok {
			return p, nil
		}
		return 0, fmt.Errorf("rtl: unknown identifier %q", v.Name)

	case *verilog.Unary:
		a, err := EvalExpr(v.X, scope, st)
		if err != nil {
			return 0, err
		}
		w, err := WidthOf(v.X, scope)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "~":
			return ^a & mask(w), nil
		case "-":
			return -a & mask(w), nil
		case "!":
			return b2u(a == 0), nil
		case "&":
			return b2u(a == mask(w)), nil
		case "|":
			return b2u(a != 0), nil
		case "^":
			p := a
			p ^= p >> 32
			p ^= p >> 16
			p ^= p >> 8
			p ^= p >> 4
			p ^= p >> 2
			p ^= p >> 1
			return p & 1, nil
		}
		return 0, fmt.Errorf("rtl: unknown unary operator %q", v.Op)

	case *verilog.Binary:
		a, err := EvalExpr(v.X, scope, st)
		if err != nil {
			return 0, err
		}
		b, err := EvalExpr(v.Y, scope, st)
		if err != nil {
			return 0, err
		}
		w, err := WidthOf(x, scope)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return (a + b) & mask(w), nil
		case "-":
			return (a - b) & mask(w), nil
		case "*":
			return (a * b) & mask(w), nil
		case "/":
			if b == 0 {
				return mask(w), nil
			}
			return (a / b) & mask(w), nil
		case "%":
			if b == 0 {
				return a & mask(w), nil
			}
			return (a % b) & mask(w), nil
		case "&":
			return a & b, nil
		case "|":
			return (a | b) & mask(w), nil
		case "^":
			return (a ^ b) & mask(w), nil
		case "&&":
			return b2u(a != 0 && b != 0), nil
		case "||":
			return b2u(a != 0 || b != 0), nil
		case "==":
			return b2u(a == b), nil
		case "!=":
			return b2u(a != b), nil
		case "<":
			return b2u(a < b), nil
		case "<=":
			return b2u(a <= b), nil
		case ">":
			return b2u(a > b), nil
		case ">=":
			return b2u(a >= b), nil
		case "<<":
			if b >= 64 {
				return 0, nil
			}
			return (a << b) & mask(w), nil
		case ">>":
			if b >= 64 {
				return 0, nil
			}
			return a >> b, nil
		}
		return 0, fmt.Errorf("rtl: unknown binary operator %q", v.Op)

	case *verilog.Ternary:
		c, err := EvalExpr(v.Cond, scope, st)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return EvalExpr(v.Then, scope, st)
		}
		return EvalExpr(v.Else, scope, st)

	case *verilog.Index:
		if base, ok := v.X.(*verilog.Ident); ok {
			if m, isMem := scope.memories[base.Name]; isMem {
				idx, err := EvalExpr(v.Idx, scope, st)
				if err != nil {
					return 0, err
				}
				if idx >= uint64(m.Depth) {
					return 0, nil // out-of-range reads return zero
				}
				return st.Mems[m.ID][idx] & mask(m.Width), nil
			}
		}
		val, err := EvalExpr(v.X, scope, st)
		if err != nil {
			return 0, err
		}
		idx, err := EvalExpr(v.Idx, scope, st)
		if err != nil {
			return 0, err
		}
		if idx >= 64 {
			return 0, nil
		}
		return val >> idx & 1, nil

	case *verilog.RangeSel:
		val, err := EvalExpr(v.X, scope, st)
		if err != nil {
			return 0, err
		}
		hi, err := constOnly(v.MSB, scope)
		if err != nil {
			return 0, err
		}
		lo, err := constOnly(v.LSB, scope)
		if err != nil {
			return 0, err
		}
		if hi < lo || hi-lo+1 > 64 {
			return 0, fmt.Errorf("rtl: bad part select [%d:%d]", hi, lo)
		}
		return val >> lo & mask(uint(hi-lo)+1), nil

	case *verilog.Concat:
		var out uint64
		for _, p := range v.Parts {
			pv, err := EvalExpr(p, scope, st)
			if err != nil {
				return 0, err
			}
			pw, err := WidthOf(p, scope)
			if err != nil {
				return 0, err
			}
			out = out<<pw | (pv & mask(pw))
		}
		return out, nil

	case *verilog.Repeat:
		n, err := constOnly(v.Count, scope)
		if err != nil {
			return 0, err
		}
		pv, err := EvalExpr(v.X, scope, st)
		if err != nil {
			return 0, err
		}
		pw, err := WidthOf(v.X, scope)
		if err != nil {
			return 0, err
		}
		var out uint64
		for i := uint64(0); i < n; i++ {
			out = out<<pw | (pv & mask(pw))
		}
		return out, nil
	}
	return 0, fmt.Errorf("rtl: cannot evaluate %T", x)
}
