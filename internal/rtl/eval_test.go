package rtl

import (
	"testing"
	"testing/quick"

	"hardsnap/internal/verilog"
)

// buildEvalEnv elaborates a module exposing a rich set of signals and
// returns a scope-equipped design for direct expression evaluation.
func buildEvalEnv(t *testing.T) (*Design, *Scope, *State) {
	t.Helper()
	src := `
module env (
  input wire clk,
  input wire [15:0] a,
  input wire [15:0] b,
  input wire c,
  output reg [15:0] q
);
  reg [7:0] mem [0:3];
  always @(posedge clk) begin
    q <= a;
    mem[0] <= a[7:0];
  end
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(f, "env", nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, d.EvalScope(), NewState(d)
}

func setSig(t *testing.T, d *Design, st *State, name string, v uint64) {
	t.Helper()
	sig, ok := d.SignalByName(name)
	if !ok {
		t.Fatalf("no signal %s", name)
	}
	st.Vals[sig.ID] = v
}

func evalStr(t *testing.T, scope *Scope, st *State, src string) uint64 {
	t.Helper()
	e, err := verilog.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := EvalExpr(e, scope, st)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalExprOperators(t *testing.T) {
	d, scope, st := buildEvalEnv(t)
	setSig(t, d, st, "a", 0x00F3)
	setSig(t, d, st, "b", 0x0011)
	setSig(t, d, st, "c", 1)

	cases := []struct {
		src  string
		want uint64
	}{
		{"a + b", 0x104},
		{"a - b", 0xE2},
		{"a * b", 0x00F3 * 0x11 & 0xFFFF},
		{"a / b", 0xE},
		{"a % b", 0x00F3 % 0x11},
		{"a & b", 0x11},
		{"a | b", 0xF3},
		{"a ^ b", 0xE2},
		{"~a", 0xFF0C},
		{"-b", 0xFFEF},
		{"!a", 0},
		{"!(a - a)", 1},
		{"a << 4", 0x0F30},
		{"a >> 4", 0x000F},
		{"a == b", 0},
		{"a != b", 1},
		{"a < b", 0},
		{"a <= a", 1},
		{"a > b", 1},
		{"a >= b", 1},
		{"a && b", 1},
		{"a || 0", 1},
		{"c ? a : b", 0xF3},
		{"(!c) ? a : b", 0x11}, // c==1 -> else branch
		{"a[7:4]", 0xF},
		{"a[1]", 1},
		{"a[2]", 0},
		{"{a[7:0], b[7:0]}", 0xF311},
		{"{2{a[3:0]}}", 0x33},
		{"&a[1:0]", 1},
		{"|a", 1},
		{"^b[4:0]", 1}, // 0x11 has two bits set -> parity 0? 0x11=10001 -> 2 bits -> 0
	}
	for _, tc := range cases {
		got := evalStr(t, scope, st, tc.src)
		if tc.src == "^b[4:0]" {
			// parity of 0b10001 = 0 (two ones).
			if got != 0 {
				t.Errorf("%s = %d, want 0", tc.src, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %#x, want %#x", tc.src, got, tc.want)
		}
	}
}

func TestEvalExprDivModZero(t *testing.T) {
	d, scope, st := buildEvalEnv(t)
	setSig(t, d, st, "a", 77)
	setSig(t, d, st, "b", 0)
	if got := evalStr(t, scope, st, "a / b"); got != 0xFFFF {
		t.Fatalf("div by zero = %#x", got)
	}
	if got := evalStr(t, scope, st, "a % b"); got != 77 {
		t.Fatalf("mod by zero = %d", got)
	}
}

func TestEvalExprMemoryRead(t *testing.T) {
	d, scope, st := buildEvalEnv(t)
	m, _ := d.MemoryByName("mem")
	st.Mems[m.ID][2] = 0xAB
	setSig(t, d, st, "b", 2)
	if got := evalStr(t, scope, st, "mem[2]"); got != 0xAB {
		t.Fatalf("mem const index: %#x", got)
	}
	if got := evalStr(t, scope, st, "mem[b]"); got != 0xAB {
		t.Fatalf("mem dynamic index: %#x", got)
	}
	// Out-of-range reads return zero (two-state convention).
	if got := evalStr(t, scope, st, "mem[9]"); got != 0 {
		t.Fatalf("oob read: %#x", got)
	}
}

func TestEvalExprErrors(t *testing.T) {
	_, scope, st := buildEvalEnv(t)
	for _, src := range []string{
		"ghost",
		"ghost + 1",
		"a[b:0]", // non-constant part select
	} {
		e, err := verilog.ParseExpr(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := EvalExpr(e, scope, st); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestStateClone(t *testing.T) {
	d, _, st := buildEvalEnv(t)
	setSig(t, d, st, "a", 42)
	m, _ := d.MemoryByName("mem")
	st.Mems[m.ID][1] = 7
	c := st.Clone()
	setSig(t, d, st, "a", 1)
	st.Mems[m.ID][1] = 9
	sig, _ := d.SignalByName("a")
	if c.Vals[sig.ID] != 42 || c.Mems[m.ID][1] != 7 {
		t.Fatal("clone aliases original")
	}
}

func TestWriteApplyMasking(t *testing.T) {
	d, _, st := buildEvalEnv(t)
	sig, _ := d.SignalByName("q")
	st.Vals[sig.ID] = 0xFFFF
	w := Write{Sig: sig, Mask: 0x00F0, Val: 0x0050}
	w.Apply(st)
	if st.Vals[sig.ID] != 0xFF5F {
		t.Fatalf("partial write: %#x", st.Vals[sig.ID])
	}
	m, _ := d.MemoryByName("mem")
	mw := Write{Mem: m, Idx: 3, Val: 0x1FF} // masked to 8 bits
	mw.Apply(st)
	if st.Mems[m.ID][3] != 0xFF {
		t.Fatalf("mem write: %#x", st.Mems[m.ID][3])
	}
	// Out-of-range memory writes are dropped.
	oob := Write{Mem: m, Idx: 99, Val: 1}
	oob.Apply(st)
}

func TestWidthOfQuick(t *testing.T) {
	_, scope, _ := buildEvalEnv(t)
	cases := map[string]uint{
		"a":               16,
		"a + b":           16,
		"a == b":          1,
		"a && b":          1,
		"~c":              1,
		"{a, b}":          32,
		"{2{c}}":          2,
		"a[11:4]":         8,
		"a[0]":            1,
		"mem[0]":          8,
		"c ? a : b":       16,
		"a << 2":          16,
		"&a":              1,
		"17":              32,
		"4'hF":            4,
		"a + 8'h1":        16,
		"(a > b) + 16'h1": 16,
	}
	for src, want := range cases {
		e, err := verilog.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		w, err := WidthOf(e, scope)
		if err != nil {
			t.Fatalf("width %q: %v", src, err)
		}
		if w != want {
			t.Errorf("WidthOf(%q) = %d, want %d", src, w, want)
		}
	}
}

// TestEvalQuickArith cross-checks +,-,&,| over random 16-bit values.
func TestEvalQuickArith(t *testing.T) {
	d, scope, st := buildEvalEnv(t)
	add, _ := verilog.ParseExpr("a + b")
	sub, _ := verilog.ParseExpr("a - b")
	and, _ := verilog.ParseExpr("a & b")
	or, _ := verilog.ParseExpr("a | b")
	f := func(av, bv uint16) bool {
		setSig(t, d, st, "a", uint64(av))
		setSig(t, d, st, "b", uint64(bv))
		g := func(e verilog.Expr) uint64 { v, _ := EvalExpr(e, scope, st); return v }
		return g(add) == uint64(av+bv) && g(sub) == uint64(av-bv) &&
			g(and) == uint64(av&bv) && g(or) == uint64(av|bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
