package rtl

import (
	"fmt"

	"hardsnap/internal/verilog"
)

// Write is one pending assignment produced by executing a statement.
// Register writes carry a bit mask so partial (bit/part-select)
// assignments merge correctly; memory writes target one element.
type Write struct {
	Sig  *Signal
	Mask uint64
	Val  uint64

	Mem *Memory
	Idx uint64
}

// Apply commits the write to the state.
func (w *Write) Apply(st *State) {
	if w.Mem != nil {
		if w.Idx < uint64(w.Mem.Depth) {
			st.Mems[w.Mem.ID][w.Idx] = w.Val & mask(w.Mem.Width)
		}
		return
	}
	old := st.Vals[w.Sig.ID]
	st.Vals[w.Sig.ID] = (old &^ w.Mask) | (w.Val & w.Mask)
}

// ExecComb executes a combinational node against the state, applying
// writes immediately (blocking semantics).
func (c *CombNode) ExecComb(st *State) error {
	emit := func(w Write) { w.Apply(st) }
	if c.Assign != nil {
		rhs, err := EvalExpr(c.Assign.RHS, c.Scope, st)
		if err != nil {
			return err
		}
		return assignTo(c.Assign.LHS, rhs, c.Scope, st, emit)
	}
	return execStmt(c.Block, c.Scope, st, emit)
}

// ExecSeq executes a sequential block, appending deferred nonblocking
// writes to out; the caller commits them after all blocks ran.
func (b *SeqBlock) ExecSeq(st *State, out *[]Write) error {
	emit := func(w Write) { *out = append(*out, w) }
	return execStmt(b.Body, b.Scope, st, emit)
}

func execStmt(s verilog.Stmt, scope *Scope, st *State, emit func(Write)) error {
	switch v := s.(type) {
	case *verilog.Block:
		for _, sub := range v.Stmts {
			if err := execStmt(sub, scope, st, emit); err != nil {
				return err
			}
		}
		return nil
	case *verilog.If:
		c, err := EvalExpr(v.Cond, scope, st)
		if err != nil {
			return err
		}
		if c != 0 {
			return execStmt(v.Then, scope, st, emit)
		}
		if v.Else != nil {
			return execStmt(v.Else, scope, st, emit)
		}
		return nil
	case *verilog.Case:
		subj, err := EvalExpr(v.Subject, scope, st)
		if err != nil {
			return err
		}
		var deflt verilog.Stmt
		for _, item := range v.Items {
			if item.Labels == nil {
				deflt = item.Body
				continue
			}
			for _, l := range item.Labels {
				lv, err := EvalExpr(l, scope, st)
				if err != nil {
					return err
				}
				if lv == subj {
					return execStmt(item.Body, scope, st, emit)
				}
			}
		}
		if deflt != nil {
			return execStmt(deflt, scope, st, emit)
		}
		return nil
	case *verilog.NonBlocking:
		rhs, err := EvalExpr(v.RHS, scope, st)
		if err != nil {
			return err
		}
		return assignTo(v.LHS, rhs, scope, st, emit)
	case *verilog.Blocking:
		rhs, err := EvalExpr(v.RHS, scope, st)
		if err != nil {
			return err
		}
		return assignTo(v.LHS, rhs, scope, st, emit)
	}
	return fmt.Errorf("rtl: cannot execute statement %T", s)
}

// assignTo resolves an lvalue and emits the corresponding write(s).
func assignTo(lhs verilog.Expr, rhs uint64, scope *Scope, st *State, emit func(Write)) error {
	switch v := lhs.(type) {
	case *verilog.Ident:
		sig, ok := scope.signals[v.Name]
		if !ok {
			return fmt.Errorf("rtl: unknown lvalue %q", v.Name)
		}
		emit(Write{Sig: sig, Mask: mask(sig.Width), Val: rhs & mask(sig.Width)})
		return nil

	case *verilog.Index:
		base, ok := v.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("rtl: unsupported indexed lvalue")
		}
		idx, err := EvalExpr(v.Idx, scope, st)
		if err != nil {
			return err
		}
		if mem, isMem := scope.memories[base.Name]; isMem {
			emit(Write{Mem: mem, Idx: idx, Val: rhs})
			return nil
		}
		sig, ok := scope.signals[base.Name]
		if !ok {
			return fmt.Errorf("rtl: unknown lvalue %q", base.Name)
		}
		if idx >= uint64(sig.Width) {
			return nil // out-of-range bit write is dropped
		}
		emit(Write{Sig: sig, Mask: 1 << idx, Val: (rhs & 1) << idx})
		return nil

	case *verilog.RangeSel:
		base, ok := v.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("rtl: unsupported part-select lvalue")
		}
		sig, ok := scope.signals[base.Name]
		if !ok {
			return fmt.Errorf("rtl: unknown lvalue %q", base.Name)
		}
		hi, err := constOnly(v.MSB, scope)
		if err != nil {
			return err
		}
		lo, err := constOnly(v.LSB, scope)
		if err != nil {
			return err
		}
		if hi < lo || hi >= uint64(sig.Width) {
			return fmt.Errorf("rtl: part-select [%d:%d] out of range of %s", hi, lo, sig.Name)
		}
		w := uint(hi-lo) + 1
		emit(Write{Sig: sig, Mask: mask(w) << lo, Val: (rhs & mask(w)) << lo})
		return nil

	case *verilog.Concat:
		// MSB-first: the first part takes the most significant bits.
		widths := make([]uint, len(v.Parts))
		var total uint
		for i, p := range v.Parts {
			w, err := WidthOf(p, scope)
			if err != nil {
				return err
			}
			widths[i] = w
			total += w
		}
		shift := total
		for i, p := range v.Parts {
			shift -= widths[i]
			part := rhs >> shift & mask(widths[i])
			if err := assignTo(p, part, scope, st, emit); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("rtl: unsupported lvalue %T", lhs)
}
