// Package bc compiles an elaborated rtl.Design into compact stack
// bytecode and runs it with event-driven activation — the Verilator
// move applied to this repo's netlist interpreter.
//
// The compiler (Compile) lowers every comb node and sequential block
// into a flat []op. All the work rtl.EvalExpr redoes on every visit —
// width computation, mask construction, identifier resolution,
// constant part-select bounds, error checking — happens once at
// compile time; the hot loop is a typed switch over ops with a small
// reused value stack and no allocation, no maps and no error paths.
// Anything the interpreter would reject at runtime (reversed part
// selects, unknown identifiers, unsupported lvalues) the compiler
// rejects up front, so a Program that compiled cannot fail to run.
//
// The engine (Engine) adds sensitivity-list activation on top: from
// each node's read/write sets the compiler builds per-signal and
// per-memory fanout lists, and Settle/RunSeq execute only nodes whose
// inputs (or externally poked outputs) changed since their last run.
// Quiescent logic costs one boolean test per settle — or nothing at
// all when no comb node is pending.
//
// The interpreter remains the semantic oracle: for every construct the
// emitted ops replicate rtl.EvalExpr / execStmt / assignTo bit for
// bit, including division-by-zero results, out-of-range index
// behavior, per-operator masking and nonblocking write buffering.
// Designs the compiler cannot prove equivalent (multiple sequential
// writers of one register, multiple comb writers of one memory) are
// rejected so the caller can fall back to the interpreter.
package bc

import "hardsnap/internal/rtl"

// opcode selects the operation of one bytecode instruction.
type opcode uint8

// Expression opcodes operate on the value stack; store opcodes pop
// operands and write signal/memory state (comb, immediate) or append
// rtl.Write records (sequential, nonblocking).
const (
	opConst   opcode = iota // push val
	opLoad                  // push Vals[a] & val
	opLoadMem               // idx=pop; push idx<b ? Mems[a][idx]&val : 0
	opNot                   // tos = ^tos & val
	opNeg                   // tos = -tos & val
	opLogNot                // tos = tos==0
	opRedAnd                // tos = tos==val
	opRedOr                 // tos = tos!=0
	opRedXor                // tos = parity(tos)
	opAdd                   // y=pop; tos = (tos+y)&val
	opSub                   // y=pop; tos = (tos-y)&val
	opMul                   // y=pop; tos = (tos*y)&val
	opDiv                   // y=pop; tos = y==0 ? val : (tos/y)&val
	opMod                   // y=pop; tos = y==0 ? tos&val : (tos%y)&val
	opAnd                   // y=pop; tos = tos&y (unmasked, like the interpreter)
	opOr                    // y=pop; tos = (tos|y)&val
	opXor                   // y=pop; tos = (tos^y)&val
	opLogAnd                // y=pop; tos = tos!=0 && y!=0
	opLogOr                 // y=pop; tos = tos!=0 || y!=0
	opEq                    // y=pop; tos = tos==y
	opNe                    // y=pop; tos = tos!=y
	opLt                    // y=pop; tos = tos<y
	opLe                    // y=pop; tos = tos<=y
	opGt                    // y=pop; tos = tos>y
	opGe                    // y=pop; tos = tos>=y
	opShl                   // y=pop; tos = y>=64 ? 0 : (tos<<y)&val
	opShr                   // y=pop; tos = y>=64 ? 0 : tos>>y (unmasked)
	opBit                   // idx=pop; tos = idx>=64 ? 0 : tos>>idx&1
	opRange                 // tos = tos>>b & val (b = lo, clamped to 64)
	opConcat                // pv=pop; tos = tos<<b | pv&val (b = part width)
	opRepeat                // tos = a copies of tos&val, each shifted by b
	opDup                   // push tos
	opPop                   // pop
	opJmp                   // pc = a
	opJz                    // if pop==0 { pc = a }
	opCaseEq                // lab=pop; if lab==tos { pc = a }

	opStore      // v=pop; Vals[a] = (Vals[a]&^val)|(v&val)
	opStoreBit   // idx=pop,v=pop; if idx<b { merge bit idx of Vals[a] }
	opStoreRange // v=pop; Vals[a] = (Vals[a]&^val)|((v<<b)&val)
	opStoreMem   // idx=pop,v=pop; if idx<b { Mems[a][idx] = v&val }

	opNBStore      // v=pop; append Write{Sig:a, Mask:val, Val:v&val}
	opNBStoreBit   // idx=pop,v=pop; if idx<b { append Write{Sig:a, Mask:1<<idx, Val:(v&1)<<idx} }
	opNBStoreRange // v=pop; append Write{Sig:a, Mask:val, Val:(v<<b)&val}
	opNBStoreMem   // idx=pop,v=pop; append Write{Mem:a, Idx:idx, Val:v} (unmasked, like assignTo)
)

// op is one bytecode instruction. Operand meaning depends on the
// opcode: a is a signal/memory ID, jump target, part-select shift or
// repeat count; b is a width, depth or shift; val is a constant or a
// precomputed mask.
type op struct {
	code opcode
	a    int32
	b    int32
	val  uint64
}

// Program is a compiled design: one op sequence per comb node (in the
// design's topological order) and per sequential block, plus the
// fanout lists the activation engine seeds worklists from.
type Program struct {
	design  *rtl.Design
	combs   [][]op
	seqs    [][]op
	signals []*rtl.Signal
	mems    []*rtl.Memory

	// Fanout lists, indexed by signal/memory ID. Each holds node
	// indexes in ascending order (built by one pass over the nodes).
	sigCombReaders [][]int32 // comb nodes whose ops load the signal
	sigCombDriver  []int32   // comb node writing the signal, -1 if none
	sigSeqTouch    [][]int32 // seq blocks reading OR writing the signal
	memCombReaders [][]int32
	memCombWriters [][]int32
	memSeqTouch    [][]int32

	// stackMax is the deepest value stack any node needs.
	stackMax int
}

// Design returns the design this program was compiled from.
func (p *Program) Design() *rtl.Design { return p.design }

// NumCombOps and NumSeqOps report total instruction counts, for
// reporting compile results in experiments.
func (p *Program) NumCombOps() int {
	n := 0
	for _, ops := range p.combs {
		n += len(ops)
	}
	return n
}

func (p *Program) NumSeqOps() int {
	n := 0
	for _, ops := range p.seqs {
		n += len(ops)
	}
	return n
}
