package bc

import (
	"fmt"

	"hardsnap/internal/rtl"
	"hardsnap/internal/verilog"
)

// maskOf returns a bitmask with the w low bits set (mirror of
// rtl.mask, which is unexported).
func maskOf(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Compile lowers an elaborated design to bytecode. It returns an
// error for any construct whose compiled form could diverge from the
// interpreter — unknown identifiers, non-constant part-select bounds,
// lvalue shapes assignTo rejects, or write-ordering patterns the
// activation engine cannot preserve (a register written by more than
// one sequential block, a memory written by more than one comb node).
// Callers fall back to the interpreter on error.
func Compile(d *rtl.Design) (*Program, error) {
	p := &Program{
		design:         d,
		signals:        d.Signals,
		mems:           d.Memories,
		sigCombReaders: make([][]int32, len(d.Signals)),
		sigCombDriver:  make([]int32, len(d.Signals)),
		sigSeqTouch:    make([][]int32, len(d.Signals)),
		memCombReaders: make([][]int32, len(d.Memories)),
		memCombWriters: make([][]int32, len(d.Memories)),
		memSeqTouch:    make([][]int32, len(d.Memories)),
	}
	for i := range p.sigCombDriver {
		p.sigCombDriver[i] = -1
	}
	p.combs = make([][]op, 0, len(d.Combs))
	for i, node := range d.Combs {
		c := newComp(node.Scope, false)
		var err error
		if node.Assign != nil {
			err = c.assign(node.Assign.LHS, node.Assign.RHS)
		} else {
			err = c.stmt(node.Block)
		}
		if err != nil {
			return nil, fmt.Errorf("bc: comb node %d: %w", i, err)
		}
		if c.cur != 0 {
			return nil, fmt.Errorf("bc: internal: comb node %d leaves stack depth %d", i, c.cur)
		}
		p.combs = append(p.combs, c.ops)
		if c.max > p.stackMax {
			p.stackMax = c.max
		}
		for id := range c.reads {
			p.sigCombReaders[id] = append(p.sigCombReaders[id], int32(i))
		}
		for id := range c.writes {
			p.sigCombDriver[id] = int32(i)
		}
		for id := range c.memReads {
			p.memCombReaders[id] = append(p.memCombReaders[id], int32(i))
		}
		for id := range c.memWrites {
			// Two comb nodes writing one memory: the interpreter
			// re-runs both every sweep, so readers ordered between
			// them observe the earlier node's value; activation would
			// skip the quiescent one and break that ordering.
			if len(p.memCombWriters[id]) > 0 {
				return nil, fmt.Errorf("bc: memory %s written by multiple comb nodes", d.Memories[id].Name)
			}
			p.memCombWriters[id] = append(p.memCombWriters[id], int32(i))
		}
	}
	p.seqs = make([][]op, 0, len(d.Seqs))
	seqSigWriter := make(map[int]int)
	seqMemWriter := make(map[int]int)
	for i, b := range d.Seqs {
		c := newComp(b.Scope, true)
		if err := c.stmt(b.Body); err != nil {
			return nil, fmt.Errorf("bc: seq block %d: %w", i, err)
		}
		if c.cur != 0 {
			return nil, fmt.Errorf("bc: internal: seq block %d leaves stack depth %d", i, c.cur)
		}
		p.seqs = append(p.seqs, c.ops)
		if c.max > p.stackMax {
			p.stackMax = c.max
		}
		for id := range c.writes {
			// Last-write-wins across blocks requires running every
			// writer every cycle; activation cannot guarantee that,
			// so multi-driven registers fall back to the interpreter.
			if prev, dup := seqSigWriter[id]; dup && prev != i {
				return nil, fmt.Errorf("bc: register %s written by multiple sequential blocks", d.Signals[id].Name)
			}
			seqSigWriter[id] = i
		}
		for id := range c.memWrites {
			if prev, dup := seqMemWriter[id]; dup && prev != i {
				return nil, fmt.Errorf("bc: memory %s written by multiple sequential blocks", d.Memories[id].Name)
			}
			seqMemWriter[id] = i
		}
		touched := func(ids map[int]struct{}, fan [][]int32) {
			for id := range ids {
				n := len(fan[id])
				if n > 0 && fan[id][n-1] == int32(i) {
					continue // already recorded via the other set
				}
				fan[id] = append(fan[id], int32(i))
			}
		}
		touched(c.reads, p.sigSeqTouch)
		touched(c.writes, p.sigSeqTouch)
		touched(c.memReads, p.memSeqTouch)
		touched(c.memWrites, p.memSeqTouch)
	}
	if p.stackMax == 0 {
		p.stackMax = 1
	}
	return p, nil
}

// comp compiles one comb node or sequential block.
type comp struct {
	scope *rtl.Scope
	seq   bool // nonblocking store opcodes
	ops   []op

	// cur/max track value-stack depth so the engine can size its
	// stack once; every statement is depth-neutral, every expression
	// nets exactly one push.
	cur, max int

	reads     map[int]struct{}
	writes    map[int]struct{}
	memReads  map[int]struct{}
	memWrites map[int]struct{}
}

func newComp(scope *rtl.Scope, seq bool) *comp {
	return &comp{
		scope:     scope,
		seq:       seq,
		reads:     make(map[int]struct{}),
		writes:    make(map[int]struct{}),
		memReads:  make(map[int]struct{}),
		memWrites: make(map[int]struct{}),
	}
}

func (c *comp) emit(o op) int {
	c.ops = append(c.ops, o)
	return len(c.ops) - 1
}

func (c *comp) push() {
	c.cur++
	if c.cur > c.max {
		c.max = c.cur
	}
}

func (c *comp) pop(n int) { c.cur -= n }

// patch sets the jump target of instruction i to the next emitted op.
func (c *comp) patch(i int) { c.ops[i].a = int32(len(c.ops)) }

func (c *comp) assign(lhs, rhs verilog.Expr) error {
	if err := c.expr(rhs); err != nil {
		return err
	}
	return c.store(lhs)
}

func (c *comp) stmt(s verilog.Stmt) error {
	switch v := s.(type) {
	case *verilog.Block:
		for _, sub := range v.Stmts {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *verilog.If:
		if err := c.expr(v.Cond); err != nil {
			return err
		}
		jz := c.emit(op{code: opJz})
		c.pop(1)
		if err := c.stmt(v.Then); err != nil {
			return err
		}
		if v.Else == nil {
			c.patch(jz)
			return nil
		}
		jmp := c.emit(op{code: opJmp})
		c.patch(jz)
		if err := c.stmt(v.Else); err != nil {
			return err
		}
		c.patch(jmp)
		return nil

	case *verilog.Case:
		return c.caseStmt(v)

	case *verilog.NonBlocking:
		return c.assign(v.LHS, v.RHS)

	case *verilog.Blocking:
		return c.assign(v.LHS, v.RHS)
	}
	return fmt.Errorf("cannot compile statement %T", s)
}

// caseStmt lays out a case as: subject eval, then all label
// comparisons (first match jumps to its body, preserving the
// interpreter's first-match-in-item-order priority), fallthrough jump
// to the default, then the bodies; each body pops the subject first.
// Labels are pure expressions, so evaluating them eagerly (where the
// interpreter stops at the first match) cannot change the outcome.
func (c *comp) caseStmt(v *verilog.Case) error {
	if err := c.expr(v.Subject); err != nil {
		return err
	}
	entry := c.cur // depth with the subject on the stack
	var matches [][]int
	var deflt verilog.Stmt
	for _, item := range v.Items {
		if item.Labels == nil {
			// Like the interpreter, a later default wins.
			deflt = item.Body
			continue
		}
		var js []int
		for _, l := range item.Labels {
			if err := c.expr(l); err != nil {
				return err
			}
			js = append(js, c.emit(op{code: opCaseEq}))
			c.pop(1)
		}
		matches = append(matches, js)
	}
	toDefault := c.emit(op{code: opJmp})
	var ends []int
	mi := 0
	for _, item := range v.Items {
		if item.Labels == nil {
			continue
		}
		for _, j := range matches[mi] {
			c.patch(j)
		}
		mi++
		c.cur = entry
		c.emit(op{code: opPop})
		c.pop(1)
		if err := c.stmt(item.Body); err != nil {
			return err
		}
		ends = append(ends, c.emit(op{code: opJmp}))
	}
	c.patch(toDefault)
	c.cur = entry
	c.emit(op{code: opPop})
	c.pop(1)
	if deflt != nil {
		if err := c.stmt(deflt); err != nil {
			return err
		}
	}
	for _, j := range ends {
		c.patch(j)
	}
	return nil
}

// binOp maps a binary operator to its opcode and whether the result
// is masked to the width of the whole expression.
var binOps = map[string]struct {
	code   opcode
	masked bool
}{
	"+": {opAdd, true}, "-": {opSub, true}, "*": {opMul, true},
	"/": {opDiv, true}, "%": {opMod, true},
	"&": {opAnd, false}, "|": {opOr, true}, "^": {opXor, true},
	"&&": {opLogAnd, false}, "||": {opLogOr, false},
	"==": {opEq, false}, "!=": {opNe, false},
	"<": {opLt, false}, "<=": {opLe, false},
	">": {opGt, false}, ">=": {opGe, false},
	"<<": {opShl, true}, ">>": {opShr, false},
}

// expr emits ops that push the expression's value; net stack effect
// is exactly +1. Every WidthOf the interpreter would perform at eval
// time happens here, so sizing errors become compile errors.
func (c *comp) expr(x verilog.Expr) error {
	switch v := x.(type) {
	case *verilog.Number:
		val := v.Value
		if v.Width != 0 {
			val &= maskOf(v.Width)
		}
		c.emit(op{code: opConst, val: val})
		c.push()
		return nil

	case *verilog.Ident:
		if s, ok := c.scope.Signal(v.Name); ok {
			c.emit(op{code: opLoad, a: int32(s.ID), val: maskOf(s.Width)})
			c.push()
			c.reads[s.ID] = struct{}{}
			return nil
		}
		if pv, ok := c.scope.Param(v.Name); ok {
			// Parameters evaluate unmasked, exactly like EvalExpr.
			c.emit(op{code: opConst, val: pv})
			c.push()
			return nil
		}
		return fmt.Errorf("unknown identifier %q", v.Name)

	case *verilog.Unary:
		if err := c.expr(v.X); err != nil {
			return err
		}
		// The interpreter computes the operand width before
		// dispatching on the operator, so an un-sizable operand is an
		// error even for width-independent operators; mirror that.
		w, err := rtl.WidthOf(v.X, c.scope)
		if err != nil {
			return err
		}
		switch v.Op {
		case "~":
			c.emit(op{code: opNot, val: maskOf(w)})
		case "-":
			c.emit(op{code: opNeg, val: maskOf(w)})
		case "!":
			c.emit(op{code: opLogNot})
		case "&":
			c.emit(op{code: opRedAnd, val: maskOf(w)})
		case "|":
			c.emit(op{code: opRedOr})
		case "^":
			c.emit(op{code: opRedXor})
		default:
			return fmt.Errorf("unknown unary operator %q", v.Op)
		}
		return nil

	case *verilog.Binary:
		if err := c.expr(v.X); err != nil {
			return err
		}
		if err := c.expr(v.Y); err != nil {
			return err
		}
		spec, ok := binOps[v.Op]
		if !ok {
			return fmt.Errorf("unknown binary operator %q", v.Op)
		}
		// Unconditional, like EvalExpr: WidthOf runs for every
		// operator even when the mask is unused.
		w, err := rtl.WidthOf(x, c.scope)
		if err != nil {
			return err
		}
		o := op{code: spec.code}
		if spec.masked || spec.code == opDiv || spec.code == opMod {
			o.val = maskOf(w)
		}
		c.emit(o)
		c.pop(1)
		return nil

	case *verilog.Ternary:
		if err := c.expr(v.Cond); err != nil {
			return err
		}
		jz := c.emit(op{code: opJz})
		c.pop(1)
		d := c.cur
		if err := c.expr(v.Then); err != nil {
			return err
		}
		jmp := c.emit(op{code: opJmp})
		c.patch(jz)
		c.cur = d
		if err := c.expr(v.Else); err != nil {
			return err
		}
		c.patch(jmp)
		return nil

	case *verilog.Index:
		if base, ok := v.X.(*verilog.Ident); ok {
			if m, isMem := c.scope.Memory(base.Name); isMem {
				if err := c.expr(v.Idx); err != nil {
					return err
				}
				c.emit(op{code: opLoadMem, a: int32(m.ID), b: int32(m.Depth), val: maskOf(m.Width)})
				c.memReads[m.ID] = struct{}{}
				return nil // pops idx, pushes element: net +1 overall
			}
		}
		if err := c.expr(v.X); err != nil {
			return err
		}
		if err := c.expr(v.Idx); err != nil {
			return err
		}
		c.emit(op{code: opBit})
		c.pop(1)
		return nil

	case *verilog.RangeSel:
		if err := c.expr(v.X); err != nil {
			return err
		}
		hi, err := rtl.ConstEval(v.MSB, c.scope)
		if err != nil {
			return err
		}
		lo, err := rtl.ConstEval(v.LSB, c.scope)
		if err != nil {
			return err
		}
		if hi < lo || hi-lo+1 > 64 {
			return fmt.Errorf("bad part select [%d:%d]", hi, lo)
		}
		sh := lo
		if sh > 64 {
			sh = 64 // uint64>>64 is 0 in Go, same as the interpreter's x>>lo
		}
		c.emit(op{code: opRange, b: int32(sh), val: maskOf(uint(hi-lo) + 1)})
		return nil

	case *verilog.Concat:
		// Seed with 0 so the first part is masked into it exactly as
		// the interpreter's out<<pw | pv&mask(pw) fold does.
		c.emit(op{code: opConst})
		c.push()
		for _, part := range v.Parts {
			if err := c.expr(part); err != nil {
				return err
			}
			w, err := rtl.WidthOf(part, c.scope)
			if err != nil {
				return err
			}
			c.emit(op{code: opConcat, b: int32(w), val: maskOf(w)})
			c.pop(1)
		}
		return nil

	case *verilog.Repeat:
		n, err := rtl.ConstEval(v.Count, c.scope)
		if err != nil {
			return err
		}
		if err := c.expr(v.X); err != nil {
			return err
		}
		w, err := rtl.WidthOf(v.X, c.scope)
		if err != nil {
			return err
		}
		// Beyond 64 iterations every earlier term has shifted out of
		// the 64-bit result (w >= 1), so cap the unrolled count.
		if n > 64 {
			n = 64
		}
		c.emit(op{code: opRepeat, a: int32(n), b: int32(w), val: maskOf(w)})
		return nil
	}
	return fmt.Errorf("cannot compile expression %T", x)
}

// store pops the value on top of the stack into the lvalue, mirroring
// assignTo: full-signal writes mask to signal width, bit writes drop
// out-of-range indexes, memory writes defer masking to commit time
// (sequential) or mask immediately (comb), part selects merge under a
// shifted mask, concats split MSB-first.
func (c *comp) store(lhs verilog.Expr) error {
	switch v := lhs.(type) {
	case *verilog.Ident:
		sig, ok := c.scope.Signal(v.Name)
		if !ok {
			return fmt.Errorf("unknown lvalue %q", v.Name)
		}
		code := opStore
		if c.seq {
			code = opNBStore
		}
		c.emit(op{code: code, a: int32(sig.ID), val: maskOf(sig.Width)})
		c.pop(1)
		c.writes[sig.ID] = struct{}{}
		return nil

	case *verilog.Index:
		base, ok := v.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("unsupported indexed lvalue")
		}
		if m, isMem := c.scope.Memory(base.Name); isMem {
			if err := c.expr(v.Idx); err != nil {
				return err
			}
			code := opStoreMem
			if c.seq {
				code = opNBStoreMem
			}
			c.emit(op{code: code, a: int32(m.ID), b: int32(m.Depth), val: maskOf(m.Width)})
			c.pop(2)
			c.memWrites[m.ID] = struct{}{}
			return nil
		}
		sig, ok := c.scope.Signal(base.Name)
		if !ok {
			return fmt.Errorf("unknown lvalue %q", base.Name)
		}
		if err := c.expr(v.Idx); err != nil {
			return err
		}
		code := opStoreBit
		if c.seq {
			code = opNBStoreBit
		}
		c.emit(op{code: code, a: int32(sig.ID), b: int32(sig.Width)})
		c.pop(2)
		c.writes[sig.ID] = struct{}{}
		c.reads[sig.ID] = struct{}{} // read-modify-write
		return nil

	case *verilog.RangeSel:
		base, ok := v.X.(*verilog.Ident)
		if !ok {
			return fmt.Errorf("unsupported part-select lvalue")
		}
		sig, ok := c.scope.Signal(base.Name)
		if !ok {
			return fmt.Errorf("unknown lvalue %q", base.Name)
		}
		hi, err := rtl.ConstEval(v.MSB, c.scope)
		if err != nil {
			return err
		}
		lo, err := rtl.ConstEval(v.LSB, c.scope)
		if err != nil {
			return err
		}
		if hi < lo || hi >= uint64(sig.Width) {
			return fmt.Errorf("part-select [%d:%d] out of range of %s", hi, lo, sig.Name)
		}
		w := uint(hi-lo) + 1
		code := opStoreRange
		if c.seq {
			code = opNBStoreRange
		}
		c.emit(op{code: code, a: int32(sig.ID), b: int32(lo), val: maskOf(w) << lo})
		c.pop(1)
		c.writes[sig.ID] = struct{}{}
		c.reads[sig.ID] = struct{}{} // read-modify-write
		return nil

	case *verilog.Concat:
		// MSB-first split of the RHS value sitting on the stack.
		widths := make([]uint, len(v.Parts))
		var total uint
		for i, part := range v.Parts {
			w, err := rtl.WidthOf(part, c.scope)
			if err != nil {
				return err
			}
			widths[i] = w
			total += w
		}
		shift := total
		for i, part := range v.Parts {
			shift -= widths[i]
			if i < len(v.Parts)-1 {
				c.emit(op{code: opDup})
				c.push()
			}
			sh := shift
			if sh > 64 {
				sh = 64
			}
			c.emit(op{code: opRange, b: int32(sh), val: maskOf(widths[i])})
			if err := c.store(part); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unsupported lvalue %T", lhs)
}
