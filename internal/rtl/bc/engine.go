package bc

import "hardsnap/internal/rtl"

// Stats counts engine work, for the E16 experiment's activation-rate
// reporting.
type Stats struct {
	Settles  uint64 // Settle calls
	CombRuns uint64 // comb nodes executed
	SeqRuns  uint64 // sequential blocks executed
}

// Engine executes a compiled Program against a shared rtl.State. With
// activation enabled (the default), Settle and RunSeq only execute
// nodes whose inputs changed since their last run; external writers
// (pokes, restores, register commits) report changes via
// MarkSignal/MarkMemory. With activation disabled every node runs on
// every call — the compiled-only baseline E16 measures.
//
// The engine mutates the state exactly as the interpreter would: comb
// stores apply immediately in topological order, sequential stores
// append rtl.Write records the caller commits.
type Engine struct {
	p  *Program
	st *rtl.State

	stack []uint64

	activation  bool
	combPending []bool
	combLive    int
	seqPending  []bool
	seqLive     int

	stats Stats
}

// NewEngine binds a program to a state. All nodes start pending, so
// the first Settle reproduces the interpreter's initial full sweep.
func NewEngine(p *Program, st *rtl.State, activation bool) *Engine {
	e := &Engine{
		p:           p,
		st:          st,
		stack:       make([]uint64, p.stackMax),
		activation:  activation,
		combPending: make([]bool, len(p.combs)),
		seqPending:  make([]bool, len(p.seqs)),
		combLive:    len(p.combs),
		seqLive:     len(p.seqs),
	}
	for i := range e.combPending {
		e.combPending[i] = true
	}
	for i := range e.seqPending {
		e.seqPending[i] = true
	}
	return e
}

// Stats returns the work counters.
func (e *Engine) Stats() Stats { return e.stats }

// Activation reports whether event-driven scheduling is enabled.
func (e *Engine) Activation() bool { return e.activation }

func (e *Engine) wakeComb(i int) {
	if !e.combPending[i] {
		e.combPending[i] = true
		e.combLive++
	}
}

func (e *Engine) wakeSeq(i int) {
	if !e.seqPending[i] {
		e.seqPending[i] = true
		e.seqLive++
	}
}

// touchSig wakes everything sensitive to a signal change: comb
// readers, the signal's comb driver (so a poked wire is recomputed on
// the next settle, as the interpreter's full sweep would), and seq
// blocks reading or writing it (a written register poked externally
// must be re-driven). self is the comb node performing the store, or
// -1 for external writers; the driver skip avoids a node endlessly
// re-waking itself through its own full-width output.
func (e *Engine) touchSig(id, self int) {
	if !e.activation {
		return
	}
	for _, j := range e.p.sigCombReaders[id] {
		e.wakeComb(int(j))
	}
	if d := e.p.sigCombDriver[id]; d >= 0 && int(d) != self {
		e.wakeComb(int(d))
	}
	for _, j := range e.p.sigSeqTouch[id] {
		e.wakeSeq(int(j))
	}
}

// touchMem wakes everything sensitive to a memory change; comb
// writers are included so an externally changed element is
// overwritten on the next settle exactly as the interpreter's
// unconditional sweep would overwrite it.
func (e *Engine) touchMem(id int) {
	if !e.activation {
		return
	}
	for _, j := range e.p.memCombReaders[id] {
		e.wakeComb(int(j))
	}
	for _, j := range e.p.memCombWriters[id] {
		e.wakeComb(int(j))
	}
	for _, j := range e.p.memSeqTouch[id] {
		e.wakeSeq(int(j))
	}
}

// MarkSignal reports an external change of a signal's value (poke,
// input drive, restore, register commit).
func (e *Engine) MarkSignal(id int) { e.touchSig(id, -1) }

// MarkMemory reports an external change inside a memory.
func (e *Engine) MarkMemory(id int) { e.touchMem(id) }

// Settle runs pending comb nodes once, in topological order — one
// interpreter sweep over the active subset. A node's pending flag is
// cleared before it runs, so a self-reading toggle re-arms itself for
// the next sweep exactly like the interpreter re-evaluating it.
// Wakes to nodes later in the order are consumed in this sweep (the
// interpreter would run them after the writer anyway); wakes to
// earlier nodes persist to the next sweep (where the interpreter
// would also first see the change).
func (e *Engine) Settle() {
	e.stats.Settles++
	if !e.activation {
		for i := range e.p.combs {
			e.exec(e.p.combs[i], nil, i)
		}
		e.stats.CombRuns += uint64(len(e.p.combs))
		return
	}
	if e.combLive == 0 {
		return
	}
	for i := range e.combPending {
		if !e.combPending[i] {
			continue
		}
		e.combPending[i] = false
		e.combLive--
		e.exec(e.p.combs[i], nil, i)
		e.stats.CombRuns++
	}
}

// RunSeq runs pending sequential blocks in order, appending their
// nonblocking writes to buf. A skipped block's inputs and write
// targets are unchanged since its last run, so it would emit the same
// writes it emitted then — and those were already committed, making
// them no-ops the change-detecting commit loop would not re-mark.
func (e *Engine) RunSeq(buf *[]rtl.Write) {
	if e.activation {
		if e.seqLive == 0 {
			return
		}
		for i := range e.seqPending {
			if !e.seqPending[i] {
				continue
			}
			e.seqPending[i] = false
			e.seqLive--
			e.exec(e.p.seqs[i], buf, -1)
			e.stats.SeqRuns++
		}
		return
	}
	for i := range e.p.seqs {
		e.exec(e.p.seqs[i], buf, -1)
	}
	e.stats.SeqRuns += uint64(len(e.p.seqs))
}

// exec interprets one node's ops. The loop has no allocation, no map
// lookups and no error paths: the compiler resolved or rejected
// everything that could fail.
func (e *Engine) exec(ops []op, buf *[]rtl.Write, self int) {
	vals := e.st.Vals
	mems := e.st.Mems
	stack := e.stack
	sp := 0
	pc := 0
	for pc < len(ops) {
		o := &ops[pc]
		pc++
		switch o.code {
		case opConst:
			stack[sp] = o.val
			sp++
		case opLoad:
			stack[sp] = vals[o.a] & o.val
			sp++
		case opLoadMem:
			idx := stack[sp-1]
			if idx < uint64(o.b) {
				stack[sp-1] = mems[o.a][idx] & o.val
			} else {
				stack[sp-1] = 0
			}
		case opNot:
			stack[sp-1] = ^stack[sp-1] & o.val
		case opNeg:
			stack[sp-1] = -stack[sp-1] & o.val
		case opLogNot:
			stack[sp-1] = b2u(stack[sp-1] == 0)
		case opRedAnd:
			stack[sp-1] = b2u(stack[sp-1] == o.val)
		case opRedOr:
			stack[sp-1] = b2u(stack[sp-1] != 0)
		case opRedXor:
			p := stack[sp-1]
			p ^= p >> 32
			p ^= p >> 16
			p ^= p >> 8
			p ^= p >> 4
			p ^= p >> 2
			p ^= p >> 1
			stack[sp-1] = p & 1
		case opAdd:
			sp--
			stack[sp-1] = (stack[sp-1] + stack[sp]) & o.val
		case opSub:
			sp--
			stack[sp-1] = (stack[sp-1] - stack[sp]) & o.val
		case opMul:
			sp--
			stack[sp-1] = (stack[sp-1] * stack[sp]) & o.val
		case opDiv:
			sp--
			if stack[sp] == 0 {
				stack[sp-1] = o.val
			} else {
				stack[sp-1] = (stack[sp-1] / stack[sp]) & o.val
			}
		case opMod:
			sp--
			if stack[sp] == 0 {
				stack[sp-1] = stack[sp-1] & o.val
			} else {
				stack[sp-1] = (stack[sp-1] % stack[sp]) & o.val
			}
		case opAnd:
			sp--
			stack[sp-1] &= stack[sp]
		case opOr:
			sp--
			stack[sp-1] = (stack[sp-1] | stack[sp]) & o.val
		case opXor:
			sp--
			stack[sp-1] = (stack[sp-1] ^ stack[sp]) & o.val
		case opLogAnd:
			sp--
			stack[sp-1] = b2u(stack[sp-1] != 0 && stack[sp] != 0)
		case opLogOr:
			sp--
			stack[sp-1] = b2u(stack[sp-1] != 0 || stack[sp] != 0)
		case opEq:
			sp--
			stack[sp-1] = b2u(stack[sp-1] == stack[sp])
		case opNe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] != stack[sp])
		case opLt:
			sp--
			stack[sp-1] = b2u(stack[sp-1] < stack[sp])
		case opLe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] <= stack[sp])
		case opGt:
			sp--
			stack[sp-1] = b2u(stack[sp-1] > stack[sp])
		case opGe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] >= stack[sp])
		case opShl:
			sp--
			if stack[sp] >= 64 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = (stack[sp-1] << stack[sp]) & o.val
			}
		case opShr:
			sp--
			if stack[sp] >= 64 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] >>= stack[sp]
			}
		case opBit:
			sp--
			idx := stack[sp]
			if idx >= 64 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = stack[sp-1] >> idx & 1
			}
		case opRange:
			stack[sp-1] = stack[sp-1] >> uint(o.b) & o.val
		case opConcat:
			sp--
			stack[sp-1] = stack[sp-1]<<uint(o.b) | (stack[sp] & o.val)
		case opRepeat:
			pv := stack[sp-1]
			var out uint64
			for i := int32(0); i < o.a; i++ {
				out = out<<uint(o.b) | (pv & o.val)
			}
			stack[sp-1] = out
		case opDup:
			stack[sp] = stack[sp-1]
			sp++
		case opPop:
			sp--
		case opJmp:
			pc = int(o.a)
		case opJz:
			sp--
			if stack[sp] == 0 {
				pc = int(o.a)
			}
		case opCaseEq:
			sp--
			if stack[sp] == stack[sp-1] {
				pc = int(o.a)
			}

		case opStore:
			sp--
			old := vals[o.a]
			nv := (old &^ o.val) | (stack[sp] & o.val)
			if nv != old {
				vals[o.a] = nv
				e.touchSig(int(o.a), self)
			}
		case opStoreBit:
			sp -= 2
			idx := stack[sp+1]
			if idx < uint64(o.b) {
				old := vals[o.a]
				m := uint64(1) << idx
				nv := (old &^ m) | ((stack[sp] & 1) << idx)
				if nv != old {
					vals[o.a] = nv
					e.touchSig(int(o.a), self)
				}
			}
		case opStoreRange:
			sp--
			old := vals[o.a]
			nv := (old &^ o.val) | ((stack[sp] << uint(o.b)) & o.val)
			if nv != old {
				vals[o.a] = nv
				e.touchSig(int(o.a), self)
			}
		case opStoreMem:
			sp -= 2
			idx := stack[sp+1]
			if idx < uint64(o.b) {
				nv := stack[sp] & o.val
				if mems[o.a][idx] != nv {
					mems[o.a][idx] = nv
					e.touchMem(int(o.a))
				}
			}

		case opNBStore:
			sp--
			*buf = append(*buf, rtl.Write{Sig: e.p.signals[o.a], Mask: o.val, Val: stack[sp] & o.val})
		case opNBStoreBit:
			sp -= 2
			idx := stack[sp+1]
			if idx < uint64(o.b) {
				*buf = append(*buf, rtl.Write{Sig: e.p.signals[o.a], Mask: 1 << idx, Val: (stack[sp] & 1) << idx})
			}
		case opNBStoreRange:
			sp--
			*buf = append(*buf, rtl.Write{Sig: e.p.signals[o.a], Mask: o.val, Val: (stack[sp] << uint(o.b)) & o.val})
		case opNBStoreMem:
			sp -= 2
			*buf = append(*buf, rtl.Write{Mem: e.p.mems[o.a], Idx: stack[sp+1], Val: stack[sp]})
		}
	}
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
