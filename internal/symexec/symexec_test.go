package symexec

import (
	"testing"

	"hardsnap/internal/asm"
	"hardsnap/internal/expr"
)

// explore runs the executor with a simple DFS worklist (no hardware)
// until all states terminate or budget is exhausted.
func explore(t *testing.T, src string, cfg Config) []*State {
	t.Helper()
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	e, err := New(cfg, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return exploreWith(t, e)
}

func exploreWith(t *testing.T, e *Executor) []*State {
	t.Helper()
	active := []*State{e.InitialState()}
	var finished []*State
	steps := 0
	for len(active) > 0 {
		steps++
		if steps > 500000 {
			t.Fatal("exploration budget exhausted")
		}
		st := active[len(active)-1]
		forks, err := e.Step(st)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		active = append(active, forks...)
		// Move terminated states out.
		kept := active[:0]
		for _, s := range active {
			if s.Status == StatusRunning {
				kept = append(kept, s)
			} else {
				finished = append(finished, s)
			}
		}
		active = kept
	}
	return finished
}

func countStatus(states []*State, status Status) int {
	n := 0
	for _, s := range states {
		if s.Status == status {
			n++
		}
	}
	return n
}

func TestConcreteExecution(t *testing.T) {
	finished := explore(t, `
		addi r1, r0, 6
		addi r2, r0, 7
		mul r3, r1, r2
		addi r4, r0, 42
		beq r3, r4, ok
		abort
ok:
		halt
	`, Config{})
	if len(finished) != 1 || finished[0].Status != StatusHalted {
		t.Fatalf("states: %d, first %v", len(finished), finished[0].Status)
	}
}

func TestSymbolicBranchForks(t *testing.T) {
	// One symbolic byte, branch on its value: two paths.
	finished := explore(t, `
_start:
		li r1, 0x100     ; buffer
		addi r2, r0, 1   ; len
		addi r3, r0, 7   ; tag
		ecall 1          ; make_symbolic
		lbu r4, 0(r1)
		addi r5, r0, 65
		beq r4, r5, isA
		halt
isA:
		halt
	`, Config{})
	if len(finished) != 2 {
		t.Fatalf("paths: %d, want 2", len(finished))
	}
	if countStatus(finished, StatusHalted) != 2 {
		t.Fatalf("both paths should halt: %+v", finished)
	}
}

func TestAssertFailureFindsInput(t *testing.T) {
	finished := explore(t, `
_start:
		li r1, 0x100
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1          ; 4 symbolic bytes
		lw r4, 0(r1)
		li r5, 0xDEADBEEF
		; assert(x != 0xDEADBEEF) -- fails exactly when x == DEADBEEF
		xor r1, r4, r5
		ecall 2
		halt
	`, Config{})
	fails := 0
	for _, s := range finished {
		if s.Status != StatusAssertFail {
			continue
		}
		fails++
		if s.Model == nil {
			t.Fatal("failing state must carry a model")
		}
		// Reconstruct the input from the model: bytes sym1_0..sym1_3.
		var x uint32
		for i := 0; i < 4; i++ {
			name := []string{"sym1_0", "sym1_1", "sym1_2", "sym1_3"}[i]
			x |= uint32(s.Model[name]) << (8 * i)
		}
		if x != 0xDEADBEEF {
			t.Fatalf("model gives %#x, want DEADBEEF (model %v)", x, s.Model)
		}
	}
	if fails != 1 {
		t.Fatalf("assert failures: %d, want 1", fails)
	}
	if countStatus(finished, StatusHalted) != 1 {
		t.Fatalf("exactly one passing path expected: %v", finished)
	}
}

func TestAssumePrunes(t *testing.T) {
	finished := explore(t, `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 2
		ecall 1
		lbu r4, 0(r1)
		; assume(x < 10)
		sltiu r1, r4, 10
		ecall 5
		; branch on x >= 10 must now be infeasible
		addi r5, r0, 10
		bltu r4, r5, small
		abort
small:
		halt
	`, Config{})
	if countStatus(finished, StatusAborted) != 0 {
		t.Fatal("assume failed to prune the large-value path")
	}
	if countStatus(finished, StatusHalted) != 1 {
		t.Fatalf("want 1 halted path, got %+v", finished)
	}
}

func TestMultiwayExploration(t *testing.T) {
	// 3 sequential symbolic branches -> 8 paths.
	finished := explore(t, `
_start:
		li r1, 0x100
		addi r2, r0, 3
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		lbu r5, 1(r1)
		lbu r6, 2(r1)
		andi r4, r4, 1
		andi r5, r5, 1
		andi r6, r6, 1
		add r7, r4, r5
		add r7, r7, r6
		halt
	`, Config{})
	// No branches in the code itself; all ANDs are symbolic but no
	// forks happen without branches.
	if len(finished) != 1 {
		t.Fatalf("paths: %d, want 1 (no branching)", len(finished))
	}

	finished = explore(t, `
_start:
		li r1, 0x100
		addi r2, r0, 3
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		lbu r5, 1(r1)
		lbu r6, 2(r1)
		addi r7, r0, 0
		andi r4, r4, 1
		beq r4, r0, b2
		addi r7, r7, 1
b2:
		andi r5, r5, 1
		beq r5, r0, b3
		addi r7, r7, 1
b3:
		andi r6, r6, 1
		beq r6, r0, done
		addi r7, r7, 1
done:
		halt
	`, Config{})
	if len(finished) != 8 {
		t.Fatalf("paths: %d, want 8", len(finished))
	}
}

func TestSymbolicMemoryRoundTrip(t *testing.T) {
	finished := explore(t, `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 3
		ecall 1
		lbu r4, 0(r1)      ; symbolic byte
		sb r4, 64(r1)      ; store elsewhere
		lbu r5, 64(r1)     ; read back
		bne r4, r5, bad
		halt
bad:
		abort
	`, Config{})
	if countStatus(finished, StatusAborted) != 0 {
		t.Fatal("symbolic memory round trip lost equality")
	}
}

func TestSymbolicStoreAddressConcretized(t *testing.T) {
	// Store to base + (x & 3): with ConcretizeAll, up to 4 paths.
	src := `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 3
		li r5, 0x200
		add r5, r5, r4
		addi r6, r0, 77
		sb r6, 0(r5)
		halt
	`
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Policy: ConcretizeAll, MaxValues: 16}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	finished := exploreWith(t, e)
	if len(finished) != 4 {
		t.Fatalf("paths with ConcretizeAll: %d, want 4", len(finished))
	}

	e2, err := New(Config{Policy: ConcretizeOne}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	finished = exploreWith(t, e2)
	if len(finished) != 1 {
		t.Fatalf("paths with ConcretizeOne: %d, want 1", len(finished))
	}
}

func TestFaultOnWildAccess(t *testing.T) {
	finished := explore(t, `
		li r1, 0x30000000
		lw r2, 0(r1)
		halt
	`, Config{})
	if countStatus(finished, StatusFault) != 1 {
		t.Fatalf("want fault, got %+v", finished[0].Status)
	}
}

func TestMMIOWithoutHardwareFaults(t *testing.T) {
	finished := explore(t, `
		li r1, 0x40000000
		lw r2, 0(r1)
		halt
	`, Config{})
	if countStatus(finished, StatusFault) != 1 {
		t.Fatal("MMIO access without hardware must fault")
	}
}

// recordingMMIO is a test double standing in for the engine's bus.
type recordingMMIO struct {
	regs   map[uint32]uint32
	writes []uint32
}

func (m *recordingMMIO) Read(st *State, addr uint32) (uint32, error) {
	return m.regs[addr], nil
}

func (m *recordingMMIO) Write(st *State, addr uint32, val uint32) error {
	m.writes = append(m.writes, val)
	if m.regs == nil {
		m.regs = map[uint32]uint32{}
	}
	m.regs[addr] = val
	return nil
}

func TestMMIOForwarding(t *testing.T) {
	src := `
		li r1, 0x40000000
		li r2, 0x1234
		sw r2, 0(r1)
		lw r3, 0(r1)
		li r4, 0x1234
		beq r3, r4, ok
		abort
ok:
		halt
	`
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	mm := &recordingMMIO{}
	e, err := New(Config{}, prog, mm)
	if err != nil {
		t.Fatal(err)
	}
	finished := exploreWith(t, e)
	if countStatus(finished, StatusHalted) != 1 {
		t.Fatalf("round trip failed: %+v", finished)
	}
	if len(mm.writes) != 1 || mm.writes[0] != 0x1234 {
		t.Fatalf("writes: %v", mm.writes)
	}
}

func TestSymbolicMMIOWriteConcretized(t *testing.T) {
	src := `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1     ; x & 1: two possible values
		li r5, 0x40000000
		sw r4, 0(r5)
		halt
	`
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	mm := &recordingMMIO{}
	e, err := New(Config{Policy: ConcretizeAll}, prog, mm)
	if err != nil {
		t.Fatal(err)
	}
	finished := exploreWith(t, e)
	if len(finished) != 2 {
		t.Fatalf("paths: %d, want 2 (one per concrete value)", len(finished))
	}
	if len(mm.writes) != 2 {
		t.Fatalf("hardware writes: %v, want two (one per path)", mm.writes)
	}
	seen := map[uint32]bool{}
	for _, w := range mm.writes {
		seen[w] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("concretized values: %v, want {0,1}", mm.writes)
	}
}

func TestInterruptDispatchAndMret(t *testing.T) {
	src := `
_start:
		la r1, handler
		li r2, 0xFC0
		sw r1, 0(r2)
		addi r5, r0, 0
		nop
		nop
		halt
handler:
		addi r5, r5, 1
		mret
	`
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := e.InitialState()
	// Execute setup (la=5, li=1? li 0xFC0 -> one addi... count via loop).
	for i := 0; i < 9; i++ {
		if _, err := e.Step(st); err != nil {
			t.Fatal(err)
		}
	}
	st.IRQPending = 1
	if err := e.ServePendingInterrupt(st); err != nil {
		t.Fatal(err)
	}
	if !st.InHandler {
		t.Fatalf("not in handler, pc=%#x", st.PC)
	}
	for st.Status == StatusRunning {
		if err := e.ServePendingInterrupt(st); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Step(st); err != nil {
			t.Fatal(err)
		}
		if st.Steps > 100 {
			t.Fatal("runaway")
		}
	}
	if st.Status != StatusHalted {
		t.Fatalf("status %v (err %v)", st.Status, st.Err)
	}
	if v, ok := st.Regs[5].Const(); !ok || v != 1 {
		t.Fatalf("handler count: %v", st.Regs[5])
	}
}

func TestSearchers(t *testing.T) {
	b := expr.NewBuilder()
	zero := b.Const(0, 32)
	mk := func(id uint64) *State {
		s := &State{ID: id, Status: StatusRunning}
		for i := range s.Regs {
			s.Regs[i] = zero
		}
		return s
	}
	states := []*State{mk(1), mk(2), mk(3)}
	if (DFS{}).Select(states, nil) != 2 {
		t.Error("dfs should pick last")
	}
	if (BFS{}).Select(states, nil) != 0 {
		t.Error("bfs should pick first")
	}
	rr := &RoundRobin{}
	picks := []int{rr.Select(states, nil), rr.Select(states, nil), rr.Select(states, nil), rr.Select(states, nil)}
	if picks[0] != 0 || picks[1] != 1 || picks[2] != 2 || picks[3] != 0 {
		t.Errorf("round robin picks: %v", picks)
	}
	r := NewRandom(1)
	idx := r.Select(states, nil)
	if idx < 0 || idx > 2 {
		t.Error("random out of range")
	}
	cov := NewCoverage()
	states[0].PC = 0x10
	states[1].PC = 0x20
	if cov.Select(states, nil) != 0 {
		t.Error("coverage should pick unseen")
	}
	if cov.Select(states, nil) != 1 {
		t.Error("coverage should pick next unseen")
	}
}

func TestConsoleOutput(t *testing.T) {
	finished := explore(t, `
		addi r1, r0, 72
		ecall 3
		addi r1, r0, 105
		ecall 3
		halt
	`, Config{})
	if string(finished[0].Console) != "Hi" {
		t.Fatalf("console %q", finished[0].Console)
	}
}

func TestDivisionSemantics(t *testing.T) {
	finished := explore(t, `
		addi r1, r0, 100
		addi r2, r0, 0
		divu r3, r1, r2
		li r4, 0xFFFFFFFF
		beq r3, r4, ok
		abort
ok:
		halt
	`, Config{})
	if countStatus(finished, StatusHalted) != 1 {
		t.Fatal("division by zero semantics mismatch")
	}
}

func TestOverlayGrowth(t *testing.T) {
	finished := explore(t, `
		li r1, 0x200
		addi r2, r0, 0
loop:
		sb r2, 0(r1)
		addi r1, r1, 1
		addi r2, r2, 1
		slti r3, r2, 50
		bne r3, r0, loop
		halt
	`, Config{})
	if len(finished) != 1 || finished[0].Status != StatusHalted {
		t.Fatalf("status: %v", finished[0].Status)
	}
	if finished[0].Mem.OverlaySize() != 50 {
		t.Fatalf("overlay size %d, want 50", finished[0].Mem.OverlaySize())
	}
}

func TestLoadSignExtensionSymbolic(t *testing.T) {
	// Store a symbolic byte, load it back with lb/lbu and verify sign
	// semantics via solver-checked branches.
	finished := explore(t, `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		; assume input >= 0x80 (sign bit set)
		lbu r4, 0(r1)
		sltiu r1, r4, 0x80
		xori r1, r1, 1
		ecall 5
		lb r5, 0x100(r0)    ; sign-extended load
		; r5 must be negative
		slt r1, r5, r0
		ecall 2
		lbu r6, 0x100(r0)   ; zero-extended load
		; r6 must be positive and >= 0x80
		sltiu r7, r6, 0x80
		xori r1, r7, 1
		ecall 2
		halt
	`, Config{})
	if countStatus(finished, StatusAssertFail) != 0 {
		t.Fatal("sign extension semantics broken")
	}
	if countStatus(finished, StatusHalted) != 1 {
		t.Fatalf("paths: %+v", finished)
	}
}

func TestHalfwordSymbolic(t *testing.T) {
	finished := explore(t, `
_start:
		li r1, 0x100
		addi r2, r0, 2
		addi r3, r0, 1
		ecall 1
		lh r4, 0(r1)
		lhu r5, 0(r1)
		; low 16 bits must agree
		li r6, 0xFFFF
		and r7, r4, r6
		and r8, r5, r6
		bne r7, r8, bad
		halt
bad:
		abort
	`, Config{})
	if countStatus(finished, StatusAborted) != 0 {
		t.Fatal("halfword load semantics inconsistent")
	}
}

// TestBudgetExhaustionParksUnknown: a branch the solver cannot decide
// within its conflict budget must park the state as StatusUnknown —
// not prune it as infeasible (the path may well be feasible).
func TestBudgetExhaustionParksUnknown(t *testing.T) {
	src := `
_start:
	li r1, 0x100
	addi r2, r0, 4
	addi r3, r0, 1
	ecall 1
	lhu r4, 0(r1)
	lhu r5, 2(r1)
	mul r6, r4, r5
	li r7, 0x3FF7
	beq r6, r7, hit
	halt
hit:
	halt
`
	for _, disable := range []bool{false, true} {
		e, err := New(Config{SolverConflicts: 1, DisableSolverOpt: disable},
			mustAssemble(t, src), nil)
		if err != nil {
			t.Fatal(err)
		}
		finished := exploreWith(t, e)
		if got := countStatus(finished, StatusUnknown); got != 1 {
			t.Fatalf("opt-disabled=%v: %d unknown states, want 1 (statuses: %v)",
				disable, got, statuses(finished))
		}
		if countStatus(finished, StatusInfeasible) != 0 {
			t.Fatalf("opt-disabled=%v: budget exhaustion was mispruned as infeasible", disable)
		}
		if e.Stats.SolverUnknowns == 0 {
			t.Fatalf("opt-disabled=%v: SolverUnknowns not counted", disable)
		}
	}
}

func statuses(states []*State) []Status {
	out := make([]Status, len(states))
	for i, s := range states {
		out[i] = s.Status
	}
	return out
}

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestSolverCallAccounting: Stats.SolverCalls must equal the queries
// the solver actually ran — including enumeration blocking queries —
// not a guess derived from the value count.
func TestSolverCallAccounting(t *testing.T) {
	src := `
_start:
	li r1, 0x100
	addi r2, r0, 1
	addi r3, r0, 1
	ecall 1
	lbu r4, 0(r1)
	andi r4, r4, 3
	slli r4, r4, 2
	li r5, 0x200
	add r4, r4, r5
	sw r4, 0(r4)
	halt
`
	e, err := New(Config{Policy: ConcretizeAll, MaxValues: 16}, mustAssemble(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	finished := exploreWith(t, e)
	if got := countStatus(finished, StatusHalted); got != 4 {
		t.Fatalf("%d halted paths, want 4", got)
	}
	if e.Stats.SolverCalls != uint64(e.Solver.Stats.Queries) {
		t.Fatalf("SolverCalls=%d but solver ran %d queries",
			e.Stats.SolverCalls, e.Solver.Stats.Queries)
	}
}

// TestSolverOptPreservesExploration: the full optimization stack and
// plain solving must explore identical trees (same statuses, same
// PCs), with the stack's stage counters actually moving.
func TestSolverOptPreservesExploration(t *testing.T) {
	src := `
_start:
	li r1, 0x100
	addi r2, r0, 3
	addi r3, r0, 1
	ecall 1
	addi r7, r0, 0
	lbu r4, 0(r1)
	add r7, r7, r4
	lbu r4, 1(r1)
	add r7, r7, r4
	li r5, 300
	bltu r7, r5, low
	abort
low:
	lbu r4, 2(r1)
	addi r5, r0, 9
	bne r4, r5, out
	abort
out:
	halt
`
	run := func(disable bool) (*Executor, []*State) {
		e, err := New(Config{DisableSolverOpt: disable}, mustAssemble(t, src), nil)
		if err != nil {
			t.Fatal(err)
		}
		return e, exploreWith(t, e)
	}
	eOn, on := run(false)
	eOff, off := run(true)
	if len(on) != len(off) {
		t.Fatalf("path counts differ: on=%d off=%d", len(on), len(off))
	}
	for _, status := range []Status{StatusHalted, StatusAborted, StatusInfeasible, StatusUnknown} {
		if countStatus(on, status) != countStatus(off, status) {
			t.Fatalf("status %v count differs: on=%d off=%d",
				status, countStatus(on, status), countStatus(off, status))
		}
	}
	st := eOn.Solver.Stats
	if st.Rewrites == 0 && st.Sliced == 0 && st.ModelHits == 0 && st.IncrementalReuses == 0 {
		t.Fatalf("optimization stack never fired: %+v", st)
	}
	if off := eOff.Solver.Stats; off.Rewrites != 0 || off.Sliced != 0 || off.ModelHits != 0 || off.IncrementalReuses != 0 {
		t.Fatalf("disabled stack moved counters: %+v", off)
	}
}
