// Package symexec implements the selective symbolic executor for HS32
// firmware: the software half of HardSnap's virtual machine. It is a
// KLEE-style forking interpreter — each state carries a symbolic
// register file, a copy-on-write symbolic memory overlay and a path
// condition — extended, as in the paper, with a hardware snapshot
// identifier per state and a concretization policy at the
// hardware/software boundary.
package symexec

import (
	"fmt"

	"hardsnap/internal/expr"
	"hardsnap/internal/isa"
	"hardsnap/internal/vm"
)

// Status describes where a state's execution stands.
type Status int

// State statuses.
const (
	StatusRunning Status = iota + 1
	StatusHalted
	StatusAborted
	StatusAssertFail
	StatusFault
	StatusInfeasible
	StatusBudget
	// StatusUnknown marks a state parked because the solver could not
	// decide its path condition within the conflict budget. Unlike
	// StatusInfeasible the path may still be feasible; it is reported
	// separately so budget-starved paths are never silently pruned.
	StatusUnknown
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusAborted:
		return "aborted"
	case StatusAssertFail:
		return "assert-failed"
	case StatusFault:
		return "fault"
	case StatusInfeasible:
		return "infeasible"
	case StatusBudget:
		return "budget"
	case StatusUnknown:
		return "unknown"
	}
	return "?"
}

// SnapshotID identifies the hardware snapshot bound to a software
// state. Zero means "no hardware snapshot yet" (the state has not
// touched hardware).
type SnapshotID uint64

// State is one symbolic execution state: the software 3-tuple
// {PC, stack/registers, memory} of the paper plus the hardware
// snapshot identifier that extends it to a full HW/SW state.
type State struct {
	ID     uint64
	Parent uint64

	PC   uint32
	Regs [isa.NumRegs]*expr.Term

	// Mem is the symbolic memory overlay over the concrete image.
	Mem *Memory

	// Constraints is the path condition (conjunction of width-1
	// terms).
	Constraints []*expr.Term

	// HWSnapshot binds this state to its private hardware state.
	HWSnapshot SnapshotID

	// Interrupt handling state (mirrors the concrete VM).
	EPC        uint32
	InHandler  bool
	IRQPending uint32

	Status Status
	// Err carries detail for StatusFault.
	Err error
	// Steps counts retired instructions on this path.
	Steps uint64
	// Console accumulates putchar/putint output.
	Console []byte
	// Model holds a satisfying assignment when the state terminated
	// in a way worth reporting (assert failure, abort).
	Model expr.Assignment
	// SymInputs records every make-symbolic buffer registered on this
	// path, in program order; used for test-vector extraction.
	SymInputs []SymInput
}

// SymInput describes one make-symbolic buffer.
type SymInput struct {
	Tag  uint32
	Addr uint32
	Len  uint32
}

// Fork clones the state for a new path.
func (st *State) Fork(newID uint64) *State {
	c := &State{
		ID:         newID,
		Parent:     st.ID,
		PC:         st.PC,
		Regs:       st.Regs,
		Mem:        st.Mem.Clone(),
		HWSnapshot: 0, // assigned by the snapshot controller on demand
		EPC:        st.EPC,
		InHandler:  st.InHandler,
		IRQPending: st.IRQPending,
		Status:     st.Status,
		Steps:      st.Steps,
	}
	c.Constraints = make([]*expr.Term, len(st.Constraints), len(st.Constraints)+1)
	copy(c.Constraints, st.Constraints)
	c.Console = append([]byte(nil), st.Console...)
	c.SymInputs = append([]SymInput(nil), st.SymInputs...)
	return c
}

// Clone copies the state verbatim — same ID, parent, status and steps
// — so the copy can be executed and mutated without disturbing the
// original (replayed subtree attempts in the parallel engine). The
// hardware snapshot reference is carried over as-is; a caller that
// will release the clone's snapshot must first rebind it to a
// reference the caller owns.
func (st *State) Clone() *State {
	c := *st
	if st.Mem != nil {
		c.Mem = st.Mem.Clone()
	}
	c.Constraints = append([]*expr.Term(nil), st.Constraints...)
	c.Console = append([]byte(nil), st.Console...)
	c.SymInputs = append([]SymInput(nil), st.SymInputs...)
	if st.Model != nil {
		c.Model = make(expr.Assignment, len(st.Model))
		for k, v := range st.Model {
			c.Model[k] = v
		}
	}
	return &c
}

// AddConstraint conjoins a path constraint.
func (st *State) AddConstraint(c *expr.Term) {
	st.Constraints = append(st.Constraints, c)
}

// Memory is a two-level symbolic memory: a shared concrete backing
// image (the loaded firmware, never mutated) plus a per-state overlay
// of symbolic or written bytes. Forking copies only the overlay.
type Memory struct {
	base    uint32
	backing []byte // shared, read-only
	overlay map[uint32]*expr.Term
}

// NewMemory wraps a concrete RAM image.
func NewMemory(base uint32, image []byte) *Memory {
	return &Memory{
		base:    base,
		backing: image,
		overlay: make(map[uint32]*expr.Term),
	}
}

// Clone copies the overlay (the backing is shared).
func (m *Memory) Clone() *Memory {
	o := make(map[uint32]*expr.Term, len(m.overlay))
	for k, v := range m.overlay {
		o[k] = v
	}
	return &Memory{base: m.base, backing: m.backing, overlay: o}
}

// InRange reports whether [addr, addr+size) lies inside RAM.
func (m *Memory) InRange(addr uint32, size uint32) bool {
	return addr >= m.base && addr-m.base+size <= uint32(len(m.backing))
}

// OverlaySize returns the number of overlaid bytes (diagnostics).
func (m *Memory) OverlaySize() int { return len(m.overlay) }

// LoadByte returns the 8-bit term at addr.
func (m *Memory) LoadByte(b *expr.Builder, addr uint32) (*expr.Term, error) {
	if !m.InRange(addr, 1) {
		return nil, &vm.FaultError{Addr: addr, Msg: "symbolic load outside RAM"}
	}
	if t, ok := m.overlay[addr]; ok {
		return t, nil
	}
	return b.Const(uint64(m.backing[addr-m.base]), 8), nil
}

// StoreByte stores an 8-bit term at addr.
func (m *Memory) StoreByte(addr uint32, t *expr.Term) error {
	if !m.InRange(addr, 1) {
		return &vm.FaultError{Addr: addr, Msg: "symbolic store outside RAM"}
	}
	if t.Width() != 8 {
		return fmt.Errorf("symexec: StoreByte with width %d", t.Width())
	}
	m.overlay[addr] = t
	return nil
}

// Read composes a little-endian value of size bytes (1, 2 or 4).
func (m *Memory) Read(b *expr.Builder, addr uint32, size int) (*expr.Term, error) {
	var out *expr.Term
	for i := size - 1; i >= 0; i-- {
		byteT, err := m.LoadByte(b, addr+uint32(i))
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = byteT
		} else {
			out = b.Concat(out, byteT)
		}
	}
	return out, nil
}

// Write decomposes a value into little-endian bytes.
func (m *Memory) Write(b *expr.Builder, addr uint32, size int, t *expr.Term) error {
	for i := 0; i < size; i++ {
		byteT := b.Extract(t, uint(8*i), 8)
		if err := m.StoreByte(addr+uint32(i), byteT); err != nil {
			return err
		}
	}
	return nil
}

// ConcreteWord reads a 32-bit word that must be fully concrete (used
// for instruction fetch and vector table loads).
func (m *Memory) ConcreteWord(b *expr.Builder, addr uint32) (uint32, error) {
	t, err := m.Read(b, addr, 4)
	if err != nil {
		return 0, err
	}
	v, ok := t.Const()
	if !ok {
		return 0, &vm.FaultError{Addr: addr, Msg: "fetch of symbolic memory"}
	}
	return uint32(v), nil
}
