package symexec

import "math/rand"

// Searcher picks the next state to execute from the active set
// (KLEE's state selection heuristic, extended by the engine with
// INCEPTION's interrupt-atomicity rule).
//
// Concurrency contract: Select is only ever called from a single
// scheduling goroutine — the engine's main loop, which under parallel
// exploration is the seed/merge goroutine. Stateful searchers
// (RoundRobin, Random, Coverage) are NOT safe to share across
// workers; the parallel engine gives every worker subtree its own
// instance via Fork (see ForkableSearcher) instead of sharing hidden
// PRNG or history state.
type Searcher interface {
	Name() string
	// Select returns the index of the next state within active
	// (non-empty). prev is the previously executed state (may be nil
	// or no longer active).
	Select(active []*State, prev *State) int
}

// ForkableSearcher is implemented by searchers that carry hidden
// state (PRNGs, visit history, last-scheduled cursors). Fork returns
// an independent instance for one worker subtree; stream is a small
// deterministic subtree number, so forked PRNG streams are
// reproducible and decorrelated. Stateless searchers need not
// implement it.
type ForkableSearcher interface {
	Searcher
	Fork(stream int64) Searcher
}

// ForkSearcher returns an independent per-subtree instance of s: its
// Fork when s is stateful, s itself when it is stateless (DFS, BFS).
func ForkSearcher(s Searcher, stream int64) Searcher {
	if f, ok := s.(ForkableSearcher); ok {
		return f.Fork(stream)
	}
	return s
}

// DFS always continues the most recently created state, minimizing
// hardware context switches.
type DFS struct{}

// Name implements Searcher.
func (DFS) Name() string { return "dfs" }

// Select implements Searcher.
func (DFS) Select(active []*State, prev *State) int { return len(active) - 1 }

// BFS explores states in creation order, maximizing breadth (and
// hardware context switches — the paper's stress case).
type BFS struct{}

// Name implements Searcher.
func (BFS) Name() string { return "bfs" }

// Select implements Searcher.
func (BFS) Select(active []*State, prev *State) int { return 0 }

// RoundRobin steps every active state in turn: the scheduling used to
// demonstrate concurrent-path hardware inconsistency (Fig. 1).
type RoundRobin struct {
	last uint64
}

// Name implements Searcher.
func (*RoundRobin) Name() string { return "round-robin" }

// Select implements Searcher.
func (r *RoundRobin) Select(active []*State, prev *State) int {
	best := -1
	for i, st := range active {
		if st.ID > r.last {
			if best < 0 || st.ID < active[best].ID {
				best = i
			}
		}
	}
	if best < 0 {
		// Wrap around to the lowest ID.
		best = 0
		for i, st := range active {
			if st.ID < active[best].ID {
				best = i
			}
		}
	}
	r.last = active[best].ID
	return best
}

// Fork implements ForkableSearcher: the cursor is hidden state that
// must not be shared across workers, so each subtree starts fresh.
func (r *RoundRobin) Fork(stream int64) Searcher { return &RoundRobin{} }

// Random picks uniformly with a deterministic seed.
type Random struct {
	seed int64
	rng  *rand.Rand
}

// NewRandom builds a seeded random searcher.
func NewRandom(seed int64) *Random {
	return &Random{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Searcher.
func (*Random) Name() string { return "random" }

// Select implements Searcher.
func (r *Random) Select(active []*State, prev *State) int {
	return r.rng.Intn(len(active))
}

// seedMix spreads derived seeds across the 64-bit space (golden-ratio
// increment), so subtree streams are decorrelated but reproducible.
const seedMix = int64(-7046029254386353131)

// Fork implements ForkableSearcher: a fresh PRNG whose seed is
// derived from the parent seed and the subtree stream number. Two
// runs with the same root seed fork identical streams, regardless of
// how many Select calls the parent has already answered.
func (r *Random) Fork(stream int64) Searcher {
	return NewRandom(r.seed + (stream+1)*seedMix)
}

// Coverage prefers states whose program counter has not been visited
// yet, falling back to DFS.
type Coverage struct {
	seen map[uint32]bool
}

// NewCoverage builds a coverage-guided searcher.
func NewCoverage() *Coverage {
	return &Coverage{seen: make(map[uint32]bool)}
}

// Name implements Searcher.
func (*Coverage) Name() string { return "coverage" }

// Fork implements ForkableSearcher: the visited-PC set is hidden
// state; each subtree tracks its own coverage.
func (c *Coverage) Fork(stream int64) Searcher { return NewCoverage() }

// Select implements Searcher.
func (c *Coverage) Select(active []*State, prev *State) int {
	for i, st := range active {
		if !c.seen[st.PC] {
			c.seen[st.PC] = true
			return i
		}
	}
	return len(active) - 1
}
