package symexec

import "math/rand"

// Searcher picks the next state to execute from the active set
// (KLEE's state selection heuristic, extended by the engine with
// INCEPTION's interrupt-atomicity rule).
type Searcher interface {
	Name() string
	// Select returns the index of the next state within active
	// (non-empty). prev is the previously executed state (may be nil
	// or no longer active).
	Select(active []*State, prev *State) int
}

// DFS always continues the most recently created state, minimizing
// hardware context switches.
type DFS struct{}

// Name implements Searcher.
func (DFS) Name() string { return "dfs" }

// Select implements Searcher.
func (DFS) Select(active []*State, prev *State) int { return len(active) - 1 }

// BFS explores states in creation order, maximizing breadth (and
// hardware context switches — the paper's stress case).
type BFS struct{}

// Name implements Searcher.
func (BFS) Name() string { return "bfs" }

// Select implements Searcher.
func (BFS) Select(active []*State, prev *State) int { return 0 }

// RoundRobin steps every active state in turn: the scheduling used to
// demonstrate concurrent-path hardware inconsistency (Fig. 1).
type RoundRobin struct {
	last uint64
}

// Name implements Searcher.
func (*RoundRobin) Name() string { return "round-robin" }

// Select implements Searcher.
func (r *RoundRobin) Select(active []*State, prev *State) int {
	best := -1
	for i, st := range active {
		if st.ID > r.last {
			if best < 0 || st.ID < active[best].ID {
				best = i
			}
		}
	}
	if best < 0 {
		// Wrap around to the lowest ID.
		best = 0
		for i, st := range active {
			if st.ID < active[best].ID {
				best = i
			}
		}
	}
	r.last = active[best].ID
	return best
}

// Random picks uniformly with a deterministic seed.
type Random struct {
	rng *rand.Rand
}

// NewRandom builds a seeded random searcher.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Searcher.
func (*Random) Name() string { return "random" }

// Select implements Searcher.
func (r *Random) Select(active []*State, prev *State) int {
	return r.rng.Intn(len(active))
}

// Coverage prefers states whose program counter has not been visited
// yet, falling back to DFS.
type Coverage struct {
	seen map[uint32]bool
}

// NewCoverage builds a coverage-guided searcher.
func NewCoverage() *Coverage {
	return &Coverage{seen: make(map[uint32]bool)}
}

// Name implements Searcher.
func (*Coverage) Name() string { return "coverage" }

// Select implements Searcher.
func (c *Coverage) Select(active []*State, prev *State) int {
	for i, st := range active {
		if !c.seen[st.PC] {
			c.seen[st.PC] = true
			return i
		}
	}
	return len(active) - 1
}
