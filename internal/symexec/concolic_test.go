package symexec

import (
	"testing"

	"hardsnap/internal/asm"
	"hardsnap/internal/solver"
)

// concolicProg reads 4 input bytes and branches on a 32-bit magic
// compare; the concrete replay should take the "not magic" side and a
// single flip query should produce the magic word.
const concolicProg = `
_start:
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lw r4, 0(r1)
		li r5, 0x1BADC0DE
		bne r4, r5, ok
		abort
ok:
		halt
`

func runConcolic(t *testing.T, src string, input []byte) (*Executor, *ConcolicResult) {
	t.Helper()
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{}, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunConcolic(e.InitialState(), ConcolicInput{Default: input}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

func TestConcolicReplayFollowsConcretePath(t *testing.T) {
	_, res := runConcolic(t, concolicProg, []byte{1, 2, 3, 4})
	if res.State.Status != StatusHalted {
		t.Fatalf("status %v", res.State.Status)
	}
	if len(res.Branches) != 1 {
		t.Fatalf("%d branches traced, want 1", len(res.Branches))
	}
	// Input 0x04030201 != magic, so bne is taken (jumps to ok).
	if !res.Branches[0].Taken {
		t.Fatal("bne against non-magic input must be taken")
	}
	if res.Steps == 0 {
		t.Fatal("no steps counted")
	}
}

func TestConcolicFlipSolvesMagic(t *testing.T) {
	e, res := runConcolic(t, concolicProg, []byte{1, 2, 3, 4})
	r, model := e.SolveFlip(res, 0)
	if r != solver.Sat {
		t.Fatalf("flip query: %v", r)
	}
	if len(res.State.SymInputs) != 1 {
		t.Fatalf("%d symbolic inputs", len(res.State.SymInputs))
	}
	seed := ApplyModel(model, res.State.SymInputs[0].Tag, []byte{1, 2, 3, 4})

	// Replaying the solved seed must take the other side and abort.
	_, res2 := runConcolic(t, concolicProg, seed)
	if res2.State.Status != StatusAborted {
		t.Fatalf("solved seed replay ended %v, want abort", res2.State.Status)
	}
	if len(res2.Branches) != 1 || res2.Branches[0].Taken {
		t.Fatalf("solved seed branch trace %+v", res2.Branches)
	}
	word := uint32(seed[0]) | uint32(seed[1])<<8 | uint32(seed[2])<<16 | uint32(seed[3])<<24
	if word != 0x1BADC0DE {
		t.Fatalf("solved seed %x is not the magic word", seed)
	}
}

func TestApplyModelPreservesUnconstrainedBytes(t *testing.T) {
	// A model that only names byte 2 must leave the rest of the base
	// input untouched.
	e, res := runConcolic(t, `
_start:
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lbu r4, 2(r1)
		addi r5, r0, 77
		bne r4, r5, ok
		abort
ok:
		halt
	`, []byte{9, 8, 7, 6})
	r, model := e.SolveFlip(res, 0)
	if r != solver.Sat {
		t.Fatalf("flip query: %v", r)
	}
	seed := ApplyModel(model, res.State.SymInputs[0].Tag, []byte{9, 8, 7, 6})
	if seed[2] != 77 {
		t.Fatalf("constrained byte %d, want 77", seed[2])
	}
	if seed[0] != 9 || seed[1] != 8 || seed[3] != 6 {
		t.Fatalf("unconstrained bytes disturbed: %v", seed)
	}
}

func TestConcolicReplayNeverForksOrSolves(t *testing.T) {
	// A path through several input-dependent branches: the replay
	// resolves each by evaluation, so the solver is never consulted and
	// no forks occur.
	e, res := runConcolic(t, `
_start:
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 10
		blt r4, r5, small
		addi r6, r0, 1
small:
		lbu r4, 1(r1)
		addi r5, r0, 20
		bge r4, r5, big
		addi r6, r0, 2
big:
		halt
	`, []byte{5, 30, 0, 0})
	if res.State.Status != StatusHalted {
		t.Fatalf("status %v", res.State.Status)
	}
	if len(res.Branches) != 2 {
		t.Fatalf("%d branches", len(res.Branches))
	}
	if !res.Branches[0].Taken || !res.Branches[1].Taken {
		t.Fatalf("trace %+v: 5<10 and 30>=20 are both taken", res.Branches)
	}
	if e.Stats.SolverCalls != 0 {
		t.Fatalf("replay made %d solver calls", e.Stats.SolverCalls)
	}
	if e.Stats.Forks != 0 {
		t.Fatalf("replay forked %d times", e.Stats.Forks)
	}
	// PrefixLen must be monotonically non-decreasing along the trace.
	if res.Branches[1].PrefixLen < res.Branches[0].PrefixLen {
		t.Fatalf("prefix lengths out of order: %+v", res.Branches)
	}
}
