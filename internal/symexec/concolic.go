package symexec

import (
	"fmt"

	"hardsnap/internal/expr"
	"hardsnap/internal/solver"
)

// ConcolicBranch is one conditional branch observed during a concolic
// replay: the branch condition as a term over the symbolic input, the
// side the concrete input took, and how many path constraints were
// already accumulated when the branch executed (so the flip query can
// use exactly the prefix that reaches it).
type ConcolicBranch struct {
	PC        uint32
	Cond      *expr.Term
	Taken     bool
	PrefixLen int
}

// ConcolicResult is the outcome of a concolic replay.
type ConcolicResult struct {
	// State is the final state; State.Constraints holds the full path
	// condition of the concrete execution.
	State *State
	// Branches lists every input-dependent conditional branch along
	// the path, in execution order.
	Branches []ConcolicBranch
	// Steps counts the instructions replayed.
	Steps int
}

// ConcolicInput supplies the concrete bytes a concolic replay binds
// to make-symbolic buffers: per-tag overrides in Tags, with Default
// used for any tag the map does not name (the common fuzzer case —
// one input buffer, tag chosen by the firmware).
type ConcolicInput struct {
	Tags    map[uint32][]byte
	Default []byte
}

func (in ConcolicInput) bytesFor(tag uint32) []byte {
	if b, ok := in.Tags[tag]; ok {
		return b
	}
	return in.Default
}

// RunConcolic replays st along the path a concrete input takes,
// collecting the path condition and the input-dependent branches
// along it. Every decision the symbolic executor would normally pose
// to the solver (branch directions, boundary concretizations,
// assertions) is instead resolved by evaluating terms under the
// concrete input assignment. The replay never forks and never calls
// the solver, so its cost is one interpreted pass over the trace.
//
// The hybrid fuzzer uses this as the "concolic" half of the loop:
// replay a corpus input that keeps hitting a frontier branch, then
// hand SolveFlip the branch whose far side is still uncovered.
func (e *Executor) RunConcolic(st *State, in ConcolicInput, maxSteps int) (*ConcolicResult, error) {
	if e.concolic != nil {
		return nil, fmt.Errorf("symexec: concolic replay already in progress")
	}
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	ctx := &concolicCtx{
		assign: make(expr.Assignment),
		inputs: in,
	}
	e.concolic = ctx
	defer func() { e.concolic = nil }()

	steps := 0
	for st.Status == StatusRunning && steps < maxSteps {
		if err := e.ServePendingInterrupt(st); err != nil {
			return nil, err
		}
		forks, err := e.Step(st)
		if err != nil {
			return nil, err
		}
		if len(forks) != 0 {
			return nil, fmt.Errorf("symexec: concolic replay forked at pc=%#x", st.PC)
		}
		steps++
	}
	return &ConcolicResult{State: st, Branches: ctx.trace, Steps: steps}, nil
}

// concolicCtx is the per-replay mode state: the growing variable
// assignment (populated as make-symbolic calls bind input bytes), the
// concrete input bytes per tag, and the branch trace.
type concolicCtx struct {
	assign expr.Assignment
	inputs ConcolicInput
	trace  []ConcolicBranch
}

// FlipConstraints returns the constraint set whose model drives
// execution to the far side of res.Branches[i]: the path-condition
// prefix that reaches the branch plus the negation of the side taken.
func (res *ConcolicResult) FlipConstraints(b *expr.Builder, i int) []*expr.Term {
	br := res.Branches[i]
	cs := make([]*expr.Term, 0, br.PrefixLen+1)
	cs = append(cs, res.State.Constraints[:br.PrefixLen]...)
	if br.Taken {
		cs = append(cs, b.NotBool(br.Cond))
	} else {
		cs = append(cs, br.Cond)
	}
	return cs
}

// SolveFlip asks the solver for an input that takes the opposite side
// of res.Branches[i] while preserving the path prefix that reaches
// it. The returned model is partial: only the input bytes the flipped
// path actually constrains appear — apply it over the original input
// with ApplyModel.
func (e *Executor) SolveFlip(res *ConcolicResult, i int) (solver.Result, expr.Assignment) {
	e.Stats.SolverCalls++
	r, model, _ := e.Solver.Check(res.FlipConstraints(e.B, i))
	if r == solver.Unknown {
		e.Stats.SolverUnknowns++
	}
	return r, model
}

// ApplyModel overlays a solver model onto a concrete input buffer:
// bytes the model constrains (variables sym<tag>_<i>) are replaced,
// unconstrained bytes keep their original value so the solved seed
// stays as close as possible to the path the replay followed.
func ApplyModel(model expr.Assignment, tag uint32, base []byte) []byte {
	out := make([]byte, len(base))
	copy(out, base)
	for i := range out {
		if v, ok := model[fmt.Sprintf("sym%d_%d", tag, i)]; ok {
			out[i] = byte(v)
		}
	}
	return out
}
