package symexec

import (
	"fmt"

	"hardsnap/internal/asm"
	"hardsnap/internal/expr"
	"hardsnap/internal/isa"
	"hardsnap/internal/solver"
	"hardsnap/internal/vm"
)

// Policy selects how symbolic values are concretized when they reach
// the hardware boundary (the paper's user-customizable concretization
// policy).
type Policy int

// Concretization policies.
const (
	// ConcretizeOne picks a single feasible value (performance).
	ConcretizeOne Policy = iota + 1
	// ConcretizeAll enumerates feasible values up to MaxValues,
	// forking a state per value (completeness).
	ConcretizeAll
)

// MMIOHandler performs concrete hardware accesses on behalf of a
// state. The engine implements it with bus routing plus hardware
// context switching.
type MMIOHandler interface {
	Read(st *State, addr uint32) (uint32, error)
	Write(st *State, addr uint32, val uint32) error
}

// Config parameterizes the executor.
type Config struct {
	// VM describes the memory layout (RAM, MMIO window, vectors).
	VM vm.Config
	// Policy is the boundary concretization policy.
	Policy Policy
	// MaxValues bounds ConcretizeAll enumeration (default 8).
	MaxValues int
	// SolverConflicts bounds each solver query (0 = unlimited).
	SolverConflicts int64
	// DisableSolverOpt turns off the solver's query-optimization stack
	// (rewrite/slicing/model-reuse/incremental SAT), reverting to plain
	// whole-query solving. Used as the escape hatch for differential
	// testing and A/B benchmarking.
	DisableSolverOpt bool
}

// Stats counts executor activity.
type Stats struct {
	Instructions uint64
	Forks        uint64
	SolverCalls  uint64
	Concretized  uint64
	// SolverUnknowns counts queries the solver gave up on (conflict
	// budget exhausted); the affected states are parked as
	// StatusUnknown rather than pruned.
	SolverUnknowns uint64
}

// Add accumulates o into s (used to merge per-worker executor stats).
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.Forks += o.Forks
	s.SolverCalls += o.SolverCalls
	s.Concretized += o.Concretized
	s.SolverUnknowns += o.SolverUnknowns
}

// Executor interprets HS32 instructions symbolically.
type Executor struct {
	B      *expr.Builder
	Solver *solver.Solver

	cfg    Config
	mmio   MMIOHandler
	image  []byte
	prog   *asm.Program
	nextID uint64
	symSeq int

	// concolic, when non-nil, switches the executor into concolic
	// replay: every decision that would normally ask the solver is
	// instead resolved by evaluating terms under the concrete input
	// assignment (see concolic.go). No forks and no solver calls
	// happen in this mode.
	concolic *concolicCtx

	Stats Stats
}

// New builds an executor for a loaded program. mmio may be nil for
// pure-software firmware.
func New(cfg Config, prog *asm.Program, mmio MMIOHandler) (*Executor, error) {
	cfg.VM = normalizeVMConfig(cfg.VM)
	if cfg.Policy == 0 {
		cfg.Policy = ConcretizeOne
	}
	if cfg.MaxValues <= 0 {
		cfg.MaxValues = 8
	}
	image := make([]byte, cfg.VM.RAMSize)
	off := int64(prog.Base) - int64(cfg.VM.RAMBase)
	if off < 0 || off+int64(len(prog.Code)) > int64(len(image)) {
		return nil, fmt.Errorf("symexec: program does not fit in RAM")
	}
	copy(image[off:], prog.Code)
	e := &Executor{
		B:      expr.NewBuilder(),
		Solver: solver.New(cfg.SolverConflicts),
		cfg:    cfg,
		mmio:   mmio,
		image:  image,
		prog:   prog,
	}
	e.Solver.Builder = e.B
	if !cfg.DisableSolverOpt {
		e.Solver.Opts = solver.DefaultOptions()
	}
	return e, nil
}

func normalizeVMConfig(c vm.Config) vm.Config {
	probe := vm.New(c, nil)
	return probe.Config()
}

// Config returns the executor's normalized configuration.
func (e *Executor) Config() Config { return e.cfg }

// NextID returns the last state ID this executor allocated; new
// states get strictly larger IDs.
func (e *Executor) NextID() uint64 { return e.nextID }

// Spawn returns a worker executor for parallel subtree exploration.
// The spawn shares the parent's term Builder (concurrency-safe, so
// pointer equality keeps meaning structural equality across workers),
// the read-only program image, and the parent solver's memo Cache —
// but owns a private Solver (solvers are single-goroutine) and
// allocates state IDs from idBase upward, so sibling workers can fork
// freely without ID collisions. The MMIO handler is left nil: each
// worker engine injects its own hardware boundary.
func (e *Executor) Spawn(idBase uint64) *Executor {
	ne := &Executor{
		B:      e.B,
		Solver: solver.New(e.cfg.SolverConflicts),
		cfg:    e.cfg,
		image:  e.image,
		prog:   e.prog,
		nextID: idBase,
	}
	ne.Solver.Cache = e.Solver.Cache
	ne.Solver.Builder = e.B
	ne.Solver.Opts = e.Solver.Opts
	return ne
}

// SetMMIO installs (or replaces) the hardware boundary handler; the
// engine injects itself here after construction.
func (e *Executor) SetMMIO(h MMIOHandler) { e.mmio = h }

// ModelFor returns a satisfying assignment for the state's path
// condition: the model captured at termination if present, otherwise a
// fresh solver query. ok is false for infeasible paths.
func (e *Executor) ModelFor(st *State) (expr.Assignment, bool) {
	if st.Model != nil {
		return st.Model, true
	}
	ok, model := e.feasible(st)
	if !ok {
		return nil, false
	}
	return model, true
}

// TestVector materializes concrete input bytes, per make-symbolic tag,
// that drive concrete execution down this state's path (the paper's
// test-case generation). Buffers registered repeatedly under one tag
// alias the same input. ok is false when the path is infeasible.
func (e *Executor) TestVector(st *State) (map[uint32][]byte, bool) {
	model, ok := e.ModelFor(st)
	if !ok {
		return nil, false
	}
	out := make(map[uint32][]byte)
	for _, si := range st.SymInputs {
		buf := out[si.Tag]
		if uint32(len(buf)) < si.Len {
			grown := make([]byte, si.Len)
			copy(grown, buf)
			buf = grown
		}
		for i := uint32(0); i < si.Len; i++ {
			buf[i] = byte(model[fmt.Sprintf("sym%d_%d", si.Tag, i)])
		}
		out[si.Tag] = buf
	}
	return out, true
}

// InitialState returns the entry state (PC at the program entry,
// registers zero, empty path condition).
func (e *Executor) InitialState() *State {
	e.nextID++
	st := &State{
		ID:     e.nextID,
		PC:     e.prog.Entry,
		Mem:    NewMemory(e.cfg.VM.RAMBase, e.image),
		Status: StatusRunning,
	}
	zero := e.B.Const(0, 32)
	for i := range st.Regs {
		st.Regs[i] = zero
	}
	return st
}

// StateFromConcrete builds a symbolic state mirroring a concrete
// machine (the fast-forwarding hand-off): registers become constant
// terms and the RAM image becomes the new concrete backing. The mem
// slice is copied.
func (e *Executor) StateFromConcrete(pc uint32, regs [isa.NumRegs]uint32, mem []byte,
	epc uint32, inHandler bool, pending uint32) (*State, error) {
	if uint32(len(mem)) != e.cfg.VM.RAMSize {
		return nil, fmt.Errorf("symexec: concrete RAM size %d != configured %d", len(mem), e.cfg.VM.RAMSize)
	}
	image := make([]byte, len(mem))
	copy(image, mem)
	e.nextID++
	st := &State{
		ID:         e.nextID,
		PC:         pc,
		Mem:        NewMemory(e.cfg.VM.RAMBase, image),
		Status:     StatusRunning,
		EPC:        epc,
		InHandler:  inHandler,
		IRQPending: pending,
	}
	for i := range st.Regs {
		st.Regs[i] = e.B.Const(uint64(regs[i]), 32)
	}
	return st, nil
}

func (e *Executor) fork(st *State) *State {
	e.nextID++
	e.Stats.Forks++
	return st.Fork(e.nextID)
}

func (e *Executor) setReg(st *State, r uint8, t *expr.Term) {
	if r != isa.RegZero {
		st.Regs[r] = t
	}
}

// check decides the state's path condition plus extra constraints,
// returning the solver's verdict. Unknown (conflict budget exhausted)
// is a first-class outcome here — callers must not conflate it with
// Unsat, or budget-starved paths get silently pruned as infeasible.
func (e *Executor) check(st *State, extra ...*expr.Term) (solver.Result, expr.Assignment) {
	e.Stats.SolverCalls++
	cs := make([]*expr.Term, 0, len(st.Constraints)+len(extra))
	cs = append(cs, st.Constraints...)
	cs = append(cs, extra...)
	res, model, _ := e.Solver.Check(cs)
	if res == solver.Unknown {
		e.Stats.SolverUnknowns++
	}
	return res, model
}

// markUnknown parks a state whose path condition the solver could not
// decide within budget.
func (e *Executor) markUnknown(st *State) {
	st.Status = StatusUnknown
}

// feasible checks satisfiability of the state's path condition plus
// extra constraints. An undecided query reports infeasible here; use
// check at decision points where Unknown must be distinguished.
func (e *Executor) feasible(st *State, extra ...*expr.Term) (bool, expr.Assignment) {
	res, model := e.check(st, extra...)
	return res == solver.Sat, model
}

// concretize reduces a term to concrete value(s) according to the
// policy. The current state is constrained to the first value;
// additional feasible values produce forked sibling states whose PC
// still points at the current instruction (they re-execute it with
// their value pinned). Must be called before the instruction mutates
// the state.
func (e *Executor) concretize(st *State, t *expr.Term, forks *[]*State) (uint32, error) {
	if v, ok := t.Const(); ok {
		return uint32(v), nil
	}
	if c := e.concolic; c != nil {
		// Concolic replay: the concrete input decides the value. No
		// pinning constraint is added — deliberately. A hardware-bound
		// value (say the input bytes streamed into a CRC peripheral)
		// must not freeze the very bytes a later branch flip wants to
		// change; the solved seed is validated by concrete re-execution
		// anyway, so an over-permissive path condition costs at most a
		// wasted seed while an over-constrained one hides solutions.
		e.Stats.Concretized++
		return uint32(expr.Eval(t, c.assign)), nil
	}
	e.Stats.Concretized++
	max := 1
	if e.cfg.Policy == ConcretizeAll {
		max = e.cfg.MaxValues
	}
	// Enumerate issues its blocking queries on one solver (the
	// incremental context re-blasts nothing between them); count the
	// queries it actually ran, not a guess from the value count.
	before := e.Solver.Stats.Queries
	vals, final := e.Solver.Enumerate(e.B, st.Constraints, t, max)
	e.Stats.SolverCalls += uint64(e.Solver.Stats.Queries - before)
	if len(vals) == 0 {
		if final == solver.Unknown {
			e.Stats.SolverUnknowns++
			e.markUnknown(st)
		} else {
			st.Status = StatusInfeasible
		}
		return 0, nil
	}
	for _, v := range vals[1:] {
		sib := e.fork(st)
		sib.AddConstraint(e.B.Eq(t, e.B.Const(v, t.Width())))
		*forks = append(*forks, sib)
	}
	st.AddConstraint(e.B.Eq(t, e.B.Const(vals[0], t.Width())))
	return uint32(vals[0]), nil
}

func (e *Executor) fault(st *State, format string, args ...any) {
	st.Status = StatusFault
	st.Err = &vm.FaultError{PC: st.PC, Msg: fmt.Sprintf(format, args...)}
}

// inMMIO reports whether the address window belongs to hardware.
func (e *Executor) inMMIO(addr uint32, size uint32) bool {
	c := e.cfg.VM
	return addr >= c.MMIOBase && addr-c.MMIOBase+size <= c.MMIOSize
}

// ServePendingInterrupt dispatches one pending IRQ if the state can
// take it (Algorithm 1's ServePendingInterrupt). Handlers are atomic:
// no dispatch while one runs.
func (e *Executor) ServePendingInterrupt(st *State) error {
	if st.Status != StatusRunning || st.InHandler || st.IRQPending == 0 {
		return nil
	}
	for n := 0; n < e.cfg.VM.NumIRQs; n++ {
		if st.IRQPending&(1<<uint(n)) == 0 {
			continue
		}
		st.IRQPending &^= 1 << uint(n)
		handler, err := st.Mem.ConcreteWord(e.B, e.cfg.VM.VectorBase+uint32(4*n))
		if err != nil {
			return err
		}
		if handler == 0 {
			return nil
		}
		st.EPC = st.PC
		st.InHandler = true
		st.PC = handler
		return nil
	}
	return nil
}

// Step symbolically executes one instruction of st. It returns the
// sibling states created by forking (branches, concretization,
// assertion checks); st itself remains the "primary" successor. On
// termination st.Status changes.
func (e *Executor) Step(st *State) ([]*State, error) {
	if st.Status != StatusRunning {
		return nil, nil
	}
	word, err := st.Mem.ConcreteWord(e.B, st.PC)
	if err != nil {
		st.Status = StatusFault
		st.Err = err
		return nil, nil
	}
	in, err := isa.Decode(word)
	if err != nil {
		e.fault(st, "illegal instruction %#08x", word)
		return nil, nil
	}
	e.Stats.Instructions++
	st.Steps++
	var forks []*State
	next := st.PC + 4
	b := e.B
	r := &st.Regs

	bin := func(f func(x, y *expr.Term) *expr.Term) {
		e.setReg(st, in.Rd, f(r[in.Rs1], r[in.Rs2]))
	}
	binImm := func(f func(x, y *expr.Term) *expr.Term) {
		e.setReg(st, in.Rd, f(r[in.Rs1], b.Const(uint64(uint32(in.Imm)), 32)))
	}
	boolToWord := func(t *expr.Term) *expr.Term { return b.ZExt(t, 32) }

	switch in.Op {
	case isa.OpADD:
		bin(b.Add)
	case isa.OpSUB:
		bin(b.Sub)
	case isa.OpAND:
		bin(b.And)
	case isa.OpOR:
		bin(b.Or)
	case isa.OpXOR:
		bin(b.Xor)
	case isa.OpSLL:
		bin(b.Shl)
	case isa.OpSRL:
		bin(b.Lshr)
	case isa.OpSRA:
		bin(b.Ashr)
	case isa.OpMUL:
		bin(b.Mul)
	case isa.OpDIVU:
		bin(b.UDiv)
	case isa.OpREMU:
		bin(b.URem)
	case isa.OpSLT:
		e.setReg(st, in.Rd, boolToWord(b.Slt(r[in.Rs1], r[in.Rs2])))
	case isa.OpSLTU:
		e.setReg(st, in.Rd, boolToWord(b.Ult(r[in.Rs1], r[in.Rs2])))

	case isa.OpADDI:
		binImm(b.Add)
	case isa.OpANDI:
		binImm(b.And)
	case isa.OpORI:
		binImm(b.Or)
	case isa.OpXORI:
		binImm(b.Xor)
	case isa.OpSLLI:
		binImm(b.Shl)
	case isa.OpSRLI:
		binImm(b.Lshr)
	case isa.OpSRAI:
		binImm(b.Ashr)
	case isa.OpSLTI:
		e.setReg(st, in.Rd, boolToWord(b.Slt(r[in.Rs1], b.Const(uint64(uint32(in.Imm)), 32))))
	case isa.OpSLTIU:
		e.setReg(st, in.Rd, boolToWord(b.Ult(r[in.Rs1], b.Const(uint64(uint32(in.Imm)), 32))))

	case isa.OpLUI:
		e.setReg(st, in.Rd, b.Const(uint64(isa.LUIValue(in.Imm)), 32))

	case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
		if done, err := e.execLoad(st, in, &forks); done || err != nil {
			return forks, err
		}

	case isa.OpSW, isa.OpSH, isa.OpSB:
		if done, err := e.execStore(st, in, &forks); done || err != nil {
			return forks, err
		}

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		taken := e.branchCond(in, r)
		if v, ok := taken.Const(); ok {
			if v != 0 {
				next = st.PC + uint32(in.Imm)
			}
			break
		}
		if c := e.concolic; c != nil {
			// Concolic replay: follow the side the concrete input takes,
			// record the branch so the far side can be solved for later.
			tv := expr.Eval(taken, c.assign) != 0
			c.trace = append(c.trace, ConcolicBranch{
				PC:        st.PC,
				Cond:      taken,
				Taken:     tv,
				PrefixLen: len(st.Constraints),
			})
			if tv {
				st.AddConstraint(taken)
				next = st.PC + uint32(in.Imm)
			} else {
				st.AddConstraint(b.NotBool(taken))
			}
			break
		}
		// Symbolic branch: the fork point of the paper's Algorithm 1.
		resT, _ := e.check(st, taken)
		resF, _ := e.check(st, b.NotBool(taken))
		if resT == solver.Unknown || resF == solver.Unknown {
			// The budget ran out before the branch was decided; park the
			// state instead of guessing a side (either guess could both
			// lose paths and explore infeasible ones).
			e.markUnknown(st)
			return forks, nil
		}
		satT, satF := resT == solver.Sat, resF == solver.Sat
		switch {
		case satT && satF:
			sib := e.fork(st)
			sib.AddConstraint(b.NotBool(taken))
			sib.PC = st.PC + 4
			forks = append(forks, sib)
			st.AddConstraint(taken)
			next = st.PC + uint32(in.Imm)
		case satT:
			st.AddConstraint(taken)
			next = st.PC + uint32(in.Imm)
		case satF:
			st.AddConstraint(b.NotBool(taken))
		default:
			st.Status = StatusInfeasible
			return forks, nil
		}

	case isa.OpJAL:
		e.setReg(st, in.Rd, b.Const(uint64(st.PC+4), 32))
		next = st.PC + uint32(in.Imm)

	case isa.OpJALR:
		targetT := b.And(b.Add(r[in.Rs1], b.Const(uint64(uint32(in.Imm)), 32)), b.Const(^uint64(3), 32))
		tv, err := e.concretize(st, targetT, &forks)
		if err != nil || st.Status != StatusRunning {
			return forks, err
		}
		e.setReg(st, in.Rd, b.Const(uint64(st.PC+4), 32))
		next = tv

	case isa.OpECALL:
		stop, err := e.execEcall(st, in.Imm, &forks)
		if err != nil {
			return forks, err
		}
		if stop {
			return forks, nil
		}

	case isa.OpMRET:
		if st.InHandler {
			st.InHandler = false
			next = st.EPC
		}

	default:
		e.fault(st, "unimplemented opcode %v", in.Op)
		return forks, nil
	}

	if st.Status == StatusRunning {
		st.PC = next
	}
	return forks, nil
}

func (e *Executor) branchCond(in isa.Inst, r *[isa.NumRegs]*expr.Term) *expr.Term {
	b := e.B
	x, y := r[in.Rs1], r[in.Rs2]
	switch in.Op {
	case isa.OpBEQ:
		return b.Eq(x, y)
	case isa.OpBNE:
		return b.Ne(x, y)
	case isa.OpBLT:
		return b.Slt(x, y)
	case isa.OpBGE:
		return b.NotBool(b.Slt(x, y))
	case isa.OpBLTU:
		return b.Ult(x, y)
	default: // BGEU
		return b.NotBool(b.Ult(x, y))
	}
}

// execLoad handles load instructions; done=true means control flow was
// already resolved (fault or MMIO handled with PC advance).
func (e *Executor) execLoad(st *State, in isa.Inst, forks *[]*State) (bool, error) {
	b := e.B
	addrT := b.Add(st.Regs[in.Rs1], b.Const(uint64(uint32(in.Imm)), 32))
	addr, err := e.concretize(st, addrT, forks)
	if err != nil || st.Status != StatusRunning {
		return true, err
	}
	size := loadSize(in.Op)
	if e.inMMIO(addr, uint32(size)) {
		if e.mmio == nil {
			e.fault(st, "MMIO load at %#x with no hardware attached", addr)
			return true, nil
		}
		if size != 4 {
			e.fault(st, "MMIO load at %#x must be 32-bit", addr)
			return true, nil
		}
		v, err := e.mmio.Read(st, addr)
		if err != nil {
			e.fault(st, "MMIO read %#x: %v", addr, err)
			return true, nil
		}
		e.setReg(st, in.Rd, b.Const(uint64(v), 32))
		st.PC += 4
		return true, nil
	}
	t, err := st.Mem.Read(b, addr, size)
	if err != nil {
		st.Status = StatusFault
		st.Err = err
		return true, nil
	}
	switch in.Op {
	case isa.OpLW:
	case isa.OpLH:
		t = b.SExt(t, 32)
	case isa.OpLHU:
		t = b.ZExt(t, 32)
	case isa.OpLB:
		t = b.SExt(t, 32)
	case isa.OpLBU:
		t = b.ZExt(t, 32)
	}
	e.setReg(st, in.Rd, t)
	return false, nil
}

func (e *Executor) execStore(st *State, in isa.Inst, forks *[]*State) (bool, error) {
	b := e.B
	addrT := b.Add(st.Regs[in.Rs1], b.Const(uint64(uint32(in.Imm)), 32))
	addr, err := e.concretize(st, addrT, forks)
	if err != nil || st.Status != StatusRunning {
		return true, err
	}
	size := storeSize(in.Op)
	val := st.Regs[in.Rs2]
	if e.inMMIO(addr, uint32(size)) {
		if e.mmio == nil {
			e.fault(st, "MMIO store at %#x with no hardware attached", addr)
			return true, nil
		}
		if size != 4 {
			e.fault(st, "MMIO store at %#x must be 32-bit", addr)
			return true, nil
		}
		// Symbolic data crossing the boundary is concretized per the
		// policy (Section III-B).
		v, err := e.concretize(st, val, forks)
		if err != nil || st.Status != StatusRunning {
			return true, err
		}
		if err := e.mmio.Write(st, addr, v); err != nil {
			e.fault(st, "MMIO write %#x: %v", addr, err)
			return true, nil
		}
		st.PC += 4
		return true, nil
	}
	if err := st.Mem.Write(b, addr, size, b.Extract(val, 0, uint(8*size))); err != nil {
		st.Status = StatusFault
		st.Err = err
		return true, nil
	}
	return false, nil
}

// execEcall handles environment calls; stop=true means st.PC was
// resolved (or the state terminated).
func (e *Executor) execEcall(st *State, service int32, forks *[]*State) (bool, error) {
	b := e.B
	switch service {
	case isa.EcallHalt:
		st.Status = StatusHalted
		return true, nil

	case isa.EcallAbort:
		st.Status = StatusAborted
		if c := e.concolic; c != nil {
			st.Model = c.assign
			return true, nil
		}
		if ok, model := e.feasible(st); ok {
			st.Model = model
		}
		return true, nil

	case isa.EcallAssert:
		cond := b.Ne(st.Regs[1], b.Const(0, 32))
		if c := e.concolic; c != nil {
			if expr.Eval(cond, c.assign) == 0 {
				st.Status = StatusAssertFail
				st.Model = c.assign
				return true, nil
			}
			if _, ok := cond.Const(); !ok {
				st.AddConstraint(cond)
			}
			return false, nil
		}
		if v, ok := cond.Const(); ok {
			if v == 0 {
				st.Status = StatusAssertFail
				if ok, model := e.feasible(st); ok {
					st.Model = model
				}
				return true, nil
			}
			return false, nil
		}
		resFail, failModel := e.check(st, b.NotBool(cond))
		resPass, _ := e.check(st, cond)
		if resFail == solver.Unknown || resPass == solver.Unknown {
			e.markUnknown(st)
			return true, nil
		}
		if resFail == solver.Sat {
			fail := e.fork(st)
			fail.AddConstraint(b.NotBool(cond))
			fail.Status = StatusAssertFail
			fail.Model = failModel
			*forks = append(*forks, fail)
		}
		if resPass != solver.Sat {
			st.Status = StatusInfeasible
			return true, nil
		}
		st.AddConstraint(cond)
		return false, nil

	case isa.EcallAssume:
		cond := b.Ne(st.Regs[1], b.Const(0, 32))
		if c := e.concolic; c != nil {
			if expr.Eval(cond, c.assign) == 0 {
				st.Status = StatusInfeasible
				return true, nil
			}
			if _, ok := cond.Const(); !ok {
				st.AddConstraint(cond)
			}
			return false, nil
		}
		if v, ok := cond.Const(); ok {
			if v == 0 {
				st.Status = StatusInfeasible
				return true, nil
			}
			return false, nil
		}
		switch res, _ := e.check(st, cond); res {
		case solver.Unknown:
			e.markUnknown(st)
			return true, nil
		case solver.Unsat:
			st.Status = StatusInfeasible
			return true, nil
		}
		st.AddConstraint(cond)
		return false, nil

	case isa.EcallMakeSymbolic:
		addr, err := e.concretize(st, st.Regs[1], forks)
		if err != nil || st.Status != StatusRunning {
			return true, err
		}
		length, err := e.concretize(st, st.Regs[2], forks)
		if err != nil || st.Status != StatusRunning {
			return true, err
		}
		tag, err := e.concretize(st, st.Regs[3], forks)
		if err != nil || st.Status != StatusRunning {
			return true, err
		}
		if length > 4096 {
			e.fault(st, "make_symbolic length %d too large", length)
			return true, nil
		}
		for i := uint32(0); i < length; i++ {
			e.symSeq++
			name := fmt.Sprintf("sym%d_%d", tag, i)
			if err := st.Mem.StoreByte(addr+i, b.Var(name, 8)); err != nil {
				st.Status = StatusFault
				st.Err = err
				return true, nil
			}
			if c := e.concolic; c != nil {
				// Bind the fresh symbol to the concrete input byte the
				// fuzzer supplied (missing bytes default to zero, same as
				// the solver's completion of partial models).
				var bv uint64
				if buf := c.inputs.bytesFor(tag); i < uint32(len(buf)) {
					bv = uint64(buf[i])
				}
				c.assign[name] = bv
			}
		}
		st.SymInputs = append(st.SymInputs, SymInput{Tag: tag, Addr: addr, Len: length})
		return false, nil

	case isa.EcallPutChar:
		v, err := e.concretize(st, b.Extract(st.Regs[1], 0, 8), forks)
		if err != nil || st.Status != StatusRunning {
			return true, err
		}
		st.Console = append(st.Console, byte(v))
		return false, nil

	case isa.EcallPutInt:
		v, err := e.concretize(st, st.Regs[1], forks)
		if err != nil || st.Status != StatusRunning {
			return true, err
		}
		st.Console = append(st.Console, []byte(fmt.Sprintf("%d", v))...)
		return false, nil

	case isa.EcallSnapshotHint:
		return false, nil
	}
	e.fault(st, "unknown ecall %d", service)
	return true, nil
}

func loadSize(op isa.Opcode) int {
	switch op {
	case isa.OpLW:
		return 4
	case isa.OpLH, isa.OpLHU:
		return 2
	default:
		return 1
	}
}

func storeSize(op isa.Opcode) int {
	switch op {
	case isa.OpSW:
		return 4
	case isa.OpSH:
		return 2
	default:
		return 1
	}
}
