// Package trace implements value-change-dump (VCD) waveform tracing
// for the RTL simulator. Tracing is a simulator-target capability: it
// is what the paper's multi-target orchestration transfers *to* the
// simulator for — full execution traces that the FPGA cannot provide.
//
// The output is standard IEEE 1364 VCD, loadable in GTKWave and
// friends.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hardsnap/internal/rtl"
	"hardsnap/internal/sim"
)

// VCD streams value changes of selected signals to a writer.
type VCD struct {
	w       io.Writer
	sim     *sim.Simulator
	signals []*rtl.Signal
	ids     []string
	last    []uint64
	started bool
	err     error
}

// New creates a VCD tracer for the given signals (hierarchical names);
// an empty list traces every signal of the design. Call Attach to
// start recording.
func New(w io.Writer, s *sim.Simulator, signalNames []string) (*VCD, error) {
	design := s.Design()
	var signals []*rtl.Signal
	if len(signalNames) == 0 {
		signals = append(signals, design.Signals...)
		sort.Slice(signals, func(i, j int) bool { return signals[i].Name < signals[j].Name })
	} else {
		for _, name := range signalNames {
			sig, ok := design.SignalByName(name)
			if !ok {
				return nil, fmt.Errorf("trace: no signal named %q", name)
			}
			signals = append(signals, sig)
		}
	}
	v := &VCD{
		w:       w,
		sim:     s,
		signals: signals,
		ids:     make([]string, len(signals)),
		last:    make([]uint64, len(signals)),
	}
	for i := range signals {
		v.ids[i] = vcdID(i)
	}
	return v, nil
}

// vcdID produces the compact printable identifiers VCD uses.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	for {
		b.WriteByte(alphabet[i%len(alphabet)])
		i /= len(alphabet)
		if i == 0 {
			return b.String()
		}
	}
}

// Attach writes the VCD header, dumps initial values and hooks the
// simulator so every subsequent cycle is recorded. It returns a
// detach function.
func (v *VCD) Attach() func() {
	v.header()
	v.dumpAll()
	prev := v.sim.OnCycle
	v.sim.OnCycle = func(cycle uint64) {
		if prev != nil {
			prev(cycle)
		}
		v.cycle(cycle)
	}
	return func() { v.sim.OnCycle = prev }
}

// Err returns the first write error, if any.
func (v *VCD) Err() error { return v.err }

func (v *VCD) printf(format string, args ...any) {
	if v.err != nil {
		return
	}
	if _, err := fmt.Fprintf(v.w, format, args...); err != nil {
		v.err = err
	}
}

func (v *VCD) header() {
	v.printf("$date HardSnap trace $end\n")
	v.printf("$version hardsnap %s target $end\n", v.sim.Design().Top)
	v.printf("$timescale 10ns $end\n")
	v.printf("$scope module %s $end\n", v.sim.Design().Top)
	for i, sig := range v.signals {
		name := strings.ReplaceAll(sig.Name, ".", "_")
		v.printf("$var wire %d %s %s $end\n", sig.Width, v.ids[i], name)
	}
	v.printf("$upscope $end\n$enddefinitions $end\n")
}

func (v *VCD) value(i int) uint64 {
	val, _ := v.sim.Peek(v.signals[i].Name)
	return val
}

func (v *VCD) emit(i int, val uint64) {
	sig := v.signals[i]
	if sig.Width == 1 {
		v.printf("%d%s\n", val&1, v.ids[i])
		return
	}
	v.printf("b%b %s\n", val, v.ids[i])
}

func (v *VCD) dumpAll() {
	v.printf("#0\n$dumpvars\n")
	for i := range v.signals {
		val := v.value(i)
		v.last[i] = val
		v.emit(i, val)
	}
	v.printf("$end\n")
	v.started = true
}

func (v *VCD) cycle(cycle uint64) {
	wroteTime := false
	for i := range v.signals {
		val := v.value(i)
		if val == v.last[i] {
			continue
		}
		if !wroteTime {
			v.printf("#%d\n", cycle)
			wroteTime = true
		}
		v.last[i] = val
		v.emit(i, val)
	}
}
