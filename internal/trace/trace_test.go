package trace

import (
	"bytes"
	"strings"
	"testing"

	"hardsnap/internal/periph"
	"hardsnap/internal/rtl"
	"hardsnap/internal/sim"
	"hardsnap/internal/target"
	"hardsnap/internal/verilog"
	"hardsnap/internal/vtime"
)

const counterSrc = `
module counter (
  input wire clk,
  input wire en,
  output reg [7:0] count
);
  always @(posedge clk)
    if (en) count <= count + 1;
endmodule
`

func buildSim(t *testing.T) *sim.Simulator {
	t.Helper()
	f, err := verilog.Parse(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rtl.Elaborate(f, "counter", nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVCDOutput(t *testing.T) {
	s := buildSim(t)
	var buf bytes.Buffer
	v, err := New(&buf, s, []string{"count", "en"})
	if err != nil {
		t.Fatal(err)
	}
	detach := v.Attach()
	s.SetInput("en", 1)
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	detach()
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"$timescale 10ns $end",
		"$scope module counter $end",
		"$var wire 8",
		"$var wire 1",
		"$enddefinitions $end",
		"$dumpvars",
		"#0",
		"#2",
		"b101 ", // count reaches 5
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in VCD output:\n%s", want, out)
		}
	}
}

func TestVCDAllSignals(t *testing.T) {
	s := buildSim(t)
	var buf bytes.Buffer
	v, err := New(&buf, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Attach()
	s.Run(1)
	if got := strings.Count(buf.String(), "$var"); got != len(s.Design().Signals) {
		t.Fatalf("vars %d, want %d", got, len(s.Design().Signals))
	}
}

func TestVCDUnknownSignal(t *testing.T) {
	s := buildSim(t)
	if _, err := New(&bytes.Buffer{}, s, []string{"ghost"}); err == nil {
		t.Fatal("unknown signal must fail")
	}
}

func TestVCDOnlyChangesRecorded(t *testing.T) {
	s := buildSim(t)
	var buf bytes.Buffer
	v, err := New(&buf, s, []string{"count"})
	if err != nil {
		t.Fatal(err)
	}
	v.Attach()
	// en = 0: nothing changes, so no timestamps after #0.
	s.Run(10)
	out := buf.String()
	if strings.Contains(out, "#5") {
		t.Fatalf("idle cycles must not be dumped:\n%s", out)
	}
}

func TestVCDDetach(t *testing.T) {
	s := buildSim(t)
	var buf bytes.Buffer
	v, err := New(&buf, s, []string{"count"})
	if err != nil {
		t.Fatal(err)
	}
	detach := v.Attach()
	s.SetInput("en", 1)
	s.Run(2)
	size := buf.Len()
	detach()
	s.Run(5)
	if buf.Len() != size {
		t.Fatal("tracer still recording after detach")
	}
}

func TestTraceViaSimulatorTarget(t *testing.T) {
	clock := &vtime.Clock{}
	tgt, err := target.NewSimulator("s", clock, []target.PeriphConfig{
		{Name: "t0", Periph: "timer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rtlSim, err := tgt.Simulator("t0")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	v, err := New(&buf, rtlSim, []string{"value", "irq"})
	if err != nil {
		t.Fatal(err)
	}
	v.Attach()

	port, _ := tgt.Port("t0")
	port.WriteReg(0x00, 5)
	port.WriteReg(0x08, 3)
	tgt.Advance(10)
	out := buf.String()
	if !strings.Contains(out, "$dumpvars") || strings.Count(out, "\n") < 10 {
		t.Fatalf("trace too small:\n%s", out)
	}

	// FPGA targets must refuse.
	fpga, err := target.NewFPGA("f", clock, []target.PeriphConfig{{Name: "t0", Periph: "timer"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fpga.Simulator("t0"); err != target.ErrNoVisibility {
		t.Fatalf("FPGA Simulator() should refuse, got %v", err)
	}
	_ = periph.Spec{}
}
