package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	b := NewBuilder()
	tests := []struct {
		name string
		got  *Term
		want uint64
	}{
		{"add", b.Add(b.Const(3, 8), b.Const(4, 8)), 7},
		{"add-wrap", b.Add(b.Const(0xFF, 8), b.Const(1, 8)), 0},
		{"sub", b.Sub(b.Const(3, 8), b.Const(4, 8)), 0xFF},
		{"mul", b.Mul(b.Const(16, 8), b.Const(17, 8)), 0x10},
		{"udiv", b.UDiv(b.Const(100, 8), b.Const(7, 8)), 14},
		{"udiv0", b.UDiv(b.Const(100, 8), b.Const(0, 8)), 0xFF},
		{"urem", b.URem(b.Const(100, 8), b.Const(7, 8)), 2},
		{"urem0", b.URem(b.Const(100, 8), b.Const(0, 8)), 100},
		{"and", b.And(b.Const(0xF0, 8), b.Const(0x3C, 8)), 0x30},
		{"or", b.Or(b.Const(0xF0, 8), b.Const(0x0C, 8)), 0xFC},
		{"xor", b.Xor(b.Const(0xF0, 8), b.Const(0xFF, 8)), 0x0F},
		{"not", b.Not(b.Const(0xF0, 8)), 0x0F},
		{"neg", b.Neg(b.Const(1, 8)), 0xFF},
		{"shl", b.Shl(b.Const(1, 8), b.Const(3, 8)), 8},
		{"shl-over", b.Shl(b.Const(1, 8), b.Const(9, 8)), 0},
		{"lshr", b.Lshr(b.Const(0x80, 8), b.Const(3, 8)), 0x10},
		{"ashr", b.Ashr(b.Const(0x80, 8), b.Const(3, 8)), 0xF0},
		{"eq-t", b.Eq(b.Const(5, 8), b.Const(5, 8)), 1},
		{"eq-f", b.Eq(b.Const(5, 8), b.Const(6, 8)), 0},
		{"ult", b.Ult(b.Const(5, 8), b.Const(6, 8)), 1},
		{"slt", b.Slt(b.Const(0xFF, 8), b.Const(0, 8)), 1},
		{"sle", b.Sle(b.Const(0x7F, 8), b.Const(0, 8)), 0},
		{"concat", b.Concat(b.Const(0xAB, 8), b.Const(0xCD, 8)), 0xABCD},
		{"extract", b.Extract(b.Const(0xABCD, 16), 4, 8), 0xBC},
		{"zext", b.ZExt(b.Const(0xFF, 8), 16), 0xFF},
		{"sext", b.SExt(b.Const(0xFF, 8), 16), 0xFFFF},
		{"ite-t", b.Ite(b.Bool(true), b.Const(1, 8), b.Const(2, 8)), 1},
		{"ite-f", b.Ite(b.Bool(false), b.Const(1, 8), b.Const(2, 8)), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			v, ok := tc.got.Const()
			if !ok {
				t.Fatalf("expected constant, got %v", tc.got)
			}
			if v != tc.want {
				t.Fatalf("got %#x, want %#x", v, tc.want)
			}
		})
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	a1 := b.Add(x, y)
	a2 := b.Add(x, y)
	if a1 != a2 {
		t.Fatal("identical terms not deduplicated")
	}
	if b.Var("x", 32) != x {
		t.Fatal("variable not deduplicated")
	}
}

func TestVarWidthClashPanics(t *testing.T) {
	b := NewBuilder()
	b.Var("x", 32)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width clash")
		}
	}()
	b.Var("x", 16)
}

func TestSimplifications(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 16)
	zero := b.Const(0, 16)
	ones := b.Const(0xFFFF, 16)

	if b.Add(x, zero) != x {
		t.Error("x+0 != x")
	}
	if b.Sub(x, x) != zero {
		t.Error("x-x != 0")
	}
	if b.And(x, zero) != zero {
		t.Error("x&0 != 0")
	}
	if b.And(x, ones) != x {
		t.Error("x&~0 != x")
	}
	if b.Or(x, zero) != x {
		t.Error("x|0 != x")
	}
	if b.Xor(x, x) != zero {
		t.Error("x^x != 0")
	}
	if b.Not(b.Not(x)) != x {
		t.Error("~~x != x")
	}
	if v, _ := b.Eq(x, x).Const(); v != 1 {
		t.Error("x=x not folded to true")
	}
	if b.Extract(x, 0, 16) != x {
		t.Error("full-width extract not identity")
	}
	if b.Ite(b.Var("c", 1), x, x) != x {
		t.Error("ite with equal branches not folded")
	}
}

func TestExtractOfConcat(t *testing.T) {
	b := NewBuilder()
	hi := b.Var("hi", 8)
	lo := b.Var("lo", 8)
	c := b.Concat(hi, lo)
	if b.Extract(c, 0, 8) != lo {
		t.Error("extract low of concat should be lo")
	}
	if b.Extract(c, 8, 8) != hi {
		t.Error("extract high of concat should be hi")
	}
}

func TestNestedExtract(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	e1 := b.Extract(x, 8, 16)
	e2 := b.Extract(e1, 4, 8)
	want := b.Extract(x, 12, 8)
	if e2 != want {
		t.Fatalf("nested extract not flattened: %v vs %v", e2, want)
	}
}

// TestEvalMatchesSimplify checks, via testing/quick, that building an
// expression tree from random ops and evaluating it gives the same
// result as evaluating an unsimplified reference computation.
func TestEvalMatchesSimplify(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)

	f := func(xv, yv uint8, opSel uint8) bool {
		a := Assignment{"x": uint64(xv), "y": uint64(yv)}
		var term *Term
		var want uint64
		switch opSel % 10 {
		case 0:
			term, want = b.Add(x, y), uint64(xv+yv)
		case 1:
			term, want = b.Sub(x, y), uint64(xv-yv)
		case 2:
			term, want = b.Mul(x, y), uint64(xv*yv)
		case 3:
			term, want = b.And(x, y), uint64(xv&yv)
		case 4:
			term, want = b.Or(x, y), uint64(xv|yv)
		case 5:
			term, want = b.Xor(x, y), uint64(xv^yv)
		case 6:
			term, want = b.Eq(x, y), b2u(xv == yv)
		case 7:
			term, want = b.Ult(x, y), b2u(xv < yv)
		case 8:
			term, want = b.Slt(x, y), b2u(int8(xv) < int8(yv))
		default:
			sh := yv % 8
			term, want = b.Shl(x, b.Const(uint64(sh), 8)), uint64(xv<<sh)
		}
		return Eval(term, a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstitute(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	sum := b.Add(x, y)
	got := Substitute(b, sum, map[string]*Term{"x": b.Const(3, 8), "y": b.Const(4, 8)})
	if v, ok := got.Const(); !ok || v != 7 {
		t.Fatalf("substitute+fold got %v, want 7", got)
	}

	// Partial substitution keeps the remaining variable.
	got = Substitute(b, sum, map[string]*Term{"x": b.Const(1, 8)})
	if Eval(got, Assignment{"y": 9}) != 10 {
		t.Fatalf("partial substitution wrong: %v", got)
	}
}

func TestVarsCollection(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	term := b.Add(b.Mul(x, y), x)
	vars := Vars(term, make(map[*Term]bool), nil)
	if len(vars) != 2 {
		t.Fatalf("got %d vars, want 2", len(vars))
	}
	if !ContainsVar(term) {
		t.Error("ContainsVar should be true")
	}
	if ContainsVar(b.Const(1, 8)) {
		t.Error("ContainsVar on const should be false")
	}
}

func TestSignExtendHelper(t *testing.T) {
	if SignExtend(0x80, 8) != 0xFFFFFFFFFFFFFF80 {
		t.Error("sign extend negative failed")
	}
	if SignExtend(0x7F, 8) != 0x7F {
		t.Error("sign extend positive failed")
	}
}

func TestStringRendering(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	s := b.Add(x, b.Const(1, 8)).String()
	if s != "(bvadd x #x01)" {
		t.Fatalf("unexpected rendering %q", s)
	}
}

// TestRandomDAGEval builds deep random expressions and cross-checks
// evaluation against a shadow interpreter over the same random choices.
func TestRandomDAGEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)

	type pair struct {
		t *Term
		f func(xv, yv uint64) uint64
	}
	mask := Mask(16)
	leaves := []pair{
		{x, func(xv, _ uint64) uint64 { return xv }},
		{y, func(_, yv uint64) uint64 { return yv }},
		{b.Const(0x1234, 16), func(_, _ uint64) uint64 { return 0x1234 }},
	}
	pool := append([]pair{}, leaves...)
	for i := 0; i < 200; i++ {
		a := pool[rng.Intn(len(pool))]
		c := pool[rng.Intn(len(pool))]
		switch rng.Intn(5) {
		case 0:
			af, cf := a.f, c.f
			pool = append(pool, pair{b.Add(a.t, c.t), func(xv, yv uint64) uint64 { return (af(xv, yv) + cf(xv, yv)) & mask }})
		case 1:
			af, cf := a.f, c.f
			pool = append(pool, pair{b.Xor(a.t, c.t), func(xv, yv uint64) uint64 { return af(xv, yv) ^ cf(xv, yv) }})
		case 2:
			af, cf := a.f, c.f
			pool = append(pool, pair{b.And(a.t, c.t), func(xv, yv uint64) uint64 { return af(xv, yv) & cf(xv, yv) }})
		case 3:
			af, cf := a.f, c.f
			pool = append(pool, pair{b.Mul(a.t, c.t), func(xv, yv uint64) uint64 { return (af(xv, yv) * cf(xv, yv)) & mask }})
		default:
			af := a.f
			pool = append(pool, pair{b.Not(a.t), func(xv, yv uint64) uint64 { return ^af(xv, yv) & mask }})
		}
	}
	for trial := 0; trial < 50; trial++ {
		xv := uint64(rng.Intn(1 << 16))
		yv := uint64(rng.Intn(1 << 16))
		a := Assignment{"x": xv, "y": yv}
		for _, p := range pool {
			if got, want := Eval(p.t, a), p.f(xv, yv); got != want {
				t.Fatalf("eval mismatch on %v: got %#x want %#x (x=%#x y=%#x)", p.t, got, want, xv, yv)
			}
		}
	}
}

// TestSimplifierSoundness builds random composite expressions through
// the simplifying Builder and cross-checks Eval against a direct
// semantic computation (simplification must never change meaning).
func TestSimplifierSoundness(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	c := b.Var("c", 1)

	f := func(xv, yv uint16, cv, sel uint8) bool {
		a := Assignment{"x": uint64(xv), "y": uint64(yv), "c": uint64(cv & 1)}
		mask16 := uint64(0xFFFF)
		var term *Term
		var want uint64
		switch sel % 8 {
		case 0:
			// extract of concat spanning the boundary
			term = b.Extract(b.Concat(x, y), 8, 16)
			want = (uint64(yv)>>8 | uint64(xv)<<8) & mask16
		case 1:
			// ite with computed branches
			term = b.Ite(c, b.Add(x, y), b.Sub(x, y))
			if cv&1 != 0 {
				want = (uint64(xv) + uint64(yv)) & mask16
			} else {
				want = (uint64(xv) - uint64(yv)) & mask16
			}
		case 2:
			// zext/extract round trip
			term = b.Extract(b.ZExt(x, 32), 0, 16)
			want = uint64(xv)
		case 3:
			// sext then extract of high bits
			term = b.Extract(b.SExt(x, 32), 16, 16)
			want = SignExtend(uint64(xv), 16) >> 16 & mask16
		case 4:
			// double negation and demorgan-ish mix
			term = b.Not(b.And(b.Not(x), b.Not(y)))
			want = (uint64(xv) | uint64(yv)) & mask16
		case 5:
			// shift by constant then back
			term = b.Lshr(b.Shl(x, b.Const(4, 16)), b.Const(4, 16))
			want = (uint64(xv) << 4 & mask16) >> 4
		case 6:
			// compare chain folded to bool then widened
			term = b.ZExt(b.Ult(x, y), 16)
			if xv < yv {
				want = 1
			}
		default:
			// x - (x ^ 0) must equal 0 via simplifications
			term = b.Sub(x, b.Xor(x, b.Const(0, 16)))
			want = 0
		}
		return Eval(term, a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalizingRules checks the rewrite rules the solver's
// preprocessing relies on. Hash-consing makes pointer equality the
// proof that a rule fired: both sides must intern to the same node.
func TestCanonicalizingRules(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	p := b.Var("p", 1)
	c := func(v uint64) *Term { return b.Const(v, 8) }

	cases := []struct {
		name string
		got  *Term
		want *Term
	}{
		{"add-chain-fold", b.Add(b.Add(x, c(3)), c(4)), b.Add(x, c(7))},
		{"sub-const-to-add", b.Sub(x, c(3)), b.Add(x, c(253))},
		{"mul-pow2-to-shl", b.Mul(x, c(8)), b.Shl(x, c(3))},
		{"udiv-pow2-to-lshr", b.UDiv(x, c(4)), b.Lshr(x, c(2))},
		{"urem-pow2-to-and", b.URem(x, c(8)), b.And(x, c(7))},
		{"eq-true-collapse", b.Eq(p, b.Bool(true)), p},
		{"eq-false-collapse", b.Eq(p, b.Bool(false)), b.NotBool(p)},
		{"not-ult-flips", b.NotBool(b.Ult(x, c(5))), b.Ule(c(5), x)},
		{"not-ule-flips", b.NotBool(b.Ule(x, c(5))), b.Ult(c(5), x)},
		{"ult-one-is-eq-zero", b.Ult(x, c(1)), b.Eq(x, c(0))},
		{"ule-zero-lb-is-true", b.Ule(c(0), x), b.Bool(true)},
		{"ule-max-ub-is-true", b.Ule(x, c(255)), b.Bool(true)},
		{"ule-zero-ub-is-eq", b.Ule(x, c(0)), b.Eq(x, c(0))},
		{"ult-max-lhs-false", b.Ult(c(255), x), b.Bool(false)},
		{"eq-add-const-fold", b.Eq(b.Add(x, c(3)), c(10)), b.Eq(x, c(7))},
		{"eq-xor-const-fold", b.Eq(b.Xor(x, c(0xF0)), c(0xFF)), b.Eq(x, c(0x0F))},
		{"eq-not-fold", b.Eq(b.Not(x), c(0xF0)), b.Eq(x, c(0x0F))},
		{"eq-neg-fold", b.Eq(b.Neg(x), c(1)), b.Eq(x, c(255))},
		{"eq-zext-narrow", b.Eq(b.ZExt(x, 16), b.Const(7, 16)), b.Eq(x, c(7))},
		{"eq-zext-overflow-false", b.Eq(b.ZExt(x, 16), b.Const(0x100, 16)), b.Bool(false)},
		{"ite-bool-to-zext", b.Ite(p, c(1), c(0)), b.ZExt(p, 8)},
		{"ite-bool-to-zext-not", b.Ite(p, c(0), c(1)), b.ZExt(b.NotBool(p), 8)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Fatalf("rule did not fire: got %v, want %v", tc.got, tc.want)
			}
		})
	}

	// Every fired rule must also be semantically sound: evaluate both
	// shapes (built from raw Terms via Eval) across all 8-bit values.
	for xv := uint64(0); xv < 256; xv++ {
		m := Assignment{"x": xv}
		if got, want := Eval(b.Add(b.Add(x, c(3)), c(4)), m), (xv+7)&0xFF; got != want {
			t.Fatalf("add fold wrong at x=%d: got %d want %d", xv, got, want)
		}
		if got, want := Eval(b.Mul(x, c(8)), m), (xv*8)&0xFF; got != want {
			t.Fatalf("mul->shl wrong at x=%d: got %d want %d", xv, got, want)
		}
		if got, want := Eval(b.URem(x, c(8)), m), xv%8; got != want {
			t.Fatalf("urem->and wrong at x=%d: got %d want %d", xv, got, want)
		}
	}
}

// TestReplace checks the memoized subterm substitution used by the
// solver's constraint-implied concretization.
func TestReplace(t *testing.T) {
	b := NewBuilder()
	x, y := b.Var("x", 8), b.Var("y", 8)
	five := b.Const(5, 8)

	sum := b.Add(x, y)
	got := Replace(b, b.Ult(sum, b.Const(20, 8)), x, five)
	want := b.Ult(b.Add(five, y), b.Const(20, 8))
	if got != want {
		t.Fatalf("Replace: got %v, want %v", got, want)
	}
	// A term not containing old is returned unchanged (same pointer).
	only := b.Ult(y, b.Const(9, 8))
	if Replace(b, only, x, five) != only {
		t.Fatal("Replace rebuilt a term that does not contain old")
	}
	// Replacing a non-leaf subterm.
	nested := b.Eq(b.Mul(sum, b.Const(3, 8)), b.Const(9, 8))
	got = Replace(b, nested, sum, five)
	if got != b.Eq(b.Mul(five, b.Const(3, 8)), b.Const(9, 8)) {
		t.Fatalf("nested Replace: got %v", got)
	}
}

// TestVarSetMemo checks the builder's memoized variable sets: sorted,
// deduplicated, and stable across repeated calls.
func TestVarSetMemo(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Var("x", 8), b.Var("y", 8), b.Var("z", 8)
	tm := b.Add(b.Mul(z, y), b.Add(x, z))
	vs := b.VarSet(tm)
	if len(vs) != 3 || vs[0] != x || vs[1] != y || vs[2] != z {
		t.Fatalf("VarSet = %v, want [x y z]", vs)
	}
	vs2 := b.VarSet(tm)
	if len(vs2) != 3 || &vs[0] == nil {
		t.Fatal("memoized VarSet changed")
	}
	if got := b.VarSet(b.Const(9, 8)); len(got) != 0 {
		t.Fatalf("const VarSet = %v, want empty", got)
	}
	if got := b.VarSet(x); len(got) != 1 || got[0] != x {
		t.Fatalf("var VarSet = %v, want [x]", got)
	}
}
