// Package expr implements a hash-consed bitvector expression DAG used by
// the symbolic execution engine. Terms are immutable; a Builder
// deduplicates structurally identical terms and applies local
// simplification and constant folding at construction time.
//
// Widths range from 1 to 64 bits. Width-1 terms double as booleans
// (0 = false, 1 = true), matching the QF_BV convention.
package expr

import (
	"fmt"
	"strings"
)

// Op identifies the operator of a Term.
type Op uint8

// Operators. Comparison operators always produce width-1 terms.
const (
	OpConst Op = iota + 1
	OpVar
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpShl
	OpLshr
	OpAshr
	OpEq
	OpNe
	OpUlt
	OpUle
	OpSlt
	OpSle
	OpConcat
	OpExtract
	OpZExt
	OpSExt
	OpIte
)

var opNames = map[Op]string{
	OpConst:   "const",
	OpVar:     "var",
	OpAdd:     "bvadd",
	OpSub:     "bvsub",
	OpMul:     "bvmul",
	OpUDiv:    "bvudiv",
	OpURem:    "bvurem",
	OpAnd:     "bvand",
	OpOr:      "bvor",
	OpXor:     "bvxor",
	OpNot:     "bvnot",
	OpNeg:     "bvneg",
	OpShl:     "bvshl",
	OpLshr:    "bvlshr",
	OpAshr:    "bvashr",
	OpEq:      "=",
	OpNe:      "distinct",
	OpUlt:     "bvult",
	OpUle:     "bvule",
	OpSlt:     "bvslt",
	OpSle:     "bvsle",
	OpConcat:  "concat",
	OpExtract: "extract",
	OpZExt:    "zext",
	OpSExt:    "sext",
	OpIte:     "ite",
}

// String returns the SMT-LIB-style mnemonic for the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Term is an immutable bitvector expression node. Terms must be created
// through a Builder; two terms from the same Builder are structurally
// equal if and only if they are pointer-equal.
type Term struct {
	op    Op
	width uint8
	val   uint64 // constant value (OpConst) — always masked to width
	name  string // variable name (OpVar)
	lo    uint8  // extract low bit (OpExtract)
	args  []*Term
	hash  uint64
}

// Op returns the term's operator.
func (t *Term) Op() Op { return t.op }

// Width returns the bit width of the term's value.
func (t *Term) Width() uint { return uint(t.width) }

// IsConst reports whether t is a constant.
func (t *Term) IsConst() bool { return t.op == OpConst }

// Const returns the constant value and whether t is a constant.
func (t *Term) Const() (uint64, bool) {
	if t.op == OpConst {
		return t.val, true
	}
	return 0, false
}

// Name returns the variable name; it is empty unless t is a variable.
func (t *Term) Name() string { return t.name }

// Args returns the term's operands. The returned slice must not be
// modified.
func (t *Term) Args() []*Term { return t.args }

// ExtractLow returns the low bit index of an OpExtract term.
func (t *Term) ExtractLow() uint { return uint(t.lo) }

// String renders the term in an SMT-LIB-like prefix notation.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.op {
	case OpConst:
		fmt.Fprintf(b, "#x%0*x", (t.width+3)/4, t.val)
	case OpVar:
		b.WriteString(t.name)
	case OpExtract:
		fmt.Fprintf(b, "((_ extract %d %d) ", uint(t.lo)+uint(t.width)-1, t.lo)
		t.args[0].write(b)
		b.WriteByte(')')
	case OpZExt, OpSExt:
		fmt.Fprintf(b, "((_ %s %d) ", t.op, uint(t.width)-t.args[0].Width())
		t.args[0].write(b)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(t.op.String())
		for _, a := range t.args {
			b.WriteByte(' ')
			a.write(b)
		}
		b.WriteByte(')')
	}
}

// Mask returns a bitmask with the w low bits set.
func Mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// SignExtend extends the w-bit value v to 64 bits.
func SignExtend(v uint64, w uint) uint64 {
	if w == 0 || w >= 64 {
		return v
	}
	if v&(uint64(1)<<(w-1)) != 0 {
		return v | ^Mask(w)
	}
	return v & Mask(w)
}

// Vars appends the distinct variables reachable from t to out and
// returns the extended slice. The seen map tracks visited terms and may
// be shared across calls to accumulate variables of several terms.
func Vars(t *Term, seen map[*Term]bool, out []*Term) []*Term {
	if seen[t] {
		return out
	}
	seen[t] = true
	if t.op == OpVar {
		return append(out, t)
	}
	for _, a := range t.args {
		out = Vars(a, seen, out)
	}
	return out
}

// ContainsVar reports whether any variable occurs in t.
func ContainsVar(t *Term) bool {
	if t.op == OpVar {
		return true
	}
	if t.op == OpConst {
		return false
	}
	for _, a := range t.args {
		if ContainsVar(a) {
			return true
		}
	}
	return false
}
