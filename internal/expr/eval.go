package expr

import "fmt"

// Assignment maps variable names to concrete values (masked to the
// variable's width by the evaluator).
type Assignment map[string]uint64

// Eval evaluates t under the given assignment. Unassigned variables
// evaluate to zero, which matches the solver's completion of partial
// models.
func Eval(t *Term, a Assignment) uint64 {
	switch t.op {
	case OpConst:
		return t.val
	case OpVar:
		return a[t.name] & Mask(t.Width())
	}
	w := t.Width()
	switch t.op {
	case OpAdd:
		return (Eval(t.args[0], a) + Eval(t.args[1], a)) & Mask(w)
	case OpSub:
		return (Eval(t.args[0], a) - Eval(t.args[1], a)) & Mask(w)
	case OpMul:
		return (Eval(t.args[0], a) * Eval(t.args[1], a)) & Mask(w)
	case OpUDiv:
		y := Eval(t.args[1], a)
		if y == 0 {
			return Mask(w)
		}
		return Eval(t.args[0], a) / y
	case OpURem:
		y := Eval(t.args[1], a)
		if y == 0 {
			return Eval(t.args[0], a)
		}
		return Eval(t.args[0], a) % y
	case OpAnd:
		return Eval(t.args[0], a) & Eval(t.args[1], a)
	case OpOr:
		return Eval(t.args[0], a) | Eval(t.args[1], a)
	case OpXor:
		return Eval(t.args[0], a) ^ Eval(t.args[1], a)
	case OpNot:
		return ^Eval(t.args[0], a) & Mask(w)
	case OpNeg:
		return (-Eval(t.args[0], a)) & Mask(w)
	case OpShl:
		sh := Eval(t.args[1], a)
		if sh >= uint64(w) {
			return 0
		}
		return (Eval(t.args[0], a) << sh) & Mask(w)
	case OpLshr:
		sh := Eval(t.args[1], a)
		if sh >= uint64(w) {
			return 0
		}
		return Eval(t.args[0], a) >> sh
	case OpAshr:
		x := int64(SignExtend(Eval(t.args[0], a), t.args[0].Width()))
		sh := Eval(t.args[1], a)
		if sh >= uint64(t.args[0].Width()) {
			sh = uint64(t.args[0].Width()) - 1
		}
		return uint64(x>>sh) & Mask(w)
	case OpEq:
		return b2u(Eval(t.args[0], a) == Eval(t.args[1], a))
	case OpNe:
		return b2u(Eval(t.args[0], a) != Eval(t.args[1], a))
	case OpUlt:
		return b2u(Eval(t.args[0], a) < Eval(t.args[1], a))
	case OpUle:
		return b2u(Eval(t.args[0], a) <= Eval(t.args[1], a))
	case OpSlt:
		x := int64(SignExtend(Eval(t.args[0], a), t.args[0].Width()))
		y := int64(SignExtend(Eval(t.args[1], a), t.args[1].Width()))
		return b2u(x < y)
	case OpSle:
		x := int64(SignExtend(Eval(t.args[0], a), t.args[0].Width()))
		y := int64(SignExtend(Eval(t.args[1], a), t.args[1].Width()))
		return b2u(x <= y)
	case OpConcat:
		return (Eval(t.args[0], a)<<t.args[1].Width() | Eval(t.args[1], a)) & Mask(w)
	case OpExtract:
		return (Eval(t.args[0], a) >> t.lo) & Mask(w)
	case OpZExt:
		return Eval(t.args[0], a)
	case OpSExt:
		return SignExtend(Eval(t.args[0], a), t.args[0].Width()) & Mask(w)
	case OpIte:
		if Eval(t.args[0], a) != 0 {
			return Eval(t.args[1], a)
		}
		return Eval(t.args[2], a)
	}
	panic(fmt.Sprintf("expr: eval of unknown op %v", t.op))
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// Substitute replaces variables in t according to sub, rebuilding the
// term in b. Variables absent from sub are kept.
func Substitute(b *Builder, t *Term, sub map[string]*Term) *Term {
	cache := make(map[*Term]*Term)
	return substitute(b, t, sub, cache)
}

func substitute(b *Builder, t *Term, sub map[string]*Term, cache map[*Term]*Term) *Term {
	if r, ok := cache[t]; ok {
		return r
	}
	var r *Term
	switch t.op {
	case OpConst:
		r = b.Const(t.val, t.Width())
	case OpVar:
		if s, ok := sub[t.name]; ok {
			if s.Width() != t.Width() {
				panic(fmt.Sprintf("expr: substitution width mismatch for %q", t.name))
			}
			r = s
		} else {
			r = b.Var(t.name, t.Width())
		}
	default:
		args := make([]*Term, len(t.args))
		for i, a := range t.args {
			args[i] = substitute(b, a, sub, cache)
		}
		r = b.rebuild(t, args)
	}
	cache[t] = r
	return r
}

// Replace returns t with every occurrence of the subterm old replaced
// by repl, rebuilding through b so the result re-simplifies. It is the
// term-level analogue of Substitute, used by the solver's
// constraint-implied concretization (an equality `old = c` in the path
// condition licenses replacing old by c everywhere else).
func Replace(b *Builder, t, old, repl *Term) *Term {
	if old.Width() != repl.Width() {
		panic("expr: replacement width mismatch")
	}
	cache := make(map[*Term]*Term)
	var rec func(*Term) *Term
	rec = func(t *Term) *Term {
		if t == old {
			return repl
		}
		if t.op == OpConst || t.op == OpVar {
			return t
		}
		if r, ok := cache[t]; ok {
			return r
		}
		args := make([]*Term, len(t.args))
		changed := false
		for i, a := range t.args {
			args[i] = rec(a)
			if args[i] != a {
				changed = true
			}
		}
		r := t
		if changed {
			r = b.rebuild(t, args)
		}
		cache[t] = r
		return r
	}
	return rec(t)
}

func (b *Builder) rebuild(t *Term, args []*Term) *Term {
	switch t.op {
	case OpAdd:
		return b.Add(args[0], args[1])
	case OpSub:
		return b.Sub(args[0], args[1])
	case OpMul:
		return b.Mul(args[0], args[1])
	case OpUDiv:
		return b.UDiv(args[0], args[1])
	case OpURem:
		return b.URem(args[0], args[1])
	case OpAnd:
		return b.And(args[0], args[1])
	case OpOr:
		return b.Or(args[0], args[1])
	case OpXor:
		return b.Xor(args[0], args[1])
	case OpNot:
		return b.Not(args[0])
	case OpNeg:
		return b.Neg(args[0])
	case OpShl:
		return b.Shl(args[0], args[1])
	case OpLshr:
		return b.Lshr(args[0], args[1])
	case OpAshr:
		return b.Ashr(args[0], args[1])
	case OpEq:
		return b.Eq(args[0], args[1])
	case OpNe:
		return b.Ne(args[0], args[1])
	case OpUlt:
		return b.Ult(args[0], args[1])
	case OpUle:
		return b.Ule(args[0], args[1])
	case OpSlt:
		return b.Slt(args[0], args[1])
	case OpSle:
		return b.Sle(args[0], args[1])
	case OpConcat:
		return b.Concat(args[0], args[1])
	case OpExtract:
		return b.Extract(args[0], uint(t.lo), t.Width())
	case OpZExt:
		return b.ZExt(args[0], t.Width())
	case OpSExt:
		return b.SExt(args[0], t.Width())
	case OpIte:
		return b.Ite(args[0], args[1], args[2])
	}
	panic(fmt.Sprintf("expr: rebuild of unknown op %v", t.op))
}
