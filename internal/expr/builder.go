package expr

import (
	"fmt"
	"math/bits"
	"sync"
)

// builderShards is the number of independently locked intern-table
// shards. Sharding by term hash keeps concurrent workers from
// serializing on a single mutex while still guaranteeing that
// structurally equal terms intern to the same pointer.
const builderShards = 16

// Builder creates, deduplicates and simplifies terms. A Builder is
// safe for concurrent use: the intern table is lock-striped by term
// hash, so parallel exploration workers may share one Builder and rely
// on pointer equality for structural equality across workers (the
// property the shared solver cache is keyed on).
type Builder struct {
	shards [builderShards]internShard
	varMu  sync.Mutex
	vars   map[string]*Term
	// varSets memoizes, per interned term, the name-sorted set of
	// variables reachable from it (see VarSet).
	varSets sync.Map // map[*Term][]*Term
}

type internShard struct {
	mu    sync.Mutex
	table map[uint64][]*Term
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	b := &Builder{vars: make(map[string]*Term)}
	for i := range b.shards {
		b.shards[i].table = make(map[uint64][]*Term)
	}
	return b
}

func (b *Builder) intern(t *Term) *Term {
	h := t.computeHash()
	t.hash = h
	s := &b.shards[h%builderShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.table[h] {
		if c.equalShallow(t) {
			return c
		}
	}
	s.table[h] = append(s.table[h], t)
	return t
}

func (t *Term) computeHash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(t.op))
	mix(uint64(t.width))
	mix(t.val)
	mix(uint64(t.lo))
	for _, c := range t.name {
		mix(uint64(c))
	}
	for _, a := range t.args {
		mix(a.hash)
	}
	return h
}

func (t *Term) equalShallow(u *Term) bool {
	if t.op != u.op || t.width != u.width || t.val != u.val ||
		t.name != u.name || t.lo != u.lo || len(t.args) != len(u.args) {
		return false
	}
	for i := range t.args {
		if t.args[i] != u.args[i] {
			return false
		}
	}
	return true
}

func checkWidth(w uint) uint8 {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("expr: invalid width %d", w))
	}
	return uint8(w)
}

// Const returns the w-bit constant v (masked to width).
func (b *Builder) Const(v uint64, w uint) *Term {
	cw := checkWidth(w)
	return b.intern(&Term{op: OpConst, width: cw, val: v & Mask(w)})
}

// Bool returns the width-1 constant for v.
func (b *Builder) Bool(v bool) *Term {
	if v {
		return b.Const(1, 1)
	}
	return b.Const(0, 1)
}

// Var returns the variable with the given name and width. Requesting an
// existing name with a different width panics: variable identity is the
// name, so a width clash is a programming error.
func (b *Builder) Var(name string, w uint) *Term {
	cw := checkWidth(w)
	b.varMu.Lock()
	if v, ok := b.vars[name]; ok {
		b.varMu.Unlock()
		if v.width != cw {
			panic(fmt.Sprintf("expr: variable %q redeclared with width %d (was %d)", name, w, v.width))
		}
		return v
	}
	b.varMu.Unlock()
	// Interning dedups, so two racing declarations of the same
	// variable resolve to the same pointer before either publishes it.
	v := b.intern(&Term{op: OpVar, width: cw, name: name})
	b.varMu.Lock()
	b.vars[name] = v
	b.varMu.Unlock()
	return v
}

func sameWidth(x, y *Term) {
	if x.width != y.width {
		panic(fmt.Sprintf("expr: width mismatch %d vs %d", x.width, y.width))
	}
}

func (b *Builder) binary(op Op, x, y *Term, w uint8) *Term {
	return b.intern(&Term{op: op, width: w, args: []*Term{x, y}})
}

// Add returns x + y (modular).
func (b *Builder) Add(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val+y.val, x.Width())
	}
	if x.IsConst() && x.val == 0 {
		return y
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	// Canonicalize constant to the right for dedup.
	if x.IsConst() {
		x, y = y, x
	}
	// Fold add chains: (x + c1) + c2 = x + (c1 + c2).
	if y.IsConst() && x.op == OpAdd && x.args[1].IsConst() {
		return b.Add(x.args[0], b.Const(x.args[1].val+y.val, x.Width()))
	}
	return b.binary(OpAdd, x, y, x.width)
}

// Sub returns x - y (modular).
func (b *Builder) Sub(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val-y.val, x.Width())
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	if x == y {
		return b.Const(0, x.Width())
	}
	// Canonicalize x - c to x + (-c) so constant-offset chains fold.
	if y.IsConst() {
		return b.Add(x, b.Const(-y.val, x.Width()))
	}
	return b.binary(OpSub, x, y, x.width)
}

// Mul returns x * y (modular).
func (b *Builder) Mul(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val*y.val, x.Width())
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() {
		switch y.val {
		case 0:
			return y
		case 1:
			return x
		}
		// Strength-reduce multiplication by a power of two to a
		// shift; the blaster's shifter is far cheaper than its
		// shift-and-add multiplier.
		if y.val&(y.val-1) == 0 {
			return b.Shl(x, b.Const(uint64(bits.TrailingZeros64(y.val)), x.Width()))
		}
	}
	return b.binary(OpMul, x, y, x.width)
}

// UDiv returns x / y (unsigned). Division by zero yields all-ones,
// following SMT-LIB semantics.
func (b *Builder) UDiv(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		if y.val == 0 {
			return b.Const(Mask(x.Width()), x.Width())
		}
		return b.Const(x.val/y.val, x.Width())
	}
	if y.IsConst() && y.val == 1 {
		return x
	}
	// Strength-reduce division by a power of two to a logical shift.
	if y.IsConst() && y.val&(y.val-1) == 0 {
		return b.Lshr(x, b.Const(uint64(bits.TrailingZeros64(y.val)), x.Width()))
	}
	return b.binary(OpUDiv, x, y, x.width)
}

// URem returns x mod y (unsigned). x mod 0 = x, following SMT-LIB.
func (b *Builder) URem(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		if y.val == 0 {
			return x
		}
		return b.Const(x.val%y.val, x.Width())
	}
	// Strength-reduce modulo by a power of two to a mask.
	if y.IsConst() && y.val != 0 && y.val&(y.val-1) == 0 {
		return b.And(x, b.Const(y.val-1, x.Width()))
	}
	return b.binary(OpURem, x, y, x.width)
}

// And returns x & y.
func (b *Builder) And(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val&y.val, x.Width())
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() {
		if y.val == 0 {
			return y
		}
		if y.val == Mask(x.Width()) {
			return x
		}
		// Narrow through a zero extension when the mask fits the
		// original width: and(zext(x), c) = zext(and(x, c)). This is
		// the `andi` pattern on byte-loaded symbolic inputs and
		// shrinks every downstream blast from the extended width to
		// the source width.
		if x.op == OpZExt && y.val&^Mask(x.args[0].Width()) == 0 {
			return b.ZExt(b.And(x.args[0], b.Const(y.val, x.args[0].Width())), x.Width())
		}
	}
	if x == y {
		return x
	}
	return b.binary(OpAnd, x, y, x.width)
}

// Or returns x | y.
func (b *Builder) Or(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val|y.val, x.Width())
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() {
		if y.val == 0 {
			return x
		}
		if y.val == Mask(x.Width()) {
			return y
		}
		if x.op == OpZExt && y.val&^Mask(x.args[0].Width()) == 0 {
			return b.ZExt(b.Or(x.args[0], b.Const(y.val, x.args[0].Width())), x.Width())
		}
	}
	if x == y {
		return x
	}
	return b.binary(OpOr, x, y, x.width)
}

// Xor returns x ^ y.
func (b *Builder) Xor(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val^y.val, x.Width())
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	if y.IsConst() && x.op == OpZExt && y.val&^Mask(x.args[0].Width()) == 0 {
		return b.ZExt(b.Xor(x.args[0], b.Const(y.val, x.args[0].Width())), x.Width())
	}
	if x == y {
		return b.Const(0, x.Width())
	}
	return b.binary(OpXor, x, y, x.width)
}

// Not returns ^x (bitwise complement).
func (b *Builder) Not(x *Term) *Term {
	if x.IsConst() {
		return b.Const(^x.val, x.Width())
	}
	if x.op == OpNot {
		return x.args[0]
	}
	// Negated comparisons flip to the dual comparison so bound
	// constraints stay in a canonical form the solver's interval
	// tightening can read.
	if x.width == 1 {
		switch x.op {
		case OpUlt:
			return b.Ule(x.args[1], x.args[0])
		case OpUle:
			return b.Ult(x.args[1], x.args[0])
		case OpSlt:
			return b.Sle(x.args[1], x.args[0])
		case OpSle:
			return b.Slt(x.args[1], x.args[0])
		}
	}
	return b.intern(&Term{op: OpNot, width: x.width, args: []*Term{x}})
}

// Neg returns -x (two's complement).
func (b *Builder) Neg(x *Term) *Term {
	if x.IsConst() {
		return b.Const(-x.val, x.Width())
	}
	if x.op == OpNeg {
		return x.args[0]
	}
	return b.intern(&Term{op: OpNeg, width: x.width, args: []*Term{x}})
}

// Shl returns x << y. Shift amounts >= width yield zero.
func (b *Builder) Shl(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		if y.val >= uint64(x.Width()) {
			return b.Const(0, x.Width())
		}
		return b.Const(x.val<<y.val, x.Width())
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	return b.binary(OpShl, x, y, x.width)
}

// Lshr returns x >> y (logical). Shift amounts >= width yield zero.
func (b *Builder) Lshr(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		if y.val >= uint64(x.Width()) {
			return b.Const(0, x.Width())
		}
		return b.Const(x.val>>y.val, x.Width())
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	return b.binary(OpLshr, x, y, x.width)
}

// Ashr returns x >> y (arithmetic).
func (b *Builder) Ashr(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		s := int64(SignExtend(x.val, x.Width()))
		sh := y.val
		if sh >= uint64(x.Width()) {
			sh = uint64(x.Width()) - 1
		}
		return b.Const(uint64(s>>sh), x.Width())
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	return b.binary(OpAshr, x, y, x.width)
}

// Eq returns the width-1 term (x = y).
func (b *Builder) Eq(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.val == y.val)
	}
	if x == y {
		return b.Bool(true)
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() {
		// Boolean equality collapses to the operand or its negation.
		if x.width == 1 {
			if y.val == 1 {
				return x
			}
			return b.Not(x)
		}
		switch x.op {
		case OpAdd:
			// (x + c1) = c2  ⇔  x = c2 - c1
			if x.args[1].IsConst() {
				return b.Eq(x.args[0], b.Const(y.val-x.args[1].val, x.Width()))
			}
		case OpXor:
			// (x ^ c1) = c2  ⇔  x = c1 ^ c2
			if x.args[1].IsConst() {
				return b.Eq(x.args[0], b.Const(x.args[1].val^y.val, x.Width()))
			}
		case OpNot:
			return b.Eq(x.args[0], b.Const(^y.val, x.Width()))
		case OpNeg:
			return b.Eq(x.args[0], b.Const(-y.val, x.Width()))
		case OpZExt:
			// zext(x) = c is false when c overflows x, else narrows.
			if y.val&^Mask(x.args[0].Width()) != 0 {
				return b.Bool(false)
			}
			return b.Eq(x.args[0], b.Const(y.val, x.args[0].Width()))
		case OpConcat:
			// Split per part; each half usually touches fewer
			// variables, which feeds independence slicing.
			hi, lo := x.args[0], x.args[1]
			return b.And(
				b.Eq(hi, b.Const(y.val>>lo.Width(), hi.Width())),
				b.Eq(lo, b.Const(y.val, lo.Width())))
		}
	}
	return b.binary(OpEq, x, y, 1)
}

// Ne returns the width-1 term (x != y).
func (b *Builder) Ne(x, y *Term) *Term {
	return b.NotBool(b.Eq(x, y))
}

// Ult returns x < y (unsigned), width 1.
func (b *Builder) Ult(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.val < y.val)
	}
	if x == y {
		return b.Bool(false)
	}
	if y.IsConst() {
		if y.val == 0 {
			return b.Bool(false)
		}
		if y.val == 1 {
			return b.Eq(x, b.Const(0, x.Width()))
		}
		if x.op == OpZExt {
			iw := x.args[0].Width()
			if y.val > Mask(iw) {
				return b.Bool(true)
			}
			return b.Ult(x.args[0], b.Const(y.val, iw))
		}
	}
	if x.IsConst() {
		if x.val == Mask(x.Width()) {
			return b.Bool(false)
		}
		if y.op == OpZExt {
			iw := y.args[0].Width()
			if x.val >= Mask(iw) {
				return b.Bool(false)
			}
			return b.Ult(b.Const(x.val, iw), y.args[0])
		}
	}
	return b.binary(OpUlt, x, y, 1)
}

// Ule returns x <= y (unsigned), width 1.
func (b *Builder) Ule(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.val <= y.val)
	}
	if x == y {
		return b.Bool(true)
	}
	if x.IsConst() {
		if x.val == 0 {
			return b.Bool(true)
		}
		if y.op == OpZExt {
			iw := y.args[0].Width()
			if x.val > Mask(iw) {
				return b.Bool(false)
			}
			return b.Ule(b.Const(x.val, iw), y.args[0])
		}
	}
	if y.IsConst() {
		if y.val == Mask(x.Width()) {
			return b.Bool(true)
		}
		if y.val == 0 {
			return b.Eq(x, b.Const(0, x.Width()))
		}
		if x.op == OpZExt {
			iw := x.args[0].Width()
			if y.val >= Mask(iw) {
				return b.Bool(true)
			}
			return b.Ule(x.args[0], b.Const(y.val, iw))
		}
	}
	return b.binary(OpUle, x, y, 1)
}

// Slt returns x < y (signed), width 1.
func (b *Builder) Slt(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(int64(SignExtend(x.val, x.Width())) < int64(SignExtend(y.val, y.Width())))
	}
	if x == y {
		return b.Bool(false)
	}
	return b.binary(OpSlt, x, y, 1)
}

// Sle returns x <= y (signed), width 1.
func (b *Builder) Sle(x, y *Term) *Term {
	sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(int64(SignExtend(x.val, x.Width())) <= int64(SignExtend(y.val, y.Width())))
	}
	if x == y {
		return b.Bool(true)
	}
	return b.binary(OpSle, x, y, 1)
}

// NotBool returns the boolean negation of a width-1 term.
func (b *Builder) NotBool(x *Term) *Term {
	if x.Width() != 1 {
		panic("expr: NotBool on non-boolean term")
	}
	return b.Not(x)
}

// Concat returns hi ++ lo; hi occupies the most significant bits.
func (b *Builder) Concat(hi, lo *Term) *Term {
	w := hi.Width() + lo.Width()
	cw := checkWidth(w)
	if hi.IsConst() && lo.IsConst() {
		return b.Const(hi.val<<lo.Width()|lo.val, w)
	}
	return b.intern(&Term{op: OpConcat, width: cw, args: []*Term{hi, lo}})
}

// Extract returns bits [lo+w-1 : lo] of x as a w-bit term.
func (b *Builder) Extract(x *Term, lo, w uint) *Term {
	cw := checkWidth(w)
	if lo+w > x.Width() {
		panic(fmt.Sprintf("expr: extract [%d+%d] out of range of width %d", lo, w, x.Width()))
	}
	if lo == 0 && w == x.Width() {
		return x
	}
	if x.IsConst() {
		return b.Const(x.val>>lo, w)
	}
	// extract of extract
	if x.op == OpExtract {
		return b.Extract(x.args[0], uint(x.lo)+lo, w)
	}
	// extract entirely within one side of a concat
	if x.op == OpConcat {
		loW := x.args[1].Width()
		if lo+w <= loW {
			return b.Extract(x.args[1], lo, w)
		}
		if lo >= loW {
			return b.Extract(x.args[0], lo-loW, w)
		}
	}
	// extract of zext that stays within the original term
	if x.op == OpZExt && lo+w <= x.args[0].Width() {
		return b.Extract(x.args[0], lo, w)
	}
	return b.intern(&Term{op: OpExtract, width: cw, lo: uint8(lo), args: []*Term{x}})
}

// ZExt zero-extends x to width w.
func (b *Builder) ZExt(x *Term, w uint) *Term {
	cw := checkWidth(w)
	if w < x.Width() {
		panic("expr: zext to smaller width")
	}
	if w == x.Width() {
		return x
	}
	if x.IsConst() {
		return b.Const(x.val, w)
	}
	if x.op == OpZExt {
		return b.ZExt(x.args[0], w)
	}
	return b.intern(&Term{op: OpZExt, width: cw, args: []*Term{x}})
}

// SExt sign-extends x to width w.
func (b *Builder) SExt(x *Term, w uint) *Term {
	cw := checkWidth(w)
	if w < x.Width() {
		panic("expr: sext to smaller width")
	}
	if w == x.Width() {
		return x
	}
	if x.IsConst() {
		return b.Const(SignExtend(x.val, x.Width()), w)
	}
	return b.intern(&Term{op: OpSExt, width: cw, args: []*Term{x}})
}

// Ite returns (if cond then x else y); cond must have width 1.
func (b *Builder) Ite(cond, x, y *Term) *Term {
	if cond.Width() != 1 {
		panic("expr: ite condition must have width 1")
	}
	sameWidth(x, y)
	if c, ok := cond.Const(); ok {
		if c != 0 {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	// ite(c, 1, 0) is just the condition widened; ite(c, 0, 1) its
	// negation.
	if x.IsConst() && y.IsConst() {
		if x.val == 1 && y.val == 0 {
			return b.ZExt(cond, x.Width())
		}
		if x.val == 0 && y.val == 1 {
			return b.ZExt(b.Not(cond), x.Width())
		}
	}
	return b.intern(&Term{op: OpIte, width: x.width, args: []*Term{cond, x, y}})
}

// BoolToBV widens a width-1 term to w bits (0 or 1).
func (b *Builder) BoolToBV(x *Term, w uint) *Term {
	return b.ZExt(x, w)
}

// AndBool returns the conjunction of two width-1 terms.
func (b *Builder) AndBool(x, y *Term) *Term { return b.And(x, y) }

// OrBool returns the disjunction of two width-1 terms.
func (b *Builder) OrBool(x, y *Term) *Term { return b.Or(x, y) }

// NumTerms reports the number of distinct interned terms; useful for
// tests and diagnostics.
func (b *Builder) NumTerms() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		for _, bucket := range s.table {
			n += len(bucket)
		}
		s.mu.Unlock()
	}
	return n
}

// VarSet returns the distinct variables reachable from t, sorted by
// name. The result is memoized per interned term; because terms are
// hash-consed, the amortized cost is O(1) per reused node, which is
// what makes per-query independence slicing in internal/solver
// affordable. The returned slice is shared across callers and must not
// be modified. Safe for concurrent use.
func (b *Builder) VarSet(t *Term) []*Term {
	if v, ok := b.varSets.Load(t); ok {
		return v.([]*Term)
	}
	var out []*Term
	switch t.op {
	case OpConst:
	case OpVar:
		out = []*Term{t}
	default:
		for _, a := range t.args {
			out = mergeVarSets(out, b.VarSet(a))
		}
	}
	b.varSets.Store(t, out)
	return out
}

// mergeVarSets unions two name-sorted variable sets. Variable names are
// unique per Builder, so name order is a strict total order and pointer
// equality coincides with name equality.
func mergeVarSets(a, c []*Term) []*Term {
	if len(a) == 0 {
		return c
	}
	if len(c) == 0 {
		return a
	}
	out := make([]*Term, 0, len(a)+len(c))
	i, j := 0, 0
	for i < len(a) && j < len(c) {
		switch {
		case a[i] == c[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i].name < c[j].name:
			out = append(out, a[i])
			i++
		default:
			out = append(out, c[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, c[j:]...)
	return out
}

// PopCount64 is re-exported for cost heuristics.
func PopCount64(v uint64) int { return bits.OnesCount64(v) }
