package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"hardsnap/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func decodeAt(t *testing.T, p *Program, off int) isa.Inst {
	t.Helper()
	w := binary.LittleEndian.Uint32(p.Code[off:])
	in, err := isa.Decode(w)
	if err != nil {
		t.Fatalf("decode at %d: %v", off, err)
	}
	return in
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		add r1, r2, r3
		addi r4, r5, -7
		lw r6, 8(r7)
		sw r6, -4(sp)
		lui r1, 0x1000
	`)
	if len(p.Code) != 20 {
		t.Fatalf("code size %d, want 20", len(p.Code))
	}
	if in := decodeAt(t, p, 0); in.Op != isa.OpADD || in.Rd != 1 || in.Rs1 != 2 || in.Rs2 != 3 {
		t.Errorf("add: %v", in)
	}
	if in := decodeAt(t, p, 4); in.Op != isa.OpADDI || in.Imm != -7 {
		t.Errorf("addi: %v", in)
	}
	if in := decodeAt(t, p, 8); in.Op != isa.OpLW || in.Rd != 6 || in.Rs1 != 7 || in.Imm != 8 {
		t.Errorf("lw: %v", in)
	}
	if in := decodeAt(t, p, 12); in.Op != isa.OpSW || in.Rs1 != isa.RegSP || in.Rs2 != 6 || in.Imm != -4 {
		t.Errorf("sw: %v", in)
	}
	if in := decodeAt(t, p, 16); in.Op != isa.OpLUI || isa.LUIValue(in.Imm) != 0x40000000 {
		t.Errorf("lui: %v -> %#x", in, isa.LUIValue(in.Imm))
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
_start:
		addi r1, r0, 3
loop:
		addi r1, r1, -1
		bne r1, r0, loop
		beq r0, r0, done
		abort
done:
		halt
	`)
	if p.Entry != 0 {
		t.Fatalf("entry %#x, want 0", p.Entry)
	}
	// bne at offset 8 targets loop at 4: offset -4.
	if in := decodeAt(t, p, 8); in.Op != isa.OpBNE || in.Imm != -4 {
		t.Errorf("bne: %v", in)
	}
	// beq at 12 targets done at 20: offset +8.
	if in := decodeAt(t, p, 12); in.Op != isa.OpBEQ || in.Imm != 8 {
		t.Errorf("beq: %v", in)
	}
	if p.Symbols["done"] != 20 {
		t.Errorf("done at %#x, want 20", p.Symbols["done"])
	}
}

func TestForwardLabel(t *testing.T) {
	p := mustAssemble(t, `
		j end
		nop
end:
		halt
	`)
	if in := decodeAt(t, p, 0); in.Op != isa.OpJAL || in.Rd != 0 || in.Imm != 8 {
		t.Errorf("j: %v", in)
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.word 0x11223344, 5
		.half 0xBEEF
		.byte 1, 2
		.align 4
		.asciz "hi"
		.space 3
	`)
	if got := binary.LittleEndian.Uint32(p.Code[0:]); got != 0x11223344 {
		t.Errorf("word 0: %#x", got)
	}
	if got := binary.LittleEndian.Uint32(p.Code[4:]); got != 5 {
		t.Errorf("word 1: %#x", got)
	}
	if got := binary.LittleEndian.Uint16(p.Code[8:]); got != 0xBEEF {
		t.Errorf("half: %#x", got)
	}
	if p.Code[10] != 1 || p.Code[11] != 2 {
		t.Errorf("bytes: %v", p.Code[10:12])
	}
	// .align 4 pads 0 bytes here (already aligned at 12).
	if string(p.Code[12:14]) != "hi" || p.Code[14] != 0 {
		t.Errorf("asciz: %q", p.Code[12:15])
	}
	if len(p.Code) != 18 {
		t.Errorf("total size %d, want 18", len(p.Code))
	}
}

func TestOrgPadding(t *testing.T) {
	p := mustAssemble(t, `
		nop
		.org 0x20
data:
		.word 42
	`)
	if p.Symbols["data"] != 0x20 {
		t.Fatalf("data at %#x", p.Symbols["data"])
	}
	if len(p.Code) != 0x24 {
		t.Fatalf("size %d", len(p.Code))
	}
	if got := binary.LittleEndian.Uint32(p.Code[0x20:]); got != 42 {
		t.Fatalf("data value %d", got)
	}
}

func TestOrgBackwardsFails(t *testing.T) {
	_, err := Assemble(".org 0x10\nnop\n.org 0x4\n", 0)
	if err == nil {
		t.Fatal("backwards .org must fail")
	}
}

func TestLiExpansion(t *testing.T) {
	p := mustAssemble(t, `
		li r1, 5
		li r2, 0x40000000
		li r3, 0xDEADBEEF
	`)
	// 1 + 1 + 5 instructions.
	if len(p.Code) != 28 {
		t.Fatalf("size %d, want 28", len(p.Code))
	}
}

func TestLaUsesFixedSize(t *testing.T) {
	p := mustAssemble(t, `
		la r1, target
		nop
target:
		halt
	`)
	if p.Symbols["target"] != 24 {
		t.Fatalf("target at %#x, want 24 (la is 5 words)", p.Symbols["target"])
	}
}

func TestCallRet(t *testing.T) {
	p := mustAssemble(t, `
_start:
		call fn
		halt
fn:
		ret
	`)
	if in := decodeAt(t, p, 0); in.Op != isa.OpJAL || in.Rd != isa.RegRA || in.Imm != 8 {
		t.Errorf("call: %v", in)
	}
	if in := decodeAt(t, p, 8); in.Op != isa.OpJALR || in.Rd != 0 || in.Rs1 != isa.RegRA {
		t.Errorf("ret: %v", in)
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
		nop ; semicolon comment
		nop # hash comment
		nop // slash comment
	`)
	if len(p.Code) != 12 {
		t.Fatalf("size %d, want 12", len(p.Code))
	}
}

func TestStringWithCommentChars(t *testing.T) {
	p := mustAssemble(t, `.asciz "a;b#c"`)
	if string(p.Code[:5]) != "a;b#c" {
		t.Fatalf("got %q", p.Code)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"frobnicate r1, r2",
		"add r1, r2",
		"add r99, r1, r2",
		"addi r1, r0, 99999",
		"lw r1, r2",
		"beq r1, r2, nowhere",
		"label:\nlabel:\nnop",
		"li r1",
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("expected error for %q", src)
		} else {
			var ae *Error
			if !strings.Contains(err.Error(), "line") {
				t.Errorf("error should carry a line number: %v", err)
			}
			_ = ae
		}
	}
}

func TestSymbolAsImmediate(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x0
val:
		.word 0
		addi r1, r0, val
	`)
	if in := decodeAt(t, p, 4); in.Imm != 0 {
		t.Errorf("symbol immediate: %v", in)
	}
}

func TestEntrySymbol(t *testing.T) {
	p := mustAssemble(t, `
		nop
_start:
		halt
	`)
	if p.Entry != 4 {
		t.Fatalf("entry %#x, want 4", p.Entry)
	}
}
