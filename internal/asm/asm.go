// Package asm implements a two-pass assembler for the HS32 ISA. It is
// the toolchain used by the examples and the benchmark harness to build
// synthetic firmware images, standing in for the C cross-compiler of
// the original prototype.
//
// Syntax overview (one statement per line, ';' '#' and '//' start
// comments):
//
//	_start:                 ; label
//	    li   r1, 0x40000000 ; pseudo: load 32-bit immediate
//	    la   r2, buf        ; pseudo: load label address
//	    lw   r3, 4(r1)      ; load with base+offset
//	    beq  r3, r0, done
//	    jal  r15, func      ; call
//	    halt                ; pseudo: ecall 0
//	buf:
//	    .word 1, 2, 3
//	    .asciz "hello"
//	    .space 16
//	    .align 4
//	    .org 0x200
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"hardsnap/internal/isa"
)

// Program is an assembled firmware image.
type Program struct {
	// Base is the load address of the first byte of Code.
	Base uint32
	// Code is the image contents (little-endian instruction words and
	// data), to be loaded at Base.
	Code []byte
	// Entry is the initial program counter: the `_start` symbol if
	// defined, otherwise Base.
	Entry uint32
	// Symbols maps every label to its address.
	Symbols map[string]uint32
}

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

type statement struct {
	line    int
	label   string
	mnem    string
	args    []string
	addr    uint32
	size    uint32
	rawText string
}

// Assemble translates source text into a Program loaded at base.
func Assemble(src string, base uint32) (*Program, error) {
	stmts, err := parse(src)
	if err != nil {
		return nil, err
	}

	symbols := make(map[string]uint32)
	// Pass 1: layout.
	pc := base
	for i := range stmts {
		st := &stmts[i]
		if st.label != "" {
			if _, dup := symbols[st.label]; dup {
				return nil, &Error{st.line, fmt.Sprintf("duplicate label %q", st.label)}
			}
			symbols[st.label] = pc
		}
		if st.mnem == "" {
			continue
		}
		size, err := sizeOf(st, pc, base)
		if err != nil {
			return nil, err
		}
		st.addr = pc
		st.size = size
		if st.mnem == ".org" {
			target, perr := parseUint(st.args[0])
			if perr != nil {
				return nil, &Error{st.line, perr.Error()}
			}
			if uint32(target) < pc {
				return nil, &Error{st.line, fmt.Sprintf(".org %#x moves backwards from %#x", target, pc)}
			}
			pc = uint32(target)
			continue
		}
		pc += size
	}

	// Pass 2: emit.
	a := &assembler{symbols: symbols, base: base}
	for i := range stmts {
		st := &stmts[i]
		if st.mnem == "" {
			continue
		}
		if err := a.emit(st); err != nil {
			return nil, err
		}
	}

	entry := base
	if e, ok := symbols["_start"]; ok {
		entry = e
	}
	return &Program{Base: base, Code: a.out, Entry: entry, Symbols: symbols}, nil
}

func parse(src string) ([]statement, error) {
	var stmts []statement
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		st := statement{line: lineNo + 1, rawText: line}
		// Labels: "name:" possibly followed by an instruction.
		if idx := strings.Index(line, ":"); idx >= 0 && isIdent(strings.TrimSpace(line[:idx])) {
			st.label = strings.TrimSpace(line[:idx])
			line = strings.TrimSpace(line[idx+1:])
		}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			st.mnem = strings.ToLower(strings.TrimSpace(fields[0]))
			if len(fields) == 2 {
				st.args = splitArgs(fields[1])
			}
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '"' {
			inStr = !inStr
			continue
		}
		if inStr {
			if c == '\\' {
				i++
			}
			continue
		}
		if c == ';' || c == '#' {
			return line[:i]
		}
		if c == '/' && i+1 < len(line) && line[i+1] == '/' {
			return line[:i]
		}
	}
	return line
}

func splitArgs(s string) []string {
	var args []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			inStr = !inStr
		case inStr && c == '\\':
			i++
		case inStr:
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		args = append(args, tail)
	}
	return args
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sizeOf computes a statement's byte size during pass 1.
func sizeOf(st *statement, pc, base uint32) (uint32, error) {
	switch st.mnem {
	case ".org":
		if len(st.args) != 1 {
			return 0, &Error{st.line, ".org needs one argument"}
		}
		return 0, nil
	case ".word":
		return uint32(4 * len(st.args)), nil
	case ".half":
		return uint32(2 * len(st.args)), nil
	case ".byte":
		return uint32(len(st.args)), nil
	case ".space":
		n, err := parseUint(st.args[0])
		if err != nil {
			return 0, &Error{st.line, err.Error()}
		}
		return uint32(n), nil
	case ".align":
		n, err := parseUint(st.args[0])
		if err != nil {
			return 0, &Error{st.line, err.Error()}
		}
		if n == 0 || n&(n-1) != 0 {
			return 0, &Error{st.line, ".align argument must be a power of two"}
		}
		return uint32((n - uint64(pc)%n) % n), nil
	case ".asciz":
		s, err := parseString(st.args[0])
		if err != nil {
			return 0, &Error{st.line, err.Error()}
		}
		return uint32(len(s) + 1), nil
	case "li":
		// Size depends on the constant, which is known in pass 1.
		if len(st.args) != 2 {
			return 0, &Error{st.line, "li needs rd, imm"}
		}
		v, err := parseUint(st.args[1])
		if err != nil {
			return 0, &Error{st.line, err.Error()}
		}
		return uint32(4 * len(isa.ExpandLI(0, uint32(v)))), nil
	case "la":
		// The label value is unknown in pass 1: always use the full
		// 5-instruction expansion so layout is deterministic.
		return 20, nil
	default:
		return 4, nil
	}
}

type assembler struct {
	symbols map[string]uint32
	base    uint32
	out     []byte
}

func (a *assembler) pad(to uint32) {
	for uint32(len(a.out)) < to-a.base {
		a.out = append(a.out, 0)
	}
}

func (a *assembler) word(w uint32) {
	a.out = append(a.out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

func (a *assembler) emit(st *statement) error {
	a.pad(st.addr)
	switch st.mnem {
	case ".org":
		return nil
	case ".word":
		for _, arg := range st.args {
			v, err := a.value(arg, st)
			if err != nil {
				return err
			}
			a.word(uint32(v))
		}
		return nil
	case ".half":
		for _, arg := range st.args {
			v, err := a.value(arg, st)
			if err != nil {
				return err
			}
			a.out = append(a.out, byte(v), byte(v>>8))
		}
		return nil
	case ".byte":
		for _, arg := range st.args {
			v, err := a.value(arg, st)
			if err != nil {
				return err
			}
			a.out = append(a.out, byte(v))
		}
		return nil
	case ".space", ".align":
		for i := uint32(0); i < st.size; i++ {
			a.out = append(a.out, 0)
		}
		return nil
	case ".asciz":
		s, err := parseString(st.args[0])
		if err != nil {
			return &Error{st.line, err.Error()}
		}
		a.out = append(a.out, s...)
		a.out = append(a.out, 0)
		return nil
	}
	insts, err := a.lower(st)
	if err != nil {
		return err
	}
	for _, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			return &Error{st.line, err.Error()}
		}
		a.word(w)
	}
	return nil
}

// value resolves a numeric literal or label reference.
func (a *assembler) value(arg string, st *statement) (uint64, error) {
	if v, ok := a.symbols[arg]; ok {
		return uint64(v), nil
	}
	v, err := parseUint(arg)
	if err != nil {
		return 0, &Error{st.line, fmt.Sprintf("cannot resolve %q", arg)}
	}
	return v, nil
}

func parseUint(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return uint64(-int64(v)), nil
	}
	return v, nil
}

func parseString(s string) (string, error) {
	return strconv.Unquote(strings.TrimSpace(s))
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return isa.RegSP, nil
	case "ra":
		return isa.RegRA, nil
	case "zero":
		return isa.RegZero, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseMem parses "offset(reg)" or "(reg)".
func parseMem(s string) (int32, uint8, error) {
	open := strings.Index(s, "(")
	closeP := strings.LastIndex(s, ")")
	if open < 0 || closeP <= open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	reg, err := parseReg(s[open+1 : closeP])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, reg, nil
	}
	off, err := strconv.ParseInt(offStr, 0, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset %q", offStr)
	}
	return int32(off), reg, nil
}

var rType = map[string]isa.Opcode{
	"add": isa.OpADD, "sub": isa.OpSUB, "and": isa.OpAND, "or": isa.OpOR,
	"xor": isa.OpXOR, "sll": isa.OpSLL, "srl": isa.OpSRL, "sra": isa.OpSRA,
	"mul": isa.OpMUL, "divu": isa.OpDIVU, "remu": isa.OpREMU,
	"slt": isa.OpSLT, "sltu": isa.OpSLTU,
}

var iType = map[string]isa.Opcode{
	"addi": isa.OpADDI, "andi": isa.OpANDI, "ori": isa.OpORI,
	"xori": isa.OpXORI, "slli": isa.OpSLLI, "srli": isa.OpSRLI,
	"srai": isa.OpSRAI, "slti": isa.OpSLTI, "sltiu": isa.OpSLTIU,
}

var loadType = map[string]isa.Opcode{
	"lw": isa.OpLW, "lh": isa.OpLH, "lhu": isa.OpLHU,
	"lb": isa.OpLB, "lbu": isa.OpLBU,
}

var storeType = map[string]isa.Opcode{
	"sw": isa.OpSW, "sh": isa.OpSH, "sb": isa.OpSB,
}

var branchType = map[string]isa.Opcode{
	"beq": isa.OpBEQ, "bne": isa.OpBNE, "blt": isa.OpBLT,
	"bge": isa.OpBGE, "bltu": isa.OpBLTU, "bgeu": isa.OpBGEU,
}

func (a *assembler) lower(st *statement) ([]isa.Inst, error) {
	need := func(n int) error {
		if len(st.args) != n {
			return &Error{st.line, fmt.Sprintf("%s needs %d operands, got %d", st.mnem, n, len(st.args))}
		}
		return nil
	}
	regArg := func(i int) (uint8, error) {
		r, err := parseReg(st.args[i])
		if err != nil {
			return 0, &Error{st.line, err.Error()}
		}
		return r, nil
	}
	immArg := func(i int) (int32, error) {
		if v, ok := a.symbols[st.args[i]]; ok {
			return int32(v), nil
		}
		v, err := strconv.ParseInt(st.args[i], 0, 64)
		if err != nil {
			return 0, &Error{st.line, fmt.Sprintf("bad immediate %q", st.args[i])}
		}
		return int32(v), nil
	}
	// branchTarget resolves a label (or literal) into a pc-relative
	// byte offset from the branch instruction.
	branchTarget := func(i int, instAddr uint32) (int32, error) {
		if v, ok := a.symbols[st.args[i]]; ok {
			return int32(v) - int32(instAddr), nil
		}
		v, err := strconv.ParseInt(st.args[i], 0, 32)
		if err != nil {
			return 0, &Error{st.line, fmt.Sprintf("unknown branch target %q", st.args[i])}
		}
		return int32(v), nil
	}

	if op, ok := rType[st.mnem]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := regArg(1)
		if err != nil {
			return nil, err
		}
		rs2, err := regArg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}, nil
	}
	if op, ok := iType[st.mnem]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := regArg(1)
		if err != nil {
			return nil, err
		}
		imm, err := immArg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: imm}}, nil
	}
	if op, ok := loadType[st.mnem]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		off, rs1, err := parseMem(st.args[1])
		if err != nil {
			return nil, &Error{st.line, err.Error()}
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: off}}, nil
	}
	if op, ok := storeType[st.mnem]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := regArg(0)
		if err != nil {
			return nil, err
		}
		off, rs1, err := parseMem(st.args[1])
		if err != nil {
			return nil, &Error{st.line, err.Error()}
		}
		return []isa.Inst{{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}}, nil
	}
	if op, ok := branchType[st.mnem]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := regArg(0)
		if err != nil {
			return nil, err
		}
		rs2, err := regArg(1)
		if err != nil {
			return nil, err
		}
		off, err := branchTarget(2, st.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}}, nil
	}

	switch st.mnem {
	case "lui":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		imm, err := immArg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpLUI, Rd: rd, Imm: imm}}, nil
	case "jal":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		off, err := branchTarget(1, st.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJAL, Rd: rd, Imm: off}}, nil
	case "jalr":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := regArg(1)
		if err != nil {
			return nil, err
		}
		imm, err := immArg(2)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: imm}}, nil
	case "ecall":
		if err := need(1); err != nil {
			return nil, err
		}
		imm, err := immArg(0)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpECALL, Imm: imm}}, nil
	case "mret":
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpMRET}}, nil

	// Pseudo-instructions.
	case "nop":
		return []isa.Inst{{Op: isa.OpADDI}}, nil
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := regArg(1)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpADDI, Rd: rd, Rs1: rs1}}, nil
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		v, perr := parseUint(st.args[1])
		if perr != nil {
			return nil, &Error{st.line, perr.Error()}
		}
		return isa.ExpandLI(rd, uint32(v)), nil
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := regArg(0)
		if err != nil {
			return nil, err
		}
		addr, ok := a.symbols[st.args[1]]
		if !ok {
			return nil, &Error{st.line, fmt.Sprintf("unknown label %q", st.args[1])}
		}
		return expandLIFixed(rd, addr), nil
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := branchTarget(0, st.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJAL, Rd: isa.RegZero, Imm: off}}, nil
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := branchTarget(0, st.addr)
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJAL, Rd: isa.RegRA, Imm: off}}, nil
	case "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: isa.RegRA}}, nil
	case "halt":
		return []isa.Inst{{Op: isa.OpECALL, Imm: isa.EcallHalt}}, nil
	case "abort":
		return []isa.Inst{{Op: isa.OpECALL, Imm: isa.EcallAbort}}, nil
	}
	return nil, &Error{st.line, fmt.Sprintf("unknown mnemonic %q", st.mnem)}
}

// expandLIFixed is the deterministic 5-instruction constant load used
// by `la`, whose size must not depend on the (pass-2) label value.
func expandLIFixed(rd uint8, v uint32) []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpADDI, Rd: rd, Rs1: isa.RegZero, Imm: int32(v >> 26 & 0x3F)},
		{Op: isa.OpSLLI, Rd: rd, Rs1: rd, Imm: 13},
		{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: int32(v >> 13 & 0x1FFF)},
		{Op: isa.OpSLLI, Rd: rd, Rs1: rd, Imm: 13},
		{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: int32(v & 0x1FFF)},
	}
}
