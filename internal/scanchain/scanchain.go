// Package scanchain implements HardSnap's hardware snapshotting
// instrumentation: an AST-to-AST pass over Verilog modules that threads
// every register (and, word-by-word, every writable memory) into a
// shift register controlled by three new ports:
//
//	input  wire scan_enable
//	input  wire scan_in
//	output wire scan_out
//
// With scan_enable high, each clock cycle shifts the chain by one bit:
// scan_in enters the least significant bit of the first element, each
// element's most significant bit feeds the next element, and the last
// element's most significant bit drives scan_out. With scan_enable low
// the design behaves exactly as before. The pass operates at the RTL
// source level, so the result is independent of the downstream target
// (simulator or FPGA), exactly as in the paper (Section IV-A).
//
// Hierarchical designs are supported by daisy-chaining: child instances
// of instrumented modules become chain segments between the parent's
// local registers.
package scanchain

import (
	"fmt"
	"strings"

	"hardsnap/internal/verilog"
)

// Options configures the instrumentation pass.
type Options struct {
	// Params resolves parametric memory depths; defaults come from the
	// module's own parameter declarations.
	Params map[string]uint64
	// Exclude lists register or memory names to leave out of the chain
	// (the paper's "limit the instrumentation to a sub-component").
	Exclude []string
	// EnableName, InName, OutName override the default port names
	// scan_enable / scan_in / scan_out.
	EnableName, InName, OutName string
}

func (o *Options) setDefaults() {
	if o.EnableName == "" {
		o.EnableName = "scan_enable"
	}
	if o.InName == "" {
		o.InName = "scan_in"
	}
	if o.OutName == "" {
		o.OutName = "scan_out"
	}
}

// ElementKind distinguishes chain element types.
type ElementKind int

// Chain element kinds.
const (
	KindRegister ElementKind = iota + 1
	KindMemory
	KindInstance
)

// String names the kind.
func (k ElementKind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindMemory:
		return "memory"
	case KindInstance:
		return "instance"
	}
	return "?"
}

// Element describes one chain segment.
type Element struct {
	Name string
	Kind ElementKind
	// Bits is the segment length (0 for instances, whose length is
	// accounted in the child module's report).
	Bits uint
	// Module is the instantiated module name (instances only).
	Module string
	// Width/Depth describe memory segments.
	Width, Depth uint
}

// Report summarizes the instrumentation of one module.
type Report struct {
	Module string
	// ChainBits is the local chain length (registers + memories,
	// excluding child instances).
	ChainBits uint
	Elements  []Element
	// OriginalLines/InstrumentedLines measure source-level overhead.
	OriginalLines     int
	InstrumentedLines int
}

// Overhead returns the added-lines ratio, the paper's instrumentation
// overhead metric.
func (r *Report) Overhead() float64 {
	if r.OriginalLines == 0 {
		return 0
	}
	return float64(r.InstrumentedLines-r.OriginalLines) / float64(r.OriginalLines)
}

// InstrumentAll instruments the module named top and, recursively,
// every module it instantiates. The file is modified in place; reports
// are keyed by module name.
func InstrumentAll(file *verilog.SourceFile, top string, opts Options) (map[string]*Report, error) {
	opts.setDefaults()
	reports := make(map[string]*Report)
	if err := instrumentRec(file, top, opts, reports); err != nil {
		return nil, err
	}
	return reports, nil
}

// Instrument instruments a single module in place (children must
// already be instrumented or absent).
func Instrument(file *verilog.SourceFile, name string, opts Options) (*Report, error) {
	opts.setDefaults()
	mod := file.FindModule(name)
	if mod == nil {
		return nil, fmt.Errorf("scanchain: module %q not found", name)
	}
	return instrumentModule(file, mod, opts)
}

func instrumentRec(file *verilog.SourceFile, name string, opts Options, reports map[string]*Report) error {
	if _, done := reports[name]; done {
		return nil
	}
	mod := file.FindModule(name)
	if mod == nil {
		return fmt.Errorf("scanchain: module %q not found", name)
	}
	// Children first, so instrumentModule can chain through them.
	for _, item := range mod.Items {
		if inst, ok := item.(*verilog.Instance); ok {
			if err := instrumentRec(file, inst.ModuleName, opts, reports); err != nil {
				return err
			}
		}
	}
	r, err := instrumentModule(file, mod, opts)
	if err != nil {
		return err
	}
	reports[name] = r
	return nil
}

type element struct {
	kind ElementKind
	name string
	bits uint
	// reg fields
	msb verilog.Expr // nil for 1-bit
	// memory fields
	depth uint
	width uint
	// instance fields
	inst *verilog.Instance
	// ff is the sequential block writing this element (nil for
	// instances).
	ff *verilog.AlwaysFF
}

func instrumentModule(file *verilog.SourceFile, mod *verilog.Module, opts Options) (*Report, error) {
	origLines := strings.Count(verilog.PrintModule(mod), "\n")
	excluded := make(map[string]bool, len(opts.Exclude))
	for _, n := range opts.Exclude {
		excluded[n] = true
	}
	params, err := resolveParams(mod, opts.Params)
	if err != nil {
		return nil, err
	}

	// Index declarations.
	type declInfo struct {
		msb, lsb verilog.Expr
		isMem    bool
		depth    uint
		width    uint
	}
	decls := make(map[string]*declInfo)
	for _, port := range mod.Ports {
		decls[port.Name] = &declInfo{msb: port.MSB, lsb: port.LSB}
	}
	for _, item := range mod.Items {
		nd, ok := item.(*verilog.NetDecl)
		if !ok {
			continue
		}
		for _, dn := range nd.Names {
			info := &declInfo{msb: nd.MSB, lsb: nd.LSB}
			if dn.ArrMSB != nil {
				info.isMem = true
				// Memories are declared [0:N]; the depth bound is the
				// larger of the two range values.
				b1, err := constEval(dn.ArrMSB, params)
				if err != nil {
					return nil, fmt.Errorf("scanchain: module %s: memory %s depth: %v", mod.Name, dn.Name, err)
				}
				b2, err := constEval(dn.ArrLSB, params)
				if err != nil {
					return nil, fmt.Errorf("scanchain: module %s: memory %s depth: %v", mod.Name, dn.Name, err)
				}
				if b2 > b1 {
					b1 = b2
				}
				info.depth = uint(b1) + 1
				w := uint(1)
				if nd.MSB != nil {
					wv, err := constEval(nd.MSB, params)
					if err != nil {
						return nil, fmt.Errorf("scanchain: module %s: memory %s width: %v", mod.Name, dn.Name, err)
					}
					w = uint(wv) + 1
				}
				info.width = w
			}
			decls[dn.Name] = info
		}
	}

	// Discover chain elements in deterministic order: walk items;
	// sequential blocks contribute their written registers/memories in
	// first-write order; instances of instrumented modules contribute a
	// segment.
	var elements []element
	seen := make(map[string]bool)
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.AlwaysFF:
			var names []string
			collectSeqTargets(it.Body, &names)
			for _, n := range names {
				if seen[n] || excluded[n] {
					continue
				}
				seen[n] = true
				info := decls[n]
				if info == nil {
					return nil, fmt.Errorf("scanchain: module %s: unknown register %q", mod.Name, n)
				}
				if info.isMem {
					elements = append(elements, element{
						kind: KindMemory, name: n, bits: info.width * info.depth,
						depth: info.depth, width: info.width, msb: info.msb, ff: it,
					})
				} else {
					var bits uint = 1
					if info.msb != nil {
						wv, err := constEval(info.msb, params)
						if err != nil {
							return nil, fmt.Errorf("scanchain: module %s: width of %s: %v", mod.Name, n, err)
						}
						bits = uint(wv) + 1
					}
					elements = append(elements, element{
						kind: KindRegister, name: n, bits: bits, msb: info.msb, ff: it,
					})
				}
			}
		case *verilog.Instance:
			child := file.FindModule(it.ModuleName)
			if child == nil {
				return nil, fmt.Errorf("scanchain: module %s instantiates unknown %q", mod.Name, it.ModuleName)
			}
			if !hasPort(child, opts.InName) {
				continue // child not instrumented (e.g. stateless)
			}
			if excluded[it.Name] {
				// Excluded children still need their scan inputs tied off.
				it.Conns[opts.EnableName] = &verilog.Number{Value: 0, Width: 1, Text: "1'b0"}
				it.Conns[opts.InName] = &verilog.Number{Value: 0, Width: 1, Text: "1'b0"}
				continue
			}
			elements = append(elements, element{kind: KindInstance, name: it.Name, inst: it})
		}
	}

	// Add scan ports.
	if hasPort(mod, opts.InName) {
		return nil, fmt.Errorf("scanchain: module %s is already instrumented", mod.Name)
	}
	mod.Ports = append(mod.Ports,
		&verilog.Port{Dir: verilog.DirInput, Name: opts.EnableName},
		&verilog.Port{Dir: verilog.DirInput, Name: opts.InName},
		&verilog.Port{Dir: verilog.DirOutput, Name: opts.OutName},
	)

	report := &Report{Module: mod.Name}

	// Build the chain.
	prev := verilog.Expr(&verilog.Ident{Name: opts.InName})
	shiftStmts := make(map[*verilog.AlwaysFF][]verilog.Stmt)
	for i := range elements {
		el := &elements[i]
		switch el.kind {
		case KindRegister:
			shiftStmts[el.ff] = append(shiftStmts[el.ff], regShift(el.name, el.msb, prev))
			prev = regMSB(el.name, el.msb)
			report.ChainBits += el.bits
			report.Elements = append(report.Elements, Element{Name: el.name, Kind: KindRegister, Bits: el.bits})

		case KindMemory:
			for w := uint(0); w < el.depth; w++ {
				lhs := &verilog.Index{
					X:   &verilog.Ident{Name: el.name},
					Idx: &verilog.Number{Value: uint64(w), Width: 32},
				}
				shiftStmts[el.ff] = append(shiftStmts[el.ff], wordShift(lhs, el.width, prev))
				prev = wordMSB(lhs, el.width)
			}
			report.ChainBits += el.bits
			report.Elements = append(report.Elements, Element{Name: el.name, Kind: KindMemory, Bits: el.bits, Width: el.width, Depth: el.depth})

		case KindInstance:
			outWire := el.inst.Name + "_" + opts.OutName
			// wire <inst>_scan_out;
			mod.Items = append(mod.Items, &verilog.NetDecl{
				Names: []verilog.DeclName{{Name: outWire}},
			})
			el.inst.Conns[opts.EnableName] = &verilog.Ident{Name: opts.EnableName}
			el.inst.Conns[opts.InName] = prev
			el.inst.Conns[opts.OutName] = &verilog.Ident{Name: outWire}
			prev = &verilog.Ident{Name: outWire}
			report.Elements = append(report.Elements, Element{Name: el.name, Kind: KindInstance, Module: el.inst.ModuleName})
		}
	}

	// scan_out follows the last element (or scan_in for stateless
	// modules, making the module a transparent chain segment).
	mod.Items = append(mod.Items, &verilog.Assign{
		LHS: &verilog.Ident{Name: opts.OutName},
		RHS: prev,
	})

	// Wrap each sequential block: if (scan_enable) <shifts> else <orig>.
	for _, item := range mod.Items {
		ff, ok := item.(*verilog.AlwaysFF)
		if !ok {
			continue
		}
		shifts := shiftStmts[ff]
		if len(shifts) == 0 {
			continue
		}
		ff.Body = &verilog.If{
			Cond: &verilog.Ident{Name: opts.EnableName},
			Then: &verilog.Block{Stmts: shifts},
			Else: ff.Body,
		}
	}

	report.OriginalLines = origLines
	report.InstrumentedLines = strings.Count(verilog.PrintModule(mod), "\n")
	return report, nil
}

// regShift builds "r <= {r[MSB-1:0], prev}" (or "r <= prev" for 1-bit).
func regShift(name string, msb verilog.Expr, prev verilog.Expr) verilog.Stmt {
	lhs := &verilog.Ident{Name: name}
	if msb == nil {
		return &verilog.NonBlocking{LHS: lhs, RHS: prev}
	}
	return &verilog.NonBlocking{
		LHS: lhs,
		RHS: &verilog.Concat{Parts: []verilog.Expr{
			&verilog.RangeSel{
				X:   &verilog.Ident{Name: name},
				MSB: &verilog.Binary{Op: "-", X: msb, Y: &verilog.Number{Value: 1, Width: 32}},
				LSB: &verilog.Number{Value: 0, Width: 32},
			},
			prev,
		}},
	}
}

// regMSB builds "r[MSB]" (or "r" for 1-bit).
func regMSB(name string, msb verilog.Expr) verilog.Expr {
	if msb == nil {
		return &verilog.Ident{Name: name}
	}
	return &verilog.Index{X: &verilog.Ident{Name: name}, Idx: msb}
}

// wordShift builds "mem[i] <= {mem[i][W-2:0], prev}" for a memory word.
func wordShift(lhs *verilog.Index, width uint, prev verilog.Expr) verilog.Stmt {
	if width == 1 {
		return &verilog.NonBlocking{LHS: lhs, RHS: prev}
	}
	return &verilog.NonBlocking{
		LHS: lhs,
		RHS: &verilog.Concat{Parts: []verilog.Expr{
			&verilog.RangeSel{
				X:   &verilog.Index{X: lhs.X, Idx: lhs.Idx},
				MSB: &verilog.Number{Value: uint64(width - 2), Width: 32},
				LSB: &verilog.Number{Value: 0, Width: 32},
			},
			prev,
		}},
	}
}

// wordMSB builds "mem[i][W-1]".
func wordMSB(lhs *verilog.Index, width uint) verilog.Expr {
	if width == 1 {
		return &verilog.Index{X: lhs.X, Idx: lhs.Idx}
	}
	return &verilog.Index{
		X:   &verilog.Index{X: lhs.X, Idx: lhs.Idx},
		Idx: &verilog.Number{Value: uint64(width - 1), Width: 32},
	}
}

// collectSeqTargets lists register/memory base names written by a
// sequential body, in first-write order.
func collectSeqTargets(s verilog.Stmt, out *[]string) {
	switch st := s.(type) {
	case *verilog.Block:
		for _, sub := range st.Stmts {
			collectSeqTargets(sub, out)
		}
	case *verilog.If:
		collectSeqTargets(st.Then, out)
		if st.Else != nil {
			collectSeqTargets(st.Else, out)
		}
	case *verilog.Case:
		for _, item := range st.Items {
			collectSeqTargets(item.Body, out)
		}
	case *verilog.NonBlocking:
		collectLValueBases(st.LHS, out)
	}
}

func collectLValueBases(e verilog.Expr, out *[]string) {
	switch x := e.(type) {
	case *verilog.Ident:
		appendUnique(out, x.Name)
	case *verilog.Index:
		collectLValueBases(x.X, out)
	case *verilog.RangeSel:
		collectLValueBases(x.X, out)
	case *verilog.Concat:
		for _, p := range x.Parts {
			collectLValueBases(p, out)
		}
	}
}

func appendUnique(out *[]string, name string) {
	for _, n := range *out {
		if n == name {
			return
		}
	}
	*out = append(*out, name)
}

func hasPort(m *verilog.Module, name string) bool {
	for _, p := range m.Ports {
		if p.Name == name {
			return true
		}
	}
	return false
}

func resolveParams(mod *verilog.Module, overrides map[string]uint64) (map[string]uint64, error) {
	params := make(map[string]uint64)
	resolve := func(p *verilog.Param) error {
		if v, ok := overrides[p.Name]; ok && !p.IsLocal {
			params[p.Name] = v
			return nil
		}
		v, err := constEval(p.Value, params)
		if err != nil {
			return fmt.Errorf("scanchain: module %s: parameter %s: %v", mod.Name, p.Name, err)
		}
		params[p.Name] = v
		return nil
	}
	for _, p := range mod.Params {
		if err := resolve(p); err != nil {
			return nil, err
		}
	}
	for _, item := range mod.Items {
		if pi, ok := item.(*verilog.ParamItem); ok {
			if err := resolve(pi.Param); err != nil {
				return nil, err
			}
		}
	}
	return params, nil
}

// constEval folds a constant expression over parameter values.
func constEval(x verilog.Expr, params map[string]uint64) (uint64, error) {
	switch v := x.(type) {
	case *verilog.Number:
		return v.Value, nil
	case *verilog.Ident:
		if p, ok := params[v.Name]; ok {
			return p, nil
		}
		return 0, fmt.Errorf("%q is not a constant", v.Name)
	case *verilog.Unary:
		a, err := constEval(v.X, params)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -a, nil
		case "~":
			return ^a, nil
		}
		return 0, fmt.Errorf("operator %q not constant", v.Op)
	case *verilog.Binary:
		a, err := constEval(v.X, params)
		if err != nil {
			return 0, err
		}
		b, err := constEval(v.Y, params)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return a / b, nil
		case "<<":
			return a << (b & 63), nil
		case ">>":
			return a >> (b & 63), nil
		}
		return 0, fmt.Errorf("operator %q not constant", v.Op)
	}
	return 0, fmt.Errorf("not a constant expression")
}
