package scanchain

import "fmt"

// BitRef identifies where one scan-chain bit lives in the elaborated
// design: bit Bit of register Name, or bit Bit of word Index of memory
// Name. Names are hierarchical, matching rtl/sim naming.
type BitRef struct {
	Name  string
	IsMem bool
	Index uint // memory word
	Bit   uint
}

// Layout reconstructs the full chain bit order of an instrumented
// hierarchy: position 0 is the first bit after scan_in (the LSB of the
// first element), the last position drives scan_out. Registers
// contribute bits LSB to MSB; memories contribute word 0..D-1, each
// LSB to MSB; instances splice in the child module's layout under a
// hierarchical prefix.
func Layout(reports map[string]*Report, top string) ([]BitRef, error) {
	var out []BitRef
	if err := layoutModule(reports, top, "", &out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

func layoutModule(reports map[string]*Report, module, prefix string, out *[]BitRef, depth int) error {
	if depth > 64 {
		return fmt.Errorf("scanchain: layout recursion too deep at %s", module)
	}
	r, ok := reports[module]
	if !ok {
		return fmt.Errorf("scanchain: no report for module %q", module)
	}
	full := func(name string) string {
		if prefix == "" {
			return name
		}
		return prefix + "." + name
	}
	for _, el := range r.Elements {
		switch el.Kind {
		case KindRegister:
			for b := uint(0); b < el.Bits; b++ {
				*out = append(*out, BitRef{Name: full(el.Name), Bit: b})
			}
		case KindMemory:
			for w := uint(0); w < el.Depth; w++ {
				for b := uint(0); b < el.Width; b++ {
					*out = append(*out, BitRef{Name: full(el.Name), IsMem: true, Index: w, Bit: b})
				}
			}
		case KindInstance:
			if err := layoutModule(reports, el.Module, full(el.Name), out, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}
