package scanchain

import (
	"strings"
	"testing"

	"hardsnap/internal/rtl"
	"hardsnap/internal/sim"
	"hardsnap/internal/verilog"
)

const counterSrc = `
module counter (
  input wire clk,
  input wire rst,
  input wire en,
  output reg [7:0] count,
  output reg [3:0] flags
);
  always @(posedge clk) begin
    if (rst) begin
      count <= 0;
      flags <= 0;
    end else if (en) begin
      count <= count + 1;
      flags <= count[3:0];
    end
  end
endmodule
`

func mustParse(t *testing.T, src string) *verilog.SourceFile {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func buildSim(t *testing.T, f *verilog.SourceFile, top string) *sim.Simulator {
	t.Helper()
	d, err := rtl.Elaborate(f, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, verilog.Print(f))
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return s
}

func TestInstrumentAddsPorts(t *testing.T) {
	f := mustParse(t, counterSrc)
	r, err := Instrument(f, "counter", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := f.FindModule("counter")
	var found int
	for _, p := range m.Ports {
		switch p.Name {
		case "scan_enable", "scan_in", "scan_out":
			found++
		}
	}
	if found != 3 {
		t.Fatalf("scan ports: %d", found)
	}
	if r.ChainBits != 12 {
		t.Fatalf("chain bits: %d, want 12", r.ChainBits)
	}
	if len(r.Elements) != 2 {
		t.Fatalf("elements: %+v", r.Elements)
	}
	if r.Overhead() <= 0 {
		t.Fatalf("overhead: %v", r.Overhead())
	}
}

func TestInstrumentedStillParsesAndElaborates(t *testing.T) {
	f := mustParse(t, counterSrc)
	if _, err := Instrument(f, "counter", Options{}); err != nil {
		t.Fatal(err)
	}
	text := verilog.Print(f)
	f2 := mustParse(t, text)
	buildSim(t, f2, "counter")
}

func TestNormalOperationUnaffected(t *testing.T) {
	plain := buildSim(t, mustParse(t, counterSrc), "counter")

	f := mustParse(t, counterSrc)
	if _, err := Instrument(f, "counter", Options{}); err != nil {
		t.Fatal(err)
	}
	inst := buildSim(t, f, "counter")
	inst.SetInput("scan_enable", 0)

	for _, s := range []*sim.Simulator{plain, inst} {
		s.SetInput("rst", 1)
		s.StepCycle()
		s.SetInput("rst", 0)
		s.SetInput("en", 1)
		s.Run(37)
	}
	pv, _ := plain.Peek("count")
	iv, _ := inst.Peek("count")
	if pv != iv || pv != 37 {
		t.Fatalf("plain %d vs instrumented %d", pv, iv)
	}
}

// scanCycle shifts one bit through the chain, returning the bit that
// fell out of scan_out before the clock edge.
func scanCycle(t *testing.T, s *sim.Simulator, in uint64) uint64 {
	t.Helper()
	if err := s.SetInput("scan_in", in); err != nil {
		t.Fatal(err)
	}
	if err := s.EvalComb(); err != nil {
		t.Fatal(err)
	}
	out, err := s.Peek("scan_out")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StepCycle(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScanSaveRestore(t *testing.T) {
	f := mustParse(t, counterSrc)
	r, err := Instrument(f, "counter", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := buildSim(t, f, "counter")

	// Drive to an interesting state.
	s.SetInput("scan_enable", 0)
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)
	s.SetInput("en", 1)
	s.Run(0xA7)
	want := s.Snapshot()

	// Save: shift the whole chain out (state is destroyed).
	s.SetInput("en", 0)
	s.SetInput("scan_enable", 1)
	n := r.ChainBits
	bits := make([]uint64, 0, n)
	for i := uint(0); i < n; i++ {
		bits = append(bits, scanCycle(t, s, 0))
	}
	if v, _ := s.Peek("count"); v != 0 {
		t.Fatalf("state should be flushed after full scan, count=%#x", v)
	}

	// Restore: feed the captured bit stream back in the same order.
	for _, b := range bits {
		scanCycle(t, s, b)
	}
	s.SetInput("scan_enable", 0)
	got := s.Snapshot()
	for name, v := range want.Regs {
		if got.Regs[name] != v {
			t.Fatalf("register %s: got %#x want %#x", name, got.Regs[name], v)
		}
	}

	// And the design keeps running correctly from the restored state.
	s.SetInput("en", 1)
	s.StepCycle()
	if v, _ := s.Peek("count"); v != 0xA8 {
		t.Fatalf("count after resume: %#x", v)
	}
}

const fifoSrc = `
module sfifo (
  input wire clk,
  input wire rst,
  input wire push,
  input wire [7:0] din,
  output wire [7:0] head
);
  reg [7:0] mem [0:7];
  reg [2:0] wptr;
  assign head = mem[0];
  always @(posedge clk) begin
    if (rst)
      wptr <= 0;
    else if (push) begin
      mem[wptr] <= din;
      wptr <= wptr + 1;
    end
  end
endmodule
`

func TestScanThroughMemory(t *testing.T) {
	f := mustParse(t, fifoSrc)
	r, err := Instrument(f, "sfifo", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChainBits != 8*8+3 {
		t.Fatalf("chain bits: %d", r.ChainBits)
	}
	s := buildSim(t, f, "sfifo")
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)
	for i := 0; i < 5; i++ {
		s.SetInput("push", 1)
		s.SetInput("din", uint64(0x30+i))
		s.StepCycle()
	}
	s.SetInput("push", 0)
	want := s.Snapshot()

	s.SetInput("scan_enable", 1)
	bits := make([]uint64, 0, r.ChainBits)
	for i := uint(0); i < r.ChainBits; i++ {
		bits = append(bits, scanCycle(t, s, 0))
	}
	for _, b := range bits {
		scanCycle(t, s, b)
	}
	s.SetInput("scan_enable", 0)
	got := s.Snapshot()
	for name, words := range want.Mems {
		for i, v := range words {
			if got.Mems[name][i] != v {
				t.Fatalf("mem %s[%d]: got %#x want %#x", name, i, got.Mems[name][i], v)
			}
		}
	}
	if got.Regs["wptr"] != want.Regs["wptr"] {
		t.Fatalf("wptr: %#x vs %#x", got.Regs["wptr"], want.Regs["wptr"])
	}
}

const hierSrc = `
module leaf (
  input wire clk,
  input wire [3:0] d,
  input wire we,
  output reg [3:0] q
);
  always @(posedge clk)
    if (we) q <= d;
endmodule

module pair (
  input wire clk,
  input wire [3:0] d,
  input wire we,
  output wire [3:0] q0,
  output wire [3:0] q1
);
  reg [1:0] mode;
  leaf l0 (.clk(clk), .d(d), .we(we), .q(q0));
  leaf l1 (.clk(clk), .d(q0), .we(we), .q(q1));
  always @(posedge clk)
    if (we) mode <= mode + 1;
endmodule
`

func TestHierarchicalDaisyChain(t *testing.T) {
	f := mustParse(t, hierSrc)
	reports, err := InstrumentAll(f, "pair", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reports["leaf"].ChainBits != 4 {
		t.Fatalf("leaf chain: %d", reports["leaf"].ChainBits)
	}
	if reports["pair"].ChainBits != 2 {
		t.Fatalf("pair local chain: %d", reports["pair"].ChainBits)
	}

	s := buildSim(t, f, "pair")
	s.SetInput("we", 1)
	s.SetInput("d", 0x9)
	s.StepCycle()
	s.SetInput("d", 0x6)
	s.StepCycle()
	s.SetInput("we", 0)
	want := s.Snapshot()

	// Total chain = 2 (mode) + 4 + 4 (leaves).
	total := uint(10)
	s.SetInput("scan_enable", 1)
	bits := make([]uint64, 0, total)
	for i := uint(0); i < total; i++ {
		bits = append(bits, scanCycle(t, s, 0))
	}
	for _, b := range bits {
		scanCycle(t, s, b)
	}
	s.SetInput("scan_enable", 0)
	got := s.Snapshot()
	for name, v := range want.Regs {
		if got.Regs[name] != v {
			t.Fatalf("reg %s: got %#x want %#x (all: %+v)", name, got.Regs[name], v, got.Regs)
		}
	}
}

func TestExclusion(t *testing.T) {
	f := mustParse(t, counterSrc)
	r, err := Instrument(f, "counter", Options{Exclude: []string{"flags"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChainBits != 8 {
		t.Fatalf("chain bits with exclusion: %d", r.ChainBits)
	}
}

func TestDoubleInstrumentRejected(t *testing.T) {
	f := mustParse(t, counterSrc)
	if _, err := Instrument(f, "counter", Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(f, "counter", Options{}); err == nil ||
		!strings.Contains(err.Error(), "already instrumented") {
		t.Fatalf("want already-instrumented error, got %v", err)
	}
}

func TestParametricMemoryDepth(t *testing.T) {
	src := `
module regfile #(parameter DEPTH = 4) (
  input wire clk,
  input wire we,
  input wire [7:0] waddr,
  input wire [15:0] wdata,
  output wire [15:0] rdata0
);
  reg [15:0] file [0:DEPTH-1];
  assign rdata0 = file[0];
  always @(posedge clk)
    if (we) file[waddr] <= wdata;
endmodule
`
	f := mustParse(t, src)
	r, err := Instrument(f, "regfile", Options{Params: map[string]uint64{"DEPTH": 16}})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChainBits != 16*16 {
		t.Fatalf("chain bits: %d, want 256", r.ChainBits)
	}
}
