package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/solver"
)

// Options parameterize a distributed run.
type Options struct {
	// Nodes are the worker addresses (host:port). Empty runs the
	// whole campaign locally (the driver is its own node).
	Nodes []string
	// Dial overrides the connection factory (tests inject latency
	// with remote.NewLatencyConn); nil dials plain TCP.
	Dial func(addr string) (net.Conn, error)
	// Independent disables both fabrics: results carry full snapshot
	// state inline and solver verdicts are not relayed. This is the
	// E17 baseline; production runs leave it false.
	Independent bool
	// SlotsPerNode is the number of subtrees a node runs
	// concurrently (0 = the job's worker count).
	SlotsPerNode int
	// Journal / Resume reuse the crash-safe campaign journal: the
	// driver journals every subtree completion exactly like a local
	// parallel run, so a killed driver resumes with LoadCampaign.
	Journal string
	Resume  *core.Campaign
	// NoLocalFallback fails the campaign when every node dies
	// instead of finishing the backlog on the driver.
	NoLocalFallback bool
	// Events receives typed progress events (never blocking).
	Events chan<- campaign.Event
	// ReportDir receives per-bug crash reports.
	ReportDir string
}

func emit(ch chan<- campaign.Event, ev campaign.Event) {
	if ch == nil {
		return
	}
	select {
	case ch <- ev:
	default:
	}
}

// relay is the driver's solver-fabric hub: a deduplicated ledger of
// every verdict discovered anywhere (driver seed phase, local
// fallback subtrees, any node), with a cursor per node recording what
// that node has already been offered. Imports into the driver's own
// cache never re-enter the ledger (solver.Cache.Import does not log),
// so entries cannot echo in cycles.
type relay struct {
	cache *solver.Cache

	mu          sync.Mutex
	seen        map[solver.CacheKey]bool
	log         []solver.WireEntry
	localCursor int
	nodeCursor  map[string]int
}

func newRelay(cache *solver.Cache) *relay {
	return &relay{
		cache:      cache,
		seen:       make(map[solver.CacheKey]bool),
		nodeCursor: make(map[string]int),
	}
}

// pullLocked drains the driver cache's own changelog into the ledger.
func (r *relay) pullLocked() {
	delta, cur := r.cache.DeltaSince(r.localCursor)
	r.localCursor = cur
	for _, e := range delta {
		if !r.seen[e.Key] {
			r.seen[e.Key] = true
			r.log = append(r.log, e)
		}
	}
}

// delta returns the ledger entries node has not been offered yet and
// advances its cursor. Delivery is best-effort: if the carrying
// request fails, the entries are simply not re-sent — the fabric is a
// performance channel, never a correctness dependency.
func (r *relay) delta(node string) []solver.WireEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pullLocked()
	cur := r.nodeCursor[node]
	if cur >= len(r.log) {
		return nil
	}
	out := make([]solver.WireEntry, len(r.log)-cur)
	copy(out, r.log[cur:])
	r.nodeCursor[node] = len(r.log)
	return out
}

// offer ingests verdicts a node discovered: unseen entries join the
// ledger and the driver's own cache (so local fallback work benefits
// too).
func (r *relay) offer(entries []solver.WireEntry) {
	if len(entries) == 0 {
		return
	}
	r.mu.Lock()
	fresh := entries[:0:0]
	for _, e := range entries {
		if !r.seen[e.Key] {
			r.seen[e.Key] = true
			r.log = append(r.log, e)
			fresh = append(fresh, e)
		}
	}
	r.mu.Unlock()
	r.cache.Import(fresh)
}

// driver owns the work queue and the merged fabric state of one
// distributed campaign.
type driver struct {
	ctx    context.Context
	f      *core.Frontier
	log    *core.CampaignLog
	relay  *relay
	shared bool
	events chan<- campaign.Event
	total  int

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []int
	inflight  int
	results   map[int]*core.SubtreeResult
	liveNodes int
	failed    error
	fetched   map[string]*snapshot.Record
	reports   []*core.NodeReport
	nodes     []*node
}

// claim hands out the next subtree index. Local claims (the driver's
// fallback executor) stand aside while any node is alive, so remote
// capacity is used first and the E17 speedup measures the nodes.
func (d *driver) claim(local bool) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.failed != nil || d.ctx.Err() != nil {
			return 0, false
		}
		if len(d.pending) > 0 && (!local || d.liveNodes == 0) {
			idx := d.pending[0]
			d.pending = d.pending[1:]
			d.inflight++
			return idx, true
		}
		if d.inflight == 0 && len(d.pending) == 0 {
			return 0, false
		}
		d.cond.Wait()
	}
}

func (d *driver) complete(res *core.SubtreeResult) error {
	d.mu.Lock()
	d.results[res.Index()] = res
	d.inflight--
	done, total := len(d.results), d.total
	err := d.log.Append(res)
	d.cond.Broadcast()
	d.mu.Unlock()
	emit(d.events, campaign.Event{Kind: campaign.EventProgress, SubtreesDone: done, Subtrees: total})
	return err
}

func (d *driver) requeue(idx int) {
	d.mu.Lock()
	d.pending = append(d.pending, idx)
	d.inflight--
	d.cond.Broadcast()
	d.mu.Unlock()
}

func (d *driver) fail(err error) {
	d.mu.Lock()
	if d.failed == nil {
		d.failed = err
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Run executes the job across opts.Nodes and returns the same result
// a single-machine run of the job would: the merge is the
// deterministic seed-order schedule of width job.Workers, so bugs,
// paths and virtual time are byte-identical regardless of node count
// (core.Fingerprint is the regression gate).
func Run(ctx context.Context, job campaign.Job, opts Options) (*campaign.Result, error) {
	setup, err := job.SetupConfig()
	if err != nil {
		return nil, err
	}
	analysis, err := core.Setup(setup)
	if err != nil {
		return nil, err
	}
	kind := "none"
	if analysis.Target != nil {
		kind = analysis.Target.Kind()
	}
	emit(opts.Events, campaign.Event{Kind: campaign.EventStarted, Target: kind})

	f, err := analysis.Engine.Frontier(ctx)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var (
		clog    *core.CampaignLog
		resumed []*core.SubtreeResult
	)
	if opts.Resume != nil {
		clog, resumed, err = f.ResumeCampaignLog(opts.Resume)
	} else {
		clog, err = f.NewCampaignLog(opts.Journal)
	}
	if err != nil {
		return nil, err
	}
	defer clog.Close()

	if rep := f.Done(); rep != nil {
		// The seed phase finished every path; nothing to distribute.
		return finish(job, analysis, rep, opts)
	}

	d := &driver{
		ctx:     ctx,
		f:       f,
		log:     clog,
		relay:   newRelay(f.SolverCache()),
		shared:  !opts.Independent,
		events:  opts.Events,
		total:   f.NumSeeds(),
		results: make(map[int]*core.SubtreeResult),
		fetched: make(map[string]*snapshot.Record),
	}
	d.cond = sync.NewCond(&d.mu)
	have := make(map[int]bool, len(resumed))
	for _, r := range resumed {
		d.results[r.Index()] = r
		have[r.Index()] = true
	}
	for i := 0; i < f.NumSeeds(); i++ {
		if !have[i] {
			d.pending = append(d.pending, i)
		}
	}

	slots := opts.SlotsPerNode
	if slots <= 0 {
		slots = setup.Engine.Workers
	}
	if slots <= 0 {
		slots = 1
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		}
	}

	// Wake anyone blocked in claim when the context dies.
	stopWake := context.AfterFunc(ctx, func() { d.cond.Broadcast() })
	defer stopWake()

	// Everything before this point — setup, assembly, the driver's own
	// seed phase — is identical however many nodes are attached; the
	// exploration clock covers only the fan-out: node connection
	// through the last subtree result.
	exploreStart := time.Now()

	var wg sync.WaitGroup
	var prepErrs []error
	var prepMu sync.Mutex
	var prepWG sync.WaitGroup
	for _, addr := range opts.Nodes {
		prepWG.Add(1)
		go func(addr string) {
			defer prepWG.Done()
			n, err := d.connectNode(job, addr, dial, opts.Independent)
			if err != nil {
				prepMu.Lock()
				prepErrs = append(prepErrs, err)
				prepMu.Unlock()
				return
			}
			d.mu.Lock()
			d.liveNodes++
			d.reports = append(d.reports, n.report)
			d.nodes = append(d.nodes, n)
			d.mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				n.work(d, slots, dial)
			}()
		}(addr)
	}
	prepWG.Wait()
	if d.liveNodesNow() == 0 && opts.NoLocalFallback {
		return nil, fmt.Errorf("dist: no node reachable and local fallback disabled: %v", errors.Join(prepErrs...))
	}

	localRep := &core.NodeReport{Node: "local"}
	if !opts.NoLocalFallback {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.localWork(localRep)
		}()
	}
	wg.Wait()
	exploreWall := time.Since(exploreStart)

	var statsWG sync.WaitGroup
	for _, n := range d.nodes {
		statsWG.Add(1)
		go func(n *node) {
			defer statsWG.Done()
			n.harvestStats(d, dial)
		}(n)
	}
	statsWG.Wait()

	if err := ctx.Err(); err != nil {
		_ = clog.Sync()
		emit(opts.Events, campaign.Event{Kind: campaign.EventInterrupted})
		return nil, core.ErrInterrupted
	}
	d.mu.Lock()
	ferr := d.failed
	d.mu.Unlock()
	if ferr != nil {
		_ = clog.Sync()
		return nil, ferr
	}

	rs := make([]*core.SubtreeResult, 0, len(d.results))
	for _, r := range d.results {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Index() < rs[j].Index() })
	if len(rs) != d.total {
		return nil, fmt.Errorf("dist: campaign incomplete: %d/%d subtrees", len(rs), d.total)
	}
	if err := clog.Finish(); err != nil {
		return nil, err
	}

	rep := f.Merge(rs)
	if localRep.Subtrees > 0 {
		localRep.SolverCache = f.SolverCache().Stats()
		d.reports = append(d.reports, localRep)
	}
	for _, nr := range d.reports {
		rep.Nodes = append(rep.Nodes, *nr)
	}
	res, err := finish(job, analysis, rep, opts)
	if err != nil {
		return nil, err
	}
	res.ExploreWall = exploreWall
	return res, nil
}

func (d *driver) liveNodesNow() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.liveNodes
}

// localWork is the driver's fallback executor: it claims work only
// while no node is alive (at campaign start with zero configured
// nodes, or after every node died).
func (d *driver) localWork(report *core.NodeReport) {
	for {
		idx, ok := d.claim(true)
		if !ok {
			return
		}
		res, err := d.f.RunSubtree(d.ctx, idx)
		if err != nil {
			if d.ctx.Err() != nil {
				d.requeue(idx)
				return
			}
			d.requeue(idx)
			d.fail(fmt.Errorf("dist: local subtree %d: %w", idx, err))
			return
		}
		report.Subtrees++
		report.Paths += res.PathCount()
		report.VirtualTime += res.VirtualTime()
		if err := d.complete(res); err != nil {
			d.fail(fmt.Errorf("dist: journal: %w", err))
			return
		}
	}
}

func finish(job campaign.Job, analysis *core.Analysis, rep *core.Report, opts Options) (*campaign.Result, error) {
	res := &campaign.Result{
		Fingerprint:     core.Fingerprint(rep),
		JobFingerprint:  job.Fingerprint(),
		Paths:           len(rep.Finished),
		Instructions:    rep.Stats.Instructions,
		SolverQueries:   rep.Solver.Queries,
		VirtualTime:     rep.VirtualTime,
		SeedVirtualTime: rep.SeedVirtualTime,
		Workers:         len(rep.Workers),
		Report:          rep,
	}
	for _, st := range rep.Bugs() {
		bug := campaign.Bug{
			Status: fmt.Sprintf("%v", st.Status),
			PC:     st.PC,
			Steps:  st.Steps,
			Model:  st.Model,
		}
		res.Bugs = append(res.Bugs, bug)
		emit(opts.Events, campaign.Event{Kind: campaign.EventBug, Bug: &bug})
	}
	if opts.ReportDir != "" && len(res.Bugs) > 0 {
		n, err := analysis.WriteCrashReports(opts.ReportDir, rep)
		if err != nil {
			return nil, err
		}
		res.CrashReports = n
	}
	emit(opts.Events, campaign.Event{
		Kind:        campaign.EventCompleted,
		Paths:       res.Paths,
		Bugs:        len(res.Bugs),
		VirtualTime: res.VirtualTime,
		Fingerprint: res.Fingerprint,
	})
	return res, nil
}

// node is the driver's handle on one remote worker.
type node struct {
	addr   string
	token  string
	job    campaign.Job
	shared bool
	report *core.NodeReport
}

// conn is one slot's connection to a node.
type nodeConn struct {
	c   net.Conn
	dec *json.Decoder
	enc *json.Encoder
}

func dialNode(addr string, dial func(string) (net.Conn, error)) (*nodeConn, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &nodeConn{c: c, dec: json.NewDecoder(c), enc: json.NewEncoder(c)}, nil
}

func (nc *nodeConn) roundTrip(req Request) (Response, error) {
	if err := nc.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := nc.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// connectNode dials addr and prepares the campaign, validating that
// the node's independently computed frontier matches the driver's.
func (d *driver) connectNode(job campaign.Job, addr string, dial func(string) (net.Conn, error), independent bool) (*node, error) {
	shipped := job
	shipped.Nodes = nil
	n := &node{
		addr:   addr,
		job:    shipped,
		shared: !independent,
		report: &core.NodeReport{Node: addr},
	}
	nc, err := dialNode(addr, dial)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s: %w", addr, err)
	}
	defer nc.c.Close()
	if err := n.prepare(d, nc); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *node) prepare(d *driver, nc *nodeConn) error {
	id := d.f.ID()
	resp, err := nc.roundTrip(Request{
		Op:       "prepare",
		Job:      &n.job,
		Frontier: &id,
		Shared:   n.shared,
	})
	if err != nil {
		return fmt.Errorf("dist: node %s: prepare: %w", n.addr, err)
	}
	if !resp.OK {
		return fmt.Errorf("dist: node %s: %s", n.addr, resp.Error)
	}
	n.token = resp.Token
	return nil
}

// work runs the node's slot loops until the queue drains or the node
// dies. Node death (connection failure that one redial cannot cure)
// requeues the in-flight subtree and retires the node; the work moves
// to surviving nodes or the driver's local fallback.
func (n *node) work(d *driver, slots int, dial func(string) (net.Conn, error)) {
	var wg sync.WaitGroup
	var once sync.Once
	dead := func() {
		once.Do(func() {
			d.mu.Lock()
			d.liveNodes--
			d.cond.Broadcast()
			d.mu.Unlock()
		})
	}
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.slotLoop(d, dial, dead)
		}()
	}
	wg.Wait()
	dead() // clean exit: the node is done, not dead, but no longer live
}

// harvestStats collects the node-side cache stats for the per-node
// report. Pure bookkeeping, run after the exploration clock stops.
func (n *node) harvestStats(d *driver, dial func(string) (net.Conn, error)) {
	nc, err := dialNode(n.addr, dial)
	if err != nil {
		return
	}
	defer nc.c.Close()
	if resp, err := nc.roundTrip(Request{Op: "stats", Token: n.token}); err == nil && resp.Status != nil {
		d.mu.Lock()
		n.report.SolverCache = resp.Status.Solver
		d.mu.Unlock()
	}
}

func (n *node) slotLoop(d *driver, dial func(string) (net.Conn, error), dead func()) {
	nc, err := dialNode(n.addr, dial)
	if err != nil {
		dead()
		return
	}
	defer func() { nc.c.Close() }()
	for {
		idx, ok := d.claim(false)
		if !ok {
			return
		}
		res, err := n.runSubtree(d, nc, idx)
		if err != nil {
			// One redial may cure a dropped connection; the subtree
			// is pure in its index, so re-running it is safe.
			nc.c.Close()
			nc2, derr := dialNode(n.addr, dial)
			if derr == nil {
				if perr := n.prepare(d, nc2); perr == nil {
					d.mu.Lock()
					n.report.Reconnects++
					d.mu.Unlock()
					nc = nc2
					res, err = n.runSubtree(d, nc, idx)
				} else {
					nc2.c.Close()
					err = perr
				}
			} else {
				err = derr
			}
			if err != nil {
				d.requeue(idx)
				dead()
				return
			}
		}
		d.mu.Lock()
		n.report.Subtrees++
		n.report.Paths += res.PathCount()
		n.report.VirtualTime += res.VirtualTime()
		d.mu.Unlock()
		if err := d.complete(res); err != nil {
			d.fail(fmt.Errorf("dist: journal: %w", err))
			return
		}
	}
}

// runSubtree executes one remote subtree: ship the solver-fabric
// delta, run, ingest the returned verdicts, and re-attach bug
// snapshots (fetched over the digest fabric in shared mode).
func (n *node) runSubtree(d *driver, nc *nodeConn, idx int) (*core.SubtreeResult, error) {
	resp, err := nc.roundTrip(Request{
		Op:      "run",
		Token:   n.token,
		Subtree: idx,
		Solver:  d.relay.delta(n.addr),
	})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("node %s: %s", n.addr, resp.Error)
	}
	res, err := core.DecodeSubtreeResult(resp.Result)
	if err != nil {
		return nil, fmt.Errorf("node %s: corrupt result: %w", n.addr, err)
	}
	d.relay.offer(resp.Solver)
	d.mu.Lock()
	n.report.SnapBytesShipped += resp.SnapBytes
	n.report.SnapBytesFull += resp.SnapBytes
	d.mu.Unlock()
	for _, ref := range resp.Bugs {
		rec, shipped, err := d.fetchRecord(n, nc, ref)
		if err != nil {
			return nil, err
		}
		d.mu.Lock()
		n.report.SnapBytesShipped += shipped
		n.report.SnapBytesFull += ref.Bytes
		d.mu.Unlock()
		res.PutBugSnapshot(ref.State, rec)
	}
	return res, nil
}

// fetchRecord materializes one bug snapshot from the fabric. A digest
// any node already shipped is served from the driver's cache with
// zero wire bytes; otherwise a delta frame crosses (chunks the node
// ledger knows the driver holds arrive as digests and resolve against
// the driver's store), with a full re-fetch as the fallback when the
// driver's store no longer resolves a referenced chunk.
func (d *driver) fetchRecord(n *node, nc *nodeConn, ref BugRef) (*snapshot.Record, uint64, error) {
	d.mu.Lock()
	if rec, ok := d.fetched[ref.Digest]; ok {
		d.mu.Unlock()
		return rec, 0, nil
	}
	d.mu.Unlock()

	var shipped uint64
	fetch := func(full bool) (*snapshot.Record, error) {
		resp, err := nc.roundTrip(Request{Op: "fetch", Token: n.token, Digest: ref.Digest, Full: full})
		if err != nil {
			return nil, err
		}
		if !resp.OK {
			return nil, fmt.Errorf("node %s: %s", n.addr, resp.Error)
		}
		shipped += uint64(len(resp.Data))
		rec, missing, err := snapshot.DecodeDelta(resp.Data, d.f.Store().PeriphByDigest)
		if err != nil {
			return nil, fmt.Errorf("node %s: fetch %s: %w", n.addr, ref.Digest, err)
		}
		if len(missing) > 0 {
			return nil, nil // caller retries full
		}
		return rec, nil
	}
	rec, err := fetch(false)
	if err != nil {
		return nil, shipped, err
	}
	if rec == nil {
		// The node's ledger said we hold a chunk we could not
		// resolve (evicted since): re-fetch with everything inline.
		rec, err = fetch(true)
		if err != nil {
			return nil, shipped, err
		}
		if rec == nil {
			return nil, shipped, fmt.Errorf("node %s: fetch %s: full frame still unresolved", n.addr, ref.Digest)
		}
	}
	// Intern the record so its chunks resolve future delta frames,
	// and pin it in the fetched cache for digest-level dedup.
	d.f.Store().Put(*rec)
	d.mu.Lock()
	d.fetched[ref.Digest] = rec
	d.mu.Unlock()
	return rec, shipped, nil
}
