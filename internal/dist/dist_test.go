package dist

import (
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
	"hardsnap/internal/target"
)

// distFirmware branches on six symbolic bits (64 paths) and aborts on
// every path where the low two bits are set (16 bugs) — enough bug
// snapshots to exercise the snapshot fabric, with a large untouched
// regfile peripheral whose chunks every bug record shares.
const distFirmware = `
_start:
		li r9, 0x40000100  ; regfile: fill every word with a nonzero
		addi r10, r0, 0    ; pattern so its snapshot chunk has real bulk
		li r11, 256
		li r12, 0xA5A50000
fill:
		sw r10, 0(r9)
		add r13, r12, r10
		sw r13, 4(r9)
		addi r10, r10, 1
		bne r10, r11, fill
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		li r8, 0x40000000
		andi r5, r4, 1
		beq r5, r0, b1
		nop
b1:
		andi r5, r4, 2
		beq r5, r0, b2
		nop
b2:
		andi r5, r4, 4
		beq r5, r0, b3
		nop
b3:
		andi r5, r4, 8
		beq r5, r0, b4
		nop
b4:
		andi r5, r4, 16
		beq r5, r0, b5
		nop
b5:
		andi r5, r4, 32
		beq r5, r0, work
		nop
work:
		sw r4, 0(r8)
		lw r6, 0(r8)
		andi r5, r4, 3
		addi r7, r0, 3
		beq r5, r7, bad
		halt
bad:
		abort
`

func distJob(workers int) campaign.Job {
	return campaign.Job{
		Firmware: distFirmware,
		Peripherals: []target.PeriphConfig{
			{Name: "gpio0", Periph: "gpio"},
			// A deep register file the firmware never touches: its
			// chunk is identical across every bug snapshot, so the
			// digest fabric ships it zero times (both sides hold it
			// from the seed phase) while independent mode pays for it
			// in every result.
			{Name: "rf0", Periph: "regfile", Params: map[string]uint64{"DEPTH": 256}},
		},
		Searcher:         "bfs",
		Workers:          workers,
		KeepBugSnapshots: true,
	}
}

// startNodes launches n in-process dist servers on loopback TCP and
// returns their addresses.
func startNodes(t *testing.T, n int) ([]string, []*Server) {
	t.Helper()
	addrs := make([]string, n)
	srvs := make([]*Server, n)
	for i := range addrs {
		srv := NewServer()
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		addrs[i] = addr.String()
		srvs[i] = srv
	}
	return addrs, srvs
}

func runLocal(t *testing.T, job campaign.Job) *campaign.Result {
	t.Helper()
	res, err := campaign.Runner{}.Run(context.Background(), job, campaign.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameOutcome(t *testing.T, want, got *campaign.Result) {
	t.Helper()
	if got.Fingerprint != want.Fingerprint {
		t.Fatalf("fingerprint mismatch:\n  got  %s\n  want %s", got.Fingerprint, want.Fingerprint)
	}
	if got.Paths != want.Paths {
		t.Errorf("paths = %d, want %d", got.Paths, want.Paths)
	}
	if len(got.Bugs) != len(want.Bugs) {
		t.Errorf("bugs = %d, want %d", len(got.Bugs), len(want.Bugs))
	}
	if got.VirtualTime != want.VirtualTime {
		t.Errorf("virtual time = %v, want %v", got.VirtualTime, want.VirtualTime)
	}
}

// TestDistMatchesLocal is the core determinism gate: a 3-node
// distributed run must be byte-identical — bugs, paths, virtual time —
// to the same job run on one machine.
func TestDistMatchesLocal(t *testing.T) {
	job := distJob(4)
	want := runLocal(t, job)

	addrs, _ := startNodes(t, 3)
	got, err := Run(context.Background(), job, Options{Nodes: addrs, SlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, want, got)

	if got.Report == nil || len(got.Report.Nodes) == 0 {
		t.Fatal("no per-node reports in distributed result")
	}
	subtrees, remote := 0, 0
	for _, nr := range got.Report.Nodes {
		subtrees += nr.Subtrees
		if nr.Node != "local" {
			remote += nr.Subtrees
		}
	}
	if remote == 0 {
		t.Error("no subtree ran remotely")
	}
	if subtrees == 0 {
		t.Error("per-node reports carry no subtree counts")
	}
}

// TestDistZeroNodes exercises the local fallback executor: with no
// nodes configured the driver runs the whole campaign itself and still
// matches the single-machine runner.
func TestDistZeroNodes(t *testing.T) {
	job := distJob(2)
	want := runLocal(t, job)
	got, err := Run(context.Background(), job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, want, got)
}

// TestDistSharedFabricSavesBytes runs the same job in shared and
// independent mode and checks that (a) both match the local outcome
// and (b) the digest fabric ships meaningfully fewer snapshot bytes
// than inlining full state in every result.
func TestDistSharedFabricSavesBytes(t *testing.T) {
	job := distJob(2)
	want := runLocal(t, job)

	bytesOf := func(res *campaign.Result) (shipped, full uint64) {
		for _, nr := range res.Report.Nodes {
			shipped += nr.SnapBytesShipped
			full += nr.SnapBytesFull
		}
		return
	}

	addrs, _ := startNodes(t, 2)
	shared, err := Run(context.Background(), job, Options{Nodes: addrs, SlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, want, shared)
	sharedShipped, sharedFull := bytesOf(shared)

	addrs2, _ := startNodes(t, 2)
	indep, err := Run(context.Background(), job, Options{Nodes: addrs2, SlotsPerNode: 2, Independent: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, want, indep)
	indepShipped, _ := bytesOf(indep)

	if sharedShipped == 0 {
		t.Fatal("shared run shipped zero snapshot bytes; expected bug snapshots on the wire")
	}
	if indepShipped == 0 {
		t.Fatal("independent run shipped zero snapshot bytes")
	}
	t.Logf("snapshot bytes: shared=%d (full-equivalent %d), independent=%d",
		sharedShipped, sharedFull, indepShipped)
	if sharedShipped*2 > indepShipped {
		t.Errorf("shared fabric shipped %d bytes, want < half of independent's %d",
			sharedShipped, indepShipped)
	}
}

// TestDistNodeDeath is the node-churn chaos gate: a node killed while
// running a subtree must not perturb the outcome — the driver requeues
// the in-flight index onto survivors and the merged result stays
// fingerprint-identical to an undisturbed single-machine run.
func TestDistNodeDeath(t *testing.T) {
	job := distJob(2)
	want := runLocal(t, job)

	addrs, srvs := startNodes(t, 2)
	victim := srvs[1]
	var once sync.Once
	killed := make(chan struct{})
	victim.testBeforeRun = func(int) {
		once.Do(func() { close(killed) })
		// Give Close a moment to land mid-subtree.
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-killed
		victim.Close()
	}()

	got, err := Run(context.Background(), job, Options{Nodes: addrs, SlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	assertSameOutcome(t, want, got)

	var reconnectsOrDeath bool
	for _, nr := range got.Report.Nodes {
		if nr.Node == addrs[1] && nr.Subtrees < got.Paths {
			reconnectsOrDeath = true
		}
	}
	if !reconnectsOrDeath {
		t.Log("victim completed everything before the kill landed (timing); outcome still verified identical")
	}
}

// TestDistJournalResume kills the driver (context cancel) mid-campaign
// and resumes from the journal: the completed subtrees replay from
// disk, only the remainder re-runs, and the final result is identical
// to an undisturbed run.
func TestDistJournalResume(t *testing.T) {
	job := distJob(2)
	want := runLocal(t, job)
	jpath := filepath.Join(t.TempDir(), "dist.journal")

	addrs, _ := startNodes(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	events := make(chan campaign.Event, 256)
	go func() {
		for ev := range events {
			if ev.Kind == campaign.EventProgress && ev.SubtreesDone >= 4 {
				cancel()
				return
			}
		}
	}()
	_, err := Run(ctx, job, Options{Nodes: addrs, Journal: jpath, Events: events})
	cancel()
	if err == nil {
		t.Skip("campaign finished before the cancel landed; resume path not exercised")
	}
	if err != core.ErrInterrupted {
		t.Fatalf("interrupted run: err = %v, want ErrInterrupted", err)
	}

	cam, err := core.LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if cam.Complete {
		t.Fatal("journal claims complete after an interrupted run")
	}
	if len(cam.Results) == 0 {
		t.Fatal("journal holds no completed subtrees; cancel landed before any finished")
	}

	addrs2, _ := startNodes(t, 2)
	got, err := Run(context.Background(), job, Options{Nodes: addrs2, Resume: cam})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, want, got)

	cam2, err := core.LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !cam2.Complete {
		t.Error("journal not marked complete after resumed run finished")
	}
}

// TestDistFrontierMismatch ensures a node refuses a campaign whose
// frontier it cannot reproduce — the guard against heterogeneous
// binaries silently corrupting a distributed run.
func TestDistFrontierMismatch(t *testing.T) {
	addrs, _ := startNodes(t, 1)
	job := distJob(1)

	setup, err := job.SetupConfig()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := core.Setup(setup)
	if err != nil {
		t.Fatal(err)
	}
	f, err := analysis.Engine.Frontier(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	id := f.ID()
	id.SeedsHash = "deadbeef"

	nc, err := dialNode(addrs[0], func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.c.Close()
	resp, err := nc.roundTrip(Request{Op: "prepare", Job: &job, Frontier: &id, Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("node accepted a mismatched frontier")
	}
}
