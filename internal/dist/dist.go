// Package dist is the distributed exploration driver: it fans the
// fan-out subtrees of one campaign out to N remote nodes, each an
// independent process with its own pre-warmed targets, over two
// shared fabrics — a farm-wide snapshot cache (content digests cross
// the wire, state bytes only when a digest is unknown) and a
// farm-wide memoized solver cache (verdicts discovered anywhere are
// relayed everywhere).
//
// The design rests on the frontier purity property (see
// core/frontier.go): the serial seed phase is a deterministic, cheap
// function of the job, and every subtree result is a pure function of
// its seed index. A node therefore receives the *job*, re-runs the
// seed phase itself, and proves via core.FrontierID — which includes
// the sha256 digests of the seed hardware snapshots — that it holds a
// byte-identical frontier. From then on a subtree handoff is a bare
// index: zero symbolic state and zero snapshot bytes on the wire.
//
// Determinism: the driver merges subtree results with the same
// deterministic seed-order schedule (width core.Config.Workers, NOT
// the node count) a single-machine run uses, so an N-node run's
// bugs, paths and virtual time are byte-identical to a 1-node run's.
// The solver fabric cannot perturb that: verdicts and models are pure
// functions of the canonical path-condition digest, and solver-query
// budgets count cache hits as queries, so relaying entries changes
// only wall-clock effort, never outcomes.
//
// The wire protocol is line-delimited JSON over TCP, one Request per
// Response, same idiom as internal/farm.
package dist

import (
	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/solver"
)

// Request is one driver → node message.
type Request struct {
	// Op selects the operation: prepare | run | fetch | stats |
	// release.
	Op string `json:"op"`
	// Token names a prepared campaign (all ops but prepare).
	Token string `json:"token,omitempty"`
	// Job is the campaign spec (prepare). The driver clears
	// Job.Nodes first: a node must not recursively fan out.
	Job *campaign.Job `json:"job,omitempty"`
	// Frontier is the driver's frontier identity (prepare). The node
	// refuses the campaign unless its own seed phase reproduces it
	// exactly — the proof that a bare subtree index is a complete
	// work description.
	Frontier *core.FrontierID `json:"frontier,omitempty"`
	// Shared selects the shared snapshot fabric (prepare): subtree
	// results detach their bug snapshots and ship content digests;
	// the driver fetches each unique digest once. When false, results
	// carry full state bytes inline (the independent-cache baseline
	// E17 compares against).
	Shared bool `json:"shared,omitempty"`
	// Subtree is the seed index to run (run).
	Subtree int `json:"subtree"`
	// Solver carries the fabric delta the node imports before
	// running (run): entries other nodes discovered since this node
	// last heard from the driver.
	Solver []solver.WireEntry `json:"solver,omitempty"`
	// Digest names a bug snapshot record to fetch, hex (fetch).
	Digest string `json:"digest,omitempty"`
	// Full forces every peripheral chunk inline (fetch): the driver's
	// fallback when it failed to resolve a delta frame because its
	// own store evicted a chunk the node believed it held.
	Full bool `json:"full,omitempty"`
}

// BugRef names one detached bug snapshot in a shared-fabric run
// response: the record travels as a digest, not as state bytes.
type BugRef struct {
	// State is the buggy symbolic state's ID (the bug-snapshot map
	// key the driver re-attaches under).
	State uint64 `json:"state"`
	// Digest is the record's content address, hex.
	Digest string `json:"digest"`
	// Bytes is the full snapshot.Encode size — what shipping this
	// record inline would have cost (the E17 savings baseline).
	Bytes uint64 `json:"bytes"`
}

// NodeStatus is a node's introspection snapshot (stats op).
type NodeStatus struct {
	// Campaigns is the number of prepared campaigns resident.
	Campaigns int `json:"campaigns"`
	// Solver is the campaign's node-side solver cache (Imported =
	// fabric entries adopted, Published = local discoveries offered).
	Solver solver.CacheStats `json:"solver"`
	// Store is the campaign engine's snapshot store, including the
	// retention tier counters.
	Store snapshot.Stats `json:"store"`
}

// Response is one node → driver message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Token echoes (prepare) the campaign token.
	Token string `json:"token,omitempty"`
	// Frontier is the node's own seed-phase outcome (prepare).
	Frontier *core.FrontierID `json:"frontier,omitempty"`
	// Result is the encoded core.SubtreeResult (run). In shared mode
	// its bug snapshots are detached and listed in Bugs instead.
	Result []byte `json:"result,omitempty"`
	// Bugs lists the detached bug snapshots (run, shared mode).
	Bugs []BugRef `json:"bugs,omitempty"`
	// SnapBytes is the bug-snapshot bytes carried inline inside
	// Result (run, independent mode; zero in shared mode).
	SnapBytes uint64 `json:"snap_bytes,omitempty"`
	// Solver carries verdicts this node discovered since its last
	// response, for the driver to relay (run).
	Solver []solver.WireEntry `json:"solver,omitempty"`
	// Data is a snapshot delta frame (fetch): chunks the node already
	// shipped this driver are referenced by digest only.
	Data []byte `json:"data,omitempty"`
	// Status answers the stats op.
	Status *NodeStatus `json:"status,omitempty"`
}
