package dist

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
	"hardsnap/internal/snapshot"
)

// Server is one distributed exploration node: it prepares campaigns
// (re-running the deterministic seed phase from the job), runs
// subtrees by bare index, and serves bug-snapshot content over the
// digest-peering fabric. One Server typically fronts one machine's
// worth of targets; concurrent connections (the driver opens one per
// work slot) share prepared campaigns.
type Server struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	campaigns map[string]*nodeCampaign
	ln        net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	// testBeforeRun, when set, observes every run op before the
	// subtree executes (tests inject node death here).
	testBeforeRun func(subtree int)
}

// nodeCampaign is one prepared frontier plus the node-side fabric
// state: which solver entries the driver has been offered, which bug
// records this node holds, and which peripheral chunks have already
// been shipped (those cross the wire as digests forever after).
type nodeCampaign struct {
	f      *core.Frontier
	shared bool

	mu     sync.Mutex
	cursor int
	bugs   map[string]*snapshot.Record
	sent   map[snapshot.Digest]bool
}

// NewServer returns an idle node.
func NewServer() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		ctx:       ctx,
		cancel:    cancel,
		campaigns: make(map[string]*nodeCampaign),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve accepts driver connections until Close; it returns nil after
// a clean Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr (":0" picks a port) and serves in
// the background, returning the bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln) //nolint:errcheck — Serve only errors after Close
	return ln.Addr(), nil
}

// Close cancels in-flight subtrees, drops connections and releases
// every prepared campaign.
func (s *Server) Close() {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	for tok, c := range s.campaigns {
		c.f.Close()
		delete(s.campaigns, tok)
	}
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				_ = enc.Encode(Response{Error: fmt.Sprintf("bad request: %v", err)})
			}
			return
		}
		if err := enc.Encode(s.handle(req)); err != nil {
			return
		}
	}
}

func (s *Server) handle(req Request) Response {
	switch req.Op {
	case "prepare":
		return s.prepare(req)
	case "run":
		return s.run(req)
	case "fetch":
		return s.fetch(req)
	case "stats":
		return s.stats(req)
	case "release":
		s.mu.Lock()
		if c, ok := s.campaigns[req.Token]; ok {
			c.f.Close()
			delete(s.campaigns, req.Token)
		}
		s.mu.Unlock()
		return Response{OK: true}
	}
	return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

func (s *Server) campaign(token string) (*nodeCampaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[token]
	return c, ok
}

// token names a campaign: the job identity plus the fabric mode (the
// same job in shared and independent mode keeps separate bug/chunk
// ledgers).
func token(job campaign.Job, shared bool) string {
	t := job.Fingerprint()
	if shared {
		t += "+shared"
	}
	return t
}

// prepare re-runs the seed phase for the job and validates the
// resulting frontier against the driver's. Preparing an
// already-resident campaign is idempotent (it just re-validates), so
// every driver connection may prepare before running.
func (s *Server) prepare(req Request) Response {
	if req.Job == nil || req.Frontier == nil {
		return Response{Error: "prepare: missing job or frontier"}
	}
	job := *req.Job
	// A node must not recursively fan out, whatever the driver sent.
	job.Nodes = nil
	tok := token(job, req.Shared)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Response{Error: "prepare: node is shutting down"}
	}
	if c, ok := s.campaigns[tok]; ok {
		id := c.f.ID()
		if !id.Equal(*req.Frontier) {
			return Response{Error: "prepare: frontier mismatch against resident campaign"}
		}
		return Response{OK: true, Token: tok, Frontier: &id}
	}
	setup, err := job.SetupConfig()
	if err != nil {
		return Response{Error: fmt.Sprintf("prepare: %v", err)}
	}
	analysis, err := core.Setup(setup)
	if err != nil {
		return Response{Error: fmt.Sprintf("prepare: %v", err)}
	}
	f, err := analysis.Engine.Frontier(s.ctx)
	if err != nil {
		return Response{Error: fmt.Sprintf("prepare: seed phase: %v", err)}
	}
	id := f.ID()
	if !id.Equal(*req.Frontier) {
		f.Close()
		return Response{Error: fmt.Sprintf(
			"prepare: frontier mismatch (node %d seeds / hash %s, driver %d / %s) — differing binaries or corrupted job",
			id.Seeds, id.SeedsHash, req.Frontier.Seeds, req.Frontier.SeedsHash)}
	}
	c := &nodeCampaign{
		f:      f,
		shared: req.Shared,
		bugs:   make(map[string]*snapshot.Record),
		sent:   make(map[snapshot.Digest]bool),
	}
	// Pre-seed the shipped-chunk ledger with every peripheral chunk
	// reachable from the seed snapshots: the FrontierID proved both
	// sides ran the same seed phase, so the driver's store holds these
	// chunks too — peripheral state a subtree never touched can cross
	// the wire as a digest from the very first fetch. (If the driver
	// has since evicted one, its Full re-fetch fallback recovers.)
	for _, hexd := range id.SeedSnapshots {
		var d snapshot.Digest
		if _, err := hex.Decode(d[:], []byte(hexd)); err != nil {
			continue
		}
		if rec, ok := f.Store().RecordByDigest(d); ok {
			for _, hw := range rec.HW {
				c.sent[snapshot.HWDigest(hw)] = true
			}
		}
	}
	s.campaigns[tok] = c
	return Response{OK: true, Token: tok, Frontier: &id}
}

// run executes one subtree. The request piggybacks the solver-fabric
// delta (imported before execution); the response piggybacks the
// verdicts this node discovered since its previous response and — in
// shared mode — the detached bug snapshots as content digests.
func (s *Server) run(req Request) Response {
	c, ok := s.campaign(req.Token)
	if !ok {
		return Response{Error: fmt.Sprintf("run: unknown campaign %q", req.Token)}
	}
	if s.testBeforeRun != nil {
		s.testBeforeRun(req.Subtree)
	}
	if len(req.Solver) > 0 {
		c.f.SolverCache().Import(req.Solver)
	}
	res, err := c.f.RunSubtree(s.ctx, req.Subtree)
	if err != nil {
		return Response{Error: fmt.Sprintf("run: subtree %d: %v", req.Subtree, err)}
	}
	resp := Response{OK: true}
	snaps := res.TakeBugSnapshots()
	if c.shared {
		for id, rec := range snaps {
			d := snapshot.DigestRecord(rec)
			hexd := fmt.Sprintf("%x", d[:])
			full, err := snapshot.Encode(rec)
			if err != nil {
				return Response{Error: fmt.Sprintf("run: encode bug snapshot: %v", err)}
			}
			c.mu.Lock()
			c.bugs[hexd] = rec
			c.mu.Unlock()
			resp.Bugs = append(resp.Bugs, BugRef{State: id, Digest: hexd, Bytes: uint64(len(full))})
		}
		sort.Slice(resp.Bugs, func(i, j int) bool { return resp.Bugs[i].State < resp.Bugs[j].State })
	} else {
		for id, rec := range snaps {
			full, err := snapshot.Encode(rec)
			if err != nil {
				return Response{Error: fmt.Sprintf("run: encode bug snapshot: %v", err)}
			}
			resp.SnapBytes += uint64(len(full))
			res.PutBugSnapshot(id, rec)
		}
	}
	data, err := res.Encode()
	if err != nil {
		return Response{Error: fmt.Sprintf("run: encode result: %v", err)}
	}
	resp.Result = data
	c.mu.Lock()
	resp.Solver, c.cursor = c.f.SolverCache().DeltaSince(c.cursor)
	c.mu.Unlock()
	return resp
}

// fetch serves one bug record over the digest-peering fabric:
// peripheral chunks already shipped to this driver are referenced by
// digest, everything else travels inline (and is then marked
// shipped). Full fetches bypass the ledger — the driver's recovery
// path when its own store no longer resolves a referenced digest.
func (s *Server) fetch(req Request) Response {
	c, ok := s.campaign(req.Token)
	if !ok {
		return Response{Error: fmt.Sprintf("fetch: unknown campaign %q", req.Token)}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.bugs[req.Digest]
	if !ok {
		return Response{Error: fmt.Sprintf("fetch: unknown digest %s", req.Digest)}
	}
	var have func(snapshot.Digest) bool
	if !req.Full {
		have = func(d snapshot.Digest) bool { return c.sent[d] }
	}
	frame, _, _, err := snapshot.EncodeDelta(rec, have)
	if err != nil {
		return Response{Error: fmt.Sprintf("fetch: %v", err)}
	}
	for _, hw := range rec.HW {
		c.sent[snapshot.HWDigest(hw)] = true
	}
	return Response{OK: true, Data: frame}
}

func (s *Server) stats(req Request) Response {
	s.mu.Lock()
	n := len(s.campaigns)
	c := s.campaigns[req.Token]
	s.mu.Unlock()
	st := &NodeStatus{Campaigns: n}
	if c != nil {
		st.Solver = c.f.SolverCache().Stats()
		st.Store = c.f.Store().Stats()
	}
	return Response{OK: true, Status: st}
}
