package core

import (
	"testing"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// TestSnapshotManagerSkipsIdleSwitches: with round-robin scheduling,
// many context switches happen while the scheduled-out path has not
// touched hardware since its last sync. The generation check must turn
// those into zero-cost skips instead of full save/restore traffic.
func TestSnapshotManagerSkipsIdleSwitches(t *testing.T) {
	_, rep := run(t, SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:            ModeHardSnap,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 100000,
		},
	})
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("run incomplete: %+v", rep.Stats)
	}
	m := rep.Snapshots.Manager
	if m.SavesSkipped == 0 && m.RestoresSkipped == 0 {
		t.Fatalf("no context switches skipped: %+v", m)
	}
	// Skips must be real savings: fewer hardware operations than
	// manager-level requests.
	if rep.Snapshots.HWSaves >= m.Saves+m.SavesSkipped &&
		m.SavesSkipped > 0 {
		t.Fatalf("skipped saves still reached hardware: hw=%d mgr=%+v",
			rep.Snapshots.HWSaves, m)
	}
}

// TestSnapshotManagerForkDedups: a fork duplicates the parent's
// hardware snapshot reference. The content-addressed store must serve
// that as a refcount bump on one shared entry, never a second copy.
func TestSnapshotManagerForkDedups(t *testing.T) {
	a, rep := run(t, SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:            ModeHardSnap,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 100000,
		},
	})
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatal("run incomplete")
	}
	ss := rep.Snapshots.Store
	if ss.DedupHits == 0 {
		t.Fatalf("no dedup hits across fork/sync: %+v", ss)
	}
	if live := a.Engine.Snapshots().Live(); live != 0 {
		t.Fatalf("leaked %d snapshots", live)
	}
}

// TestSnapshotTrafficReportedOnlyWithHardware: software-only runs must
// leave the traffic section zeroed rather than invented.
func TestSnapshotTrafficReportedOnlyWithHardware(t *testing.T) {
	_, rep := run(t, SetupConfig{Firmware: "_start:\n halt"})
	if rep.Snapshots.Manager.Saves != 0 || rep.Snapshots.BytesMoved != 0 {
		t.Fatalf("software-only run reported snapshot traffic: %+v", rep.Snapshots)
	}
}
