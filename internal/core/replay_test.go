package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hardsnap/internal/snapshot"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vm"
)

func TestReplayReproducesBug(t *testing.T) {
	a, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 2
		addi r3, r0, 5
		ecall 1
		lbu r4, 0(r1)
		lbu r5, 1(r1)
		add r6, r4, r5
		addi r7, r0, 300
		bne r6, r7, safe
		abort              ; crash iff byte0 + byte1 == 300
safe:
		halt
		`,
	})
	bugs := rep.Bugs()
	if len(bugs) != 1 {
		t.Fatalf("bugs: %d", len(bugs))
	}
	res, err := a.Replay(bugs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("bug not reproduced: concrete stop %v at %#x (vector %v)",
			res.Stop, res.PC, res.Vector)
	}
	if res.Stop != vm.StopAbort {
		t.Fatalf("stop %v", res.Stop)
	}
	in := res.Vector[5]
	if len(in) != 2 || uint32(in[0])+uint32(in[1]) != 300 {
		t.Fatalf("vector does not satisfy the crash condition: %v", in)
	}
}

func TestReplayAllPathsWithHardware(t *testing.T) {
	// Every finished path of a hardware-coupled analysis must replay
	// concretely to the same outcome.
	a, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r8, 0x40000000
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 3
		sw r4, 0(r8)       ; drive GPIO with input-derived value
		lw r5, 0(r8)
		addi r6, r0, 3
		bne r5, r6, other
		abort              ; "crash" when input & 3 == 3
other:
		halt
		`,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Exec:        symexec.Config{Policy: symexec.ConcretizeAll},
		Engine:      Config{MaxInstructions: 100000},
	})
	if len(rep.Finished) < 2 {
		t.Fatalf("paths: %d", len(rep.Finished))
	}
	for _, st := range rep.Finished {
		if st.Status != symexec.StatusHalted && st.Status != symexec.StatusAborted {
			continue
		}
		res, err := a.Replay(st)
		if err != nil {
			t.Fatalf("replay state %d: %v", st.ID, err)
		}
		if !res.Reproduced {
			t.Fatalf("state %d (%v) not reproduced: concrete %v at %#x",
				st.ID, st.Status, res.Stop, res.PC)
		}
	}
}

func TestReplayConsoleMatches(t *testing.T) {
	a, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 0x7F
		; print 'A' + (input & 1)
		andi r5, r4, 1
		addi r5, r5, 65
		mv r1, r5
		ecall 3
		halt
		`,
	})
	for _, st := range rep.Finished {
		if st.Status != symexec.StatusHalted {
			continue
		}
		res, err := a.Replay(st)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Console, st.Console) {
			t.Fatalf("console mismatch: symbolic %q concrete %q", st.Console, res.Console)
		}
	}
}

func TestTestVectorAliasedTags(t *testing.T) {
	// Re-registering a tag aliases the same symbolic input; the
	// vector must still satisfy the path.
	a, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 7
		ecall 1
		li r1, 0x200
		addi r2, r0, 1
		addi r3, r0, 7
		ecall 1            ; same tag: same input byte
		lbu r4, 0x100(r0)
		lbu r5, 0x200(r0)
		bne r4, r5, bad
		halt
bad:
		abort
		`,
	})
	// The aliased bytes are equal by construction, so the abort path
	// is infeasible.
	if got := rep.CountStatus(symexec.StatusAborted); got != 0 {
		t.Fatalf("aliased inputs diverged: %d aborts", got)
	}
	for _, st := range rep.Finished {
		if st.Status == symexec.StatusHalted {
			if _, ok := a.Exec.TestVector(st); !ok {
				t.Fatal("vector extraction failed")
			}
		}
	}
}

func TestWriteCrashReports(t *testing.T) {
	a, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r8, 0x40000000
		li r5, 0x77
		sw r5, 0(r8)
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 4
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 9
		bne r4, r5, ok
		abort
ok:
		halt
		`,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine:      Config{KeepBugSnapshots: true, MaxInstructions: 100000},
	})
	bugs := rep.Bugs()
	if len(bugs) != 1 {
		t.Fatalf("bugs: %d", len(bugs))
	}
	dir := t.TempDir()
	n, err := a.WriteCrashReports(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reports written: %d", n)
	}
	sub := filepath.Join(dir, fmt.Sprintf("bug-%d", bugs[0].ID))

	report, err := os.ReadFile(filepath.Join(sub, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "status: aborted") ||
		!strings.Contains(string(report), "sym4_0 = 0x9") {
		t.Fatalf("report content:\n%s", report)
	}

	vec, err := os.ReadFile(filepath.Join(sub, "vector-4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0] != 9 {
		t.Fatalf("vector: %v", vec)
	}

	// The retained hardware snapshot decodes and contains the value
	// the firmware programmed before crashing.
	data, err := os.ReadFile(filepath.Join(sub, "hardware.snap"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.HW["gpio0"].Regs["out"] != 0x77 {
		t.Fatalf("hardware snapshot: %v", rec.HW["gpio0"].Regs)
	}

	// And the vector replays to the same crash.
	res, err := a.ReplayVector(bugs[0], map[uint32][]byte{4: vec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("replay from report artifacts failed: %v", res.Stop)
	}
}
