package core

import (
	"sort"
	"testing"
	"time"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// fpgaRun executes the consistency firmware on an FPGA-backed engine,
// letting the caller arm faults on the target before the run starts.
func fpgaRun(t *testing.T, mode Mode, arm func(*Analysis)) (*Analysis, *Report) {
	t.Helper()
	a, err := Setup(SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		FPGA:        true,
		Engine: Config{
			Mode:            mode,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 100000,
		},
	})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	if arm != nil {
		arm(a)
	}
	rep, err := a.Engine.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return a, rep
}

func bugPCs(rep *Report) []uint32 {
	var pcs []uint32
	for _, b := range rep.Bugs() {
		pcs = append(pcs, b.PC)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

func TestFaultyLinkSameFindings(t *testing.T) {
	// Baseline: clean FPGA link.
	_, clean := fpgaRun(t, ModeHardSnap, nil)
	if n := len(clean.Bugs()); n != 0 {
		t.Fatalf("clean baseline has %d bugs", n)
	}
	if clean.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("clean baseline paths: %+v", clean.Stats)
	}

	// Same analysis over a lossy, jittery link: the retry layer must
	// absorb every fault and the findings must not change.
	fa, faulty := fpgaRun(t, ModeHardSnap, func(a *Analysis) {
		a.Target.InjectFaults(target.FaultSchedule{
			Seed:          7,
			DropRate:      0.15,
			CorruptRate:   0.05,
			LatencyJitter: 5 * time.Microsecond,
		})
	})
	if n := len(faulty.Bugs()); n != 0 {
		t.Fatalf("faulty link changed the findings: %d bugs", n)
	}
	if faulty.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("faulty run paths: %+v", faulty.Stats)
	}
	st := fa.Target.Stats()
	if st.Retries == 0 || st.FaultsInjected == 0 {
		t.Fatalf("schedule injected nothing: %+v", st)
	}
	// Every retry is caused by an injected fault: the retry count is
	// bounded by the fault count, never a runaway loop.
	if st.Retries > st.FaultsInjected {
		t.Fatalf("retries %d exceed injected faults %d", st.Retries, st.FaultsInjected)
	}
	// Lost frames cost virtual time (timeouts, backoff), they never
	// come for free.
	if faulty.VirtualTime <= clean.VirtualTime {
		t.Fatalf("faulty run (%v) should be slower than clean (%v)",
			faulty.VirtualTime, clean.VirtualTime)
	}
}

func TestFaultyLinkSameBugReports(t *testing.T) {
	// Naive-shared mode genuinely produces findings (cross-path
	// corruption); a faulty link must reproduce the exact same ones.
	_, clean := fpgaRun(t, ModeNaiveShared, nil)
	cleanPCs := bugPCs(clean)
	if len(cleanPCs) == 0 {
		t.Fatal("naive-shared baseline should report bugs")
	}
	_, faulty := fpgaRun(t, ModeNaiveShared, func(a *Analysis) {
		a.Target.InjectFaults(target.FaultSchedule{
			Seed:        11,
			DropRate:    0.2,
			CorruptRate: 0.05,
		})
	})
	faultyPCs := bugPCs(faulty)
	if len(cleanPCs) != len(faultyPCs) {
		t.Fatalf("bug count diverged: clean %v, faulty %v", cleanPCs, faultyPCs)
	}
	for i := range cleanPCs {
		if cleanPCs[i] != faultyPCs[i] {
			t.Fatalf("bug PCs diverged: clean %v, faulty %v", cleanPCs, faultyPCs)
		}
	}
}

func TestFailoverMidRun(t *testing.T) {
	fa, rep := fpgaRun(t, ModeHardSnap, func(a *Analysis) {
		sb, err := target.NewSimulator("standby", a.Clock, []target.PeriphConfig{
			{Name: "gpio0", Periph: "gpio"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Target.SetStandby(sb); err != nil {
			t.Fatal(err)
		}
		// The FPGA link dies for good 20 transactions into the run:
		// the analysis must migrate to the simulator and finish.
		a.Target.InjectFaults(target.FaultSchedule{Seed: 3, FailAfter: 20})
	})
	st := fa.Target.Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers %d, want 1", st.Failovers)
	}
	if fa.Target.Kind() != target.KindSimulator {
		t.Fatalf("kind after failover %q", fa.Target.Kind())
	}
	if n := len(rep.Bugs()); n != 0 {
		t.Fatalf("failover changed the findings: %d bugs", n)
	}
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("paths after failover: %+v", rep.Stats)
	}
}

func TestCorruptedSnapshotRejected(t *testing.T) {
	a, err := Setup(SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := a.Target.Save()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := target.EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in transit: the restore path must reject
	// the snapshot with an integrity error, not apply garbage.
	blob[len(blob)-1] ^= 0x10
	if _, err := target.DecodeState(blob); !target.IsIntegrity(err) {
		t.Fatalf("corrupted snapshot decode: %v, want integrity error", err)
	}
	bad := st.Clone()
	bad["gpio0"].Regs["phantom_register"] = 1
	if err := a.Target.Restore(bad); !target.IsIntegrity(err) {
		t.Fatalf("mismatched snapshot restore: %v, want integrity error", err)
	}
}
