package core

import (
	"fmt"

	"hardsnap/internal/bus"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
)

// SnapshotManager is the copy-on-write seam between the engine's
// context switches and the hardware: it pairs the content-addressed
// snapshot store with the target's mutation generation so the
// expensive operations — FPGA scan-out/scan-in, CRIU freeze+copy and
// their virtual-time charges — only happen when the hardware actually
// changed.
//
// Three mechanisms stack:
//
//  1. generation skip: the manager remembers the digest of the state
//     currently living on the hardware and the target generation at
//     which it was accurate. While the generation has not moved, a
//     save of the live state is a refcount operation and a restore of
//     the same content is a no-op — zero link traffic, zero vtime;
//  2. content dedup: saves that do reach the store collapse to
//     existing entries when the state is byte-identical (fork =
//     refcount++), with per-peripheral structural sharing below that;
//  3. delta restore: when restoring the exact record the target's
//     dirty tracking is anchored on, only the elements touched since
//     that anchor are written back, at the incremental cost
//     (simulator target only; scan chains and readback always move
//     the whole fabric).
type SnapshotManager struct {
	store  *snapshot.Store
	tgt    target.Interface
	router *bus.Router

	// live tracks what the hardware currently holds: the digest of
	// the last state saved from or restored to it, valid while the
	// target generation still equals liveGen.
	liveValid  bool
	liveDigest snapshot.Digest
	liveGen    uint64

	// anchor tracks the record the target's dirty tracking is
	// relative to (last Save/Restore), identified by content digest
	// and the target's anchor sequence number; a delta restore is
	// sound only against this exact record.
	anchorValid  bool
	anchorDigest snapshot.Digest
	anchorSeq    uint64

	stats SnapManagerStats
}

// SnapManagerStats counts how context-switch traffic was served.
type SnapManagerStats struct {
	// Saves / Restores are operations that reached the hardware
	// (Restores includes DeltaRestores).
	Saves    uint64
	Restores uint64
	// SavesSkipped / RestoresSkipped were proven redundant by the
	// mutation generation and served without touching the hardware.
	SavesSkipped    uint64
	RestoresSkipped uint64
	// DeltaRestores were served by the dirty-only incremental path.
	DeltaRestores uint64
}

// NewSnapshotManager builds a manager over the given store, target
// and interrupt router. The target may be remote: generation-proven
// skips and digest checks run entirely client-side against the
// piggybacked counters, and delta restores negotiate only the dirty
// peripheral chunks over the wire.
func NewSnapshotManager(store *snapshot.Store, tgt target.Interface, router *bus.Router) *SnapshotManager {
	return &SnapshotManager{store: store, tgt: tgt, router: router}
}

// Store exposes the underlying snapshot store (diagnostics).
func (m *SnapshotManager) Store() *snapshot.Store { return m.store }

// Forget drops the manager's belief about what the hardware currently
// holds and what the dirty tracking is anchored on. The next restore
// is a full one and the next save a full scan-out. The parallel
// engine calls this at every subtree boundary so a subtree's snapshot
// traffic — and therefore its virtual time — is a pure function of
// the subtree itself, never of which subtrees happened to run on the
// same rig before it (claim order is racy; reported time must not be).
func (m *SnapshotManager) Forget() {
	m.liveValid = false
	m.anchorValid = false
}

// Stats returns a copy of the manager's counters.
func (m *SnapshotManager) Stats() SnapManagerStats { return m.stats }

// liveCurrent reports whether the hardware is still bit-identical to
// the state recorded in liveDigest.
func (m *SnapshotManager) liveCurrent() bool {
	return m.liveValid && m.tgt.Generation() == m.liveGen
}

func (m *SnapshotManager) setLive(d snapshot.Digest) {
	m.liveValid = true
	m.liveDigest = d
	m.liveGen = m.tgt.Generation()
}

func (m *SnapshotManager) setAnchor(d snapshot.Digest) {
	m.anchorValid = true
	m.anchorDigest = d
	m.anchorSeq = m.tgt.AnchorSeq()
}

// snapLive performs a full hardware save and wraps it in a record.
func (m *SnapshotManager) snapLive() (snapshot.Record, error) {
	hw, err := m.tgt.Save()
	if err != nil {
		return snapshot.Record{}, err
	}
	m.stats.Saves++
	return snapshot.Record{HW: hw, IRQEdges: m.router.IRQEdgeState()}, nil
}

// Capture stores the live hardware state under a new ID (fork, or the
// first save of a state). If the hardware has not mutated since the
// last save/restore, no scan-out or state copy happens at all: the
// new ID adopts the already-stored content for a refcount increment.
func (m *SnapshotManager) Capture() (snapshot.ID, error) {
	if m.liveCurrent() {
		if id, ok := m.store.Adopt(m.liveDigest); ok {
			m.stats.SavesSkipped++
			return id, nil
		}
	}
	rec, err := m.snapLive()
	if err != nil {
		return 0, err
	}
	id := m.store.Put(rec)
	d, _ := m.store.DigestOf(id)
	m.setLive(d)
	m.setAnchor(d)
	return id, nil
}

// Sync makes the snapshot slot id hold the live hardware state
// (UpdateState of Algorithm 1), allocating a slot when id is 0. When
// the hardware is untouched since the slot was last synced the call
// is free; when it is untouched but the slot holds other content, the
// slot is re-pointed at the live content without touching the
// hardware. The (possibly new) slot ID is returned.
func (m *SnapshotManager) Sync(id snapshot.ID) (snapshot.ID, error) {
	if id == 0 {
		return m.Capture()
	}
	if m.liveCurrent() {
		if d, ok := m.store.DigestOf(id); ok && d == m.liveDigest {
			m.stats.SavesSkipped++
			return id, nil
		}
		if m.store.UpdateToDigest(id, m.liveDigest) {
			m.stats.SavesSkipped++
			return id, nil
		}
	}
	rec, err := m.snapLive()
	if err != nil {
		return 0, err
	}
	if err := m.store.Update(id, rec); err != nil {
		return 0, err
	}
	d, _ := m.store.DigestOf(id)
	m.setLive(d)
	m.setAnchor(d)
	return id, nil
}

// Restore loads snapshot id into the hardware (RestoreState of
// Algorithm 1). Restore(0) is a no-op: 0 is the "no snapshot"
// sentinel of the initial state, which keeps the power-on hardware.
// A restore of the content already living on untouched hardware is
// skipped entirely; a restore of the record the target's dirty
// tracking is anchored on goes through the incremental path.
func (m *SnapshotManager) Restore(id snapshot.ID) error {
	if id == 0 {
		return nil
	}
	d, ok := m.store.DigestOf(id)
	if !ok {
		return fmt.Errorf("core: restore of missing snapshot %d", id)
	}
	if m.liveCurrent() && d == m.liveDigest {
		// The hardware still holds exactly this content; the router's
		// edge detectors are stable too (IRQ levels derive from the
		// unchanged hardware state and the edge levels are part of
		// the digest).
		m.stats.RestoresSkipped++
		return nil
	}
	rec, ok := m.store.Get(id)
	if !ok {
		return fmt.Errorf("core: restore of missing snapshot %d", id)
	}
	restored := false
	if m.anchorValid && d == m.anchorDigest && m.tgt.AnchorSeq() == m.anchorSeq {
		// Restoring the exact record the dirty tracking is anchored
		// on: only elements touched since then need writing back.
		did, err := m.tgt.RestoreDelta(rec.HW)
		if err != nil {
			return err
		}
		if did {
			m.stats.DeltaRestores++
			restored = true
		}
	}
	if !restored {
		if err := m.tgt.Restore(rec.HW); err != nil {
			return err
		}
	}
	m.stats.Restores++
	m.router.ResetIRQEdges(rec.IRQEdges)
	m.setLive(d)
	m.setAnchor(d)
	return nil
}

// Release drops one snapshot reference.
func (m *SnapshotManager) Release(id snapshot.ID) { m.store.Release(id) }

// LiveRecord returns a record of the current hardware state without
// allocating a store ID (crash reports). When the hardware is
// untouched since the last save/restore and that content is still
// stored, the canonical record is returned with no hardware traffic.
func (m *SnapshotManager) LiveRecord() (*snapshot.Record, error) {
	if m.liveCurrent() {
		if rec, ok := m.store.RecordByDigest(m.liveDigest); ok {
			m.stats.SavesSkipped++
			return rec, nil
		}
	}
	rec, err := m.snapLive()
	if err != nil {
		return nil, err
	}
	d := snapshot.DigestRecord(&rec)
	m.setLive(d)
	m.setAnchor(d)
	return &rec, nil
}
