// Parallel exploration: sharded workers with per-worker hardware
// targets and a shared solver cache.
//
// A run with Config.Workers = N > 1 proceeds in three phases:
//
//  1. Seed. The serial loop of Algorithm 1 runs on the primary target
//     under the global Searcher until the active set reaches the
//     fan-out width (a few subtrees per worker, for load balance) or
//     the tree drains first (in which case the result IS the serial
//     result). This single-goroutine phase is the only place the
//     global Searcher's Select is ever called, per its contract.
//  2. Fan-out. Each surviving active state becomes a subtree seed.
//     Every worker owns a spawned clone of the primary target (same
//     power-on state, derived fault streams), its own bus router and
//     SnapshotManager, and pulls seed indexes from a shared queue —
//     work stealing: fast workers drain more subtrees. Per subtree,
//     the worker builds a private engine around a spawned executor
//     (shared concurrency-safe term Builder, shared memoized solver
//     cache, private Solver, collision-free state-ID stripe) and a
//     forked searcher, then runs the ordinary serial loop to
//     completion. Hardware snapshots live in the one shared
//     content-addressed store, so identical states forked by
//     different workers still dedup structurally.
//  3. Merge. Results are merged in seed order (not completion
//     order), so reports are deterministic. Virtual time is
//     seed-phase time plus the makespan of a greedy deterministic
//     schedule of subtree times onto N virtual workers — the time an
//     N-target rack takes, independent of the racy physical claim
//     order. Per-worker traffic columns come from the same schedule.
//
// Determinism contract: for a fixed seed and a run that completes
// within budget, an N-worker run produces the same bug set, path
// count and per-path verdicts as the 1-worker run, in all four modes.
// Two footnotes, both inherent rather than implementation choices:
// ModeNaiveShared has no consistency story by design (it is the
// paper's failure baseline); here every subtree starts from the
// fan-out live hardware state, which makes parallel naive-shared runs
// deterministic, but their divergence from the serial interleaving is
// exactly the inconsistency the mode demonstrates. And when the
// instruction budget binds, each subtree gets the remaining budget
// independently, so a parallel run can retire more total instructions
// than a serial one before stopping.
package core

import (
	"fmt"
	"sync"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// subtreeIDStride separates the state-ID ranges of sibling subtrees:
// subtree i allocates IDs from seedMax + (i+1)*stride. 2^32 states
// per subtree is far above any reachable budget.
const subtreeIDStride = uint64(1) << 32

// seedsPerWorker controls the fan-out width: more subtrees than
// workers so work stealing can balance uneven subtree sizes.
const seedsPerWorker = 4

func seedFanout(workers, maxStates int) int {
	f := workers * seedsPerWorker
	if f > maxStates {
		f = maxStates
	}
	if f < workers {
		f = workers
	}
	return f
}

// subtreeResult is what one completed subtree contributes to the
// merge, with traffic counters already turned into per-subtree deltas.
type subtreeResult struct {
	rep      *Report
	vt       time.Duration
	tgt      target.Stats
	man      SnapManagerStats
	bugSnaps map[uint64]*snapshot.Record
}

func subTargetStats(after, before target.Stats) target.Stats {
	return target.Stats{
		Cycles:         after.Cycles - before.Cycles,
		IOOps:          after.IOOps - before.IOOps,
		Snapshots:      after.Snapshots - before.Snapshots,
		Restores:       after.Restores - before.Restores,
		SnapshotTime:   after.SnapshotTime - before.SnapshotTime,
		SnapshotBytes:  after.SnapshotBytes - before.SnapshotBytes,
		DeltaRestores:  after.DeltaRestores - before.DeltaRestores,
		Retries:        after.Retries - before.Retries,
		FaultsInjected: after.FaultsInjected - before.FaultsInjected,
	}
}

func subManStats(after, before SnapManagerStats) SnapManagerStats {
	return SnapManagerStats{
		Saves:           after.Saves - before.Saves,
		Restores:        after.Restores - before.Restores,
		SavesSkipped:    after.SavesSkipped - before.SavesSkipped,
		RestoresSkipped: after.RestoresSkipped - before.RestoresSkipped,
		DeltaRestores:   after.DeltaRestores - before.DeltaRestores,
	}
}

func addTargetStats(dst *target.Stats, s target.Stats) {
	dst.Cycles += s.Cycles
	dst.IOOps += s.IOOps
	dst.Snapshots += s.Snapshots
	dst.Restores += s.Restores
	dst.SnapshotTime += s.SnapshotTime
	dst.SnapshotBytes += s.SnapshotBytes
	dst.DeltaRestores += s.DeltaRestores
	dst.Retries += s.Retries
	dst.FaultsInjected += s.FaultsInjected
}

func addStats(dst *Stats, s Stats) {
	dst.Instructions += s.Instructions
	dst.ContextSwitches += s.ContextSwitches
	dst.Reboots += s.Reboots
	dst.PathsCompleted += s.PathsCompleted
	dst.ReplayedInstructions += s.ReplayedInstructions
	dst.ReplayedIO += s.ReplayedIO
	dst.ReplayDivergences += s.ReplayDivergences
	dst.HWViolations += s.HWViolations
}

// runParallel is the Workers > 1 entry point (dispatched from Run).
func (e *Engine) runParallel() (*Report, error) {
	workers := e.cfg.Workers
	start := e.clock.Now()
	e.initActive()

	fanout := seedFanout(workers, e.cfg.MaxStates)
	if err := e.loop(func() bool { return len(e.active) >= fanout }); err != nil {
		return nil, err
	}
	if len(e.active) == 0 || e.stats.Instructions >= e.cfg.MaxInstructions {
		// The tree drained (or the budget died) before the fan-out
		// width was reached: the serial result is the result.
		return e.finalize(start), nil
	}

	// Make every seed self-contained. The live hardware still belongs
	// to the last-scheduled state; in snapshotting modes its slot must
	// be synced before anyone else restores over the hardware.
	if e.tgt != nil && e.previous != nil &&
		(e.cfg.Mode == ModeHardSnap || e.cfg.Mode == ModeNaiveReboot) {
		if err := e.saveCurrent(e.previous); err != nil {
			return nil, fmt.Errorf("core: fan-out sync: %w", err)
		}
	}
	// Naive-shared has no per-state snapshots: capture the live state
	// once (an honest one-time transfer charge) and seed every worker
	// clone with it.
	var liveHW target.State
	var liveEdges []bool
	if e.tgt != nil && e.cfg.Mode == ModeNaiveShared {
		var err error
		liveHW, err = e.tgt.Save()
		if err != nil {
			return nil, fmt.Errorf("core: fan-out save: %w", err)
		}
		liveEdges = e.router.IRQEdgeState()
	}

	seeds := e.active
	e.active = nil
	e.previous = nil
	remaining := e.cfg.MaxInstructions - e.stats.Instructions
	seedMaxID := e.exec.NextID()
	seedVT := e.clock.Now() - start

	// Fan out: a feeder pushes seed indexes in order, workers steal.
	results := make([]*subtreeResult, len(seeds))
	idxCh := make(chan int)
	done := make(chan struct{})
	var abortOnce sync.Once
	abort := func() { abortOnce.Do(func() { close(done) }) }
	go func() {
		defer close(idxCh)
		for i := range seeds {
			select {
			case idxCh <- i:
			case <-done:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := e.runWorker(w, seeds, seedMaxID, remaining, liveHW, liveEdges, idxCh, done, results); err != nil {
				errs[w] = err
				abort()
			}
		}(w)
	}
	wg.Wait()
	abort()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return e.merge(start, seedVT, workers, results), nil
}

// runWorker owns one worker's spawned target (clone of the primary:
// same power-on state, derived fault stream) and drains subtree seeds
// from the queue until it closes or a sibling aborts.
func (e *Engine) runWorker(w int, seeds []*symexec.State, seedMaxID, budget uint64,
	liveHW target.State, liveEdges []bool,
	idxCh <-chan int, done <-chan struct{}, results []*subtreeResult) error {
	var (
		wtgt    target.Interface
		wrouter *bus.Router
		wsnaps  *SnapshotManager
	)
	if e.tgt != nil {
		clock := &vtime.Clock{}
		var err error
		wtgt, err = e.tgt.SpawnWorker(fmt.Sprintf("%s-w%d", e.tgt.Name(), w), clock, w)
		if err != nil {
			return fmt.Errorf("core: worker %d: %w", w, err)
		}
		regions := e.router.Regions()
		for i := range regions {
			port, err := wtgt.Port(regions[i].Name)
			if err != nil {
				return fmt.Errorf("core: worker %d: %w", w, err)
			}
			regions[i].Port = port
		}
		wrouter, err = bus.NewRouter(regions)
		if err != nil {
			return fmt.Errorf("core: worker %d: %w", w, err)
		}
		// One manager per worker, shared across its subtrees, so
		// generation-proven skips survive subtree boundaries.
		wsnaps = NewSnapshotManager(e.snaps, wtgt, wrouter)
	}
	for {
		select {
		case <-done:
			return nil
		case idx, ok := <-idxCh:
			if !ok {
				return nil
			}
			res, err := e.runSubtree(idx, seeds[idx], seedMaxID, budget, wtgt, wrouter, wsnaps, liveHW, liveEdges)
			if err != nil {
				return fmt.Errorf("core: worker %d, subtree %d: %w", w, idx, err)
			}
			results[idx] = res
		}
	}
}

// runSubtree explores one fan-out seed to completion on the worker's
// private hardware and returns its contribution as deltas. Everything
// that shapes the outcome is derived from the subtree index — forked
// searcher stream, state-ID stripe, fault PRNG stream — never from
// the physical worker or claim order, so a subtree's result is a pure
// function of the seed and the run is schedule-independent.
func (e *Engine) runSubtree(idx int, seed *symexec.State, seedMaxID, budget uint64,
	wtgt target.Interface, wrouter *bus.Router, wsnaps *SnapshotManager,
	liveHW target.State, liveEdges []bool) (*subtreeResult, error) {
	wcfg := e.cfg
	wcfg.Workers = 1
	wcfg.MaxInstructions = budget
	wcfg.Searcher = symexec.ForkSearcher(e.cfg.Searcher, int64(idx))
	wexec := e.exec.Spawn(seedMaxID + uint64(idx+1)*subtreeIDStride)

	if wtgt != nil {
		// Re-arm fault injection with a per-subtree stream so fault
		// sequences do not depend on which worker claimed the subtree.
		if sched, ok := e.tgt.FaultSchedule(); ok {
			wtgt.InjectFaults(sched.Derive(idx))
		}
	}

	weng, err := newEngine(wcfg, wexec, wtgt, wrouter, e.snaps, wsnaps)
	if err != nil {
		return nil, err
	}
	if e.cfg.Mode == ModeRecordReplay && e.tgt != nil {
		weng.seedIOLog(seed.ID, e.ioLogs[seed.ID])
	}
	if e.cfg.Mode == ModeNaiveShared && wtgt != nil {
		// Every subtree starts from the fan-out live state, mimicking
		// "everyone shares the hardware as of the fork".
		if err := wtgt.AdoptState(liveHW); err != nil {
			return nil, err
		}
		wrouter.ResetIRQEdges(liveEdges)
	}
	weng.SetInitialState(seed)

	var beforeTgt target.Stats
	var beforeMan SnapManagerStats
	if wtgt != nil {
		beforeTgt = wtgt.Stats()
		beforeMan = wsnaps.Stats()
	}
	rep, err := weng.Run()
	if err != nil {
		return nil, err
	}
	res := &subtreeResult{rep: rep, vt: rep.VirtualTime, bugSnaps: weng.bugSnaps}
	if wtgt != nil {
		res.tgt = subTargetStats(wtgt.Stats(), beforeTgt)
		res.man = subManStats(wsnaps.Stats(), beforeMan)
	}
	return res, nil
}

// merge combines the seed-phase prefix with every subtree result, in
// seed order, and prices the run with a deterministic greedy schedule
// (longest-prefix list scheduling: each subtree goes to the currently
// least-loaded virtual worker, ties to the lowest index).
func (e *Engine) merge(start, seedVT time.Duration, workers int, results []*subtreeResult) *Report {
	rep := &Report{
		Finished:        append([]*symexec.State(nil), e.finished...),
		Stats:           e.stats,
		SeedVirtualTime: seedVT,
		// Seed phase ran on the primary executor; subtree executors are
		// spawned fresh, so their report stats are pure deltas.
		Exec:   e.exec.Stats,
		Solver: e.exec.Solver.Stats,
	}
	wreps := make([]WorkerReport, workers)
	loads := make([]time.Duration, workers)
	for i := range wreps {
		wreps[i].Worker = i
	}
	var manSum SnapManagerStats
	var tgtSum target.Stats
	for _, res := range results {
		if res == nil {
			continue
		}
		best := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		loads[best] += res.vt
		wr := &wreps[best]
		wr.Subtrees++
		wr.Paths += len(res.rep.Finished)
		wr.VirtualTime += res.vt
		wr.HWSaves += res.tgt.Snapshots
		wr.HWRestores += res.tgt.Restores
		wr.DeltaRestores += res.tgt.DeltaRestores
		wr.BytesMoved += res.tgt.SnapshotBytes
		wr.SnapshotTime += res.tgt.SnapshotTime

		rep.Finished = append(rep.Finished, res.rep.Finished...)
		addStats(&rep.Stats, res.rep.Stats)
		rep.Exec.Add(res.rep.Exec)
		rep.Solver.Add(res.rep.Solver)
		manSum.Saves += res.man.Saves
		manSum.Restores += res.man.Restores
		manSum.SavesSkipped += res.man.SavesSkipped
		manSum.RestoresSkipped += res.man.RestoresSkipped
		manSum.DeltaRestores += res.man.DeltaRestores
		addTargetStats(&tgtSum, res.tgt)
		for id, snap := range res.bugSnaps {
			if e.bugSnaps == nil {
				e.bugSnaps = make(map[uint64]*snapshot.Record)
			}
			e.bugSnaps[id] = snap
		}
	}
	makespan := time.Duration(0)
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	rep.VirtualTime = seedVT + makespan
	rep.Workers = wreps

	if e.tgt != nil {
		ts := e.tgt.Stats() // primary target: seed-phase traffic
		man := e.snapman.Stats()
		rep.Snapshots = SnapshotTraffic{
			Manager: SnapManagerStats{
				Saves:           man.Saves + manSum.Saves,
				Restores:        man.Restores + manSum.Restores,
				SavesSkipped:    man.SavesSkipped + manSum.SavesSkipped,
				RestoresSkipped: man.RestoresSkipped + manSum.RestoresSkipped,
				DeltaRestores:   man.DeltaRestores + manSum.DeltaRestores,
			},
			Store:         e.snaps.Stats(),
			HWSaves:       ts.Snapshots + tgtSum.Snapshots,
			HWRestores:    ts.Restores + tgtSum.Restores,
			DeltaRestores: ts.DeltaRestores + tgtSum.DeltaRestores,
			BytesMoved:    ts.SnapshotBytes + tgtSum.SnapshotBytes,
			SnapshotTime:  ts.SnapshotTime + tgtSum.SnapshotTime,
		}
	}
	if e.exec.Solver.Cache != nil {
		rep.SolverCache = e.exec.Solver.Cache.Stats()
	}
	e.finished = rep.Finished
	return rep
}
