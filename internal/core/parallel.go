// Parallel exploration: sharded workers with per-worker hardware
// targets, a shared solver cache, and a supervisor that makes the
// whole thing crash-safe.
//
// A run with Config.Workers = N > 1 proceeds in three phases:
//
//  1. Seed. The serial loop of Algorithm 1 runs on the primary target
//     under the global Searcher until the active set reaches the
//     fan-out width (a few subtrees per worker, for load balance) or
//     the tree drains first (in which case the result IS the serial
//     result). This single-goroutine phase is the only place the
//     global Searcher's Select is ever called, per its contract.
//  2. Fan-out. Each surviving active state becomes a subtree seed.
//     Every worker owns a spawned clone of the primary target (same
//     power-on state, derived fault streams), its own bus router and
//     SnapshotManager, and pulls seed indexes from a shared queue —
//     work stealing: fast workers drain more subtrees. Per subtree,
//     the worker builds a private engine around a spawned executor
//     (shared concurrency-safe term Builder, shared memoized solver
//     cache, private Solver, collision-free state-ID stripe) and a
//     forked searcher, then runs the ordinary serial loop to
//     completion. Hardware snapshots live in the one shared
//     content-addressed store, so identical states forked by
//     different workers still dedup structurally.
//  3. Merge. Results are merged in seed order (not completion
//     order), so reports are deterministic. Virtual time is
//     seed-phase time plus the makespan of a greedy deterministic
//     schedule of subtree times onto N virtual workers — the time an
//     N-target rack takes, independent of the racy physical claim
//     order. Per-worker traffic columns come from the same schedule.
//
// The fan-out runs under a supervisor (see supervisor below): worker
// panics are recovered, stalled workers are deposed by a heartbeat
// monitor, in-flight subtrees are requeued and absorbed by surviving
// workers or by bounded-backoff replacement workers re-seeded from
// the content-addressed snapshot store, and — when journaling is
// enabled — every completed subtree is appended to the campaign
// journal so a killed process can resume. Because every subtree
// result is a pure function of its seed index, recovery replays are
// byte-identical to first attempts, and a chaos-ridden run merges to
// exactly the undisturbed report.
//
// Determinism contract: for a fixed seed and a run that completes
// within budget, an N-worker run produces the same bug set, path
// count and per-path verdicts as the 1-worker run, in all four modes.
// Two footnotes, both inherent rather than implementation choices:
// ModeNaiveShared has no consistency story by design (it is the
// paper's failure baseline); here every subtree starts from the
// fan-out live hardware state, which makes parallel naive-shared runs
// deterministic, but their divergence from the serial interleaving is
// exactly the inconsistency the mode demonstrates. And when the
// instruction budget binds, each subtree gets the remaining budget
// independently, so a parallel run can retire more total instructions
// than a serial one before stopping.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/journal"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// subtreeIDStride separates the state-ID ranges of sibling subtrees:
// subtree i allocates IDs from seedMax + (i+1)*stride. 2^32 states
// per subtree is far above any reachable budget.
const subtreeIDStride = uint64(1) << 32

// seedsPerWorker controls the fan-out width: more subtrees than
// workers so work stealing can balance uneven subtree sizes.
const seedsPerWorker = 4

func seedFanout(override, workers, maxStates int) int {
	f := workers * seedsPerWorker
	if override > 0 {
		f = override
	}
	if f > maxStates {
		f = maxStates
	}
	if f < workers {
		f = workers
	}
	return f
}

// subtreeResult is what one completed subtree contributes to the
// merge, with traffic counters already turned into per-subtree deltas.
type subtreeResult struct {
	rep      *Report
	vt       time.Duration
	tgt      target.Stats
	man      SnapManagerStats
	bugSnaps map[uint64]*snapshot.Record
}

func subTargetStats(after, before target.Stats) target.Stats {
	return target.Stats{
		Cycles:         after.Cycles - before.Cycles,
		IOOps:          after.IOOps - before.IOOps,
		Snapshots:      after.Snapshots - before.Snapshots,
		Restores:       after.Restores - before.Restores,
		SnapshotTime:   after.SnapshotTime - before.SnapshotTime,
		SnapshotBytes:  after.SnapshotBytes - before.SnapshotBytes,
		DeltaRestores:  after.DeltaRestores - before.DeltaRestores,
		Retries:        after.Retries - before.Retries,
		FaultsInjected: after.FaultsInjected - before.FaultsInjected,
	}
}

func subManStats(after, before SnapManagerStats) SnapManagerStats {
	return SnapManagerStats{
		Saves:           after.Saves - before.Saves,
		Restores:        after.Restores - before.Restores,
		SavesSkipped:    after.SavesSkipped - before.SavesSkipped,
		RestoresSkipped: after.RestoresSkipped - before.RestoresSkipped,
		DeltaRestores:   after.DeltaRestores - before.DeltaRestores,
	}
}

func addTargetStats(dst *target.Stats, s target.Stats) {
	dst.Cycles += s.Cycles
	dst.IOOps += s.IOOps
	dst.Snapshots += s.Snapshots
	dst.Restores += s.Restores
	dst.SnapshotTime += s.SnapshotTime
	dst.SnapshotBytes += s.SnapshotBytes
	dst.DeltaRestores += s.DeltaRestores
	dst.Retries += s.Retries
	dst.FaultsInjected += s.FaultsInjected
}

func addStats(dst *Stats, s Stats) {
	dst.Instructions += s.Instructions
	dst.ContextSwitches += s.ContextSwitches
	dst.Reboots += s.Reboots
	dst.PathsCompleted += s.PathsCompleted
	dst.ReplayedInstructions += s.ReplayedInstructions
	dst.ReplayedIO += s.ReplayedIO
	dst.ReplayDivergences += s.ReplayDivergences
	dst.HWViolations += s.HWViolations
}

// runParallel is the Workers > 1 entry point (dispatched from Run).
// The seed phase and per-subtree execution live in frontier.go — the
// same seams the distributed driver (internal/dist) uses — and this
// function is the local composition: frontier + supervisor + merge.
func (e *Engine) runParallel(ctx context.Context) (*Report, error) {
	f, err := e.Frontier(ctx)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if f.done != nil {
		// The tree drained (or the budget died) before the fan-out
		// width was reached: the serial result is the result.
		if err := e.journalSerialDrain(); err != nil {
			return nil, err
		}
		return f.done, nil
	}

	sup, err := e.newSupervisor(ctx, f)
	if err != nil {
		return nil, err
	}
	if err := sup.run(); err != nil {
		return nil, err
	}
	rep := e.merge(f.start, f.seedVT, e.cfg.Workers, sup.results)
	rep.Recovery = sup.recovery()
	return rep, nil
}

// journalSerialDrain records a campaign that finished inside the seed
// phase: the journal still gets a header and a completion record, so
// a resume attempt reports "already complete" instead of confusion.
func (e *Engine) journalSerialDrain() error {
	if e.cfg.JournalPath == "" || e.cfg.Resume != nil {
		return nil
	}
	jw, err := journal.Create(e.cfg.JournalPath)
	if err != nil {
		return err
	}
	defer jw.Close()
	hdr, err := gobEncode(campaignHeader{
		Fingerprint: e.cfg.runFingerprint(),
		Workers:     e.cfg.Workers,
	})
	if err != nil {
		return err
	}
	if err := jw.Append(recCampaign, hdr); err != nil {
		return err
	}
	return jw.Append(recComplete, nil)
}

// errDeposed marks a worker cancelled by the heartbeat monitor while
// the campaign is still live (as opposed to a whole-run shutdown).
var errDeposed = errors.New("core: worker deposed by heartbeat monitor")

// workerRig is one worker's private execution vehicle: a spawned
// target clone, its bus router and its snapshot manager over the
// shared store. A rig that saw its worker fail is never reused —
// replacement workers build a fresh one and re-seed from the
// content-addressed snapshots.
type workerRig struct {
	tgt    target.Interface
	router *bus.Router
	snaps  *SnapshotManager
}

// buildRig spawns the rig for one worker slot. stream derives the
// target's fault-injection stream (per-subtree re-arming in
// runSubtree keeps results claim-order independent regardless).
func (e *Engine) buildRig(name string, stream int) (*workerRig, error) {
	if e.tgt == nil {
		return &workerRig{}, nil
	}
	clock := &vtime.Clock{}
	wtgt, err := e.tgt.SpawnWorker(name, clock, stream)
	if err != nil {
		return nil, fmt.Errorf("core: spawn %s: %w", name, err)
	}
	regions := e.router.Regions()
	for i := range regions {
		port, err := wtgt.Port(regions[i].Name)
		if err != nil {
			return nil, fmt.Errorf("core: spawn %s: %w", name, err)
		}
		regions[i].Port = port
	}
	wrouter, err := bus.NewRouter(regions)
	if err != nil {
		return nil, fmt.Errorf("core: spawn %s: %w", name, err)
	}
	// One manager per rig, shared across its subtrees, so
	// generation-proven skips survive subtree boundaries.
	return &workerRig{tgt: wtgt, router: wrouter, snaps: NewSnapshotManager(e.snaps, wtgt, wrouter)}, nil
}

// workerSlot is the supervisor's handle on one worker position. The
// cancel/beat pair belongs to the slot's *current* generation; a
// replacement re-registers, so a deposed zombie's late heartbeats are
// no longer watched.
type workerSlot struct {
	cancel func()
	beat   *atomic.Uint64
	busy   bool
}

// supervisor owns the fan-out: the work queue, first-wins completion
// tracking, requeue and replacement policy, the heartbeat monitor and
// the campaign journal. All mutable campaign state is guarded by mu;
// heartbeats are lock-free atomics (they fire every engine step).
type supervisor struct {
	e      *Engine
	f      *Frontier
	ctx    context.Context
	cancel context.CancelFunc
	seeds  []*symexec.State

	work     chan int      // pending subtree indexes (cap = len(seeds))
	workDone chan struct{} // closed when every subtree has completed
	monStop  chan struct{}

	mu             sync.Mutex
	results        []*subtreeResult
	completed      []bool
	attempts       []int
	remaining      int
	freshCompleted int // completions by this process (chaos die gate)
	restarts       int
	liveWorkers    int
	fatal          error
	interrupted    bool
	rec            RecoveryStats
	jw             *journal.Writer
	sinceCompact   int
	sinceSync      int
	slots          []*workerSlot

	wg    sync.WaitGroup
	monWG sync.WaitGroup
}

func (e *Engine) newSupervisor(ctx context.Context, f *Frontier) (*supervisor, error) {
	seeds := f.seeds
	sctx, cancel := context.WithCancel(ctx)
	s := &supervisor{
		e: e, f: f, ctx: sctx, cancel: cancel,
		seeds:     seeds,
		work:      make(chan int, len(seeds)),
		workDone:  make(chan struct{}),
		monStop:   make(chan struct{}),
		results:   make([]*subtreeResult, len(seeds)),
		completed: make([]bool, len(seeds)),
		attempts:  make([]int, len(seeds)),
		remaining: len(seeds),
		slots:     make([]*workerSlot, e.cfg.Workers),
	}
	for i := range s.slots {
		s.slots[i] = &workerSlot{}
	}

	header := f.hdr
	switch {
	case e.cfg.Resume != nil:
		cam := e.cfg.Resume
		if err := cam.validate(header); err != nil {
			cancel()
			return nil, err
		}
		for idx, res := range cam.Results {
			if idx < 0 || idx >= len(seeds) || s.completed[idx] {
				continue
			}
			s.results[idx] = res
			s.completed[idx] = true
			s.remaining--
			s.rec.ResumedSubtrees++
		}
		// Keep appending to the same journal: the campaign's history
		// stays in one file across any number of resumes.
		jw, _, err := journal.AppendTo(cam.Path)
		if err != nil {
			cancel()
			return nil, err
		}
		s.jw = jw
	case e.cfg.JournalPath != "":
		jw, err := journal.Create(e.cfg.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		s.jw = jw
		hdr, err := gobEncode(header)
		if err == nil {
			err = jw.Append(recCampaign, hdr)
		}
		if err == nil {
			err = s.appendFrontierLocked()
		}
		if err == nil {
			err = jw.Sync()
		}
		if err != nil {
			jw.Close()
			cancel()
			return nil, err
		}
	}
	return s, nil
}

// run drives the fan-out to completion (or to interruption/failure)
// and leaves the journal in the state the outcome deserves: complete
// record on success, synced partial history otherwise.
func (s *supervisor) run() error {
	defer s.cancel()
	defer s.closeJournal()
	// Attempts run on adopted snapshot references; the seeds' original
	// references are dropped by Frontier.Close once no attempt can
	// start anymore (runParallel defers it past this return).
	if s.remaining == 0 {
		close(s.workDone)
		return s.finishJournal()
	}
	for idx := range s.seeds {
		if !s.completed[idx] {
			s.work <- idx
		}
	}
	s.mu.Lock()
	s.liveWorkers = s.e.cfg.Workers
	s.mu.Unlock()
	for w := 0; w < s.e.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.workerMain(w, 0, time.Time{})
	}
	if s.e.cfg.HeartbeatInterval > 0 {
		s.monWG.Add(1)
		go s.monitor()
	}
	s.wg.Wait()
	close(s.monStop)
	s.monWG.Wait()

	s.mu.Lock()
	fatal, interrupted := s.fatal, s.interrupted
	s.mu.Unlock()
	if fatal != nil {
		return fatal
	}
	if interrupted || s.ctx.Err() != nil {
		if s.jw != nil {
			s.jw.Sync()
		}
		return ErrInterrupted
	}
	return s.finishJournal()
}

// recovery snapshots the recovery counters (after run returns).
func (s *supervisor) recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.rec
	if s.jw != nil {
		st := s.jw.Stats()
		rec.JournalRecords = st.Records
		rec.JournalBytes = st.Bytes
	}
	return rec
}

func (s *supervisor) finishJournal() error {
	if s.jw == nil {
		return nil
	}
	jstart := time.Now()
	defer func() {
		s.mu.Lock()
		s.rec.JournalWall += time.Since(jstart)
		s.mu.Unlock()
	}()
	if err := s.jw.Append(recComplete, nil); err != nil {
		return err
	}
	return s.jw.Sync()
}

func (s *supervisor) closeJournal() {
	if s.jw != nil {
		s.jw.Close()
	}
}

// workerMain is one worker generation: register in the slot, build a
// rig, drain subtrees, and hand the exit to the supervisor (which
// decides whether a replacement is due).
func (s *supervisor) workerMain(slot, gen int, since time.Time) {
	defer s.wg.Done()
	wctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	beat := new(atomic.Uint64)
	s.mu.Lock()
	s.slots[slot].cancel = cancel
	s.slots[slot].beat = beat
	s.slots[slot].busy = false
	s.mu.Unlock()
	err := s.workerLoop(slot, gen, wctx, beat, since)
	s.workerExited(slot, err)
}

func (s *supervisor) workerLoop(slot, gen int, wctx context.Context, beat *atomic.Uint64, since time.Time) error {
	name := ""
	if s.e.tgt != nil {
		name = fmt.Sprintf("%s-w%d", s.e.tgt.Name(), slot)
		if gen > 0 {
			name = fmt.Sprintf("%s-r%d", name, gen)
		}
	}
	s.f.spawnMu.Lock()
	rig, err := s.e.buildRig(name, slot)
	s.f.spawnMu.Unlock()
	if err != nil {
		return err
	}
	if !since.IsZero() {
		// Replacement worker: backoff + rig rebuild is the recovery
		// latency E14 measures.
		s.mu.Lock()
		s.rec.RecoveryWall += time.Since(since)
		s.mu.Unlock()
	}
	for {
		select {
		case <-wctx.Done():
			if s.ctx.Err() != nil {
				return nil // whole-run shutdown
			}
			return errDeposed
		case <-s.workDone:
			return nil
		case idx := <-s.work:
			attempt, ok := s.claim(slot, idx)
			if !ok {
				continue // completed by a zombie while queued
			}
			res, rerr := s.runGuarded(wctx, idx, attempt, rig, beat)
			s.setBusy(slot, false)
			if rerr == nil {
				s.complete(idx, attempt, res)
				continue
			}
			if s.ctx.Err() != nil {
				return nil // shutdown mid-subtree: leave it pending
			}
			// Requeue the subtree for someone with a clean rig, then
			// retire: this rig saw a failure mid-exploration and its
			// hardware state cannot be trusted.
			s.requeue(idx, rerr)
			return rerr
		}
	}
}

// claim marks the slot busy on idx and returns the attempt number
// (false if the subtree was already completed by a zombie worker).
func (s *supervisor) claim(slot, idx int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.completed[idx] {
		return 0, false
	}
	s.slots[slot].busy = true
	return s.attempts[idx], true
}

func (s *supervisor) setBusy(slot int, busy bool) {
	s.mu.Lock()
	s.slots[slot].busy = busy
	s.mu.Unlock()
}

// panicError wraps a recovered worker panic so requeue can count it.
type panicError struct{ err error }

func (p panicError) Error() string { return p.err.Error() }
func (p panicError) Unwrap() error { return p.err }

// runGuarded runs one subtree attempt with panic recovery: a panic
// anywhere in the engine, executor or target stack becomes an
// ordinary requeue-and-retire failure instead of killing the process.
func (s *supervisor) runGuarded(wctx context.Context, idx, attempt int, rig *workerRig, beat *atomic.Uint64) (res *subtreeResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, panicError{fmt.Errorf("core: subtree %d: panic: %v", idx, p)}
		}
	}()
	res, err = s.runSubtree(wctx, idx, attempt, rig, beat)
	return
}

// complete records a finished subtree, first-wins: a deposed zombie
// and its replacement may both finish the same subtree (their results
// are identical by the purity contract), and only the first recording
// counts. Journals the result, tracks the chaos die gate, and closes
// the campaign when the last subtree lands.
func (s *supervisor) complete(idx, attempt int, res *subtreeResult) {
	s.mu.Lock()
	if s.completed[idx] {
		s.mu.Unlock()
		return
	}
	s.completed[idx] = true
	s.results[idx] = res
	s.remaining--
	s.freshCompleted++
	if attempt > 0 {
		// The subtree's original rig failed; this completion happened
		// on a fresh one re-seeded from the shared snapshot store.
		s.rec.FailoverEvents++
	}
	if s.jw != nil {
		jstart := time.Now()
		err := s.appendSubtreeLocked(idx, res)
		s.rec.JournalWall += time.Since(jstart)
		if err != nil && s.fatal == nil {
			s.fatal = fmt.Errorf("core: campaign journal: %w", err)
			s.mu.Unlock()
			s.cancel()
			return
		}
	}
	chaos := s.e.cfg.Chaos
	die := chaos != nil && chaos.DieAfterSubtrees > 0 &&
		s.freshCompleted == chaos.DieAfterSubtrees && s.remaining > 0
	if die {
		s.interrupted = true
	}
	done := s.remaining == 0
	doneCount := len(s.seeds) - s.remaining
	s.mu.Unlock()
	if p := s.e.cfg.Progress; p != nil {
		p(ProgressEvent{SubtreesDone: doneCount, Subtrees: len(s.seeds)})
	}
	if die {
		s.cancel()
	}
	if done {
		close(s.workDone)
	}
}

// appendSubtreeLocked journals one completed subtree plus a fresh
// frontier record. Completions are group-committed: the journal is
// fsynced every syncEvery completions (and at the campaign's end and
// on interruption), so a hard crash re-explores at most the last few
// subtrees — re-exploration is deterministic, so the resumed result
// is identical either way. Every compactEvery completions the journal
// is compacted: superseded frontier records are dropped in an atomic
// rewrite.
func (s *supervisor) appendSubtreeLocked(idx int, res *subtreeResult) error {
	rec, err := newSubtreeRec(idx, res)
	if err != nil {
		return err
	}
	payload, err := gobEncode(rec)
	if err != nil {
		return err
	}
	if err := s.jw.Append(recSubtree, payload); err != nil {
		return err
	}
	if err := s.appendFrontierLocked(); err != nil {
		return err
	}
	if s.sinceSync++; s.sinceSync >= s.e.cfg.journalSyncEvery() || s.remaining == 0 {
		s.sinceSync = 0
		if err := s.jw.Sync(); err != nil {
			return err
		}
	}
	if s.sinceCompact++; s.sinceCompact >= s.e.cfg.journalCompactEvery() {
		s.sinceCompact = 0
		return s.jw.Compact(func(rs []journal.Record) []journal.Record {
			kept := rs[:0]
			for _, r := range rs {
				if r.Kind != recFrontier {
					kept = append(kept, r)
				}
			}
			if fp, err := gobEncode(frontierRec{Pending: s.pendingLocked()}); err == nil {
				kept = append(kept, journal.Record{Kind: recFrontier, Payload: fp})
			}
			return kept
		})
	}
	return nil
}

func (s *supervisor) pendingLocked() []int {
	var pending []int
	for idx := range s.seeds {
		if !s.completed[idx] {
			pending = append(pending, idx)
		}
	}
	return pending
}

func (s *supervisor) appendFrontierLocked() error {
	fp, err := gobEncode(frontierRec{Pending: s.pendingLocked()})
	if err != nil {
		return err
	}
	return s.jw.Append(recFrontier, fp)
}

// requeue returns a failed subtree to the queue (bounded attempts),
// counting the failure mode. The work channel's capacity is the seed
// count and an index is queued at most once at a time, so the send
// never blocks.
func (s *supervisor) requeue(idx int, err error) {
	s.mu.Lock()
	if s.completed[idx] || s.fatal != nil {
		s.mu.Unlock()
		return
	}
	s.attempts[idx]++
	s.rec.Requeues++
	var pe panicError
	if errors.As(err, &pe) {
		s.rec.PanicsRecovered++
	}
	if s.attempts[idx] > s.e.cfg.MaxSubtreeRetries {
		s.fatal = fmt.Errorf("core: subtree %d failed after %d attempts: %w", idx, s.attempts[idx], err)
		s.mu.Unlock()
		s.cancel()
		return
	}
	s.mu.Unlock()
	s.work <- idx
}

// workerExited decides what a worker's death means for the campaign:
// clean exits (drained queue, shutdown) pass; failures spawn a
// bounded-backoff replacement while the restart budget lasts; past
// the budget the survivors absorb the queue, and if none remain the
// campaign fails.
func (s *supervisor) workerExited(slot int, err error) {
	s.mu.Lock()
	s.liveWorkers--
	if err == nil || s.fatal != nil || s.interrupted || s.ctx.Err() != nil {
		s.mu.Unlock()
		return
	}
	if s.restarts >= s.e.cfg.MaxWorkerRestarts {
		if s.liveWorkers == 0 && s.remaining > 0 {
			s.fatal = fmt.Errorf("core: worker restart budget exhausted (%d): %w", s.restarts, err)
			s.mu.Unlock()
			s.cancel()
			return
		}
		s.mu.Unlock()
		return
	}
	s.restarts++
	gen := s.restarts
	s.rec.WorkerRestarts++
	s.liveWorkers++
	s.mu.Unlock()

	delay := restartBackoff(gen)
	s.wg.Add(1)
	go func() {
		since := time.Now()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.ctx.Done():
		}
		s.workerMain(slot, gen, since)
	}()
}

// monitor is the heartbeat watchdog: it samples each busy slot's
// progress counter every HeartbeatInterval and deposes (cancels) a
// worker whose counter stalls for HeartbeatTimeout. Deposition flows
// through the ordinary failure path: the worker's subtree errors out
// with ErrInterrupted, gets requeued, and the retirement spawns a
// replacement.
func (s *supervisor) monitor() {
	defer s.monWG.Done()
	interval := s.e.cfg.HeartbeatInterval
	timeout := s.e.cfg.HeartbeatTimeout
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	type watch struct {
		last  uint64
		stale time.Duration
	}
	states := make([]watch, len(s.slots))
	for {
		select {
		case <-s.monStop:
			return
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			for i := range s.slots {
				s.mu.Lock()
				sl := s.slots[i]
				cancel, beat, busy := sl.cancel, sl.beat, sl.busy
				s.mu.Unlock()
				if beat == nil || !busy {
					states[i] = watch{}
					continue
				}
				b := beat.Load()
				if b != states[i].last {
					states[i] = watch{last: b}
					continue
				}
				states[i].stale += interval
				if states[i].stale >= timeout {
					states[i] = watch{last: b}
					s.mu.Lock()
					s.rec.HeartbeatDeaths++
					s.mu.Unlock()
					cancel()
				}
			}
		}
	}
}

// runSubtree explores one fan-out seed to completion on the rig's
// private hardware (see Frontier.runSubtreeOn for the purity
// contract), wiring in this attempt's heartbeat/chaos step hook.
func (s *supervisor) runSubtree(wctx context.Context, idx, attempt int, rig *workerRig, beat *atomic.Uint64) (*subtreeResult, error) {
	return s.f.runSubtreeOn(wctx, idx, rig, s.stepHookFor(wctx, idx, attempt, rig, beat))
}

// stepHookFor builds the per-step seam for one subtree attempt:
// heartbeat progress (lock-free atomic) plus scheduled chaos events.
// Returns nil when neither is configured, keeping undisturbed runs
// hook-free.
func (s *supervisor) stepHookFor(wctx context.Context, idx, attempt int, rig *workerRig, beat *atomic.Uint64) func() error {
	heartbeat := s.e.cfg.HeartbeatInterval > 0
	ev, at := s.e.cfg.Chaos.plan(idx, attempt)
	if !heartbeat && ev == chaosNone {
		return nil
	}
	var step uint64
	return func() error {
		if heartbeat {
			beat.Add(1)
		}
		if ev == chaosNone {
			return nil
		}
		if step++; step != at {
			return nil
		}
		switch ev {
		case chaosPanic:
			panic(fmt.Sprintf("chaos: injected panic in subtree %d", idx))
		case chaosKill:
			return fmt.Errorf("chaos: injected worker kill in subtree %d", idx)
		case chaosHang:
			// Stop making progress until the heartbeat monitor deposes
			// this worker (blocking on the worker context means the
			// goroutine always terminates — no leak).
			<-wctx.Done()
			return ErrInterrupted
		case chaosSever:
			if sev, ok := rig.tgt.(linkSeverer); ok {
				_ = sev.SeverLink()
				s.mu.Lock()
				s.rec.FailoverEvents++
				s.mu.Unlock()
			}
		}
		return nil
	}
}

// merge combines the seed-phase prefix with every subtree result, in
// seed order, and prices the run with a deterministic greedy schedule
// (longest-prefix list scheduling: each subtree goes to the currently
// least-loaded virtual worker, ties to the lowest index).
func (e *Engine) merge(start, seedVT time.Duration, workers int, results []*subtreeResult) *Report {
	rep := &Report{
		Finished:        append([]*symexec.State(nil), e.finished...),
		Stats:           e.stats,
		SeedVirtualTime: seedVT,
		// Seed phase ran on the primary executor; subtree executors are
		// spawned fresh, so their report stats are pure deltas.
		Exec:   e.exec.Stats,
		Solver: e.exec.Solver.Stats,
	}
	wreps := make([]WorkerReport, workers)
	loads := make([]time.Duration, workers)
	for i := range wreps {
		wreps[i].Worker = i
	}
	var manSum SnapManagerStats
	var tgtSum target.Stats
	for _, res := range results {
		if res == nil {
			continue
		}
		best := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		loads[best] += res.vt
		wr := &wreps[best]
		wr.Subtrees++
		wr.Paths += len(res.rep.Finished)
		wr.VirtualTime += res.vt
		wr.HWSaves += res.tgt.Snapshots
		wr.HWRestores += res.tgt.Restores
		wr.DeltaRestores += res.tgt.DeltaRestores
		wr.BytesMoved += res.tgt.SnapshotBytes
		wr.SnapshotTime += res.tgt.SnapshotTime

		rep.Finished = append(rep.Finished, res.rep.Finished...)
		addStats(&rep.Stats, res.rep.Stats)
		rep.Exec.Add(res.rep.Exec)
		rep.Solver.Add(res.rep.Solver)
		manSum.Saves += res.man.Saves
		manSum.Restores += res.man.Restores
		manSum.SavesSkipped += res.man.SavesSkipped
		manSum.RestoresSkipped += res.man.RestoresSkipped
		manSum.DeltaRestores += res.man.DeltaRestores
		addTargetStats(&tgtSum, res.tgt)
		for id, snap := range res.bugSnaps {
			if e.bugSnaps == nil {
				e.bugSnaps = make(map[uint64]*snapshot.Record)
			}
			e.bugSnaps[id] = snap
		}
	}
	makespan := time.Duration(0)
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	rep.VirtualTime = seedVT + makespan
	rep.Workers = wreps

	if e.tgt != nil {
		ts := e.tgt.Stats() // primary target: seed-phase traffic
		man := e.snapman.Stats()
		rep.Snapshots = SnapshotTraffic{
			Manager: SnapManagerStats{
				Saves:           man.Saves + manSum.Saves,
				Restores:        man.Restores + manSum.Restores,
				SavesSkipped:    man.SavesSkipped + manSum.SavesSkipped,
				RestoresSkipped: man.RestoresSkipped + manSum.RestoresSkipped,
				DeltaRestores:   man.DeltaRestores + manSum.DeltaRestores,
			},
			Store:         e.snaps.Stats(),
			HWSaves:       ts.Snapshots + tgtSum.Snapshots,
			HWRestores:    ts.Restores + tgtSum.Restores,
			DeltaRestores: ts.DeltaRestores + tgtSum.DeltaRestores,
			BytesMoved:    ts.SnapshotBytes + tgtSum.SnapshotBytes,
			SnapshotTime:  ts.SnapshotTime + tgtSum.SnapshotTime,
		}
	}
	if e.exec.Solver.Cache != nil {
		rep.SolverCache = e.exec.Solver.Cache.Stats()
	}
	e.finished = rep.Finished
	return rep
}
