// Campaign journaling: the glue between the parallel engine and the
// append-only journal (internal/journal) that makes a campaign
// survive process death.
//
// What gets journaled is the *frontier decomposition*, not raw
// symbolic states: the fan-out seeds are a deterministic product of
// the serial seed phase, so a resume re-runs that phase (cheap, its
// length is the fan-out width), proves via fingerprints that it
// reproduced the same campaign, and then replays completed subtree
// results from the journal instead of re-exploring them. Symbolic
// constraint terms never need to be serialized — only the portable,
// report-relevant fields of each finished path.
//
// Record kinds:
//
//	recCampaign  one per journal, first record: config fingerprint,
//	             worker count, seed-phase identity (seeds hash).
//	recFrontier  the pending subtree indexes; superseded records are
//	             dropped by periodic compaction.
//	recSubtree   one completed subtree: its portable paths, virtual
//	             time and traffic deltas.
//	recComplete  the campaign finished; resuming it is an error.
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"hardsnap/internal/expr"
	"hardsnap/internal/journal"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/solver"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// Journal record kinds (journal.Record.Kind).
const (
	recCampaign byte = 1
	recFrontier byte = 2
	recSubtree  byte = 3
	recComplete byte = 4
)

// compactEvery is how many subtree completions pass between journal
// compactions (each completion appends a fresh frontier record; the
// compaction drops the superseded ones). Compaction rewrites and
// fsyncs the whole file, so it runs rarely: frontier records are tens
// of bytes and the rewrite only pays off once many are superseded.
const compactEvery = 64

// syncEvery is the group-commit interval: how many subtree
// completions are appended between journal fsyncs. A crash between
// syncs re-explores at most syncEvery-1 journal-lost subtrees on
// resume; deterministic re-exploration makes the result identical,
// so the interval trades only resume latency for per-completion
// fsync cost (measured in E14).
const syncEvery = 4

// journalSyncEvery resolves Config.JournalSyncEvery against the
// default group-commit interval: 0 keeps syncEvery, negative values
// fsync after every completion.
func (c *Config) journalSyncEvery() int {
	switch {
	case c.JournalSyncEvery > 0:
		return c.JournalSyncEvery
	case c.JournalSyncEvery < 0:
		return 1
	}
	return syncEvery
}

// journalCompactEvery resolves Config.JournalCompactEvery the same
// way against the default compaction threshold.
func (c *Config) journalCompactEvery() int {
	switch {
	case c.JournalCompactEvery > 0:
		return c.JournalCompactEvery
	case c.JournalCompactEvery < 0:
		return 1
	}
	return compactEvery
}

// campaignHeader identifies a campaign so a resume can prove it is
// continuing the same run it would otherwise restart.
type campaignHeader struct {
	// Fingerprint hashes the run configuration (mode, searcher type,
	// budgets, worker count).
	Fingerprint string
	Workers     int
	// Seeds / SeedsHash / SeedMaxID / SeedFinished / SeedInstructions
	// pin the outcome of the deterministic seed phase: a resume re-runs
	// it and must land on exactly this frontier.
	Seeds            int
	SeedsHash        string
	SeedMaxID        uint64
	SeedFinished     int
	SeedInstructions uint64
}

// frontierRec lists the subtree indexes still pending.
type frontierRec struct {
	Pending []int
}

// portablePath is the journal-serializable projection of a finished
// symexec.State: everything the report, the bug listing and the
// identity fingerprint use. Constraint terms and memory overlays are
// deliberately absent — they are not needed to *report* a finished
// path, only to extend a running one.
type portablePath struct {
	ID        uint64
	Parent    uint64
	PC        uint32
	Status    symexec.Status
	Steps     uint64
	Console   []byte
	Model     expr.Assignment
	SymInputs []symexec.SymInput
	ErrMsg    string
}

func toPortable(st *symexec.State) portablePath {
	p := portablePath{
		ID:        st.ID,
		Parent:    st.Parent,
		PC:        st.PC,
		Status:    st.Status,
		Steps:     st.Steps,
		Console:   st.Console,
		Model:     st.Model,
		SymInputs: st.SymInputs,
	}
	if st.Err != nil {
		p.ErrMsg = st.Err.Error()
	}
	return p
}

func (p portablePath) state() *symexec.State {
	st := &symexec.State{
		ID:        p.ID,
		Parent:    p.Parent,
		PC:        p.PC,
		Status:    p.Status,
		Steps:     p.Steps,
		Console:   p.Console,
		Model:     p.Model,
		SymInputs: p.SymInputs,
	}
	if p.ErrMsg != "" {
		st.Err = errors.New(p.ErrMsg)
	}
	return st
}

// subtreeRec is one completed subtree's full contribution to the
// merge, in journal-portable form.
type subtreeRec struct {
	Idx    int
	VT     time.Duration
	Paths  []portablePath
	Stats  Stats
	Exec   symexec.Stats
	Solver solver.Stats
	Tgt    target.Stats
	Man    SnapManagerStats
	// BugSnaps carries snapshot.Encode'd hardware snapshots of buggy
	// states (Config.KeepBugSnapshots), keyed by state ID.
	BugSnaps map[uint64][]byte
}

func newSubtreeRec(idx int, res *subtreeResult) (subtreeRec, error) {
	rec := subtreeRec{
		Idx:    idx,
		VT:     res.vt,
		Stats:  res.rep.Stats,
		Exec:   res.rep.Exec,
		Solver: res.rep.Solver,
		Tgt:    res.tgt,
		Man:    res.man,
	}
	rec.Paths = make([]portablePath, len(res.rep.Finished))
	for i, st := range res.rep.Finished {
		rec.Paths[i] = toPortable(st)
	}
	if len(res.bugSnaps) > 0 {
		rec.BugSnaps = make(map[uint64][]byte, len(res.bugSnaps))
		for id, snap := range res.bugSnaps {
			data, err := snapshot.Encode(snap)
			if err != nil {
				return subtreeRec{}, fmt.Errorf("core: journal bug snapshot %d: %w", id, err)
			}
			rec.BugSnaps[id] = data
		}
	}
	return rec, nil
}

func (r subtreeRec) result() (*subtreeResult, error) {
	states := make([]*symexec.State, len(r.Paths))
	for i, p := range r.Paths {
		states[i] = p.state()
	}
	res := &subtreeResult{
		rep: &Report{
			Finished:    states,
			Stats:       r.Stats,
			VirtualTime: r.VT,
			Exec:        r.Exec,
			Solver:      r.Solver,
		},
		vt:  r.VT,
		tgt: r.Tgt,
		man: r.Man,
	}
	if len(r.BugSnaps) > 0 {
		res.bugSnaps = make(map[uint64]*snapshot.Record, len(r.BugSnaps))
		for id, data := range r.BugSnaps {
			snap, err := snapshot.Decode(data)
			if err != nil {
				return nil, fmt.Errorf("core: journaled bug snapshot %d: %w", id, err)
			}
			res.bugSnaps[id] = snap
		}
	}
	return res, nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// runFingerprint hashes the configuration knobs that shape a
// campaign's outcome. The searcher contributes its type (searchers
// are stateless strategies); the program itself is pinned by the
// seed-phase hash in the campaign header.
func (c *Config) runFingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "mode=%d searcher=%T maxi=%d maxs=%d cpi=%d workers=%d bugsnaps=%v maxvt=%d maxq=%d",
		c.Mode, c.Searcher, c.MaxInstructions, c.MaxStates,
		c.CyclesPerInstruction, c.Workers, c.KeepBugSnapshots,
		c.MaxVirtualTime, c.MaxSolverQueries)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// seedsHash pins the fan-out frontier: the identity-relevant fields
// of every seed state, in seed order.
func seedsHash(seeds []*symexec.State) string {
	h := sha256.New()
	for _, st := range seeds {
		fmt.Fprintf(h, "%d %d %#x %d %d %q\n", st.ID, st.Parent, st.PC, st.Status, st.Steps, st.Console)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Fingerprint canonically hashes the observable outcome of a run:
// every finished path's report-relevant fields (sorted, so completion
// order is irrelevant) plus the virtual time. Two runs with equal
// fingerprints reported byte-identical bugs, paths and timing — the
// identity gate the chaos harness and resume tests assert.
func Fingerprint(rep *Report) string {
	lines := make([]string, 0, len(rep.Finished))
	for _, st := range rep.Finished {
		lines = append(lines, pathLine(st))
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		io.WriteString(h, l)
		h.Write([]byte{'\n'})
	}
	fmt.Fprintf(h, "paths=%d vt=%d", len(rep.Finished), rep.VirtualTime)
	return fmt.Sprintf("%x", h.Sum(nil))
}

func pathLine(st *symexec.State) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d %#x %d %d %q", st.ID, st.Parent, st.PC, st.Status, st.Steps, st.Console)
	keys := make([]string, 0, len(st.Model))
	for k := range st.Model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, st.Model[k])
	}
	for _, in := range st.SymInputs {
		fmt.Fprintf(&b, " sym(%d,%#x,%d)", in.Tag, in.Addr, in.Len)
	}
	return b.String()
}

// Campaign is a loaded campaign journal, ready to be passed as
// Config.Resume. Loading is tolerant of a torn tail (the process was
// killed mid-append): the intact prefix is used and Truncated is set.
type Campaign struct {
	// Path is the journal file; a resumed run keeps appending to it.
	Path   string
	Header campaignHeader
	// Results holds the journaled completed subtrees by seed index.
	Results map[int]*subtreeResult
	// Complete reports the campaign already finished.
	Complete bool
	// Truncated reports the journal had a torn or corrupted tail that
	// was discarded (resume continues from the last good record).
	Truncated bool
}

// LoadCampaign reads a campaign journal written by a run with
// Config.JournalPath set.
func LoadCampaign(path string) (*Campaign, error) {
	scan, err := journal.Scan(path)
	if err != nil {
		return nil, err
	}
	cam := &Campaign{
		Path:      path,
		Results:   make(map[int]*subtreeResult),
		Truncated: scan.Truncated,
	}
	if len(scan.Records) == 0 {
		return nil, fmt.Errorf("core: %s: journal holds no campaign header (killed before fan-out; restart the run)", path)
	}
	if scan.Records[0].Kind != recCampaign {
		return nil, fmt.Errorf("core: %s: first journal record is kind %d, want campaign header", path, scan.Records[0].Kind)
	}
	if err := gobDecode(scan.Records[0].Payload, &cam.Header); err != nil {
		return nil, fmt.Errorf("core: %s: campaign header: %w", path, err)
	}
	for _, r := range scan.Records[1:] {
		switch r.Kind {
		case recSubtree:
			var rec subtreeRec
			if err := gobDecode(r.Payload, &rec); err != nil {
				return nil, fmt.Errorf("core: %s: subtree record: %w", path, err)
			}
			res, err := rec.result()
			if err != nil {
				return nil, err
			}
			cam.Results[rec.Idx] = res
		case recFrontier:
			// Informational; pending work is derived as seeds minus
			// completed subtrees.
		case recComplete:
			cam.Complete = true
		case recCampaign:
			return nil, fmt.Errorf("core: %s: duplicate campaign header", path)
		}
	}
	return cam, nil
}

// validate proves the loaded campaign matches the run being resumed:
// same configuration fingerprint and the same deterministic seed
// phase. A mismatch means the journal belongs to a different program,
// configuration or seed — resuming it would merge unrelated results.
func (c *Campaign) validate(h campaignHeader) error {
	if c.Complete {
		return fmt.Errorf("core: %s: campaign is already complete", c.Path)
	}
	if c.Header.Fingerprint != h.Fingerprint {
		return fmt.Errorf("core: %s: resume rejected: configuration fingerprint mismatch", c.Path)
	}
	if c.Header.Seeds != h.Seeds || c.Header.SeedsHash != h.SeedsHash ||
		c.Header.SeedMaxID != h.SeedMaxID ||
		c.Header.SeedFinished != h.SeedFinished ||
		c.Header.SeedInstructions != h.SeedInstructions {
		return fmt.Errorf("core: %s: resume rejected: seed phase diverged from the journaled campaign", c.Path)
	}
	return nil
}
