package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// chaosSetup builds the standard crash-safety workload: the 64-path
// scaling firmware on 4 workers (16 fan-out subtrees), hardsnap mode.
func chaosSetup(chaos *ChaosSchedule, journalPath string, resume *Campaign, searcher symexec.Searcher) SetupConfig {
	return SetupConfig{
		Firmware:    scalingFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:            ModeHardSnap,
			Searcher:        searcher,
			MaxInstructions: 1_000_000,
			Workers:         4,
			Chaos:           chaos,
			JournalPath:     journalPath,
			Resume:          resume,
			// Chaos tests kill many workers on purpose; never let the
			// restart budget be the thing that fails the run.
			MaxWorkerRestarts: 100,
		},
	}
}

// TestChaosIdentity is the tentpole identity gate: runs riddled with
// seeded worker panics and kills must report byte-identical bugs,
// paths and virtual time to the undisturbed run — recovery replays
// subtrees, it never invents or loses results.
func TestChaosIdentity(t *testing.T) {
	_, clean := run(t, chaosSetup(nil, "", nil, symexec.BFS{}))
	want := Fingerprint(clean)
	if len(clean.Bugs()) != 1 {
		t.Fatalf("clean bugs: %d, want 1", len(clean.Bugs()))
	}

	for _, seed := range []int64{1, 7, 13} {
		chaos := &ChaosSchedule{Seed: seed, PanicRate: 0.3, KillRate: 0.3}
		_, rep := run(t, chaosSetup(chaos, "", nil, symexec.BFS{}))
		if got := Fingerprint(rep); got != want {
			t.Errorf("seed %d: chaos run diverged from clean run:\nclean: %s\nchaos: %s\npaths %d vs %d, vt %v vs %v",
				seed, want, got, len(clean.Finished), len(rep.Finished),
				clean.VirtualTime, rep.VirtualTime)
		}
		rec := rep.Recovery
		if rec.Requeues == 0 || rec.WorkerRestarts == 0 {
			t.Errorf("seed %d: chaos injected nothing (requeues=%d restarts=%d) — schedule too tame to prove anything",
				seed, rec.Requeues, rec.WorkerRestarts)
		}
		if rec.PanicsRecovered == 0 {
			t.Errorf("seed %d: no panics recovered: %+v", seed, rec)
		}
		if rec.FailoverEvents == 0 {
			t.Errorf("seed %d: no failover events recorded: %+v", seed, rec)
		}
	}
}

// TestChaosHangDeposition: workers that silently stop making progress
// are deposed by the heartbeat monitor and their subtrees recovered,
// again with result identity.
func TestChaosHangDeposition(t *testing.T) {
	_, clean := run(t, chaosSetup(nil, "", nil, symexec.BFS{}))

	setup := chaosSetup(&ChaosSchedule{Seed: 5, HangRate: 0.5}, "", nil, symexec.BFS{})
	setup.Engine.HeartbeatInterval = 2 * time.Millisecond
	_, rep := run(t, setup)

	if got, want := Fingerprint(rep), Fingerprint(clean); got != want {
		t.Errorf("hang-chaos run diverged from clean run (paths %d vs %d, vt %v vs %v)",
			len(rep.Finished), len(clean.Finished), rep.VirtualTime, clean.VirtualTime)
	}
	if rep.Recovery.HeartbeatDeaths == 0 {
		t.Errorf("no heartbeat depositions: %+v", rep.Recovery)
	}
	if rep.Recovery.Requeues == 0 || rep.Recovery.WorkerRestarts == 0 {
		t.Errorf("hung subtrees not recovered: %+v", rep.Recovery)
	}
}

// TestResumeIdentity is the process-death identity gate: a journaled
// campaign killed mid-run (twice), then resumed to completion, must
// report exactly the clean run's results, with the journaled subtrees
// replayed rather than re-explored.
func TestResumeIdentity(t *testing.T) {
	_, clean := run(t, chaosSetup(nil, "", nil, symexec.BFS{}))
	want := Fingerprint(clean)
	jpath := filepath.Join(t.TempDir(), "campaign.hsj")

	// Leg 1: die after 3 subtree completions.
	a, err := Setup(chaosSetup(&ChaosSchedule{DieAfterSubtrees: 3}, jpath, nil, symexec.BFS{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("leg 1: err = %v, want ErrInterrupted", err)
	}
	cam, err := LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if cam.Complete {
		t.Fatal("leg 1: campaign claims completion after dying")
	}
	if len(cam.Results) < 3 {
		t.Fatalf("leg 1: journaled %d subtrees, want >= 3", len(cam.Results))
	}

	// Leg 2: resume, die again after 3 more.
	a, err = Setup(chaosSetup(&ChaosSchedule{DieAfterSubtrees: 3}, "", cam, symexec.BFS{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("leg 2: err = %v, want ErrInterrupted", err)
	}
	cam2, err := LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(cam2.Results) < len(cam.Results)+3 {
		t.Fatalf("leg 2: journal grew %d -> %d, want +3 or more", len(cam.Results), len(cam2.Results))
	}

	// Leg 3: resume to completion.
	a, err = Setup(chaosSetup(nil, "", cam2, symexec.BFS{}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Engine.Run()
	if err != nil {
		t.Fatalf("leg 3: %v", err)
	}
	if got := Fingerprint(rep); got != want {
		t.Errorf("resumed run diverged from clean run:\nclean: %s\nresumed: %s\npaths %d vs %d, vt %v vs %v",
			want, got, len(clean.Finished), len(rep.Finished), clean.VirtualTime, rep.VirtualTime)
	}
	if rep.Recovery.ResumedSubtrees != len(cam2.Results) {
		t.Errorf("resumed subtrees: %d, want %d", rep.Recovery.ResumedSubtrees, len(cam2.Results))
	}
	if rep.Recovery.JournalRecords == 0 || rep.Recovery.JournalBytes == 0 {
		t.Errorf("journal counters missing: %+v", rep.Recovery)
	}

	// The journal is now complete; resuming it again must be refused.
	cam3, err := LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !cam3.Complete {
		t.Fatal("finished campaign not marked complete")
	}
	a, err = Setup(chaosSetup(nil, "", cam3, symexec.BFS{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); err == nil || !strings.Contains(err.Error(), "already complete") {
		t.Fatalf("resume of complete campaign: err = %v, want already-complete refusal", err)
	}
}

// TestResumeTornJournal: a journal torn mid-record (the SIGKILL
// landed inside an append) resumes from the last good record and
// still converges to the clean result.
func TestResumeTornJournal(t *testing.T) {
	_, clean := run(t, chaosSetup(nil, "", nil, symexec.BFS{}))
	jpath := filepath.Join(t.TempDir(), "campaign.hsj")

	a, err := Setup(chaosSetup(&ChaosSchedule{DieAfterSubtrees: 6}, jpath, nil, symexec.BFS{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// Tear the journal: keep two thirds, cutting through whatever
	// record spans the boundary.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	cam, err := LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !cam.Truncated {
		t.Fatal("torn journal not reported truncated")
	}
	a, err = Setup(chaosSetup(nil, "", cam, symexec.BFS{}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Fingerprint(rep), Fingerprint(clean); got != want {
		t.Errorf("torn-journal resume diverged from clean run (paths %d vs %d)",
			len(rep.Finished), len(clean.Finished))
	}
}

// TestResumeRejectsMismatchedConfig: a journal from one configuration
// must not silently merge into a different run.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "campaign.hsj")
	a, err := Setup(chaosSetup(&ChaosSchedule{DieAfterSubtrees: 3}, jpath, nil, symexec.BFS{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	cam, err := LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	a, err = Setup(chaosSetup(nil, "", cam, symexec.NewRandom(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("mismatched resume: err = %v, want fingerprint refusal", err)
	}
}

// TestJournalSerialDrain: a journaled campaign that finishes inside
// the seed phase still records a complete campaign.
func TestJournalSerialDrain(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "campaign.hsj")
	setup := SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		beq r4, r0, even
		halt
even:
		halt
`,
		Engine: Config{Searcher: symexec.BFS{}, Workers: 4, JournalPath: jpath},
	}
	_, rep := run(t, setup)
	if len(rep.Finished) != 2 {
		t.Fatalf("paths: %d, want 2", len(rep.Finished))
	}
	cam, err := LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !cam.Complete {
		t.Fatal("serially-drained campaign not marked complete")
	}
}

// TestJournalRequiresParallel: journaling is a parallel-run feature;
// a serial run must refuse it loudly rather than silently skip it.
func TestJournalRequiresParallel(t *testing.T) {
	a, err := Setup(SetupConfig{
		Firmware: "_start:\n\t\thalt\n",
		Engine:   Config{Workers: 1, JournalPath: filepath.Join(t.TempDir(), "j")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); err == nil || !strings.Contains(err.Error(), "requires Workers > 1") {
		t.Fatalf("err = %v, want journaling-requires-parallel refusal", err)
	}
}
