// Package core is HardSnap's co-testing engine: it couples the
// selective symbolic virtual machine (internal/symexec) with hardware
// execution targets (internal/target) through the snapshotting
// controller, implementing the paper's Algorithm 1. Every software
// state owns a private hardware snapshot; whenever the state selection
// heuristic switches states, the engine saves the live hardware state
// into the previous state's snapshot and restores the next state's —
// the hardware context switch that makes concurrent multi-path
// analysis consistent.
//
// Three baseline modes reproduce the approaches of Fig. 1 and the
// related work:
//
//   - ModeNaiveReboot  (naive-and-consistent): every switch to a
//     different path is charged a full platform reboot plus
//     re-execution of the path prefix;
//   - ModeNaiveShared  (naive-and-inconsistent): all paths share the
//     live hardware with no context switching, reproducing the
//     corruption hardware-in-the-loop DSE suffers from;
//   - ModeRecordReplay: hardware state is rebuilt by resetting the
//     platform and re-issuing the path's recorded I/O interactions —
//     the alternative the paper rejects as slow (cost scales with the
//     interaction count) and error-prone (replay divergence).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/solver"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// Mode selects the hardware consistency strategy.
type Mode int

// Engine modes.
const (
	// ModeHardSnap context-switches hardware snapshots (the paper's
	// contribution).
	ModeHardSnap Mode = iota + 1
	// ModeNaiveReboot reboots and re-executes on every path switch.
	ModeNaiveReboot
	// ModeNaiveShared shares live hardware across paths without any
	// switching (inconsistent).
	ModeNaiveShared
	// ModeRecordReplay resets the hardware on every switch and
	// replays the path's recorded I/O interactions to rebuild its
	// hardware state (the related-work alternative the paper rejects
	// as slow and error-prone).
	ModeRecordReplay
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeHardSnap:
		return "hardsnap"
	case ModeNaiveReboot:
		return "naive-reboot"
	case ModeNaiveShared:
		return "naive-shared"
	case ModeRecordReplay:
		return "record-replay"
	}
	return "?"
}

// Config parameterizes an analysis run.
type Config struct {
	Mode Mode
	// Searcher picks the next state (default DFS).
	Searcher symexec.Searcher
	// MaxInstructions bounds the total retired instructions (0 =
	// 10M).
	MaxInstructions uint64
	// MaxStates bounds the active state set; further forks are killed
	// with StatusBudget (0 = 4096).
	MaxStates int
	// CyclesPerInstruction advances the hardware clock per retired
	// firmware instruction (default 1), keeping peripherals running
	// concurrently with software.
	CyclesPerInstruction uint64
	// KeepBugSnapshots retains the hardware snapshot of every state
	// that terminated in a bug (abort / assertion failure), for crash
	// reports and offline root-cause analysis.
	KeepBugSnapshots bool
	// Workers sets the exploration worker count. 1 (or 0) runs the
	// classic serial loop; > 1 fans subtrees out to that many workers,
	// each owning a spawned target clone and snapshot manager over the
	// shared store (see parallel.go for the determinism contract).
	// Use AutoWorkers() for a GOMAXPROCS-sized pool.
	Workers int
	// SeedFanout overrides the fan-out width of a parallel run's seed
	// phase (0 = Workers x 4). More subtrees than workers lets work
	// stealing balance uneven subtree sizes; a distributed driver may
	// want a wider fan-out still, so slow links stay saturated. Part
	// of the run's identity: a different decomposition packs the
	// deterministic merge schedule differently.
	SeedFanout int
	// SolverCacheSize bounds the shared memoized solver cache in
	// entries (0 = solver.DefaultCacheCapacity). The cache is always
	// on: verdicts are deterministic, so memoization never changes
	// results, only skips repeated identical queries.
	SolverCacheSize int
	// Nodes lists remote distributed-exploration workers
	// (host:port). The engine itself ignores it — the CLI routes a
	// run with Nodes set through the internal/dist driver, which fans
	// subtrees out over these hosts. Deliberately excluded from the
	// run fingerprint: an N-node run is byte-identical to a 1-node
	// run by construction, so where subtrees execute is not part of
	// the run's identity.
	Nodes []string

	// MaxVirtualTime bounds the virtual time a run may consume (0 =
	// unlimited): the run stops at the next scheduling boundary once
	// the clock passes the budget, finishing leftover states as
	// StatusBudget. The campaign farm uses this to enforce per-tenant
	// virtual-time quotas. Like MaxInstructions, a parallel run gives
	// each subtree the remaining budget independently.
	MaxVirtualTime time.Duration
	// MaxSolverQueries bounds the total solver queries issued (0 =
	// unlimited), checked at scheduling boundaries; the farm's
	// per-tenant solver quotas ride on it. The parallel caveat of
	// MaxVirtualTime applies.
	MaxSolverQueries uint64

	// JournalPath, when set on a parallel run (Workers > 1), records
	// campaign progress to an append-only crash-safe journal so a
	// killed run can be continued with Resume. See campaign.go.
	JournalPath string
	// JournalSyncEvery overrides the journal group-commit interval:
	// how many subtree completions pass between fsyncs (0 keeps the
	// default of 4; values < 0 sync every completion). A crash between
	// syncs re-explores at most the journal-lost subtrees on resume.
	JournalSyncEvery int
	// JournalCompactEvery overrides how many completions pass between
	// atomic journal compactions that drop superseded frontier
	// records (0 keeps the default of 64; values < 0 compact on every
	// completion).
	JournalCompactEvery int
	// Resume continues a journaled campaign (LoadCampaign): the seed
	// phase is re-run and validated against the journal header, then
	// completed subtrees are replayed from the journal instead of
	// re-explored. Implies the journaled worker count.
	Resume *Campaign
	// Chaos injects deterministic failures into a parallel run (tests
	// and the E14 experiment); nil injects nothing.
	Chaos *ChaosSchedule
	// HeartbeatInterval enables worker death detection on parallel
	// runs: a monitor samples per-worker progress every interval and
	// deposes workers that stall for HeartbeatTimeout (default 20×
	// the interval). Zero disables the monitor (panics and returned
	// errors are still supervised).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// MaxSubtreeRetries bounds recovery attempts per subtree before
	// the campaign fails (default 3).
	MaxSubtreeRetries int
	// MaxWorkerRestarts bounds replacement-worker spawns per campaign
	// (default 2×Workers).
	MaxWorkerRestarts int

	// Progress, when set, receives observation-only progress
	// callbacks: periodically during serial exploration and after
	// every completed subtree of a parallel run. The callback must be
	// fast and must not call back into the engine; it may run on
	// worker goroutines. It never influences results — streaming
	// consumers (the campaign runner) drop events they cannot keep up
	// with.
	Progress func(ProgressEvent)
}

// ProgressEvent is one observation-only progress sample.
type ProgressEvent struct {
	// Instructions retired so far (serial phase samples only).
	Instructions uint64
	// SubtreesDone / Subtrees report parallel fan-out progress
	// (zero for serial samples).
	SubtreesDone int
	Subtrees     int
}

// AutoWorkers returns the worker count a "use all CPUs" configuration
// should ask for (GOMAXPROCS).
func AutoWorkers() int { return runtime.GOMAXPROCS(0) }

func (c *Config) setDefaults() {
	if c.Mode == 0 {
		c.Mode = ModeHardSnap
	}
	if c.Searcher == nil {
		c.Searcher = symexec.DFS{}
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 10_000_000
	}
	if c.MaxStates == 0 {
		c.MaxStates = 4096
	}
	if c.CyclesPerInstruction == 0 {
		c.CyclesPerInstruction = 1
	}
	if c.Resume != nil && c.Resume.Header.Workers > 1 {
		// Resuming adopts the journaled worker count: the merge
		// schedule (and so the reported virtual time) depends on it.
		c.Workers = c.Resume.Header.Workers
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxSubtreeRetries == 0 {
		c.MaxSubtreeRetries = 3
	}
	if c.MaxWorkerRestarts == 0 {
		c.MaxWorkerRestarts = 2 * c.Workers
	}
	if c.Chaos != nil && c.Chaos.HangRate > 0 && c.HeartbeatInterval == 0 {
		// Hung workers are only detectable via heartbeats.
		c.HeartbeatInterval = 5 * time.Millisecond
	}
	if c.HeartbeatInterval > 0 && c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 20 * c.HeartbeatInterval
	}
}

// Stats aggregates engine activity.
type Stats struct {
	Instructions    uint64
	ContextSwitches uint64
	Reboots         uint64
	PathsCompleted  int
	// ReplayedInstructions counts re-executed prefix instructions in
	// ModeNaiveReboot.
	ReplayedInstructions uint64
	// ReplayedIO counts re-issued I/O interactions in
	// ModeRecordReplay.
	ReplayedIO uint64
	// ReplayDivergences counts replayed reads whose value differed
	// from the recording (the "error-prone" failure mode).
	ReplayDivergences uint64
	// HWViolations counts hardware property violations detected.
	HWViolations int
}

// SnapshotTraffic summarizes what the copy-on-write snapshot pipeline
// actually moved during a run.
type SnapshotTraffic struct {
	// Manager counts how context-switch operations were served
	// (performed vs. skipped vs. delta).
	Manager SnapManagerStats
	// Store counts dedup hits, structural sharing and bytes.
	Store snapshot.Stats
	// HWSaves / HWRestores / DeltaRestores are the operations that
	// reached the hardware (target-side counters).
	HWSaves       uint64
	HWRestores    uint64
	DeltaRestores uint64
	// BytesMoved is the state bytes that crossed the target link.
	BytesMoved uint64
	// SnapshotTime is the virtual time spent moving state.
	SnapshotTime time.Duration
}

// WorkerReport breaks one parallel worker's share of the run out of
// the merged totals. The assignment of subtrees to workers is the
// deterministic greedy schedule computed at merge time (see
// parallel.go), not the racy physical claim order, so the same run
// always produces the same per-worker rows.
type WorkerReport struct {
	// Worker is the worker index in [0, Config.Workers).
	Worker int
	// Subtrees is how many fan-out seeds this worker was assigned.
	Subtrees int
	// Paths counts the finished states produced by those subtrees.
	Paths int
	// VirtualTime is the worker's total subtree virtual time.
	VirtualTime time.Duration
	// Snapshot traffic that this worker's private target moved.
	HWSaves       uint64
	HWRestores    uint64
	DeltaRestores uint64
	BytesMoved    uint64
	SnapshotTime  time.Duration
}

// Report is the outcome of a Run.
type Report struct {
	Finished []*symexec.State
	Stats    Stats
	// VirtualTime is the total virtual time consumed. For parallel
	// runs this is the seed-phase time plus the makespan of the
	// deterministic worker schedule: the time an N-worker platform
	// rack would have taken, not the sum over workers.
	VirtualTime time.Duration
	// SeedVirtualTime is the serial seed-phase prefix of VirtualTime
	// (zero for serial runs).
	SeedVirtualTime time.Duration
	// Snapshots is the snapshot-traffic breakdown (zero without
	// hardware attached). For parallel runs, hardware counters sum
	// over the primary and every worker target, and Store reflects
	// the shared store.
	Snapshots SnapshotTraffic
	// Workers is the per-worker breakdown (nil for serial runs).
	Workers []WorkerReport
	// SolverCache reports the memoized solver service: hits are
	// queries some earlier identical path condition already paid for.
	SolverCache solver.CacheStats
	// Exec is the symbolic executor's activity (instructions, forks,
	// solver calls, undecided queries), summed over all workers.
	Exec symexec.Stats
	// Solver is the constraint solver's effort and per-optimization-
	// stage counters (slices, model hits, rewrites, incremental
	// reuses), summed over all workers.
	Solver solver.Stats
	// Recovery summarizes supervision and crash-recovery activity
	// (all zero for an undisturbed serial run).
	Recovery RecoveryStats
	// Nodes is the per-node breakdown of a distributed run (nil
	// otherwise), filled in by the internal/dist driver after the
	// deterministic merge. Like WorkerReport rows it is commentary on
	// where work physically ran; the merged results above are
	// node-count-invariant.
	Nodes []NodeReport
}

// NodeReport is one distributed node's share of a run: what it
// executed, what the fabrics moved on its behalf, and how its private
// solver cache behaved. The driver's own fallback execution appears
// as the node named "local".
type NodeReport struct {
	// Node is the worker address (host:port), or "local".
	Node string
	// Subtrees / Paths / VirtualTime tally the subtree results this
	// node produced (virtual time is the sum over its subtrees, not
	// the schedule makespan).
	Subtrees    int
	Paths       int
	VirtualTime time.Duration
	// Reconnects counts driver redials to this node that recovered a
	// dropped connection (a node that stays dead is requeued work,
	// counted in Recovery, not here).
	Reconnects int
	// SolverCache is the node-side cache at campaign end: Imported
	// entries arrived over the solver fabric, Published entries were
	// discovered locally and offered to it.
	SolverCache solver.CacheStats
	// SnapBytesShipped is the snapshot state bytes this node actually
	// sent the driver (subtree-result bug snapshots; delta frames in
	// shared-fabric mode). SnapBytesFull is what a fabric-less
	// transfer of the same records would have cost — the difference
	// is the digest-peering savings the E17 gate measures.
	SnapBytesShipped uint64
	SnapBytesFull    uint64
}

// Bugs returns the states that ended in an assertion failure or
// abort, each carrying a satisfying input model.
func (r *Report) Bugs() []*symexec.State {
	var out []*symexec.State
	for _, st := range r.Finished {
		if st.Status == symexec.StatusAssertFail || st.Status == symexec.StatusAborted {
			out = append(out, st)
		}
	}
	return out
}

// CountStatus tallies finished states with the given status.
func (r *Report) CountStatus(s symexec.Status) int {
	n := 0
	for _, st := range r.Finished {
		if st.Status == s {
			n++
		}
	}
	return n
}

// Engine drives one analysis.
type Engine struct {
	cfg     Config
	exec    *symexec.Executor
	tgt     target.Interface
	router  *bus.Router
	snaps   *snapshot.Store
	snapman *SnapshotManager
	clock   *vtime.Clock

	active   []*symexec.State
	finished []*symexec.State
	previous *symexec.State

	// Record-and-replay mode bookkeeping: per-state I/O interaction
	// logs and the cycle counter used to preserve inter-I/O timing.
	ioLogs       map[uint64][]ioRecord
	lastIOCycles uint64
	replayActive bool

	// bugSnaps retains hardware snapshots of buggy states (when
	// KeepBugSnapshots is set), keyed by state ID.
	bugSnaps map[uint64]*snapshot.Record

	// initial overrides the executor's entry state (fast-forwarding).
	initial *symexec.State

	// vtStart anchors the MaxVirtualTime budget to the clock value at
	// run start (worker rigs share one clock across subtrees, so the
	// budget must be relative).
	vtStart time.Duration
	// progressAt is the instruction count of the last Progress sample.
	progressAt uint64

	// ctx cancels the run (checked between scheduling iterations, a
	// few dozen steps apart to stay off the hot path); stepHook is the
	// parallel supervisor's per-step seam for heartbeats and chaos
	// injection. ctxSteps counts iterations between ctx checks.
	ctx      context.Context
	ctxSteps int
	stepHook func() error

	stats Stats
}

// ioRecord is one recorded hardware interaction.
type ioRecord struct {
	write bool
	addr  uint32
	val   uint32
	// cyclesBefore is the number of hardware cycles that elapsed
	// since the previous interaction (to reproduce timing-sensitive
	// behaviour during replay).
	cyclesBefore uint64
}

// New builds an engine. tgt is any execution vehicle implementing
// target.Interface — an in-process *target.Target or a remote
// protocol-v3 client. tgt and router may both be nil for
// software-only firmware; otherwise both must be set and the router's
// ports must come from tgt.
func New(cfg Config, exec *symexec.Executor, tgt target.Interface, router *bus.Router) (*Engine, error) {
	return newEngine(cfg, exec, tgt, router, nil, nil)
}

// newEngine is New plus injection points for the parallel layer: a
// shared snapshot store (cross-worker structural sharing) and a
// pre-built snapshot manager (reused across one worker's subtrees so
// generation-proven skips survive subtree boundaries).
func newEngine(cfg Config, exec *symexec.Executor, tgt target.Interface, router *bus.Router,
	snaps *snapshot.Store, snapman *SnapshotManager) (*Engine, error) {
	cfg.setDefaults()
	// Normalize a typed-nil *target.Target handed in through the
	// interface, so every `tgt != nil` guard below stays honest.
	if t, ok := tgt.(*target.Target); ok && t == nil {
		tgt = nil
	}
	if (tgt == nil) != (router == nil) {
		return nil, errors.New("core: target and router must be provided together")
	}
	if snaps == nil {
		snaps = snapshot.NewStore()
	}
	e := &Engine{
		cfg:    cfg,
		exec:   exec,
		tgt:    tgt,
		router: router,
		snaps:  snaps,
	}
	if tgt != nil {
		e.clock = tgt.Clock()
		if snapman == nil {
			snapman = NewSnapshotManager(e.snaps, tgt, router)
		}
		e.snapman = snapman
	} else {
		e.clock = &vtime.Clock{}
	}
	if exec.Solver.Cache == nil {
		exec.Solver.Cache = solver.NewCache(cfg.SolverCacheSize)
	}
	exec.SetMMIO(e)
	return e, nil
}

// Clock exposes the engine's virtual clock.
func (e *Engine) Clock() *vtime.Clock { return e.clock }

// Snapshots exposes the snapshot store (diagnostics).
func (e *Engine) Snapshots() *snapshot.Store { return e.snaps }

// SnapshotManager exposes the copy-on-write snapshot seam, nil when
// no hardware is attached.
func (e *Engine) SnapshotManager() *SnapshotManager { return e.snapman }

// BugSnapshot returns the retained hardware snapshot of a buggy state
// (requires Config.KeepBugSnapshots).
func (e *Engine) BugSnapshot(stateID uint64) (*snapshot.Record, bool) {
	rec, ok := e.bugSnaps[stateID]
	return rec, ok
}

// SetInitialState overrides the entry state for the next Run (used by
// fast-forwarding to start symbolic exploration mid-firmware).
func (e *Engine) SetInitialState(st *symexec.State) { e.initial = st }

var _ symexec.MMIOHandler = (*Engine)(nil)

// Read implements the hardware boundary for the executor. The engine
// guarantees the live hardware belongs to st (the context switch
// happened at selection time).
func (e *Engine) Read(st *symexec.State, addr uint32) (uint32, error) {
	if e.router == nil {
		return 0, errors.New("core: no hardware attached")
	}
	v, err := e.router.ReadMMIO(addr, 4)
	if err == nil {
		e.record(st, ioRecord{addr: addr, val: v})
	}
	return v, err
}

// Write implements the hardware boundary for the executor.
func (e *Engine) Write(st *symexec.State, addr uint32, val uint32) error {
	if e.router == nil {
		return errors.New("core: no hardware attached")
	}
	err := e.router.WriteMMIO(addr, 4, val)
	if err == nil {
		e.record(st, ioRecord{write: true, addr: addr, val: val})
	}
	return err
}

// record appends an interaction to the state's I/O log (record-replay
// mode only; no-op during replay itself).
func (e *Engine) record(st *symexec.State, rec ioRecord) {
	if e.cfg.Mode != ModeRecordReplay || e.replayActive {
		return
	}
	cycles := e.tgt.Stats().Cycles
	rec.cyclesBefore = cycles - e.lastIOCycles
	e.lastIOCycles = cycles
	if e.ioLogs == nil {
		e.ioLogs = make(map[uint64][]ioRecord)
	}
	e.ioLogs[st.ID] = append(e.ioLogs[st.ID], rec)
}

// replayLog rebuilds a state's hardware by resetting the platform and
// re-issuing every recorded interaction with its original timing.
// Replayed reads are compared against the recording; divergence is
// counted (the approach's inherent fragility).
func (e *Engine) replayLog(st *symexec.State) error {
	if err := e.tgt.Reset(); err != nil {
		return err
	}
	e.router.ResetIRQEdges(nil)
	e.replayActive = true
	defer func() { e.replayActive = false }()
	for _, rec := range e.ioLogs[st.ID] {
		if rec.cyclesBefore > 0 {
			if err := e.tgt.Advance(rec.cyclesBefore); err != nil {
				return err
			}
		}
		if rec.write {
			if err := e.router.WriteMMIO(rec.addr, 4, rec.val); err != nil {
				return err
			}
		} else {
			v, err := e.router.ReadMMIO(rec.addr, 4)
			if err != nil {
				return err
			}
			if v != rec.val {
				e.stats.ReplayDivergences++
			}
		}
		e.stats.ReplayedIO++
		if _, err := e.router.RisingIRQs(); err != nil {
			return err
		}
	}
	e.lastIOCycles = e.tgt.Stats().Cycles
	return nil
}

// saveCurrent captures the live hardware into the state's snapshot
// slot (UpdateState of Algorithm 1). The manager skips the hardware
// traffic entirely when the state is already in sync.
func (e *Engine) saveCurrent(st *symexec.State) error {
	id, err := e.snapman.Sync(snapshot.ID(st.HWSnapshot))
	if err != nil {
		return err
	}
	st.HWSnapshot = symexec.SnapshotID(id)
	return nil
}

// restoreFor loads the state's hardware snapshot into the live
// hardware (RestoreState of Algorithm 1). States without a snapshot
// (never scheduled since forking) inherited one at fork time, so this
// only happens for the initial state, which keeps the power-on
// hardware.
func (e *Engine) restoreFor(st *symexec.State) error {
	if err := e.snapman.Restore(snapshot.ID(st.HWSnapshot)); err != nil {
		return fmt.Errorf("core: state %d: %w", st.ID, err)
	}
	return nil
}

// contextSwitch implements lines 5-9 of Algorithm 1 for the selected
// state.
func (e *Engine) contextSwitch(next *symexec.State) error {
	if e.tgt == nil || e.previous == next {
		return nil
	}
	switch e.cfg.Mode {
	case ModeHardSnap:
		if e.previous != nil {
			if err := e.saveCurrent(e.previous); err != nil {
				return fmt.Errorf("core: UpdateState: %w", err)
			}
		}
		if err := e.restoreFor(next); err != nil {
			return fmt.Errorf("core: RestoreState: %w", err)
		}
		e.stats.ContextSwitches++

	case ModeNaiveReboot:
		// The baseline reboots the platform and re-executes the path
		// prefix to reach the same point; deterministic firmware
		// reproduces the same hardware state, so we restore it
		// directly but charge reboot plus replay time.
		if e.previous != nil {
			if err := e.saveCurrent(e.previous); err != nil {
				return err
			}
		}
		if err := e.restoreFor(next); err != nil {
			return err
		}
		e.clock.Advance(vtime.RebootTime)
		replay := time.Duration(next.Steps) * vtime.VMInstruction
		e.clock.Advance(replay)
		e.stats.Reboots++
		e.stats.ReplayedInstructions += next.Steps

	case ModeNaiveShared:
		// No switching: states stomp on each other's hardware.

	case ModeRecordReplay:
		if err := e.replayLog(next); err != nil {
			return fmt.Errorf("core: record-replay: %w", err)
		}
		e.stats.ContextSwitches++
	}
	return nil
}

// selectNext applies the searcher plus INCEPTION's interrupt
// atomicity: while the previous state is inside an interrupt handler
// it keeps running.
func (e *Engine) selectNext() *symexec.State {
	if e.previous != nil && e.previous.InHandler && e.previous.Status == symexec.StatusRunning {
		for _, st := range e.active {
			if st == e.previous {
				return st
			}
		}
	}
	idx := e.cfg.Searcher.Select(e.active, e.previous)
	if idx < 0 || idx >= len(e.active) {
		idx = len(e.active) - 1
	}
	return e.active[idx]
}

func (e *Engine) removeActive(st *symexec.State) {
	for i, s := range e.active {
		if s == st {
			e.active = append(e.active[:i], e.active[i+1:]...)
			return
		}
	}
}

func (e *Engine) finish(st *symexec.State) {
	e.removeActive(st)
	e.finished = append(e.finished, st)
	e.stats.PathsCompleted++
	if e.cfg.KeepBugSnapshots && e.tgt != nil && e.previous == st &&
		(st.Status == symexec.StatusAborted || st.Status == symexec.StatusAssertFail) {
		// The live hardware still belongs to this state: capture it
		// for the crash report. When the state's snapshot is already
		// current this reuses the stored record instead of a second
		// full save.
		if rec, err := e.snapman.LiveRecord(); err == nil {
			if e.bugSnaps == nil {
				e.bugSnaps = make(map[uint64]*snapshot.Record)
			}
			e.bugSnaps[st.ID] = rec
		}
	}
	if st.HWSnapshot != 0 {
		e.snaps.Release(snapshot.ID(st.HWSnapshot))
		st.HWSnapshot = 0
	}
	delete(e.ioLogs, st.ID)
	if e.previous == st {
		e.previous = nil
	}
}

// Run executes Algorithm 1 until the active set drains or the
// instruction budget is exhausted. With Config.Workers > 1 the run
// fans out to the parallel engine after a serial seed phase (see
// parallel.go).
func (e *Engine) Run() (*Report, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cancellation: when ctx is cancelled the run
// stops at the next scheduling boundary and returns ErrInterrupted.
// Parallel runs with journaling enabled flush the campaign journal
// first, so an interrupted run can be continued with Config.Resume.
func (e *Engine) RunContext(ctx context.Context) (*Report, error) {
	e.ctx = ctx
	if err := ctx.Err(); err != nil {
		return nil, ErrInterrupted
	}
	if cam := e.cfg.Resume; cam != nil && cam.Complete {
		return nil, fmt.Errorf("core: %s: campaign is already complete", cam.Path)
	}
	if e.cfg.Workers > 1 {
		return e.runParallel(ctx)
	}
	if e.cfg.JournalPath != "" || e.cfg.Resume != nil {
		return nil, errors.New("core: campaign journaling requires Workers > 1")
	}
	start := e.clock.Now()
	e.vtStart = start
	e.initActive()
	if err := e.loop(nil); err != nil {
		return nil, err
	}
	return e.finalize(start), nil
}

// initActive seeds the active set with the entry (or injected) state.
func (e *Engine) initActive() {
	init := e.initial
	if init == nil {
		init = e.exec.InitialState()
	}
	e.active = []*symexec.State{init}
}

// seedIOLog installs a recorded interaction log for a state (the
// parallel layer transplants seed logs into worker engines for
// record-replay mode).
func (e *Engine) seedIOLog(id uint64, log []ioRecord) {
	if e.ioLogs == nil {
		e.ioLogs = make(map[uint64][]ioRecord)
	}
	e.ioLogs[id] = append([]ioRecord(nil), log...)
}

// budgetExhausted reports whether the virtual-time or solver-query
// budget is spent (instruction exhaustion is loop's own condition).
// Checked between scheduling iterations, so a run can overshoot a
// budget by at most one step's worth of work.
func (e *Engine) budgetExhausted() bool {
	if e.cfg.MaxVirtualTime > 0 && e.clock.Now()-e.vtStart >= e.cfg.MaxVirtualTime {
		return true
	}
	if e.cfg.MaxSolverQueries > 0 && uint64(e.exec.Solver.Stats.Queries) >= e.cfg.MaxSolverQueries {
		return true
	}
	return false
}

// loop runs scheduling iterations until the active set drains, a
// budget (instructions, virtual time, solver queries) is exhausted,
// or stop returns true (checked between iterations; nil means run to
// completion). The parallel seed phase uses stop to pause at the
// fan-out width.
func (e *Engine) loop(stop func() bool) error {
	for len(e.active) > 0 && e.stats.Instructions < e.cfg.MaxInstructions && !e.budgetExhausted() {
		if stop != nil && stop() {
			return nil
		}
		if e.ctx != nil {
			// Cancellation is checked every 64 iterations: responsive
			// enough for interrupts and worker deposition, cheap enough
			// to keep off the per-instruction budget (E14's overhead
			// gate covers this path).
			if e.ctxSteps++; e.ctxSteps&63 == 0 {
				if e.ctx.Err() != nil {
					return ErrInterrupted
				}
			}
		}
		if err := e.step(); err != nil {
			return err
		}
		if e.cfg.Progress != nil && e.stats.Instructions-e.progressAt >= 4096 {
			e.progressAt = e.stats.Instructions
			e.cfg.Progress(ProgressEvent{Instructions: e.stats.Instructions})
		}
	}
	return nil
}

// step is one iteration of Algorithm 1's main loop: select, context
// switch, execute one instruction, account forks, run peripherals,
// deliver interrupts, check hardware properties.
func (e *Engine) step() error {
	if e.stepHook != nil {
		if err := e.stepHook(); err != nil {
			return err
		}
	}
	st := e.selectNext()
	if err := e.contextSwitch(st); err != nil {
		return err
	}
	e.previous = st

	if err := e.exec.ServePendingInterrupt(st); err != nil {
		st.Status = symexec.StatusFault
		st.Err = err
		e.finish(st)
		return nil
	}

	forks, err := e.exec.Step(st)
	if err != nil {
		return fmt.Errorf("core: step state %d: %w", st.ID, err)
	}
	e.stats.Instructions++
	e.clock.Advance(vtime.VMInstruction)

	// Fork bookkeeping: each new state receives its own private
	// hardware snapshot taken now (the fork point), per Section
	// IV-B.
	for _, f := range forks {
		switch {
		case e.tgt != nil && (e.cfg.Mode == ModeHardSnap || e.cfg.Mode == ModeNaiveReboot):
			// Capture dedups against the live content: forking off
			// untouched hardware is a refcount++, not a second
			// scan-out.
			id, err := e.snapman.Capture()
			if err != nil {
				return fmt.Errorf("core: snapshot at fork: %w", err)
			}
			f.HWSnapshot = symexec.SnapshotID(id)
		case e.tgt != nil && e.cfg.Mode == ModeRecordReplay:
			// The child inherits the parent's interaction log.
			if e.ioLogs == nil {
				e.ioLogs = make(map[uint64][]ioRecord)
			}
			e.ioLogs[f.ID] = append([]ioRecord(nil), e.ioLogs[st.ID]...)
		}
		if len(e.active) >= e.cfg.MaxStates {
			f.Status = symexec.StatusBudget
			e.finished = append(e.finished, f)
			continue
		}
		e.active = append(e.active, f)
	}

	// Let the peripherals run concurrently with software, then
	// deliver any rising interrupts to the running state.
	if e.tgt != nil && st.Status == symexec.StatusRunning {
		if err := e.tgt.Advance(e.cfg.CyclesPerInstruction); err != nil {
			return err
		}
		irqs, err := e.router.RisingIRQs()
		if err != nil {
			return err
		}
		for _, n := range irqs {
			st.IRQPending |= 1 << uint(n)
		}
	}

	// Hardware property violations terminate the path that caused
	// them, carrying the violation detail and an input model.
	if e.tgt != nil {
		if violations := e.tgt.TakeViolations(); len(violations) > 0 && st.Status == symexec.StatusRunning {
			st.Status = symexec.StatusAssertFail
			st.Err = fmt.Errorf("core: %s", violations[0])
			if model, ok := e.exec.ModelFor(st); ok {
				st.Model = model
			}
			e.stats.HWViolations += len(violations)
		}
	}

	if st.Status != symexec.StatusRunning {
		e.finish(st)
	}
	return nil
}

// finalize marks budget-exhausted leftovers, releases their
// snapshots, and assembles the report.
func (e *Engine) finalize(start time.Duration) *Report {
	if e.router != nil {
		// Drain any coalescing ports so the clock and the target
		// counters below reflect every queued operation. A flush
		// failure here cannot change the verdicts (the run already
		// completed); it only leaves the final counters short.
		_ = e.router.Flush()
	}
	for _, st := range e.active {
		if st.Status == symexec.StatusRunning {
			st.Status = symexec.StatusBudget
		}
		e.finished = append(e.finished, st)
		if st.HWSnapshot != 0 {
			e.snaps.Release(snapshot.ID(st.HWSnapshot))
		}
	}
	e.active = nil

	rep := &Report{
		Finished:    e.finished,
		Stats:       e.stats,
		VirtualTime: e.clock.Now() - start,
		Exec:        e.exec.Stats,
		Solver:      e.exec.Solver.Stats,
	}
	if e.tgt != nil {
		ts := e.tgt.Stats()
		rep.Snapshots = SnapshotTraffic{
			Manager:       e.snapman.Stats(),
			Store:         e.snaps.Stats(),
			HWSaves:       ts.Snapshots,
			HWRestores:    ts.Restores,
			DeltaRestores: ts.DeltaRestores,
			BytesMoved:    ts.SnapshotBytes,
			SnapshotTime:  ts.SnapshotTime,
		}
	}
	if e.exec.Solver.Cache != nil {
		rep.SolverCache = e.exec.Solver.Cache.Stats()
	}
	return rep
}
