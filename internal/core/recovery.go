// Crash-safety primitives for parallel exploration: the recovery
// counters threaded through Report, and the deterministic chaos
// schedule the tests and E14 use to prove the supervision machinery
// preserves results under fire.
package core

import (
	"errors"
	"math/rand"
	"time"
)

// ErrInterrupted reports a run stopped by context cancellation (user
// interrupt) or by a simulated process death (ChaosSchedule.
// DieAfterSubtrees). When campaign journaling is enabled the journal
// is flushed first, so the run can be continued with Config.Resume.
var ErrInterrupted = errors.New("core: run interrupted")

// RecoveryStats summarizes supervision and crash-recovery activity
// during a parallel run. An undisturbed run reports all zeros (except
// the journal counters when journaling is enabled).
type RecoveryStats struct {
	// WorkerRestarts counts replacement workers spawned after a worker
	// died (panic, fatal target error, heartbeat deposition).
	WorkerRestarts uint64
	// Requeues counts in-flight subtrees returned to the work queue
	// after their worker failed.
	Requeues uint64
	// PanicsRecovered counts worker panics absorbed by the supervisor.
	PanicsRecovered uint64
	// HeartbeatDeaths counts workers deposed because their heartbeat
	// stalled past Config.HeartbeatTimeout.
	HeartbeatDeaths uint64
	// FailoverEvents counts recoveries where exploration continued on a
	// re-established vehicle: a subtree re-seeded onto a fresh rig
	// after its original failed, or a severed remote link redialed.
	FailoverEvents uint64
	// ResumedSubtrees counts subtree results replayed from a campaign
	// journal instead of re-explored (Config.Resume).
	ResumedSubtrees int
	// JournalRecords / JournalBytes measure campaign journal output.
	JournalRecords uint64
	JournalBytes   uint64
	// JournalWall is the host time spent encoding, appending, syncing
	// and compacting the campaign journal — the direct measurement
	// behind E14's overhead figure (wall-clock A/B can't resolve a
	// cost this small above host noise).
	JournalWall time.Duration
	// RecoveryWall is the real (host) time spent waiting out restart
	// backoff and rebuilding replacement rigs. It is wall time, not
	// virtual time: recovery never charges the modeled hardware clock,
	// which is how chaos runs keep virtual-time identity.
	RecoveryWall time.Duration
}

// ChaosSchedule is a deterministic, seedable failure injector for
// parallel runs — the exploration-layer sibling of target.
// FaultSchedule. Events are planned per subtree index (never per
// physical worker or claim order), and only a subtree's first attempt
// is targeted, so a chaos run remains a pure function of the seed and
// its recovery must converge to the undisturbed result.
type ChaosSchedule struct {
	// Seed initializes the per-subtree event PRNG.
	Seed int64
	// PanicRate is the probability a subtree's first attempt panics
	// mid-run (exercises supervisor panic recovery).
	PanicRate float64
	// KillRate is the probability a subtree's first attempt dies with
	// a fatal worker error (exercises requeue + replacement spawn).
	KillRate float64
	// HangRate is the probability a subtree's first attempt stops
	// making progress (exercises heartbeat deposition; requires
	// Config.HeartbeatInterval, defaulted when this rate is set).
	HangRate float64
	// SeverRate is the probability a subtree's first attempt severs
	// its target link mid-run. Only meaningful for targets that
	// support link severing (remote clients); otherwise a no-op.
	SeverRate float64
	// MeanSteps centers the step at which the event fires (default
	// 40): events land mid-subtree, after real work has happened.
	MeanSteps uint64
	// DieAfterSubtrees, when > 0, simulates whole-process death
	// (SIGKILL) after that many subtree completions in this process:
	// the run stops with ErrInterrupted, leaving exactly the journal a
	// killed process would leave. Resume runs should clear this.
	DieAfterSubtrees int
}

type chaosEvent int

const (
	chaosNone chaosEvent = iota
	chaosPanic
	chaosKill
	chaosHang
	chaosSever
)

// plan decides the event (and the subtree step it fires at) for one
// attempt at one subtree. Deterministic in (Seed, idx); attempts
// after the first are never targeted, so recovery always converges.
func (c *ChaosSchedule) plan(idx, attempt int) (chaosEvent, uint64) {
	if c == nil || attempt > 0 {
		return chaosNone, 0
	}
	rng := rand.New(rand.NewSource(c.Seed<<20 ^ int64(idx)*2654435761))
	u := rng.Float64()
	mean := c.MeanSteps
	if mean == 0 {
		mean = 40
	}
	at := 1 + uint64(rng.Int63n(int64(2*mean)))
	switch {
	case u < c.PanicRate:
		return chaosPanic, at
	case u < c.PanicRate+c.KillRate:
		return chaosKill, at
	case u < c.PanicRate+c.KillRate+c.HangRate:
		return chaosHang, at
	case u < c.PanicRate+c.KillRate+c.HangRate+c.SeverRate:
		return chaosSever, at
	}
	return chaosNone, 0
}

// linkSeverer is implemented by targets whose transport can be cut
// mid-run and re-established (remote protocol clients). The chaos
// harness severs through this seam; recovery is the client's own
// redial + re-attach machinery.
type linkSeverer interface {
	SeverLink() error
}

// restartBackoff is the bounded exponential delay before spawning the
// gen-th replacement worker: failures that kill workers repeatedly
// (a dead farm node) back off instead of hot-looping target spawns.
func restartBackoff(gen int) time.Duration {
	shift := gen - 1
	if shift > 6 {
		shift = 6
	}
	return time.Millisecond << uint(shift)
}
