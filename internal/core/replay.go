package core

import (
	"fmt"

	"hardsnap/internal/bus"
	"hardsnap/internal/isa"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vm"
	"hardsnap/internal/vtime"
)

// ReplayResult is the outcome of concretely re-executing a symbolic
// path's test vector.
type ReplayResult struct {
	// Stop is the concrete VM's stop reason.
	Stop vm.StopReason
	// PC is the final program counter.
	PC uint32
	// Console is the concrete run's console output.
	Console []byte
	// Vector is the injected test vector (per make-symbolic tag).
	Vector map[uint32][]byte
	// Reproduced reports whether the concrete outcome matches the
	// symbolic state's status (crash reproduction succeeded).
	Reproduced bool
}

// statusMatches maps symbolic statuses to the concrete stop reasons
// that reproduce them.
func statusMatches(sym symexec.Status, concrete vm.StopReason) bool {
	switch sym {
	case symexec.StatusHalted:
		return concrete == vm.StopHalt
	case symexec.StatusAborted:
		return concrete == vm.StopAbort
	case symexec.StatusAssertFail:
		return concrete == vm.StopAssertFail
	case symexec.StatusFault:
		return concrete == vm.StopFault
	}
	return false
}

// Replay extracts a test vector from a finished symbolic state and
// re-executes it concretely against fresh hardware — the paper's
// crash-reproduction / test-case-generation workflow. The analysis'
// own hardware is not disturbed: a new target instance is built from
// the same configuration.
func (a *Analysis) Replay(st *symexec.State) (*ReplayResult, error) {
	vector, ok := a.Exec.TestVector(st)
	if !ok {
		return nil, fmt.Errorf("core: state %d has an infeasible path condition", st.ID)
	}
	return a.ReplayVector(st, vector)
}

// ReplayVector re-executes an explicit test vector concretely and
// compares the outcome against the symbolic state's status.
func (a *Analysis) ReplayVector(st *symexec.State, vector map[uint32][]byte) (*ReplayResult, error) {
	clock := &vtime.Clock{}
	var tgt *target.Target
	var router *bus.Router
	var err error
	if len(a.config.Peripherals) > 0 {
		if a.config.FPGA {
			tgt, err = target.NewFPGA("replay-fpga", clock, a.config.Peripherals, a.config.Readback)
		} else {
			tgt, err = target.NewSimulator("replay-sim", clock, a.config.Peripherals)
		}
		if err != nil {
			return nil, err
		}
	}

	cpu := vm.New(a.Exec.Config().VM, nil)
	if tgt != nil {
		mmioBase := a.Exec.Config().VM.MMIOBase
		regions := make([]bus.Region, 0, len(a.config.Peripherals))
		for i, pc := range a.config.Peripherals {
			port, err := tgt.Port(pc.Name)
			if err != nil {
				return nil, err
			}
			regions = append(regions, bus.Region{
				Name: pc.Name,
				Base: mmioBase + uint32(i)*PeriphRegionSize,
				Size: PeriphRegionSize,
				IRQ:  i,
				Port: port,
			})
		}
		router, err = bus.NewRouter(regions)
		if err != nil {
			return nil, err
		}
		cpu = vm.New(a.Exec.Config().VM, router)
	}
	if err := cpu.Load(a.Program); err != nil {
		return nil, err
	}
	cpu.OnEcall = func(c *vm.CPU, service int32) bool {
		if service != isa.EcallMakeSymbolic {
			return false
		}
		addr, length, tag := c.Regs[1], c.Regs[2], c.Regs[3]
		buf := vector[tag]
		for i := uint32(0); i < length; i++ {
			var b byte
			if int(i) < len(buf) {
				b = buf[i]
			}
			if err := c.WriteMem(addr+i, 1, uint32(b)); err != nil {
				c.Stop = vm.StopFault
				c.Fault = err
				return true
			}
		}
		return true
	}

	budget := st.Steps*4 + 10_000
	var steps uint64
	for cpu.Stop == vm.StopNone && steps < budget {
		if !cpu.Step() {
			break
		}
		steps++
		if tgt != nil {
			if err := tgt.Advance(1); err != nil {
				return nil, err
			}
			irqs, err := router.RisingIRQs()
			if err != nil {
				return nil, err
			}
			for _, n := range irqs {
				cpu.RaiseIRQ(n)
			}
		}
	}
	if cpu.Stop == vm.StopNone {
		cpu.Stop = vm.StopBudget
	}
	return &ReplayResult{
		Stop:       cpu.Stop,
		PC:         cpu.PC,
		Console:    append([]byte(nil), cpu.Console...),
		Vector:     vector,
		Reproduced: statusMatches(st.Status, cpu.Stop),
	}, nil
}
