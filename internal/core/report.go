package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hardsnap/internal/snapshot"
	"hardsnap/internal/symexec"
)

// WriteCrashReports materializes one directory per bug under dir:
//
//	bug-<id>/
//	  report.txt    status, PC, path constraints count, console, model
//	  vector-<tag>  raw test-case bytes per make-symbolic tag
//	  hardware.snap serialized hardware snapshot (when retained)
//
// It returns the number of reports written. Replay a vector with
// Analysis.ReplayVector, or decode hardware.snap with snapshot.Decode.
func (a *Analysis) WriteCrashReports(dir string, rep *Report) (int, error) {
	bugs := rep.Bugs()
	if len(bugs) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	written := 0
	for _, bug := range bugs {
		sub := filepath.Join(dir, fmt.Sprintf("bug-%d", bug.ID))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return written, err
		}
		if err := a.writeOneReport(sub, bug); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

func (a *Analysis) writeOneReport(dir string, bug *symexec.State) error {
	var b strings.Builder
	fmt.Fprintf(&b, "status: %v\n", bug.Status)
	fmt.Fprintf(&b, "pc: %#x\n", bug.PC)
	fmt.Fprintf(&b, "steps: %d\n", bug.Steps)
	fmt.Fprintf(&b, "path constraints: %d\n", len(bug.Constraints))
	if bug.Err != nil {
		fmt.Fprintf(&b, "detail: %v\n", bug.Err)
	}
	if len(bug.Console) > 0 {
		fmt.Fprintf(&b, "console: %q\n", bug.Console)
	}
	if bug.Model != nil {
		names := make([]string, 0, len(bug.Model))
		for n := range bug.Model {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("model:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %s = %#x\n", n, bug.Model[n])
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "report.txt"), []byte(b.String()), 0o644); err != nil {
		return err
	}

	if vector, ok := a.Exec.TestVector(bug); ok {
		for tag, bytes := range vector {
			name := filepath.Join(dir, fmt.Sprintf("vector-%d", tag))
			if err := os.WriteFile(name, bytes, 0o644); err != nil {
				return err
			}
		}
	}

	if rec, ok := a.Engine.BugSnapshot(bug.ID); ok {
		data, err := snapshot.Encode(rec)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "hardware.snap"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
