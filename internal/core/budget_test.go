package core

import (
	"path/filepath"
	"testing"
	"time"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// TestVirtualTimeBudget: a run capped at half the uncapped virtual
// time must stop at a scheduling boundary near the cap, with leftover
// states finished as StatusBudget.
func TestVirtualTimeBudget(t *testing.T) {
	setup := SetupConfig{
		Firmware:    scalingFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:            ModeHardSnap,
			Searcher:        symexec.BFS{},
			MaxInstructions: 1_000_000,
		},
	}
	_, free := run(t, setup)
	if free.VirtualTime == 0 {
		t.Fatal("uncapped run consumed no virtual time")
	}

	cap := free.VirtualTime / 2
	setup.Engine.MaxVirtualTime = cap
	_, capped := run(t, setup)
	if capped.CountStatus(symexec.StatusBudget) == 0 {
		t.Fatalf("no budget-killed states (vt %v, cap %v)", capped.VirtualTime, cap)
	}
	if len(capped.Finished) >= len(free.Finished) {
		t.Fatalf("cap did not shrink the run: %d paths vs %d uncapped",
			len(capped.Finished), len(free.Finished))
	}
	// The budget is checked between steps, so overshoot is bounded by
	// one step's cost — far less than the remaining half of the run.
	if capped.VirtualTime >= free.VirtualTime {
		t.Fatalf("capped vt %v not below uncapped %v", capped.VirtualTime, free.VirtualTime)
	}
}

// TestSolverQueryBudget mirrors the virtual-time gate for solver
// queries.
func TestSolverQueryBudget(t *testing.T) {
	setup := SetupConfig{
		Firmware: scalingFirmware,
		Engine: Config{
			Searcher:        symexec.BFS{},
			MaxInstructions: 1_000_000,
		},
	}
	_, free := run(t, setup)
	if free.Solver.Queries == 0 {
		t.Fatal("uncapped run issued no solver queries")
	}

	cap := uint64(free.Solver.Queries) / 2
	setup.Engine.MaxSolverQueries = cap
	_, capped := run(t, setup)
	if capped.CountStatus(symexec.StatusBudget) == 0 {
		t.Fatal("no budget-killed states under solver cap")
	}
	if uint64(capped.Solver.Queries) >= uint64(free.Solver.Queries) {
		t.Fatalf("capped queries %d not below uncapped %d",
			capped.Solver.Queries, free.Solver.Queries)
	}
}

// TestVirtualTimeBudgetParallel: the cap also binds fan-out subtrees
// (each independently receives the post-seed remainder, like
// MaxInstructions).
func TestVirtualTimeBudgetParallel(t *testing.T) {
	setup := chaosSetup(nil, "", nil, symexec.BFS{})
	_, free := run(t, setup)

	setup.Engine.MaxVirtualTime = free.VirtualTime / 4
	_, capped := run(t, setup)
	if capped.CountStatus(symexec.StatusBudget) == 0 {
		t.Fatal("parallel run ignored the virtual-time cap")
	}
	if len(capped.Finished) >= len(free.Finished) {
		t.Fatalf("parallel cap did not shrink the run: %d vs %d paths",
			len(capped.Finished), len(free.Finished))
	}
}

// TestBudgetsInFingerprint: budget knobs shape the outcome, so resume
// must reject a journal recorded under different budgets.
func TestBudgetsInFingerprint(t *testing.T) {
	base := Config{}
	vt := base
	vt.MaxVirtualTime = time.Second
	q := base
	q.MaxSolverQueries = 10
	if base.runFingerprint() == vt.runFingerprint() {
		t.Error("MaxVirtualTime not in run fingerprint")
	}
	if base.runFingerprint() == q.runFingerprint() {
		t.Error("MaxSolverQueries not in run fingerprint")
	}
}

// TestJournalIntervalResolution pins the zero-value contract: 0 keeps
// the defaults, negatives mean every completion.
func TestJournalIntervalResolution(t *testing.T) {
	for _, tc := range []struct {
		set, syncWant, compactWant int
	}{
		{0, syncEvery, compactEvery},
		{-1, 1, 1},
		{7, 7, 7},
	} {
		c := Config{JournalSyncEvery: tc.set, JournalCompactEvery: tc.set}
		if got := c.journalSyncEvery(); got != tc.syncWant {
			t.Errorf("JournalSyncEvery=%d: sync interval %d, want %d", tc.set, got, tc.syncWant)
		}
		if got := c.journalCompactEvery(); got != tc.compactWant {
			t.Errorf("JournalCompactEvery=%d: compact interval %d, want %d", tc.set, got, tc.compactWant)
		}
	}
}

// TestJournalIntervalIdentity: sync/compaction cadence is a
// durability knob, never a results knob — an every-completion
// journaled campaign fingerprints identically to the default cadence,
// and its journal still resumes.
func TestJournalIntervalIdentity(t *testing.T) {
	_, clean := run(t, chaosSetup(nil, "", nil, symexec.BFS{}))
	want := Fingerprint(clean)

	jpath := filepath.Join(t.TempDir(), "campaign.hsj")
	setup := chaosSetup(nil, jpath, nil, symexec.BFS{})
	setup.Engine.JournalSyncEvery = -1
	setup.Engine.JournalCompactEvery = -1
	_, rep := run(t, setup)
	if got := Fingerprint(rep); got != want {
		t.Fatalf("eager-journal run diverged: %s vs %s", got, want)
	}

	cam, err := LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !cam.Complete {
		t.Fatal("journal not marked complete")
	}

	// Kill an eager-journal campaign mid-run and resume it: the
	// every-completion cadence must leave a resumable journal too.
	jpath2 := filepath.Join(t.TempDir(), "killed.hsj")
	killed := chaosSetup(&ChaosSchedule{DieAfterSubtrees: 3}, jpath2, nil, symexec.BFS{})
	killed.Engine.JournalSyncEvery = -1
	killed.Engine.JournalCompactEvery = -1
	a, err := Setup(killed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine.Run(); err == nil {
		t.Fatal("chaos kill did not interrupt the run")
	}
	cam2, err := LoadCampaign(jpath2)
	if err != nil {
		t.Fatal(err)
	}
	resumed := chaosSetup(nil, jpath2, cam2, symexec.BFS{})
	resumed.Engine.JournalSyncEvery = -1
	resumed.Engine.JournalCompactEvery = -1
	_, rep2 := run(t, resumed)
	if got := Fingerprint(rep2); got != want {
		t.Fatalf("resume of eager journal diverged: %s vs %s", got, want)
	}
}
