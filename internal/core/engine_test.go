package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

func run(t *testing.T, cfg SetupConfig) (*Analysis, *Report) {
	t.Helper()
	a, err := Setup(cfg)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	rep, err := a.Engine.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return a, rep
}

func TestSoftwareOnlyRun(t *testing.T) {
	_, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		beq r4, r0, even
		halt
even:
		halt
		`,
	})
	if len(rep.Finished) != 2 {
		t.Fatalf("paths: %d", len(rep.Finished))
	}
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("halted: %d", rep.CountStatus(symexec.StatusHalted))
	}
}

const timerIRQFirmware = `
_start:
		la r1, handler
		li r2, 0xFC0
		sw r1, 0(r2)
		li r8, 0x40000000
		addi r4, r0, 30
		sw r4, 0(r8)      ; LOAD = 30
		addi r4, r0, 3
		sw r4, 8(r8)      ; CTRL = enable | irq_en
wait:
		beq r9, r0, wait
		halt
handler:
		addi r9, r0, 1
		addi r4, r0, 1
		sw r4, 12(r8)     ; clear expired
		mret
`

func TestHardwareIRQDelivery(t *testing.T) {
	_, rep := run(t, SetupConfig{
		Firmware:    timerIRQFirmware,
		Peripherals: []target.PeriphConfig{{Name: "timer0", Periph: "timer"}},
		Engine:      Config{MaxInstructions: 20000},
	})
	if len(rep.Finished) != 1 {
		t.Fatalf("paths: %d", len(rep.Finished))
	}
	st := rep.Finished[0]
	if st.Status != symexec.StatusHalted {
		t.Fatalf("status %v (err %v, pc %#x)", st.Status, st.Err, st.PC)
	}
}

// consistencyFirmware reproduces the motivation example of Fig. 1: two
// execution paths drive the same peripheral with different values and
// assert their own value reads back.
const consistencyFirmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		li r8, 0x40000000
		beq r4, r0, pathB
pathA:
		li r5, 0xAAAA
		sw r5, 0(r8)
		nop
		nop
		nop
		nop
		lw r6, 0(r8)
		sub r1, r6, r5
		sltiu r1, r1, 1
		ecall 2           ; assert readback == written
		halt
pathB:
		li r5, 0x5555
		sw r5, 0(r8)
		nop
		nop
		nop
		nop
		lw r6, 0(r8)
		sub r1, r6, r5
		sltiu r1, r1, 1
		ecall 2
		halt
`

func consistencyRun(t *testing.T, mode Mode) *Report {
	t.Helper()
	_, rep := run(t, SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:            mode,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 100000,
		},
	})
	return rep
}

func TestConsistencyHardSnap(t *testing.T) {
	rep := consistencyRun(t, ModeHardSnap)
	if n := len(rep.Bugs()); n != 0 {
		t.Fatalf("HardSnap mode must have no false positives, got %d", n)
	}
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("both paths should complete: %+v", rep.Stats)
	}
	if rep.Stats.ContextSwitches == 0 {
		t.Fatal("round-robin must context switch")
	}
}

func TestConsistencyNaiveSharedCorrupts(t *testing.T) {
	rep := consistencyRun(t, ModeNaiveShared)
	if n := len(rep.Bugs()); n == 0 {
		t.Fatal("shared hardware with interleaved paths must corrupt at least one path (false positive)")
	}
}

func TestConsistencyNaiveRebootCorrect(t *testing.T) {
	rep := consistencyRun(t, ModeNaiveReboot)
	if n := len(rep.Bugs()); n != 0 {
		t.Fatalf("reboot mode is consistent; got %d false positives", n)
	}
	if rep.Stats.Reboots == 0 {
		t.Fatal("reboot mode should have rebooted")
	}
}

func TestRebootSlowerThanHardSnap(t *testing.T) {
	fast := consistencyRun(t, ModeHardSnap)
	slow := consistencyRun(t, ModeNaiveReboot)
	if slow.VirtualTime <= fast.VirtualTime {
		t.Fatalf("reboot (%v) should cost more virtual time than HardSnap (%v)",
			slow.VirtualTime, fast.VirtualTime)
	}
}

func TestForkSnapshotIsolation(t *testing.T) {
	// Fork AFTER hardware was programmed: both paths must observe the
	// pre-fork hardware value, then their own modifications.
	_, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r8, 0x40000000
		li r5, 0x1111
		sw r5, 0(r8)      ; shared prefix programs hardware
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		beq r4, r0, two
one:
		lw r6, 0(r8)
		li r7, 0x1111
		sub r1, r6, r7
		sltiu r1, r1, 1
		ecall 2
		li r5, 0x2222
		sw r5, 0(r8)
		lw r6, 0(r8)
		sub r1, r6, r5
		sltiu r1, r1, 1
		ecall 2
		halt
two:
		lw r6, 0(r8)
		li r7, 0x1111
		sub r1, r6, r7
		sltiu r1, r1, 1
		ecall 2
		li r5, 0x3333
		sw r5, 0(r8)
		lw r6, 0(r8)
		sub r1, r6, r5
		sltiu r1, r1, 1
		ecall 2
		halt
		`,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:            ModeHardSnap,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 100000,
		},
	})
	if n := len(rep.Bugs()); n != 0 {
		bug := rep.Bugs()[0]
		t.Fatalf("fork isolation broken: %d bugs (pc %#x)", n, bug.PC)
	}
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("paths: %+v", rep.Stats)
	}
}

func TestFPGATargetEngine(t *testing.T) {
	_, rep := run(t, SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		FPGA:        true,
		Engine: Config{
			Mode:            ModeHardSnap,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 100000,
		},
	})
	if n := len(rep.Bugs()); n != 0 {
		t.Fatalf("FPGA-backed HardSnap must be consistent too, got %d bugs", n)
	}
}

func TestInstructionBudget(t *testing.T) {
	_, rep := run(t, SetupConfig{
		Firmware: "loop: j loop",
		Engine:   Config{MaxInstructions: 100},
	})
	if rep.Stats.Instructions != 100 {
		t.Fatalf("instructions: %d", rep.Stats.Instructions)
	}
	if rep.CountStatus(symexec.StatusBudget) != 1 {
		t.Fatal("state should be budget-killed")
	}
}

func TestBugModelExtraction(t *testing.T) {
	// The classic magic-value crash: only input 0x42 aborts.
	_, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 9
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 0x42
		bne r4, r5, safe
		abort
safe:
		halt
		`,
	})
	bugs := rep.Bugs()
	if len(bugs) != 1 {
		t.Fatalf("bugs: %d", len(bugs))
	}
	if bugs[0].Model == nil || bugs[0].Model["sym9_0"] != 0x42 {
		t.Fatalf("bug model: %v", bugs[0].Model)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	a, rep := run(t, SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:            ModeHardSnap,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 100000,
		},
	})
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatal("run incomplete")
	}
	if live := a.Engine.Snapshots().Live(); live != 0 {
		t.Fatalf("leaked %d snapshots", live)
	}
}

func TestConsistencyRecordReplay(t *testing.T) {
	rep := consistencyRun(t, ModeRecordReplay)
	if n := len(rep.Bugs()); n != 0 {
		t.Fatalf("record-replay should be consistent here, got %d false positives", n)
	}
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("paths: %+v", rep.Stats)
	}
	if rep.Stats.ReplayedIO == 0 {
		t.Fatal("no interactions replayed")
	}
}

func TestRecordReplayCostGrowsWithInteractions(t *testing.T) {
	// A path with many interactions pays more per context switch than
	// HardSnap's O(state-bits) snapshot: the paper's argument against
	// record-and-replay (Talebi et al.: 8800 I/Os just for driver
	// init).
	mkFirmware := func(n int) string {
		src := `
_start:
		li r8, 0x40000000
		addi r9, r0, ` + fmt.Sprintf("%d", n) + `
ioloop:
		sw r9, 0(r8)
		lw r4, 0(r8)
		addi r9, r9, -1
		bne r9, r0, ioloop
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		beq r4, r0, b
		nop
b:
		sw r4, 0(r8)
		lw r5, 0(r8)
		halt
`
		return src
	}
	timeFor := func(mode Mode, n int) time.Duration {
		a, err := Setup(SetupConfig{
			Firmware:    mkFirmware(n),
			Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
			FPGA:        true,
			Engine: Config{
				Mode:            mode,
				Searcher:        &symexec.RoundRobin{},
				MaxInstructions: 1_000_000,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.Engine.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.CountStatus(symexec.StatusHalted); got != 2 {
			t.Fatalf("mode %v: halted %d", mode, got)
		}
		return rep.VirtualTime
	}
	rrShort := timeFor(ModeRecordReplay, 10)
	rrLong := timeFor(ModeRecordReplay, 200)
	hsLong := timeFor(ModeHardSnap, 200)
	if rrLong <= rrShort {
		t.Fatalf("replay cost should grow with interactions: %v vs %v", rrShort, rrLong)
	}
	if rrLong <= hsLong {
		t.Fatalf("record-replay (%v) should cost more than HardSnap (%v) for I/O-heavy paths", rrLong, hsLong)
	}
}

func TestRecordReplayLogLifecycle(t *testing.T) {
	a, rep := run(t, SetupConfig{
		Firmware:    consistencyFirmware,
		Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
		Engine: Config{
			Mode:            ModeRecordReplay,
			Searcher:        &symexec.RoundRobin{},
			MaxInstructions: 1_000_000,
		},
	})
	if rep.CountStatus(symexec.StatusHalted) != 2 {
		t.Fatalf("paths: %+v", rep.Stats)
	}
	if n := len(a.Engine.ioLogs); n != 0 {
		t.Fatalf("leaked %d I/O logs", n)
	}
}

func TestHardwareAssertionFindsMisuse(t *testing.T) {
	// The firmware writes an input-derived value to the GPIO; a
	// hardware property forbids the value 0xBAD. Symbolic execution
	// plus the HW assertion finds the exact input that misuses the
	// peripheral — the paper's "test vectors to test hardware".
	a, rep := run(t, SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		li r8, 0x40000000
		; a "command dispatcher": command 0xAD programs mode 0xBAD
		addi r5, r0, 0xAD
		bne r4, r5, normal
		li r6, 0xBAD
		sw r6, 0(r8)
		j out
normal:
		sw r4, 0(r8)
out:
		nop
		nop
		halt
		`,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		HWAssertions: []target.HWAssertion{
			{Periph: "gpio0", Name: "forbidden-value", Expr: "out != 32'hBAD"},
		},
		Engine: Config{MaxInstructions: 200000},
	})
	if rep.Stats.HWViolations == 0 {
		t.Fatal("hardware violation not detected")
	}
	var hit *symexec.State
	for _, st := range rep.Finished {
		if st.Status == symexec.StatusAssertFail {
			hit = st
		}
	}
	if hit == nil {
		t.Fatal("no path flagged for the violation")
	}
	if hit.Err == nil || !strings.Contains(hit.Err.Error(), "forbidden-value") {
		t.Fatalf("violation detail missing: %v", hit.Err)
	}
	// The test vector drives the hardware into the forbidden state.
	vec, ok := a.Exec.TestVector(hit)
	if !ok {
		t.Fatal("no test vector")
	}
	if vec[1][0] != 0xAD {
		t.Fatalf("test vector %#x, want the 0xAD command", vec[1][0])
	}
}

func TestUARTInterruptDrivenFirmware(t *testing.T) {
	// Interrupt-driven RX: firmware transmits over loopback and the
	// RX-available IRQ handler collects the byte, across two
	// peripherals (uart irq 0, timer irq 1 unused).
	_, rep := run(t, SetupConfig{
		Firmware: `
_start:
		la r1, on_rx
		li r2, 0xFC0       ; vector for IRQ 0 (uart0)
		sw r1, 0(r2)
		li r8, 0x40000000
		addi r4, r0, 3     ; loopback + irq_en_rx
		sw r4, 8(r8)
		addi r4, r0, 0x5A
		sw r4, 0(r8)       ; transmit
wait:
		beq r9, r0, wait   ; r9 set by the handler
		addi r5, r0, 0x5A
		sub r1, r9, r5
		sltiu r1, r1, 1
		ecall 2            ; handler must have captured 0x5A
		halt
on_rx:
		lw r9, 0(r8)       ; pop the byte (clears rx_avail -> irq)
		mret
		`,
		Peripherals: []target.PeriphConfig{
			{Name: "uart0", Periph: "uart"},
			{Name: "timer0", Periph: "timer"},
		},
		Engine: Config{MaxInstructions: 100000},
	})
	if len(rep.Finished) != 1 {
		t.Fatalf("paths: %d", len(rep.Finished))
	}
	st := rep.Finished[0]
	if st.Status != symexec.StatusHalted {
		t.Fatalf("status %v (err %v, pc %#x, steps %d)", st.Status, st.Err, st.PC, st.Steps)
	}
}
