// Frontier decomposition: the exported seam between the parallel
// engine and external subtree drivers — most importantly the
// distributed driver in internal/dist, which fans the same fan-out
// seeds this file produces out to remote nodes instead of local
// goroutines.
//
// The seam exists because of one load-bearing property, established in
// PR 3 and exploited by PR 6's resume: the serial seed phase is a
// deterministic, cheap-to-re-run function of the job, and every
// subtree result is a pure function of its seed index. A remote node
// therefore never needs a serialized symbolic state (constraint-term
// DAGs are deliberately not wire-portable): it re-runs the seed phase
// itself, proves via FrontierID that it landed on byte-identical
// seeds — including the sha256 digests of the seed hardware
// snapshots, so the subtree handoff ships a digest, not state bytes —
// and then accepts bare subtree indexes as work items.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hardsnap/internal/journal"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/solver"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// Frontier is the outcome of the deterministic seed phase: the
// fan-out seeds plus the per-subtree budget remainders, ready to run
// subtrees on demand. The zero value is not usable; build one with
// Engine.Frontier. A Frontier is safe for concurrent RunSubtree calls
// (each acquires a private rig from an internal pool).
type Frontier struct {
	e            *Engine
	seeds        []*symexec.State
	seedMaxID    uint64
	budget       uint64
	vtBudget     time.Duration
	solverBudget uint64
	liveHW       target.State
	liveEdges    []bool
	start        time.Duration
	seedVT       time.Duration
	hdr          campaignHeader
	done         *Report

	// spawnMu serializes rig building: worker spawns go through the
	// primary target, which (remote clients especially) is not safe
	// for concurrent use.
	spawnMu sync.Mutex

	mu     sync.Mutex
	free   []*workerRig
	rigSeq int
	closed bool
}

// Frontier runs the serial seed phase (phase 1 of a parallel run) and
// returns the resulting frontier decomposition. When the tree drains
// or a budget dies before the fan-out width is reached, the serial
// result IS the run's result: Done returns it and there are no seeds.
//
// The engine must be freshly set up (no prior Run); Config.Workers
// sets the fan-out width and the virtual-time merge schedule, exactly
// as in a local parallel run — a distributed driver keeps Workers at
// the job's value so an N-node run merges to the same report as a
// 1-node run.
func (e *Engine) Frontier(ctx context.Context) (*Frontier, error) {
	e.ctx = ctx
	if err := ctx.Err(); err != nil {
		return nil, ErrInterrupted
	}
	start := e.clock.Now()
	e.vtStart = start
	e.initActive()

	fanout := seedFanout(e.cfg.SeedFanout, e.cfg.Workers, e.cfg.MaxStates)
	if err := e.loop(func() bool { return len(e.active) >= fanout }); err != nil {
		return nil, err
	}
	f := &Frontier{e: e, start: start}
	if len(e.active) == 0 || e.stats.Instructions >= e.cfg.MaxInstructions || e.budgetExhausted() {
		f.done = e.finalize(start)
		return f, nil
	}

	// Make every seed self-contained. The live hardware still belongs
	// to the last-scheduled state; in snapshotting modes its slot must
	// be synced before anyone else restores over the hardware.
	if e.tgt != nil && e.previous != nil &&
		(e.cfg.Mode == ModeHardSnap || e.cfg.Mode == ModeNaiveReboot) {
		if err := e.saveCurrent(e.previous); err != nil {
			return nil, fmt.Errorf("core: fan-out sync: %w", err)
		}
	}
	// Naive-shared has no per-state snapshots: capture the live state
	// once (an honest one-time transfer charge) and seed every worker
	// clone with it.
	if e.tgt != nil && e.cfg.Mode == ModeNaiveShared {
		var err error
		f.liveHW, err = e.tgt.Save()
		if err != nil {
			return nil, fmt.Errorf("core: fan-out save: %w", err)
		}
		f.liveEdges = e.router.IRQEdgeState()
	}

	f.seeds = e.active
	e.active = nil
	e.previous = nil
	f.budget = e.cfg.MaxInstructions - e.stats.Instructions
	f.seedMaxID = e.exec.NextID()
	f.seedVT = e.clock.Now() - start
	// Like the instruction budget, each subtree independently gets
	// what is left of the virtual-time and solver-query budgets after
	// the seed phase (budgetExhausted above guarantees both are
	// positive when capped).
	if e.cfg.MaxVirtualTime > 0 {
		f.vtBudget = e.cfg.MaxVirtualTime - f.seedVT
	}
	if e.cfg.MaxSolverQueries > 0 {
		f.solverBudget = e.cfg.MaxSolverQueries - uint64(e.exec.Solver.Stats.Queries)
	}
	f.hdr = campaignHeader{
		Fingerprint:      e.cfg.runFingerprint(),
		Workers:          e.cfg.Workers,
		Seeds:            len(f.seeds),
		SeedsHash:        seedsHash(f.seeds),
		SeedMaxID:        f.seedMaxID,
		SeedFinished:     len(e.finished),
		SeedInstructions: e.stats.Instructions,
	}
	return f, nil
}

// Done returns the completed report when the run finished inside the
// seed phase (nil otherwise: the frontier has seeds to run).
func (f *Frontier) Done() *Report { return f.done }

// NumSeeds is the fan-out width (0 when Done is non-nil).
func (f *Frontier) NumSeeds() int { return len(f.seeds) }

// SeedVirtualTime is the virtual time the serial seed phase consumed.
func (f *Frontier) SeedVirtualTime() time.Duration { return f.seedVT }

// SolverCache exposes the run's shared memoized solver cache — the
// unit the distributed solver fabric replicates across nodes (see
// solver.Cache.DeltaSince / Import).
func (f *Frontier) SolverCache() *solver.Cache { return f.e.exec.Solver.Cache }

// Store exposes the run's content-addressed snapshot store. The
// distributed snapshot fabric resolves delta-frame chunk digests
// against it and adopts fetched bug records into it.
func (f *Frontier) Store() *snapshot.Store { return f.e.snaps }

// FrontierID identifies a frontier across processes: the run
// configuration fingerprint plus the full outcome of the
// deterministic seed phase, including the content digests of every
// seed's hardware snapshot. Two engines (say, a distributed driver
// and a remote node) that compute equal FrontierIDs from the same job
// hold byte-identical frontiers — seed states AND seed hardware — so
// subtree work can be handed off as a bare index with zero state
// bytes on the wire.
type FrontierID struct {
	Fingerprint      string   `json:"fingerprint"`
	Workers          int      `json:"workers"`
	Seeds            int      `json:"seeds"`
	SeedsHash        string   `json:"seedsHash"`
	SeedMaxID        uint64   `json:"seedMaxID"`
	SeedFinished     int      `json:"seedFinished"`
	SeedInstructions uint64   `json:"seedInstructions"`
	SeedSnapshots    []string `json:"seedSnapshots,omitempty"`
}

// ID returns the frontier's identity.
func (f *Frontier) ID() FrontierID {
	id := FrontierID{
		Fingerprint:      f.hdr.Fingerprint,
		Workers:          f.hdr.Workers,
		Seeds:            f.hdr.Seeds,
		SeedsHash:        f.hdr.SeedsHash,
		SeedMaxID:        f.hdr.SeedMaxID,
		SeedFinished:     f.hdr.SeedFinished,
		SeedInstructions: f.hdr.SeedInstructions,
	}
	if len(f.seeds) > 0 {
		id.SeedSnapshots = make([]string, len(f.seeds))
		for i, st := range f.seeds {
			if sid := snapshot.ID(st.HWSnapshot); sid != 0 {
				if d, ok := f.e.snaps.DigestOf(sid); ok {
					id.SeedSnapshots[i] = fmt.Sprintf("%x", d)
				}
			}
		}
	}
	return id
}

// Equal reports whether two frontier identities match exactly.
func (a FrontierID) Equal(b FrontierID) bool {
	if a.Fingerprint != b.Fingerprint || a.Workers != b.Workers ||
		a.Seeds != b.Seeds || a.SeedsHash != b.SeedsHash ||
		a.SeedMaxID != b.SeedMaxID || a.SeedFinished != b.SeedFinished ||
		a.SeedInstructions != b.SeedInstructions ||
		len(a.SeedSnapshots) != len(b.SeedSnapshots) {
		return false
	}
	for i := range a.SeedSnapshots {
		if a.SeedSnapshots[i] != b.SeedSnapshots[i] {
			return false
		}
	}
	return true
}

// Close releases the seeds' snapshot references. Call it once no more
// RunSubtree calls will start; results already produced stay valid.
func (f *Frontier) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	for _, st := range f.seeds {
		f.e.snaps.Release(snapshot.ID(st.HWSnapshot))
	}
}

// acquireRig pops a pooled rig or builds a fresh one. Rigs are
// returned by releaseRig only after a successful subtree; a rig whose
// subtree failed is discarded (its hardware state cannot be trusted).
func (f *Frontier) acquireRig() (*workerRig, error) {
	f.mu.Lock()
	if n := len(f.free); n > 0 {
		rig := f.free[n-1]
		f.free = f.free[:n-1]
		f.mu.Unlock()
		return rig, nil
	}
	f.rigSeq++
	seq := f.rigSeq
	f.mu.Unlock()

	name := ""
	if f.e.tgt != nil {
		name = fmt.Sprintf("%s-n%d", f.e.tgt.Name(), seq)
	}
	f.spawnMu.Lock()
	rig, err := f.e.buildRig(name, seq)
	f.spawnMu.Unlock()
	return rig, err
}

func (f *Frontier) releaseRig(rig *workerRig) {
	f.mu.Lock()
	f.free = append(f.free, rig)
	f.mu.Unlock()
}

// RunSubtree explores fan-out seed idx to completion on a pooled rig
// and returns its portable result. Safe for concurrent use; the
// result is a pure function of idx (see runSubtreeOn), so retries
// after failures are byte-identical.
func (f *Frontier) RunSubtree(ctx context.Context, idx int) (*SubtreeResult, error) {
	if idx < 0 || idx >= len(f.seeds) {
		return nil, fmt.Errorf("core: subtree index %d out of range [0,%d)", idx, len(f.seeds))
	}
	rig, err := f.acquireRig()
	if err != nil {
		return nil, err
	}
	res, err := f.runSubtreeOn(ctx, idx, rig, nil)
	if err != nil {
		return nil, err
	}
	f.releaseRig(rig)
	return &SubtreeResult{idx: idx, res: res}, nil
}

// runSubtreeOn explores one fan-out seed to completion on the given
// rig's private hardware and returns its contribution as deltas.
// Everything that shapes the outcome is derived from the subtree
// index — forked searcher stream, state-ID stripe, fault PRNG
// stream — never from the physical worker, claim order, attempt
// number or host, so a subtree's result is a pure function of the
// seed and recovery replays (local or on another node) are
// byte-identical.
func (f *Frontier) runSubtreeOn(wctx context.Context, idx int, rig *workerRig, hook func() error) (*subtreeResult, error) {
	e := f.e
	// The attempt runs a verbatim clone of the seed bound to its own
	// snapshot reference: a failed attempt mutates and releases only
	// its copy, leaving the original pristine for the next attempt (or
	// for a concurrent attempt by a deposed zombie's replacement).
	src := f.seeds[idx]
	seed := src.Clone()
	if orig := snapshot.ID(src.HWSnapshot); orig != 0 {
		d, ok := e.snaps.DigestOf(orig)
		if !ok {
			return nil, fmt.Errorf("core: subtree %d: seed snapshot %d missing from store", idx, orig)
		}
		id, ok := e.snaps.Adopt(d)
		if !ok {
			return nil, fmt.Errorf("core: subtree %d: seed snapshot %d no longer live", idx, orig)
		}
		seed.HWSnapshot = symexec.SnapshotID(id)
	}
	wcfg := e.cfg
	wcfg.Workers = 1
	wcfg.MaxInstructions = f.budget
	wcfg.MaxVirtualTime = f.vtBudget
	wcfg.MaxSolverQueries = f.solverBudget
	wcfg.Searcher = symexec.ForkSearcher(e.cfg.Searcher, int64(idx))
	// The nested engine is a plain serial run: no journaling, no
	// resume, no chaos of its own (chaos arrives via the step hook).
	wcfg.JournalPath = ""
	wcfg.Resume = nil
	wcfg.Chaos = nil
	wexec := e.exec.Spawn(f.seedMaxID + uint64(idx+1)*subtreeIDStride)

	if rig.tgt != nil {
		// Re-arm fault injection with a per-subtree stream so fault
		// sequences do not depend on which worker claimed the subtree.
		if sched, ok := e.tgt.FaultSchedule(); ok {
			rig.tgt.InjectFaults(sched.Derive(idx))
		}
	}
	if rig.snaps != nil {
		// Subtree boundary: drop the rig's generation/anchor knowledge
		// so this subtree's first restore is a full one regardless of
		// what ran on the rig before — its snapshot traffic, and hence
		// its virtual time, stays a pure function of the subtree.
		rig.snaps.Forget()
	}

	weng, err := newEngine(wcfg, wexec, rig.tgt, rig.router, e.snaps, rig.snaps)
	if err != nil {
		return nil, err
	}
	if e.cfg.Mode == ModeRecordReplay && e.tgt != nil {
		weng.seedIOLog(seed.ID, e.ioLogs[seed.ID])
	}
	if e.cfg.Mode == ModeNaiveShared && rig.tgt != nil {
		// Every subtree starts from the fan-out live state, mimicking
		// "everyone shares the hardware as of the fork".
		if err := rig.tgt.AdoptState(f.liveHW); err != nil {
			return nil, err
		}
		rig.router.ResetIRQEdges(f.liveEdges)
	}
	weng.SetInitialState(seed)
	weng.stepHook = hook

	var beforeTgt target.Stats
	var beforeMan SnapManagerStats
	if rig.tgt != nil {
		beforeTgt = rig.tgt.Stats()
		beforeMan = rig.snaps.Stats()
	}
	rep, err := weng.RunContext(wctx)
	if err != nil {
		return nil, err
	}
	res := &subtreeResult{rep: rep, vt: rep.VirtualTime, bugSnaps: weng.bugSnaps}
	if rig.tgt != nil {
		res.tgt = subTargetStats(rig.tgt.Stats(), beforeTgt)
		res.man = subManStats(rig.snaps.Stats(), beforeMan)
	}
	return res, nil
}

// Merge combines the seed-phase prefix with the given subtree results
// in seed order and prices the run with the deterministic greedy
// virtual-worker schedule (width Config.Workers — NOT the number of
// hosts that physically ran the subtrees, which is why an N-node
// distributed run reports byte-identical virtual time to a 1-node
// run). Missing results are skipped; call it once with every subtree
// completed for a full report.
func (f *Frontier) Merge(results []*SubtreeResult) *Report {
	rs := make([]*subtreeResult, len(f.seeds))
	for _, r := range results {
		if r == nil || r.idx < 0 || r.idx >= len(rs) {
			continue
		}
		rs[r.idx] = r.res
	}
	return f.e.merge(f.start, f.seedVT, f.e.cfg.Workers, rs)
}

// SubtreeResult is one completed subtree's portable contribution to
// the merge: finished paths (report-relevant projection only), timing
// and traffic deltas, and — under Config.KeepBugSnapshots — the
// retained hardware snapshots of buggy states. It round-trips through
// Encode/DecodeSubtreeResult (the same gob record the campaign
// journal uses), which is how it crosses the distributed wire.
type SubtreeResult struct {
	idx int
	res *subtreeResult
}

// Index is the subtree's seed index.
func (r *SubtreeResult) Index() int { return r.idx }

// VirtualTime is the subtree's virtual-time contribution.
func (r *SubtreeResult) VirtualTime() time.Duration { return r.res.vt }

// PathCount is the number of finished paths the subtree produced.
func (r *SubtreeResult) PathCount() int { return len(r.res.rep.Finished) }

// Encode serializes the result (gob, the campaign-journal record
// format). Bug snapshots, when present, are encoded inline.
func (r *SubtreeResult) Encode() ([]byte, error) {
	rec, err := newSubtreeRec(r.idx, r.res)
	if err != nil {
		return nil, err
	}
	return gobEncode(rec)
}

// DecodeSubtreeResult parses an Encode'd subtree result.
func DecodeSubtreeResult(data []byte) (*SubtreeResult, error) {
	var rec subtreeRec
	if err := gobDecode(data, &rec); err != nil {
		return nil, fmt.Errorf("core: subtree result: %w", err)
	}
	res, err := rec.result()
	if err != nil {
		return nil, err
	}
	return &SubtreeResult{idx: rec.Idx, res: res}, nil
}

// TakeBugSnapshots detaches and returns the retained bug snapshots
// keyed by state ID (nil when none). The distributed fabric uses this
// on the node side: the snapshots stay in the node's content-addressed
// cache, the wire carries their digests, and the driver re-attaches
// fetched records with PutBugSnapshot.
func (r *SubtreeResult) TakeBugSnapshots() map[uint64]*snapshot.Record {
	m := r.res.bugSnaps
	r.res.bugSnaps = nil
	return m
}

// PutBugSnapshot re-attaches a bug snapshot (fetched from the fabric)
// to the result before merging.
func (r *SubtreeResult) PutBugSnapshot(stateID uint64, rec *snapshot.Record) {
	if r.res.bugSnaps == nil {
		r.res.bugSnaps = make(map[uint64]*snapshot.Record)
	}
	r.res.bugSnaps[stateID] = rec
}

// CampaignLog is PR 6's crash-safe campaign journal exposed to
// external frontier drivers: the distributed driver appends every
// completed subtree so a killed driver process resumes instead of
// restarting. Same record kinds, group-commit and compaction policy
// as the in-process supervisor's journal — LoadCampaign reads both.
type CampaignLog struct {
	f *Frontier

	mu           sync.Mutex
	jw           *journal.Writer
	completed    []bool
	sinceSync    int
	sinceCompact int
}

// NewCampaignLog creates a campaign journal at path and writes the
// frontier's header. With an empty path it returns a no-op log (every
// method is safe to call), so callers need no journaling branches.
func (f *Frontier) NewCampaignLog(path string) (*CampaignLog, error) {
	l := &CampaignLog{f: f, completed: make([]bool, len(f.seeds))}
	if path == "" {
		return l, nil
	}
	jw, err := journal.Create(path)
	if err != nil {
		return nil, err
	}
	hdr, err := gobEncode(f.hdr)
	if err == nil {
		err = jw.Append(recCampaign, hdr)
	}
	if err == nil {
		err = jw.Append(recFrontier, mustFrontierRec(nil, len(f.seeds)))
	}
	if err == nil {
		err = jw.Sync()
	}
	if err != nil {
		jw.Close()
		return nil, err
	}
	l.jw = jw
	return l, nil
}

// ResumeCampaignLog validates a loaded campaign against this frontier
// (same configuration fingerprint, same deterministic seed phase) and
// continues appending to its journal. It returns the journaled
// subtree results, already completed, so the driver only runs what is
// left.
func (f *Frontier) ResumeCampaignLog(cam *Campaign) (*CampaignLog, []*SubtreeResult, error) {
	if err := cam.validate(f.hdr); err != nil {
		return nil, nil, err
	}
	l := &CampaignLog{f: f, completed: make([]bool, len(f.seeds))}
	var done []*SubtreeResult
	for idx, res := range cam.Results {
		if idx < 0 || idx >= len(f.seeds) || l.completed[idx] {
			continue
		}
		l.completed[idx] = true
		done = append(done, &SubtreeResult{idx: idx, res: res})
	}
	jw, _, err := journal.AppendTo(cam.Path)
	if err != nil {
		return nil, nil, err
	}
	l.jw = jw
	return l, done, nil
}

func mustFrontierRec(completed []bool, seeds int) []byte {
	var pending []int
	for idx := 0; idx < seeds; idx++ {
		if completed == nil || !completed[idx] {
			pending = append(pending, idx)
		}
	}
	payload, err := gobEncode(frontierRec{Pending: pending})
	if err != nil {
		// frontierRec is a []int; gob encoding it cannot fail.
		panic(err)
	}
	return payload
}

// Append journals one completed subtree plus a fresh frontier record,
// with the supervisor's group-commit and compaction policy.
func (l *CampaignLog) Append(r *SubtreeResult) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.idx >= 0 && r.idx < len(l.completed) {
		if l.completed[r.idx] {
			return nil // first-wins: a replayed subtree is identical
		}
		l.completed[r.idx] = true
	}
	if l.jw == nil {
		return nil
	}
	rec, err := newSubtreeRec(r.idx, r.res)
	if err != nil {
		return err
	}
	payload, err := gobEncode(rec)
	if err != nil {
		return err
	}
	if err := l.jw.Append(recSubtree, payload); err != nil {
		return err
	}
	if err := l.jw.Append(recFrontier, mustFrontierRec(l.completed, len(l.completed))); err != nil {
		return err
	}
	remaining := 0
	for _, c := range l.completed {
		if !c {
			remaining++
		}
	}
	if l.sinceSync++; l.sinceSync >= l.f.e.cfg.journalSyncEvery() || remaining == 0 {
		l.sinceSync = 0
		if err := l.jw.Sync(); err != nil {
			return err
		}
	}
	if l.sinceCompact++; l.sinceCompact >= l.f.e.cfg.journalCompactEvery() {
		l.sinceCompact = 0
		return l.jw.Compact(func(rs []journal.Record) []journal.Record {
			kept := rs[:0]
			for _, rec := range rs {
				if rec.Kind != recFrontier {
					kept = append(kept, rec)
				}
			}
			return append(kept, journal.Record{Kind: recFrontier, Payload: mustFrontierRec(l.completed, len(l.completed))})
		})
	}
	return nil
}

// Finish marks the campaign complete (resuming it becomes an error)
// and syncs.
func (l *CampaignLog) Finish() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.jw == nil {
		return nil
	}
	if err := l.jw.Append(recComplete, nil); err != nil {
		return err
	}
	return l.jw.Sync()
}

// Sync flushes the journal (used before an interrupted driver exits,
// so the campaign is resumable).
func (l *CampaignLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.jw == nil {
		return nil
	}
	return l.jw.Sync()
}

// Stats reports journal record/byte counts (zero for a no-op log).
func (l *CampaignLog) Stats() (records, bytes uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.jw == nil {
		return 0, 0
	}
	st := l.jw.Stats()
	return st.Records, st.Bytes
}

// Close closes the journal file.
func (l *CampaignLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.jw != nil {
		l.jw.Close()
	}
}
