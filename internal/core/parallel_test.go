package core

import (
	"fmt"
	"sort"
	"testing"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// scalingFirmware branches on six symbolic bits right away (64 paths,
// so the active set outgrows the fan-out width and the parallel engine
// really distributes subtrees), then does per-path MMIO work. The
// software assertion fails on exactly one path (all six bits set).
// MMIO reads never feed a branch or the assertion, so even
// ModeNaiveShared reaches the same per-path verdicts.
const scalingFirmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1           ; make [0x100] symbolic
		lbu r4, 0(r1)
		li r8, 0x40000000
		andi r5, r4, 1
		beq r5, r0, b1
		nop
b1:
		andi r5, r4, 2
		beq r5, r0, b2
		nop
b2:
		andi r5, r4, 4
		beq r5, r0, b3
		nop
b3:
		andi r5, r4, 8
		beq r5, r0, b4
		nop
b4:
		andi r5, r4, 16
		beq r5, r0, b5
		nop
b5:
		andi r5, r4, 32
		beq r5, r0, work
		nop
work:
		sw r4, 0(r8)      ; per-path MMIO traffic
		lw r6, 0(r8)
		addi r7, r0, 8
loop:
		sw r6, 0(r8)
		addi r7, r7, -1
		bne r7, r0, loop
		andi r5, r4, 63
		sltiu r1, r5, 63
		ecall 2           ; fails iff all six bits are set
		halt
`

// pathSignatures reduces a report to a schedule-independent summary:
// the sorted multiset of (status, final PC) per finished path. State
// IDs deliberately stay out — parallel runs stride them per subtree.
func pathSignatures(rep *Report) []string {
	sigs := make([]string, 0, len(rep.Finished))
	for _, st := range rep.Finished {
		sigs = append(sigs, fmt.Sprintf("%v@%#x", st.Status, st.PC))
	}
	sort.Strings(sigs)
	return sigs
}

func bugSignatures(rep *Report) []string {
	sigs := []string{}
	for _, st := range rep.Bugs() {
		sigs = append(sigs, fmt.Sprintf("%v@%#x", st.Status, st.PC))
	}
	sort.Strings(sigs)
	return sigs
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelDeterminism is the determinism contract as a table: in
// all four modes, with both a fan-out-guaranteed searcher (BFS) and a
// seeded random searcher at three seeds, a 4-worker run must report
// the same path count, per-path verdicts and bug set as a 1-worker
// run of the same configuration.
func TestParallelDeterminism(t *testing.T) {
	modes := []struct {
		name string
		mode Mode
	}{
		{"hardsnap", ModeHardSnap},
		{"naive-reboot", ModeNaiveReboot},
		{"naive-shared", ModeNaiveShared},
		{"record-replay", ModeRecordReplay},
	}
	searchers := []struct {
		name string
		make func() symexec.Searcher
	}{
		{"bfs", func() symexec.Searcher { return symexec.BFS{} }},
		{"random-1", func() symexec.Searcher { return symexec.NewRandom(1) }},
		{"random-7", func() symexec.Searcher { return symexec.NewRandom(7) }},
		{"random-13", func() symexec.Searcher { return symexec.NewRandom(13) }},
	}
	for _, m := range modes {
		for _, s := range searchers {
			t.Run(m.name+"/"+s.name, func(t *testing.T) {
				setup := func(workers int) SetupConfig {
					return SetupConfig{
						Firmware:    scalingFirmware,
						Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
						Engine: Config{
							Mode:            m.mode,
							Searcher:        s.make(),
							MaxInstructions: 1_000_000,
							Workers:         workers,
						},
					}
				}
				_, serial := run(t, setup(1))
				_, par := run(t, setup(4))

				// 64 feasible paths plus the infeasible sibling the
				// failing assertion forks off.
				if len(serial.Finished) != 65 {
					t.Fatalf("serial paths: %d, want 65", len(serial.Finished))
				}
				if len(par.Finished) != len(serial.Finished) {
					t.Fatalf("path count: %d workers=4 vs %d workers=1",
						len(par.Finished), len(serial.Finished))
				}
				if sp, pp := pathSignatures(serial), pathSignatures(par); !equalStrings(sp, pp) {
					t.Fatalf("path verdicts diverge:\nserial: %v\nparallel: %v", sp, pp)
				}
				if sb, pb := bugSignatures(serial), bugSignatures(par); !equalStrings(sb, pb) {
					t.Fatalf("bug sets diverge:\nserial: %v\nparallel: %v", sb, pb)
				}
				if len(serial.Bugs()) != 1 {
					t.Fatalf("serial bugs: %d, want 1", len(serial.Bugs()))
				}
				if serial.Stats.PathsCompleted != par.Stats.PathsCompleted {
					t.Fatalf("paths completed: serial %d, parallel %d",
						serial.Stats.PathsCompleted, par.Stats.PathsCompleted)
				}
				if s.name == "bfs" {
					// BFS grows the active set to 32 > fan-out width, so
					// this row must have actually used the workers.
					if len(par.Workers) != 4 {
						t.Fatalf("parallel run did not fan out: %+v", par.Workers)
					}
					subtrees := 0
					for _, w := range par.Workers {
						subtrees += w.Subtrees
					}
					if subtrees == 0 {
						t.Fatalf("no subtrees distributed: %+v", par.Workers)
					}
				}
			})
		}
	}
}

// TestParallelSoftwareOnly: the worker layer must also run without any
// hardware target attached (pure symbolic execution).
func TestParallelSoftwareOnly(t *testing.T) {
	const fw = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r5, r4, 1
		beq r5, r0, b1
		nop
b1:
		andi r5, r4, 2
		beq r5, r0, b2
		nop
b2:
		andi r5, r4, 4
		beq r5, r0, b3
		nop
b3:
		andi r5, r4, 8
		beq r5, r0, b4
		nop
b4:
		andi r5, r4, 16
		beq r5, r0, done
		nop
done:
		andi r5, r4, 31
		sltiu r1, r5, 31
		ecall 2
		halt
`
	setup := func(workers int) SetupConfig {
		return SetupConfig{
			Firmware: fw,
			Engine: Config{
				Searcher: symexec.BFS{},
				Workers:  workers,
			},
		}
	}
	_, serial := run(t, setup(1))
	_, par := run(t, setup(4))
	if len(par.Finished) != len(serial.Finished) {
		t.Fatalf("path count: %d vs %d", len(par.Finished), len(serial.Finished))
	}
	if sp, pp := pathSignatures(serial), pathSignatures(par); !equalStrings(sp, pp) {
		t.Fatalf("verdicts diverge:\nserial: %v\nparallel: %v", sp, pp)
	}
}

// TestParallelSolverCacheShared: the memoized solver service is shared
// across workers, so a parallel run must report cache activity and the
// hit rate must be sane.
func TestParallelSolverCacheShared(t *testing.T) {
	_, rep := run(t, SetupConfig{
		Firmware:    scalingFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Engine: Config{
			Mode:     ModeHardSnap,
			Searcher: symexec.BFS{},
			Workers:  4,
		},
	})
	cs := rep.SolverCache
	if cs.Hits+cs.Misses == 0 {
		t.Fatalf("no solver cache traffic recorded: %+v", cs)
	}
	if cs.Entries == 0 {
		t.Fatalf("no cache entries stored: %+v", cs)
	}
	if r := cs.HitRate(); r < 0 || r > 1 {
		t.Fatalf("hit rate out of range: %v", r)
	}
}
