package core

import (
	"testing"
	"time"

	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// ffFirmware has a long deterministic init (driving the hardware),
// then a snapshot hint, then a symbolic branch on one input byte.
const ffFirmware = `
_start:
		li r8, 0x40000000
		addi r10, r0, 1000
init:
		sw r10, 0(r8)      ; hardware traffic during init
		addi r10, r10, -1
		bne r10, r0, init
		li r5, 0x1234
		sw r5, 0(r8)       ; final device configuration
		ecall 6            ; ---- snapshot hint ----
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		beq r4, r0, even
		abort              ; odd input crashes
even:
		lw r6, 0(r8)       ; device config must have survived hand-off
		li r7, 0x1234
		sub r1, r6, r7
		sltiu r1, r1, 1
		ecall 2
		halt
`

func ffSetup(t *testing.T) *Analysis {
	t.Helper()
	a, err := Setup(SetupConfig{
		Firmware:    ffFirmware,
		Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
		Engine:      Config{MaxInstructions: 10_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFastForwardToHint(t *testing.T) {
	a := ffSetup(t)
	res, err := a.FastForward(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != FFSnapshotHint {
		t.Fatalf("reached %v", res.Reached)
	}
	if res.Instructions < 2000 {
		t.Fatalf("instructions: %d", res.Instructions)
	}

	rep, err := a.Engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only the post-hint tail runs symbolically: both paths, one bug,
	// device state intact (the even path's ecall 2 passes).
	if got := len(rep.Finished); got != 2 {
		t.Fatalf("paths: %d", got)
	}
	if got := rep.CountStatus(symexec.StatusAborted); got != 1 {
		t.Fatalf("aborted: %d", got)
	}
	if got := rep.CountStatus(symexec.StatusHalted); got != 1 {
		t.Fatalf("halted: %d (device state lost across hand-off?)", got)
	}
	// Only the ~14 tail instructions were interpreted symbolically.
	if rep.Stats.Instructions > 100 {
		t.Fatalf("symbolic instructions: %d (init not skipped)", rep.Stats.Instructions)
	}
}

func TestFastForwardSavesVirtualTime(t *testing.T) {
	// With fast-forwarding: init at native cost. Without: the whole
	// init pays symbolic interpretation.
	withFF := func() time.Duration {
		a := ffSetup(t)
		if _, err := a.FastForward(0); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Engine.Run(); err != nil {
			t.Fatal(err)
		}
		return a.Clock.Now()
	}()
	withoutFF := func() time.Duration {
		a := ffSetup(t)
		rep, err := a.Engine.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.CountStatus(symexec.StatusAborted) != 1 {
			t.Fatal("baseline run broken")
		}
		return a.Clock.Now()
	}()
	if withFF >= withoutFF {
		t.Fatalf("fast-forward (%v) should beat full symbolic run (%v)", withFF, withoutFF)
	}
	// ~3000 init instructions at 20ns vs 1µs: expect a large gap.
	saved := withoutFF - withFF
	if saved < 2*time.Millisecond {
		t.Fatalf("saved only %v", saved)
	}
}

func TestFastForwardStopsAtMakeSymbolic(t *testing.T) {
	// No hint: the make-symbolic request is the hand-off point and
	// must be re-executed symbolically.
	a, err := Setup(SetupConfig{
		Firmware: `
_start:
		addi r10, r0, 50
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 3
		bne r4, r5, ok
		abort
ok:
		halt
		`,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.FastForward(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != FFMakeSymbolic {
		t.Fatalf("reached %v", res.Reached)
	}
	rep, err := a.Engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountStatus(symexec.StatusAborted) != 1 || rep.CountStatus(symexec.StatusHalted) != 1 {
		t.Fatalf("exploration after hand-off broken: %+v", rep.Stats)
	}
	bug := rep.Bugs()[0]
	if bug.Model["sym1_0"] != 3 {
		t.Fatalf("model: %v", bug.Model)
	}
}

func TestFastForwardTerminated(t *testing.T) {
	a, err := Setup(SetupConfig{Firmware: "halt"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.FastForward(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != FFTerminated {
		t.Fatalf("reached %v", res.Reached)
	}
}

func TestFastForwardBudget(t *testing.T) {
	a, err := Setup(SetupConfig{Firmware: "loop: j loop"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.FastForward(100); err == nil {
		t.Fatal("budget exhaustion must error")
	}
}

func TestNativeCheaperThanSymbolic(t *testing.T) {
	if vtime.NativeInstruction*10 > vtime.VMInstruction {
		t.Fatal("native execution should be far cheaper than symbolic")
	}
}
