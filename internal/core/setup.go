package core

import (
	"fmt"

	"hardsnap/internal/asm"
	"hardsnap/internal/bus"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// PeriphRegionSize is the MMIO window each peripheral instance
// occupies in the default address map.
const PeriphRegionSize = 0x100

// SetupConfig assembles a complete analysis: firmware, SoC peripherals
// and engine/executor parameters.
type SetupConfig struct {
	// Firmware is HS32 assembly source.
	Firmware string
	// FirmwareBase is the load address (default 0).
	FirmwareBase uint32
	// Peripherals are placed at MMIOBase + i*PeriphRegionSize with
	// IRQ line i.
	Peripherals []target.PeriphConfig
	// Target, when set, is a pre-built execution vehicle — a
	// remote.TargetClient or a pooled *target.Target — used instead of
	// constructing a local simulator/FPGA. Peripherals then only lay
	// out the bus regions and must name ports the target exposes, in
	// the target's index order. HWAssertions require the vehicle to be
	// a concrete *target.Target.
	Target target.Interface
	// FPGA selects the FPGA target instead of the simulator.
	FPGA bool
	// Interp forces the interpreter RTL engine on every locally built
	// peripheral instead of the compiled-bytecode default. Used for
	// debugging and the E16 differential/ablation runs; results are
	// bit-identical either way, only speed differs.
	Interp bool
	// Readback selects the readback snapshot method on the FPGA.
	Readback bool
	// HWAssertions are hardware properties checked every cycle
	// (simulator target only).
	HWAssertions []target.HWAssertion
	// Exec configures the symbolic executor.
	Exec symexec.Config
	// Engine configures the engine.
	Engine Config
}

// Analysis bundles the wired-up components of one run.
type Analysis struct {
	Engine  *Engine
	Target  *target.Target
	Router  *bus.Router
	Exec    *symexec.Executor
	Program *asm.Program
	Clock   *vtime.Clock

	config SetupConfig
}

// PeriphBase returns the MMIO base address of the i-th peripheral in
// the default map.
func (a *Analysis) PeriphBase(i int) uint32 {
	return a.Exec.Config().VM.MMIOBase + uint32(i)*PeriphRegionSize
}

// Setup assembles the firmware, builds the target and bus, and wires
// the engine.
func Setup(cfg SetupConfig) (*Analysis, error) {
	prog, err := asm.Assemble(cfg.Firmware, cfg.FirmwareBase)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return SetupProgram(cfg, prog)
}

// SetupProgram is Setup for a pre-assembled program.
func SetupProgram(cfg SetupConfig, prog *asm.Program) (*Analysis, error) {
	clock := &vtime.Clock{}

	var tgt *target.Target
	var router *bus.Router
	if cfg.Target != nil || len(cfg.Peripherals) > 0 {
		var err error
		vehicle := cfg.Target
		if vehicle == nil {
			periphs := cfg.Peripherals
			if cfg.Interp {
				periphs = make([]target.PeriphConfig, len(cfg.Peripherals))
				copy(periphs, cfg.Peripherals)
				for i := range periphs {
					periphs[i].Interp = true
				}
			}
			if cfg.FPGA {
				tgt, err = target.NewFPGA("fpga0", clock, periphs, cfg.Readback)
			} else {
				tgt, err = target.NewSimulator("sim0", clock, periphs)
			}
			if err != nil {
				return nil, err
			}
			vehicle = tgt
		} else {
			if lt, ok := vehicle.(*target.Target); ok {
				tgt = lt
			} else if len(cfg.HWAssertions) > 0 {
				return nil, fmt.Errorf("core: hardware assertions require a local target")
			}
			clock = vehicle.Clock()
		}
		exec0, err := symexec.New(cfg.Exec, prog, nil)
		if err != nil {
			return nil, err
		}
		mmioBase := exec0.Config().VM.MMIOBase
		regions := make([]bus.Region, 0, len(cfg.Peripherals))
		for i, pc := range cfg.Peripherals {
			port, err := vehicle.Port(pc.Name)
			if err != nil {
				return nil, err
			}
			regions = append(regions, bus.Region{
				Name: pc.Name,
				Base: mmioBase + uint32(i)*PeriphRegionSize,
				Size: PeriphRegionSize,
				IRQ:  i,
				Port: port,
			})
		}
		router, err = bus.NewRouter(regions)
		if err != nil {
			return nil, err
		}
		for _, a := range cfg.HWAssertions {
			if err := tgt.AddAssertion(a); err != nil {
				return nil, err
			}
		}
		eng, err := New(cfg.Engine, exec0, vehicle, router)
		if err != nil {
			return nil, err
		}
		// The engine owns the clock from the target; align our local
		// reference.
		return &Analysis{
			Engine:  eng,
			Target:  tgt,
			Router:  router,
			Exec:    exec0,
			Program: prog,
			Clock:   clock,
			config:  cfg,
		}, nil
	}

	exec0, err := symexec.New(cfg.Exec, prog, nil)
	if err != nil {
		return nil, err
	}
	eng, err := New(cfg.Engine, exec0, nil, nil)
	if err != nil {
		return nil, err
	}
	return &Analysis{
		Engine:  eng,
		Exec:    exec0,
		Program: prog,
		Clock:   eng.Clock(),
		config:  cfg,
	}, nil
}
