package core

import (
	"fmt"

	"hardsnap/internal/isa"
	"hardsnap/internal/vm"
	"hardsnap/internal/vtime"
)

// FastForwardResult describes the hand-off point of a fast-forward
// phase.
type FastForwardResult struct {
	// Instructions retired concretely.
	Instructions uint64
	// Reached reports what ended the phase: a snapshot hint, a
	// make-symbolic request, or termination.
	Reached FastForwardStop
	// PC is the symbolic start address.
	PC uint32
}

// FastForwardStop classifies how fast-forwarding ended.
type FastForwardStop int

// Fast-forward stop reasons.
const (
	// FFSnapshotHint: the firmware executed `ecall 6`.
	FFSnapshotHint FastForwardStop = iota + 1
	// FFMakeSymbolic: the firmware requested symbolic input; the
	// ecall is left for the symbolic engine to re-execute.
	FFMakeSymbolic
	// FFTerminated: the firmware halted/crashed before any symbolic
	// point (nothing to explore).
	FFTerminated
	// FFBudget: the step budget ran out.
	FFBudget
)

// String names the stop reason.
func (s FastForwardStop) String() string {
	switch s {
	case FFSnapshotHint:
		return "snapshot-hint"
	case FFMakeSymbolic:
		return "make-symbolic"
	case FFTerminated:
		return "terminated"
	case FFBudget:
		return "budget"
	}
	return "?"
}

// FastForward executes the firmware concretely — at near-native cost
// (vtime.NativeInstruction per instruction) against the live hardware
// — until the first snapshot hint (`ecall 6`) or make-symbolic
// request, then installs the captured machine state as the symbolic
// engine's initial state. This is the paper's fast-forwarding: the
// deterministic boot/init prefix never pays symbolic interpretation
// overhead. Call before Engine.Run; maxSteps 0 means 10M.
func (a *Analysis) FastForward(maxSteps uint64) (*FastForwardResult, error) {
	if maxSteps == 0 {
		maxSteps = 10_000_000
	}
	cpu := vm.New(a.Exec.Config().VM, a.Router)
	if err := cpu.Load(a.Program); err != nil {
		return nil, err
	}

	var stop FastForwardStop
	cpu.OnEcall = func(c *vm.CPU, service int32) bool {
		switch service {
		case isa.EcallSnapshotHint:
			stop = FFSnapshotHint
			return true
		case isa.EcallMakeSymbolic:
			stop = FFMakeSymbolic
			return true
		}
		return false
	}

	var steps uint64
	for stop == 0 && cpu.Stop == vm.StopNone && steps < maxSteps {
		if !cpu.Step() {
			break
		}
		steps++
		a.Clock.Advance(vtime.NativeInstruction)
		if a.Target != nil {
			if err := a.Target.Advance(a.Engine.cfg.CyclesPerInstruction); err != nil {
				return nil, err
			}
			irqs, err := a.Router.RisingIRQs()
			if err != nil {
				return nil, err
			}
			for _, n := range irqs {
				cpu.RaiseIRQ(n)
			}
		}
	}

	res := &FastForwardResult{Instructions: steps}
	switch {
	case stop == FFSnapshotHint:
		res.Reached = FFSnapshotHint
	case stop == FFMakeSymbolic:
		// Leave the ecall for the symbolic engine to re-execute.
		cpu.PC -= 4
		res.Reached = FFMakeSymbolic
	case cpu.Stop != vm.StopNone:
		res.Reached = FFTerminated
		res.PC = cpu.PC
		return res, nil
	default:
		res.Reached = FFBudget
		res.PC = cpu.PC
		return res, fmt.Errorf("core: fast-forward budget (%d steps) exhausted", maxSteps)
	}
	res.PC = cpu.PC

	st, err := a.Exec.StateFromConcrete(cpu.PC, cpu.Regs, cpu.Mem,
		cpu.EPC, cpu.InHandler, cpu.PendingIRQs())
	if err != nil {
		return nil, err
	}
	st.Steps = steps
	a.Engine.SetInitialState(st)
	return res, nil
}
