package periph

import (
	"fmt"
	"strings"
)

// aesSBox is the FIPS-197 S-box; the Verilog sbox module is generated
// from this table so the RTL is correct by construction.
var aesSBox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// sboxModule renders the combinational S-box lookup module.
func sboxModule() string {
	var b strings.Builder
	b.WriteString(`
module aes_sbox (
  input wire [7:0] in,
  output reg [7:0] out
);
  always @(*) begin
    case (in)
`)
	for i, v := range aesSBox {
		fmt.Fprintf(&b, "      8'h%02x: out = 8'h%02x;\n", i, v)
	}
	b.WriteString(`      default: out = 8'h00;
    endcase
  end
endmodule
`)
	return b.String()
}

// AESSource returns the Verilog source of the AES-128 encryption
// accelerator: round-per-cycle datapath with on-the-fly key expansion,
// 20 S-box instances (16 SubBytes + 4 key schedule), done interrupt.
// It is the "complex" member of the corpus (~300 state flops).
//
// Register map:
//
//	0x00 CTRL    w  [0] start (clears done), [1] irq enable
//	0x04 STATUS  r  [0] busy, [1] done
//	0x10-0x1C KEY0..KEY3   w  cipher key, big-endian words (FIPS order)
//	0x20-0x2C DIN0..DIN3   w  plaintext block
//	0x30-0x3C DOUT0..DOUT3 r  ciphertext block
func AESSource() string {
	return sboxModule() + aesCore
}

const aesCore = `
module aes128 (
  input wire clk,
  input wire rst,
  input wire sel,
  input wire wen,
  input wire [7:0] addr,
  input wire [31:0] wdata,
  output reg [31:0] rdata,
  output wire irq
);
  reg [31:0] key0;
  reg [31:0] key1;
  reg [31:0] key2;
  reg [31:0] key3;
  reg [31:0] din0;
  reg [31:0] din1;
  reg [31:0] din2;
  reg [31:0] din3;
  reg [31:0] dout0;
  reg [31:0] dout1;
  reg [31:0] dout2;
  reg [31:0] dout3;

  // Working state (columns) and round key.
  reg [31:0] s0;
  reg [31:0] s1;
  reg [31:0] s2;
  reg [31:0] s3;
  reg [31:0] k0;
  reg [31:0] k1;
  reg [31:0] k2;
  reg [31:0] k3;
  reg [3:0] round;
  reg busy;
  reg done;
  reg irq_en;

  assign irq = done & irq_en;

  // --- SubBytes: 16 S-boxes over the state ------------------------
  wire [7:0] sb00; wire [7:0] sb01; wire [7:0] sb02; wire [7:0] sb03;
  wire [7:0] sb10; wire [7:0] sb11; wire [7:0] sb12; wire [7:0] sb13;
  wire [7:0] sb20; wire [7:0] sb21; wire [7:0] sb22; wire [7:0] sb23;
  wire [7:0] sb30; wire [7:0] sb31; wire [7:0] sb32; wire [7:0] sb33;
  aes_sbox sb_u00 (.in(s0[31:24]), .out(sb00));
  aes_sbox sb_u01 (.in(s0[23:16]), .out(sb01));
  aes_sbox sb_u02 (.in(s0[15:8]),  .out(sb02));
  aes_sbox sb_u03 (.in(s0[7:0]),   .out(sb03));
  aes_sbox sb_u10 (.in(s1[31:24]), .out(sb10));
  aes_sbox sb_u11 (.in(s1[23:16]), .out(sb11));
  aes_sbox sb_u12 (.in(s1[15:8]),  .out(sb12));
  aes_sbox sb_u13 (.in(s1[7:0]),   .out(sb13));
  aes_sbox sb_u20 (.in(s2[31:24]), .out(sb20));
  aes_sbox sb_u21 (.in(s2[23:16]), .out(sb21));
  aes_sbox sb_u22 (.in(s2[15:8]),  .out(sb22));
  aes_sbox sb_u23 (.in(s2[7:0]),   .out(sb23));
  aes_sbox sb_u30 (.in(s3[31:24]), .out(sb30));
  aes_sbox sb_u31 (.in(s3[23:16]), .out(sb31));
  aes_sbox sb_u32 (.in(s3[15:8]),  .out(sb32));
  aes_sbox sb_u33 (.in(s3[7:0]),   .out(sb33));

  // --- ShiftRows (pure wiring) -------------------------------------
  // Column j after ShiftRows: {row0[j], row1[j+1], row2[j+2], row3[j+3]}.
  wire [31:0] sr0 = {sb00, sb11, sb22, sb33};
  wire [31:0] sr1 = {sb10, sb21, sb32, sb03};
  wire [31:0] sr2 = {sb20, sb31, sb02, sb13};
  wire [31:0] sr3 = {sb30, sb01, sb12, sb23};

  // --- MixColumns ---------------------------------------------------
  wire [7:0] m0a0 = sr0[31:24]; wire [7:0] m0a1 = sr0[23:16];
  wire [7:0] m0a2 = sr0[15:8];  wire [7:0] m0a3 = sr0[7:0];
  wire [7:0] x0a0 = {m0a0[6:0], 1'b0} ^ (m0a0[7] ? 8'h1b : 8'h00);
  wire [7:0] x0a1 = {m0a1[6:0], 1'b0} ^ (m0a1[7] ? 8'h1b : 8'h00);
  wire [7:0] x0a2 = {m0a2[6:0], 1'b0} ^ (m0a2[7] ? 8'h1b : 8'h00);
  wire [7:0] x0a3 = {m0a3[6:0], 1'b0} ^ (m0a3[7] ? 8'h1b : 8'h00);
  wire [31:0] mc0 = {x0a0 ^ x0a1 ^ m0a1 ^ m0a2 ^ m0a3,
                     m0a0 ^ x0a1 ^ x0a2 ^ m0a2 ^ m0a3,
                     m0a0 ^ m0a1 ^ x0a2 ^ x0a3 ^ m0a3,
                     x0a0 ^ m0a0 ^ m0a1 ^ m0a2 ^ x0a3};

  wire [7:0] m1a0 = sr1[31:24]; wire [7:0] m1a1 = sr1[23:16];
  wire [7:0] m1a2 = sr1[15:8];  wire [7:0] m1a3 = sr1[7:0];
  wire [7:0] x1a0 = {m1a0[6:0], 1'b0} ^ (m1a0[7] ? 8'h1b : 8'h00);
  wire [7:0] x1a1 = {m1a1[6:0], 1'b0} ^ (m1a1[7] ? 8'h1b : 8'h00);
  wire [7:0] x1a2 = {m1a2[6:0], 1'b0} ^ (m1a2[7] ? 8'h1b : 8'h00);
  wire [7:0] x1a3 = {m1a3[6:0], 1'b0} ^ (m1a3[7] ? 8'h1b : 8'h00);
  wire [31:0] mc1 = {x1a0 ^ x1a1 ^ m1a1 ^ m1a2 ^ m1a3,
                     m1a0 ^ x1a1 ^ x1a2 ^ m1a2 ^ m1a3,
                     m1a0 ^ m1a1 ^ x1a2 ^ x1a3 ^ m1a3,
                     x1a0 ^ m1a0 ^ m1a1 ^ m1a2 ^ x1a3};

  wire [7:0] m2a0 = sr2[31:24]; wire [7:0] m2a1 = sr2[23:16];
  wire [7:0] m2a2 = sr2[15:8];  wire [7:0] m2a3 = sr2[7:0];
  wire [7:0] x2a0 = {m2a0[6:0], 1'b0} ^ (m2a0[7] ? 8'h1b : 8'h00);
  wire [7:0] x2a1 = {m2a1[6:0], 1'b0} ^ (m2a1[7] ? 8'h1b : 8'h00);
  wire [7:0] x2a2 = {m2a2[6:0], 1'b0} ^ (m2a2[7] ? 8'h1b : 8'h00);
  wire [7:0] x2a3 = {m2a3[6:0], 1'b0} ^ (m2a3[7] ? 8'h1b : 8'h00);
  wire [31:0] mc2 = {x2a0 ^ x2a1 ^ m2a1 ^ m2a2 ^ m2a3,
                     m2a0 ^ x2a1 ^ x2a2 ^ m2a2 ^ m2a3,
                     m2a0 ^ m2a1 ^ x2a2 ^ x2a3 ^ m2a3,
                     x2a0 ^ m2a0 ^ m2a1 ^ m2a2 ^ x2a3};

  wire [7:0] m3a0 = sr3[31:24]; wire [7:0] m3a1 = sr3[23:16];
  wire [7:0] m3a2 = sr3[15:8];  wire [7:0] m3a3 = sr3[7:0];
  wire [7:0] x3a0 = {m3a0[6:0], 1'b0} ^ (m3a0[7] ? 8'h1b : 8'h00);
  wire [7:0] x3a1 = {m3a1[6:0], 1'b0} ^ (m3a1[7] ? 8'h1b : 8'h00);
  wire [7:0] x3a2 = {m3a2[6:0], 1'b0} ^ (m3a2[7] ? 8'h1b : 8'h00);
  wire [7:0] x3a3 = {m3a3[6:0], 1'b0} ^ (m3a3[7] ? 8'h1b : 8'h00);
  wire [31:0] mc3 = {x3a0 ^ x3a1 ^ m3a1 ^ m3a2 ^ m3a3,
                     m3a0 ^ x3a1 ^ x3a2 ^ m3a2 ^ m3a3,
                     m3a0 ^ m3a1 ^ x3a2 ^ x3a3 ^ m3a3,
                     x3a0 ^ m3a0 ^ m3a1 ^ m3a2 ^ x3a3};

  // --- Key schedule (on the fly) ------------------------------------
  reg [7:0] rcon;
  always @(*) begin
    case (round)
      4'd1: rcon = 8'h01;
      4'd2: rcon = 8'h02;
      4'd3: rcon = 8'h04;
      4'd4: rcon = 8'h08;
      4'd5: rcon = 8'h10;
      4'd6: rcon = 8'h20;
      4'd7: rcon = 8'h40;
      4'd8: rcon = 8'h80;
      4'd9: rcon = 8'h1b;
      default: rcon = 8'h36;
    endcase
  end

  wire [7:0] kw0; wire [7:0] kw1; wire [7:0] kw2; wire [7:0] kw3;
  // RotWord(k3) = {k3[23:16], k3[15:8], k3[7:0], k3[31:24]}.
  aes_sbox ks_u0 (.in(k3[23:16]), .out(kw0));
  aes_sbox ks_u1 (.in(k3[15:8]),  .out(kw1));
  aes_sbox ks_u2 (.in(k3[7:0]),   .out(kw2));
  aes_sbox ks_u3 (.in(k3[31:24]), .out(kw3));
  wire [31:0] ktemp = {kw0 ^ rcon, kw1, kw2, kw3};
  wire [31:0] nk0 = k0 ^ ktemp;
  wire [31:0] nk1 = k1 ^ nk0;
  wire [31:0] nk2 = k2 ^ nk1;
  wire [31:0] nk3 = k3 ^ nk2;

  wire last_round = (round == 4'd10);

  always @(*) begin
    case (addr)
      8'h04: rdata = {30'h0, done, busy};
      8'h30: rdata = dout0;
      8'h34: rdata = dout1;
      8'h38: rdata = dout2;
      8'h3C: rdata = dout3;
      default: rdata = 32'h0;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      key0 <= 0; key1 <= 0; key2 <= 0; key3 <= 0;
      din0 <= 0; din1 <= 0; din2 <= 0; din3 <= 0;
      dout0 <= 0; dout1 <= 0; dout2 <= 0; dout3 <= 0;
      s0 <= 0; s1 <= 0; s2 <= 0; s3 <= 0;
      k0 <= 0; k1 <= 0; k2 <= 0; k3 <= 0;
      round <= 0;
      busy <= 0;
      done <= 0;
      irq_en <= 0;
    end else begin
      if (sel && wen) begin
        case (addr)
          8'h00: begin
            irq_en <= wdata[1];
            if (wdata[0]) begin
              s0 <= din0 ^ key0;
              s1 <= din1 ^ key1;
              s2 <= din2 ^ key2;
              s3 <= din3 ^ key3;
              k0 <= key0;
              k1 <= key1;
              k2 <= key2;
              k3 <= key3;
              round <= 4'd1;
              busy <= 1;
              done <= 0;
            end
          end
          8'h10: key0 <= wdata;
          8'h14: key1 <= wdata;
          8'h18: key2 <= wdata;
          8'h1C: key3 <= wdata;
          8'h20: din0 <= wdata;
          8'h24: din1 <= wdata;
          8'h28: din2 <= wdata;
          8'h2C: din3 <= wdata;
          default: irq_en <= irq_en;
        endcase
      end else if (busy) begin
        k0 <= nk0;
        k1 <= nk1;
        k2 <= nk2;
        k3 <= nk3;
        if (last_round) begin
          dout0 <= sr0 ^ nk0;
          dout1 <= sr1 ^ nk1;
          dout2 <= sr2 ^ nk2;
          dout3 <= sr3 ^ nk3;
          busy <= 0;
          done <= 1;
          round <= 0;
        end else begin
          s0 <= mc0 ^ nk0;
          s1 <= mc1 ^ nk1;
          s2 <= mc2 ^ nk2;
          s3 <= mc3 ^ nk3;
          round <= round + 1;
        end
      end
    end
  end
endmodule
`
