package periph

// AXIAdapterSource is an AXI4-Lite slave front-end that translates the
// five AXI channels (AW, W, B, AR, R) into HardSnap's single-cycle
// register-port convention. It demonstrates the paper's modularity
// claim that "the remote interface and the memory bus abstraction can
// be easily replaced": any corpus peripheral can be wrapped behind a
// genuine valid/ready handshake interface without touching its RTL.
//
// Protocol subset: 32-bit data, 8-bit addresses, no WSTRB (full-word
// writes), no protection bits, responses always OKAY. Write address
// and data may arrive in either order; the register write fires once
// both are latched.
const AXIAdapterSource = `
module axi2reg (
  input wire clk,
  input wire rst,

  // AXI4-Lite slave interface.
  input wire awvalid,
  output wire awready,
  input wire [7:0] awaddr,

  input wire wvalid,
  output wire wready,
  input wire [31:0] wdata_in,

  output reg bvalid,
  input wire bready,

  input wire arvalid,
  output wire arready,
  input wire [7:0] araddr,

  output reg rvalid,
  input wire rready,
  output reg [31:0] rdata_out,

  // Register-port master side (connect to a peripheral).
  output reg sel,
  output reg wen,
  output reg [7:0] addr,
  output reg [31:0] wdata,
  input wire [31:0] rdata
);
  // Write channel state.
  reg aw_got;
  reg w_got;
  reg [7:0] aw_addr_l;
  reg [31:0] w_data_l;

  assign awready = !aw_got && !bvalid;
  assign wready = !w_got && !bvalid;
  assign arready = !rvalid && !sel;

  always @(posedge clk) begin
    if (rst) begin
      aw_got <= 0;
      w_got <= 0;
      aw_addr_l <= 0;
      w_data_l <= 0;
      bvalid <= 0;
      rvalid <= 0;
      rdata_out <= 0;
      sel <= 0;
      wen <= 0;
      addr <= 0;
      wdata <= 0;
    end else begin
      // The register port idles after one pulse; read data is
      // captured at the pulse and only then presented on R (so a
      // same-cycle RREADY can never sample stale data).
      if (sel) begin
        if (!wen) begin
          rdata_out <= rdata;
          rvalid <= 1;
        end
        sel <= 0;
        wen <= 0;
      end

      // Latch write address/data beats.
      if (awvalid && awready) begin
        aw_got <= 1;
        aw_addr_l <= awaddr;
      end
      if (wvalid && wready) begin
        w_got <= 1;
        w_data_l <= wdata_in;
      end

      // Both beats present: issue the register write, raise B.
      if (aw_got && w_got && !bvalid) begin
        sel <= 1;
        wen <= 1;
        addr <= aw_addr_l;
        wdata <= w_data_l;
        bvalid <= 1;
        aw_got <= 0;
        w_got <= 0;
      end
      if (bvalid && bready)
        bvalid <= 0;

      // Read: one-pulse register read; R is raised by the capture
      // branch above.
      if (arvalid && arready) begin
        sel <= 1;
        wen <= 0;
        addr <= araddr;
      end
      if (rvalid && rready && !sel)
        rvalid <= 0;
    end
  end
endmodule
`

// AXIWrap returns Verilog for `top` wrapped behind the AXI4-Lite
// adapter, exposing the AXI channels at the boundary plus the wrapped
// peripheral's irq. extraPins forwards additional peripheral pins
// verbatim (e.g. "input wire rx_pin").
func AXIWrap(periphSource, periphTop string) string {
	return AXIAdapterSource + periphSource + `
module ` + periphTop + `_axi (
  input wire clk,
  input wire rst,
  input wire awvalid,
  output wire awready,
  input wire [7:0] awaddr,
  input wire wvalid,
  output wire wready,
  input wire [31:0] wdata_in,
  output wire bvalid,
  input wire bready,
  input wire arvalid,
  output wire arready,
  input wire [7:0] araddr,
  output wire rvalid,
  input wire rready,
  output wire [31:0] rdata_out,
  output wire irq
);
  wire p_sel;
  wire p_wen;
  wire [7:0] p_addr;
  wire [31:0] p_wdata;
  wire [31:0] p_rdata;

  axi2reg u_axi (
    .clk(clk), .rst(rst),
    .awvalid(awvalid), .awready(awready), .awaddr(awaddr),
    .wvalid(wvalid), .wready(wready), .wdata_in(wdata_in),
    .bvalid(bvalid), .bready(bready),
    .arvalid(arvalid), .arready(arready), .araddr(araddr),
    .rvalid(rvalid), .rready(rready), .rdata_out(rdata_out),
    .sel(p_sel), .wen(p_wen), .addr(p_addr), .wdata(p_wdata), .rdata(p_rdata)
  );

  ` + periphTop + ` u_dev (
    .clk(clk), .rst(rst),
    .sel(p_sel), .wen(p_wen), .addr(p_addr), .wdata(p_wdata),
    .rdata(p_rdata), .irq(irq)
  );
endmodule
`
}
