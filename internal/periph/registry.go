package periph

import (
	"fmt"

	"hardsnap/internal/rtl"
	"hardsnap/internal/scanchain"
	"hardsnap/internal/verilog"
)

// Spec describes one corpus peripheral.
type Spec struct {
	// Name is the registry key.
	Name string
	// Top is the Verilog top module implementing the register port.
	Top string
	// Description summarizes the block for documentation output.
	Description string
	// HasIRQ reports whether the block drives its irq output.
	HasIRQ bool
	// Params lists supported parameters with defaults (nil if none).
	Params map[string]uint64
	// source returns the Verilog text.
	source func() string
}

// Source returns the peripheral's Verilog source.
func (s Spec) Source() string { return s.source() }

// Parse returns a freshly parsed AST of the peripheral (safe to
// mutate, e.g. by the scan-chain instrumenter).
func (s Spec) Parse() (*verilog.SourceFile, error) {
	f, err := verilog.Parse(s.source())
	if err != nil {
		return nil, fmt.Errorf("periph %s: %w", s.Name, err)
	}
	return f, nil
}

var registry = []Spec{
	{
		Name: "gpio", Top: "gpio",
		Description: "general-purpose I/O, 64 state flops",
		source:      func() string { return GPIOSource },
	},
	{
		Name: "timer", Top: "timer",
		Description: "down-counting timer with auto-reload and IRQ",
		HasIRQ:      true,
		source:      func() string { return TimerSource },
	},
	{
		Name: "crc32", Top: "crc32",
		Description: "iterative CRC-32 offload engine (8 cycles/byte)",
		source:      func() string { return CRC32Source },
	},
	{
		Name: "uart", Top: "uart",
		Description: "serial transceiver with RX FIFO, loopback and IRQ",
		HasIRQ:      true,
		source:      func() string { return UARTSource },
	},
	{
		Name: "spi", Top: "spi",
		Description: "mode-0 SPI master with loopback and transfer IRQ",
		HasIRQ:      true,
		source:      func() string { return SPISource },
	},
	{
		Name: "aes128", Top: "aes128",
		Description: "AES-128 accelerator, round per cycle, done IRQ",
		HasIRQ:      true,
		source:      AESSource,
	},
	{
		Name: "regfile", Top: "regfile",
		Description: "parametric register file (snapshot-cost sweep)",
		Params:      map[string]uint64{"DEPTH": 16, "WIDTH": 32},
		source:      func() string { return RegFileSource },
	},
}

// All returns the peripheral corpus in complexity order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds a peripheral by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Build parses, optionally scan-chain-instruments, and elaborates a
// corpus peripheral. The returned report map is nil when instrument is
// false.
func Build(name string, params map[string]uint64, instrument bool) (*rtl.Design, map[string]*scanchain.Report, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("periph: unknown peripheral %q", name)
	}
	return BuildCustom(name, spec.Source(), spec.Top, params, instrument)
}

// BuildCustom parses, optionally instruments, and elaborates a
// user-provided Verilog peripheral. The module must expose the
// register-port convention documented in package bus. name is used in
// error messages only.
func BuildCustom(name, source, top string, params map[string]uint64, instrument bool) (*rtl.Design, map[string]*scanchain.Report, error) {
	f, err := verilog.Parse(source)
	if err != nil {
		return nil, nil, fmt.Errorf("periph %s: %w", name, err)
	}
	var reports map[string]*scanchain.Report
	if instrument {
		reports, err = scanchain.InstrumentAll(f, top, scanchain.Options{Params: params})
		if err != nil {
			return nil, nil, fmt.Errorf("periph %s: %w", name, err)
		}
	}
	d, err := rtl.Elaborate(f, top, params)
	if err != nil {
		return nil, nil, fmt.Errorf("periph %s: %w", name, err)
	}
	return d, reports, nil
}
