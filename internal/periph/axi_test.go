package periph

import (
	"testing"

	"hardsnap/internal/rtl"
	"hardsnap/internal/scanchain"
	"hardsnap/internal/sim"
	"hardsnap/internal/verilog"
)

// axiDev drives the AXI4-Lite wrapper with proper valid/ready
// handshakes (bounded waits so protocol bugs fail fast).
type axiDev struct {
	t *testing.T
	s *sim.Simulator
}

func openAXI(t *testing.T, periphName string) *axiDev {
	t.Helper()
	spec, ok := Lookup(periphName)
	if !ok {
		t.Fatalf("unknown periph %s", periphName)
	}
	src := AXIWrap(spec.Source(), spec.Top)
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse wrapper: %v", err)
	}
	d, err := rtl.Elaborate(f, spec.Top+"_axi", nil)
	if err != nil {
		t.Fatalf("elaborate wrapper: %v", err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)
	return &axiDev{t: t, s: s}
}

func (d *axiDev) waitHigh(sig string) {
	d.t.Helper()
	for i := 0; ; i++ {
		if i > 100 {
			d.t.Fatalf("timeout waiting for %s", sig)
		}
		if err := d.s.EvalComb(); err != nil {
			d.t.Fatal(err)
		}
		if v, _ := d.s.Peek(sig); v != 0 {
			return
		}
		d.s.StepCycle()
	}
}

// write performs a full AW/W/B transaction.
func (d *axiDev) write(addr, val uint32) {
	d.t.Helper()
	s := d.s
	s.SetInput("awvalid", 1)
	s.SetInput("awaddr", uint64(addr))
	s.SetInput("wvalid", 1)
	s.SetInput("wdata_in", uint64(val))
	s.SetInput("bready", 1)
	d.waitHigh("awready")
	d.waitHigh("wready")
	s.StepCycle() // both beats accepted
	s.SetInput("awvalid", 0)
	s.SetInput("wvalid", 0)
	d.waitHigh("bvalid")
	s.StepCycle() // B accepted
	s.SetInput("bready", 0)
	// Let the register-port pulse land in the peripheral.
	s.StepCycle()
}

// read performs a full AR/R transaction.
func (d *axiDev) read(addr uint32) uint32 {
	d.t.Helper()
	s := d.s
	s.SetInput("arvalid", 1)
	s.SetInput("araddr", uint64(addr))
	s.SetInput("rready", 1)
	d.waitHigh("arready")
	s.StepCycle() // AR accepted
	s.SetInput("arvalid", 0)
	d.waitHigh("rvalid")
	v, _ := s.Peek("rdata_out")
	s.StepCycle() // R accepted
	s.SetInput("rready", 0)
	return uint32(v)
}

func TestAXIWrappedTimer(t *testing.T) {
	d := openAXI(t, "timer")
	d.write(0x00, 500) // LOAD
	d.write(0x08, 1)   // enable
	v1 := d.read(0x04)
	if v1 == 0 || v1 > 500 {
		t.Fatalf("VALUE after enable: %d", v1)
	}
	v2 := d.read(0x04)
	if v2 >= v1 {
		t.Fatalf("timer not counting down over AXI: %d -> %d", v1, v2)
	}
	if got := d.read(0x00); got != 500 {
		t.Fatalf("LOAD readback %d", got)
	}
}

func TestAXIWrappedCRC(t *testing.T) {
	d := openAXI(t, "crc32")
	d.write(0x08, 1) // init
	for _, b := range []byte("123456789") {
		d.write(0x00, uint32(b))
		for d.read(0x0C)&1 == 1 {
		}
	}
	if got := d.read(0x04); got != 0xCBF43926 {
		t.Fatalf("CRC over AXI = %#x, want 0xCBF43926", got)
	}
}

func TestAXIWriteDataBeforeAddress(t *testing.T) {
	// AXI permits W before AW; the adapter must latch both orders.
	d := openAXI(t, "timer")
	s := d.s
	s.SetInput("wvalid", 1)
	s.SetInput("wdata_in", 77)
	s.SetInput("bready", 1)
	d.waitHigh("wready")
	s.StepCycle()
	s.SetInput("wvalid", 0)
	s.SetInput("awvalid", 1)
	s.SetInput("awaddr", 0x00)
	d.waitHigh("awready")
	s.StepCycle()
	s.SetInput("awvalid", 0)
	d.waitHigh("bvalid")
	s.StepCycle()
	s.SetInput("bready", 0)
	s.StepCycle()
	if got := d.read(0x00); got != 77 {
		t.Fatalf("LOAD = %d after reversed beats", got)
	}
}

func TestAXIWrapperInstrumentable(t *testing.T) {
	// The wrapped hierarchy (adapter + peripheral) scan-instruments
	// like any design: the chain threads both modules.
	spec, _ := Lookup("timer")
	f, err := verilog.Parse(AXIWrap(spec.Source(), spec.Top))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := scanchain.InstrumentAll(f, spec.Top+"_axi", scanchain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reports["axi2reg"] == nil || reports["axi2reg"].ChainBits == 0 {
		t.Fatal("adapter not in the chain")
	}
	if reports["timer"] == nil || reports["timer"].ChainBits != 68 {
		t.Fatalf("wrapped peripheral chain: %+v", reports["timer"])
	}
	// And it still elaborates after instrumentation.
	if _, err := rtl.Elaborate(f, spec.Top+"_axi", nil); err != nil {
		t.Fatalf("instrumented wrapper elaborate: %v", err)
	}
}
