package periph

import (
	"crypto/aes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"hardsnap/internal/rtl"
	"hardsnap/internal/sim"
	"hardsnap/internal/verilog"
)

// dev wraps a simulator with register-port bus transactions.
type dev struct {
	t *testing.T
	s *sim.Simulator
}

func openDev(t *testing.T, name string, params map[string]uint64) *dev {
	t.Helper()
	d, _, err := Build(name, params, false)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatalf("sim %s: %v", name, err)
	}
	// Synchronous reset pulse.
	s.SetInput("rst", 1)
	if err := s.StepCycle(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	s.SetInput("rst", 0)
	return &dev{t: t, s: s}
}

func (d *dev) write(addr, val uint32) {
	d.t.Helper()
	d.s.SetInput("sel", 1)
	d.s.SetInput("wen", 1)
	d.s.SetInput("addr", uint64(addr))
	d.s.SetInput("wdata", uint64(val))
	if err := d.s.StepCycle(); err != nil {
		d.t.Fatalf("bus write: %v", err)
	}
	d.s.SetInput("sel", 0)
	d.s.SetInput("wen", 0)
}

func (d *dev) read(addr uint32) uint32 {
	d.t.Helper()
	d.s.SetInput("sel", 1)
	d.s.SetInput("wen", 0)
	d.s.SetInput("addr", uint64(addr))
	if err := d.s.EvalComb(); err != nil {
		d.t.Fatalf("bus read: %v", err)
	}
	v, err := d.s.Peek("rdata")
	if err != nil {
		d.t.Fatal(err)
	}
	if err := d.s.StepCycle(); err != nil {
		d.t.Fatalf("bus read edge: %v", err)
	}
	d.s.SetInput("sel", 0)
	return uint32(v)
}

func (d *dev) run(n uint64) {
	d.t.Helper()
	if err := d.s.Run(n); err != nil {
		d.t.Fatal(err)
	}
}

func (d *dev) irq() bool {
	v, err := d.s.Peek("irq")
	if err != nil {
		d.t.Fatal(err)
	}
	return v != 0
}

func TestCorpusBuilds(t *testing.T) {
	for _, spec := range All() {
		t.Run(spec.Name, func(t *testing.T) {
			d, reports, err := Build(spec.Name, spec.Params, true)
			if err != nil {
				t.Fatal(err)
			}
			if d.StateBits() == 0 {
				t.Error("no state bits")
			}
			if reports[spec.Top] == nil {
				t.Error("no instrumentation report")
			}
			if _, ok := d.SignalByName("scan_out"); !ok {
				t.Error("missing scan_out after instrumentation")
			}
		})
	}
}

func TestGPIO(t *testing.T) {
	d := openDev(t, "gpio", nil)
	d.write(0x08, 0xFF00FF00) // DIR
	d.write(0x00, 0xDEADBEEF) // OUT
	if got := d.read(0x00); got != 0xDEADBEEF {
		t.Fatalf("OUT readback %#x", got)
	}
	if got := d.read(0x08); got != 0xFF00FF00 {
		t.Fatalf("DIR readback %#x", got)
	}
	pins, _ := d.s.Peek("pins_out")
	if uint32(pins) != 0xDEADBEEF&0xFF00FF00 {
		t.Fatalf("pins_out %#x", pins)
	}
	d.s.SetInput("pins_in", 0x12345678)
	if got := d.read(0x04); got != 0x12345678 {
		t.Fatalf("IN %#x", got)
	}
}

func TestTimerExpiresAndIRQ(t *testing.T) {
	d := openDev(t, "timer", nil)
	d.write(0x00, 10)  // LOAD
	d.write(0x08, 0x3) // enable + irq_en
	if d.irq() {
		t.Fatal("irq early")
	}
	d.run(12)
	if got := d.read(0x0C); got&1 != 1 {
		t.Fatalf("not expired: status %#x", got)
	}
	if !d.irq() {
		t.Fatal("irq not raised")
	}
	d.write(0x0C, 1) // clear
	if d.irq() {
		t.Fatal("irq not cleared")
	}
}

func TestTimerAutoReload(t *testing.T) {
	d := openDev(t, "timer", nil)
	d.write(0x00, 4)
	d.write(0x08, 0x7) // enable + irq + auto
	d.run(20)
	v := d.read(0x04)
	if v > 4 {
		t.Fatalf("value %d should have reloaded", v)
	}
}

func TestCRC32CheckValue(t *testing.T) {
	d := openDev(t, "crc32", nil)
	d.write(0x08, 1) // init
	for _, b := range []byte("123456789") {
		d.write(0x00, uint32(b))
		for d.read(0x0C)&1 == 1 {
			// poll busy
		}
	}
	if got := d.read(0x04); got != 0xCBF43926 {
		t.Fatalf("CRC = %#x, want 0xCBF43926", got)
	}
}

func TestCRC32Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := openDev(t, "crc32", nil)
	for trial := 0; trial < 5; trial++ {
		n := 1 + rng.Intn(20)
		data := make([]byte, n)
		rng.Read(data)
		d.write(0x08, 1)
		for _, b := range data {
			d.write(0x00, uint32(b))
			d.run(8)
		}
		want := crc32.ChecksumIEEE(data)
		if got := d.read(0x04); got != want {
			t.Fatalf("trial %d: CRC %#x, want %#x (data %x)", trial, got, want, data)
		}
	}
}

func TestUARTLoopback(t *testing.T) {
	d := openDev(t, "uart", nil)
	d.write(0x08, 0x1) // loopback
	d.write(0x00, 0x5A)
	if d.read(0x04)&1 != 1 {
		t.Fatal("tx should be busy")
	}
	// 10 bits at 8 cycles/bit plus sampling slack.
	d.run(120)
	status := d.read(0x04)
	if status&2 == 0 {
		t.Fatalf("rx not available, status %#x", status)
	}
	if got := d.read(0x00); got != 0x5A {
		t.Fatalf("loopback byte %#x", got)
	}
	if d.read(0x04)&2 != 0 {
		t.Fatal("fifo should be empty after pop")
	}
}

func TestUARTLoopbackMultipleBytes(t *testing.T) {
	d := openDev(t, "uart", nil)
	d.write(0x08, 0x1)
	msg := []byte{0x00, 0xFF, 0xA5, 0x3C}
	for _, b := range msg {
		d.write(0x00, uint32(b))
		d.run(120)
	}
	for i, want := range msg {
		if d.read(0x04)&2 == 0 {
			t.Fatalf("byte %d not available", i)
		}
		if got := d.read(0x00); got != uint32(want) {
			t.Fatalf("byte %d: %#x want %#x", i, got, want)
		}
	}
}

func TestUARTRxIRQ(t *testing.T) {
	d := openDev(t, "uart", nil)
	d.write(0x08, 0x3) // loopback + irq_en_rx
	if d.irq() {
		t.Fatal("irq early")
	}
	d.write(0x00, 0x41)
	d.run(120)
	if !d.irq() {
		t.Fatal("rx irq not raised")
	}
	d.read(0x00)
	d.s.EvalComb()
	if d.irq() {
		t.Fatal("irq should clear after pop")
	}
}

func TestUARTExternalRx(t *testing.T) {
	d := openDev(t, "uart", nil)
	// Bit-bang a frame on rx_pin at the default divider (8): start,
	// 8 data bits LSB-first, stop.
	sendBit := func(b uint64) {
		d.s.SetInput("rx_pin", b)
		d.run(8)
	}
	d.s.SetInput("rx_pin", 1)
	d.run(16)
	byteVal := byte(0xC9)
	sendBit(0)
	for i := 0; i < 8; i++ {
		sendBit(uint64(byteVal >> i & 1))
	}
	sendBit(1)
	d.run(16)
	if d.read(0x04)&2 == 0 {
		t.Fatal("rx not available")
	}
	if got := d.read(0x00); got != uint32(byteVal) {
		t.Fatalf("rx byte %#x, want %#x", got, byteVal)
	}
}

func aesEncrypt(d *dev, key, pt [16]byte) [16]byte {
	for i := 0; i < 4; i++ {
		d.write(uint32(0x10+4*i), binary.BigEndian.Uint32(key[4*i:]))
		d.write(uint32(0x20+4*i), binary.BigEndian.Uint32(pt[4*i:]))
	}
	d.write(0x00, 1) // start
	for d.read(0x04)&2 == 0 {
		d.run(1)
	}
	var ct [16]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(ct[4*i:], d.read(uint32(0x30+4*i)))
	}
	return ct
}

func TestAESFIPSVector(t *testing.T) {
	d := openDev(t, "aes128", nil)
	key := [16]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	pt := [16]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := [16]byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	got := aesEncrypt(d, key, pt)
	if got != want {
		t.Fatalf("AES FIPS vector:\n got %x\nwant %x", got, want)
	}
}

func TestAESDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	d := openDev(t, "aes128", nil)
	for trial := 0; trial < 4; trial++ {
		var key, pt [16]byte
		rng.Read(key[:])
		rng.Read(pt[:])
		block, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var want [16]byte
		block.Encrypt(want[:], pt[:])
		got := aesEncrypt(d, key, pt)
		if got != want {
			t.Fatalf("trial %d:\n got %x\nwant %x", trial, got, want)
		}
	}
}

func TestAESDoneIRQ(t *testing.T) {
	d := openDev(t, "aes128", nil)
	d.write(0x00, 0x2) // irq_en only
	if d.irq() {
		t.Fatal("irq early")
	}
	d.write(0x00, 0x3) // start + irq_en
	d.run(15)
	if d.read(0x04)&2 == 0 {
		t.Fatal("not done after 15 cycles")
	}
	if !d.irq() {
		t.Fatal("done irq not raised")
	}
}

func TestRegFile(t *testing.T) {
	d := openDev(t, "regfile", map[string]uint64{"DEPTH": 32, "WIDTH": 16})
	if got := d.read(0x08); got != 16<<16|32 {
		t.Fatalf("INFO %#x", got)
	}
	for i := uint32(0); i < 32; i++ {
		d.write(0x00, i)
		d.write(0x04, i*3+1)
	}
	for i := uint32(0); i < 32; i++ {
		d.write(0x00, i)
		if got := d.read(0x04); got != (i*3+1)&0xFFFF {
			t.Fatalf("file[%d] = %#x", i, got)
		}
	}
}

func TestAESScanSnapshotMidOperation(t *testing.T) {
	// The paper's headline capability: snapshot a complex peripheral
	// mid-computation and resume it later with identical results.
	design, _, err := Build("aes128", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(design)
	if err != nil {
		t.Fatal(err)
	}
	d := &dev{t: t, s: s}
	s.SetInput("rst", 1)
	s.StepCycle()
	s.SetInput("rst", 0)

	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	pt := [16]byte{0xAA}
	for i := 0; i < 4; i++ {
		d.write(uint32(0x10+4*i), binary.BigEndian.Uint32(key[4*i:]))
		d.write(uint32(0x20+4*i), binary.BigEndian.Uint32(pt[4*i:]))
	}
	d.write(0x00, 1)
	d.run(4) // part-way through the rounds

	snap := s.Snapshot()

	// Let the original finish.
	for d.read(0x04)&2 == 0 {
		d.run(1)
	}
	var want [16]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(want[4*i:], d.read(uint32(0x30+4*i)))
	}

	// Restore mid-operation state and re-run to completion.
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for d.read(0x04)&2 == 0 {
		d.run(1)
	}
	var got [16]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(got[4*i:], d.read(uint32(0x30+4*i)))
	}
	if got != want {
		t.Fatalf("resumed ciphertext differs:\n got %x\nwant %x", got, want)
	}

	// Sanity: matches crypto/aes.
	block, _ := aes.NewCipher(key[:])
	var ref [16]byte
	block.Encrypt(ref[:], pt[:])
	if got != ref {
		t.Fatalf("ciphertext wrong vs reference:\n got %x\nwant %x", got, ref)
	}
}

// TestStateBitCounts pins the complexity ordering the evaluation
// relies on (crc32 < gpio < timer < uart < aes128).
func TestStateBitCounts(t *testing.T) {
	bits := map[string]uint{}
	for _, name := range []string{"gpio", "timer", "crc32", "uart", "aes128"} {
		d, _, err := Build(name, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		bits[name] = d.StateBits()
		t.Logf("%-8s %4d state bits", name, d.StateBits())
	}
	if !(bits["crc32"] < bits["gpio"] && bits["gpio"] < bits["timer"] &&
		bits["timer"] < bits["uart"] && bits["uart"] < bits["aes128"]) {
		t.Fatalf("complexity ordering broken: %v", bits)
	}
}

var _ = rtl.Design{} // keep import for helper extensions

func TestSPILoopbackTransfer(t *testing.T) {
	d := openDev(t, "spi", nil)
	d.write(0x08, 0x5) // loopback + cs asserted
	if v, _ := d.s.Peek("cs_n"); v != 0 {
		t.Fatal("cs_n should be asserted (low)")
	}
	d.write(0x00, 0xB7)
	if d.read(0x04)&1 != 1 {
		t.Fatal("should be busy")
	}
	// 8 bits x 2 half-periods x clkdiv(2) cycles.
	d.run(40)
	status := d.read(0x04)
	if status&1 != 0 {
		t.Fatalf("still busy, status %#x", status)
	}
	if status&2 == 0 {
		t.Fatal("done not set")
	}
	if got := d.read(0x00); got != 0xB7 {
		t.Fatalf("loopback rx %#x, want 0xB7", got)
	}
	// Clear done via STATUS write.
	d.write(0x04, 0)
	if d.read(0x04)&2 != 0 {
		t.Fatal("done not cleared")
	}
}

func TestSPIMosiWaveform(t *testing.T) {
	d := openDev(t, "spi", nil)
	d.write(0x0C, 1) // fastest clock: 1-cycle half period
	d.write(0x00, 0xA3)
	// Sample MOSI on every rising sclk edge.
	var bits []uint64
	prevClk := uint64(0)
	for i := 0; i < 40 && len(bits) < 8; i++ {
		sclk, _ := d.s.Peek("sclk")
		mosi, _ := d.s.Peek("mosi")
		if sclk == 1 && prevClk == 0 {
			bits = append(bits, mosi)
		}
		prevClk = sclk
		d.run(1)
	}
	if len(bits) != 8 {
		t.Fatalf("captured %d bits", len(bits))
	}
	var got byte
	for _, b := range bits {
		got = got<<1 | byte(b)
	}
	if got != 0xA3 {
		t.Fatalf("MOSI stream %#x, want 0xA3 (bits %v)", got, bits)
	}
}

func TestSPIExternalMiso(t *testing.T) {
	d := openDev(t, "spi", nil)
	d.write(0x0C, 2)
	// Drive MISO constantly high: receive 0xFF.
	d.s.SetInput("miso", 1)
	d.write(0x00, 0x00)
	d.run(40)
	if got := d.read(0x00); got != 0xFF {
		t.Fatalf("rx %#x, want 0xFF", got)
	}
}

func TestSPIDoneIRQ(t *testing.T) {
	d := openDev(t, "spi", nil)
	d.write(0x08, 0x3) // loopback + irq_en
	if d.irq() {
		t.Fatal("irq early")
	}
	d.write(0x00, 0x01)
	d.run(40)
	if !d.irq() {
		t.Fatal("transfer-complete irq missing")
	}
	d.write(0x04, 0)
	d.s.EvalComb()
	if d.irq() {
		t.Fatal("irq should clear with done")
	}
}

func TestSPIScanInstrumentable(t *testing.T) {
	design, reports, err := Build("spi", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if reports["spi"].ChainBits != design.StateBits() {
		t.Fatalf("chain %d != state bits %d", reports["spi"].ChainBits, design.StateBits())
	}
}

// TestCorpusSourceRoundTrip: every corpus peripheral's source parses,
// prints, re-parses and re-prints identically (printer stability over
// real-world-sized designs).
func TestCorpusSourceRoundTrip(t *testing.T) {
	for _, spec := range All() {
		t.Run(spec.Name, func(t *testing.T) {
			f1, err := verilog.Parse(spec.Source())
			if err != nil {
				t.Fatal(err)
			}
			text1 := verilog.Print(f1)
			f2, err := verilog.Parse(text1)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if text2 := verilog.Print(f2); text1 != text2 {
				t.Fatal("printer not stable")
			}
		})
	}
}

// TestInstrumentedCorpusBehaviourUnchanged: with scan_enable low, the
// instrumented design is cycle-for-cycle identical to the original on
// random bus traffic.
func TestInstrumentedCorpusBehaviourUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for _, name := range []string{"gpio", "timer", "crc32", "uart", "spi"} {
		t.Run(name, func(t *testing.T) {
			plainD, _, err := Build(name, nil, false)
			if err != nil {
				t.Fatal(err)
			}
			instD, _, err := Build(name, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := sim.New(plainD)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := sim.New(instD)
			if err != nil {
				t.Fatal(err)
			}
			inst.SetInput("scan_enable", 0)
			for _, s := range []*sim.Simulator{plain, inst} {
				s.SetInput("rst", 1)
				s.StepCycle()
				s.SetInput("rst", 0)
			}
			for i := 0; i < 200; i++ {
				sel := uint64(rng.Intn(2))
				wen := uint64(rng.Intn(2))
				addr := uint64(rng.Intn(16) * 4)
				data := uint64(rng.Uint32())
				for _, s := range []*sim.Simulator{plain, inst} {
					s.SetInput("sel", sel)
					s.SetInput("wen", wen)
					s.SetInput("addr", addr)
					s.SetInput("wdata", data)
					if err := s.StepCycle(); err != nil {
						t.Fatal(err)
					}
				}
				pv, _ := plain.Peek("rdata")
				iv, _ := inst.Peek("rdata")
				if pv != iv {
					t.Fatalf("step %d: rdata diverged %#x vs %#x", i, pv, iv)
				}
				pirq, _ := plain.Peek("irq")
				iirq, _ := inst.Peek("irq")
				if pirq != iirq {
					t.Fatalf("step %d: irq diverged", i)
				}
			}
		})
	}
}
