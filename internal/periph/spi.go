package periph

// SPISource is a mode-0 SPI master (CPOL=0, CPHA=0): 8-bit transfers,
// MSB first, programmable clock divider, manual chip select, loopback
// mode and a transfer-complete interrupt.
//
// Register map:
//
//	0x00 DATA   rw  write: start transfer with this byte (when idle);
//	                read: last received byte
//	0x04 STATUS rw  [0] busy, [1] done (write anything to clear done)
//	0x08 CTRL   rw  [0] loopback (MISO <- MOSI), [1] irq enable,
//	                [2] chip select (cs_n output = ~bit)
//	0x0C CLKDIV rw  half-period of sclk in bus clocks (min 1)
const SPISource = `
module spi (
  input wire clk,
  input wire rst,
  input wire sel,
  input wire wen,
  input wire [7:0] addr,
  input wire [31:0] wdata,
  output reg [31:0] rdata,
  output wire irq,
  output wire sclk,
  output wire mosi,
  input wire miso,
  output wire cs_n
);
  reg [7:0] txsh;
  reg [7:0] rxsh;
  reg [3:0] bits;
  reg [15:0] cnt;
  reg sclk_r;
  reg done;
  reg [2:0] ctrl;
  reg [15:0] clkdiv;

  wire busy = (bits != 0);
  wire miso_eff = ctrl[0] ? mosi : miso;

  assign sclk = sclk_r;
  assign mosi = txsh[7];
  assign cs_n = ~ctrl[2];
  assign irq = done & ctrl[1];

  always @(*) begin
    case (addr)
      8'h00: rdata = {24'h0, rxsh};
      8'h04: rdata = {30'h0, done, busy};
      8'h08: rdata = {29'h0, ctrl};
      8'h0C: rdata = {16'h0, clkdiv};
      default: rdata = 32'h0;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      txsh <= 0;
      rxsh <= 0;
      bits <= 0;
      cnt <= 0;
      sclk_r <= 0;
      done <= 0;
      ctrl <= 0;
      clkdiv <= 16'd2;
    end else begin
      if (sel && wen) begin
        case (addr)
          8'h00: begin
            if (!busy) begin
              txsh <= wdata[7:0];
              bits <= 4'd8;
              cnt <= clkdiv - 1;
              sclk_r <= 0;
              done <= 0;
            end
          end
          8'h04: done <= 0;
          8'h08: ctrl <= wdata[2:0];
          8'h0C: clkdiv <= wdata[15:0];
          default: ctrl <= ctrl;
        endcase
      end else if (busy) begin
        if (cnt == 0) begin
          cnt <= clkdiv - 1;
          if (sclk_r == 0) begin
            // Rising edge: sample MISO.
            sclk_r <= 1;
            rxsh <= {rxsh[6:0], miso_eff};
          end else begin
            // Falling edge: shift out the next bit.
            sclk_r <= 0;
            txsh <= {txsh[6:0], 1'b0};
            bits <= bits - 1;
            if (bits == 1)
              done <= 1;
          end
        end else begin
          cnt <= cnt - 1;
        end
      end
    end
  end
endmodule
`
