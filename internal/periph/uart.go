package periph

// UARTSource is a serial transceiver with an 8-deep RX FIFO, a
// programmable baud divider, serial loopback mode and interrupts —
// modeled on the ubiquitous 8250-style open-source UART cores.
//
// Register map:
//
//	0x00 DATA   rw  write: transmit byte; read: pop RX FIFO
//	0x04 STATUS r   [0] tx_busy, [1] rx_avail, [2] overflow
//	0x08 CTRL   rw  [0] loopback, [1] irq_en_rx, [2] irq_en_tx
//	0x0C BAUD   rw  clock cycles per bit (min 4)
//
// The RX engine waits 1.5 bit times after the falling start edge and
// then samples once per bit (no oversampling): adequate for the
// synchronous-clock co-simulation environment.
const UARTSource = `
module uart (
  input wire clk,
  input wire rst,
  input wire sel,
  input wire wen,
  input wire [7:0] addr,
  input wire [31:0] wdata,
  output reg [31:0] rdata,
  output wire irq,
  input wire rx_pin,
  output wire tx_pin
);
  reg [15:0] bauddiv;
  reg [2:0] ctrl; // [0] loopback, [1] irq_en_rx, [2] irq_en_tx
  reg overflow;

  // Transmit engine.
  reg [9:0] tx_shift;
  reg [3:0] tx_bits;
  reg [15:0] tx_cnt;
  wire tx_busy = (tx_bits != 0);
  assign tx_pin = tx_busy ? tx_shift[0] : 1'b1;

  // Receive engine. The line must be seen idle-high once before a
  // start bit is accepted (rx_armed), so a floating-low or
  // disconnected RX pin cannot produce break garbage.
  wire rx_line = ctrl[0] ? tx_pin : rx_pin;
  reg rx_armed;
  reg [1:0] rx_state; // 0 idle, 1 data, 2 stop
  reg [3:0] rx_bits;
  reg [15:0] rx_cnt;
  reg [7:0] rx_shift;

  wire sample_now = (rx_state == 2'd1) && (rx_cnt == 0);
  wire [7:0] rx_byte = {rx_line, rx_shift[7:1]};
  wire rx_done = sample_now && (rx_bits == 1);

  // RX FIFO.
  reg [7:0] fifo [0:7];
  reg [2:0] rptr;
  reg [2:0] wptr;
  reg [3:0] fcount;
  wire rx_avail = (fcount != 0);
  wire fifo_full = (fcount == 8);
  wire push = rx_done && !fifo_full;
  wire pop = sel && !wen && (addr == 8'h00) && rx_avail;

  assign irq = (ctrl[1] & rx_avail) | (ctrl[2] & ~tx_busy);

  always @(*) begin
    case (addr)
      8'h00: rdata = {24'h0, fifo[rptr]};
      8'h04: rdata = {29'h0, overflow, rx_avail, tx_busy};
      8'h08: rdata = {29'h0, ctrl};
      8'h0C: rdata = {16'h0, bauddiv};
      default: rdata = 32'h0;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      bauddiv <= 16'd8;
      ctrl <= 0;
      overflow <= 0;
      tx_shift <= 0;
      tx_bits <= 0;
      tx_cnt <= 0;
      rx_armed <= 0;
      rx_state <= 0;
      rx_bits <= 0;
      rx_cnt <= 0;
      rx_shift <= 0;
      rptr <= 0;
      wptr <= 0;
      fcount <= 0;
    end else begin
      // Bus writes.
      if (sel && wen) begin
        case (addr)
          8'h00: begin
            if (!tx_busy) begin
              tx_shift <= {1'b1, wdata[7:0], 1'b0};
              tx_bits <= 4'd10;
              tx_cnt <= bauddiv - 1;
            end
          end
          8'h04: overflow <= 0;
          8'h08: ctrl <= wdata[2:0];
          8'h0C: bauddiv <= wdata[15:0];
          default: ctrl <= ctrl;
        endcase
      end

      // Transmit shifting.
      if (tx_busy && !(sel && wen && (addr == 8'h00))) begin
        if (tx_cnt == 0) begin
          tx_shift <= {1'b1, tx_shift[9:1]};
          tx_bits <= tx_bits - 1;
          tx_cnt <= bauddiv - 1;
        end else begin
          tx_cnt <= tx_cnt - 1;
        end
      end

      // Receive state machine.
      case (rx_state)
        2'd0: begin
          if (!rx_armed) begin
            if (rx_line)
              rx_armed <= 1;
          end else if (rx_line == 0) begin
            rx_state <= 2'd1;
            rx_cnt <= bauddiv + (bauddiv >> 1) - 1;
            rx_bits <= 4'd8;
          end
        end
        2'd1: begin
          if (rx_cnt == 0) begin
            rx_shift <= rx_byte;
            if (rx_bits == 1) begin
              rx_state <= 2'd2;
              rx_cnt <= bauddiv - 1;
            end else begin
              rx_bits <= rx_bits - 1;
              rx_cnt <= bauddiv - 1;
            end
          end else begin
            rx_cnt <= rx_cnt - 1;
          end
        end
        default: begin
          if (rx_cnt == 0)
            rx_state <= 2'd0;
          else
            rx_cnt <= rx_cnt - 1;
        end
      endcase

      // FIFO push/pop.
      if (push) begin
        fifo[wptr] <= rx_byte;
        wptr <= wptr + 1;
      end
      if (rx_done && fifo_full)
        overflow <= 1;
      if (pop)
        rptr <= rptr + 1;
      if (push && !pop)
        fcount <= fcount + 1;
      else if (pop && !push)
        fcount <= fcount - 1;
    end
  end
endmodule
`
