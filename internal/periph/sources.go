// Package periph provides HardSnap's peripheral corpus: Verilog
// sources for the evaluation peripherals (GPIO, timer, UART, CRC-32,
// AES-128 and a parametric register file), a registry describing their
// register maps, and helpers that parse, optionally instrument and
// elaborate them. The corpus mirrors the paper's "4 synthetic real
// world and open-source peripherals ... common on embedded systems and
// [with] different design complexities".
package periph

// GPIOSource is a minimal general-purpose I/O block: the smallest
// corpus member (a couple dozen flops).
//
// Register map (word offsets):
//
//	0x00 OUT  rw  output latch
//	0x04 IN   r   pin inputs
//	0x08 DIR  rw  direction mask (1 = output)
const GPIOSource = `
module gpio (
  input wire clk,
  input wire rst,
  input wire sel,
  input wire wen,
  input wire [7:0] addr,
  input wire [31:0] wdata,
  output reg [31:0] rdata,
  output wire irq,
  input wire [31:0] pins_in,
  output wire [31:0] pins_out
);
  reg [31:0] out;
  reg [31:0] dir;

  assign pins_out = out & dir;
  assign irq = 1'b0;

  always @(*) begin
    case (addr)
      8'h00: rdata = out;
      8'h04: rdata = pins_in;
      8'h08: rdata = dir;
      default: rdata = 32'h0;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      out <= 0;
      dir <= 0;
    end else if (sel && wen) begin
      case (addr)
        8'h00: out <= wdata;
        8'h08: dir <= wdata;
        default: out <= out;
      endcase
    end
  end
endmodule
`

// TimerSource is a down-counting timer with auto-reload and interrupt.
//
// Register map:
//
//	0x00 LOAD   rw  reload value
//	0x04 VALUE  r   current count
//	0x08 CTRL   rw  [0] enable, [1] irq enable, [2] auto-reload
//	0x0C STATUS rw  [0] expired (write 1 to clear)
const TimerSource = `
module timer (
  input wire clk,
  input wire rst,
  input wire sel,
  input wire wen,
  input wire [7:0] addr,
  input wire [31:0] wdata,
  output reg [31:0] rdata,
  output wire irq
);
  reg [31:0] load;
  reg [31:0] value;
  reg [2:0] ctrl;
  reg expired;

  wire enable = ctrl[0];
  wire irq_en = ctrl[1];
  wire auto_reload = ctrl[2];

  assign irq = expired & irq_en;

  always @(*) begin
    case (addr)
      8'h00: rdata = load;
      8'h04: rdata = value;
      8'h08: rdata = {29'h0, ctrl};
      8'h0C: rdata = {31'h0, expired};
      default: rdata = 32'h0;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      load <= 0;
      value <= 0;
      ctrl <= 0;
      expired <= 0;
    end else begin
      if (sel && wen) begin
        case (addr)
          8'h00: begin
            load <= wdata;
            value <= wdata;
          end
          8'h08: ctrl <= wdata[2:0];
          8'h0C: begin
            if (wdata[0])
              expired <= 0;
          end
          default: load <= load;
        endcase
      end else if (enable) begin
        if (value == 0) begin
          expired <= 1;
          if (auto_reload)
            value <= load;
        end else begin
          value <= value - 1;
        end
      end
    end
  end
endmodule
`

// CRC32Source is an iterative CRC-32 (IEEE 802.3, reflected,
// polynomial 0xEDB88320) engine that consumes one byte in eight clock
// cycles, exposing a busy flag — giving firmware a reason to poll or
// sleep, like real offload engines.
//
// Register map:
//
//	0x00 DATA   w   feed one byte (starts an 8-cycle computation)
//	0x04 CRC    r   current CRC (finalized: bit-inverted)
//	0x08 CTRL   w   write 1 to (re)initialize
//	0x0C STATUS r   [0] busy
const CRC32Source = `
module crc32 (
  input wire clk,
  input wire rst,
  input wire sel,
  input wire wen,
  input wire [7:0] addr,
  input wire [31:0] wdata,
  output reg [31:0] rdata,
  output wire irq
);
  reg [31:0] crc;
  reg [7:0] data;
  reg [3:0] bits_left;

  wire busy = (bits_left != 0);
  wire fb = crc[0] ^ data[0];
  wire [31:0] shifted = {1'b0, crc[31:1]};
  wire [31:0] next_crc = fb ? (shifted ^ 32'hEDB88320) : shifted;

  assign irq = 1'b0;

  always @(*) begin
    case (addr)
      8'h04: rdata = ~crc;
      8'h0C: rdata = {31'h0, busy};
      default: rdata = 32'h0;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      crc <= 32'hFFFFFFFF;
      data <= 0;
      bits_left <= 0;
    end else if (busy) begin
      crc <= next_crc;
      data <= {1'b0, data[7:1]};
      bits_left <= bits_left - 1;
    end else if (sel && wen) begin
      case (addr)
        8'h00: begin
          data <= wdata[7:0];
          bits_left <= 8;
        end
        8'h08: begin
          if (wdata[0])
            crc <= 32'hFFFFFFFF;
        end
        default: data <= data;
      endcase
    end
  end
endmodule
`

// RegFileSource is the parametric register file used for the
// snapshot-cost sweep (experiment E2): DEPTH words of WIDTH bits give
// DEPTH*WIDTH state flops.
//
// Register map:
//
//	0x00 ADDR  rw  word index
//	0x04 DATA  rw  read/write file[ADDR]
//	0x08 INFO  r   {WIDTH[15:0], DEPTH[15:0]}
const RegFileSource = `
module regfile #(parameter DEPTH = 16, parameter WIDTH = 32) (
  input wire clk,
  input wire rst,
  input wire sel,
  input wire wen,
  input wire [7:0] addr,
  input wire [31:0] wdata,
  output reg [31:0] rdata,
  output wire irq
);
  reg [WIDTH-1:0] file [0:DEPTH-1];
  reg [15:0] index;

  assign irq = 1'b0;

  always @(*) begin
    case (addr)
      8'h00: rdata = {16'h0, index};
      8'h04: rdata = file[index];
      8'h08: rdata = (WIDTH << 16) | DEPTH;
      default: rdata = 32'h0;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      index <= 0;
    end else if (sel && wen) begin
      case (addr)
        8'h00: index <= wdata[15:0];
        8'h04: file[index] <= wdata;
        default: index <= index;
      endcase
    end
  end
endmodule
`
