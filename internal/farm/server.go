package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"hardsnap/internal/campaign"
)

// The wire protocol is line-delimited JSON over TCP: each request is
// one Request object, each reply one Response object. Encoding uses
// json.Encoder/Decoder streams rather than line scanners, so
// firmware blobs are not subject to any line-length limit. A
// connection carries any number of sequential requests; a stream
// request turns the connection into a one-way event feed terminated
// by a final done Response.

// Request is one client → server message.
type Request struct {
	// Op selects the operation: submit | status | results | stream |
	// cancel | tenants | pool.
	Op string `json:"op"`
	// Tenant authenticates the submitter (submit).
	Tenant string `json:"tenant,omitempty"`
	// Job is the campaign spec (submit).
	Job *campaign.Job `json:"job,omitempty"`
	// ID names an existing job (status / results / stream / cancel).
	ID string `json:"id,omitempty"`
}

// Response is one server → client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// ID echoes the job ID (submit).
	ID string `json:"id,omitempty"`
	// Job carries job state (status / results).
	Job *JobInfo `json:"job,omitempty"`
	// Event is one streamed progress event (stream).
	Event *campaign.Event `json:"event,omitempty"`
	// Done terminates a stream.
	Done bool `json:"done,omitempty"`
	// Tenants / Pool carry introspection payloads.
	Tenants []TenantUsage `json:"tenants,omitempty"`
	Pool    *PoolStats    `json:"pool,omitempty"`
}

// Server exposes a Farm over TCP.
type Server struct {
	farm *Farm

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewServer wraps the farm; call Serve to accept clients.
func NewServer(f *Farm) *Server {
	return &Server{farm: f, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close shuts the listener down.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.ln == nil
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves; the returned address is
// useful with ":0".
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln) //nolint:errcheck — Serve only errors after Close
	return ln.Addr(), nil
}

// Close stops accepting, drops live connections and waits for
// handlers. The farm itself is closed by its owner.
func (s *Server) Close() {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				_ = enc.Encode(Response{Error: fmt.Sprintf("bad request: %v", err)})
			}
			return
		}
		if req.Op == "stream" {
			s.stream(enc, req.ID)
			return // a stream consumes the rest of the connection
		}
		if err := enc.Encode(s.handle(req)); err != nil {
			return
		}
	}
}

func (s *Server) handle(req Request) Response {
	switch req.Op {
	case "submit":
		if req.Job == nil {
			return Response{Error: "submit: missing job"}
		}
		id, err := s.farm.Submit(req.Tenant, *req.Job)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, ID: id}
	case "status", "results":
		info, ok := s.farm.Job(req.ID)
		if !ok {
			return Response{Error: fmt.Sprintf("unknown job %q", req.ID)}
		}
		if req.Op == "status" {
			// status is the lightweight poll: strip the result body
			// but piggyback the pool/store counters so a monitoring
			// loop sees retention pressure without a second op.
			info.Result = nil
			st := s.farm.PoolStats()
			return Response{OK: true, ID: info.ID, Job: &info, Pool: &st}
		}
		return Response{OK: true, ID: info.ID, Job: &info}
	case "cancel":
		if err := s.farm.Cancel(req.ID); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, ID: req.ID}
	case "tenants":
		return Response{OK: true, Tenants: s.farm.Tenants()}
	case "pool":
		st := s.farm.PoolStats()
		return Response{OK: true, Pool: &st}
	}
	return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

func (s *Server) stream(enc *json.Encoder, id string) {
	ch, ok := s.farm.Subscribe(id)
	if !ok {
		_ = enc.Encode(Response{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	for ev := range ch {
		ev := ev
		if err := enc.Encode(Response{OK: true, Event: &ev}); err != nil {
			return
		}
	}
	_ = enc.Encode(Response{OK: true, Done: true})
}
