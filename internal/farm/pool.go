// Package farm runs exploration campaigns as a service: a
// multi-tenant scheduler with per-tenant virtual-time and
// solver-query budgets, a pre-warmed pool of execution targets that
// keeps rig elaboration off the job admission path, per-job
// crash-safe journals that survive server restarts, and a
// line-delimited JSON TCP protocol (server.go / client.go).
package farm

import (
	"fmt"
	"sync"
	"time"

	"hardsnap/internal/campaign"
	"hardsnap/internal/snapshot"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// PoolStats counts pool traffic. Latencies are cumulative wall time,
// so WarmNS/WarmHits is the mean warm admission latency (compare to
// ColdNS/ColdBuilds — the E15 gate).
type PoolStats struct {
	WarmHits   uint64 `json:"warm_hits"`
	ColdBuilds uint64 `json:"cold_builds"`
	Recycled   uint64 `json:"recycled"`
	Discarded  uint64 `json:"discarded"`
	WarmNS     int64  `json:"warm_ns"`
	ColdNS     int64  `json:"cold_ns"`
	// Store reports the content-addressed boot-image store backing
	// the pool, including the retention tier's eviction counters.
	Store snapshot.Stats `json:"store"`
}

// pooledTarget is one idle warm rig plus the content address of its
// pristine boot image.
type pooledTarget struct {
	tgt    *target.Target
	boot   snapshot.Digest
	bootID snapshot.ID
}

// Pool keeps pre-built execution targets ready, keyed by the job's
// rig key (peripheral set + target kind + snapshot method).
// Elaborating peripheral RTL is the expensive part of starting a job;
// the pool pays it in the background so admission only pays a
// restore-to-power-on wipe. Pristine boot images are held in a
// content-addressed snapshot store: a recycled rig must digest-match
// its boot image or it is discarded, so a job can never observe a
// predecessor's hardware state.
type Pool struct {
	size  int
	store *snapshot.Store

	mu      sync.Mutex
	idle    map[string][]*pooledTarget
	filling map[string]int // in-flight background builds per key
	out     map[string]int // leased targets per key (they come back recycled)
	seq     int
	closed  bool
	stats   PoolStats

	wg sync.WaitGroup
}

// NewPool creates a pool that keeps up to size warm targets per rig
// key (size <= 0 disables pre-warming: every acquire builds cold).
func NewPool(size int) *Pool {
	return &Pool{
		size:    size,
		store:   snapshot.NewStore(),
		idle:    make(map[string][]*pooledTarget),
		filling: make(map[string]int),
		out:     make(map[string]int),
	}
}

// Lease is one acquired target. Release returns it to the pool
// (recycled and digest-verified) or discards it.
type Lease struct {
	// Target is nil for jobs that need no hardware (no peripherals).
	Target *target.Target
	// Warm reports whether admission was served from the warm pool.
	Warm bool

	pool *Pool
	key  string
	pt   *pooledTarget
}

// buildRig elaborates a fresh target for the job.
func (p *Pool) buildRig(job campaign.Job, name string) (*pooledTarget, error) {
	clock := &vtime.Clock{}
	var tgt *target.Target
	var err error
	if job.FPGA {
		tgt, err = target.NewFPGA(name, clock, job.Peripherals, job.Readback)
	} else {
		tgt, err = target.NewSimulator(name, clock, job.Peripherals)
	}
	if err != nil {
		return nil, err
	}
	rec := snapshot.Record{HW: tgt.PowerOnState()}
	boot := snapshot.DigestRecord(&rec)
	id := p.store.Put(rec)
	return &pooledTarget{tgt: tgt, boot: boot, bootID: id}, nil
}

// Acquire returns a lease for the job's rig: a warm pooled target
// when one is idle, a cold build otherwise. Jobs without peripherals
// get a nil-target lease (the engine runs software-only). A warm hit
// triggers a background refill so the pool stays warm.
func (p *Pool) Acquire(job campaign.Job) (*Lease, error) {
	if len(job.Peripherals) == 0 {
		return &Lease{pool: p}, nil
	}
	key := job.RigKey()
	start := time.Now()

	p.mu.Lock()
	if q := p.idle[key]; len(q) > 0 {
		pt := q[len(q)-1]
		p.idle[key] = q[:len(q)-1]
		p.out[key]++
		p.stats.WarmHits++
		p.stats.WarmNS += int64(time.Since(start))
		p.mu.Unlock()
		p.refill(key, job)
		return &Lease{Target: pt.tgt, Warm: true, pool: p, key: key, pt: pt}, nil
	}
	p.seq++
	name := fmt.Sprintf("rig-%d", p.seq)
	p.mu.Unlock()

	pt, err := p.buildRig(job, name)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.out[key]++
	p.stats.ColdBuilds++
	p.stats.ColdNS += int64(time.Since(start))
	p.mu.Unlock()
	p.refill(key, job)
	return &Lease{Target: pt.tgt, pool: p, key: key, pt: pt}, nil
}

// refill tops the key's capacity (idle + building + leased) up to
// size in the background. Leased targets count: they return recycled,
// so building a spare for them would only be thrown away.
func (p *Pool) refill(key string, job campaign.Job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && len(p.idle[key])+p.filling[key]+p.out[key] < p.size {
		p.filling[key]++
		p.seq++
		name := fmt.Sprintf("rig-%d", p.seq)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			pt, err := p.buildRig(job, name)
			p.mu.Lock()
			defer p.mu.Unlock()
			p.filling[key]--
			if err != nil || p.closed || len(p.idle[key]) >= p.size {
				if pt != nil {
					p.store.Release(pt.bootID)
				}
				return
			}
			p.idle[key] = append(p.idle[key], pt)
		}()
	}
}

// Prewarm synchronously builds warm targets for the job's rig key
// until the pool holds n (capped at the pool size).
func (p *Pool) Prewarm(job campaign.Job, n int) error {
	if len(job.Peripherals) == 0 {
		return nil
	}
	if n > p.size {
		n = p.size
	}
	key := job.RigKey()
	for {
		p.mu.Lock()
		if p.closed || len(p.idle[key]) >= n {
			p.mu.Unlock()
			return nil
		}
		p.seq++
		name := fmt.Sprintf("rig-%d", p.seq)
		p.mu.Unlock()
		pt, err := p.buildRig(job, name)
		if err != nil {
			return err
		}
		p.mu.Lock()
		p.idle[key] = append(p.idle[key], pt)
		p.mu.Unlock()
	}
}

// Release recycles the leased target and returns it to the pool. The
// recycled hardware must digest-match the rig's pristine boot image;
// anything else (and any recycle error, e.g. a dead target) discards
// the rig — the pool never hands out a tainted target.
func (l *Lease) Release() {
	if l == nil || l.Target == nil {
		return
	}
	p := l.pool
	if err := l.Target.Recycle(); err != nil {
		p.discard(l)
		return
	}
	rec := snapshot.Record{HW: l.Target.LiveState()}
	if snapshot.DigestRecord(&rec) != l.pt.boot {
		p.discard(l)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out[l.key]--
	if p.closed || len(p.idle[l.key]) >= p.size {
		p.stats.Discarded++
		p.store.Release(l.pt.bootID)
		return
	}
	p.stats.Recycled++
	p.idle[l.key] = append(p.idle[l.key], l.pt)
}

func (p *Pool) discard(l *Lease) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out[l.key]--
	p.stats.Discarded++
	p.store.Release(l.pt.bootID)
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	st := p.stats
	p.mu.Unlock()
	st.Store = p.store.Stats()
	return st
}

// SetRetention bounds the boot-image store's retention tier (see
// snapshot.Store.SetRetention): released boot images stay resident up
// to maxBytes so a re-acquired rig key can re-seed without a rebuild.
func (p *Pool) SetRetention(maxBytes uint64) { p.store.SetRetention(maxBytes) }

// Close stops refilling and waits for in-flight background builds.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
}
