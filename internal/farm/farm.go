package farm

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
)

// Budget bounds one tenant's cumulative resource consumption across
// all its jobs. Zero fields are unlimited.
type Budget struct {
	// VirtualTime is the total modeled testbed time the tenant may
	// consume.
	VirtualTime time.Duration `json:"virtual_time,omitempty"`
	// SolverQueries is the total solver queries the tenant may issue.
	SolverQueries uint64 `json:"solver_queries,omitempty"`
}

// TenantUsage is the wire form of one tenant's accounting.
type TenantUsage struct {
	Name   string `json:"name"`
	Budget Budget `json:"budget"`
	// Used counts completed-job consumption; Reserved is held by
	// running jobs (their clamped worst case).
	UsedVirtualTime     time.Duration `json:"used_virtual_time"`
	UsedSolverQueries   uint64        `json:"used_solver_queries"`
	ReservedVirtualTime time.Duration `json:"reserved_virtual_time"`
	Jobs                int           `json:"jobs"`
}

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// terminal reports whether no further transitions can happen.
func (s JobStatus) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// JobInfo is the wire form of one job's state.
type JobInfo struct {
	ID     string    `json:"id"`
	Tenant string    `json:"tenant"`
	Status JobStatus `json:"status"`
	// Warm reports whether admission was served from the warm pool.
	Warm   bool             `json:"warm,omitempty"`
	Error  string           `json:"error,omitempty"`
	Result *campaign.Result `json:"result,omitempty"`
}

// jobState is the farm's in-memory record of one job.
type jobState struct {
	id      string
	tenant  string
	job     campaign.Job
	status  JobStatus
	warm    bool
	err     string
	result  *campaign.Result
	resume  *core.Campaign // journaled progress recovered at startup
	cancel  context.CancelFunc
	history []campaign.Event
	subs    []chan campaign.Event
}

// tenantState tracks one tenant's budget accounting. Running jobs
// hold reservations for their clamped worst case, so concurrent jobs
// of one tenant can never jointly overshoot the budget.
type tenantState struct {
	name      string
	budget    Budget
	usedVT    time.Duration
	usedQ     uint64
	reserved  time.Duration // worst-case VT held by running jobs
	reservedQ uint64        // worst-case queries held by running jobs
	jobs      int
}

// remainingVT is the virtual time still grantable to a new job.
func (t *tenantState) remainingVT() (time.Duration, bool) {
	if t.budget.VirtualTime == 0 {
		return 0, false // unlimited
	}
	return t.budget.VirtualTime - t.usedVT - t.reserved, true
}

func (t *tenantState) remainingQ() (uint64, bool) {
	if t.budget.SolverQueries == 0 {
		return 0, false
	}
	if t.usedQ+t.reservedQ >= t.budget.SolverQueries {
		return 0, true
	}
	return t.budget.SolverQueries - t.usedQ - t.reservedQ, true
}

// Config parameterizes a Farm.
type Config struct {
	// StateDir persists per-job specs, results and campaign journals;
	// a Farm restarted on the same directory recovers every job.
	StateDir string
	// Slots bounds concurrently running jobs (default 2).
	Slots int
	// PoolSize is the warm-target count per rig key (default 2;
	// negative disables pre-warming).
	PoolSize int
	// Tenants declares the known tenants and their budgets. Unknown
	// tenants are rejected at submit.
	Tenants map[string]Budget
}

// Farm schedules campaign jobs across tenants with fair-share
// ordering and budget enforcement, running them on pooled targets.
type Farm struct {
	cfg  Config
	pool *Pool

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	jobs    map[string]*jobState
	queue   []string // job IDs awaiting a slot, submit order
	running int
	closed  bool

	// beforeSettle, when set (by tests, before the first Submit),
	// runs after a job's campaign completes but before settle charges
	// the tenant and frees the slot. It lets scheduling tests hold a
	// slot deterministically instead of racing the job's wall-clock
	// duration, which shrinks with every simulator speedup.
	beforeSettle func(jobID string)

	wg sync.WaitGroup
}

// New builds a Farm and recovers any jobs persisted in StateDir:
// finished jobs are reloaded for result serving, and jobs that were
// queued or running when the previous process died are re-enqueued —
// parallel jobs resume from their campaign journal instead of
// restarting.
func New(cfg Config) (*Farm, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 2
	}
	f := &Farm{
		cfg:     cfg,
		pool:    NewPool(cfg.PoolSize),
		tenants: make(map[string]*tenantState),
		jobs:    make(map[string]*jobState),
	}
	f.cond = sync.NewCond(&f.mu)
	for name, b := range cfg.Tenants {
		f.tenants[name] = &tenantState{name: name, budget: b}
	}
	if err := f.recover(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.reapLocked() // a recovered tenant may already be out of budget
	f.mu.Unlock()
	f.wg.Add(1)
	go f.schedule()
	return f, nil
}

// ErrUnknownTenant rejects submissions from undeclared tenants.
var ErrUnknownTenant = errors.New("farm: unknown tenant")

// ErrBudgetExhausted rejects submissions from tenants with nothing
// left to spend.
var ErrBudgetExhausted = errors.New("farm: tenant budget exhausted")

// ErrUnknownJob reports a job ID the farm has never seen.
var ErrUnknownJob = errors.New("farm: unknown job")

func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return hex.EncodeToString(b[:])
}

// Submit validates and enqueues a job for the tenant, returning the
// job ID.
func (f *Farm) Submit(tenantName string, job campaign.Job) (string, error) {
	if err := job.Validate(); err != nil {
		return "", err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return "", errors.New("farm: closed")
	}
	ten, ok := f.tenants[tenantName]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	// Gate on spent budget only: reservations held by running jobs
	// release back, so queued work behind them is fine.
	if ten.budget.VirtualTime > 0 && ten.usedVT >= ten.budget.VirtualTime {
		return "", fmt.Errorf("%w: %s has no virtual time left", ErrBudgetExhausted, tenantName)
	}
	if ten.budget.SolverQueries > 0 && ten.usedQ >= ten.budget.SolverQueries {
		return "", fmt.Errorf("%w: %s has no solver queries left", ErrBudgetExhausted, tenantName)
	}
	js := &jobState{
		id:     newJobID(),
		tenant: tenantName,
		job:    job,
		status: StatusQueued,
	}
	f.jobs[js.id] = js
	f.queue = append(f.queue, js.id)
	ten.jobs++
	f.persistLocked(js)
	f.cond.Signal()
	return js.id, nil
}

// schedule is the farm's scheduling loop: whenever a slot is free it
// starts the next queued job of the least-charged eligible tenant
// (fair share by spent+reserved virtual time, submit order within a
// tenant).
func (f *Farm) schedule() {
	defer f.wg.Done()
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		for !f.closed && (f.running >= f.cfg.Slots || f.pickLocked() == "") {
			f.cond.Wait()
		}
		if f.closed {
			return
		}
		id := f.pickLocked()
		js := f.jobs[id]
		f.dequeueLocked(id)
		f.startLocked(js)
	}
}

// pickLocked chooses the next runnable job ID ("" if none): among
// tenants with queued jobs and budget left, the one that has charged
// the least virtual time so far; within a tenant, submit order.
func (f *Farm) pickLocked() string {
	type cand struct {
		id      string
		charged time.Duration
	}
	best := cand{}
	seen := map[string]bool{}
	for _, id := range f.queue {
		js := f.jobs[id]
		if seen[js.tenant] {
			continue // only the tenant's oldest queued job competes
		}
		seen[js.tenant] = true
		ten := f.tenants[js.tenant]
		if rem, capped := ten.remainingVT(); capped && rem <= 0 {
			continue // fully reserved: wait for a running job to settle
		}
		if rem, capped := ten.remainingQ(); capped && rem == 0 {
			continue
		}
		charged := ten.usedVT + ten.reserved
		if best.id == "" || charged < best.charged {
			best = cand{id: id, charged: charged}
		}
	}
	return best.id
}

func (f *Farm) dequeueLocked(id string) {
	for i, qid := range f.queue {
		if qid == id {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			return
		}
	}
}

// startLocked reserves budget, clamps the job's own limits to the
// tenant's remainder and launches the runner goroutine.
func (f *Farm) startLocked(js *jobState) {
	ten := f.tenants[js.tenant]
	run := js.job
	var resVT time.Duration
	var resQ uint64
	if rem, capped := ten.remainingVT(); capped {
		if run.MaxVirtualTime == 0 || run.MaxVirtualTime > rem {
			run.MaxVirtualTime = rem
		}
		resVT = run.MaxVirtualTime
		ten.reserved += resVT
	}
	if rem, capped := ten.remainingQ(); capped {
		if run.MaxSolverQueries == 0 || run.MaxSolverQueries > rem {
			run.MaxSolverQueries = rem
		}
		resQ = run.MaxSolverQueries
		ten.reservedQ += resQ
	}
	ctx, cancel := context.WithCancel(context.Background())
	js.cancel = cancel
	js.status = StatusRunning
	f.running++
	f.persistLocked(js)
	f.wg.Add(1)
	go f.runJob(ctx, js, run, resVT, resQ)
}

// runJob executes one job outside the farm lock.
func (f *Farm) runJob(ctx context.Context, js *jobState, run campaign.Job, resVT time.Duration, resQ uint64) {
	defer f.wg.Done()
	events := make(chan campaign.Event, 256)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			f.publish(js, ev)
		}
	}()

	opts := campaign.RunOptions{Events: events}
	var res *campaign.Result
	lease, err := f.pool.Acquire(run)
	if err == nil {
		opts.Target = lease.Target
		f.mu.Lock()
		js.warm = lease.Warm
		f.mu.Unlock()
		if run.Workers > 1 {
			opts.Journal = f.journalPath(js.id)
			if js.resume != nil {
				opts.Resume = js.resume
				opts.Journal = ""
				js.resume = nil
			}
		}
		res, err = campaign.Runner{}.Run(ctx, run, opts)
		lease.Release()
	}
	// Drain the event feed before settling: settle closes subscriber
	// channels, and every event must reach them first.
	close(events)
	<-done
	if f.beforeSettle != nil {
		f.beforeSettle(js.id)
	}
	f.settle(js, res, err, resVT, resQ)
}

// settle records a job's outcome, charges the tenant and frees the
// slot.
func (f *Farm) settle(js *jobState, res *campaign.Result, err error, resVT time.Duration, resQ uint64) {
	f.mu.Lock()
	ten := f.tenants[js.tenant]
	ten.reserved -= resVT
	ten.reservedQ -= resQ
	f.running--
	switch {
	case res != nil:
		js.status = StatusDone
		js.result = res
		ten.usedVT += res.VirtualTime
		if res.SolverQueries > 0 {
			ten.usedQ += uint64(res.SolverQueries)
		}
	case errors.Is(err, core.ErrInterrupted) && f.closed:
		// Interrupted by shutdown, not by a client: keep the job
		// persisted as running so a Farm reopened on this StateDir
		// re-enqueues it (parallel jobs resume from their journal).
	case errors.Is(err, core.ErrInterrupted):
		js.status = StatusCancelled
		js.err = err.Error()
	default:
		js.status = StatusFailed
		js.err = err.Error()
	}
	f.persistLocked(js)
	f.closeSubsLocked(js)
	f.reapLocked()
	f.cond.Broadcast()
	f.mu.Unlock()
}

// reapLocked fails queued jobs whose tenant has already spent its
// budget: consumption only grows, so no future settle can ever make
// room for them, and leaving them queued would strand waiters.
func (f *Farm) reapLocked() {
	for _, id := range append([]string(nil), f.queue...) {
		js := f.jobs[id]
		ten := f.tenants[js.tenant]
		spentVT := ten.budget.VirtualTime > 0 && ten.usedVT >= ten.budget.VirtualTime
		spentQ := ten.budget.SolverQueries > 0 && ten.usedQ >= ten.budget.SolverQueries
		if !spentVT && !spentQ {
			continue
		}
		f.dequeueLocked(id)
		js.status = StatusFailed
		js.err = fmt.Sprintf("%v: %s", ErrBudgetExhausted, js.tenant)
		f.persistLocked(js)
		f.closeSubsLocked(js)
	}
}

// publish appends to the job's event history and fans out to
// subscribers (non-blocking: a slow subscriber drops events).
func (f *Farm) publish(js *jobState, ev campaign.Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(js.history) < 1024 {
		js.history = append(js.history, ev)
	}
	for _, sub := range js.subs {
		select {
		case sub <- ev:
		default:
		}
	}
}

func (f *Farm) closeSubsLocked(js *jobState) {
	for _, sub := range js.subs {
		close(sub)
	}
	js.subs = nil
}

// Subscribe returns a channel that replays the job's event history
// and then streams live events; it is closed when the job reaches a
// terminal state. The bool reports whether the job exists.
func (f *Farm) Subscribe(id string) (<-chan campaign.Event, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	js, ok := f.jobs[id]
	if !ok {
		return nil, false
	}
	ch := make(chan campaign.Event, 1024+len(js.history))
	for _, ev := range js.history {
		ch <- ev
	}
	if js.status.terminal() {
		close(ch)
		return ch, true
	}
	js.subs = append(js.subs, ch)
	return ch, true
}

// Cancel stops a queued or running job.
func (f *Farm) Cancel(id string) error {
	f.mu.Lock()
	js, ok := f.jobs[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch js.status {
	case StatusQueued:
		f.dequeueLocked(id)
		js.status = StatusCancelled
		js.err = "cancelled while queued"
		f.persistLocked(js)
		f.closeSubsLocked(js)
		f.mu.Unlock()
		return nil
	case StatusRunning:
		cancel := js.cancel
		f.mu.Unlock()
		cancel()
		return nil
	default:
		f.mu.Unlock()
		return fmt.Errorf("farm: job %s is already %s", id, js.status)
	}
}

// Job returns the wire form of one job.
func (f *Farm) Job(id string) (JobInfo, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	js, ok := f.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return JobInfo{
		ID: js.id, Tenant: js.tenant, Status: js.status,
		Warm: js.warm, Error: js.err, Result: js.result,
	}, true
}

// Tenants returns every tenant's usage, sorted by name.
func (f *Farm) Tenants() []TenantUsage {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TenantUsage, 0, len(f.tenants))
	for _, t := range f.tenants {
		out = append(out, TenantUsage{
			Name: t.name, Budget: t.budget,
			UsedVirtualTime: t.usedVT, UsedSolverQueries: t.usedQ,
			ReservedVirtualTime: t.reserved, Jobs: t.jobs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PoolStats exposes the warm-pool counters.
func (f *Farm) PoolStats() PoolStats { return f.pool.Stats() }

// Wait blocks until the job reaches a terminal state (test and
// client convenience).
func (f *Farm) Wait(id string) (JobInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		js, ok := f.jobs[id]
		if !ok {
			return JobInfo{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
		}
		if js.status.terminal() {
			return JobInfo{
				ID: js.id, Tenant: js.tenant, Status: js.status,
				Warm: js.warm, Error: js.err, Result: js.result,
			}, nil
		}
		f.cond.Wait()
	}
}

// Close cancels running jobs, stops the scheduler and waits for
// everything to settle. Interrupted parallel jobs keep their
// journals, so a Farm reopened on the same StateDir resumes them.
func (f *Farm) Close() {
	f.mu.Lock()
	f.closed = true
	var cancels []context.CancelFunc
	for _, js := range f.jobs {
		if js.status == StatusRunning && js.cancel != nil {
			cancels = append(cancels, js.cancel)
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	f.wg.Wait()
	f.pool.Close()
}

func (f *Farm) journalPath(id string) string {
	return filepath.Join(f.cfg.StateDir, "job-"+id+".hsj")
}
