package farm

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"hardsnap/internal/campaign"
)

// Client speaks the farm's line-JSON protocol. It is not safe for
// concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a farm server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}, nil
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("farm: %s", resp.Error)
	}
	return resp, nil
}

// Submit enqueues a job for the tenant and returns the job ID.
func (c *Client) Submit(tenant string, job campaign.Job) (string, error) {
	resp, err := c.roundTrip(Request{Op: "submit", Tenant: tenant, Job: &job})
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Status fetches a job's lifecycle state (without the result body).
func (c *Client) Status(id string) (JobInfo, error) {
	resp, err := c.roundTrip(Request{Op: "status", ID: id})
	if err != nil {
		return JobInfo{}, err
	}
	return *resp.Job, nil
}

// Results fetches a job's state including its full result.
func (c *Client) Results(id string) (JobInfo, error) {
	resp, err := c.roundTrip(Request{Op: "results", ID: id})
	if err != nil {
		return JobInfo{}, err
	}
	return *resp.Job, nil
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(id string) error {
	_, err := c.roundTrip(Request{Op: "cancel", ID: id})
	return err
}

// Tenants fetches every tenant's budget accounting.
func (c *Client) Tenants() ([]TenantUsage, error) {
	resp, err := c.roundTrip(Request{Op: "tenants"})
	if err != nil {
		return nil, err
	}
	return resp.Tenants, nil
}

// PoolStats fetches the warm-pool counters.
func (c *Client) PoolStats() (PoolStats, error) {
	resp, err := c.roundTrip(Request{Op: "pool"})
	if err != nil {
		return PoolStats{}, err
	}
	if resp.Pool == nil {
		return PoolStats{}, fmt.Errorf("farm: empty pool response")
	}
	return *resp.Pool, nil
}

// Stream consumes the job's event feed, invoking fn per event, until
// the job reaches a terminal state. It consumes the connection: use
// a dedicated client.
func (c *Client) Stream(id string, fn func(campaign.Event)) error {
	if err := c.enc.Encode(Request{Op: "stream", ID: id}); err != nil {
		return err
	}
	for {
		var resp Response
		if err := c.dec.Decode(&resp); err != nil {
			return err
		}
		if resp.Error != "" {
			return fmt.Errorf("farm: %s", resp.Error)
		}
		if resp.Done {
			return nil
		}
		if resp.Event != nil && fn != nil {
			fn(*resp.Event)
		}
	}
}

// WaitJob polls status until the job is terminal, then fetches the
// full result. The interval bounds polling frequency (default
// 10ms).
func (c *Client) WaitJob(id string, interval time.Duration) (JobInfo, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	for {
		info, err := c.Status(id)
		if err != nil {
			return JobInfo{}, err
		}
		if info.Status.terminal() {
			return c.Results(id)
		}
		time.Sleep(interval)
	}
}
