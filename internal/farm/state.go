package farm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
)

// persistedJob is the on-disk form of one job: the full spec plus
// its lifecycle state, written atomically on every transition. A
// farm restarted on the same StateDir reconstructs everything from
// these files plus the per-job campaign journals.
type persistedJob struct {
	ID     string           `json:"id"`
	Tenant string           `json:"tenant"`
	Job    campaign.Job     `json:"job"`
	Status JobStatus        `json:"status"`
	Warm   bool             `json:"warm,omitempty"`
	Error  string           `json:"error,omitempty"`
	Result *campaign.Result `json:"result,omitempty"`
}

func (f *Farm) statePath(id string) string {
	return filepath.Join(f.cfg.StateDir, "job-"+id+".json")
}

// persistLocked writes the job's state file atomically (temp +
// rename). Persistence is best-effort durability, never a scheduling
// dependency: an unwritable StateDir degrades restart recovery, not
// the running farm — but the error is kept on the job so clients see
// it.
func (f *Farm) persistLocked(js *jobState) {
	if f.cfg.StateDir == "" {
		return
	}
	pj := persistedJob{
		ID: js.id, Tenant: js.tenant, Job: js.job,
		Status: js.status, Warm: js.warm, Error: js.err, Result: js.result,
	}
	data, err := json.MarshalIndent(pj, "", "  ")
	if err != nil {
		return
	}
	path := f.statePath(js.id)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// recover rebuilds the farm from StateDir: terminal jobs are
// reloaded (their consumption re-charged to tenants, so budgets
// survive restarts), and jobs that were queued or running when the
// previous process died are re-enqueued. A running parallel job's
// campaign journal is loaded so its re-run replays completed
// subtrees instead of re-exploring them.
func (f *Farm) recover() error {
	if f.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(f.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("farm: state dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(f.cfg.StateDir, "job-*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("farm: recover %s: %w", path, err)
		}
		var pj persistedJob
		if err := json.Unmarshal(data, &pj); err != nil {
			return fmt.Errorf("farm: recover %s: %w", path, err)
		}
		js := &jobState{
			id: pj.ID, tenant: pj.Tenant, job: pj.Job,
			status: pj.Status, warm: pj.Warm, err: pj.Error, result: pj.Result,
		}
		ten, ok := f.tenants[js.tenant]
		if !ok {
			// The tenant was declared when the job was accepted;
			// honor its history even if the new config dropped it.
			ten = &tenantState{name: js.tenant}
			f.tenants[js.tenant] = ten
		}
		ten.jobs++
		if js.status == StatusDone && js.result != nil {
			ten.usedVT += js.result.VirtualTime
			if js.result.SolverQueries > 0 {
				ten.usedQ += uint64(js.result.SolverQueries)
			}
		}
		if !js.status.terminal() {
			// Died queued or mid-run: run it again, resuming from the
			// campaign journal when one was flushed.
			js.status = StatusQueued
			if cam, err := core.LoadCampaign(f.journalPath(js.id)); err == nil {
				if cam.Complete {
					// The campaign finished but the process died
					// before recording the result; the journal cannot
					// be appended to, so start the run over.
					_ = os.Remove(f.journalPath(js.id))
				} else {
					js.resume = cam
				}
			}
			f.queue = append(f.queue, js.id)
		}
		f.jobs[js.id] = js
	}
	return nil
}
