package farm

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
	"hardsnap/internal/target"
)

// fanoutFirmware branches on six symbolic bits up front (64 paths),
// does per-path gpio traffic, and aborts on exactly one path — the
// same workload internal/campaign tests with.
const fanoutFirmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		li r8, 0x40000000
		andi r5, r4, 1
		beq r5, r0, b1
		nop
b1:
		andi r5, r4, 2
		beq r5, r0, b2
		nop
b2:
		andi r5, r4, 4
		beq r5, r0, b3
		nop
b3:
		andi r5, r4, 8
		beq r5, r0, b4
		nop
b4:
		andi r5, r4, 16
		beq r5, r0, b5
		nop
b5:
		andi r5, r4, 32
		beq r5, r0, work
		nop
work:
		sw r4, 0(r8)
		lw r6, 0(r8)
		andi r5, r4, 63
		addi r7, r0, 63
		bne r5, r7, fine
		abort
fine:
		halt
`

func testJob(workers int) campaign.Job {
	return campaign.Job{
		Firmware:    fanoutFirmware,
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Searcher:    "bfs",
		Workers:     workers,
	}
}

func newFarm(t *testing.T, cfg Config) *Farm {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func mustSubmit(t *testing.T, f *Farm, tenant string, job campaign.Job) string {
	t.Helper()
	id, err := f.Submit(tenant, job)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustWait(t *testing.T, f *Farm, id string) JobInfo {
	t.Helper()
	info, err := f.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// waitStatus polls until the job reaches the wanted (non-terminal)
// status.
func waitStatus(t *testing.T, f *Farm, id string, want JobStatus) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := f.Job(id)
		if ok && info.Status == want {
			return
		}
		if ok && info.Status.terminal() {
			t.Fatalf("job %s reached %s while waiting for %s", id, info.Status, want)
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for job %s to reach %s", id, want)
}

// standaloneResult runs the job through the plain Runner — the
// identity baseline every farm execution must match.
func standaloneResult(t *testing.T, job campaign.Job) *campaign.Result {
	t.Helper()
	res, err := campaign.Runner{}.Run(context.Background(), job, campaign.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFarmIdentity: a job run by the farm — cold admission, then a
// recycled warm target — reports the exact standalone fingerprint.
func TestFarmIdentity(t *testing.T) {
	job := testJob(4)
	want := standaloneResult(t, job)

	f := newFarm(t, Config{
		StateDir: t.TempDir(),
		Tenants:  map[string]Budget{"acme": {}},
		PoolSize: 1,
	})
	info1 := mustWait(t, f, mustSubmit(t, f, "acme", job))
	if info1.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", info1.Status, info1.Error)
	}
	if info1.Result.Fingerprint != want.Fingerprint {
		t.Fatalf("farm run diverged from standalone:\nfarm:       %s\nstandalone: %s",
			info1.Result.Fingerprint, want.Fingerprint)
	}

	// Same rig again: the first job's recycled target (or a background
	// refill) is idle by the time it settled, so admission must be
	// warm — and stay result-identical.
	info2 := mustWait(t, f, mustSubmit(t, f, "acme", job))
	if info2.Status != StatusDone {
		t.Fatalf("job 2: %s (%s)", info2.Status, info2.Error)
	}
	if !info2.Warm {
		t.Error("second same-rig job was not served from the warm pool")
	}
	if info2.Result.Fingerprint != want.Fingerprint {
		t.Fatalf("warm run diverged: %s vs %s", info2.Result.Fingerprint, want.Fingerprint)
	}
	st := f.PoolStats()
	if st.ColdBuilds == 0 || st.WarmHits == 0 || st.Recycled == 0 {
		t.Errorf("pool stats show no warm cycle: %+v", st)
	}
}

// TestFarmMultiTenantBudgets: concurrent tenants with virtual-time
// budgets; no tenant's charged consumption may exceed its budget
// beyond one scheduling step of overshoot.
func TestFarmMultiTenantBudgets(t *testing.T) {
	job := testJob(1) // serial: reported virtual time is exact, not a makespan
	clean := standaloneResult(t, job)
	budget := clean.VirtualTime + clean.VirtualTime/2 // one full run plus half

	f := newFarm(t, Config{
		StateDir: t.TempDir(),
		Slots:    4,
		Tenants: map[string]Budget{
			"alpha": {VirtualTime: budget},
			"beta":  {VirtualTime: budget},
			"gamma": {}, // unlimited
		},
	})
	var ids []string
	for i := 0; i < 3; i++ {
		for _, tenant := range []string{"alpha", "beta", "gamma"} {
			id, err := f.Submit(tenant, job)
			if errors.Is(err, ErrBudgetExhausted) {
				continue // later submissions may already see the budget spent
			}
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		info := mustWait(t, f, id)
		switch info.Status {
		case StatusDone:
		case StatusFailed:
			if !strings.Contains(info.Error, "budget") {
				t.Errorf("job %s failed for a non-budget reason: %s", id, info.Error)
			}
		default:
			t.Errorf("job %s: unexpected status %s", id, info.Status)
		}
	}
	slack := clean.VirtualTime / 10
	for _, u := range f.Tenants() {
		if u.ReservedVirtualTime != 0 {
			t.Errorf("tenant %s still holds reservations: %v", u.Name, u.ReservedVirtualTime)
		}
		if u.Budget.VirtualTime == 0 {
			// The unlimited tenant must have run all three jobs in full.
			if u.UsedVirtualTime < 3*clean.VirtualTime {
				t.Errorf("unlimited tenant clipped: %v < %v", u.UsedVirtualTime, 3*clean.VirtualTime)
			}
			continue
		}
		if u.UsedVirtualTime > u.Budget.VirtualTime+slack {
			t.Errorf("tenant %s overshot its budget: used %v of %v",
				u.Name, u.UsedVirtualTime, u.Budget.VirtualTime)
		}
		// The cap must actually have clipped work, not just been set.
		if u.UsedVirtualTime < u.Budget.VirtualTime {
			t.Errorf("tenant %s never reached its budget: used %v of %v",
				u.Name, u.UsedVirtualTime, u.Budget.VirtualTime)
		}
	}
}

// TestFarmFairShare: with one slot and a charged heavy tenant, a
// fresh tenant's first job runs before the heavy tenant's backlog.
func TestFarmFairShare(t *testing.T) {
	job := testJob(1)
	f := newFarm(t, Config{
		StateDir: t.TempDir(),
		Slots:    1,
		Tenants:  map[string]Budget{"heavy": {}, "light": {}},
	})

	// Hold the first job's settle open until both contenders are
	// queued: jobs finish in milliseconds, so racing the submits
	// against b1's real wall-clock duration is a coin flip.
	release := make(chan struct{})
	var first atomic.Bool
	var omu sync.Mutex
	var settleOrder []string
	f.beforeSettle = func(id string) {
		omu.Lock()
		settleOrder = append(settleOrder, id)
		omu.Unlock()
		if first.CompareAndSwap(false, true) {
			<-release
		}
	}

	// Occupy the single slot, then queue the contenders behind it.
	b1 := mustSubmit(t, f, "heavy", job)
	waitStatus(t, f, b1, StatusRunning)
	h2 := mustSubmit(t, f, "heavy", job)
	l1 := mustSubmit(t, f, "light", job)
	close(release)

	// When b1 settles, heavy has charged a full run and light nothing,
	// so the scheduler must hand the slot to light despite heavy's job
	// being queued first. Completion order is judged from the settle
	// hook, not polled status — with one slot and millisecond jobs,
	// h2 can legitimately finish between l1's completion and a status
	// read, so polling races the very ordering under test.
	mustWait(t, f, l1)
	mustWait(t, f, h2)
	omu.Lock()
	defer omu.Unlock()
	pos := func(id string) int {
		for i, got := range settleOrder {
			if got == id {
				return i
			}
		}
		t.Fatalf("job %s never settled (order: %v)", id, settleOrder)
		return -1
	}
	if pos(l1) > pos(h2) {
		t.Error("fair share violated: heavy's backlog job finished before light's first job")
	}
}

// TestFarmRestartResume is the SIGKILL gate: a farm process dies
// mid-campaign — simulated by handcrafting the exact on-disk state a
// killed server leaves behind (a state file still marked running plus
// the flushed campaign journal) — and a new farm on the same StateDir
// must resume the job from the journal and land on the standalone
// fingerprint.
func TestFarmRestartResume(t *testing.T) {
	job := testJob(4)
	want := standaloneResult(t, job)
	dir := t.TempDir()

	// Produce the partial journal the way a killed farm would have:
	// the same runner, chaos-killed after 3 subtree completions.
	jpath := filepath.Join(dir, "job-deadbeef.hsj")
	killed := job
	killed.Chaos = &core.ChaosSchedule{DieAfterSubtrees: 3}
	_, err := campaign.Runner{}.Run(context.Background(), killed,
		campaign.RunOptions{Journal: jpath})
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	// The state file of a job that was running when the process died,
	// plus one that was still queued.
	writeState(t, dir, persistedJob{
		ID: "deadbeef", Tenant: "acme", Job: job, Status: StatusRunning,
	})
	writeState(t, dir, persistedJob{
		ID: "cafe0001", Tenant: "acme", Job: testJob(1), Status: StatusQueued,
	})

	f := newFarm(t, Config{
		StateDir: dir,
		Tenants:  map[string]Budget{"acme": {}},
	})
	info := mustWait(t, f, "deadbeef")
	if info.Status != StatusDone {
		t.Fatalf("resumed job: %s (%s)", info.Status, info.Error)
	}
	if info.Result.Fingerprint != want.Fingerprint {
		t.Fatalf("resumed job diverged: %s vs %s", info.Result.Fingerprint, want.Fingerprint)
	}
	if info.Result.Report == nil || info.Result.Report.Recovery.ResumedSubtrees == 0 {
		t.Error("restart re-explored everything instead of replaying the journal")
	}
	if queued := mustWait(t, f, "cafe0001"); queued.Status != StatusDone {
		t.Fatalf("recovered queued job: %s (%s)", queued.Status, queued.Error)
	}

	// And the accounting survives yet another restart.
	f.Close()
	f2 := newFarm(t, Config{StateDir: dir, Tenants: map[string]Budget{"acme": {}}})
	u := f2.Tenants()
	if len(u) != 1 || u[0].UsedVirtualTime == 0 || u[0].Jobs != 2 {
		t.Errorf("tenant accounting lost across restart: %+v", u)
	}
	info2, ok := f2.Job("deadbeef")
	if !ok || info2.Status != StatusDone || info2.Result.Fingerprint != want.Fingerprint {
		t.Errorf("job state lost across restart: %+v", info2)
	}
}

func writeState(t *testing.T, dir string, pj persistedJob) {
	t.Helper()
	data, err := json.MarshalIndent(pj, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-"+pj.ID+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFarmCancelAndErrors covers the unhappy paths.
func TestFarmCancelAndErrors(t *testing.T) {
	f := newFarm(t, Config{
		StateDir: t.TempDir(),
		Slots:    1,
		Tenants:  map[string]Budget{"acme": {}},
	})
	if _, err := f.Submit("ghost", testJob(1)); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant: err = %v", err)
	}
	if _, err := f.Submit("acme", campaign.Job{}); err == nil {
		t.Error("invalid job accepted")
	}
	if err := f.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown cancel: err = %v", err)
	}

	// Fill the slot, then cancel a job queued behind it.
	running := mustSubmit(t, f, "acme", testJob(1))
	queued := mustSubmit(t, f, "acme", testJob(1))
	if err := f.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if info := mustWait(t, f, queued); info.Status != StatusCancelled {
		t.Errorf("queued cancel: %s", info.Status)
	}
	mustWait(t, f, running)
}

// TestServerProtocol drives the whole stack over TCP: submit,
// stream, results, tenants, pool, and the error paths.
func TestServerProtocol(t *testing.T) {
	f := newFarm(t, Config{
		StateDir: t.TempDir(),
		Tenants:  map[string]Budget{"acme": {}},
		PoolSize: 1,
	})
	srv := NewServer(f)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := testJob(4)
	want := standaloneResult(t, job)
	id, err := c.Submit("acme", job)
	if err != nil {
		t.Fatal(err)
	}

	// Stream on a dedicated connection until the job completes. The
	// subscription replays history, so a late subscriber still sees
	// the full lifecycle.
	sc, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	seen := map[campaign.EventKind]bool{}
	if err := sc.Stream(id, func(ev campaign.Event) {
		seen[ev.Kind] = true
	}); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []campaign.EventKind{campaign.EventStarted, campaign.EventCompleted} {
		if !seen[kind] {
			t.Errorf("stream missed %q (saw %v)", kind, seen)
		}
	}

	info, err := c.WaitJob(id, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusDone || info.Result == nil {
		t.Fatalf("job over TCP: %+v", info)
	}
	if info.Result.Fingerprint != want.Fingerprint {
		t.Fatalf("TCP run diverged: %s vs %s", info.Result.Fingerprint, want.Fingerprint)
	}
	if len(info.Result.Bugs) != 1 {
		t.Fatalf("bugs over the wire: %d", len(info.Result.Bugs))
	}

	tens, err := c.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(tens) != 1 || tens[0].Name != "acme" || tens[0].UsedVirtualTime == 0 {
		t.Errorf("tenants over the wire: %+v", tens)
	}
	if _, err := c.PoolStats(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("ghost", job); err == nil {
		t.Error("unknown tenant accepted over the wire")
	}
	if _, err := c.Status("nope"); err == nil {
		t.Error("unknown job served over the wire")
	}
	if err := c.Cancel(id); err == nil {
		t.Error("cancelling a finished job must fail")
	}
}
