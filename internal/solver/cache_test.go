package solver

import (
	"sync"
	"testing"

	"hardsnap/internal/expr"
)

func TestCacheKeyCanonical(t *testing.T) {
	b := expr.NewBuilder()
	c := NewCache(0)
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	a := b.Ult(x, b.Const(10, 8))
	d := b.Eq(y, b.Const(3, 8))

	k1 := c.Key([]*expr.Term{a, d})
	k2 := c.Key([]*expr.Term{d, a})
	if k1 != k2 {
		t.Fatal("key must be order-independent")
	}
	k3 := c.Key([]*expr.Term{a, d, a})
	if k3 != k1 {
		t.Fatal("key must ignore duplicates")
	}
	k4 := c.Key([]*expr.Term{a, b.Bool(true), d})
	if k4 != k1 {
		t.Fatal("key must ignore constant-true terms")
	}
	k5 := c.Key([]*expr.Term{a})
	if k5 == k1 {
		t.Fatal("different sets must get different keys")
	}

	// The same constraints built by an independent Builder must
	// produce the same canonical key: the digest is structural, not
	// pointer-based.
	b2 := expr.NewBuilder()
	a2 := b2.Ult(b2.Var("x", 8), b2.Const(10, 8))
	d2 := b2.Eq(b2.Var("y", 8), b2.Const(3, 8))
	if c.Key([]*expr.Term{a2, d2}) != k1 {
		t.Fatal("key must be stable across builders")
	}
}

func TestSolverCacheHit(t *testing.T) {
	b := expr.NewBuilder()
	cache := NewCache(0)
	s1 := New(0)
	s1.Cache = cache
	x := b.Var("x", 8)
	cs := []*expr.Term{b.Ult(x, b.Const(10, 8))}

	res, model, err := s1.Check(cs)
	if err != nil || res != Sat {
		t.Fatalf("first check: %v %v", res, err)
	}
	if cache.Stats().Hits != 0 {
		t.Fatal("first query must miss")
	}

	// Second solver sharing the cache gets a hit with the same model.
	s2 := New(0)
	s2.Cache = cache
	res2, model2, err := s2.Check(cs)
	if err != nil || res2 != Sat {
		t.Fatalf("second check: %v %v", res2, err)
	}
	if s2.Stats.CacheHits != 1 || cache.Stats().Hits != 1 {
		t.Fatalf("expected one hit, stats %+v", cache.Stats())
	}
	if model2["x"] != model["x"] {
		t.Fatalf("cached model differs: %v vs %v", model2, model)
	}
	// The returned model is a copy: mutating it must not poison later hits.
	model2["x"] = 0xff
	_, model3, _ := s2.Check(cs)
	if model3["x"] == 0xff {
		t.Fatal("cache returned an aliased model")
	}

	// Unsat verdicts are cached too.
	un := []*expr.Term{b.Ult(x, b.Const(10, 8)), b.Eq(x, b.Const(200, 8))}
	if r, _, _ := s1.Check(un); r != Unsat {
		t.Fatalf("want unsat, got %v", r)
	}
	if r, _, _ := s2.Check(un); r != Unsat {
		t.Fatalf("want cached unsat, got %v", r)
	}
	if cache.Stats().Hits != 3 {
		t.Fatalf("expected three hits, stats %+v", cache.Stats())
	}
}

func TestCacheEviction(t *testing.T) {
	b := expr.NewBuilder()
	c := NewCache(cacheShards) // one entry per shard
	x := b.Var("x", 16)
	for i := 0; i < 200; i++ {
		k := c.Key([]*expr.Term{b.Eq(x, b.Const(uint64(i), 16))})
		c.Store(k, Unsat, nil)
	}
	st := c.Stats()
	if st.Entries > cacheShards {
		t.Fatalf("capacity not enforced: %d entries", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

func TestCacheConcurrent(t *testing.T) {
	b := expr.NewBuilder()
	cache := NewCache(64)
	x := b.Var("x", 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := New(0)
			s.Cache = cache
			for i := 0; i < 50; i++ {
				v := uint64(i % 10)
				res, model, err := s.Check([]*expr.Term{b.Eq(x, b.Const(v, 16))})
				if err != nil || res != Sat || model["x"] != v {
					t.Errorf("goroutine %d: res=%v model=%v err=%v", g, res, model, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("expected cross-goroutine hits, stats %+v", st)
	}
}
